// Package mnnfast is a Go reproduction of "MnnFast: A Fast and Scalable
// System Architecture for Memory-Augmented Neural Networks" (Jang, Kim,
// Jo, Lee, Kim — ISCA 2019).
//
// The package is the public facade over the repository's internal
// packages. It exposes:
//
//   - the inference engines (the paper's contribution): the Baseline
//     layer-by-layer dataflow and the Column engine implementing the
//     column-based algorithm with lazy softmax, streaming, and
//     zero-skipping, plus scale-out sharding;
//   - a complete Network for end-to-end question answering (embedding,
//     multi-hop inference, final FC layer);
//   - the trainable end-to-end memory network (memnn) with synthetic
//     bAbI-style datasets; and
//   - the evaluation harness reproducing every table and figure of the
//     paper (experiments).
//
// Quick start:
//
//	rng := rand.New(rand.NewSource(1))
//	mem, _ := mnnfast.NewMemory(
//	    tensor.GaussianMatrix(rng, 100000, 48, 0.5),
//	    tensor.GaussianMatrix(rng, 100000, 48, 0.5))
//	eng := mnnfast.NewColumn(mem, mnnfast.Options{
//	    ChunkSize: 1000, Streaming: true, SkipThreshold: 0.1})
//	o := make(tensor.Vector, 48)
//	stats := eng.Infer(u, o)
//
// See examples/ for runnable programs and cmd/mnnfast-bench for the
// paper's evaluation suite.
package mnnfast

import (
	"io"

	"mnnfast/internal/core"
	"mnnfast/internal/experiments"
	"mnnfast/internal/tensor"
)

// Engine computes response vectors against a fixed memory; implemented
// by Baseline, Column, and Sharded engines.
type Engine = core.Engine

// Memory is the embedded knowledge database (M_IN and M_OUT).
type Memory = core.Memory

// Options configures an engine (chunk size, streaming, zero-skipping
// threshold, parallelism, tracing).
type Options = core.Options

// Stats counts the work one or more inferences performed.
type Stats = core.Stats

// Network is a complete question-answering service: embedding table,
// knowledge database, inference engine, and final FC layer.
type Network = core.Network

// NetworkConfig assembles a Network.
type NetworkConfig = core.NetworkConfig

// Partial is the mergeable scale-out fragment of a column-based
// inference (running max, exponential sum, partial weighted sum).
type Partial = core.Partial

// NewMemory wraps and validates the two memory matrices.
func NewMemory(in, out *tensor.Matrix) (*Memory, error) { return core.NewMemory(in, out) }

// NewBaseline returns the paper's baseline layer-by-layer engine.
func NewBaseline(mem *Memory, opt Options) Engine { return core.NewBaseline(mem, opt) }

// NewColumn returns the MnnFast column-based engine; enable Streaming
// and SkipThreshold in opt for the full MnnFast configuration.
func NewColumn(mem *Memory, opt Options) Engine { return core.NewColumn(mem, opt) }

// NewSharded distributes the memory across shards, each served by a
// column engine, with O(ed) partial-result merging.
func NewSharded(mem *Memory, shards int, opt Options, parallel bool) (Engine, error) {
	return core.NewSharded(mem, shards, opt, parallel)
}

// NewNetwork validates and builds a question-answering Network.
func NewNetwork(cfg NetworkConfig) (*Network, error) { return core.NewNetwork(cfg) }

// NewPool returns a parallel worker pool for Options.Pool; workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int) *tensor.Pool { return tensor.NewPool(workers) }

// ExperimentConfig scales the evaluation suite.
type ExperimentConfig = experiments.Config

// DefaultExperimentConfig mirrors the paper's configuration (Table 1)
// scaled to laptop memory.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// QuickExperimentConfig is a seconds-fast configuration for smoke runs.
func QuickExperimentConfig() ExperimentConfig { return experiments.QuickConfig() }

// ExperimentIDs lists the reproducible tables and figures in paper
// order (table1, fig3, fig4, …, energy, measured).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment executes one experiment by ID and writes its table to w.
func RunExperiment(w io.Writer, id string, cfg ExperimentConfig) error {
	t, err := experiments.Run(id, cfg)
	if err != nil {
		return err
	}
	t.Fprint(w)
	return nil
}
