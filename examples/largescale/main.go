// Largescale: scale-out inference over a database too large for one
// worker's cache — the paper's §3.1 scale-out argument. The memory is
// sharded across nodes; each node streams its shard chunk-by-chunk and
// ships an O(ed) partial, which the coordinator merges before one lazy
// softmax division.
//
// Run with:
//
//	go run ./examples/largescale
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mnnfast"
	"mnnfast/internal/tensor"
)

func main() {
	const (
		ns     = 400000
		ed     = 48
		shards = 4
		nq     = 8 // questions to answer
	)
	rng := rand.New(rand.NewSource(7))
	mem, err := mnnfast.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
	)
	if err != nil {
		log.Fatal(err)
	}

	single := mnnfast.NewColumn(mem, mnnfast.Options{ChunkSize: 1000, Streaming: true})
	cluster, err := mnnfast.NewSharded(mem, shards, mnnfast.Options{ChunkSize: 1000, Streaming: true}, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("database: %d sentences × %d dims (%.0f MB total)\n",
		ns, ed, float64(mem.In.SizeBytes()+mem.Out.SizeBytes())/(1<<20))

	oS := tensor.NewVector(ed)
	oC := tensor.NewVector(ed)
	var tS, tC time.Duration
	var maxDiff float32
	for q := 0; q < nq; q++ {
		u := tensor.RandomVector(rng, ed, 1)
		start := time.Now()
		single.Infer(u, oS)
		tS += time.Since(start)
		start = time.Now()
		cluster.Infer(u, oC)
		tC += time.Since(start)
		if d := tensor.MaxAbsDiff(oS, oC); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("single node:   %v per question\n", tS/nq)
	fmt.Printf("%-14s %v per question (results agree within %.2g)\n",
		fmt.Sprintf("%d shards:", shards), tC/nq, maxDiff)
	fmt.Println("per-question scale-out synchronization payload:",
		(ed+2)*4*shards, "bytes — independent of database size")
}
