// Quickstart: build a knowledge database, answer a question with the
// baseline and MnnFast engines, and compare their outputs and work.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mnnfast"
	"mnnfast/internal/tensor"
)

func main() {
	const (
		ns = 100000 // story sentences in the database
		ed = 48     // embedding dimension (paper Table 1, CPU)
	)
	rng := rand.New(rand.NewSource(42))

	// A synthetic pre-embedded database: in production these matrices
	// come from embedding real story sentences (see examples/training).
	mem, err := mnnfast.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
	)
	if err != nil {
		log.Fatal(err)
	}
	u := tensor.RandomVector(rng, ed, 1) // an embedded question

	baseline := mnnfast.NewBaseline(mem, mnnfast.Options{})
	fast := mnnfast.NewColumn(mem, mnnfast.Options{
		ChunkSize:     1000,
		Streaming:     true,
		SkipThreshold: 0.1,
		Pool:          mnnfast.NewPool(0), // all cores
	})

	oBase := tensor.NewVector(ed)
	oFast := tensor.NewVector(ed)
	stBase := baseline.Infer(u, oBase)
	stFast := fast.Infer(u, oFast)

	fmt.Printf("database: %d sentences × %d dims (%.1f MB per memory)\n",
		ns, ed, float64(mem.In.SizeBytes())/(1<<20))
	fmt.Printf("%-10s divisions=%-8d exps=%-8d wsum-muls=%-10d spill=%dB\n",
		baseline.Name(), stBase.Divisions, stBase.Exps, stBase.WeightedSumMuls, stBase.SpillBytes)
	fmt.Printf("%-10s divisions=%-8d exps=%-8d wsum-muls=%-10d spill=%dB (skipped %.1f%% of rows)\n",
		fast.Name(), stFast.Divisions, stFast.Exps, stFast.WeightedSumMuls, stFast.SpillBytes,
		100*stFast.SkipFraction())
	fmt.Printf("output divergence (zero-skipping drops near-zero mass): %.3g\n",
		tensor.MaxAbsDiff(oBase, oFast))

	// An exact column run reproduces the baseline bit-for-bit shape.
	exact := mnnfast.NewColumn(mem, mnnfast.Options{ChunkSize: 1000})
	oExact := tensor.NewVector(ed)
	exact.Infer(u, oExact)
	fmt.Printf("exact column vs baseline: max |Δ| = %.3g\n", tensor.MaxAbsDiff(oBase, oExact))
}
