// Training: train an end-to-end memory network on a synthetic
// bAbI-style task, then reproduce the paper's Figure 6/7 observations
// on it: trained attention is sparse, so zero-skipping trades almost
// no accuracy for a large cut in output computation.
//
// Run with:
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mnnfast/internal/babi"
	"mnnfast/internal/memnn"
)

func main() {
	// Generate the dataset: "where is X?" stories with 20 sentences of
	// mostly-distractor moves.
	opt := babi.GenOptions{Stories: 800, StoryLen: 20, People: 4, Locations: 4}
	dataset := babi.Generate(babi.TaskSingleFact, opt, rand.New(rand.NewSource(11)))
	train, test := dataset.Split(0.8)
	corpus := memnn.BuildCorpus(train, test, 0)
	fmt.Println("dataset:", dataset)

	model, err := memnn.NewModel(memnn.Config{
		Dim:     20,
		Hops:    2,
		Vocab:   corpus.Vocab.Size(),
		Answers: len(corpus.Answers),
		MaxSent: corpus.MaxSent,
	}, rand.New(rand.NewSource(11)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d parameters\n", model.NumParams())

	topt := memnn.DefaultTrainOptions()
	topt.Epochs = 30
	if _, err := model.Train(corpus.Train, topt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test accuracy: %.3f\n\n", model.Accuracy(corpus.Test, 0))

	// Figure 6: attention sparsity of the trained model.
	sp := model.SparsityOf(corpus.Test, 100)
	fmt.Printf("attention sparsity over %d questions:\n", sp.Questions)
	fmt.Printf("  %.1f%% of p-values < 0.1, %.1f%% < 0.01\n", 100*sp.MeanBelow01, 100*sp.MeanBelow001)
	fmt.Printf("  mean top p-value %.2f; mean active rows %.1f of %d\n\n",
		sp.MeanTopMass, sp.MeanActiveRows, corpus.MaxSent)

	// Figure 7: the zero-skipping tradeoff.
	fmt.Println("zero-skipping sweep:")
	for _, th := range []float32{0.001, 0.01, 0.05, 0.1, 0.2} {
		fmt.Println(" ", model.EvaluateSkip(corpus.Test, th))
	}
}
