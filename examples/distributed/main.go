// Distributed: the paper's multi-node scale-out (§5.3) running over
// real TCP sockets on loopback. Four nodes each own a quarter of the
// knowledge database; a coordinator fans each question out and merges
// the O(ed) partials — the per-question synchronization payload is a
// few hundred bytes no matter how large the database grows.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mnnfast"
	"mnnfast/internal/cluster"
	"mnnfast/internal/core"
	"mnnfast/internal/tensor"
)

func main() {
	const (
		ns     = 200000
		ed     = 48
		shards = 4
		nq     = 5
	)
	rng := rand.New(rand.NewSource(9))
	mem, err := mnnfast.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Launch the shard nodes. In a real deployment each node holds only
	// its own slice of the database on a separate machine; here they
	// share one in-process matrix and split the row ranges.
	var nodes []*cluster.Node
	var addrs []string
	per := (ns + shards - 1) / shards
	for lo := 0; lo < ns; lo += per {
		hi := lo + per
		if hi > ns {
			hi = ns
		}
		n, err := cluster.NewNode(mem, lo, hi, mnnfast.Options{ChunkSize: 1000, Streaming: true})
		if err != nil {
			log.Fatal(err)
		}
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		addrs = append(addrs, addr)
		fmt.Printf("node %d: rows [%d, %d) on %s\n", len(nodes)-1, lo, hi, addr)
	}

	coord, err := cluster.Dial(ed, addrs...)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	local := core.NewBaseline(mem, mnnfast.Options{})
	oLocal := tensor.NewVector(ed)
	oCluster := tensor.NewVector(ed)
	var worst float32
	var elapsed time.Duration
	for q := 0; q < nq; q++ {
		u := tensor.RandomVector(rng, ed, 1)
		local.Infer(u, oLocal)
		start := time.Now()
		if _, err := coord.TryInfer(u, oCluster); err != nil {
			log.Fatal(err)
		}
		elapsed += time.Since(start)
		if d := tensor.MaxAbsDiff(oLocal, oCluster); d > worst {
			worst = d
		}
	}
	fmt.Printf("\n%d questions over %s\n", nq, coord.Name())
	fmt.Printf("mean distributed latency: %v\n", elapsed/nq)
	fmt.Printf("max divergence from local baseline: %.2g\n", worst)
	fmt.Printf("gather payload per question: %d bytes (independent of the %d-sentence database)\n",
		coord.SyncBytesPerQuery(), ns)
}
