// Multitenant: the paper's cache-contention story (§2.2.3, §3.3).
// An inference tenant whose working set fits the shared LLC co-runs
// with embedding tenants streaming a large embedding matrix. The
// example replays both access streams through the cache simulator
// three ways — inference alone, contended, and contended with the
// dedicated embedding cache — and reports the inference miss rates.
//
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mnnfast"
	"mnnfast/internal/cachesim"
	"mnnfast/internal/memtrace"
	"mnnfast/internal/tensor"
	"mnnfast/internal/vocab"
)

func main() {
	const (
		ed       = 64
		llcBytes = 8 << 20
		tenants  = 4 // embedding co-tenants
	)
	rng := rand.New(rand.NewSource(3))

	// Inference tenant: a database sized at half the LLC, inferred
	// repeatedly — alone, its re-runs hit on chip.
	ns := llcBytes / 2 / (ed * 4) / 2
	mem, err := mnnfast.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
	)
	if err != nil {
		log.Fatal(err)
	}
	u := tensor.RandomVector(rng, ed, 1)
	infTrace := &cachesim.Trace{}
	eng := mnnfast.NewColumn(mem, mnnfast.Options{ChunkSize: 512, Tracer: infTrace})
	o := tensor.NewVector(ed)
	for rep := 0; rep < 4; rep++ {
		eng.Infer(u, o)
	}

	// Embedding tenants: Zipf-distributed word lookups over a 200K-word
	// embedding matrix (natural-language locality, the paper's §3.3).
	zipf := vocab.NewZipfModel(200000, 1.0)
	embTraces := make([]*cachesim.Trace, tenants)
	for i := range embTraces {
		tr := &cachesim.Trace{}
		r := rand.New(rand.NewSource(int64(100 + i)))
		for j := 0; j < len(infTrace.Accesses)/2; j++ {
			w := zipf.Sample(r)
			tr.Touch(memtrace.RegionEmbedding, memtrace.OpRead, int64(w)*ed*4, ed*4)
		}
		embTraces[i] = tr
	}

	missRate := func(embCache bool, co bool) (float64, float64) {
		h := cachesim.NewHierarchy(cachesim.CacheConfig{SizeBytes: llcBytes, LineBytes: 64, Ways: 16})
		if embCache {
			h.EmbCache = cachesim.NewEmbeddingCache(128<<10, ed)
		}
		if co {
			all := append([]*cachesim.Trace{infTrace}, embTraces...)
			cachesim.ReplayInterleaved(h, all...)
		} else {
			infTrace.Replay(h)
		}
		inf := h.MissRateOf(memtrace.RegionMemIn)
		var embHit float64
		if h.EmbCache != nil {
			embHit = h.EmbCache.HitRate()
		}
		return inf, embHit
	}

	alone, _ := missRate(false, false)
	contended, _ := missRate(false, true)
	isolated, embHit := missRate(true, true)

	fmt.Printf("inference working set: %.1f MB against an %d MB LLC; %d embedding co-tenants\n",
		float64(mem.In.SizeBytes()+mem.Out.SizeBytes())/(1<<20), llcBytes>>20, tenants)
	fmt.Printf("inference M_IN miss rate, alone:               %5.1f%%\n", 100*alone)
	fmt.Printf("inference M_IN miss rate, contended:           %5.1f%%\n", 100*contended)
	fmt.Printf("inference M_IN miss rate, with embedding cache:%5.1f%% (embedding hit rate %.1f%%)\n",
		100*isolated, 100*embHit)
	fmt.Println("\nthe dedicated embedding cache (§3.3) keeps the embedding stream out of the LLC,")
	fmt.Println("restoring the inference tenant's locality — the fix Figure 14 sizes.")
}
