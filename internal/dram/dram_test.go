package dram

import (
	"math/rand"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Channels: 0, BanksPerChannel: 1, RowBytes: 8192, BusBytesPerCycle: 16, ClockHz: 1e9},
		{Channels: 1, BanksPerChannel: 0, RowBytes: 8192, BusBytesPerCycle: 16, ClockHz: 1e9},
		{Channels: 1, BanksPerChannel: 1, RowBytes: 32, BusBytesPerCycle: 16, ClockHz: 1e9},
		{Channels: 1, BanksPerChannel: 1, RowBytes: 8192, BusBytesPerCycle: 0, ClockHz: 1e9},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted: %+v", i, cfg)
				}
			}()
			NewSim(cfg)
		}()
	}
}

func TestSequentialStreamRowHits(t *testing.T) {
	s := NewSim(DDR4_2400(1))
	s.Access(0, 1<<20) // 1 MB sequential
	if hr := s.Stats.HitRate(); hr < 0.98 {
		t.Errorf("sequential stream row-hit rate %v, want ~1 (one miss per 8 KB row)", hr)
	}
	if eff := s.Efficiency(); eff < 0.7 {
		t.Errorf("sequential efficiency %v, want near peak", eff)
	}
}

func TestRandomAccessRowMisses(t *testing.T) {
	s := NewSim(DDR4_2400(1))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		s.Access(rng.Int63n(1<<30)&^63, 64)
	}
	if hr := s.Stats.HitRate(); hr > 0.1 {
		t.Errorf("random access row-hit rate %v, want ~0", hr)
	}
	if eff := s.Efficiency(); eff > 0.5 {
		t.Errorf("random-access efficiency %v, want heavily derated", eff)
	}
	// The constant the CPU model assumes for demand-miss patterns
	// should be within the regime this simulation produces for
	// *partially* sequential mixes — pure random is the floor.
}

func TestInterleavedStreamsThrash(t *testing.T) {
	// Two sequential streams through the same banks, interleaved line
	// by line — the baseline engine's M_IN + spill-vector pattern.
	inter := NewSim(DDR4_2400(1))
	const lines = 8192
	for i := int64(0); i < lines; i++ {
		inter.Access(i*64, 64)       // stream A
		inter.Access(1<<28+i*64, 64) // stream B, same banks, far rows
	}
	single := NewSim(DDR4_2400(1))
	for i := int64(0); i < lines; i++ {
		single.Access(i*64, 64)
	}
	for i := int64(0); i < lines; i++ {
		single.Access(1<<28+i*64, 64)
	}
	if inter.Stats.HitRate() >= single.Stats.HitRate() {
		t.Errorf("interleaving did not hurt row locality: %v vs %v",
			inter.Stats.HitRate(), single.Stats.HitRate())
	}
	if inter.Cycles() <= single.Cycles() {
		t.Errorf("interleaving did not cost cycles: %d vs %d", inter.Cycles(), single.Cycles())
	}
}

func TestChannelsScaleBandwidth(t *testing.T) {
	run := func(channels int) float64 {
		s := NewSim(DDR4_2400(channels))
		s.Access(0, 4<<20)
		return s.EffectiveBandwidth()
	}
	bw1, bw4 := run(1), run(4)
	if bw4 < 3.2*bw1 {
		t.Errorf("4-channel bandwidth %v not ~4× single channel %v", bw4, bw1)
	}
}

func TestPeakBandwidth(t *testing.T) {
	s := NewSim(DDR4_2400(1))
	want := 16.0 * 1.2e9
	if got := s.PeakBandwidth(); got != want {
		t.Errorf("peak = %v, want %v (19.2 GB/s — the paper's DDR4-2400 channel)", got, want)
	}
}

func TestAccessIgnoresNonPositive(t *testing.T) {
	s := NewSim(DDR4_2400(1))
	s.Access(0, 0)
	s.Access(0, -5)
	if s.Stats.Accesses != 0 {
		t.Errorf("non-positive access counted: %+v", s.Stats)
	}
	if s.EffectiveBandwidth() != 0 || s.Efficiency() != 0 {
		t.Error("empty sim should report zero bandwidth")
	}
}
