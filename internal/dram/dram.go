// Package dram models DRAM timing at bank/row-buffer granularity. The
// higher-level performance models (internal/perfmodel) assume an
// effective-bandwidth derate for demand-miss access patterns; this
// package derives that derate from first principles: sequential
// (streamed/prefetched) accesses hit open rows and sustain near-peak
// bandwidth, while interleaved demand misses from different structures
// keep closing and reopening rows, paying tRP + tRCD on most accesses.
//
// The geometry and timings default to one DDR4-2400 channel as in the
// paper's CPU testbed.
package dram

import "fmt"

// Config describes channel geometry and timing in memory-bus clock
// cycles.
type Config struct {
	Channels        int
	BanksPerChannel int
	RowBytes        int64 // row-buffer coverage per bank
	// Timings in bus cycles.
	TRP  int // precharge (close row)
	TRCD int // activate (open row)
	TCAS int // column access
	// BusBytesPerCycle is the per-channel transfer rate.
	BusBytesPerCycle float64
	ClockHz          float64
}

// DDR4_2400 returns one-to-four-channel DDR4-2400 with typical 17-17-17
// timings (in bus-clock cycles at 1.2 GHz; DDR transfers 16 B/cycle on
// a 64-bit channel).
func DDR4_2400(channels int) Config {
	return Config{
		Channels:         channels,
		BanksPerChannel:  16,
		RowBytes:         8 << 10,
		TRP:              17,
		TRCD:             17,
		TCAS:             17,
		BusBytesPerCycle: 16,
		ClockHz:          1.2e9,
	}
}

func (c Config) validate() error {
	switch {
	case c.Channels < 1:
		return fmt.Errorf("dram: %d channels", c.Channels)
	case c.BanksPerChannel < 1:
		return fmt.Errorf("dram: %d banks", c.BanksPerChannel)
	case c.RowBytes < 64:
		return fmt.Errorf("dram: row of %d bytes", c.RowBytes)
	case c.BusBytesPerCycle <= 0 || c.ClockHz <= 0:
		return fmt.Errorf("dram: non-positive rates")
	}
	return nil
}

// Stats counts row-buffer behaviour.
type Stats struct {
	Accesses  int64
	RowHits   int64
	RowMisses int64 // precharge + activate paid
	Bytes     int64
}

// HitRate returns row-buffer hits / accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses)
}

// Sim is a cycle-accumulating DRAM model. Accesses are line-granular;
// channels operate in parallel (total time is the busiest channel).
type Sim struct {
	cfg      Config
	openRow  []int64 // per (channel, bank): open row id, -1 if closed
	cycles   []int64 // per channel
	Stats    Stats
	lineSize int64
}

// NewSim builds a simulator; invalid configs panic (experiment bugs).
func NewSim(cfg Config) *Sim {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	n := cfg.Channels * cfg.BanksPerChannel
	s := &Sim{cfg: cfg, openRow: make([]int64, n), cycles: make([]int64, cfg.Channels), lineSize: 64}
	for i := range s.openRow {
		s.openRow[i] = -1
	}
	return s
}

// Access runs one access of the given extent, expanded to 64 B lines.
// Lines interleave across channels; each line maps to a bank and row
// within its channel.
func (s *Sim) Access(addr int64, bytes int) {
	if bytes <= 0 {
		return
	}
	end := addr + int64(bytes)
	for a := addr &^ (s.lineSize - 1); a < end; a += s.lineSize {
		s.accessLine(a)
	}
}

func (s *Sim) accessLine(addr int64) {
	line := addr / s.lineSize
	ch := int(line % int64(s.cfg.Channels))
	// Row id within the channel: consecutive lines on one channel fill
	// a row before moving on.
	chLine := line / int64(s.cfg.Channels)
	linesPerRow := s.cfg.RowBytes / s.lineSize
	row := chLine / linesPerRow
	bank := int(row % int64(s.cfg.BanksPerChannel))
	slot := ch*s.cfg.BanksPerChannel + bank

	s.Stats.Accesses++
	s.Stats.Bytes += s.lineSize
	// Back-to-back reads of an open row pipeline: CAS latency hides
	// behind the previous transfer, so a hit costs only bus cycles. A
	// row miss serializes precharge + activate + CAS before the burst.
	cost := int64(float64(s.lineSize) / s.cfg.BusBytesPerCycle)
	if s.openRow[slot] != row {
		s.Stats.RowMisses++
		cost += int64(s.cfg.TRP + s.cfg.TRCD + s.cfg.TCAS)
		s.openRow[slot] = row
	} else {
		s.Stats.RowHits++
	}
	s.cycles[ch] += cost
}

// Cycles returns the busiest channel's accumulated cycles.
func (s *Sim) Cycles() int64 {
	var m int64
	for _, c := range s.cycles {
		if c > m {
			m = c
		}
	}
	return m
}

// Seconds converts Cycles to time.
func (s *Sim) Seconds() float64 { return float64(s.Cycles()) / s.cfg.ClockHz }

// EffectiveBandwidth returns achieved bytes/second over the simulated
// interval.
func (s *Sim) EffectiveBandwidth() float64 {
	sec := s.Seconds()
	if sec == 0 {
		return 0
	}
	return float64(s.Stats.Bytes) / sec
}

// PeakBandwidth returns the configuration's theoretical ceiling.
func (s *Sim) PeakBandwidth() float64 {
	return s.cfg.BusBytesPerCycle * s.cfg.ClockHz * float64(s.cfg.Channels)
}

// Efficiency returns achieved / peak bandwidth — the quantity
// perfmodel.CPU's RandomAccessEff approximates with a constant.
func (s *Sim) Efficiency() float64 {
	p := s.PeakBandwidth()
	if p == 0 {
		return 0
	}
	return s.EffectiveBandwidth() / p
}
