package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-width parallel executor used by the blocked kernels
// and by the MnnFast chunk engines. A nil *Pool is valid and means
// "run serially", which keeps single-threaded baselines free of any
// goroutine overhead.
//
// The pool owns long-lived worker goroutines fed over a channel — the
// software analogue of the paper's pinned OpenBLAS threads (§4.1.1):
// compute units stay alive across queries and receive work descriptors,
// so the steady-state serving path never pays goroutine spawn or
// scheduler ramp-up per request. Workers start lazily on the first
// parallel dispatch (a pool that only ever runs serially spawns
// nothing) and live until Close.
//
// Dispatch is allocation-free at steady state: work spans travel as
// plain structs over a buffered channel, per-dispatch bookkeeping is
// drawn from a process-wide sync.Pool, and the caller participates as
// worker 0 rather than idling. Concurrent and nested ParallelFor calls
// are safe: a full dispatch queue degrades to inline execution in the
// caller, and a waiting dispatcher helps drain queued spans before
// parking, so the pool cannot deadlock on its own queue.
type Pool struct {
	workers int
	tasks   chan task
	start   sync.Once
	// spawnFn is the bound spawn method, built once at construction:
	// passing p.spawn to start.Do directly would allocate the bound
	// closure on every dispatch.
	spawnFn func()
	closed  atomic.Bool
}

// task is one contiguous span of a dispatch. It is sent by value: no
// allocation per span.
type task struct {
	d      *dispatch
	worker int
	lo, hi int
}

// dispatch is the shared bookkeeping of one ParallelFor call. Exactly
// one of fn/fnw is set. Instances are reused through dispatchPool, so a
// steady-state dispatch allocates nothing.
type dispatch struct {
	fn  func(lo, hi int)
	fnw func(worker, lo, hi int)
	wg  sync.WaitGroup
}

var dispatchPool = sync.Pool{New: func() any {
	poolCounters.dispatchAllocs.Add(1)
	return new(dispatch)
}}

// poolCounters are process-wide dispatch accounting, shared by every
// Pool because the dispatch descriptors themselves are. They feed the
// observability layer (obs CounterFunc) and the benchmark emitter;
// updates are single atomic adds on the dispatch path, far off the
// per-element hot loops.
var poolCounters struct {
	dispatches     atomic.Int64
	spansQueued    atomic.Int64
	spansInline    atomic.Int64
	dispatchAllocs atomic.Int64
}

// PoolStats is a snapshot of the process-wide dispatch counters.
type PoolStats struct {
	Dispatches     int64 // parallel dispatches issued (serial fast paths excluded)
	SpansQueued    int64 // spans handed to persistent workers
	SpansInline    int64 // spans run inline because the queue was full
	DispatchAllocs int64 // dispatch descriptors freshly allocated
	DispatchReuses int64 // dispatch descriptors recycled from the pool
}

// ReadPoolStats snapshots the dispatch counters. DispatchReuses is
// derived: every dispatch draws exactly one descriptor, so reuses are
// dispatches minus fresh allocations.
func ReadPoolStats() PoolStats {
	d := poolCounters.dispatches.Load()
	a := poolCounters.dispatchAllocs.Load()
	return PoolStats{
		Dispatches:     d,
		SpansQueued:    poolCounters.spansQueued.Load(),
		SpansInline:    poolCounters.spansInline.Load(),
		DispatchAllocs: a,
		DispatchReuses: d - a,
	}
}

//mnnfast:hotpath
func (t task) run() {
	if t.d.fnw != nil {
		t.d.fnw(t.worker, t.lo, t.hi)
	} else {
		t.d.fn(t.lo, t.hi)
	}
	t.d.wg.Done()
}

// NewPool returns a pool that runs on at most workers goroutines
// (including the dispatching caller). workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	p.spawnFn = p.spawn
	if workers > 1 {
		p.tasks = make(chan task, 4*workers)
	}
	return p
}

// Workers reports the parallel width of the pool. A nil pool reports 1.
//
//mnnfast:hotpath
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close stops the pool's worker goroutines. The pool must not be
// dispatching when Close is called, and must not dispatch afterwards.
// Closing a nil, serial, or never-dispatched pool is a no-op.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil {
		return
	}
	if p.closed.CompareAndSwap(false, true) {
		// Start (idempotently) before closing so workers observe the
		// close rather than leaking a half-initialized channel.
		p.start.Do(p.spawnFn)
		close(p.tasks)
	}
}

// spawn launches the persistent workers. The caller of every dispatch
// acts as worker 0, so workers-1 goroutines give full width.
func (p *Pool) spawn() {
	for i := 1; i < p.workers; i++ {
		go func() {
			for t := range p.tasks {
				t.run()
			}
		}()
	}
}

// ParallelFor splits [0, n) into contiguous spans of at least grain
// elements and invokes fn(lo, hi) for each span, using up to
// p.Workers() goroutines. fn must be safe to call concurrently on
// disjoint spans. ParallelFor returns once every span has completed.
//
//mnnfast:hotpath
func (p *Pool) ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.Workers() == 1 || n <= max(grain, 1) {
		fn(0, n)
		return
	}
	p.dispatch(n, grain, fn, nil)
}

// ParallelForWorker is ParallelFor with worker-indexed spans: fn
// receives a worker index in [0, Workers()) that is unique among the
// concurrently running spans of this dispatch. Callers use it to give
// each span private scratch (per-worker partials, chunk logits) without
// any locking. The dispatching goroutine itself runs a span as worker
// 0, so index 0 is always used.
//
//mnnfast:hotpath
func (p *Pool) ParallelForWorker(n, grain int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.Workers() == 1 || n <= max(grain, 1) {
		fn(0, 0, n)
		return
	}
	p.dispatch(n, grain, nil, fn)
}

// dispatch fans spans out to the persistent workers and runs span 0 in
// the caller. Exactly one of fn/fnw is non-nil.
//
//mnnfast:hotpath
func (p *Pool) dispatch(n, grain int, fn func(lo, hi int), fnw func(worker, lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	// Span size: give every worker something to do, never below grain.
	span := (n + p.workers - 1) / p.workers
	if span < grain {
		span = grain
	}
	p.start.Do(p.spawnFn)

	poolCounters.dispatches.Add(1)
	d := dispatchPool.Get().(*dispatch)
	d.fn, d.fnw = fn, fnw

	// Enqueue spans 1.. for the workers; span 0 stays with the caller.
	// A full queue means every worker is busy — run the span inline
	// instead of blocking, which also makes nested dispatch deadlock-free.
	worker := 1
	for lo := span; lo < n; lo += span {
		hi := min(lo+span, n)
		t := task{d: d, worker: worker, lo: lo, hi: hi}
		d.wg.Add(1)
		select {
		case p.tasks <- t:
			poolCounters.spansQueued.Add(1)
		default:
			poolCounters.spansInline.Add(1)
			t.run()
		}
		worker++
	}
	if fnw != nil {
		fnw(0, 0, min(span, n))
	} else {
		fn(0, min(span, n))
	}

	// Help drain queued spans (ours or another dispatch's) before
	// parking: keeps nested and concurrent dispatches live and puts the
	// waiting goroutine to work.
	for {
		select {
		case t := <-p.tasks:
			t.run()
			continue
		default:
		}
		break
	}
	d.wg.Wait()
	d.fn, d.fnw = nil, nil
	dispatchPool.Put(d)
}

// Map runs fn(i) for every i in [0, n) with bounded parallelism. It is
// ParallelFor with grain 1 and a per-index callback, adapted through
// pooled dispatch state rather than a per-call wrapper closure.
//
//mnnfast:hotpath
func (p *Pool) Map(n int, fn func(i int)) {
	if p.Workers() == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	s := getMapState(fn)
	p.ParallelFor(n, 1, s.fn)
	putMapState(s)
}

// String describes the pool for logs and experiment headers.
//
//mnnfast:coldpath
func (p *Pool) String() string {
	return fmt.Sprintf("tensor.Pool(workers=%d)", p.Workers())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
