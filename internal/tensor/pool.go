package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is a fixed-width parallel executor used by the blocked kernels
// and by the MnnFast chunk engines. A nil *Pool is valid and means
// "run serially", which keeps single-threaded baselines free of any
// goroutine overhead.
//
// The pool does not own long-lived goroutines; it bounds the fan-out of
// each ParallelFor call instead. That keeps the package trivially
// leak-free (nothing to Close) while still letting callers pin an exact
// worker count, which the scalability experiments need when they model
// "N threads".
type Pool struct {
	workers int
}

// NewPool returns a pool that runs at most workers goroutines per call.
// workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the parallel width of the pool. A nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ParallelFor splits [0, n) into contiguous spans of at least grain
// elements and invokes fn(lo, hi) for each span, using up to
// p.Workers() goroutines. fn must be safe to call concurrently on
// disjoint spans. ParallelFor returns once every span has completed.
func (p *Pool) ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := p.Workers()
	if w == 1 || n <= grain {
		fn(0, n)
		return
	}
	// Choose a span size that gives every worker something to do but
	// never goes below the requested grain.
	span := (n + w - 1) / w
	if span < grain {
		span = grain
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += span {
		hi := lo + span
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) with bounded parallelism. It is
// ParallelFor with grain 1 and a per-index callback.
func (p *Pool) Map(n int, fn func(i int)) {
	p.ParallelFor(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// String describes the pool for logs and experiment headers.
func (p *Pool) String() string {
	return fmt.Sprintf("tensor.Pool(workers=%d)", p.Workers())
}
