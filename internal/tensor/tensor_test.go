package tensor

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(4)
	if len(v) != 4 {
		t.Fatalf("NewVector(4) length = %d", len(v))
	}
	v.Fill(2)
	if got := v.Sum(); got != 8 {
		t.Errorf("Sum after Fill(2) = %v, want 8", got)
	}
	v.Scale(0.5)
	if got := v.Sum(); got != 4 {
		t.Errorf("Sum after Scale(0.5) = %v, want 4", got)
	}
	v.Zero()
	if got := v.Sum(); got != 0 {
		t.Errorf("Sum after Zero = %v, want 0", got)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Errorf("Clone aliases original: v[0] = %v", v[0])
	}
}

func TestVectorMaxArgMax(t *testing.T) {
	v := Vector{-3, 7, 2, 7}
	if got := v.Max(); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if got := v.ArgMax(); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first maximum)", got)
	}
	if got := Vector(nil).ArgMax(); got != -1 {
		t.Errorf("ArgMax(empty) = %d, want -1", got)
	}
}

func TestVectorMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max of empty vector did not panic")
		}
	}()
	Vector{}.Max()
}

func TestAddInPlace(t *testing.T) {
	v := Vector{1, 2}
	v.AddInPlace(Vector{10, 20})
	if v[0] != 11 || v[1] != 22 {
		t.Errorf("AddInPlace = %v, want [11 22]", v)
	}
}

func TestAddInPlaceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddInPlace length mismatch did not panic")
		}
	}()
	Vector{1}.AddInPlace(Vector{1, 2})
}

func TestDot(t *testing.T) {
	a := Vector{1, 2, 3, 4, 5}
	b := Vector{5, 4, 3, 2, 1}
	if got := Dot(a, b); got != 35 {
		t.Errorf("Dot = %v, want 35", got)
	}
	if got := Dot(Vector{}, Vector{}); got != 0 {
		t.Errorf("Dot(empty) = %v, want 0", got)
	}
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		a := RandomVector(rng, n, 1)
		b := RandomVector(rng, n, 1)
		var want float32
		for i := range a {
			want += a[i] * b[i]
		}
		got := Dot(a, b)
		if absf(got-want) > 1e-3 {
			t.Fatalf("n=%d: Dot = %v, naive = %v", n, got, want)
		}
	}
}

func TestAxpy(t *testing.T) {
	x := Vector{1, 2, 3}
	y := Vector{10, 10, 10}
	Axpy(2, x, y)
	want := Vector{12, 14, 16}
	if MaxAbsDiff(y, want) != 0 {
		t.Errorf("Axpy = %v, want %v", y, want)
	}
	// a == 0 must be a no-op (the zero-skip fast path relies on it).
	Axpy(0, x, y)
	if MaxAbsDiff(y, want) != 0 {
		t.Errorf("Axpy(0,...) modified y: %v", y)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("NewMatrix shape = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 42)
	if got := m.At(1, 2); got != 42 {
		t.Errorf("At(1,2) = %v, want 42", got)
	}
	if got := m.Row(1)[2]; got != 42 {
		t.Errorf("Row(1)[2] = %v, want 42", got)
	}
	if got := m.SizeBytes(); got != 24 {
		t.Errorf("SizeBytes = %d, want 24", got)
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(-1, 2) did not panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows content wrong: %+v", m)
	}
	empty := FromRows(nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Errorf("FromRows(nil) = %dx%d, want 0x0", empty.Rows, empty.Cols)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}

func TestRowSlice(t *testing.T) {
	m := FromRows([][]float32{{1}, {2}, {3}, {4}})
	s := m.RowSlice(1, 3)
	if s.Rows != 2 || s.At(0, 0) != 2 || s.At(1, 0) != 3 {
		t.Errorf("RowSlice content wrong: %+v", s)
	}
	s.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Error("RowSlice should alias the parent storage")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float32{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("Transpose shape = %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("Transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := RandomMatrix(rng, 13, 29, 1)
	if !Equal(m, m.Transpose().Transpose(), 0) {
		t.Error("(Aᵀ)ᵀ != A")
	}
}

func TestMatVec(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	x := Vector{1, 1}
	y := NewVector(3)
	MatVec(nil, a, x, y)
	want := Vector{3, 7, 11}
	if MaxAbsDiff(y, want) != 0 {
		t.Errorf("MatVec = %v, want %v", y, want)
	}
}

func TestMatVecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandomMatrix(rng, 500, 37, 1)
	x := RandomVector(rng, 37, 1)
	ySerial := NewVector(500)
	yPar := NewVector(500)
	MatVec(nil, a, x, ySerial)
	MatVec(NewPool(4), a, x, yPar)
	if d := MaxAbsDiff(ySerial, yPar); d > 1e-5 {
		t.Errorf("parallel MatVec diverges from serial by %v", d)
	}
}

func TestVecMat(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	x := Vector{1, 0, 2}
	y := NewVector(2)
	VecMat(nil, x, a, y)
	want := Vector{11, 14}
	if MaxAbsDiff(y, want) != 0 {
		t.Errorf("VecMat = %v, want %v", y, want)
	}
}

func TestVecMatParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandomMatrix(rng, 999, 48, 1)
	x := RandomVector(rng, 999, 1)
	ySerial := NewVector(48)
	yPar := NewVector(48)
	VecMat(nil, x, a, ySerial)
	VecMat(NewPool(8), x, a, yPar)
	if d := MaxAbsDiff(ySerial, yPar); d > 1e-3 {
		t.Errorf("parallel VecMat diverges from serial by %v", d)
	}
}

func matMulNaive(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			for j := 0; j < b.Cols; j++ {
				c.Data[i*c.Cols+j] += aik * b.At(k, j)
			}
		}
	}
	return c
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, shape := range [][3]int{{1, 1, 1}, {3, 5, 7}, {64, 64, 64}, {65, 33, 129}, {128, 1, 9}} {
		a := RandomMatrix(rng, shape[0], shape[1], 1)
		b := RandomMatrix(rng, shape[1], shape[2], 1)
		c := NewMatrix(shape[0], shape[2])
		MatMul(NewPool(3), a, b, c)
		want := matMulNaive(a, b)
		if !Equal(c, want, 1e-3) {
			t.Fatalf("MatMul mismatch for shape %v", shape)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul shape mismatch did not panic")
		}
	}()
	MatMul(nil, NewMatrix(2, 3), NewMatrix(4, 5), NewMatrix(2, 5))
}

func TestAddBias(t *testing.T) {
	m := FromRows([][]float32{{1, 1}, {2, 2}})
	AddBias(m, Vector{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 22 {
		t.Errorf("AddBias result wrong: %+v", m)
	}
}

func TestOuterAccumulate(t *testing.T) {
	a := NewMatrix(2, 3)
	OuterAccumulate(a, Vector{1, 2}, Vector{1, 10, 100}, 1)
	want := FromRows([][]float32{{1, 10, 100}, {2, 20, 200}})
	if !Equal(a, want, 0) {
		t.Errorf("OuterAccumulate = %+v, want %+v", a, want)
	}
	OuterAccumulate(a, Vector{1, 2}, Vector{1, 10, 100}, -1)
	if !Equal(a, NewMatrix(2, 3), 0) {
		t.Error("scale=-1 should cancel the previous update")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(300)
		v := RandomVector(rng, n, 10)
		orig := v.Clone()
		Softmax(v)
		var sum float64
		for i, x := range v {
			if x < 0 || x > 1 {
				t.Fatalf("softmax value out of range: %v", x)
			}
			sum += float64(x)
			_ = i
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("softmax does not sum to 1: %v", sum)
		}
		// Order preservation: argmax must not move.
		if v.ArgMax() != orig.ArgMax() {
			t.Fatal("softmax changed the argmax")
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	v := Vector{1000, 1000, 1000}
	Softmax(v)
	for _, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			t.Fatalf("softmax overflowed on large logits: %v", v)
		}
		if absf(x-1.0/3.0) > 1e-5 {
			t.Fatalf("uniform large logits should give 1/3, got %v", v)
		}
	}
}

func TestExpIntoLazySoftmaxEquivalence(t *testing.T) {
	// The heart of the column-based algorithm: chunked ExpInto + a final
	// division must equal a direct softmax (Equation 3 vs Equation 4).
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		logits := RandomVector(rng, n, 5)
		direct := logits.Clone()
		Softmax(direct)

		shift := logits.Max()
		chunk := 1 + rng.Intn(64)
		lazy := NewVector(n)
		var total float32
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			total += ExpInto(lazy[lo:hi], logits[lo:hi], shift)
		}
		lazy.Scale(1 / total)
		if d := MaxAbsDiff(direct, lazy); d > 1e-5 {
			t.Fatalf("n=%d chunk=%d: lazy softmax differs from direct by %v", n, chunk, d)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	v := Vector{0, 0}
	want := float32(math.Log(2))
	if got := LogSumExp(v); absf(got-want) > 1e-6 {
		t.Errorf("LogSumExp([0 0]) = %v, want %v", got, want)
	}
	// Stability at large magnitude.
	if got := LogSumExp(Vector{1000, 1000}); absf(got-(1000+want)) > 1e-3 {
		t.Errorf("LogSumExp([1000 1000]) = %v, want %v", got, 1000+want)
	}
}

func TestSoftmaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := RandomMatrix(rng, 17, 23, 3)
	SoftmaxRows(NewPool(4), m)
	for i := 0; i < m.Rows; i++ {
		s := m.Row(i).Sum()
		if absf(s-1) > 1e-4 {
			t.Fatalf("row %d sums to %v after SoftmaxRows", i, s)
		}
	}
}

func TestQuickDotSymmetry(t *testing.T) {
	f := func(raw []float32) bool {
		for _, x := range raw {
			if x != x || x > 1e6 || x < -1e6 { // skip NaN and values whose products overflow
				return true
			}
		}
		a := Vector(raw)
		b := make(Vector, len(a))
		for i := range b {
			b[i] = a[len(a)-1-i]
		}
		// Dot(a, b) must equal Dot(b, a) exactly (same multiply pairs,
		// different summation order can differ — allow tolerance scaled
		// to magnitude).
		d1, d2 := Dot(a, b), Dot(b, a)
		tol := 1e-3 * (1 + absf(d1))
		return absf(d1-d2) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickAxpyLinearity(t *testing.T) {
	f := func(raw []float32, a float32) bool {
		if len(raw) == 0 {
			return true
		}
		if a != a || a > 1e6 || a < -1e6 { // skip NaN / huge scales
			return true
		}
		for _, x := range raw {
			if x != x || x > 1e6 || x < -1e6 {
				return true
			}
		}
		x := Vector(raw)
		y1 := NewVector(len(x))
		Axpy(a, x, y1)
		y2 := NewVector(len(x))
		Axpy(a/2, x, y2)
		Axpy(a/2, x, y2)
		return MaxAbsDiff(y1, y2) <= 1e-2*(1+absf(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickTransposePreservesElements(t *testing.T) {
	f := func(raw []float32) bool {
		n := len(raw)
		if n == 0 {
			return true
		}
		cols := 1 + n%7
		rows := n / cols
		if rows == 0 {
			return true
		}
		m := &Matrix{Rows: rows, Cols: cols, Data: raw[:rows*cols]}
		tr := m.Transpose()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a, b := m.At(i, j), tr.At(j, i)
				if a != b && !(a != a && b != b) { // NaN-tolerant compare
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPoolWorkers(t *testing.T) {
	if got := (*Pool)(nil).Workers(); got != 1 {
		t.Errorf("nil pool Workers = %d, want 1", got)
	}
	if got := NewPool(5).Workers(); got != 5 {
		t.Errorf("NewPool(5).Workers = %d", got)
	}
	if got := NewPool(0).Workers(); got < 1 {
		t.Errorf("NewPool(0).Workers = %d, want >= 1", got)
	}
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 7, 100, 1001} {
			p := NewPool(workers)
			seen := make([]int32, n)
			var mu sync.Mutex
			p.ParallelFor(n, 3, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestPoolMap(t *testing.T) {
	p := NewPool(4)
	var count int64
	p.Map(100, func(i int) { atomic.AddInt64(&count, 1) })
	if count != 100 {
		t.Errorf("Map invoked fn %d times, want 100", count)
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := RandomMatrix(rand.New(rand.NewSource(42)), 5, 5, 1)
	b := RandomMatrix(rand.New(rand.NewSource(42)), 5, 5, 1)
	if !Equal(a, b, 0) {
		t.Error("RandomMatrix is not deterministic for a fixed seed")
	}
	g := GaussianMatrix(rand.New(rand.NewSource(42)), 4, 4, 0.1)
	h := GaussianMatrix(rand.New(rand.NewSource(42)), 4, 4, 0.1)
	if !Equal(g, h, 0) {
		t.Error("GaussianMatrix is not deterministic for a fixed seed")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if got := MaxAbsDiff(Vector{1, 2}, Vector{1, 5}); got != 3 {
		t.Errorf("MaxAbsDiff = %v, want 3", got)
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(NewMatrix(1, 2), NewMatrix(2, 1), 1) {
		t.Error("Equal must reject different shapes")
	}
}
