//go:build !amd64

package tensor

// archTiers has no assembly tiers to contribute on this architecture;
// dispatch uses the portable go tier. An arm64 NEON tier slots in here
// when it lands (the CI cross-compile smoke step keeps this file
// building).
func archTiers() map[string]kernelTable { return nil }
