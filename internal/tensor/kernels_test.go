package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests pinning the unrolled/blocked kernels against their
// scalar reference twins (kernels_scalar.go), and the fast-exp against
// float64 math.Exp. Tolerances reflect reassociation only: the unrolled
// kernels perform the same multiplies in a different summation order.

func TestQuickDotMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw) // includes 0 and non-multiples of 4
		r := rand.New(rand.NewSource(seed))
		a := RandomVector(r, n, 1)
		b := RandomVector(r, n, 1)
		got := Dot(a, b)
		want := DotScalar(a, b)
		return absf(got-want) <= 1e-3*(1+absf(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuickDot4MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)
		r := rand.New(rand.NewSource(seed))
		u := RandomVector(r, n, 1)
		rows := [4]Vector{}
		for i := range rows {
			rows[i] = RandomVector(r, n, 1)
		}
		d0, d1, d2, d3 := Dot4(u, rows[0], rows[1], rows[2], rows[3])
		for i, got := range []float32{d0, d1, d2, d3} {
			want := DotScalar(u, rows[i])
			if absf(got-want) > 1e-3*(1+absf(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuickAxpyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	f := func(seed int64, nRaw uint8, a float32) bool {
		if a != a || a > 100 || a < -100 {
			return true
		}
		n := int(nRaw)
		r := rand.New(rand.NewSource(seed))
		x := RandomVector(r, n, 1)
		y := RandomVector(r, n, 1)
		yRef := y.Clone()
		Axpy(a, x, y)
		AxpyScalar(a, x, yRef)
		return MaxAbsDiff(y, yRef) <= 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuickAxpy4MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)
		r := rand.New(rand.NewSource(seed))
		var as [4]float32
		var xs [4]Vector
		for i := range xs {
			as[i] = r.Float32()*4 - 2
			xs[i] = RandomVector(r, n, 1)
		}
		y := RandomVector(r, n, 1)
		yRef := y.Clone()
		Axpy4(as[0], as[1], as[2], as[3], xs[0], xs[1], xs[2], xs[3], y)
		for i := range xs {
			AxpyScalar(as[i], xs[i], yRef)
		}
		return MaxAbsDiff(y, yRef) <= 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuickScaleAndAddMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	f := func(seed int64, nRaw uint8, a float32) bool {
		if a != a || a > 100 || a < -100 {
			return true
		}
		n := int(nRaw)
		r := rand.New(rand.NewSource(seed))
		v := RandomVector(r, n, 1)
		w := RandomVector(r, n, 1)
		vRef, wRef := v.Clone(), w.Clone()

		v.Scale(a)
		ScaleScalar(vRef, a)
		if MaxAbsDiff(v, vRef) > 0 { // same multiplies, same order: exact
			return false
		}
		v.AddInPlace(w)
		AddScalar(vRef, wRef)
		return MaxAbsDiff(v, vRef) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestExpfErrorBound asserts the documented accuracy of the fast-exp:
// max relative error vs float64 math.Exp below 1.2e-7 over the full
// representable range (measured 8.31e-8; see exp.go).
func TestExpfErrorBound(t *testing.T) {
	const bound = 1.2e-7
	var worst float64
	var at float32
	check := func(x float32) {
		want := math.Exp(float64(x))
		got := float64(Expf(x))
		if want == 0 || math.IsInf(want, 1) {
			return
		}
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst, at = rel, x
		}
	}
	// Dense sweep plus randomized fill-in.
	for x := float32(-87.3); x < 88.7; x += 0.001 {
		check(x)
	}
	rng := rand.New(rand.NewSource(85))
	for i := 0; i < 200000; i++ {
		check(rng.Float32()*176 - 87.3)
	}
	if worst > bound {
		t.Errorf("Expf max relative error %.3e at x=%v, want <= %.1e", worst, at, bound)
	}
	t.Logf("Expf max relative error %.3e at x=%v", worst, at)
}

func TestExpfEdgeCases(t *testing.T) {
	if got := Expf(0); got != 1 {
		t.Errorf("Expf(0) = %v, want 1", got)
	}
	if got := Expf(-100); got != 0 {
		t.Errorf("Expf(-100) = %v, want 0 (underflow)", got)
	}
	if got := Expf(200); !math.IsInf(float64(got), 1) {
		t.Errorf("Expf(200) = %v, want +Inf", got)
	}
	if got := Expf(float32(math.NaN())); got == got {
		t.Errorf("Expf(NaN) = %v, want NaN", got)
	}
	// Just below the overflow threshold the result is finite and huge —
	// the two-step 2ⁿ scaling must not overflow early.
	if got := Expf(88.4); math.IsInf(float64(got), 1) || got < 1e38 {
		t.Errorf("Expf(88.4) = %v, want finite ~2.2e38", got)
	}
}

func TestQuickExpIntoMatchesScalar(t *testing.T) {
	f := func(raw []float32, shift float32) bool {
		if shift != shift || shift > 50 || shift < -50 {
			return true
		}
		src := clean(raw)
		dst := NewVector(len(src))
		dstRef := NewVector(len(src))
		sum := ExpInto(dst, src, shift)
		sumRef := ExpIntoScalar(dstRef, src, shift)
		if MaxAbsDiff(dst, dstRef) > 1e-4*(1+absf(sumRef)) {
			return false
		}
		return absf(sum-sumRef) <= 1e-4*(1+absf(sumRef))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
