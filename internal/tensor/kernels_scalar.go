package tensor

import "math"

// Scalar reference kernels.
//
// Every unrolled or otherwise transformed kernel in this package keeps a
// one-loop scalar twin here. The references are the ground truth the
// property tests pin the fast kernels against (see kernels_test.go);
// they are never called on the serving path.

// DotScalar is the reference inner product: one serial accumulator, no
// unrolling.
func DotScalar(a, b Vector) float32 {
	if len(a) != len(b) {
		panic("tensor: DotScalar length mismatch")
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AxpyScalar is the reference y += a·x.
func AxpyScalar(a float32, x, y Vector) {
	if len(x) != len(y) {
		panic("tensor: AxpyScalar length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// ScaleScalar is the reference v *= a.
func ScaleScalar(v Vector, a float32) {
	for i := range v {
		v[i] *= a
	}
}

// AddScalar is the reference v += w.
func AddScalar(v, w Vector) {
	if len(v) != len(w) {
		panic("tensor: AddScalar length mismatch")
	}
	for i := range v {
		v[i] += w[i]
	}
}

// ExpIntoScalar is the reference for ExpInto: float64 math.Exp per
// element, float64 accumulation.
func ExpIntoScalar(dst, src Vector, shift float32) float32 {
	if len(dst) != len(src) {
		panic("tensor: ExpIntoScalar length mismatch")
	}
	var sum float64
	for i, x := range src {
		e := float32(math.Exp(float64(x - shift)))
		dst[i] = e
		sum += float64(e)
	}
	return float32(sum)
}
