package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// clean replaces NaN/huge values so float32 arithmetic stays finite.
func clean(raw []float32) Vector {
	v := make(Vector, len(raw))
	for i, x := range raw {
		switch {
		case x != x: // NaN
			v[i] = 0
		case x > 100:
			v[i] = 100
		case x < -100:
			v[i] = -100
		default:
			v[i] = x
		}
	}
	return v
}

func TestQuickMatVecLinearity(t *testing.T) {
	// A·(x + y) == A·x + A·y within float32 tolerance.
	rng := rand.New(rand.NewSource(70))
	f := func(seed int64, rowsRaw, colsRaw uint8) bool {
		rows := 1 + int(rowsRaw)%40
		cols := 1 + int(colsRaw)%40
		r := rand.New(rand.NewSource(seed))
		a := RandomMatrix(r, rows, cols, 1)
		x := RandomVector(r, cols, 1)
		y := RandomVector(r, cols, 1)

		sum := x.Clone()
		sum.AddInPlace(y)
		lhs := NewVector(rows)
		MatVec(nil, a, sum, lhs)

		ax := NewVector(rows)
		ay := NewVector(rows)
		MatVec(nil, a, x, ax)
		MatVec(nil, a, y, ay)
		ax.AddInPlace(ay)
		return MaxAbsDiff(lhs, ax) <= 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuickVecMatEqualsTransposedMatVec(t *testing.T) {
	// xᵀ·A == (Aᵀ·x)ᵀ.
	rng := rand.New(rand.NewSource(71))
	f := func(seed int64, rowsRaw, colsRaw uint8) bool {
		rows := 1 + int(rowsRaw)%40
		cols := 1 + int(colsRaw)%40
		r := rand.New(rand.NewSource(seed))
		a := RandomMatrix(r, rows, cols, 1)
		x := RandomVector(r, rows, 1)

		viaVecMat := NewVector(cols)
		VecMat(nil, x, a, viaVecMat)
		viaTranspose := NewVector(cols)
		MatVec(nil, a.Transpose(), x, viaTranspose)
		return MaxAbsDiff(viaVecMat, viaTranspose) <= 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuickMatMulAssociatesWithVector(t *testing.T) {
	// (A·B)·x == A·(B·x).
	rng := rand.New(rand.NewSource(72))
	f := func(seed int64, mRaw, kRaw, nRaw uint8) bool {
		m := 1 + int(mRaw)%20
		k := 1 + int(kRaw)%20
		n := 1 + int(nRaw)%20
		r := rand.New(rand.NewSource(seed))
		a := RandomMatrix(r, m, k, 1)
		b := RandomMatrix(r, k, n, 1)
		x := RandomVector(r, n, 1)

		ab := NewMatrix(m, n)
		MatMul(nil, a, b, ab)
		lhs := NewVector(m)
		MatVec(nil, ab, x, lhs)

		bx := NewVector(k)
		MatVec(nil, b, x, bx)
		rhs := NewVector(m)
		MatVec(nil, a, bx, rhs)
		return MaxAbsDiff(lhs, rhs) <= 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuickSoftmaxShiftInvariance(t *testing.T) {
	// softmax(x) == softmax(x + c) for any constant shift.
	f := func(raw []float32, shift float32) bool {
		if len(raw) == 0 {
			return true
		}
		if shift != shift || shift > 100 || shift < -100 {
			return true
		}
		v := clean(raw)
		shifted := v.Clone()
		for i := range shifted {
			shifted[i] += shift
		}
		Softmax(v)
		Softmax(shifted)
		return MaxAbsDiff(v, shifted) <= 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickExpIntoShiftConsistency(t *testing.T) {
	// For any shift, ExpInto's normalized result equals Softmax.
	f := func(raw []float32, shiftRaw float32) bool {
		if len(raw) == 0 {
			return true
		}
		v := clean(raw)
		shift := v.Max() // stable shift
		if shiftRaw == shiftRaw && shiftRaw > -50 && shiftRaw < 50 {
			shift += shiftRaw / 10 // perturb: correctness must not depend on the exact shift
		}
		exp := NewVector(len(v))
		sum := ExpInto(exp, v, shift)
		if sum <= 0 {
			return false
		}
		exp.Scale(1 / sum)

		direct := v.Clone()
		Softmax(direct)
		return MaxAbsDiff(exp, direct) <= 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickPoolMatVecAgreesAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	f := func(seed int64, workersRaw uint8) bool {
		workers := 1 + int(workersRaw)%8
		r := rand.New(rand.NewSource(seed))
		a := RandomMatrix(r, 257, 31, 1)
		x := RandomVector(r, 31, 1)
		serial := NewVector(257)
		MatVec(nil, a, x, serial)
		par := NewVector(257)
		MatVec(NewPool(workers), a, x, par)
		return MaxAbsDiff(serial, par) <= 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}
