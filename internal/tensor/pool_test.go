package tensor

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolParallelForCoverage checks every index is visited exactly once
// across span shapes, worker counts, and grains.
func TestPoolParallelForCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, grain := range []int{0, 1, 8, 512} {
				visits := make([]int32, n)
				p.ParallelFor(n, grain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, v)
					}
				}
			}
		}
		p.Close()
	}
}

// TestPoolWorkerIDs checks ParallelForWorker hands out worker indices
// that are in range and unique per concurrently-live span, by using
// them to index private scratch without synchronization under -race.
func TestPoolWorkerIDs(t *testing.T) {
	const n = 10000
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		scratch := make([][]int, p.Workers())
		for i := range scratch {
			scratch[i] = make([]int, 1)
		}
		var total atomic.Int64
		p.ParallelForWorker(n, 1, func(worker, lo, hi int) {
			if worker < 0 || worker >= p.Workers() {
				t.Errorf("worker index %d out of range [0, %d)", worker, p.Workers())
			}
			scratch[worker][0] += hi - lo // racy unless IDs are exclusive
			total.Add(int64(hi - lo))
		})
		if total.Load() != n {
			t.Errorf("workers=%d: covered %d of %d", workers, total.Load(), n)
		}
		p.Close()
	}
}

// TestPoolNestedDispatch runs a ParallelFor inside a ParallelFor on the
// same pool — the full-queue inline fallback must keep it live.
func TestPoolNestedDispatch(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int64
	p.ParallelFor(16, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.ParallelFor(100, 1, func(lo2, hi2 int) {
				count.Add(int64(hi2 - lo2))
			})
		}
	})
	if got := count.Load(); got != 1600 {
		t.Fatalf("nested dispatch covered %d of 1600", got)
	}
}

// TestPoolConcurrentDispatch hammers one pool from many goroutines.
func TestPoolConcurrentDispatch(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				var count atomic.Int64
				p.ParallelFor(777, 10, func(lo, hi int) {
					count.Add(int64(hi - lo))
				})
				if count.Load() != 777 {
					t.Errorf("covered %d of 777", count.Load())
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoolDispatchAllocs asserts the steady-state dispatch path is
// allocation-free: spans travel as structs and bookkeeping is pooled.
// The closure is hoisted outside the measured loop, as the serving path
// does (see core.inferScratch).
func TestPoolDispatchAllocs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	fn := func(worker, lo, hi int) { sink.Add(int64(hi - lo)) }
	p.ParallelForWorker(4096, 64, fn) // warm up workers and pools
	allocs := testing.AllocsPerRun(200, func() {
		p.ParallelForWorker(4096, 64, fn)
	})
	if allocs != 0 {
		t.Errorf("ParallelForWorker allocates %v per dispatch, want 0", allocs)
	}
}

// TestPoolCloseIdempotent ensures Close is safe to call repeatedly and
// on pools that never dispatched.
func TestPoolCloseIdempotent(t *testing.T) {
	var nilPool *Pool
	nilPool.Close()

	p := NewPool(1) // serial: no channel
	p.Close()
	p.Close()

	q := NewPool(3) // never dispatched
	q.Close()
	q.Close()

	r := NewPool(3)
	r.ParallelFor(100, 1, func(lo, hi int) {})
	r.Close()
	r.Close()
}

// TestPoolStatsCounters checks the process-wide dispatch accounting:
// parallel dispatches are counted, their spans land in queued or inline,
// and the serial fast path stays invisible. Counters are global, so the
// test asserts deltas, tolerating concurrent test packages only by
// running its own dispatches between reads.
func TestPoolStatsCounters(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	before := ReadPoolStats()
	const rounds = 10
	for i := 0; i < rounds; i++ {
		p.ParallelFor(4096, 64, func(lo, hi int) {})
	}
	p.ParallelFor(1, 64, func(lo, hi int) {}) // n <= grain: serial, uncounted
	d := ReadPoolStats()
	if got := d.Dispatches - before.Dispatches; got != rounds {
		t.Errorf("dispatches delta = %d, want %d", got, rounds)
	}
	spans := (d.SpansQueued - before.SpansQueued) + (d.SpansInline - before.SpansInline)
	// Each 4-worker dispatch enqueues 3 spans (span 0 runs in the caller).
	if spans != 3*rounds {
		t.Errorf("spans delta = %d, want %d", spans, 3*rounds)
	}
	if d.DispatchAllocs+d.DispatchReuses != d.Dispatches {
		t.Errorf("allocs %d + reuses %d != dispatches %d",
			d.DispatchAllocs, d.DispatchReuses, d.Dispatches)
	}
}
