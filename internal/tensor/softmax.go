package tensor

import "math"

// Softmax overwrites v with softmax(v) computed with the usual
// max-subtraction stabilization: softmax(x)_i = exp(x_i - max) / Σ.
// It returns the normalizing sum Σ exp(x_i - max).
func Softmax(v Vector) float32 {
	if len(v) == 0 {
		return 0
	}
	m := v.Max()
	var sum float64
	for i, x := range v {
		e := float32(math.Exp(float64(x - m)))
		v[i] = e
		sum += float64(e)
	}
	inv := float32(1 / sum)
	for i := range v {
		v[i] *= inv
	}
	return float32(sum)
}

// ExpInto writes exp(src_i - shift) into dst and returns the sum of the
// written values. It is the first half of the paper's lazy softmax: the
// column-based algorithm applies ExpInto per chunk, accumulates the
// returned partial sums, and divides only once at the end (Equation 4).
//
// shift plays the role of the global max in the stabilized softmax; the
// column engine obtains it from a bound on the logits (see core) so
// that per-chunk results remain combinable.
func ExpInto(dst, src Vector, shift float32) float32 {
	if len(dst) != len(src) {
		panic("tensor: ExpInto length mismatch")
	}
	var sum float64
	for i, x := range src {
		e := float32(math.Exp(float64(x - shift)))
		dst[i] = e
		sum += float64(e)
	}
	return float32(sum)
}

// LogSumExp returns log Σ exp(v_i), computed stably. The training code
// uses it for the cross-entropy loss.
func LogSumExp(v Vector) float32 {
	if len(v) == 0 {
		return float32(math.Inf(-1))
	}
	m := v.Max()
	var sum float64
	for _, x := range v {
		sum += math.Exp(float64(x - m))
	}
	return m + float32(math.Log(sum))
}

// SoftmaxRows applies Softmax independently to every row of m.
func SoftmaxRows(p *Pool, m *Matrix) {
	p.ParallelFor(m.Rows, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			Softmax(m.Row(i))
		}
	})
}
