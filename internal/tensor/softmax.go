package tensor

import "math"

// Softmax overwrites v with softmax(v) computed with the usual
// max-subtraction stabilization: softmax(x)_i = exp(x_i - max) / Σ.
// It returns the normalizing sum Σ exp(x_i - max). The exponentials use
// the vectorized float32 fast-exp (see exp.go for the error bound);
// ExpIntoScalar is the math.Exp reference twin.
//
//mnnfast:hotpath
func Softmax(v Vector) float32 {
	if len(v) == 0 {
		return 0
	}
	sum := expIntoImpl(v, v, v.Max())
	v.Scale(1 / sum)
	return sum
}

// ExpInto writes exp(src_i - shift) into dst and returns the sum of the
// written values. It is the first half of the paper's lazy softmax: the
// column-based algorithm applies ExpInto per chunk, accumulates the
// returned partial sums, and divides only once at the end (Equation 4).
//
// shift plays the role of the global max in the stabilized softmax; the
// column engine obtains it from a bound on the logits (see core) so
// that per-chunk results remain combinable.
//
//mnnfast:hotpath
func ExpInto(dst, src Vector, shift float32) float32 {
	if len(dst) != len(src) {
		panic("tensor: ExpInto length mismatch")
	}
	return expIntoImpl(dst, src, shift)
}

// LogSumExp returns log Σ exp(v_i), computed stably. The training code
// uses it for the cross-entropy loss, so it stays on float64 math.Exp:
// loss curves are compared across runs at tolerances tighter than the
// fast-exp bound, and this path is not latency-critical.
func LogSumExp(v Vector) float32 {
	if len(v) == 0 {
		return float32(math.Inf(-1))
	}
	m := v.Max()
	var sum float64
	for _, x := range v {
		sum += math.Exp(float64(x - m))
	}
	return m + float32(math.Log(sum))
}

// SoftmaxRows applies Softmax independently to every row of m.
//
//mnnfast:hotpath
func SoftmaxRows(p *Pool, m *Matrix) {
	if p.Workers() == 1 || m.Rows <= 8 {
		for i := 0; i < m.Rows; i++ {
			Softmax(m.Row(i))
		}
		return
	}
	s := getSoftmaxRowsState(m)
	p.ParallelFor(m.Rows, 8, s.fn)
	putSoftmaxRowsState(s)
}
