package tensor

import (
	"math/rand"
	"testing"
)

func benchVec(n int) (Vector, Vector) {
	rng := rand.New(rand.NewSource(1))
	return RandomVector(rng, n, 1), RandomVector(rng, n, 1)
}

func BenchmarkDot(b *testing.B) {
	for _, n := range []int{48, 256, 4096} {
		b.Run(itoa(n), func(b *testing.B) {
			x, y := benchVec(n)
			b.SetBytes(int64(n) * 8)
			for i := 0; i < b.N; i++ {
				Dot(x, y)
			}
		})
	}
}

func BenchmarkAxpy(b *testing.B) {
	for _, n := range []int{48, 256, 4096} {
		b.Run(itoa(n), func(b *testing.B) {
			x, y := benchVec(n)
			b.SetBytes(int64(n) * 8)
			for i := 0; i < b.N; i++ {
				Axpy(0.5, x, y)
			}
		})
	}
}

func BenchmarkSoftmax(b *testing.B) {
	for _, n := range []int{256, 4096, 65536} {
		b.Run(itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			src := RandomVector(rng, n, 5)
			v := NewVector(n)
			b.SetBytes(int64(n) * 4)
			for i := 0; i < b.N; i++ {
				copy(v, src)
				Softmax(v)
			}
		})
	}
}

func BenchmarkMatVec(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := RandomMatrix(rng, 4096, 48, 1)
	x := RandomVector(rng, 48, 1)
	y := NewVector(4096)
	b.SetBytes(a.SizeBytes())
	for i := 0; i < b.N; i++ {
		MatVec(nil, a, x, y)
	}
}

func BenchmarkVecMat(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := RandomMatrix(rng, 4096, 48, 1)
	x := RandomVector(rng, 4096, 1)
	y := NewVector(48)
	b.SetBytes(a.SizeBytes())
	for i := 0; i < b.N; i++ {
		VecMat(nil, x, a, y)
	}
}

func BenchmarkMatMul(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			x := RandomMatrix(rng, n, n, 1)
			y := RandomMatrix(rng, n, n, 1)
			c := NewMatrix(n, n)
			b.SetBytes(int64(2 * n * n * n * 4))
			for i := 0; i < b.N; i++ {
				MatMul(nil, x, y, c)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
