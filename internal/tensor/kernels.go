package tensor

import "fmt"

// MatVec computes y = A·x where A is rows×cols and x has length cols.
// y must have length rows. The pool, if non-nil, parallelizes over rows.
//
//mnnfast:hotpath
func MatVec(p *Pool, a *Matrix, x, y Vector) {
	if a.Cols != len(x) || a.Rows != len(y) {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch A=%dx%d x=%d y=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	if p.Workers() == 1 || a.Rows < 2*64 {
		// Serial path stays free of pool traffic: small matrices and
		// serial pools never touch the dispatch-state pool.
		for i := 0; i < a.Rows; i++ {
			y[i] = Dot(a.Row(i), x)
		}
		return
	}
	s := getMatVecState(a, x, y)
	p.ParallelFor(a.Rows, 64, s.fn)
	putMatVecState(s)
}

// VecMat computes y = xᵀ·A where A is rows×cols and x has length rows.
// y must have length cols. This is the access pattern of the weighted
// sum o = Σ pᵢ·m_iᴼᵁᵀ: one streaming pass over the rows of A.
//
//mnnfast:hotpath
func VecMat(p *Pool, x Vector, a *Matrix, y Vector) {
	if a.Rows != len(x) || a.Cols != len(y) {
		panic(fmt.Sprintf("tensor: VecMat shape mismatch x=%d A=%dx%d y=%d", len(x), a.Rows, a.Cols, len(y)))
	}
	if w := p.Workers(); w > 1 && a.Rows >= 2*w {
		// Parallelize over row bands with private arena accumulators,
		// reduced into y under a short lock. Rows are the long axis
		// (ns), columns are short (ed), so the reduction is cheap —
		// exactly the scale-out argument of the paper's column-based
		// algorithm (§3.1). The accumulators come from the vector arena
		// and the dispatch closure from the pooled state: no per-worker
		// or per-call allocation at steady state.
		y.Zero()
		s := getVecMatState(a, x, y)
		p.ParallelFor(a.Rows, 64, s.fn)
		putVecMatState(s)
		return
	}
	y.Zero()
	for i := 0; i < a.Rows; i++ {
		Axpy(x[i], a.Row(i), y)
	}
}

// MatMul computes C = A·B with a cache-blocked i-k-j loop order. A is
// m×k, B is k×n, C must be m×n and is overwritten. The pool, if
// non-nil, parallelizes over row blocks of C.
func MatMul(p *Pool, a, b, c *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch A=%dx%d B=%dx%d C=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	const blk = 64
	c.Zero()
	p.ParallelFor(a.Rows, blk, func(lo, hi int) {
		for i0 := lo; i0 < hi; i0 += blk {
			i1 := min(i0+blk, hi)
			for k0 := 0; k0 < a.Cols; k0 += blk {
				k1 := min(k0+blk, a.Cols)
				for i := i0; i < i1; i++ {
					ci := c.Row(i)
					ai := a.Row(i)
					for k := k0; k < k1; k++ {
						Axpy(ai[k], b.Row(k), ci)
					}
				}
			}
		}
	})
}

// AddBias adds vector b to every row of m.
func AddBias(m *Matrix, b Vector) {
	if m.Cols != len(b) {
		panic(fmt.Sprintf("tensor: AddBias shape mismatch m.Cols=%d b=%d", m.Cols, len(b)))
	}
	for i := 0; i < m.Rows; i++ {
		m.Row(i).AddInPlace(b)
	}
}

// OuterAccumulate computes A += x·yᵀ, the rank-1 update used by the
// training gradients. x has length A.Rows, y has length A.Cols.
func OuterAccumulate(a *Matrix, x, y Vector, scale float32) {
	if a.Rows != len(x) || a.Cols != len(y) {
		panic(fmt.Sprintf("tensor: OuterAccumulate shape mismatch A=%dx%d x=%d y=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	for i := range x {
		Axpy(scale*x[i], y, a.Row(i))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
