package tensor

import "sync"

// Pooled dispatch state for the parallel kernels.
//
// A ParallelFor body written as a closure literal captures the kernel
// operands and escapes to the heap on every call — one allocation per
// MatVec/VecMat/SoftmaxRows/Map on the serving hot path (the finding
// DESIGN.md §9 deferred and lint.baseline used to carry). The fix is
// the sched.runState idiom used by internal/core: each kernel draws a
// state struct from a process-wide sync.Pool whose dispatch closure was
// built once, at pool-New time, over the struct's fields. A call sets
// the fields, dispatches the prebuilt closure, clears the fields (so
// the pool does not pin caller data), and returns the state — zero
// allocations at steady state.
//
// The fields are written before the dispatch and read-only inside it;
// ParallelFor's completion barrier orders the clears after every worker
// has finished.

// matVecState carries the operands of one parallel MatVec dispatch.
type matVecState struct {
	a    *Matrix
	x, y Vector
	fn   func(lo, hi int)
}

var matVecPool = sync.Pool{New: func() any {
	s := new(matVecState)
	s.fn = func(lo, hi int) {
		a, x, y := s.a, s.x, s.y
		for i := lo; i < hi; i++ {
			y[i] = Dot(a.Row(i), x)
		}
	}
	return s
}}

//mnnfast:pool-get
func getMatVecState(a *Matrix, x, y Vector) *matVecState {
	s := matVecPool.Get().(*matVecState)
	s.a, s.x, s.y = a, x, y
	return s
}

//mnnfast:pool-put
func putMatVecState(s *matVecState) {
	s.a, s.x, s.y = nil, nil, nil
	matVecPool.Put(s)
}

// vecMatState carries the operands of one parallel VecMat dispatch.
// Each span accumulates into a private arena vector and reduces into y
// under the embedded mutex.
type vecMatState struct {
	mu   sync.Mutex
	a    *Matrix
	x, y Vector
	fn   func(lo, hi int)
}

var vecMatPool = sync.Pool{New: func() any {
	s := new(vecMatState)
	s.fn = func(lo, hi int) {
		a, x := s.a, s.x
		accp := GetVector(a.Cols)
		acc := *accp
		for i := lo; i < hi; i++ {
			Axpy(x[i], a.Row(i), acc)
		}
		s.mu.Lock()
		s.y.AddInPlace(acc)
		s.mu.Unlock()
		PutVector(accp)
	}
	return s
}}

//mnnfast:pool-get
func getVecMatState(a *Matrix, x, y Vector) *vecMatState {
	s := vecMatPool.Get().(*vecMatState)
	s.a, s.x, s.y = a, x, y
	return s
}

//mnnfast:pool-put
func putVecMatState(s *vecMatState) {
	s.a, s.x, s.y = nil, nil, nil
	vecMatPool.Put(s)
}

// softmaxRowsState carries the matrix of one parallel SoftmaxRows
// dispatch.
type softmaxRowsState struct {
	m  *Matrix
	fn func(lo, hi int)
}

var softmaxRowsPool = sync.Pool{New: func() any {
	s := new(softmaxRowsState)
	s.fn = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			Softmax(s.m.Row(i))
		}
	}
	return s
}}

//mnnfast:pool-get
func getSoftmaxRowsState(m *Matrix) *softmaxRowsState {
	s := softmaxRowsPool.Get().(*softmaxRowsState)
	s.m = m
	return s
}

//mnnfast:pool-put
func putSoftmaxRowsState(s *softmaxRowsState) {
	s.m = nil
	softmaxRowsPool.Put(s)
}

// mapState adapts a per-index callback to a span body for Pool.Map
// without re-wrapping it in a fresh closure per call.
type mapState struct {
	fn1 func(i int)
	fn  func(lo, hi int)
}

var mapPool = sync.Pool{New: func() any {
	s := new(mapState)
	s.fn = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.fn1(i)
		}
	}
	return s
}}

//mnnfast:pool-get
func getMapState(fn1 func(i int)) *mapState {
	s := mapPool.Get().(*mapState)
	s.fn1 = fn1
	return s
}

//mnnfast:pool-put
func putMapState(s *mapState) {
	s.fn1 = nil
	mapPool.Put(s)
}
