package tensor

import "math"

// Fast float32 exponential.
//
// The serving hot path evaluates one exponential per story sentence per
// query (the partial-softmax step of the column-based algorithm), and
// math.Exp costs a float32→float64→float32 round-trip plus a float64
// polynomial sized for 53-bit precision that a float32 pipeline cannot
// use. Expf computes exp(x) entirely in float32 with the classic
// range-reduction + degree-5 minimax polynomial (the Cephes expf
// scheme): x = n·ln2 + r with |r| ≤ ln2/2, exp(r) from the polynomial,
// and the 2ⁿ scale applied by direct exponent-field construction.
//
// Measured accuracy (asserted by TestExpfErrorBound): the maximum
// relative error against float64 math.Exp over [-87.3, 88.7] is
// 8.31e-8, below one ulp of float32 (the test asserts the slightly
// looser 1.2e-7 to stay robust across compilers and FMA contraction).
// That is at the rounding floor of float32 — the stabilized-softmax
// tolerances used throughout this repository (1e-4) are three orders
// of magnitude looser.

const (
	expLog2e = 1.4426950408889634 // 1/ln2
	// ln2 split into a high part exactly representable in float32 and a
	// low correction, so r = x - n·ln2 keeps full float32 precision.
	expC1 float32 = 0.693359375
	expC2 float32 = -2.12194440e-4

	// Degree-5 minimax coefficients for exp(r) on [-ln2/2, ln2/2].
	expP0 float32 = 1.9875691500e-4
	expP1 float32 = 1.3981999507e-3
	expP2 float32 = 8.3334519073e-3
	expP3 float32 = 4.1665795894e-2
	expP4 float32 = 1.6666665459e-1
	expP5 float32 = 5.0000001201e-1

	// Input clamps: below expLo the true result underflows float32 to 0;
	// above expHi it overflows to +Inf.
	expLo float32 = -87.33654
	expHi float32 = 88.72283

	// Adding then subtracting 1.5·2²³ rounds a float32 in (−2²², 2²²) to
	// the nearest integer in round-to-nearest hardware arithmetic.
	expRound float32 = 12582912.0
)

// Expf returns exp(x) computed in float32. NaN propagates; inputs
// beyond the representable range saturate to 0 or +Inf exactly like
// float32(math.Exp(float64(x))).
//
//mnnfast:hotpath
func Expf(x float32) float32 {
	switch {
	case x != x: // NaN
		return x
	case x > expHi:
		return float32(math.Inf(1))
	case x < expLo:
		return 0
	}
	// n = round(x/ln2); r = x - n·ln2 via the split constant.
	t := x*float32(expLog2e) + expRound
	n := t - expRound
	r := x - n*expC1
	r -= n * expC2
	// exp(r) by Horner evaluation.
	p := expP0
	p = p*r + expP1
	p = p*r + expP2
	p = p*r + expP3
	p = p*r + expP4
	p = p*r + expP5
	p = p*r*r + r + 1
	// Scale by 2ⁿ in two steps: after the input clamp n is integral in
	// [-126, 128], and 128 (reachable just below the overflow threshold,
	// where x/ln2 rounds up) does not fit a single biased exponent
	// field. Splitting n keeps both factors representable.
	ni := int32(n)
	half := ni / 2
	return p * expScale(half) * expScale(ni-half)
}

// expScale returns 2ⁿ for integral n in [-126, 127].
func expScale(n int32) float32 {
	return math.Float32frombits(uint32(n+127) << 23)
}

// expIntoGo is the portable ExpInto tier shared by ExpInto and Softmax:
// it writes exp(src_i - shift) into dst four lanes at a time and
// returns the sum of the written values, accumulated in float64 per
// lane to limit rounding drift on long vectors. Lengths must already
// match. The avx2 tier replicates the exact per-element Expf step
// order and this exact lane-sum pattern, so the two fast tiers are
// bit-identical (elements and returned sum).
//
//mnnfast:hotpath allow=float64 fixed-order float64 lane sums are deterministic and shared by every path
func expIntoGo(dst, src Vector, shift float32) float32 {
	var s0, s1, s2, s3 float64
	n := len(src)
	dst = dst[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		e0 := Expf(src[i] - shift)
		e1 := Expf(src[i+1] - shift)
		e2 := Expf(src[i+2] - shift)
		e3 := Expf(src[i+3] - shift)
		dst[i], dst[i+1], dst[i+2], dst[i+3] = e0, e1, e2, e3
		s0 += float64(e0)
		s1 += float64(e1)
		s2 += float64(e2)
		s3 += float64(e3)
	}
	for ; i < n; i++ {
		e := Expf(src[i] - shift)
		dst[i] = e
		s0 += float64(e)
	}
	return float32((s0 + s1) + (s2 + s3))
}
