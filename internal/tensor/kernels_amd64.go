//go:build amd64

package tensor

// Go declarations for the AVX2 assembly kernels (kernels_amd64.s) and
// the thin wrappers that adapt them to the dispatch table. The
// //mnnfast:asm twin= directives name each kernel's scalar reference;
// the asmtwin analyzer enforces that every assembly-backed kernel
// declares one, and the tier property tests (dispatch_test.go) pin all
// registered tiers against those twins, so an assembly kernel cannot
// land without its reference pinning.

//mnnfast:asm twin=DotScalar
//go:noescape
func dotAVX2(a, b Vector) float32

//mnnfast:asm twin=AxpyScalar
//go:noescape
func axpyAVX2(a float32, x, y Vector)

//mnnfast:asm twin=ScaleScalar
//go:noescape
func scaleAVX2(v Vector, a float32)

//mnnfast:asm twin=AddScalar
//go:noescape
func addAVX2(v, w Vector)

//mnnfast:asm twin=ExpIntoScalar
//go:noescape
func expIntoAVX2(dst, src Vector, shift float32, acc *[4]float64) int

// expKernelConstsRef exposes the assembly constant table for
// TestExpConstantsMatchAsm; it is never on the serving path.
//
//mnnfast:asm probe
func expKernelConstsRef() *[14]float32

// axpyAVX2Tier mirrors the go tier's a == 0 fast-out (the zero-skip
// path) before entering the assembly loop.
//
//mnnfast:hotpath
func axpyAVX2Tier(a float32, x, y Vector) {
	if a == 0 {
		return
	}
	axpyAVX2(a, x, y)
}

// expIntoAVX2Tier runs the assembly body over the multiple-of-4 prefix
// and finishes the tail with the scalar Expf, accumulating into lane 0
// — exactly expIntoGo's structure, so elements and the returned sum
// are bit-identical to the go tier.
//
//mnnfast:hotpath allow=float64 fixed-order float64 lane sums match the go tier bit-for-bit
func expIntoAVX2Tier(dst, src Vector, shift float32) float32 {
	var acc [4]float64
	n := len(src)
	i := 0
	if n >= 4 {
		i = expIntoAVX2(dst, src, shift, &acc)
	}
	for ; i < n; i++ {
		e := Expf(src[i] - shift)
		dst[i] = e
		acc[0] += float64(e)
	}
	return float32((acc[0] + acc[1]) + (acc[2] + acc[3]))
}
