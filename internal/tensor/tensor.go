// Package tensor provides the dense float32 linear-algebra kernels that
// the rest of the repository builds on: vectors, row-major matrices,
// blocked matrix multiplication, and the fused primitives (dot products,
// axpy, softmax) used by memory-network inference.
//
// It is the portable stand-in for the BLAS libraries the MnnFast paper
// uses (OpenBLAS on CPU, cuBLAS on GPU). The kernels are written for
// clarity and cache-friendliness rather than SIMD peak: all of the
// paper's optimizations are algorithmic (dataflow, spill size, operation
// counts), so they are observable on top of any dense kernel set.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a dense float32 vector.
type Vector []float32

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x.
//
//mnnfast:hotpath
func (v Vector) Fill(x float32) {
	for i := range v {
		v[i] = x
	}
}

// Zero sets every element of v to 0.
//
//mnnfast:hotpath
func (v Vector) Zero() { v.Fill(0) }

// Sum returns the sum of the elements of v, accumulated in float64 to
// limit rounding drift on long vectors.
//
//mnnfast:hotpath allow=float64 deliberate fixed-order widening accumulation
func (v Vector) Sum() float32 {
	var s float64
	for _, x := range v {
		s += float64(x)
	}
	return float32(s)
}

// Max returns the maximum element of v. It panics on an empty vector.
//
//mnnfast:hotpath
func (v Vector) Max() float32 {
	if len(v) == 0 {
		panic("tensor: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the first maximal element of v, or -1 for
// an empty vector.
//
//mnnfast:hotpath
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// Scale multiplies every element of v by a via the dispatched kernel
// tier (see dispatch.go); scaleGo is the portable tier and ScaleScalar
// the reference twin. All tiers are bit-identical: v[i] *= a rounds
// once per element in every implementation.
//
//mnnfast:hotpath
func (v Vector) Scale(a float32) { scaleImpl(v, a) }

// scaleGo is the portable unrolled Scale tier.
//
//mnnfast:hotpath
func scaleGo(v Vector, a float32) {
	n := len(v)
	i := 0
	for ; i+4 <= n; i += 4 {
		v[i] *= a
		v[i+1] *= a
		v[i+2] *= a
		v[i+3] *= a
	}
	for ; i < n; i++ {
		v[i] *= a
	}
}

// AddInPlace adds w into v element-wise via the dispatched kernel tier.
// The lengths must match. addGo is the portable tier and AddScalar the
// reference twin; all tiers are bit-identical (one rounding per
// element, in index order).
//
//mnnfast:hotpath
func (v Vector) AddInPlace(w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: AddInPlace length mismatch %d != %d", len(v), len(w)))
	}
	addImpl(v, w)
}

// addGo is the portable unrolled element-wise add tier. Lengths are
// validated by the caller.
//
//mnnfast:hotpath
func addGo(v, w Vector) {
	n := len(v)
	w = w[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v[i] += w[i]
		v[i+1] += w[i+1]
		v[i+2] += w[i+2]
		v[i+3] += w[i+3]
	}
	for ; i < n; i++ {
		v[i] += w[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return float32(math.Sqrt(s))
}

// Dot returns the inner product of a and b via the dispatched kernel
// tier. The lengths must match. dotGo is the portable tier and
// DotScalar the reference twin. Tiers differ only in accumulator
// reassociation (scalar: one; go: four; avx2: eight lanes in a fixed
// reduction order) — per-multiply rounding is identical everywhere.
//
//mnnfast:hotpath
func Dot(a, b Vector) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d != %d", len(a), len(b)))
	}
	return dotImpl(a, b)
}

// dotGo is the portable Dot tier: four-way unrolled accumulation with
// the bounds check hoisted — measurably faster without SIMD and
// slightly more accurate than a single serial accumulator. Lengths are
// validated by the caller.
//
//mnnfast:hotpath
func dotGo(a, b Vector) float32 {
	var s float32
	var s0, s1, s2, s3 float32
	n := len(a)
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s + s0 + s1 + s2 + s3
}

// Dot4 computes four inner products of u against r0..r3 in one pass.
// Register blocking over rows: each element of u is loaded once and
// multiplied into four accumulators, cutting the load count per
// multiply-add nearly in half versus four Dot calls. The chunk engines
// use it for the inner-product step, where consecutive memory rows
// share the question vector.
//
//mnnfast:hotpath
func Dot4(u, r0, r1, r2, r3 Vector) (d0, d1, d2, d3 float32) {
	n := len(u)
	if len(r0) != n || len(r1) != n || len(r2) != n || len(r3) != n {
		panic("tensor: Dot4 length mismatch")
	}
	r0, r1, r2, r3 = r0[:n], r1[:n], r2[:n], r3[:n]
	var s0, s1, s2, s3 float32
	for i := 0; i < n; i++ {
		x := u[i]
		s0 += x * r0[i]
		s1 += x * r1[i]
		s2 += x * r2[i]
		s3 += x * r3[i]
	}
	return s0, s1, s2, s3
}

// Axpy computes y += a*x element-wise via the dispatched kernel tier.
// The lengths must match. axpyGo is the portable tier and AxpyScalar
// the reference twin; the fast tiers (go, avx2) are bit-identical and
// both skip the pass entirely when a == 0 (the zero-skipping fast-out).
//
//mnnfast:hotpath
func Axpy(a float32, x, y Vector) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	axpyImpl(a, x, y)
}

// axpyGo is the portable unrolled Axpy tier. Lengths are validated by
// the caller.
//
//mnnfast:hotpath
func axpyGo(a float32, x, y Vector) {
	if a == 0 {
		return
	}
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += a * x[i]
	}
}

// Axpy4 computes y += a0·x0 + a1·x1 + a2·x2 + a3·x3 in one pass.
// Register blocking over sources: each element of y is loaded and
// stored once per four multiply-adds instead of once per one, which is
// the dominant saving in the weighted-sum step o += Σ eᵢ·m_iᴼᵁᵀ when
// zero-skipping is off and rows are consumed in order.
//
//mnnfast:hotpath
func Axpy4(a0, a1, a2, a3 float32, x0, x1, x2, x3, y Vector) {
	n := len(y)
	if len(x0) != n || len(x1) != n || len(x2) != n || len(x3) != n {
		panic("tensor: Axpy4 length mismatch")
	}
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	for i := 0; i < n; i++ {
		y[i] += a0*x0[i] + a1*x1[i] + a2*x2[i] + a3*x3[i]
	}
}

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// ErrShape reports incompatible matrix/vector shapes passed to a kernel
// that returns errors rather than panicking.
var ErrShape = errors.New("tensor: incompatible shapes")

// NewMatrix returns a zeroed rows×cols matrix. It panics if either
// dimension is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMatrix(%d, %d): negative dimension", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from equal-length rows. It panics if the rows
// are ragged.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: FromRows ragged row %d: %d != %d", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float32) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a Vector aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector {
	return Vector(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// RowSlice returns rows [lo, hi) as a matrix aliasing the same storage.
func (m *Matrix) RowSlice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("tensor: RowSlice [%d, %d) out of range for %d rows", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// Clone returns an independent copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to x.
func (m *Matrix) Fill(x float32) {
	for i := range m.Data {
		m.Data[i] = x
	}
}

// SizeBytes returns the storage footprint of the matrix payload. The
// cache and bandwidth models size working sets with it.
func (m *Matrix) SizeBytes() int64 { return int64(len(m.Data)) * 4 }

// Transpose returns a newly allocated mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, x := range ri {
			t.Data[j*t.Cols+i] = x
		}
	}
	return t
}

// Equal reports whether a and b have the same shape and elements within
// absolute tolerance tol.
func Equal(a, b *Matrix, tol float32) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, x := range a.Data {
		if absf(x-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// equal-length vectors a and b.
func MaxAbsDiff(a, b Vector) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff length mismatch %d != %d", len(a), len(b)))
	}
	var m float32
	for i := range a {
		if d := absf(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func absf(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
