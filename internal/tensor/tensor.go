// Package tensor provides the dense float32 linear-algebra kernels that
// the rest of the repository builds on: vectors, row-major matrices,
// blocked matrix multiplication, and the fused primitives (dot products,
// axpy, softmax) used by memory-network inference.
//
// It is the portable stand-in for the BLAS libraries the MnnFast paper
// uses (OpenBLAS on CPU, cuBLAS on GPU). The kernels are written for
// clarity and cache-friendliness rather than SIMD peak: all of the
// paper's optimizations are algorithmic (dataflow, spill size, operation
// counts), so they are observable on top of any dense kernel set.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a dense float32 vector.
type Vector []float32

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float32) {
	for i := range v {
		v[i] = x
	}
}

// Zero sets every element of v to 0.
func (v Vector) Zero() { v.Fill(0) }

// Sum returns the sum of the elements of v, accumulated in float64 to
// limit rounding drift on long vectors.
func (v Vector) Sum() float32 {
	var s float64
	for _, x := range v {
		s += float64(x)
	}
	return float32(s)
}

// Max returns the maximum element of v. It panics on an empty vector.
func (v Vector) Max() float32 {
	if len(v) == 0 {
		panic("tensor: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the first maximal element of v, or -1 for
// an empty vector.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// Scale multiplies every element of v by a.
func (v Vector) Scale(a float32) {
	for i := range v {
		v[i] *= a
	}
}

// AddInPlace adds w into v element-wise. The lengths must match.
func (v Vector) AddInPlace(w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: AddInPlace length mismatch %d != %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += w[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return float32(math.Sqrt(s))
}

// Dot returns the inner product of a and b. The lengths must match.
func Dot(a, b Vector) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float32
	// Four-way unrolled accumulation: measurably faster without SIMD and
	// slightly more accurate than a single serial accumulator.
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s + s0 + s1 + s2 + s3
}

// Axpy computes y += a*x element-wise. The lengths must match.
func Axpy(a float32, x, y Vector) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	if a == 0 {
		return
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// ErrShape reports incompatible matrix/vector shapes passed to a kernel
// that returns errors rather than panicking.
var ErrShape = errors.New("tensor: incompatible shapes")

// NewMatrix returns a zeroed rows×cols matrix. It panics if either
// dimension is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMatrix(%d, %d): negative dimension", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from equal-length rows. It panics if the rows
// are ragged.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: FromRows ragged row %d: %d != %d", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float32) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a Vector aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector {
	return Vector(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// RowSlice returns rows [lo, hi) as a matrix aliasing the same storage.
func (m *Matrix) RowSlice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("tensor: RowSlice [%d, %d) out of range for %d rows", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// Clone returns an independent copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to x.
func (m *Matrix) Fill(x float32) {
	for i := range m.Data {
		m.Data[i] = x
	}
}

// SizeBytes returns the storage footprint of the matrix payload. The
// cache and bandwidth models size working sets with it.
func (m *Matrix) SizeBytes() int64 { return int64(len(m.Data)) * 4 }

// Transpose returns a newly allocated mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, x := range ri {
			t.Data[j*t.Cols+i] = x
		}
	}
	return t
}

// Equal reports whether a and b have the same shape and elements within
// absolute tolerance tol.
func Equal(a, b *Matrix, tol float32) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, x := range a.Data {
		if absf(x-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// equal-length vectors a and b.
func MaxAbsDiff(a, b Vector) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff length mismatch %d != %d", len(a), len(b)))
	}
	var m float32
	for i := range a {
		if d := absf(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func absf(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
