package tensor_test

import (
	"fmt"

	"mnnfast/internal/tensor"
)

// ExampleSoftmax shows the stabilized softmax.
func ExampleSoftmax() {
	v := tensor.Vector{0, 0, 0, 0}
	tensor.Softmax(v)
	fmt.Printf("%.2f\n", v)
	// Output:
	// [0.25 0.25 0.25 0.25]
}

// ExampleExpInto shows the lazy-softmax building block of the
// column-based algorithm: chunked exponentials plus one final division
// equal a direct softmax (Equation 4 of the paper).
func ExampleExpInto() {
	logits := tensor.Vector{1, 2, 3, 4, 5, 6}
	shift := logits.Max()

	lazy := tensor.NewVector(len(logits))
	var sum float32
	for lo := 0; lo < len(logits); lo += 2 { // chunks of 2
		sum += tensor.ExpInto(lazy[lo:lo+2], logits[lo:lo+2], shift)
	}
	lazy.Scale(1 / sum)

	direct := logits.Clone()
	tensor.Softmax(direct)
	fmt.Printf("lazy equals direct: %v\n", tensor.MaxAbsDiff(lazy, direct) < 1e-6)
	// Output:
	// lazy equals direct: true
}

// ExampleMatVec shows the inner-product primitive of the input memory
// representation.
func ExampleMatVec() {
	a := tensor.FromRows([][]float32{{1, 0}, {0, 1}, {1, 1}})
	y := tensor.NewVector(3)
	tensor.MatVec(nil, a, tensor.Vector{2, 3}, y)
	fmt.Println(y)
	// Output:
	// [2 3 5]
}
