package tensor

import (
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// Tier conformance tests: every registered kernel tier — including the
// assembly tiers contributed by archTiers — is pinned against the
// scalar reference twins at every length 0..256 and at deliberately
// misaligned offsets, and the two fast tiers (go, avx2) are held to
// the bit-identity contract documented in dispatch.go.

// tierOffsets exercises aligned and misaligned views: the arena aligns
// backing to 32 bytes, but callers routinely slice matrix rows and
// chunk views at arbitrary element offsets.
var tierOffsets = []int{0, 1, 3, 5}

// offsetVector returns a length-n vector whose first element sits
// off*4 bytes past a 32-byte boundary, filled from src.
func offsetVector(src Vector, off int) Vector {
	buf := alignedFloats(len(src) + off)
	v := Vector(buf[off : off+len(src)])
	copy(v, src)
	return v
}

// bitsEqual reports float32 bit equality, treating every NaN as equal
// to every other NaN: hardware min/max/mul NaN propagation may differ
// in payload between scalar and vector instructions, and the contract
// is "NaN in, NaN out", not a specific payload.
func bitsEqual(a, b float32) bool {
	if a != a && b != b {
		return true
	}
	return math.Float32bits(a) == math.Float32bits(b)
}

func TestKernelTiersMatchScalarTwins(t *testing.T) {
	for _, tier := range KernelTiers() {
		tab := kernelTiers[tier]
		t.Run(tier, func(t *testing.T) {
			r := rand.New(rand.NewSource(90))
			for n := 0; n <= 256; n++ {
				for _, off := range tierOffsets {
					a := offsetVector(RandomVector(r, n, 1), off)
					b := offsetVector(RandomVector(r, n, 1), off)

					got, want := tab.dot(a, b), DotScalar(a, b)
					if absf(got-want) > 1e-3*(1+absf(want)) {
						t.Fatalf("dot n=%d off=%d: got %v want %v", n, off, got, want)
					}

					const alpha = -1.25
					y, yRef := b.Clone(), b.Clone()
					tab.axpy(alpha, a, y)
					AxpyScalar(alpha, a, yRef)
					for i := range y {
						if !bitsEqual(y[i], yRef[i]) {
							t.Fatalf("axpy n=%d off=%d i=%d: got %v want %v", n, off, i, y[i], yRef[i])
						}
					}

					v, vRef := a.Clone(), a.Clone()
					tab.scale(v, alpha)
					ScaleScalar(vRef, alpha)
					for i := range v {
						if !bitsEqual(v[i], vRef[i]) {
							t.Fatalf("scale n=%d off=%d i=%d: got %v want %v", n, off, i, v[i], vRef[i])
						}
					}

					v, vRef = a.Clone(), a.Clone()
					tab.add(v, b)
					AddScalar(vRef, b)
					for i := range v {
						if !bitsEqual(v[i], vRef[i]) {
							t.Fatalf("add n=%d off=%d i=%d: got %v want %v", n, off, i, v[i], vRef[i])
						}
					}

					dst := offsetVector(NewVector(n), off)
					dstRef := NewVector(n)
					sum := tab.expInto(dst, a, 0.25)
					sumRef := ExpIntoScalar(dstRef, a, 0.25)
					for i := range dst {
						if absf(dst[i]-dstRef[i]) > 1e-6*(1+absf(dstRef[i])) {
							t.Fatalf("expInto n=%d off=%d i=%d: got %v want %v", n, off, i, dst[i], dstRef[i])
						}
					}
					if absf(sum-sumRef) > 1e-6*(1+absf(sumRef)) {
						t.Fatalf("expInto sum n=%d off=%d: got %v want %v", n, off, sum, sumRef)
					}
				}
			}
		})
	}
}

// expEdgeInputs covers every special-case branch of Expf: NaN and
// infinity propagation, both clamp boundaries and their neighborhoods,
// the odd-n path of the two-step 2ⁿ scaling, and zero.
var expEdgeInputs = Vector{
	float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
	0, 1, -1, 0.5, -0.5,
	expHi, expHi + 1e-3, expHi - 1e-3, 200, 1000,
	expLo, expLo + 1e-3, expLo - 1e-3, -200, -1000,
	88.4, -87.0, 42.1234, -63.5, 1e-30, -1e-30,
}

// TestFastTiersBitIdentical pins the cross-tier determinism contract:
// Scale, AddInPlace, Axpy, and ExpInto produce bit-identical results on
// the go and avx2 tiers (elements and returned sums), including NaN,
// infinity, and clamp-boundary inputs. Dot is exempt (documented
// reassociation difference) and covered by the twin test above.
func TestFastTiersBitIdentical(t *testing.T) {
	avx2, ok := kernelTiers[TierAVX2]
	if !ok {
		t.Skip("avx2 tier not available on this host")
	}
	goTier := kernelTiers[TierGo]

	r := rand.New(rand.NewSource(91))
	for n := 0; n <= 256; n++ {
		for _, off := range tierOffsets {
			a := offsetVector(RandomVector(r, n, 4), off)
			b := offsetVector(RandomVector(r, n, 4), off)
			// Splice exp edge cases into the body of the vector so they
			// land in both the 8-wide loop and the tails.
			for i := range a {
				if i%7 == 3 {
					a[i] = expEdgeInputs[i%len(expEdgeInputs)]
				}
			}

			for _, alpha := range []float32{0, 1, -2.5, float32(math.NaN()), float32(math.Inf(1))} {
				y1, y2 := b.Clone(), b.Clone()
				avx2.axpy(alpha, a, y1)
				goTier.axpy(alpha, a, y2)
				for i := range y1 {
					if !bitsEqual(y1[i], y2[i]) {
						t.Fatalf("axpy a=%v n=%d off=%d i=%d: avx2 %x go %x",
							alpha, n, off, i, math.Float32bits(y1[i]), math.Float32bits(y2[i]))
					}
				}

				v1, v2 := a.Clone(), a.Clone()
				avx2.scale(v1, alpha)
				goTier.scale(v2, alpha)
				for i := range v1 {
					if !bitsEqual(v1[i], v2[i]) {
						t.Fatalf("scale a=%v n=%d off=%d i=%d: avx2 %x go %x",
							alpha, n, off, i, math.Float32bits(v1[i]), math.Float32bits(v2[i]))
					}
				}
			}

			v1, v2 := a.Clone(), a.Clone()
			avx2.add(v1, b)
			goTier.add(v2, b)
			for i := range v1 {
				if !bitsEqual(v1[i], v2[i]) {
					t.Fatalf("add n=%d off=%d i=%d: avx2 %x go %x",
						n, off, i, math.Float32bits(v1[i]), math.Float32bits(v2[i]))
				}
			}

			for _, shift := range []float32{0, 0.25, -3, 80} {
				d1 := offsetVector(NewVector(n), off)
				d2 := NewVector(n)
				s1 := avx2.expInto(d1, a, shift)
				s2 := goTier.expInto(d2, a, shift)
				for i := range d1 {
					if !bitsEqual(d1[i], d2[i]) {
						t.Fatalf("expInto shift=%v n=%d off=%d i=%d src=%v: avx2 %x go %x",
							shift, n, off, i, a[i], math.Float32bits(d1[i]), math.Float32bits(d2[i]))
					}
				}
				if !bitsEqual(s1, s2) {
					t.Fatalf("expInto sum shift=%v n=%d off=%d: avx2 %x go %x",
						shift, n, off, math.Float32bits(s1), math.Float32bits(s2))
				}
			}
		}
	}
}

func TestSetKernelTier(t *testing.T) {
	defer func() {
		if err := SetKernelTier("auto"); err != nil {
			t.Fatal(err)
		}
	}()

	a := Vector{1, 2, 3, 4, 5}
	b := Vector{5, 4, 3, 2, 1}
	for _, tier := range KernelTiers() {
		if err := SetKernelTier(tier); err != nil {
			t.Fatalf("SetKernelTier(%q): %v", tier, err)
		}
		if got := KernelTier(); got != tier {
			t.Fatalf("KernelTier() = %q after SetKernelTier(%q)", got, tier)
		}
		if got, want := Dot(a, b), DotScalar(a, b); absf(got-want) > 1e-5 {
			t.Fatalf("tier %q: Dot = %v, want %v", tier, got, want)
		}
	}

	if err := SetKernelTier("no-such-tier"); err == nil {
		t.Fatal("SetKernelTier accepted an unknown tier")
	} else if !strings.Contains(err.Error(), "no-such-tier") {
		t.Fatalf("unhelpful error: %v", err)
	}

	if err := SetKernelTier("auto"); err != nil {
		t.Fatal(err)
	}
	want := TierGo
	if _, ok := kernelTiers[TierAVX2]; ok {
		want = TierAVX2
	}
	if got := KernelTier(); got != want {
		t.Fatalf("auto resolved to %q, want %q", got, want)
	}
}

func TestKernelTiersListsScalarAndGo(t *testing.T) {
	names := KernelTiers()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	if !have[TierScalar] || !have[TierGo] {
		t.Fatalf("KernelTiers() = %v, want at least scalar and go", names)
	}
}

// decodeFuzzVector turns raw fuzz bytes into a float32 vector (up to
// 256 elements, raw bits — NaN, infinities, and denormals included)
// placed off elements past a 32-byte boundary.
func decodeFuzzVector(raw []byte, off int) Vector {
	n := len(raw) / 4
	if n > 256 {
		n = 256
	}
	v := offsetVector(NewVector(n), off)
	for i := 0; i < n; i++ {
		v[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return v
}

// diffKernelTiers is the differential body shared by FuzzKernelTiers:
// it runs every registered tier on the same inputs and cross-checks
// Dot, Axpy, and ExpInto against the scalar twins (tolerance where
// reassociation is allowed) and the go tier (bit-identity where the
// contract demands it).
func diffKernelTiers(t *testing.T, aRaw, bRaw []byte, alpha float32, offRaw uint8) {
	off := int(offRaw) % 8
	a := decodeFuzzVector(aRaw, off)
	b := decodeFuzzVector(bRaw, off)
	if len(b) > len(a) {
		b = b[:len(a)]
	}
	if len(a) > len(b) {
		a = a[:len(b)]
	}
	n := len(a)
	goTier := kernelTiers[TierGo]

	// Dot needs tame values: with raw magnitudes the reassociated sums
	// can diverge without bound (catastrophic cancellation), which is
	// exactly what the documented tolerance excludes.
	aDot, bDot := clean(a), clean(b)
	var sumAbs float64
	for i := range aDot {
		sumAbs += math.Abs(float64(aDot[i]) * float64(bDot[i]))
	}
	for _, tier := range KernelTiers() {
		tab := kernelTiers[tier]

		got, want := tab.dot(aDot, bDot), DotScalar(aDot, bDot)
		if math.Abs(float64(got-want)) > 1e-4*(1+sumAbs) {
			t.Errorf("tier %s: dot(n=%d) = %v, scalar %v", tier, n, got, want)
		}

		if alpha == alpha { // NaN alpha exercised by TestFastTiersBitIdentical
			y, yRef := b.Clone(), b.Clone()
			tab.axpy(alpha, a, y)
			AxpyScalar(alpha, a, yRef)
			for i := range y {
				if !bitsEqual(y[i], yRef[i]) {
					t.Errorf("tier %s: axpy(n=%d)[%d] = %v, scalar %v", tier, n, i, y[i], yRef[i])
				}
			}
		}

		dst := offsetVector(NewVector(n), off)
		dstRef := NewVector(n)
		sum := tab.expInto(dst, a, 0)
		sumRef := ExpIntoScalar(dstRef, a, 0)
		sawSpecial := false
		for i := range dst {
			gotE, wantE := dst[i], dstRef[i]
			if wantE != wantE || math.IsInf(float64(wantE), 0) || wantE > 1e37 {
				// NaN, overflow, and near-overflow elements: float32 fast-exp
				// and float64 math.Exp legitimately disagree on which side of
				// saturation they land; the go↔avx2 bit-identity check below
				// still pins these exactly.
				sawSpecial = true
				if wantE != wantE && gotE == gotE {
					t.Errorf("tier %s: expInto(n=%d)[%d] = %v for NaN input", tier, n, i, gotE)
				}
				continue
			}
			if absf(gotE-wantE) > 1e-6*(1+absf(wantE)) {
				t.Errorf("tier %s: expInto(n=%d)[%d] = %v, scalar %v (src %v)", tier, n, i, gotE, wantE, a[i])
			}
		}
		if !sawSpecial && absf(sum-sumRef) > 1e-6*(1+absf(sumRef)) {
			t.Errorf("tier %s: expInto sum(n=%d) = %v, scalar %v", tier, n, sum, sumRef)
		}

		// Fast tiers must agree with the go tier to the bit, raw inputs
		// included.
		if tier != TierScalar && tier != TierGo {
			dstGo := NewVector(n)
			sumGo := goTier.expInto(dstGo, a, 0)
			for i := range dst {
				if !bitsEqual(dst[i], dstGo[i]) {
					t.Errorf("tier %s: expInto(n=%d)[%d] = %x, go tier %x (src %v)",
						tier, n, i, math.Float32bits(dst[i]), math.Float32bits(dstGo[i]), a[i])
				}
			}
			if !bitsEqual(sum, sumGo) {
				t.Errorf("tier %s: expInto sum(n=%d) = %x, go tier %x",
					tier, n, math.Float32bits(sum), math.Float32bits(sumGo))
			}
		}
	}
}

// FuzzKernelTiers differentially fuzzes every registered kernel tier
// (avx2 vs unrolled go vs scalar) over raw float bit patterns, lengths
// 0..256, and misaligned base offsets. Seed corpus lives in
// testdata/fuzz/FuzzKernelTiers.
func FuzzKernelTiers(f *testing.F) {
	f.Fuzz(diffKernelTiers)
}

// benchSink defeats dead-code elimination of pure benchmark bodies.
var benchSink float32

func BenchmarkDotTiers(b *testing.B) {
	r := rand.New(rand.NewSource(92))
	x := RandomVector(r, 128, 1)
	y := RandomVector(r, 128, 1)
	for _, tier := range KernelTiers() {
		dot := kernelTiers[tier].dot
		b.Run(tier, func(b *testing.B) {
			b.SetBytes(128 * 4 * 2)
			var s float32
			for i := 0; i < b.N; i++ {
				s += dot(x, y)
			}
			benchSink = s
		})
	}
}

func BenchmarkExpIntoTiers(b *testing.B) {
	r := rand.New(rand.NewSource(93))
	src := RandomVector(r, 128, 1)
	dst := NewVector(128)
	for _, tier := range KernelTiers() {
		expInto := kernelTiers[tier].expInto
		b.Run(tier, func(b *testing.B) {
			b.SetBytes(128 * 4)
			var s float32
			for i := 0; i < b.N; i++ {
				s += expInto(dst, src, 0.25)
			}
			benchSink = s
		})
	}
}

func BenchmarkAxpyTiers(b *testing.B) {
	r := rand.New(rand.NewSource(94))
	x := RandomVector(r, 128, 1)
	y := RandomVector(r, 128, 1)
	for _, tier := range KernelTiers() {
		axpy := kernelTiers[tier].axpy
		b.Run(tier, func(b *testing.B) {
			b.SetBytes(128 * 4 * 2)
			for i := 0; i < b.N; i++ {
				axpy(0.5, x, y)
			}
		})
	}
}
