//go:build amd64

package tensor

// archTiers contributes the avx2 tier when the CPUID probe reports a
// usable AVX2 host (cpu_amd64.go). On older amd64 hardware — or with
// GODEBUG=cpu.avx2=off — the map is empty and dispatch falls back to
// the portable go tier, behavior unchanged from a non-amd64 build.
func archTiers() map[string]kernelTable {
	if !cpuSupportsAVX2() {
		return nil
	}
	return map[string]kernelTable{
		TierAVX2: {
			dot:     dotAVX2,
			axpy:    axpyAVX2Tier,
			scale:   scaleAVX2,
			add:     addAVX2,
			expInto: expIntoAVX2Tier,
		},
	}
}
