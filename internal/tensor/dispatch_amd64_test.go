//go:build amd64

package tensor

import (
	"math"
	"testing"
	"unsafe"
)

// TestExpConstantsMatchAsm pins every slot of the assembly RODATA
// constant table (kernels_amd64.s) to its Go twin in exp.go, bit for
// bit. The bit-identity contract between the go and avx2 ExpInto tiers
// rests on these being the same numbers; a drive-by edit to either
// side fails here before it can fail as a one-ulp softmax drift.
func TestExpConstantsMatchAsm(t *testing.T) {
	asm := expKernelConstsRef()
	want := [14]float32{
		float32(expLog2e),
		expRound,
		expC1,
		expC2,
		expP0, expP1, expP2, expP3, expP4, expP5,
		1.0,
		expLo,
		expHi,
		float32(math.Inf(1)),
	}
	names := [14]string{
		"log2e", "expRound", "expC1", "expC2",
		"expP0", "expP1", "expP2", "expP3", "expP4", "expP5",
		"one", "expLo", "expHi", "+Inf",
	}
	for i, w := range want {
		if math.Float32bits(asm[i]) != math.Float32bits(w) {
			t.Errorf("expKernelConsts[%d] (%s) = %#08x, exp.go has %#08x",
				i, names[i], math.Float32bits(asm[i]), math.Float32bits(w))
		}
	}
}

// TestCPUIDProbeConsistent sanity-checks the raw CPUID probe: if the
// avx2 tier registered, the feature bits it was derived from must
// still read as set (the probe is stateless), and GODEBUG downgrades
// must have been honored at init.
func TestCPUIDProbeConsistent(t *testing.T) {
	_, registered := kernelTiers[TierAVX2]
	if got := cpuSupportsAVX2(); got != registered {
		t.Fatalf("cpuSupportsAVX2() = %v but avx2 tier registered = %v", got, registered)
	}
	maxID, _, _, _ := cpuid(0, 0)
	if maxID == 0 {
		t.Skip("CPUID reports no extended leaves")
	}
	t.Logf("max CPUID leaf %d, avx2 tier registered: %v", maxID, registered)
}

// TestAlignedFloats verifies the arena alignment guarantee the
// assembly fast path is tuned for: pooled backing starts on a 32-byte
// boundary at every size, including after the grow path.
func TestAlignedFloats(t *testing.T) {
	for _, n := range []int{1, 2, 7, 8, 48, 127, 1024} {
		buf := alignedFloats(n)
		if len(buf) != n || cap(buf) != n {
			t.Fatalf("alignedFloats(%d): len %d cap %d", n, len(buf), cap(buf))
		}
		if addr := uintptr(unsafe.Pointer(&buf[0])); addr%vectorAlign != 0 {
			t.Errorf("alignedFloats(%d) base %#x not %d-byte aligned", n, addr, vectorAlign)
		}
	}
	for _, n := range []int{8, 48, 1024} {
		vp := GetVector(n)
		if addr := uintptr(unsafe.Pointer(&(*vp)[0])); addr%vectorAlign != 0 {
			t.Errorf("GetVector(%d) base %#x not %d-byte aligned", n, addr, vectorAlign)
		}
		PutVector(vp)
		m := GetMatrix(n, 3)
		if addr := uintptr(unsafe.Pointer(&m.Data[0])); addr%vectorAlign != 0 {
			t.Errorf("GetMatrix(%d,3) base %#x not %d-byte aligned", n, addr, vectorAlign)
		}
		PutMatrix(m)
	}
}
