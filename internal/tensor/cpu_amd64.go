//go:build amd64

package tensor

import (
	"os"
	"strings"
)

// Runtime CPU feature detection for the amd64 kernel tiers.
//
// golang.org/x/sys is off limits in this build environment and the
// runtime's internal/cpu is not importable, so the probe talks to the
// hardware directly through two tiny assembly stubs (cpu_amd64.s).
// Detection runs once, during package variable initialization, before
// the dispatch table is resolved.

// cpuid executes the CPUID instruction with the given EAX/ECX inputs.
//
//mnnfast:asm probe
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register XCR0, which reports the
// register state (XMM, YMM) the operating system saves on context
// switch. AVX is only usable when the OS restores YMM state.
//
//mnnfast:asm probe
func xgetbv() (eax, edx uint32)

// cpuSupportsAVX2 reports whether the full AVX2 kernel tier is usable:
// the CPU advertises AVX and AVX2, OSXSAVE is on, and XCR0 shows the
// OS saving XMM+YMM state. The standard GODEBUG cpu.* switches are
// honored so CI can force the fallback tiers on AVX2 hosts
// (GODEBUG=cpu.avx2=off,cpu.avx=off — the same spelling the Go runtime
// uses for its own dispatch).
func cpuSupportsAVX2() bool {
	if godebugCPUOff("avx2") || godebugCPUOff("avx") || godebugCPUOff("all") {
		return false
	}
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		cpuidOSXSAVE = 1 << 27 // leaf 1 ECX
		cpuidAVX     = 1 << 28 // leaf 1 ECX
		cpuidAVX2    = 1 << 5  // leaf 7 EBX
		xcr0XMM      = 1 << 1
		xcr0YMM      = 1 << 2
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 {
		return false
	}
	xlo, _ := xgetbv()
	if xlo&(xcr0XMM|xcr0YMM) != xcr0XMM|xcr0YMM {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&cpuidAVX2 != 0
}

// godebugCPUOff reports whether GODEBUG contains cpu.<feature>=off.
func godebugCPUOff(feature string) bool {
	key := "cpu." + feature
	for _, kv := range strings.Split(os.Getenv("GODEBUG"), ",") {
		if k, v, ok := strings.Cut(kv, "="); ok && k == key && v == "off" {
			return true
		}
	}
	return false
}
