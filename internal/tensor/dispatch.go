package tensor

import (
	"fmt"
	"sort"
)

// Kernel dispatch.
//
// The hot inner loops — Dot, Axpy, Scale, AddInPlace, ExpInto — exist
// in up to three tiers:
//
//	scalar  one-loop reference twins (kernels_scalar.go); float64
//	        math.Exp for the exponential. Ground truth, never fast.
//	go      portable 4-way-unrolled Go kernels with the float32
//	        fast-exp (tensor.go, exp.go). Always available.
//	avx2    amd64 assembly, 8 lanes per instruction, selected only
//	        when CPUID reports AVX2 and the OS has enabled YMM state
//	        (kernels_amd64.s, cpu_amd64.go).
//
// The active tier is resolved exactly once, in init(), into
// package-level function pointers: the hot path pays one indirect call
// and no per-call feature branch. SetKernelTier swaps the table for
// tests and benchmarks; it is not safe to call concurrently with
// inference and is meant for process startup or sequential test code.
//
// Determinism contract (see DESIGN.md §11): every tier is internally
// deterministic — same input, same tier, same bits — and each fast
// kernel is pinned against its scalar twin by the property tests and
// the FuzzKernelTiers differential fuzz target. The avx2 tier performs
// no FMA contraction (separate VMULPS/VADDPS), so per-multiply rounding
// matches the Go kernels; Scale, AddInPlace, Axpy, and ExpInto are
// bit-identical between the go and avx2 tiers, while Dot may differ
// within the documented reassociation tolerance (8 lanes instead of 4).

// Tier names, in increasing speed order.
const (
	TierScalar = "scalar"
	TierGo     = "go"
	TierAVX2   = "avx2"
)

// kernelTable is one tier's implementation set. Lengths are validated
// by the exported wrappers before these are called; implementations may
// assume matching lengths (the scalar twins re-check and that is fine).
type kernelTable struct {
	dot     func(a, b Vector) float32
	axpy    func(a float32, x, y Vector)
	scale   func(v Vector, a float32)
	add     func(v, w Vector)
	expInto func(dst, src Vector, shift float32) float32
}

// kernelTiers holds every tier available on this build/host.
// archTiers (dispatch_amd64.go / dispatch_generic.go) contributes the
// assembly tiers; scalar and go are always present.
var kernelTiers = buildKernelTiers()

func buildKernelTiers() map[string]kernelTable {
	tiers := map[string]kernelTable{
		TierScalar: {
			dot:     DotScalar,
			axpy:    AxpyScalar,
			scale:   ScaleScalar,
			add:     AddScalar,
			expInto: ExpIntoScalar,
		},
		TierGo: {
			dot:     dotGo,
			axpy:    axpyGo,
			scale:   scaleGo,
			add:     addGo,
			expInto: expIntoGo,
		},
	}
	for name, tab := range archTiers() {
		tiers[name] = tab
	}
	return tiers
}

// The active table: package-level function pointers resolved in init().
// Reads on the hot path are plain loads; SetKernelTier is startup/test
// only (see package comment above).
var (
	activeTier  string
	dotImpl     func(a, b Vector) float32
	axpyImpl    func(a float32, x, y Vector)
	scaleImpl   func(v Vector, a float32)
	addImpl     func(v, w Vector)
	expIntoImpl func(dst, src Vector, shift float32) float32
)

func init() {
	tier := TierGo
	if _, ok := kernelTiers[TierAVX2]; ok {
		tier = TierAVX2
	}
	if err := SetKernelTier(tier); err != nil {
		panic(err)
	}
}

// KernelTier returns the name of the active kernel tier.
func KernelTier() string { return activeTier }

// KernelTiers returns the names of every tier available on this
// build/host, sorted alphabetically.
func KernelTiers() []string {
	names := make([]string, 0, len(kernelTiers))
	for name := range kernelTiers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SetKernelTier selects the active kernel tier by name ("auto" resolves
// to the fastest available). It returns an error for a tier that is
// unknown or unavailable on this host. Not safe to call concurrently
// with inference: call it at process startup (flag handling) or from
// sequential test code.
func SetKernelTier(name string) error {
	if name == "auto" {
		name = TierGo
		if _, ok := kernelTiers[TierAVX2]; ok {
			name = TierAVX2
		}
	}
	tab, ok := kernelTiers[name]
	if !ok {
		return fmt.Errorf("tensor: unknown kernel tier %q (available: %v)", name, KernelTiers())
	}
	activeTier = name
	dotImpl = tab.dot
	axpyImpl = tab.axpy
	scaleImpl = tab.scale
	addImpl = tab.add
	expIntoImpl = tab.expInto
	return nil
}
