package tensor

import "math/rand"

// RandomMatrix returns a rows×cols matrix with i.i.d. entries drawn
// uniformly from [-scale, scale] using rng. Experiments pass their own
// seeded source so every run is reproducible.
func RandomMatrix(rng *rand.Rand, rows, cols int, scale float32) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	return m
}

// RandomVector returns a vector with i.i.d. entries uniform in
// [-scale, scale].
func RandomVector(rng *rand.Rand, n int, scale float32) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = (rng.Float32()*2 - 1) * scale
	}
	return v
}

// GaussianMatrix returns a rows×cols matrix with i.i.d. N(0, stddev²)
// entries, the init the end-to-end MemNN paper uses (σ = 0.1).
func GaussianMatrix(rng *rand.Rand, rows, cols int, stddev float32) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64()) * stddev
	}
	return m
}
