//go:build amd64

#include "textflag.h"

// AVX2 kernel tier (see dispatch.go for the tier contract and
// kernels_amd64.go for the Go declarations).
//
// Determinism rules, shared by every routine here:
//
//   - No FMA contraction: products and sums use separate VMULPS/VADDPS
//     so each multiply rounds exactly like the Go kernels.
//   - Fixed reduction order: dotAVX2 keeps one 8-lane accumulator and
//     reduces it as ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)), then folds
//     the scalar tail in index order — deterministic for a given input
//     on every AVX2 host.
//   - expIntoAVX2 replicates Expf's exact operation order per element
//     (shift subtract, range clamp, split-ln2 reduction, Horner
//     polynomial, two exact power-of-two scalings, NaN/overflow/
//     underflow overrides) and expIntoGo's float64 lane-sum pattern,
//     so elements and partial sums are bit-identical to the go tier.
//   - All loads/stores are unaligned (VMOVUPS); the arena aligns pooled
//     backing to 32 bytes so aligned access is the common fast case,
//     but sub-slices at any offset are correct.

// Constants for expIntoAVX2, bit patterns of the exp.go Go constants
// (asserted equal by TestExpConstantsMatchAsm).
GLOBL ·expKernelConsts(SB), RODATA|NOPTR, $56
DATA ·expKernelConsts+0(SB)/4, $0x3FB8AA3B  // log2e = float32(1/ln2)
DATA ·expKernelConsts+4(SB)/4, $0x4B400000  // expRound = 1.5 * 2^23
DATA ·expKernelConsts+8(SB)/4, $0x3F318000  // expC1 (ln2 high part)
DATA ·expKernelConsts+12(SB)/4, $0xB95E8083 // expC2 (ln2 low part)
DATA ·expKernelConsts+16(SB)/4, $0x39506967 // expP0
DATA ·expKernelConsts+20(SB)/4, $0x3AB743CE // expP1
DATA ·expKernelConsts+24(SB)/4, $0x3C088908 // expP2
DATA ·expKernelConsts+28(SB)/4, $0x3D2AA9C1 // expP3
DATA ·expKernelConsts+32(SB)/4, $0x3E2AAAAA // expP4
DATA ·expKernelConsts+36(SB)/4, $0x3F000000 // expP5
DATA ·expKernelConsts+40(SB)/4, $0x3F800000 // 1.0 (also the exponent bias in bits)
DATA ·expKernelConsts+44(SB)/4, $0xC2AEAC4F // expLo
DATA ·expKernelConsts+48(SB)/4, $0x42B17217 // expHi
DATA ·expKernelConsts+52(SB)/4, $0x7F800000 // +Inf

// func dotAVX2(a, b Vector) float32
TEXT ·dotAVX2(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	VXORPS Y0, Y0, Y0        // 8-lane accumulator
	XORQ AX, AX

dotloop8:
	LEAQ 8(AX), DX
	CMPQ DX, CX
	JA   dotreduce
	VMOVUPS (SI)(AX*4), Y1
	VMOVUPS (DI)(AX*4), Y2
	VMULPS Y2, Y1, Y1        // separate mul + add: no FMA contraction
	VADDPS Y1, Y0, Y0
	MOVQ DX, AX
	JMP  dotloop8

dotreduce:
	// Fixed-order 8-lane reduction (see file header).
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0        // q_j = l_j + l_{j+4}
	VPERMILPS $0xEE, X0, X1  // (q2, q3, q2, q3)
	VADDPS X1, X0, X0        // (q0+q2, q1+q3, _, _)
	VPERMILPS $0x55, X0, X1  // lane 1 → lane 0
	VADDSS X1, X0, X0        // (q0+q2) + (q1+q3)

dottail:
	CMPQ AX, CX
	JAE  dotdone
	VMOVSS (SI)(AX*4), X1
	VMOVSS (DI)(AX*4), X2
	VMULSS X2, X1, X1
	VADDSS X1, X0, X0
	INCQ AX
	JMP  dottail

dotdone:
	VZEROUPPER
	VMOVSS X0, ret+48(FP)
	RET

// func axpyAVX2(a float32, x, y Vector)
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	VBROADCASTSS a+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ x_len+16(FP), CX
	XORQ AX, AX

axpyloop8:
	LEAQ 8(AX), DX
	CMPQ DX, CX
	JA   axpytail
	VMOVUPS (SI)(AX*4), Y1
	VMULPS Y0, Y1, Y1
	VMOVUPS (DI)(AX*4), Y2
	VADDPS Y1, Y2, Y2
	VMOVUPS Y2, (DI)(AX*4)
	MOVQ DX, AX
	JMP  axpyloop8

axpytail:
	CMPQ AX, CX
	JAE  axpydone
	VMOVSS (SI)(AX*4), X1
	VMULSS X0, X1, X1
	VMOVSS (DI)(AX*4), X2
	VADDSS X1, X2, X2
	VMOVSS X2, (DI)(AX*4)
	INCQ AX
	JMP  axpytail

axpydone:
	VZEROUPPER
	RET

// func scaleAVX2(v Vector, a float32)
TEXT ·scaleAVX2(SB), NOSPLIT, $0-28
	MOVQ v_base+0(FP), SI
	MOVQ v_len+8(FP), CX
	VBROADCASTSS a+24(FP), Y0
	XORQ AX, AX

scaleloop8:
	LEAQ 8(AX), DX
	CMPQ DX, CX
	JA   scaletail
	VMOVUPS (SI)(AX*4), Y1
	VMULPS Y0, Y1, Y1
	VMOVUPS Y1, (SI)(AX*4)
	MOVQ DX, AX
	JMP  scaleloop8

scaletail:
	CMPQ AX, CX
	JAE  scaledone
	VMOVSS (SI)(AX*4), X1
	VMULSS X0, X1, X1
	VMOVSS X1, (SI)(AX*4)
	INCQ AX
	JMP  scaletail

scaledone:
	VZEROUPPER
	RET

// func addAVX2(v, w Vector)
TEXT ·addAVX2(SB), NOSPLIT, $0-48
	MOVQ v_base+0(FP), DI
	MOVQ w_base+24(FP), SI
	MOVQ v_len+8(FP), CX
	XORQ AX, AX

addloop8:
	LEAQ 8(AX), DX
	CMPQ DX, CX
	JA   addtail
	VMOVUPS (DI)(AX*4), Y1
	VMOVUPS (SI)(AX*4), Y2
	VADDPS Y2, Y1, Y1
	VMOVUPS Y1, (DI)(AX*4)
	MOVQ DX, AX
	JMP  addloop8

addtail:
	CMPQ AX, CX
	JAE  adddone
	VMOVSS (DI)(AX*4), X1
	VMOVSS (SI)(AX*4), X2
	VADDSS X2, X1, X1
	VMOVSS X1, (DI)(AX*4)
	INCQ AX
	JMP  addtail

adddone:
	VZEROUPPER
	RET

// func expIntoAVX2(dst, src Vector, shift float32, acc *[4]float64) int
//
// Writes exp(src_i - shift) into dst for the longest multiple-of-4
// prefix and returns the number of elements processed; the Go wrapper
// (expIntoAVX2Tier) finishes the <4 tail with Expf. Float64 lane sums
// accumulate into *acc exactly like expIntoGo's s0..s3: lane k sums
// elements k, k+4, k+8, … in index order.
//
// Per element the operation sequence is Expf's, step for step:
//
//	x := src_i - shift
//	c := clamp(x)                   // min/max against expHi/expLo
//	t := c*log2e + expRound; n := t - expRound
//	r := c - n*expC1; r -= n*expC2
//	p := Horner(P0..P5, r); p = p*r*r + r + 1
//	ni := int32(n); half := ni/2 (truncated)
//	p *= 2^half; p *= 2^(ni-half)   // both factors exact powers of two
//	overrides: x > expHi → +Inf; x < expLo → 0; NaN x → x
//
// Register plan (shared by the 8-wide and 4-wide blocks; the X
// registers are the low halves of the same Y registers, so the
// broadcast constants below serve both):
//
//	Y7 log2e  Y12 expRound  Y13 expC1  Y14 expC2  Y15 shift
//	Y11 float64 lane accumulator
//	Y0 x (preserved for the NaN blend)  Y1 c  Y2 n/ni  Y3 r  Y4 p
//	Y5, Y6 scratch + broadcast constants  Y8 NaN mask  Y9 hi  Y10 lo
TEXT ·expIntoAVX2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), CX
	MOVQ acc+56(FP), BX
	VBROADCASTSS shift+48(FP), Y15
	VBROADCASTSS ·expKernelConsts+0(SB), Y7
	VBROADCASTSS ·expKernelConsts+4(SB), Y12
	VBROADCASTSS ·expKernelConsts+8(SB), Y13
	VBROADCASTSS ·expKernelConsts+12(SB), Y14
	VMOVUPD (BX), Y11
	XORQ AX, AX

exploop8:
	LEAQ 8(AX), DX
	CMPQ DX, CX
	JA   exptail4
	VMOVUPS (SI)(AX*4), Y0
	VSUBPS Y15, Y0, Y0                        // x = src - shift

	// Masks from the unclamped x, then clamp into the finite range.
	VCMPPS $3, Y0, Y0, Y8                     // NaN (unordered)
	VBROADCASTSS ·expKernelConsts+48(SB), Y5  // expHi
	VBROADCASTSS ·expKernelConsts+44(SB), Y6  // expLo
	VCMPPS $0x1E, Y5, Y0, Y9                  // x > hi (GT_OQ)
	VCMPPS $0x11, Y6, Y0, Y10                 // x < lo (LT_OQ)
	VMINPS Y5, Y0, Y1                         // NaN → hi: always finite below
	VMAXPS Y6, Y1, Y1

	// n = nearest-integer(c/ln2) via the 1.5*2^23 rounding trick.
	VMULPS Y7, Y1, Y2
	VADDPS Y12, Y2, Y2
	VSUBPS Y12, Y2, Y2

	// r = c - n*C1 - n*C2 (split ln2; separate mul/sub, no FMA).
	VMULPS Y13, Y2, Y3
	VSUBPS Y3, Y1, Y3
	VMULPS Y14, Y2, Y4
	VSUBPS Y4, Y3, Y3

	// Horner polynomial, Expf's step order.
	VBROADCASTSS ·expKernelConsts+16(SB), Y4  // p = P0
	VMULPS Y3, Y4, Y4
	VBROADCASTSS ·expKernelConsts+20(SB), Y5
	VADDPS Y5, Y4, Y4                         // p = p*r + P1
	VMULPS Y3, Y4, Y4
	VBROADCASTSS ·expKernelConsts+24(SB), Y5
	VADDPS Y5, Y4, Y4                         // … + P2
	VMULPS Y3, Y4, Y4
	VBROADCASTSS ·expKernelConsts+28(SB), Y5
	VADDPS Y5, Y4, Y4                         // … + P3
	VMULPS Y3, Y4, Y4
	VBROADCASTSS ·expKernelConsts+32(SB), Y5
	VADDPS Y5, Y4, Y4                         // … + P4
	VMULPS Y3, Y4, Y4
	VBROADCASTSS ·expKernelConsts+36(SB), Y5
	VADDPS Y5, Y4, Y4                         // … + P5
	VMULPS Y3, Y4, Y4                         // p*r
	VMULPS Y3, Y4, Y4                         // (p*r)*r
	VADDPS Y3, Y4, Y4                         // + r
	VBROADCASTSS ·expKernelConsts+40(SB), Y6  // 1.0 (bits double as exponent bias)
	VADDPS Y6, Y4, Y4                         // + 1

	// 2^n in two exact factors: ni truncated (n is integral), then
	// half = trunc(ni/2) = (ni + (ni>>>31)) >> 1, rest = ni - half.
	VCVTTPS2DQ Y2, Y2
	VPSRLD $31, Y2, Y5
	VPADDD Y5, Y2, Y5
	VPSRAD $1, Y5, Y5
	VPSUBD Y5, Y2, Y2
	VPSLLD $23, Y5, Y5
	VPADDD Y6, Y5, Y5                         // bits(2^half)
	VPSLLD $23, Y2, Y2
	VPADDD Y6, Y2, Y2                         // bits(2^rest)
	VMULPS Y5, Y4, Y4
	VMULPS Y2, Y4, Y4

	// Range overrides, Expf's switch order with NaN winning.
	VBROADCASTSS ·expKernelConsts+52(SB), Y5  // +Inf
	VXORPS Y6, Y6, Y6
	VBLENDVPS Y9, Y5, Y4, Y4
	VBLENDVPS Y10, Y6, Y4, Y4
	VBLENDVPS Y8, Y0, Y4, Y4

	VMOVUPS Y4, (DI)(AX*4)

	// Lane sums: low then high quad, preserving expIntoGo's order.
	VCVTPS2PD X4, Y5
	VADDPD Y5, Y11, Y11
	VEXTRACTF128 $1, Y4, X5
	VCVTPS2PD X5, Y5
	VADDPD Y5, Y11, Y11
	MOVQ DX, AX
	JMP  exploop8

exptail4:
	// One 4-wide pass when ≥4 elements remain (same code at XMM
	// width; the X registers alias the Y constants loaded above).
	LEAQ 4(AX), DX
	CMPQ DX, CX
	JA   expdone
	VMOVUPS (SI)(AX*4), X0
	VSUBPS X15, X0, X0

	VCMPPS $3, X0, X0, X8
	VBROADCASTSS ·expKernelConsts+48(SB), X5
	VBROADCASTSS ·expKernelConsts+44(SB), X6
	VCMPPS $0x1E, X5, X0, X9
	VCMPPS $0x11, X6, X0, X10
	VMINPS X5, X0, X1
	VMAXPS X6, X1, X1

	VMULPS X7, X1, X2
	VADDPS X12, X2, X2
	VSUBPS X12, X2, X2

	VMULPS X13, X2, X3
	VSUBPS X3, X1, X3
	VMULPS X14, X2, X4
	VSUBPS X4, X3, X3

	VBROADCASTSS ·expKernelConsts+16(SB), X4
	VMULPS X3, X4, X4
	VBROADCASTSS ·expKernelConsts+20(SB), X5
	VADDPS X5, X4, X4
	VMULPS X3, X4, X4
	VBROADCASTSS ·expKernelConsts+24(SB), X5
	VADDPS X5, X4, X4
	VMULPS X3, X4, X4
	VBROADCASTSS ·expKernelConsts+28(SB), X5
	VADDPS X5, X4, X4
	VMULPS X3, X4, X4
	VBROADCASTSS ·expKernelConsts+32(SB), X5
	VADDPS X5, X4, X4
	VMULPS X3, X4, X4
	VBROADCASTSS ·expKernelConsts+36(SB), X5
	VADDPS X5, X4, X4
	VMULPS X3, X4, X4
	VMULPS X3, X4, X4
	VADDPS X3, X4, X4
	VBROADCASTSS ·expKernelConsts+40(SB), X6
	VADDPS X6, X4, X4

	VCVTTPS2DQ X2, X2
	VPSRLD $31, X2, X5
	VPADDD X5, X2, X5
	VPSRAD $1, X5, X5
	VPSUBD X5, X2, X2
	VPSLLD $23, X5, X5
	VPADDD X6, X5, X5
	VPSLLD $23, X2, X2
	VPADDD X6, X2, X2
	VMULPS X5, X4, X4
	VMULPS X2, X4, X4

	VBROADCASTSS ·expKernelConsts+52(SB), X5
	VXORPS X6, X6, X6
	VBLENDVPS X9, X5, X4, X4
	VBLENDVPS X10, X6, X4, X4
	VBLENDVPS X8, X0, X4, X4

	VMOVUPS X4, (DI)(AX*4)
	VCVTPS2PD X4, Y5
	VADDPD Y5, Y11, Y11
	MOVQ DX, AX

expdone:
	VMOVUPD Y11, (BX)
	MOVQ AX, ret+64(FP)
	VZEROUPPER
	RET

// func expKernelConstsRef() *[14]float32
//
// Test accessor: returns the address of the RODATA constant table so
// TestExpConstantsMatchAsm can pin each slot against its exp.go twin.
TEXT ·expKernelConstsRef(SB), NOSPLIT, $0-8
	LEAQ ·expKernelConsts(SB), AX
	MOVQ AX, ret+0(FP)
	RET
