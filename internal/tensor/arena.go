package tensor

import (
	"sync"
	"unsafe"
)

// Scratch arenas: process-wide recycled buffers for kernel temporaries.
//
// The hot serving path must not allocate per call, but several kernels
// need short-lived working storage whose size is only known at call
// time (VecMat's per-worker accumulators, the batch engine's chunk×nq
// logits). These helpers hand out grow-only buffers from sync.Pools:
// at steady state — same shapes query after query — every Get is
// satisfied from the pool and the path performs zero allocations.
//
// The pools hold pointers (not slice values) so that returning a buffer
// does not box a slice header on every Put.

// vectorAlign is the byte alignment of arena-backed storage: one AVX2
// vector register. The assembly kernels use unaligned loads and are
// correct at any offset, but cache-line-friendly aligned access is the
// fast case, so pooled backing starts on a 32-byte boundary. Sub-slices
// handed out by callers (matrix rows, chunk views) may still be
// misaligned — that is fine.
const vectorAlign = 32

// alignedFloats returns a zeroed length-n float32 slice whose first
// element sits on a vectorAlign boundary. It over-allocates by up to
// vectorAlign-4 bytes and slices forward to the boundary; capacity is
// clamped so appends cannot silently outgrow the aligned region.
func alignedFloats(n int) []float32 {
	buf := make([]float32, n+vectorAlign/4-1)
	off := 0
	if rem := uintptr(unsafe.Pointer(&buf[0])) % vectorAlign; rem != 0 {
		off = int((vectorAlign - rem) / 4)
	}
	return buf[off : off+n : off+n]
}

var vecArena = sync.Pool{New: func() any { return new(Vector) }}

// GetVector returns a zeroed length-n vector drawn from the arena. The
// returned handle must be released with PutVector; the Vector it points
// to is only valid until then.
//
//mnnfast:pool-get
func GetVector(n int) *Vector {
	vp := vecArena.Get().(*Vector)
	if cap(*vp) < n {
		*vp = Vector(alignedFloats(n))
	} else {
		*vp = (*vp)[:n]
		vp.Zero()
	}
	return vp
}

// PutVector returns a vector handle to the arena.
//
//mnnfast:pool-put
func PutVector(vp *Vector) { vecArena.Put(vp) }

var matArena = sync.Pool{New: func() any { return new(Matrix) }}

// GetMatrix returns a zeroed rows×cols matrix drawn from the arena. The
// returned matrix must be released with PutMatrix and is only valid
// until then.
//
//mnnfast:pool-get
func GetMatrix(rows, cols int) *Matrix {
	m := matArena.Get().(*Matrix)
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = alignedFloats(n)
	} else {
		m.Data = m.Data[:n]
		for i := range m.Data {
			m.Data[i] = 0
		}
	}
	m.Rows, m.Cols = rows, cols
	return m
}

// PutMatrix returns a matrix to the arena.
//
//mnnfast:pool-put
func PutMatrix(m *Matrix) { matArena.Put(m) }
