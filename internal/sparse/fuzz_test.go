package sparse

import (
	"math"
	"testing"

	"mnnfast/internal/tensor"
)

// FuzzTopKIndex differentially fuzzes the IVF index against the dense
// oracle: arbitrary (finite) memory contents and shapes, arbitrary
// build and probe parameters. Structural invariants are checked on
// every input; probing every list with no cut must reproduce the dense
// softmax bit-for-bit. Seed corpus lives in testdata/fuzz/FuzzTopKIndex.
func FuzzTopKIndex(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, byte(4), byte(3), byte(0), byte(2), byte(1))
	f.Add([]byte{0, 0, 0, 0}, byte(16), byte(1), byte(3), byte(0), byte(0))
	f.Add([]byte{255, 128, 7, 9, 200, 13}, byte(63), byte(8), byte(9), byte(5), byte(7))
	f.Fuzz(func(t *testing.T, data []byte, nb, db, nlistb, kb, nprobeb byte) {
		n := 1 + int(nb)%96
		d := 1 + int(db)%12
		// Fill rows from the data bytes: small finite floats only, so
		// softmax stays finite and comparisons stay meaningful.
		m := tensor.NewMatrix(n, d)
		u := tensor.NewVector(d)
		at := func(i int) float32 {
			if len(data) == 0 {
				return 0
			}
			return float32(int8(data[i%len(data)])) / 128
		}
		for i := range m.Data {
			m.Data[i] = at(i)
		}
		for j := range u {
			u[j] = at(len(m.Data) + 7*j)
		}

		opt := IndexOptions{NList: int(nlistb) % 17, Iters: 1 + int(nlistb)%3, TrainCap: 8}
		ix := BuildTopKIndex(m, opt)
		checkListsPartition(t, ix, n)

		ps := GetProbeScratch()
		defer PutProbeScratch(ps)

		nprobe := int(nprobeb) % (ix.NList() + 2)
		cand, lists := ix.Candidates(u, nprobe, ps)
		if len(cand) == 0 || lists < 1 {
			t.Fatalf("no candidates from a %d-row index (nprobe=%d)", n, nprobe)
		}
		for i, r := range cand {
			if r < 0 || int(r) >= n {
				t.Fatalf("candidate %d out of range", r)
			}
			if i > 0 && cand[i-1] >= r {
				t.Fatalf("candidates not strictly ascending at %d", i)
			}
		}

		k := int(kb) % (n + 2)
		c, st := ix.Attend(u, k, nprobe, ps)
		wantKept := st.Probed
		if k > 0 && k < wantKept {
			wantKept = k
		}
		if st.Kept != wantKept || len(c.Weights) != wantKept || len(c.Index) != wantKept {
			t.Fatalf("kept %d/%d/%d, want %d", st.Kept, len(c.Weights), len(c.Index), wantKept)
		}
		for i, r := range c.Index {
			if i > 0 && c.Index[i-1] >= r {
				t.Fatalf("survivors not strictly ascending at %d", i)
			}
		}
		var sum float64
		for _, w := range c.Weights {
			sum += float64(w)
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Fatalf("softmax weights sum to %v", sum)
		}

		// Oracle: full probe, no cut == dense softmax, bit-for-bit.
		c, st = ix.Attend(u, 0, ix.NList(), ps)
		if st.Probed != n || st.Kept != n {
			t.Fatalf("full probe visited %d/%d of %d rows", st.Probed, st.Kept, n)
		}
		dense := tensor.NewVector(n)
		for i := 0; i < n; i++ {
			dense[i] = tensor.Dot(m.Row(i), u)
		}
		tensor.Softmax(dense)
		for j, w := range c.Weights {
			if int(c.Index[j]) != j {
				t.Fatalf("full probe dropped row %d", j)
			}
			if math.Float32bits(w) != math.Float32bits(dense[j]) {
				t.Fatalf("full-probe weight %d bits %x != dense %x",
					j, math.Float32bits(w), math.Float32bits(dense[j]))
			}
		}
	})
}
