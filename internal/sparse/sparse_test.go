package sparse

import (
	"math/rand"
	"testing"

	"mnnfast/internal/tensor"
)

func sparseWeights(rng *rand.Rand, n int, density float64) tensor.Vector {
	w := tensor.NewVector(n)
	for i := range w {
		if rng.Float64() < density {
			w[i] = rng.Float32()*0.5 + 0.2
		} else {
			w[i] = rng.Float32() * 0.001
		}
	}
	return w
}

func TestCompactKeepsOnlySurvivors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	out := tensor.RandomMatrix(rng, 100, 8, 1)
	w := sparseWeights(rng, 100, 0.1)
	c, st := Compact(w, out, 0.1)
	if st.Rows != 100 {
		t.Errorf("Rows = %d", st.Rows)
	}
	if st.Kept != len(c.Index) || st.Kept != c.Rows.Rows {
		t.Errorf("inconsistent kept counts: %d / %d / %d", st.Kept, len(c.Index), c.Rows.Rows)
	}
	for j, src := range c.Index {
		if w[src] < 0.1 {
			t.Fatalf("kept row %d has weight %v below threshold", src, w[src])
		}
		if tensor.MaxAbsDiff(c.Rows.Row(j), out.Row(int(src))) != 0 {
			t.Fatalf("packed row %d does not match source", j)
		}
	}
	if st.MovedB != int64(st.Kept)*8*4 {
		t.Errorf("MovedB = %d, want %d", st.MovedB, st.Kept*32)
	}
}

func TestCompactedSumMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	out := tensor.RandomMatrix(rng, 500, 16, 1)
	w := sparseWeights(rng, 500, 0.05)
	const th = 0.1

	c, _ := Compact(w, out, th)
	a := tensor.NewVector(16)
	c.WeightedSum(a)

	b := tensor.NewVector(16)
	kept := DirectSkipSum(w, out, th, b)
	if kept != len(c.Index) {
		t.Errorf("direct kept %d rows, compaction kept %d", kept, len(c.Index))
	}
	if d := tensor.MaxAbsDiff(a, b); d > 1e-5 {
		t.Errorf("compacted and direct sums differ by %v", d)
	}
}

func TestCompactThresholdZeroKeepsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	out := tensor.RandomMatrix(rng, 20, 4, 1)
	w := sparseWeights(rng, 20, 0.5)
	c, st := Compact(w, out, 0)
	if st.Kept != 20 || len(c.Weights) != 20 {
		t.Errorf("threshold 0 dropped rows: kept %d", st.Kept)
	}
}

func TestCompactAllSkipped(t *testing.T) {
	out := tensor.NewMatrix(10, 4)
	w := tensor.NewVector(10)
	c, st := Compact(w, out, 0.5)
	if st.Kept != 0 {
		t.Errorf("kept %d rows of all-zero weights", st.Kept)
	}
	o := tensor.Vector{1, 2, 3, 4}
	c.WeightedSum(o)
	if o.Norm2() != 0 {
		t.Errorf("empty compaction produced non-zero sum %v", o)
	}
}

func TestCompactShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched shapes accepted")
		}
	}()
	Compact(tensor.NewVector(3), tensor.NewMatrix(4, 2), 0.1)
}

func TestDirectSkipSumShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched shapes accepted")
		}
	}()
	DirectSkipSum(tensor.NewVector(3), tensor.NewMatrix(4, 2), 0.1, tensor.NewVector(2))
}

func TestCompactionCostGrowsWithRows(t *testing.T) {
	// The paper's argument: the transformation touches every row, so
	// its cost scales with ns regardless of sparsity.
	rng := rand.New(rand.NewSource(4))
	var prev int64
	for _, n := range []int{100, 1000, 10000} {
		out := tensor.RandomMatrix(rng, n, 8, 1)
		w := sparseWeights(rng, n, 0.01)
		_, st := Compact(w, out, 0.1)
		if st.GatherOp <= prev {
			t.Errorf("gather ops did not grow with rows: %d after %d", st.GatherOp, prev)
		}
		prev = st.GatherOp
	}
}
