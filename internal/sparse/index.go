// IVF-style approximate top-k attention index (ROADMAP "Million-row
// memories via sparse top-k attention").
//
// MnnFast's zero-skipping (§4.1.2) still scans every memory row per hop
// to decide what to skip, so hop cost is O(ns·ed). Attention mass in
// memory networks concentrates on a handful of slots; an inverted-file
// (IVF) index finds those slots without touching the rest. Build time
// k-means-clusters the embedded M_IN rows into nlist centroids; query
// time scores only the rows in the nprobe best centroids, cuts them to
// the top-k logits, and feeds the survivors to the Compacted gather
// path. Per-hop work drops to O(probed·ed) with probed ≪ ns.
//
// Determinism contract (DESIGN.md §15): the build is float32-only with
// a fixed visit order (stride-sampled init, ascending-row accumulation,
// lowest-index tie-breaks), so the same rows under the same kernel tier
// always produce the same centroids and inverted lists. The query path
// merges candidates in ascending row order before scoring, so for a
// fixed index the logits, softmax weights, and weighted sum are
// bit-identical at any parallelism or batch composition.
package sparse

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"mnnfast/internal/tensor"
)

// IndexOptions configure BuildTopKIndex. The zero value picks defaults
// sized from the row count.
type IndexOptions struct {
	// NList is the number of k-means centroids (inverted lists).
	// 0 selects ceil(sqrt(n)) clamped to [1, 4096].
	NList int
	// Iters is the number of Lloyd iterations run on the training
	// sample. 0 selects 6.
	Iters int
	// TrainCap bounds the number of rows the Lloyd iterations see
	// (stride-sampled from the full matrix; the final assignment pass
	// always visits every row). 0 selects 32·NList.
	TrainCap int
}

// TopKIndex is an inverted-file index over the rows of one embedded
// memory matrix. Lists are stored CSR-style: list j holds the rows
// listRow[listOff[j]:listOff[j+1]], ascending.
type TopKIndex struct {
	mat       *tensor.Matrix // indexed rows (aliased, not copied)
	nlist     int
	centroids *tensor.Matrix // nlist × d
	listOff   []int32        // nlist+1 prefix offsets into listRow
	listRow   []int32        // row ids grouped by centroid, ascending per list
}

// Rows reports the number of indexed rows.
func (ix *TopKIndex) Rows() int { return ix.mat.Rows }

// NList reports the number of inverted lists (centroids).
func (ix *TopKIndex) NList() int { return ix.nlist }

// List returns the ascending row ids of inverted list j, aliasing the
// index storage.
func (ix *TopKIndex) List(j int) []int32 {
	return ix.listRow[ix.listOff[j]:ix.listOff[j+1]]
}

// Centroids returns the centroid matrix, aliasing the index storage.
func (ix *TopKIndex) Centroids() *tensor.Matrix { return ix.centroids }

// SizeBytes reports the index storage footprint beyond the indexed
// matrix itself: centroids plus inverted lists.
func (ix *TopKIndex) SizeBytes() int64 {
	return ix.centroids.SizeBytes() + int64(len(ix.listOff)+len(ix.listRow))*4
}

// DefaultNProbe is the probe width used when a query passes nprobe <= 0:
// nlist/16, at least 1 — roughly 1/16th of the rows at the default
// sqrt(n) list count.
func DefaultNProbe(nlist int) int {
	np := nlist / 16
	if np < 1 {
		np = 1
	}
	return np
}

// BuildTopKIndex k-means-clusters the rows of m into an inverted-file
// index. m must have at least one row; the index aliases m, so the
// caller must not mutate m afterwards without rebuilding (memnn
// invalidates the per-story index whenever the story is re-embedded).
//
// The build is deterministic: initial centroids are stride-sampled
// (centroid i starts at row i·n/nlist), Lloyd iterations visit a stride
// sample of at most TrainCap rows in ascending order with float32
// accumulation, assignment ties go to the lowest centroid index, and a
// cluster left empty keeps its previous centroid. Cost is bounded by
// Iters·TrainCap·nlist·d for training plus one full n·nlist·d
// assignment pass — a one-time ingest cost amortized across every
// question and hop on the story.
//
//mnnfast:coldpath
func BuildTopKIndex(m *tensor.Matrix, opt IndexOptions) *TopKIndex {
	n, d := m.Rows, m.Cols
	if n == 0 || d == 0 {
		panic(fmt.Sprintf("sparse: BuildTopKIndex on %dx%d matrix", n, d))
	}
	nlist := opt.NList
	if nlist <= 0 {
		nlist = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if nlist > n {
		nlist = n
	}
	if nlist > 4096 {
		nlist = 4096
	}
	iters := opt.Iters
	if iters <= 0 {
		iters = 6
	}
	trainN := opt.TrainCap
	if trainN <= 0 {
		trainN = 32 * nlist
	}
	if trainN < nlist {
		trainN = nlist
	}
	if trainN > n {
		trainN = n
	}

	ix := &TopKIndex{mat: m, nlist: nlist, centroids: tensor.NewMatrix(nlist, d)}
	for j := 0; j < nlist; j++ {
		copy(ix.centroids.Row(j), m.Row(j*n/nlist))
	}

	half := tensor.NewVector(nlist) // ½·‖c_j‖², for the distance argmin
	sums := tensor.NewMatrix(nlist, d)
	counts := make([]int32, nlist)
	for it := 0; it < iters; it++ {
		ix.halfNorms(half)
		sums.Zero()
		for j := range counts {
			counts[j] = 0
		}
		for t := 0; t < trainN; t++ {
			r := m.Row(t * n / trainN)
			a := ix.assign(r, half)
			sums.Row(a).AddInPlace(r)
			counts[a]++
		}
		for j := 0; j < nlist; j++ {
			if counts[j] == 0 {
				continue // empty cluster keeps its previous centroid
			}
			cj := ix.centroids.Row(j)
			copy(cj, sums.Row(j))
			cj.Scale(1 / float32(counts[j]))
		}
	}

	// Final pass: assign every row, then lay the lists out CSR-style.
	// Rows are visited ascending, so each list comes out ascending.
	ix.halfNorms(half)
	assigned := make([]int32, n)
	ix.listOff = make([]int32, nlist+1)
	for i := 0; i < n; i++ {
		a := ix.assign(m.Row(i), half)
		assigned[i] = int32(a)
		ix.listOff[a+1]++
	}
	for j := 0; j < nlist; j++ {
		ix.listOff[j+1] += ix.listOff[j]
	}
	ix.listRow = make([]int32, n)
	fill := make([]int32, nlist)
	copy(fill, ix.listOff[:nlist])
	for i := 0; i < n; i++ {
		a := assigned[i]
		ix.listRow[fill[a]] = int32(i)
		fill[a]++
	}
	return ix
}

// halfNorms writes ½·‖c_j‖² for every centroid into half.
//
//mnnfast:coldpath
func (ix *TopKIndex) halfNorms(half tensor.Vector) {
	for j := 0; j < ix.nlist; j++ {
		cj := ix.centroids.Row(j)
		half[j] = 0.5 * tensor.Dot(cj, cj)
	}
}

// assign returns the centroid nearest to r under Euclidean distance:
// argmin ‖r−c‖² = argmax (r·c − ½‖c‖²). Centroids are compared in
// ascending index order with a strict improvement test, so ties go to
// the lowest index — the determinism rule rebuilds rely on.
//
//mnnfast:coldpath
func (ix *TopKIndex) assign(r tensor.Vector, half tensor.Vector) int {
	c := ix.centroids
	best := 0
	bestScore := tensor.Dot(r, c.Row(0)) - half[0]
	j := 1
	for ; j+4 <= ix.nlist; j += 4 {
		d0, d1, d2, d3 := tensor.Dot4(r, c.Row(j), c.Row(j+1), c.Row(j+2), c.Row(j+3))
		if s := d0 - half[j]; s > bestScore {
			best, bestScore = j, s
		}
		if s := d1 - half[j+1]; s > bestScore {
			best, bestScore = j+1, s
		}
		if s := d2 - half[j+2]; s > bestScore {
			best, bestScore = j+2, s
		}
		if s := d3 - half[j+3]; s > bestScore {
			best, bestScore = j+3, s
		}
	}
	for ; j < ix.nlist; j++ {
		if s := tensor.Dot(r, c.Row(j)) - half[j]; s > bestScore {
			best, bestScore = j, s
		}
	}
	return best
}

// AttendStats reports the work of one Attend call.
type AttendStats struct {
	Lists  int // inverted lists actually probed
	Probed int // candidate rows scored (one Dot of length d each)
	Kept   int // rows surviving the top-k cut (softmax support)
}

// ProbeScratch is the pooled per-query scratch for the index query
// path. All fields are grow-only, so a recycled scratch makes the
// steady-state query path allocation-free.
type ProbeScratch struct {
	scores tensor.Vector // centroid scores u·c_j
	taken  []bool        // centroid-selection mask
	cand   []int32       // merged candidate rows, ascending
	logits tensor.Vector // per-candidate logits u·row
	keep   []bool        // top-k mask over candidate positions
	hLog   tensor.Vector // selection heap: logits
	hPos   []int32       // selection heap: candidate positions
	c      Compacted     // reusable result (Weights/Index grow-only)
}

var probePool = sync.Pool{New: func() any { return new(ProbeScratch) }}

// GetProbeScratch draws a query scratch from the process-wide pool.
//
//mnnfast:pool-get
func GetProbeScratch() *ProbeScratch { return probePool.Get().(*ProbeScratch) }

// PutProbeScratch returns a scratch to the pool. The *Compacted
// returned by Attend aliases the scratch and must not be used after.
//
//mnnfast:pool-put
func PutProbeScratch(ps *ProbeScratch) { probePool.Put(ps) }

// Candidates scores the centroids against u and returns the union of
// the nprobe best inverted lists as ascending row ids, aliasing ps.
// nprobe <= 0 selects DefaultNProbe; if the selected lists are all
// empty, selection extends one list at a time until a candidate
// appears, so a non-empty index always yields at least one candidate.
// Centroid ties go to the lowest index. The candidate slice grows by
// append but is reused across calls, so steady state allocates nothing.
//
//mnnfast:hotpath allow=append
func (ix *TopKIndex) Candidates(u tensor.Vector, nprobe int, ps *ProbeScratch) ([]int32, int) {
	nlist := ix.nlist
	if nprobe <= 0 {
		nprobe = DefaultNProbe(nlist)
	}
	if nprobe > nlist {
		nprobe = nlist
	}

	ps.scores = growVec(ps.scores, nlist)
	c := ix.centroids
	j := 0
	for ; j+4 <= nlist; j += 4 {
		d0, d1, d2, d3 := tensor.Dot4(u, c.Row(j), c.Row(j+1), c.Row(j+2), c.Row(j+3))
		ps.scores[j], ps.scores[j+1], ps.scores[j+2], ps.scores[j+3] = d0, d1, d2, d3
	}
	for ; j < nlist; j++ {
		ps.scores[j] = tensor.Dot(u, c.Row(j))
	}

	ps.taken = growBool(ps.taken, nlist)
	ps.cand = ps.cand[:0]
	probed := 0
	for t := 0; t < nlist; t++ {
		if t >= nprobe && len(ps.cand) > 0 {
			break
		}
		best, found := -1, false
		var bestScore float32
		for l := 0; l < nlist; l++ {
			if ps.taken[l] {
				continue
			}
			if !found || ps.scores[l] > bestScore {
				best, bestScore, found = l, ps.scores[l], true
			}
		}
		if !found {
			break
		}
		ps.taken[best] = true
		ps.cand = append(ps.cand, ix.List(best)...)
		probed++
	}
	for l := 0; l < nlist; l++ { // reset the mask for the next call

		ps.taken[l] = false
	}
	// Lists partition arbitrary row ranges, so the union needs a full
	// sort to restore the ascending merge order the determinism
	// contract requires. In-place, allocation-free.
	slices.Sort(ps.cand)
	return ps.cand, probed
}

// Attend runs approximate top-k attention: probe the nprobe best
// lists, score the candidates against u, keep the k largest logits
// (k <= 0 keeps every candidate; logit ties go to the lowest row),
// and softmax the survivors. The result aliases ps: Weights holds the
// softmax probabilities and Index the ascending surviving rows; Rows
// is nil — accumulate with WeightedSumGather against the output
// memory. Candidates are scored and survivors emitted in ascending
// row order, so the result is bit-deterministic for a fixed index.
//
//mnnfast:hotpath
func (ix *TopKIndex) Attend(u tensor.Vector, k, nprobe int, ps *ProbeScratch) (*Compacted, AttendStats) {
	cand, lists := ix.Candidates(u, nprobe, ps)
	st := AttendStats{Lists: lists, Probed: len(cand)}

	// Candidate logits go through the dispatched Dot kernel — not the
	// register-blocked Dot4 — because Dot's reduction order is what the
	// dense MatVec path uses, and float32 multiply commutes bitwise:
	// probing every list therefore reproduces the exact path's logits
	// bit-for-bit (the fallback identity the tests and fuzz oracle pin).
	m := ix.mat
	ps.logits = growVec(ps.logits, len(cand))
	for i := 0; i < len(cand); i++ {
		ps.logits[i] = tensor.Dot(u, m.Row(int(cand[i])))
	}

	kk := k
	if kk <= 0 || kk > len(cand) {
		kk = len(cand)
	}
	out := &ps.c
	out.Rows = nil
	out.Weights = growVec(out.Weights, kk)
	out.Index = growI32(out.Index, kk)
	if kk == len(cand) {
		copy(out.Weights, ps.logits)
		copy(out.Index, cand)
	} else {
		ps.selectTopK(kk)
		w := 0
		for pos, keep := range ps.keep {
			if !keep {
				continue
			}
			out.Weights[w] = ps.logits[pos]
			out.Index[w] = cand[pos]
			w++
		}
	}
	st.Kept = kk
	tensor.Softmax(out.Weights)
	return out, st
}

// selectTopK marks the positions of the kk largest logits in ps.keep.
// Ties keep the lower candidate position (= lower row, since cand is
// ascending). A fixed-size min-heap over (logit, position): the root
// is the worst kept entry — smallest logit, largest position among
// equal logits — and is evicted by any strictly better incoming entry.
//
//mnnfast:hotpath
func (ps *ProbeScratch) selectTopK(kk int) {
	n := len(ps.logits)
	ps.hLog = growVec(ps.hLog, kk)
	ps.hPos = growI32(ps.hPos, kk)
	for i := 0; i < kk; i++ {
		ps.hLog[i], ps.hPos[i] = ps.logits[i], int32(i)
	}
	for i := kk/2 - 1; i >= 0; i-- {
		ps.siftDown(i, kk)
	}
	for pos := kk; pos < n; pos++ {
		if heapWorse(ps.hLog[0], ps.hPos[0], ps.logits[pos], int32(pos)) {
			ps.hLog[0], ps.hPos[0] = ps.logits[pos], int32(pos)
			ps.siftDown(0, kk)
		}
	}
	ps.keep = growBool(ps.keep, n)
	for i := range ps.keep {
		ps.keep[i] = false
	}
	for i := 0; i < kk; i++ {
		ps.keep[ps.hPos[i]] = true
	}
}

// heapWorse reports whether entry (l1, p1) ranks strictly worse than
// (l2, p2): lower logit, or equal logit at a higher position.
//
//mnnfast:hotpath
func heapWorse(l1 float32, p1 int32, l2 float32, p2 int32) bool {
	return l1 < l2 || (l1 == l2 && p1 > p2)
}

//mnnfast:hotpath
func (ps *ProbeScratch) siftDown(i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && heapWorse(ps.hLog[l], ps.hPos[l], ps.hLog[worst], ps.hPos[worst]) {
			worst = l
		}
		if r < n && heapWorse(ps.hLog[r], ps.hPos[r], ps.hLog[worst], ps.hPos[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		ps.hLog[i], ps.hLog[worst] = ps.hLog[worst], ps.hLog[i]
		ps.hPos[i], ps.hPos[worst] = ps.hPos[worst], ps.hPos[i]
		i = worst
	}
}

// growVec returns s resized to n, reallocating only when capacity is
// exceeded — the grow-only scratch idiom of the hot paths.
//
//mnnfast:hotpath
func growVec(s tensor.Vector, n int) tensor.Vector {
	if cap(s) < n {
		return tensor.NewVector(n)
	}
	return s[:n]
}

//mnnfast:hotpath
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

//mnnfast:hotpath
func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
