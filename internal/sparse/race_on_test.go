//go:build race

package sparse

// raceEnabled reports whether the race detector is active; allocation
// counts are not meaningful under -race.
const raceEnabled = true
