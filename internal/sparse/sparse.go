// Package sparse implements the matrix-compaction comparator the
// MnnFast paper evaluates (and rejects) for GPU zero-skipping (§4.1.2):
// compact the near-zero rows out of the probability vector and output
// memory into a CSR-like dense form, then run a dense weighted sum over
// the survivors. The paper ports the DeftNN synapse-vector-elimination
// scheme and finds the transformation cost comparable to the weighted
// sum itself; this package lets the repository reproduce that crossover
// (see the compaction ablation bench).
package sparse

import (
	"fmt"

	"mnnfast/internal/tensor"
)

// CompactStats reports the cost of a compaction pass.
type CompactStats struct {
	Rows     int   // input rows
	Kept     int   // surviving rows
	MovedB   int64 // bytes copied during compaction
	GatherOp int64 // index-gather operations (the indirect accesses the paper flags)
}

// Compacted is the dense form of the surviving rows.
type Compacted struct {
	Weights tensor.Vector  // surviving probability values
	Rows    *tensor.Matrix // surviving output-memory rows, densely packed
	Index   []int32        // original row of each packed row
}

// Compact packs the rows of out whose weight is at least threshold.
// It is the data transformation a GPU must run before a dense kernel
// can exploit sparsity. It allocates a fresh Compacted; hot paths use
// CompactInto with reused scratch instead.
func Compact(weights tensor.Vector, out *tensor.Matrix, threshold float32) (*Compacted, CompactStats) {
	c := &Compacted{}
	st := CompactInto(weights, out, threshold, c)
	return c, st
}

// CompactInto is Compact with caller-owned scratch: a count pass sizes
// Weights/Index/Rows exactly, and all three are grow-only across calls,
// so a reused Compacted makes the gather path allocation-free at steady
// state. The stats keep Compact's cost semantics: one GatherOp per
// weight test plus one per kept row, MovedB counting the packed bytes.
//
//mnnfast:hotpath
func CompactInto(weights tensor.Vector, out *tensor.Matrix, threshold float32, c *Compacted) CompactStats {
	if len(weights) != out.Rows {
		panic(fmt.Sprintf("sparse: %d weights for %d rows", len(weights), out.Rows))
	}
	st := CompactStats{Rows: out.Rows}
	kept := 0
	for _, w := range weights {
		st.GatherOp++
		// Same predicate as the fill pass (not w >= threshold), so
		// non-finite weights count consistently in both passes.
		if !(w < threshold) {
			kept++
		}
	}
	st.Kept = kept
	c.Weights = growVec(c.Weights, kept)
	c.Index = growI32(c.Index, kept)
	c.Rows = growMat(c.Rows, kept, out.Cols)
	j := 0
	for i, w := range weights {
		if w < threshold {
			continue
		}
		c.Weights[j] = w
		c.Index[j] = int32(i)
		copy(c.Rows.Row(j), out.Row(i))
		st.MovedB += int64(out.Cols) * 4
		st.GatherOp++
		j++
	}
	return st
}

// growMat resizes m to rows×cols, reallocating only when the backing
// storage is too small.
//
//mnnfast:hotpath
func growMat(m *tensor.Matrix, rows, cols int) *tensor.Matrix {
	if m == nil || cap(m.Data) < rows*cols {
		return tensor.NewMatrix(rows, cols)
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:rows*cols]
	return m
}

// WeightedSum computes o = Σ wⱼ·rowⱼ over the compacted rows.
func (c *Compacted) WeightedSum(o tensor.Vector) {
	o.Zero()
	for j, w := range c.Weights {
		tensor.Axpy(w, c.Rows.Row(j), o)
	}
}

// WeightedSumGather computes o = Σ wⱼ·src.Row(Index[j]) without a
// packed Rows copy: the indirect gather the top-k attention path uses,
// reading the surviving rows straight out of the output memory in
// ascending row order. Weights below threshold are skipped (the same
// inline test as the exact path's zero-skipping); it returns the number
// of rows skipped.
//
//mnnfast:hotpath
func (c *Compacted) WeightedSumGather(src *tensor.Matrix, threshold float32, o tensor.Vector) int {
	o.Zero()
	skipped := 0
	for j, w := range c.Weights {
		if w < threshold {
			skipped++
			continue
		}
		tensor.Axpy(w, src.Row(int(c.Index[j])), o)
	}
	return skipped
}

// DirectSkipSum computes the same result without compaction: a single
// pass that tests each weight inline (the MnnFast zero-skipping way).
// It returns the number of rows actually accumulated.
func DirectSkipSum(weights tensor.Vector, out *tensor.Matrix, threshold float32, o tensor.Vector) int {
	if len(weights) != out.Rows {
		panic(fmt.Sprintf("sparse: %d weights for %d rows", len(weights), out.Rows))
	}
	o.Zero()
	kept := 0
	for i, w := range weights {
		if w < threshold {
			continue
		}
		tensor.Axpy(w, out.Row(i), o)
		kept++
	}
	return kept
}
