// Package sparse implements the matrix-compaction comparator the
// MnnFast paper evaluates (and rejects) for GPU zero-skipping (§4.1.2):
// compact the near-zero rows out of the probability vector and output
// memory into a CSR-like dense form, then run a dense weighted sum over
// the survivors. The paper ports the DeftNN synapse-vector-elimination
// scheme and finds the transformation cost comparable to the weighted
// sum itself; this package lets the repository reproduce that crossover
// (see the compaction ablation bench).
package sparse

import (
	"fmt"

	"mnnfast/internal/tensor"
)

// CompactStats reports the cost of a compaction pass.
type CompactStats struct {
	Rows     int   // input rows
	Kept     int   // surviving rows
	MovedB   int64 // bytes copied during compaction
	GatherOp int64 // index-gather operations (the indirect accesses the paper flags)
}

// Compacted is the dense form of the surviving rows.
type Compacted struct {
	Weights tensor.Vector  // surviving probability values
	Rows    *tensor.Matrix // surviving output-memory rows, densely packed
	Index   []int32        // original row of each packed row
}

// Compact packs the rows of out whose weight is at least threshold.
// It is the data transformation a GPU must run before a dense kernel
// can exploit sparsity.
func Compact(weights tensor.Vector, out *tensor.Matrix, threshold float32) (*Compacted, CompactStats) {
	if len(weights) != out.Rows {
		panic(fmt.Sprintf("sparse: %d weights for %d rows", len(weights), out.Rows))
	}
	st := CompactStats{Rows: out.Rows}
	c := &Compacted{}
	for i, w := range weights {
		st.GatherOp++
		if w < threshold {
			continue
		}
		c.Weights = append(c.Weights, w)
		c.Index = append(c.Index, int32(i))
	}
	st.Kept = len(c.Index)
	c.Rows = tensor.NewMatrix(st.Kept, out.Cols)
	for j, src := range c.Index {
		copy(c.Rows.Row(j), out.Row(int(src)))
		st.MovedB += int64(out.Cols) * 4
		st.GatherOp++
	}
	return c, st
}

// WeightedSum computes o = Σ wⱼ·rowⱼ over the compacted rows.
func (c *Compacted) WeightedSum(o tensor.Vector) {
	o.Zero()
	for j, w := range c.Weights {
		tensor.Axpy(w, c.Rows.Row(j), o)
	}
}

// DirectSkipSum computes the same result without compaction: a single
// pass that tests each weight inline (the MnnFast zero-skipping way).
// It returns the number of rows actually accumulated.
func DirectSkipSum(weights tensor.Vector, out *tensor.Matrix, threshold float32, o tensor.Vector) int {
	if len(weights) != out.Rows {
		panic(fmt.Sprintf("sparse: %d weights for %d rows", len(weights), out.Rows))
	}
	o.Zero()
	kept := 0
	for i, w := range weights {
		if w < threshold {
			continue
		}
		tensor.Axpy(w, out.Row(i), o)
		kept++
	}
	return kept
}
