package sparse

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"mnnfast/internal/tensor"
)

// clusteredMatrix builds rows drawn from nc Gaussian-ish centers — the
// regime IVF indexing is built for: attention mass concentrated around
// a few prototypes.
func clusteredMatrix(rng *rand.Rand, n, d, nc int, noise float32) (*tensor.Matrix, *tensor.Matrix) {
	centers := tensor.RandomMatrix(rng, nc, d, 1)
	m := tensor.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers.Row(i % nc)
		r := m.Row(i)
		for j := range r {
			r[j] = c[j] + (rng.Float32()*2-1)*noise
		}
	}
	return m, centers
}

// bruteTopK returns the rows of the k largest logits u·row, ties to
// the lower row — the exact-selection oracle for recall@k.
func bruteTopK(m *tensor.Matrix, u tensor.Vector, k int) []int32 {
	type scored struct {
		l float32
		r int32
	}
	all := make([]scored, m.Rows)
	for i := range all {
		all[i] = scored{tensor.Dot(u, m.Row(i)), int32(i)}
	}
	slices.SortStableFunc(all, func(a, b scored) int {
		switch {
		case a.l > b.l:
			return -1
		case a.l < b.l:
			return 1
		case a.r < b.r:
			return -1
		case a.r > b.r:
			return 1
		}
		return 0
	})
	if k > len(all) {
		k = len(all)
	}
	rows := make([]int32, k)
	for i := 0; i < k; i++ {
		rows[i] = all[i].r
	}
	return rows
}

func recallAtK(got []int32, want []int32) float64 {
	if len(want) == 0 {
		return 1
	}
	set := make(map[int32]bool, len(got))
	for _, r := range got {
		set[r] = true
	}
	hit := 0
	for _, r := range want {
		if set[r] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func checkListsPartition(t *testing.T, ix *TopKIndex, n int) {
	t.Helper()
	seen := make([]bool, n)
	total := 0
	for j := 0; j < ix.NList(); j++ {
		list := ix.List(j)
		for i, r := range list {
			if r < 0 || int(r) >= n {
				t.Fatalf("list %d row %d out of range [0,%d)", j, r, n)
			}
			if i > 0 && list[i-1] >= r {
				t.Fatalf("list %d not strictly ascending at %d: %d >= %d", j, i, list[i-1], r)
			}
			if seen[r] {
				t.Fatalf("row %d appears in two lists", r)
			}
			seen[r] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("lists cover %d of %d rows", total, n)
	}
}

func TestIndexListsPartitionRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 7, 64, 500} {
		m := tensor.RandomMatrix(rng, n, 12, 1)
		ix := BuildTopKIndex(m, IndexOptions{})
		checkListsPartition(t, ix, n)
		if ix.Rows() != n {
			t.Errorf("Rows() = %d, want %d", ix.Rows(), n)
		}
		if ix.SizeBytes() <= 0 {
			t.Errorf("SizeBytes() = %d", ix.SizeBytes())
		}
	}
}

func TestIndexRebuildDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, _ := clusteredMatrix(rng, 400, 16, 8, 0.1)
	a := BuildTopKIndex(m, IndexOptions{})
	b := BuildTopKIndex(m, IndexOptions{})
	if a.NList() != b.NList() {
		t.Fatalf("nlist differs across rebuilds: %d vs %d", a.NList(), b.NList())
	}
	for i, x := range a.Centroids().Data {
		if math.Float32bits(x) != math.Float32bits(b.Centroids().Data[i]) {
			t.Fatalf("centroid bits differ at %d: %x vs %x", i,
				math.Float32bits(x), math.Float32bits(b.Centroids().Data[i]))
		}
	}
	for j := 0; j < a.NList(); j++ {
		if !slices.Equal(a.List(j), b.List(j)) {
			t.Fatalf("list %d differs across rebuilds", j)
		}
	}
}

func TestCandidatesAscendingAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := tensor.RandomMatrix(rng, 300, 8, 1)
	u := tensor.RandomVector(rng, 8, 1)
	ix := BuildTopKIndex(m, IndexOptions{})
	ps := GetProbeScratch()
	defer PutProbeScratch(ps)
	for _, nprobe := range []int{0, 1, 2, ix.NList(), ix.NList() + 5} {
		cand, lists := ix.Candidates(u, nprobe, ps)
		if len(cand) == 0 {
			t.Fatalf("nprobe=%d yielded no candidates", nprobe)
		}
		if lists < 1 || lists > ix.NList() {
			t.Fatalf("nprobe=%d probed %d lists", nprobe, lists)
		}
		for i := 1; i < len(cand); i++ {
			if cand[i-1] >= cand[i] {
				t.Fatalf("candidates not strictly ascending at %d", i)
			}
		}
		if nprobe >= ix.NList() && len(cand) != 300 {
			t.Fatalf("full probe returned %d of 300 rows", len(cand))
		}
	}
}

// TestFullProbeMatchesDense pins the bit-identity fallback: probing
// every list with no top-k cut must reproduce the dense softmax
// exactly — same Dot per row (multiply commutes bitwise), same max,
// same exp, same scale.
func TestFullProbeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{1, 5, 97, 256} {
		m := tensor.RandomMatrix(rng, n, 16, 1)
		u := tensor.RandomVector(rng, 16, 1)
		ix := BuildTopKIndex(m, IndexOptions{})

		want := tensor.NewVector(n)
		for i := 0; i < n; i++ {
			want[i] = tensor.Dot(m.Row(i), u)
		}
		tensor.Softmax(want)

		ps := GetProbeScratch()
		c, st := ix.Attend(u, 0, ix.NList(), ps)
		if st.Probed != n || st.Kept != n {
			t.Fatalf("full probe: probed %d kept %d of %d", st.Probed, st.Kept, n)
		}
		for j, w := range c.Weights {
			if int(c.Index[j]) != j {
				t.Fatalf("full probe index[%d] = %d", j, c.Index[j])
			}
			if math.Float32bits(w) != math.Float32bits(want[j]) {
				t.Fatalf("n=%d: weight %d bits %x != dense %x", n, j,
					math.Float32bits(w), math.Float32bits(want[j]))
			}
		}
		PutProbeScratch(ps)
	}
}

// TestAttendDeterministicAcrossScratch pins the query determinism
// contract: a fixed index gives bit-identical results whatever scratch
// is passed in and however many times the query runs.
func TestAttendDeterministicAcrossScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m, _ := clusteredMatrix(rng, 600, 16, 8, 0.1)
	u := tensor.RandomVector(rng, 16, 1)
	ix := BuildTopKIndex(m, IndexOptions{})

	ps1 := GetProbeScratch()
	c1, st1 := ix.Attend(u, 8, 3, ps1)
	w1 := c1.Weights.Clone()
	i1 := slices.Clone(c1.Index)
	PutProbeScratch(ps1)

	for trial := 0; trial < 3; trial++ {
		ps2 := &ProbeScratch{} // fresh, un-pooled scratch
		c2, st2 := ix.Attend(u, 8, 3, ps2)
		if st2 != st1 {
			t.Fatalf("stats differ: %+v vs %+v", st2, st1)
		}
		if !slices.Equal(c2.Index, i1) {
			t.Fatalf("rows differ: %v vs %v", c2.Index, i1)
		}
		for j := range w1 {
			if math.Float32bits(c2.Weights[j]) != math.Float32bits(w1[j]) {
				t.Fatalf("weight %d bits differ", j)
			}
		}
	}
}

func TestRecallFullProbeIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	m := tensor.RandomMatrix(rng, 400, 16, 1)
	ix := BuildTopKIndex(m, IndexOptions{})
	ps := GetProbeScratch()
	defer PutProbeScratch(ps)
	for q := 0; q < 10; q++ {
		u := tensor.RandomVector(rng, 16, 1)
		c, _ := ix.Attend(u, 10, ix.NList(), ps)
		if r := recallAtK(c.Index, bruteTopK(m, u, 10)); r != 1 {
			t.Fatalf("query %d: full-probe recall@10 = %v", q, r)
		}
	}
}

// TestRecallClustered is the property the index exists for: on
// clustered memories a small probe fraction finds nearly all of the
// true top-k.
func TestRecallClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m, centers := clusteredMatrix(rng, 1024, 16, 8, 0.05)
	ix := BuildTopKIndex(m, IndexOptions{})
	ps := GetProbeScratch()
	defer PutProbeScratch(ps)

	nprobe := ix.NList() / 4
	var sum float64
	const queries = 20
	for q := 0; q < queries; q++ {
		// Queries near a center concentrate attention in one cluster.
		u := centers.Row(q % 8).Clone()
		for j := range u {
			u[j] += (rng.Float32()*2 - 1) * 0.05
		}
		c, st := ix.Attend(u, 10, nprobe, ps)
		if st.Probed >= 1024 {
			t.Fatalf("query %d probed every row", q)
		}
		sum += recallAtK(c.Index, bruteTopK(m, u, 10))
	}
	if avg := sum / queries; avg < 0.9 {
		t.Fatalf("clustered recall@10 = %v, want >= 0.9 (nprobe=%d/%d)", avg, nprobe, ix.NList())
	}
}

// TestDuplicateRowsTieBreak is the adversarial memory: every row
// identical, so every logit ties. The cut must keep the lowest rows.
func TestDuplicateRowsTieBreak(t *testing.T) {
	m := tensor.NewMatrix(64, 8)
	for i := 0; i < 64; i++ {
		for j := 0; j < 8; j++ {
			m.Set(i, j, 0.5)
		}
	}
	u := tensor.NewVector(8)
	u.Fill(1)
	ix := BuildTopKIndex(m, IndexOptions{})
	ps := GetProbeScratch()
	defer PutProbeScratch(ps)
	c, st := ix.Attend(u, 5, ix.NList(), ps)
	if st.Probed != 64 {
		t.Fatalf("probed %d of 64 duplicate rows", st.Probed)
	}
	want := []int32{0, 1, 2, 3, 4}
	if !slices.Equal(c.Index, want) {
		t.Fatalf("tie-break kept %v, want %v", c.Index, want)
	}
	for _, w := range c.Weights {
		if math.Float32bits(w) != math.Float32bits(float32(0.2)) {
			t.Fatalf("uniform ties got weight %v", w)
		}
	}
}

func TestWeightedSumGatherMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	memOut := tensor.RandomMatrix(rng, 200, 16, 1)
	w := sparseWeights(rng, 200, 0.1)
	const th = 0.1

	c, _ := Compact(w, memOut, th)
	a := tensor.NewVector(16)
	c.WeightedSum(a)
	b := tensor.NewVector(16)
	if skipped := c.WeightedSumGather(memOut, 0, b); skipped != 0 {
		t.Fatalf("gather skipped %d pre-cut rows", skipped)
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("gather and packed sums differ at %d", i)
		}
	}

	// With an inline threshold, gather must skip exactly the rows the
	// direct pass skips and produce bit-identical output.
	all := &Compacted{}
	CompactInto(w, memOut, 0, all) // keep everything, cut inline below
	d1 := tensor.NewVector(16)
	kept := DirectSkipSum(w, memOut, th, d1)
	d2 := tensor.NewVector(16)
	skipped := all.WeightedSumGather(memOut, th, d2)
	if 200-skipped != kept {
		t.Fatalf("gather kept %d, direct kept %d", 200-skipped, kept)
	}
	for i := range d1 {
		if math.Float32bits(d1[i]) != math.Float32bits(d2[i]) {
			t.Fatalf("thresholded gather differs at %d", i)
		}
	}
}

func TestCompactIntoReuseMatchesCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	scratch := &Compacted{}
	for trial := 0; trial < 5; trial++ {
		n := 50 + trial*40
		out := tensor.RandomMatrix(rng, n, 8, 1)
		w := sparseWeights(rng, n, 0.15)
		fresh, stFresh := Compact(w, out, 0.1)
		stReuse := CompactInto(w, out, 0.1, scratch)
		if stFresh != stReuse {
			t.Fatalf("stats differ: %+v vs %+v", stFresh, stReuse)
		}
		if !slices.Equal(fresh.Index, scratch.Index) {
			t.Fatalf("indices differ on reuse")
		}
		for j := range fresh.Weights {
			if fresh.Weights[j] != scratch.Weights[j] {
				t.Fatalf("weights differ at %d", j)
			}
			if tensor.MaxAbsDiff(fresh.Rows.Row(j), scratch.Rows.Row(j)) != 0 {
				t.Fatalf("rows differ at %d", j)
			}
		}
	}
}

func TestCompactIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	out := tensor.RandomMatrix(rng, 500, 16, 1)
	w := sparseWeights(rng, 500, 0.2)
	c := &Compacted{}
	o := tensor.NewVector(16)
	CompactInto(w, out, 0.05, c) // warm the scratch
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if a := testing.AllocsPerRun(50, func() {
		CompactInto(w, out, 0.05, c)
		c.WeightedSumGather(out, 0, o)
	}); a != 0 {
		t.Fatalf("compact+gather allocates %v per op at steady state", a)
	}
}

func TestAttendSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, _ := clusteredMatrix(rng, 800, 16, 8, 0.1)
	u := tensor.RandomVector(rng, 16, 1)
	ix := BuildTopKIndex(m, IndexOptions{})
	o := tensor.NewVector(16)
	ps := GetProbeScratch()
	defer PutProbeScratch(ps)
	ix.Attend(u, 8, 4, ps) // warm the scratch
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if a := testing.AllocsPerRun(50, func() {
		c, _ := ix.Attend(u, 8, 4, ps)
		c.WeightedSumGather(m, 0, o)
	}); a != 0 {
		t.Fatalf("probe+gather allocates %v per op at steady state", a)
	}
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty matrix accepted")
		}
	}()
	BuildTopKIndex(tensor.NewMatrix(0, 8), IndexOptions{})
}
