// Package perfmodel provides the analytic performance and energy models
// that substitute for the MnnFast paper's hardware testbeds: a CPU
// thread/bandwidth model (Fig 3, 9b, 10), a GPU stream/PCIe timeline
// model (Fig 12), an FPGA pipeline cycle model (Fig 13, 14), and the
// CPU-vs-FPGA energy comparison (§5.5).
//
// The models are deliberately first-order: every curve the paper
// reports is a consequence of either a roofline (compute rate vs memory
// bandwidth), an overlap rule (what may proceed concurrently), or a
// counter ratio (skipped work, cache hits). Those are exactly the
// quantities the engine instrumentation and the cache simulator
// produce, so the modelled curves inherit their shapes from measured
// workload properties rather than from tuned constants.
package perfmodel

import (
	"fmt"
	"math"
)

// Workload summarizes what one inference (or batch) costs, as counted
// by the engines and the cache simulator.
type Workload struct {
	Name       string
	ComputeOps float64 // weighted scalar operations (muls + exp/div weights)
	DRAMBytes  float64 // off-chip traffic
	Streamed   bool    // true when accesses are prefetch-pipelined
}

// CPU models a multi-core socket with DDR channels.
type CPU struct {
	CoreGOPs        float64 // per-core sustained Gop/s on this kernel mix
	ChannelGBs      float64 // per-memory-channel GB/s
	RandomAccessEff float64 // fraction of peak bandwidth achieved by
	// demand-miss (non-streamed) access patterns; prefetch-pipelined
	// streams achieve 1.0

	// LockstepBarrier is the cost of one cross-thread synchronization
	// of the paper's lock-step layer parallelization (§4.1.1). It is
	// negligible at Wikipedia-scale databases but dominates tiny
	// (FPGA-scale) networks, which is why the energy comparison charges
	// it per layer (see experiments.Energy).
	LockstepBarrier float64
}

// DefaultCPU approximates one socket of the paper's Xeon E5-2650 v4
// testbed with DDR4-2400 channels; the 2 µs barrier is a typical
// 20-thread pthread-barrier round trip.
func DefaultCPU() CPU {
	return CPU{CoreGOPs: 8, ChannelGBs: 19.2, RandomAccessEff: 0.55, LockstepBarrier: 2e-6}
}

// CPUTime is the modelled execution-time decomposition.
type CPUTime struct {
	Compute float64 // seconds of compute at the given thread count
	Memory  float64 // seconds of DRAM transfer at the given channel count
	Total   float64
}

// Time models the workload on the given threads and channels.
//
// Without streaming, demand misses serialize against compute:
// total = compute + memory (the paper's baseline stalls). With
// streaming, prefetch overlaps transfer and compute, so the slower of
// the two bounds execution (roofline): total = max(compute, memory).
func (c CPU) Time(w Workload, threads, channels int) CPUTime {
	if threads < 1 || channels < 1 {
		panic(fmt.Sprintf("perfmodel: CPU.Time(threads=%d, channels=%d)", threads, channels))
	}
	t := CPUTime{
		Compute: w.ComputeOps / (c.CoreGOPs * 1e9 * float64(threads)),
	}
	bw := c.ChannelGBs * 1e9 * float64(channels)
	if w.Streamed {
		t.Memory = w.DRAMBytes / bw
		t.Total = math.Max(t.Compute, t.Memory)
		return t
	}
	t.Memory = w.DRAMBytes / (bw * c.RandomAccessEff)
	t.Total = t.Compute + t.Memory
	return t
}

// Speedup returns time(1 thread) / time(threads) for the workload at
// the given channel count — the normalization of Figures 3 and 10.
func (c CPU) Speedup(w Workload, threads, channels int) float64 {
	return c.Time(w, 1, channels).Total / c.Time(w, threads, channels).Total
}

// SaturationThreads returns the smallest thread count whose marginal
// speedup over the previous count drops below eps — the knee the paper
// reads off Figures 3 and 10.
func (c CPU) SaturationThreads(w Workload, channels, maxThreads int, eps float64) int {
	prev := c.Speedup(w, 1, channels)
	for t := 2; t <= maxThreads; t++ {
		s := c.Speedup(w, t, channels)
		if s-prev < eps {
			return t - 1
		}
		prev = s
	}
	return maxThreads
}

// OpWeights converts engine counters into weighted scalar operations:
// multiply-accumulates count 1, exponentials and divisions cost several
// multiply-equivalents (the paper highlights softmax's exponentiation
// cost in §2.2.2).
type OpWeights struct {
	Mul float64
	Exp float64
	Div float64
}

// DefaultOpWeights uses 1 op per MAC, 20 per exp, 5 per division —
// typical scalar-libm cost ratios.
func DefaultOpWeights() OpWeights { return OpWeights{Mul: 1, Exp: 20, Div: 5} }

// Ops folds raw counters into weighted operation counts.
func (w OpWeights) Ops(muls, exps, divs int64) float64 {
	return w.Mul*float64(muls) + w.Exp*float64(exps) + w.Div*float64(divs)
}
