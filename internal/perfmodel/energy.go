package perfmodel

import "fmt"

// EnergyModel compares platform energy for an equal quantity of QA
// work (§5.5). The paper measures CPU power with turbostat and FPGA
// power from Vivado's post-bitstream report; here both are device-class
// constants applied to modelled (or measured) execution times.
type EnergyModel struct {
	CPUWatts  float64 // package power of the dual-socket Xeon under load
	FPGAWatts float64 // Zynq-7020 PL+PS power estimate
}

// DefaultEnergy uses 170 W for the loaded dual E5-2650 v4 pair and
// 2.5 W for the Zynq-7020 — Vivado-report territory for a design of
// this size.
func DefaultEnergy() EnergyModel {
	return EnergyModel{CPUWatts: 170, FPGAWatts: 2.5}
}

// Efficiency is tasks per joule.
func (e EnergyModel) Efficiency(tasks float64, seconds, watts float64) float64 {
	if seconds <= 0 || watts <= 0 {
		panic(fmt.Sprintf("perfmodel: Efficiency(seconds=%v, watts=%v)", seconds, watts))
	}
	return tasks / (seconds * watts)
}

// FPGAAdvantage returns how many times more energy-efficient the FPGA
// is than the CPU for the same task count.
func (e EnergyModel) FPGAAdvantage(tasks, cpuSeconds, fpgaSeconds float64) float64 {
	cpu := e.Efficiency(tasks, cpuSeconds, e.CPUWatts)
	fpga := e.Efficiency(tasks, fpgaSeconds, e.FPGAWatts)
	return fpga / cpu
}
