package perfmodel

import (
	"fmt"
	"math"
)

// GPU models the paper's multi-GPU testbed (§5.3): devices with a fixed
// compute rate attached to one shared PCIe root. The overlap rules are
// the ones the paper observes with CUDA streams: kernel/kernel and
// kernel/memcpy overlap, but memcpy/memcpy never does, because each
// copy saturates the full PCIe bandwidth.
type GPU struct {
	DeviceGOPs float64 // per-device sustained Gop/s
	PCIeGBs    float64 // host-to-device bandwidth per device link
	// ContentionFactor inflates each device's H2D copy when G devices
	// transfer concurrently: copy × (1 + f·(G-1)). Multi-GPU copies
	// overlap (each device has its own DMA engine and link) but share
	// host memory and switch uplinks — the residual contention the
	// paper measures as the worst-vs-ideal H2D gap (Fig 12b).
	ContentionFactor float64
}

// DefaultGPU approximates a TITAN Xp-class device on PCIe 3.0 x16 in
// the paper's SuperServer (two root complexes, PLX switches).
func DefaultGPU() GPU {
	return GPU{DeviceGOPs: 8000, PCIeGBs: 12, ContentionFactor: 0.15}
}

// GPUTimeline is the modelled execution of one inference batch.
type GPUTimeline struct {
	H2D    float64 // total host-to-device copy time on the shared bus
	Kernel float64 // kernel execution time on the critical path
	D2H    float64 // device-to-host result copy (partials: O(ed), tiny)
	Total  float64
}

// MultiStream models S CUDA streams on a single device. The workload
// is split into S chunks (the column-based algorithm makes the split
// legal); each stream's H2D copy serializes on PCIe while its kernels
// overlap preceding copies.
func (g GPU) MultiStream(w Workload, streams int) GPUTimeline {
	if streams < 1 {
		panic(fmt.Sprintf("perfmodel: MultiStream(%d)", streams))
	}
	copyChunk := w.DRAMBytes / float64(streams) / (g.PCIeGBs * 1e9)
	kernChunk := w.ComputeOps / float64(streams) / (g.DeviceGOPs * 1e9)

	var copyEnd, kernEnd float64
	for s := 0; s < streams; s++ {
		copyEnd += copyChunk // memcpys serialize on the bus
		start := math.Max(copyEnd, kernEnd)
		kernEnd = start + kernChunk
	}
	tl := GPUTimeline{
		H2D:    copyChunk * float64(streams),
		Kernel: kernChunk * float64(streams),
		D2H:    1e-6, // O(ed) partial result; negligible (§5.3)
	}
	tl.Total = kernEnd + tl.D2H
	return tl
}

// MultiGPU models G devices, each processing 1/G of the memory with
// column-based chunk streaming: every device overlaps its own H2D
// copies with its kernels (total = max of the two phases), and unlike
// single-device streams the copies of different devices overlap each
// other (§5.3: "multiple GPUs can overlap between memcpy and memcpy
// functions"). When idealPCIe is false, concurrent copies pay the
// shared-fabric contention factor; the ideal case B removes it.
func (g GPU) MultiGPU(w Workload, gpus int, idealPCIe bool) GPUTimeline {
	if gpus < 1 {
		panic(fmt.Sprintf("perfmodel: MultiGPU(%d)", gpus))
	}
	perCopy := w.DRAMBytes / float64(gpus) / (g.PCIeGBs * 1e9)
	if !idealPCIe {
		perCopy *= 1 + g.ContentionFactor*float64(gpus-1)
	}
	perKern := w.ComputeOps / float64(gpus) / (g.DeviceGOPs * 1e9)

	tl := GPUTimeline{H2D: perCopy, Kernel: perKern, D2H: 1e-6}
	tl.Total = math.Max(perCopy, perKern) + tl.D2H
	return tl
}

// StreamSpeedup returns the multi-stream speedup over one stream.
func (g GPU) StreamSpeedup(w Workload, streams int) float64 {
	return g.MultiStream(w, 1).Total / g.MultiStream(w, streams).Total
}

// GPUSpeedup returns the multi-GPU speedup over one device.
func (g GPU) GPUSpeedup(w Workload, gpus int, idealPCIe bool) float64 {
	return g.MultiGPU(w, 1, idealPCIe).Total / g.MultiGPU(w, gpus, idealPCIe).Total
}
