package perfmodel

import "fmt"

// FPGA models the paper's ZedBoard accelerator (§4.2, §5.4): 100 MHz
// programmable logic with P parallel MAC lanes attached to a 32-bit
// DDR3-533 memory. Latency is counted in cycles of the logic clock.
type FPGA struct {
	ClockHz  float64 // programmable-logic clock
	MACLanes int     // parallel multiply-accumulate lanes
	// DDRBytesPerCycle is the effective DRAM bytes deliverable per
	// logic cycle: 32-bit × 533 MHz DDR ≈ 4.26 GB/s ≈ 42 B per 100 MHz
	// cycle; derated for row misses.
	DDRBytesPerCycle float64
	// DRAMLatencyCycles is the access latency charged to each
	// non-streamed (demand) burst.
	DRAMLatencyCycles float64
	// ExpCycles and DivCycles are the pipeline costs of the
	// exponential and divider units.
	ExpCycles float64
	DivCycles float64
	// SpillPenalty multiplies intermediate-vector DRAM bytes: the
	// baseline's 4-byte spill elements interleave with the memory
	// streams and each costs a wider DRAM burst (row-buffer conflicts),
	// so their effective traffic exceeds their payload.
	SpillPenalty float64
}

// DefaultFPGA approximates the Zynq-7020 configuration of Table 1:
// 100 MHz logic, a 5-lane MAC datapath, and 32-bit DDR3-533 memory
// (4.26 GB/s peak ≈ 42 B per logic cycle).
func DefaultFPGA() FPGA {
	return FPGA{
		ClockHz:           100e6,
		MACLanes:          5,
		DDRBytesPerCycle:  42,
		DRAMLatencyCycles: 20,
		ExpCycles:         8,
		DivCycles:         2, // pipelined divider, II=2
		SpillPenalty:      8, // 4 B spill elements burn 32 B bursts
	}
}

// FPGAWork counts what one inference costs on the accelerator.
type FPGAWork struct {
	InnerMuls   int64 // inner-product MACs
	WeightedMul int64 // weighted-sum MACs after zero-skipping
	Exps        int64
	Divs        int64
	DemandBytes int64 // DRAM bytes fetched on demand (stall per burst)
	StreamBytes int64 // DRAM bytes fetched by the streaming prefetcher
	SpillBytes  int64 // intermediate vectors written+read to DRAM
	Bursts      int64 // demand bursts (for latency charging)
}

// FPGALatency is the modelled cycle decomposition.
type FPGALatency struct {
	Compute float64 // MAC/exp/div cycles
	Memory  float64 // DRAM transfer + latency cycles
	Total   float64 // with streaming: max overlap; without: sum
	Seconds float64
}

// Latency models the work. streamed selects the overlap rule: the
// streaming design double-buffers chunk loads behind compute, so the
// larger of the two phases bounds the pipeline; the non-streamed design
// stalls for memory between compute phases.
func (f FPGA) Latency(w FPGAWork, streamed bool) FPGALatency {
	if f.MACLanes < 1 || f.ClockHz <= 0 {
		panic(fmt.Sprintf("perfmodel: invalid FPGA config %+v", f))
	}
	var l FPGALatency
	l.Compute = float64(w.InnerMuls+w.WeightedMul)/float64(f.MACLanes) +
		float64(w.Exps)*f.ExpCycles + float64(w.Divs)*f.DivCycles
	spillPenalty := f.SpillPenalty
	if spillPenalty == 0 {
		spillPenalty = 1
	}
	bytes := float64(w.DemandBytes+w.StreamBytes) + float64(w.SpillBytes)*spillPenalty
	l.Memory = bytes/f.DDRBytesPerCycle + float64(w.Bursts)*f.DRAMLatencyCycles
	if streamed {
		if l.Compute > l.Memory {
			l.Total = l.Compute
		} else {
			l.Total = l.Memory
		}
	} else {
		l.Total = l.Compute + l.Memory
	}
	l.Seconds = l.Total / f.ClockHz
	return l
}

// EmbeddingLatency models the embedding operation of one word stream
// against an embedding cache with the given hit rate (Fig 14). The
// cache's word size equals the embedding dimension (§3.3), so a hit is
// one wide BRAM read (single cycle); a miss fetches the whole
// ed-vector from DDR3 and pays the access latency.
func (f FPGA) EmbeddingLatency(words int64, hitRate float64, ed int) float64 {
	if hitRate < 0 || hitRate > 1 {
		panic(fmt.Sprintf("perfmodel: hit rate %v", hitRate))
	}
	hits := float64(words) * hitRate
	misses := float64(words) - hits
	vecBytes := float64(4 * ed)
	hitCycles := hits // one ed-wide BRAM word per hit
	missCycles := misses * (vecBytes/f.DDRBytesPerCycle + f.DRAMLatencyCycles)
	return hitCycles + missCycles
}
