package perfmodel

import (
	"math"
	"testing"
)

func cpuWorkload(ops, bytes float64, streamed bool) Workload {
	return Workload{Name: "w", ComputeOps: ops, DRAMBytes: bytes, Streamed: streamed}
}

func TestCPUTimeComponents(t *testing.T) {
	c := CPU{CoreGOPs: 1, ChannelGBs: 1, RandomAccessEff: 0.5}
	w := cpuWorkload(2e9, 1e9, false)
	tm := c.Time(w, 2, 1)
	if math.Abs(tm.Compute-1) > 1e-9 {
		t.Errorf("compute = %v, want 1 (2e9 ops / 2 threads / 1 Gop/s)", tm.Compute)
	}
	if math.Abs(tm.Memory-2) > 1e-9 {
		t.Errorf("memory = %v, want 2 (1 GB at 0.5 GB/s effective)", tm.Memory)
	}
	if math.Abs(tm.Total-3) > 1e-9 {
		t.Errorf("non-streamed total = %v, want compute+memory = 3", tm.Total)
	}
	sw := cpuWorkload(2e9, 1e9, true)
	stm := c.Time(sw, 2, 1)
	if math.Abs(stm.Total-math.Max(stm.Compute, stm.Memory)) > 1e-9 {
		t.Errorf("streamed total = %v, want max rule", stm.Total)
	}
	if stm.Memory >= tm.Memory {
		t.Errorf("streamed access should reach full bandwidth: %v >= %v", stm.Memory, tm.Memory)
	}
}

func TestCPUTimePanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("threads=0 accepted")
		}
	}()
	DefaultCPU().Time(cpuWorkload(1, 1, false), 0, 1)
}

func TestCPUSpeedupSaturatesEarlierWithFewerChannels(t *testing.T) {
	// Figure 3's claim: memory bandwidth bounds scalability.
	c := DefaultCPU()
	w := cpuWorkload(50e9, 10e9, false) // memory-heavy baseline-like mix
	s1 := c.Speedup(w, 20, 1)
	s2 := c.Speedup(w, 20, 2)
	s4 := c.Speedup(w, 20, 4)
	if !(s1 < s2 && s2 < s4) {
		t.Errorf("20-thread speedup not increasing with channels: %v %v %v", s1, s2, s4)
	}
	k1 := c.SaturationThreads(w, 1, 20, 0.1)
	k4 := c.SaturationThreads(w, 4, 20, 0.1)
	if k1 >= k4 {
		t.Errorf("saturation knee with 1ch (%d) should precede 4ch (%d)", k1, k4)
	}
}

func TestCPUStreamedNearIdealScaling(t *testing.T) {
	// Figure 10's claim: column+streaming reaches near-ideal speedup
	// while bandwidth is not the binding constraint.
	c := DefaultCPU()
	w := cpuWorkload(100e9, 2e9, true)
	for _, threads := range []int{2, 4, 8} {
		s := c.Speedup(w, threads, 4)
		if s < 0.9*float64(threads) {
			t.Errorf("streamed speedup at %d threads = %v, want near-ideal", threads, s)
		}
	}
}

func TestCPUSpeedupMonotonicInThreads(t *testing.T) {
	c := DefaultCPU()
	w := cpuWorkload(20e9, 5e9, false)
	prev := 0.0
	for threads := 1; threads <= 24; threads++ {
		s := c.Speedup(w, threads, 2)
		if s < prev-1e-9 {
			t.Fatalf("speedup decreased at %d threads: %v < %v", threads, s, prev)
		}
		prev = s
	}
}

func TestOpWeights(t *testing.T) {
	w := DefaultOpWeights()
	if got := w.Ops(10, 2, 3); got != 10+40+15 {
		t.Errorf("Ops = %v, want 65", got)
	}
	if got := (OpWeights{Mul: 1}).Ops(5, 100, 100); got != 5 {
		t.Errorf("zero-weight ops leaked: %v", got)
	}
}

func TestGPUMultiStreamOverlap(t *testing.T) {
	g := GPU{DeviceGOPs: 1, PCIeGBs: 1}
	// Copy time 1.0 s, kernel time 0.4 s for the whole workload.
	w := cpuWorkload(0.4e9, 1e9, true)
	one := g.MultiStream(w, 1)
	if math.Abs(one.Total-(1.0+0.4+one.D2H)) > 1e-6 {
		t.Errorf("single stream total = %v, want serial 1.4", one.Total)
	}
	four := g.MultiStream(w, 4)
	// With 4 streams the last kernel chunk (0.1) trails the serialized
	// copies (1.0): total ≈ 1.1.
	if math.Abs(four.Total-(1.0+0.1+four.D2H)) > 1e-6 {
		t.Errorf("4-stream total = %v, want ≈1.1", four.Total)
	}
	sp := g.StreamSpeedup(w, 4)
	if sp < 1.2 || sp > 1.4 {
		t.Errorf("stream speedup = %v, paper-shape is ≈1.33 when memcpy dominates", sp)
	}
	// More streams cannot beat the copy critical path.
	sp16 := g.StreamSpeedup(w, 16)
	if sp16 > 1.45 {
		t.Errorf("16-stream speedup = %v, memcpy critical path should cap it", sp16)
	}
}

func TestGPUMultiGPUContentionGap(t *testing.T) {
	g := DefaultGPU()
	// Copy-heavier mix (≈0.1 s kernel, ≈2 s copy per device-share):
	// the regime where shared-PCIe contention visibly caps scaling.
	w := cpuWorkload(800e9, 24e9, true)
	prevGap := 0.0
	for _, n := range []int{1, 2, 4} {
		worst := g.MultiGPU(w, n, false)
		ideal := g.MultiGPU(w, n, true)
		if worst.Total < ideal.Total-1e-12 {
			t.Fatalf("%d GPUs: contended total %v below ideal %v", n, worst.Total, ideal.Total)
		}
		gap := worst.H2D - ideal.H2D
		if gap < prevGap-1e-12 {
			t.Errorf("H2D contention gap should grow with GPU count: %v after %v", gap, prevGap)
		}
		prevGap = gap
	}
	// Scaling should still be substantial: the paper reports 4.34× on
	// four GPUs with contention.
	sp := g.GPUSpeedup(w, 4, false)
	if sp < 2 || sp > 4 {
		t.Errorf("4-GPU contended speedup = %v, want meaningful but sub-ideal", sp)
	}
	ideal := g.GPUSpeedup(w, 4, true)
	if ideal <= sp {
		t.Errorf("ideal speedup %v should exceed contended %v", ideal, sp)
	}
}

func TestGPUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MultiStream(0) accepted")
		}
	}()
	DefaultGPU().MultiStream(cpuWorkload(1, 1, true), 0)
}

func TestFPGALatencyRules(t *testing.T) {
	f := DefaultFPGA()
	w := FPGAWork{
		InnerMuls:   25000,
		WeightedMul: 25000,
		Exps:        1000,
		Divs:        25,
		DemandBytes: 200000,
		Bursts:      2000,
	}
	stall := f.Latency(w, false)
	stream := f.Latency(w, true)
	if stall.Total != stall.Compute+stall.Memory {
		t.Errorf("non-streamed total %v != compute+memory %v", stall.Total, stall.Compute+stall.Memory)
	}
	if stream.Total != math.Max(stream.Compute, stream.Memory) {
		t.Errorf("streamed total %v != max rule", stream.Total)
	}
	if stream.Total >= stall.Total {
		t.Errorf("streaming did not help: %v >= %v", stream.Total, stall.Total)
	}
	if stall.Seconds <= 0 {
		t.Error("seconds not populated")
	}
}

func TestFPGAEmbeddingLatencyDecreasesWithHitRate(t *testing.T) {
	f := DefaultFPGA()
	prev := math.Inf(1)
	for _, hr := range []float64{0, 0.25, 0.5, 0.75, 1} {
		l := f.EmbeddingLatency(10000, hr, 256)
		if l >= prev {
			t.Errorf("embedding latency not decreasing: %v at hit rate %v", l, hr)
		}
		prev = l
	}
	// At full hit rate the latency must be one BRAM cycle per word.
	if got := f.EmbeddingLatency(10000, 1, 256); math.Abs(got-10000) > 1e-6 {
		t.Errorf("all-hit latency = %v, want 10000", got)
	}
}

func TestFPGAEmbeddingLatencyPanicsOnBadHitRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("hit rate 2 accepted")
		}
	}()
	DefaultFPGA().EmbeddingLatency(10, 2, 16)
}

func TestEnergyModel(t *testing.T) {
	e := EnergyModel{CPUWatts: 100, FPGAWatts: 2}
	// FPGA 10× slower but 50× lower power → 5× more efficient.
	adv := e.FPGAAdvantage(1000, 1, 10)
	if math.Abs(adv-5) > 1e-9 {
		t.Errorf("FPGAAdvantage = %v, want 5", adv)
	}
	if eff := e.Efficiency(100, 2, 50); math.Abs(eff-1) > 1e-9 {
		t.Errorf("Efficiency = %v, want 1 task/J", eff)
	}
}

func TestEnergyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero seconds accepted")
		}
	}()
	DefaultEnergy().Efficiency(1, 0, 1)
}
