package cluster

import (
	"math/rand"
	"net"
	"sync"
	"testing"

	"mnnfast/internal/core"
	"mnnfast/internal/tensor"
)

// testCluster spins up shards nodes over one shared memory on loopback
// and returns a connected coordinator plus a cleanup func.
func testCluster(t *testing.T, mem *core.Memory, shards int) (*Coordinator, func()) {
	t.Helper()
	per := (mem.NS() + shards - 1) / shards
	var nodes []*Node
	var addrs []string
	for lo := 0; lo < mem.NS(); lo += per {
		hi := lo + per
		if hi > mem.NS() {
			hi = mem.NS()
		}
		n, err := NewNode(mem, lo, hi, core.Options{ChunkSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		addrs = append(addrs, addr)
	}
	coord, err := Dial(mem.Dim(), addrs...)
	if err != nil {
		t.Fatal(err)
	}
	return coord, func() {
		coord.Close()
		for _, n := range nodes {
			n.Close()
		}
	}
}

func TestNewNodeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mem, err := core.NewMemory(
		tensor.GaussianMatrix(rng, 10, 4, 1),
		tensor.GaussianMatrix(rng, 10, 4, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 5}, {5, 5}, {5, 11}} {
		if _, err := NewNode(mem, r[0], r[1], core.Options{}); err == nil {
			t.Errorf("range %v accepted", r)
		}
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(4); err == nil {
		t.Error("Dial with no addresses accepted")
	}
	if _, err := Dial(0, "127.0.0.1:1"); err == nil {
		t.Error("Dial with dim 0 accepted")
	}
	if _, err := Dial(4, "127.0.0.1:1"); err == nil {
		t.Error("Dial to a dead port succeeded")
	}
}

func TestClusterMatchesLocalBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ns, ed := 4000, 32
	mem, err := core.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.8),
		tensor.GaussianMatrix(rng, ns, ed, 0.8),
	)
	if err != nil {
		t.Fatal(err)
	}
	coord, cleanup := testCluster(t, mem, 3)
	defer cleanup()
	if coord.Nodes() != 3 {
		t.Fatalf("Nodes = %d", coord.Nodes())
	}

	for q := 0; q < 5; q++ {
		u := tensor.RandomVector(rng, ed, 1)
		want := tensor.NewVector(ed)
		core.NewBaseline(mem, core.Options{}).Infer(u, want)
		got := tensor.NewVector(ed)
		st, err := coord.TryInfer(u, got)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(want, got); d > 1e-4 {
			t.Errorf("question %d: cluster differs from local baseline by %v", q, d)
		}
		if st.TotalRows != int64(ns) {
			t.Errorf("question %d: cluster covered %d rows, want %d", q, st.TotalRows, ns)
		}
		if st.Divisions != int64(ed) {
			t.Errorf("question %d: divisions = %d, want ed=%d (lazy softmax at the coordinator)", q, st.Divisions, ed)
		}
	}
}

func TestClusterImplementsEngine(t *testing.T) {
	var _ core.Engine = (*Coordinator)(nil)
}

func TestClusterSyncPayloadIndependentOfNS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ed := 16
	for _, ns := range []int{100, 10000} {
		mem, err := core.NewMemory(
			tensor.GaussianMatrix(rng, ns, ed, 1),
			tensor.GaussianMatrix(rng, ns, ed, 1),
		)
		if err != nil {
			t.Fatal(err)
		}
		coord, cleanup := testCluster(t, mem, 2)
		want := int64(2 * (ed + 2) * 4)
		if got := coord.SyncBytesPerQuery(); got != want {
			t.Errorf("ns=%d: sync payload %d, want %d (must not depend on ns)", ns, got, want)
		}
		cleanup()
	}
}

func TestClusterDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mem, err := core.NewMemory(
		tensor.GaussianMatrix(rng, 64, 8, 1),
		tensor.GaussianMatrix(rng, 64, 8, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	coord, cleanup := testCluster(t, mem, 2)
	defer cleanup()
	if _, err := coord.TryInfer(tensor.NewVector(5), tensor.NewVector(8)); err == nil {
		t.Error("coordinator accepted a mis-sized question")
	}
	// A coordinator dialed with the wrong dim is rejected by the node.
	bad, err := Dial(5, coord.conns[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, err := bad.TryInfer(tensor.NewVector(5), tensor.NewVector(5)); err == nil {
		t.Error("node accepted a question of the wrong dimension")
	}
}

func TestClusterNodeFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mem, err := core.NewMemory(
		tensor.GaussianMatrix(rng, 128, 8, 1),
		tensor.GaussianMatrix(rng, 128, 8, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(mem, 0, 128, core.Options{ChunkSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := Dial(8, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	u := tensor.RandomVector(rng, 8, 1)
	o := tensor.NewVector(8)
	if _, err := coord.TryInfer(u, o); err != nil {
		t.Fatalf("healthy query failed: %v", err)
	}
	n.Close() // kill the node
	if _, err := coord.TryInfer(u, o); err == nil {
		t.Error("query against a dead node succeeded")
	}
}

func TestClusterConcurrentCoordinators(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ns, ed := 1024, 16
	mem, err := core.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.8),
		tensor.GaussianMatrix(rng, ns, ed, 0.8),
	)
	if err != nil {
		t.Fatal(err)
	}
	// One node, many coordinator clients hammering it concurrently.
	n, err := NewNode(mem, 0, ns, core.Options{ChunkSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	u := tensor.RandomVector(rng, ed, 1)
	want := tensor.NewVector(ed)
	core.NewBaseline(mem, core.Options{}).Infer(u, want)

	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			coord, err := Dial(ed, addr)
			if err != nil {
				errs <- err
				return
			}
			defer coord.Close()
			o := tensor.NewVector(ed)
			for q := 0; q < 10; q++ {
				if _, err := coord.TryInfer(u, o); err != nil {
					errs <- err
					return
				}
				if d := tensor.MaxAbsDiff(want, o); d > 1e-4 {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mem, err := core.NewMemory(
		tensor.GaussianMatrix(rng, 16, 4, 1),
		tensor.GaussianMatrix(rng, 16, 4, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(mem, 0, 16, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close() // must not panic or deadlock
}

func TestNodeSurvivesGarbageBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mem, err := core.NewMemory(
		tensor.GaussianMatrix(rng, 64, 8, 1),
		tensor.GaussianMatrix(rng, 64, 8, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(mem, 0, 64, core.Options{ChunkSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Throw raw garbage at the protocol port; the node must drop the
	// connection without crashing.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\nnot gob at all")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A well-formed client must still be served afterwards.
	coord, err := Dial(8, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	o := tensor.NewVector(8)
	if _, err := coord.TryInfer(tensor.RandomVector(rng, 8, 1), o); err != nil {
		t.Fatalf("node unusable after garbage input: %v", err)
	}
}

func TestClusterBatchMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ns, ed, nq := 2048, 16, 6
	mem, err := core.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.8),
		tensor.GaussianMatrix(rng, ns, ed, 0.8),
	)
	if err != nil {
		t.Fatal(err)
	}
	coord, cleanup := testCluster(t, mem, 3)
	defer cleanup()

	u := tensor.RandomMatrix(rng, nq, ed, 1)
	want := tensor.NewMatrix(nq, ed)
	base := core.NewBaseline(mem, core.Options{})
	for q := 0; q < nq; q++ {
		base.Infer(u.Row(q), want.Row(q))
	}
	got := tensor.NewMatrix(nq, ed)
	st, err := coord.TryInferBatch(u, got)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want, got, 1e-4) {
		t.Error("cluster batch differs from local baseline")
	}
	if st.Inferences != int64(nq) {
		t.Errorf("%d inferences, want %d", st.Inferences, nq)
	}
	if st.TotalRows != int64(ns*nq) {
		t.Errorf("covered %d rows, want %d", st.TotalRows, ns*nq)
	}

	// Batch shape validation.
	if _, err := coord.TryInferBatch(tensor.NewMatrix(0, ed), tensor.NewMatrix(0, ed)); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := coord.TryInferBatch(tensor.NewMatrix(2, ed+1), tensor.NewMatrix(2, ed+1)); err == nil {
		t.Error("wrong-dim batch accepted")
	}
}
