// Package cluster implements the paper's multi-node scale-out (§3.1,
// §5.3): the knowledge database is partitioned across nodes, a question
// fans out to every node, each node runs the column-based algorithm
// over its shard, and only the O(ed) partial results (running max,
// exponential sum, partial weighted sum) travel back for one lazy
// softmax division at the coordinator. The paper's observation — "the
// communication overhead for the synchronization would be negligible,
// as the size of per-node results is quite small" — is literal here:
// a reply is ed+2 floats regardless of how many million sentences the
// node holds.
//
// The wire protocol is gob over TCP: one QueryRequest per inference,
// one QueryReply per node. Node and Coordinator are both safe for
// concurrent use.
package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"mnnfast/internal/core"
	"mnnfast/internal/tensor"
)

// QueryRequest is the coordinator→node message: one or more embedded
// questions. A batch amortizes both the network round trip and the
// node's pass over its shard (each memory chunk is read once for the
// whole batch).
type QueryRequest struct {
	U []float32 // question vectors, nq×ed row-major
	N int       // nq; 0 means 1 (single-question wire compatibility)
}

// QueryReply is the node→coordinator message: one partial per question
// plus the work counters behind them.
type QueryReply struct {
	Max   []float32 // per question
	Sum   []float32
	O     []float32 // nq×ed row-major
	Stats core.Stats
	Err   string // non-empty on failure
}

// Node serves column-based inference over one shard of the database.
type Node struct {
	engine *core.Column
	dim    int
	lo, hi int // row range served

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewNode builds a node serving rows [lo, hi) of mem with the given
// engine options.
func NewNode(mem *core.Memory, lo, hi int, opt core.Options) (*Node, error) {
	if lo < 0 || hi > mem.NS() || lo >= hi {
		return nil, fmt.Errorf("cluster: node range [%d, %d) invalid for %d rows", lo, hi, mem.NS())
	}
	return &Node{
		engine: core.NewColumn(mem, opt),
		dim:    mem.Dim(),
		lo:     lo,
		hi:     hi,
	}, nil
}

// Serve accepts connections on l until Close. It returns immediately;
// handling happens on background goroutines.
func (n *Node) Serve(l net.Listener) {
	n.mu.Lock()
	n.listener = l
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			n.mu.Lock()
			if n.closed {
				n.mu.Unlock()
				conn.Close()
				return
			}
			if n.conns == nil {
				n.conns = make(map[net.Conn]struct{})
			}
			n.conns[conn] = struct{}{}
			n.mu.Unlock()
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.handle(conn)
				n.mu.Lock()
				delete(n.conns, conn)
				n.mu.Unlock()
			}()
		}
	}()
}

// Listen starts serving on addr ("host:port", ":0" for ephemeral) and
// returns the bound address.
func (n *Node) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("cluster: listen: %w", err)
	}
	n.Serve(l)
	return l.Addr().String(), nil
}

// Close stops accepting, severs open connections, and waits for the
// handler goroutines to drain.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	l := n.listener
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close() // unblocks handlers parked in Decode
	}
	n.wg.Wait()
}

// handle answers queries on one connection until it closes.
func (n *Node) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req QueryRequest
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken peer
		}
		reply := n.answer(req)
		if err := enc.Encode(&reply); err != nil {
			return
		}
	}
}

func (n *Node) answer(req QueryRequest) QueryReply {
	nq := req.N
	if nq == 0 {
		nq = 1
	}
	if nq < 1 || len(req.U) != nq*n.dim {
		return QueryReply{Err: fmt.Sprintf("question payload %d floats for %d questions of dim %d", len(req.U), nq, n.dim)}
	}
	if nq == 1 {
		part := core.NewPartial(n.dim)
		st := n.engine.InferPartial(tensor.Vector(req.U), part, n.lo, n.hi)
		return QueryReply{Max: []float32{part.Max}, Sum: []float32{part.Sum}, O: part.O, Stats: st}
	}
	u := &tensor.Matrix{Rows: nq, Cols: n.dim, Data: req.U}
	parts := make([]*core.Partial, nq)
	for q := range parts {
		parts[q] = core.NewPartial(n.dim)
	}
	st := n.engine.InferBatchPartial(u, parts, n.lo, n.hi)
	reply := QueryReply{
		Max:   make([]float32, nq),
		Sum:   make([]float32, nq),
		O:     make([]float32, 0, nq*n.dim),
		Stats: st,
	}
	for q, p := range parts {
		reply.Max[q] = p.Max
		reply.Sum[q] = p.Sum
		reply.O = append(reply.O, p.O...)
	}
	return reply
}

// Coordinator fans questions out to a set of nodes and merges their
// partials. It implements core.Engine, so it is a drop-in replacement
// for a local engine.
type Coordinator struct {
	dim   int
	mu    sync.Mutex // serializes use of the per-node connections
	conns []*nodeConn
}

type nodeConn struct {
	addr string
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to every node address. The caller must Close the
// coordinator when done.
func Dial(dim int, addrs ...string) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no node addresses")
	}
	if dim < 1 {
		return nil, fmt.Errorf("cluster: dim %d", dim)
	}
	c := &Coordinator{dim: dim}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		c.conns = append(c.conns, &nodeConn{
			addr: addr,
			conn: conn,
			enc:  gob.NewEncoder(conn),
			dec:  gob.NewDecoder(conn),
		})
	}
	return c, nil
}

// Nodes returns the number of connected nodes.
func (c *Coordinator) Nodes() int { return len(c.conns) }

// Name implements core.Engine.
func (c *Coordinator) Name() string {
	return fmt.Sprintf("cluster(%d nodes)", len(c.conns))
}

// Infer implements core.Engine: scatter u, gather and merge partials,
// finalize with the lazy softmax division.
func (c *Coordinator) Infer(u, o tensor.Vector) core.Stats {
	st, err := c.TryInfer(u, o)
	if err != nil {
		panic(err) // Engine has no error channel; TryInfer is the checked path
	}
	return st
}

// TryInfer is Infer with error reporting (node failures, dim
// mismatches).
func (c *Coordinator) TryInfer(u, o tensor.Vector) (core.Stats, error) {
	if len(u) != c.dim || len(o) != c.dim {
		return core.Stats{}, fmt.Errorf("cluster: vector dims u=%d o=%d, want %d", len(u), len(o), c.dim)
	}
	um := &tensor.Matrix{Rows: 1, Cols: c.dim, Data: u}
	om := &tensor.Matrix{Rows: 1, Cols: c.dim, Data: o}
	st, err := c.TryInferBatch(um, om)
	st.Inferences = 1
	return st, err
}

// TryInferBatch answers every question in u (nq×ed) into the rows of o,
// fanning the whole batch to each node in one round trip: the network
// cost and each node's pass over its shard amortize across the batch.
func (c *Coordinator) TryInferBatch(u, o *tensor.Matrix) (core.Stats, error) {
	if u.Cols != c.dim || o.Cols != c.dim || u.Rows != o.Rows || u.Rows == 0 {
		return core.Stats{}, fmt.Errorf("cluster: batch shapes u=%dx%d o=%dx%d, want dim %d",
			u.Rows, u.Cols, o.Rows, o.Cols, c.dim)
	}
	nq := u.Rows
	c.mu.Lock()
	defer c.mu.Unlock()

	req := QueryRequest{U: u.Data, N: nq}
	type result struct {
		reply QueryReply
		err   error
	}
	results := make(chan result, len(c.conns))
	for _, nc := range c.conns {
		go func(nc *nodeConn) {
			var r result
			if err := nc.enc.Encode(&req); err != nil {
				r.err = fmt.Errorf("cluster: send to %s: %w", nc.addr, err)
			} else if err := nc.dec.Decode(&r.reply); err != nil {
				r.err = fmt.Errorf("cluster: recv from %s: %w", nc.addr, err)
			} else if r.reply.Err != "" {
				r.err = fmt.Errorf("cluster: node %s: %s", nc.addr, r.reply.Err)
			} else if len(r.reply.Max) != nq || len(r.reply.Sum) != nq || len(r.reply.O) != nq*c.dim {
				r.err = fmt.Errorf("cluster: node %s: malformed reply shapes", nc.addr)
			}
			results <- r
		}(nc)
	}

	totals := make([]*core.Partial, nq)
	for q := range totals {
		totals[q] = core.NewPartial(c.dim)
	}
	var st core.Stats
	var firstErr error
	for range c.conns {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		for q := 0; q < nq; q++ {
			part := &core.Partial{
				Max: r.reply.Max[q],
				Sum: r.reply.Sum[q],
				O:   tensor.Vector(r.reply.O[q*c.dim : (q+1)*c.dim]),
			}
			totals[q].Merge(part)
		}
		st.Add(r.reply.Stats)
	}
	if firstErr != nil {
		return core.Stats{}, firstErr
	}
	for q := 0; q < nq; q++ {
		st.Divisions += totals[q].Finalize(o.Row(q))
	}
	st.Inferences = int64(nq)
	return st, nil
}

// SyncBytesPerQuery returns the gather payload per question: one
// Partial per node.
func (c *Coordinator) SyncBytesPerQuery() int64 {
	return int64(len(c.conns)) * int64(c.dim+2) * 4
}

// Close tears down all node connections.
func (c *Coordinator) Close() {
	for _, nc := range c.conns {
		if nc != nil && nc.conn != nil {
			nc.conn.Close()
		}
	}
	c.conns = nil
}
