package core

import (
	"math"
	"math/rand"
	"testing"

	"mnnfast/internal/sparse"
	"mnnfast/internal/tensor"
)

// identity returns the full candidate list 0..n-1.
func identity(n int) []int32 {
	cand := make([]int32, n)
	for i := range cand {
		cand[i] = int32(i)
	}
	return cand
}

// TestInferCandidatesFullSetMatchesInferPartial pins the degeneration
// contract: the identity candidate list with the same chunk size is
// the dense sweep, bit-for-bit, at every worker count and skip mode.
func TestInferCandidatesFullSetMatchesInferPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, tc := range []struct {
		name string
		ns   int
		opt  Options
	}{
		{"serial", 500, Options{ChunkSize: 128}},
		{"serial-offcut", 333, Options{ChunkSize: 100}},
		{"parallel", 1000, Options{ChunkSize: 128, Pool: tensor.NewPool(4)}},
		{"skip", 700, Options{ChunkSize: 128, SkipThreshold: 0.01}},
		{"parallel-skip", 700, Options{ChunkSize: 100, SkipThreshold: 0.01, Pool: tensor.NewPool(3)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mem := randomMemory(t, rng, tc.ns, 32)
			c := NewColumn(mem, tc.opt)
			u := tensor.RandomVector(rng, 32, 1)

			dense := GetPartial(32)
			stDense := c.InferPartial(u, dense, 0, tc.ns)
			oDense := tensor.NewVector(32)
			dense.Finalize(oDense)

			cand := identity(tc.ns)
			sub := GetPartial(32)
			stCand := c.InferCandidates(u, cand, sub)
			oCand := tensor.NewVector(32)
			sub.Finalize(oCand)

			if stDense != stCand {
				t.Errorf("stats differ: dense %+v cand %+v", stDense, stCand)
			}
			for i := range oDense {
				if math.Float32bits(oDense[i]) != math.Float32bits(oCand[i]) {
					t.Fatalf("output bits differ at %d: %x vs %x", i,
						math.Float32bits(oDense[i]), math.Float32bits(oCand[i]))
				}
			}
			PutPartial(dense)
			PutPartial(sub)
			if tc.opt.Pool != nil {
				tc.opt.Pool.Close()
			}
		})
	}
}

// TestInferCandidatesSubsetMatchesReference checks the gathered math
// against a naive stabilized softmax over the same subset.
func TestInferCandidatesSubsetMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	mem := randomMemory(t, rng, 400, 16)
	c := NewColumn(mem, Options{ChunkSize: 64})
	u := tensor.RandomVector(rng, 16, 1)

	cand := []int32{0, 3, 17, 42, 43, 44, 99, 100, 255, 399}
	part := GetPartial(16)
	st := c.InferCandidates(u, cand, part)
	got := tensor.NewVector(16)
	part.Finalize(got)
	PutPartial(part)

	if st.TotalRows != int64(len(cand)) {
		t.Errorf("TotalRows = %d, want %d", st.TotalRows, len(cand))
	}

	logits := make([]float64, len(cand))
	maxL := math.Inf(-1)
	for i, r := range cand {
		logits[i] = float64(tensor.Dot(u, mem.In.Row(int(r))))
		maxL = math.Max(maxL, logits[i])
	}
	var sum float64
	want := make([]float64, 16)
	for i, l := range logits {
		e := math.Exp(l - maxL)
		sum += e
		for j, x := range mem.Out.Row(int(cand[i])) {
			want[j] += e * float64(x)
		}
	}
	for j := range want {
		if d := math.Abs(want[j]/sum - float64(got[j])); d > 1e-4 {
			t.Fatalf("output %d differs from reference by %v", j, d)
		}
	}
}

// TestInferCandidatesDeterministicAcrossWorkers pins the bit-identity
// contract of the candidate sweep across worker counts.
func TestInferCandidatesDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	mem := randomMemory(t, rng, 2000, 24)
	u := tensor.RandomVector(rng, 24, 1)
	cand := make([]int32, 0, 700)
	for i := 0; i < 2000; i += 3 {
		cand = append(cand, int32(i))
	}

	var base tensor.Vector
	for _, workers := range []int{1, 2, 4, 8} {
		pool := tensor.NewPool(workers)
		c := NewColumn(mem, Options{ChunkSize: 100, Pool: pool})
		part := GetPartial(24)
		c.InferCandidates(u, cand, part)
		o := tensor.NewVector(24)
		part.Finalize(o)
		PutPartial(part)
		pool.Close()
		if base == nil {
			base = o
			continue
		}
		for i := range o {
			if math.Float32bits(o[i]) != math.Float32bits(base[i]) {
				t.Fatalf("workers=%d: output bits differ at %d", workers, i)
			}
		}
	}
}

func TestInferCandidatesEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	mem := randomMemory(t, rng, 50, 8)
	c := NewColumn(mem, Options{})
	part := GetPartial(8)
	defer PutPartial(part)
	if st := c.InferCandidates(tensor.NewVector(8), nil, part); st != (Stats{}) {
		t.Errorf("empty candidate list produced stats %+v", st)
	}
	if part.Sum != 0 {
		t.Errorf("empty candidate list touched the partial")
	}
}

// TestTopKEngineFullProbeMatchesColumn: with every list probed the
// top-k engine is the column engine, bit-for-bit.
func TestTopKEngineFullProbeMatchesColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	mem := randomMemory(t, rng, 800, 16)
	opt := Options{ChunkSize: 128}
	col := NewColumn(mem, opt)
	eng := NewTopK(mem, opt, sparse.IndexOptions{}, 0)
	if eng.Name() != "mnnfast-topk" {
		t.Errorf("Name() = %q", eng.Name())
	}
	eng.nprobe = eng.Index().NList() // full probe

	for q := 0; q < 5; q++ {
		u := tensor.RandomVector(rng, 16, 1)
		a := tensor.NewVector(16)
		b := tensor.NewVector(16)
		stCol := col.Infer(u, a)
		stTop := eng.Infer(u, b)
		if stCol.TotalRows != stTop.TotalRows {
			t.Errorf("row counts differ: %d vs %d", stCol.TotalRows, stTop.TotalRows)
		}
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("query %d: outputs differ at %d", q, i)
			}
		}
	}
}

// TestTopKEngineProbesFewerRows: the point of the index — a narrow
// probe touches a fraction of the memory.
func TestTopKEngineProbesFewerRows(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	mem := randomMemory(t, rng, 4096, 16)
	eng := NewTopK(mem, Options{ChunkSize: 256}, sparse.IndexOptions{}, 2)
	u := tensor.RandomVector(rng, 16, 1)
	o := tensor.NewVector(16)
	st := eng.Infer(u, o)
	if st.TotalRows == 0 || st.TotalRows >= 4096/2 {
		t.Fatalf("nprobe=2 of %d lists considered %d of 4096 rows",
			eng.Index().NList(), st.TotalRows)
	}
	if st.Inferences != 1 {
		t.Errorf("Inferences = %d", st.Inferences)
	}
}

func TestInferCandidatesSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	mem := randomMemory(t, rng, 1500, 16)
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"serial", Options{ChunkSize: 256}},
		{"parallel", Options{ChunkSize: 256, Pool: tensor.NewPool(4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := NewColumn(mem, tc.opt)
			u := tensor.RandomVector(rng, 16, 1)
			cand := identity(1500)
			o := tensor.NewVector(16)
			run := func() {
				part := GetPartial(16)
				c.InferCandidates(u, cand, part)
				part.Finalize(o)
				PutPartial(part)
			}
			run() // warm the scratch pools
			if raceEnabled {
				t.Skip("allocation counts are not meaningful under -race")
			}
			if a := testing.AllocsPerRun(20, run); a != 0 {
				t.Errorf("InferCandidates allocates %v per op at steady state", a)
			}
			if tc.opt.Pool != nil {
				tc.opt.Pool.Close()
			}
		})
	}
}

func TestTopKEngineSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	mem := randomMemory(t, rng, 2000, 16)
	eng := NewTopK(mem, Options{ChunkSize: 256}, sparse.IndexOptions{}, 4)
	u := tensor.RandomVector(rng, 16, 1)
	o := tensor.NewVector(16)
	eng.Infer(u, o) // warm the scratch pools
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if a := testing.AllocsPerRun(20, func() { eng.Infer(u, o) }); a != 0 {
		t.Errorf("TopK.Infer allocates %v per op at steady state", a)
	}
}
