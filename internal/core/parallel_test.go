package core

import (
	"math"
	"math/rand"
	"testing"

	"mnnfast/internal/tensor"
)

// Deterministic-merge equivalence: the work-stealing scheduler may run
// chunks in any order on any worker, but chunk partials are independent
// and merge in ascending chunk index, so the engine's output bits must
// not depend on the worker count — with or without zero-skipping. These
// tests compare float bit patterns, not tolerances.

// bitsEqual reports whether two vectors are bitwise identical and
// returns the first differing index.
func bitsEqual(a, b tensor.Vector) (bool, int) {
	if len(a) != len(b) {
		return false, -1
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false, i
		}
	}
	return true, 0
}

// TestParallelBitIdenticalToSequential runs ~1k random queries through
// the column engine at P ∈ {1, 2, 4, 8}, with and without
// zero-skipping, and demands bit-identical outputs to the sequential
// (nil-pool) engine.
func TestParallelBitIdenticalToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	const ns, ed, chunk, nQueries = 777, 24, 64, 250
	mem := randomMemory(t, rng, ns, ed)

	queries := make([]tensor.Vector, nQueries)
	for i := range queries {
		queries[i] = tensor.RandomVector(rng, ed, 1)
	}

	for _, th := range []float32{0, 0.01} {
		seq := NewColumn(mem, Options{ChunkSize: chunk, SkipThreshold: th})
		want := make([]tensor.Vector, nQueries)
		wantStats := make([]Stats, nQueries)
		for i, u := range queries {
			want[i] = tensor.NewVector(ed)
			wantStats[i] = seq.Infer(u, want[i])
		}

		for _, p := range []int{1, 2, 4, 8} {
			pool := tensor.NewPool(p)
			par := NewColumn(mem, Options{ChunkSize: chunk, SkipThreshold: th, Pool: pool})
			o := tensor.NewVector(ed)
			for i, u := range queries {
				st := par.Infer(u, o)
				if ok, j := bitsEqual(o, want[i]); !ok {
					t.Fatalf("th=%v P=%d query %d: output differs from sequential at element %d: %v vs %v",
						th, p, i, j, o[j], want[i][j])
				}
				if st != wantStats[i] {
					t.Errorf("th=%v P=%d query %d: stats differ from sequential:\n got %+v\nwant %+v",
						th, p, i, st, wantStats[i])
				}
			}
			pool.Close()
		}
	}
}

// TestParallelBatchBitIdentical is the batched twin: one batch of
// questions, same bits at every worker count.
func TestParallelBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const ns, ed, chunk, nq = 1024, 32, 128, 7
	mem := randomMemory(t, rng, ns, ed)
	u := tensor.GaussianMatrix(rng, nq, ed, 1)

	for _, th := range []float32{0, 0.01} {
		seq := NewColumn(mem, Options{ChunkSize: chunk, SkipThreshold: th})
		want := tensor.NewMatrix(nq, ed)
		wantStats := seq.InferBatch(u, want)

		for _, p := range []int{1, 2, 4, 8} {
			pool := tensor.NewPool(p)
			par := NewColumn(mem, Options{ChunkSize: chunk, SkipThreshold: th, Pool: pool})
			o := tensor.NewMatrix(nq, ed)
			for round := 0; round < 20; round++ {
				st := par.InferBatch(u, o)
				for q := 0; q < nq; q++ {
					if ok, j := bitsEqual(o.Row(q), want.Row(q)); !ok {
						t.Fatalf("th=%v P=%d round %d question %d: differs at element %d",
							th, p, round, q, j)
					}
				}
				if st != wantStats {
					t.Errorf("th=%v P=%d round %d: stats differ:\n got %+v\nwant %+v", th, p, round, st, wantStats)
				}
			}
			pool.Close()
		}
	}
}

// TestShardedBitIdenticalSequentialVsParallel: shard partials merge in
// ascending shard order, so concurrent and sequential shard execution
// produce the same bits — the property that lets deterministic traces
// stand in for production runs.
func TestShardedBitIdenticalSequentialVsParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	const ns, ed, shards = 999, 24, 5
	mem := randomMemory(t, rng, ns, ed)
	u := tensor.RandomVector(rng, ed, 1)

	for _, th := range []float32{0, 0.02} {
		opt := Options{ChunkSize: 100, SkipThreshold: th}
		seq, err := NewSharded(mem, shards, opt, false)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewSharded(mem, shards, opt, true)
		if err != nil {
			t.Fatal(err)
		}
		want := tensor.NewVector(ed)
		seq.Infer(u, want)
		got := tensor.NewVector(ed)
		for round := 0; round < 10; round++ {
			par.Infer(u, got)
			if ok, j := bitsEqual(got, want); !ok {
				t.Fatalf("th=%v round %d: parallel sharded differs at element %d", th, round, j)
			}
		}
		par.Close()
		seq.Close()
	}
}

// TestSkewedAttentionSteals reproduces the imbalance the scheduler
// exists for (§3.2): zero-skipping makes chunk costs uneven. Under the
// chunk-local cut a chunk with one dominant sentence skips nearly all
// of its weighted sum (cheap), while a chunk of flat attention keeps
// every row (expensive). Seeding the expensive chunks into one
// contiguous tail band loads one worker's deque; the others run dry
// and must steal. The steal counters must show it — and the outputs
// must still match the sequential engine bit for bit.
func TestSkewedAttentionSteals(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const ns, ed, chunk = 4096, 48, 32
	const th = 0.02 // above 1/chunk, so flat chunks skip nothing
	dir := tensor.RandomVector(rng, ed, 1)
	in := tensor.GaussianMatrix(rng, ns, ed, 0.02)
	// First seven eighths: one sharply aligned sentence per chunk
	// dominates its chunk's softmax — every other row skips. Last
	// eighth: flat attention — every row is kept.
	hot := ns - ns/8
	for i := 0; i < hot; i += chunk {
		row := in.Row(i)
		for j := range row {
			row[j] += dir[j] * 4
		}
	}
	mem, err := NewMemory(in, tensor.GaussianMatrix(rng, ns, ed, 0.5))
	if err != nil {
		t.Fatal(err)
	}

	seq := NewColumn(mem, Options{ChunkSize: chunk, SkipThreshold: th})
	want := tensor.NewVector(ed)
	seqStats := seq.Infer(dir, want)
	if seqStats.SkipFraction() < 0.5 {
		t.Fatalf("attention not skewed enough to skip: %v", seqStats.SkipFraction())
	}

	pool := tensor.NewPool(4)
	defer pool.Close()
	par := NewColumn(mem, Options{ChunkSize: chunk, SkipThreshold: th, Pool: pool})
	got := tensor.NewVector(ed)
	for round := 0; round < 16; round++ {
		par.Infer(dir, got)
		if ok, j := bitsEqual(got, want); !ok {
			t.Fatalf("round %d: skewed parallel output differs at element %d", round, j)
		}
	}
	st := par.Scheduler().Snapshot()
	if st.TotalSteals() == 0 {
		t.Error("no steals across 16 queries with skewed attention — work stealing not engaging")
	}
	if st.TotalChunks() == 0 || st.Runs == 0 {
		t.Errorf("scheduler counters empty: %+v", st)
	}
}

// TestStreamingParallelMatchesSerial: streaming changes prefetch
// behavior, never results. Serial streaming uses the pipelined
// prefetcher, parallel streaming prefetches synchronously per chunk —
// both must produce the bits of the non-streaming sequential engine.
func TestStreamingParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	const ns, ed, chunk = 640, 16, 96
	mem := randomMemory(t, rng, ns, ed)
	u := tensor.RandomVector(rng, ed, 1)

	plain := NewColumn(mem, Options{ChunkSize: chunk})
	want := tensor.NewVector(ed)
	plain.Infer(u, want)

	for _, p := range []int{1, 4} {
		pool := tensor.NewPool(p)
		eng := NewColumn(mem, Options{ChunkSize: chunk, Streaming: true, Pool: pool})
		got := tensor.NewVector(ed)
		eng.Infer(u, got)
		if ok, j := bitsEqual(got, want); !ok {
			t.Fatalf("P=%d: streaming output differs at element %d", p, j)
		}
		pool.Close()
	}
}
