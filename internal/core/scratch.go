package core

import (
	"sync"

	"mnnfast/internal/tensor"
)

// Steady-state scratch for the serving hot path.
//
// A production MnnFast node answers queries indefinitely against a
// fixed memory; the per-query state (the mergeable chunk Partials, each
// worker's chunk logits) has the same shape query after query.
// Everything here is therefore drawn from process-wide sync.Pools with
// grow-only buffers: after the first query at a given shape,
// Column.Infer and Column.InferBatch perform zero allocations (asserted
// by TestInferAllocs / TestInferBatchAllocs) and spawn no goroutines
// beyond the pool's persistent workers.
//
// The dispatch closures are built once per pooled object, not per call:
// a fresh closure per query would escape to the heap on every query.

var partialPool = sync.Pool{New: func() any { return new(Partial) }}

// GetPartial returns an empty partial of dimension ed drawn from a
// process-wide pool — the allocation-free twin of NewPartial for the
// shard/cluster merge path. Release it with PutPartial.
//
//mnnfast:pool-get
func GetPartial(ed int) *Partial {
	p := partialPool.Get().(*Partial)
	p.reset(ed)
	return p
}

// PutPartial returns a partial to the pool. The partial must not be
// used afterwards.
//
//mnnfast:pool-put
func PutPartial(p *Partial) { partialPool.Put(p) }

// reset re-initializes p as an empty partial of dimension ed, reusing
// the O buffer when it is large enough.
func (p *Partial) reset(ed int) {
	p.Max, p.Sum = negInf, 0
	if cap(p.O) < ed {
		p.O = tensor.NewVector(ed)
		return
	}
	p.O = p.O[:ed]
	p.O.Zero()
}

// resetParts grows parts to n partials of dimension ed (grow-only,
// keeping already-sized O buffers) and resets every slot to empty.
func resetParts(parts []Partial, n, ed int) []Partial {
	if cap(parts) < n {
		grown := make([]Partial, n)
		copy(grown, parts[:cap(parts)])
		parts = grown
	}
	parts = parts[:n]
	for i := range parts {
		parts[i].reset(ed)
	}
	return parts
}

// inferScratch is the reusable state of one Column.InferPartial call:
// one Partial per chunk item (indexed by chunk, so the merge order is
// fixed regardless of which worker computed what), per-worker logits
// scratch and stats, and the scheduler dispatch closure.
type inferScratch struct {
	col        *Column
	u          tensor.Vector
	base       int             // absolute row offset of item 0
	chunk      int             // rows per item
	chunkParts []Partial       // one per chunk item
	logits     []tensor.Vector // one per worker slot
	stats      []Stats         // one per worker slot
	fn         func(worker, lo, hi int)
}

var inferScratchPool = sync.Pool{New: func() any {
	s := new(inferScratch)
	s.fn = func(worker, lo, hi int) {
		idx := (lo - s.base) / s.chunk
		if s.col.opt.Streaming {
			// Parallel streaming warms the chunk synchronously: the
			// prefetch of one worker overlaps the compute of the others.
			// (Serial streaming pipelines instead — see streamBand.)
			s.col.prefetchChunk(lo, hi)
		}
		s.col.processChunk(s.u, lo, hi, worker, &s.chunkParts[idx], s.logits[worker], &s.stats[worker])
	}
	return s
}}

// getInferScratch prepares scratch for one InferPartial call of nItems
// chunk items over w worker slots against c's memory shape.
//
//mnnfast:pool-get
func getInferScratch(c *Column, u tensor.Vector, base, nItems, w int) *inferScratch {
	s := inferScratchPool.Get().(*inferScratch)
	ed, chunk := c.mem.Dim(), c.opt.chunkSize()
	s.col, s.u, s.base, s.chunk = c, u, base, chunk
	s.chunkParts = resetParts(s.chunkParts, nItems, ed)
	if cap(s.logits) < w {
		logits := make([]tensor.Vector, w)
		copy(logits, s.logits[:cap(s.logits)])
		s.logits = logits
		s.stats = make([]Stats, w)
	}
	s.logits = s.logits[:w]
	s.stats = s.stats[:w]
	for i, l := range s.logits {
		if cap(l) < chunk {
			s.logits[i] = tensor.NewVector(chunk)
			continue
		}
		s.logits[i] = l[:chunk]
	}
	for i := range s.stats {
		s.stats[i] = Stats{}
	}
	return s
}

// putInferScratch releases s, dropping references to caller data so the
// pool does not pin question vectors between queries.
//
//mnnfast:pool-put
func putInferScratch(s *inferScratch) {
	s.col, s.u = nil, nil
	inferScratchPool.Put(s)
}

// batchRun is the reusable state of one batched chunk loop
// (Column.inferBatchPartial): per-chunk×question Partials (item-major,
// so the per-question merge order is fixed), per-worker chunk×nq logits
// blocks, chunk-maxima scratch, stats, and the dispatch closure.
type batchRun struct {
	col        *Column
	u          *tensor.Matrix
	base       int // absolute row offset of item 0
	chunk      int // rows per item
	nq         int
	chunkParts []Partial       // nItems × nq, item-major
	logits     []tensor.Matrix // one chunk×nq block per worker slot
	cmax       []tensor.Vector // one nq-vector per worker slot
	stats      []Stats         // one per worker slot
	fn         func(worker, lo, hi int)
}

var batchRunPool = sync.Pool{New: func() any {
	r := new(batchRun)
	r.fn = func(worker, lo, hi int) {
		idx := (lo - r.base) / r.chunk
		if r.col.opt.Streaming {
			r.col.prefetchChunk(lo, hi)
		}
		r.col.processBatchChunk(r.u, lo, hi,
			r.chunkParts[idx*r.nq:(idx+1)*r.nq],
			&r.logits[worker], r.cmax[worker], &r.stats[worker])
	}
	return r
}}

// getBatchRun prepares scratch for one batched chunk loop of nItems
// items of up to rows rows over w worker slots.
//
//mnnfast:pool-get
func getBatchRun(c *Column, u *tensor.Matrix, base, nItems, rows, w int) *batchRun {
	r := batchRunPool.Get().(*batchRun)
	ed, nq := c.mem.Dim(), u.Rows
	r.col, r.u, r.base, r.chunk, r.nq = c, u, base, c.opt.chunkSize(), nq
	r.chunkParts = resetParts(r.chunkParts, nItems*nq, ed)
	if cap(r.logits) < w {
		logits := make([]tensor.Matrix, w)
		copy(logits, r.logits[:cap(r.logits)])
		r.logits = logits
		cmax := make([]tensor.Vector, w)
		copy(cmax, r.cmax[:cap(r.cmax)])
		r.cmax = cmax
		r.stats = make([]Stats, w)
	}
	r.logits = r.logits[:w]
	r.cmax = r.cmax[:w]
	r.stats = r.stats[:w]
	n := rows * nq
	for i := range r.logits {
		m := &r.logits[i]
		if cap(m.Data) < n {
			m.Data = make([]float32, n)
		}
		m.Data = m.Data[:n]
		m.Rows, m.Cols = rows, nq
		if cap(r.cmax[i]) < nq {
			r.cmax[i] = tensor.NewVector(nq)
		}
		r.cmax[i] = r.cmax[i][:nq]
	}
	for i := range r.stats {
		r.stats[i] = Stats{}
	}
	return r
}

// putBatchRun releases r, dropping the question matrix reference so the
// pool does not pin caller data between batches.
//
//mnnfast:pool-put
func putBatchRun(r *batchRun) {
	r.col, r.u = nil, nil
	batchRunPool.Put(r)
}

// BatchScratch holds the reusable per-question Partials of a batched
// inference. Callers that answer batches in a loop can own one
// BatchScratch and pass it to InferBatchInto to make the steady state
// allocation-free; Column.InferBatch draws one from a process-wide
// pool, which amortizes to the same thing. (The chunk-loop scratch —
// logits blocks and chunk partials — is pooled separately in batchRun.)
type BatchScratch struct {
	parts []*Partial
}

var batchScratchPool = sync.Pool{New: func() any { return new(BatchScratch) }}

// ensure shapes the scratch for nq questions of dimension ed, reusing
// existing buffers wherever they fit.
func (s *BatchScratch) ensure(nq, ed int) {
	if cap(s.parts) < nq {
		parts := make([]*Partial, nq)
		copy(parts, s.parts[:cap(s.parts)])
		s.parts = parts
	}
	s.parts = s.parts[:nq]
	for q, p := range s.parts {
		if p == nil {
			s.parts[q] = NewPartial(ed)
			continue
		}
		p.reset(ed)
	}
}
