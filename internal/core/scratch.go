package core

import (
	"sync"

	"mnnfast/internal/tensor"
)

// Steady-state scratch for the serving hot path.
//
// A production MnnFast node answers queries indefinitely against a
// fixed memory; the per-query state (the mergeable Partial, each
// worker's chunk logits and partial accumulators) has the same shape
// query after query. Everything here is therefore drawn from
// process-wide sync.Pools with grow-only buffers: after the first
// query at a given shape, Column.Infer and Column.InferBatch perform
// zero allocations (asserted by TestInferAllocs / TestInferBatchAllocs)
// and spawn no goroutines beyond the pool's persistent workers.

var partialPool = sync.Pool{New: func() any { return new(Partial) }}

// GetPartial returns an empty partial of dimension ed drawn from a
// process-wide pool — the allocation-free twin of NewPartial for the
// shard/cluster merge path. Release it with PutPartial.
//
//mnnfast:pool-get
func GetPartial(ed int) *Partial {
	p := partialPool.Get().(*Partial)
	p.reset(ed)
	return p
}

// PutPartial returns a partial to the pool. The partial must not be
// used afterwards.
//
//mnnfast:pool-put
func PutPartial(p *Partial) { partialPool.Put(p) }

// reset re-initializes p as an empty partial of dimension ed, reusing
// the O buffer when it is large enough.
func (p *Partial) reset(ed int) {
	p.Max, p.Sum = negInf, 0
	if cap(p.O) < ed {
		p.O = tensor.NewVector(ed)
		return
	}
	p.O = p.O[:ed]
	p.O.Zero()
}

// inferScratch is the reusable state of one Column.InferPartial call:
// per-worker partials and chunk scratch, per-worker stats, and a
// dispatch closure built once per scratch object so the steady-state
// dispatch allocates nothing (a fresh closure per call would escape to
// the heap on every query).
type inferScratch struct {
	col   *Column
	u     tensor.Vector
	base  int // absolute row offset of the dispatched [0, n) range
	wps   []*workerPartial
	stats []Stats
	fn    func(worker, lo, hi int)
}

var inferScratchPool = sync.Pool{New: func() any {
	s := new(inferScratch)
	s.fn = func(worker, lo, hi int) {
		s.col.processBand(s.u, s.base+lo, s.base+hi, worker, s.wps[worker], &s.stats[worker])
	}
	return s
}}

// getInferScratch prepares scratch for one InferPartial call over w
// workers against c's memory shape.
//
//mnnfast:pool-get
func getInferScratch(c *Column, u tensor.Vector, base, w int) *inferScratch {
	s := inferScratchPool.Get().(*inferScratch)
	s.col, s.u, s.base = c, u, base
	ed, chunk := c.mem.Dim(), c.opt.chunkSize()
	if cap(s.wps) < w {
		wps := make([]*workerPartial, w)
		copy(wps, s.wps[:cap(s.wps)])
		s.wps = wps
		s.stats = make([]Stats, w)
	}
	s.wps = s.wps[:w]
	s.stats = s.stats[:w]
	for i, wp := range s.wps {
		if wp == nil {
			s.wps[i] = newWorkerPartial(ed, chunk)
			continue
		}
		wp.reset(ed)
		if cap(wp.logits) < chunk {
			wp.logits = tensor.NewVector(chunk)
		}
		wp.logits = wp.logits[:chunk]
	}
	for i := range s.stats {
		s.stats[i] = Stats{}
	}
	return s
}

// putInferScratch releases s, dropping references to caller data so the
// pool does not pin question vectors between queries.
//
//mnnfast:pool-put
func putInferScratch(s *inferScratch) {
	s.col, s.u = nil, nil
	inferScratchPool.Put(s)
}

// BatchScratch holds the reusable state of a batched inference: one
// Partial per question plus the chunk×nq logits block. Callers that
// answer batches in a loop can own one BatchScratch and pass it to
// InferBatchInto to make the steady state allocation-free;
// Column.InferBatch draws one from a process-wide pool, which
// amortizes to the same thing.
type BatchScratch struct {
	parts  []*Partial
	logits tensor.Matrix
}

var batchScratchPool = sync.Pool{New: func() any { return new(BatchScratch) }}

// ensure shapes the scratch for nq questions of dimension ed with
// chunk-row logits, reusing existing buffers wherever they fit.
func (s *BatchScratch) ensure(nq, ed, rows int) {
	if cap(s.parts) < nq {
		parts := make([]*Partial, nq)
		copy(parts, s.parts[:cap(s.parts)])
		s.parts = parts
	}
	s.parts = s.parts[:nq]
	for q, p := range s.parts {
		if p == nil {
			s.parts[q] = NewPartial(ed)
			continue
		}
		p.reset(ed)
	}
	n := rows * nq
	if cap(s.logits.Data) < n {
		s.logits.Data = make([]float32, n)
	}
	s.logits.Data = s.logits.Data[:n]
	s.logits.Rows, s.logits.Cols = rows, nq
}
