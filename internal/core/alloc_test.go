package core

import (
	"math/rand"
	"runtime"
	"testing"

	"mnnfast/internal/tensor"
)

// Steady-state allocation assertions for the serving hot path. After a
// warm-up query populates the scratch pools at the working shape,
// repeated queries must allocate nothing — the per-query cost is pure
// compute on pooled buffers and persistent workers.
//
// The streaming engine is excluded by design: its prefetcher is a
// per-query pipeline goroutine (see Column.processBand).

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; allocation counts are not meaningful")
	}
}

func TestInferAllocs(t *testing.T) {
	skipUnderRace(t)
	rng := rand.New(rand.NewSource(42))
	mem := randomMemory(t, rng, 4096, 64)
	u := tensor.RandomVector(rng, 64, 1)
	o := tensor.NewVector(64)

	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"serial", Options{ChunkSize: 512}},
		{"skip", Options{ChunkSize: 512, SkipThreshold: 0.01}},
		{"parallel", Options{ChunkSize: 512, Pool: tensor.NewPool(4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := NewColumn(mem, tc.opt)
			c.Infer(u, o) // warm up pools at this shape
			allocs := testing.AllocsPerRun(100, func() {
				c.Infer(u, o)
			})
			if allocs != 0 {
				t.Errorf("Column.Infer allocates %v per call, want 0", allocs)
			}
			tc.opt.Pool.Close()
		})
	}
}

func TestInferBatchAllocs(t *testing.T) {
	skipUnderRace(t)
	rng := rand.New(rand.NewSource(43))
	mem := randomMemory(t, rng, 4096, 64)
	const nq = 8
	u := tensor.GaussianMatrix(rng, nq, 64, 1)
	o := tensor.NewMatrix(nq, 64)

	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"plain", Options{ChunkSize: 512}},
		{"skip", Options{ChunkSize: 512, SkipThreshold: 0.01}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := NewColumn(mem, tc.opt)
			c.InferBatch(u, o) // warm up pools at this shape
			allocs := testing.AllocsPerRun(100, func() {
				c.InferBatch(u, o)
			})
			if allocs != 0 {
				t.Errorf("Column.InferBatch allocates %v per call, want 0", allocs)
			}
		})
	}
}

// TestInferBatchIntoAllocs pins the caller-owned-scratch variant, which
// must be allocation-free even on its first call after the scratch has
// seen the shape once.
func TestInferBatchIntoAllocs(t *testing.T) {
	skipUnderRace(t)
	rng := rand.New(rand.NewSource(44))
	mem := randomMemory(t, rng, 2048, 32)
	const nq = 5 // not a multiple of the Dot4 block
	u := tensor.GaussianMatrix(rng, nq, 32, 1)
	o := tensor.NewMatrix(nq, 32)
	c := NewColumn(mem, Options{ChunkSize: 256})
	var s BatchScratch
	c.InferBatchInto(u, o, &s)
	allocs := testing.AllocsPerRun(100, func() {
		c.InferBatchInto(u, o, &s)
	})
	if allocs != 0 {
		t.Errorf("Column.InferBatchInto allocates %v per call, want 0", allocs)
	}
}

// TestShardedInferAllocs pins the scale-out fan-out path: shard
// partials and dispatch state are pooled, so a warmed Sharded.Infer
// allocates nothing — sequential or parallel.
func TestShardedInferAllocs(t *testing.T) {
	skipUnderRace(t)
	rng := rand.New(rand.NewSource(46))
	mem := randomMemory(t, rng, 4096, 64)
	u := tensor.RandomVector(rng, 64, 1)
	o := tensor.NewVector(64)

	for _, par := range []bool{false, true} {
		name := "sequential"
		if par {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			s, err := NewSharded(mem, 4, Options{ChunkSize: 512}, par)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			s.Infer(u, o) // warm up pools at this shape
			allocs := testing.AllocsPerRun(100, func() {
				s.Infer(u, o)
			})
			if allocs != 0 {
				t.Errorf("Sharded.Infer allocates %v per call, want 0", allocs)
			}
		})
	}
}

// TestShardedInferBatchAllocs pins the batched fan-out: per-shard,
// per-question partials come from the pooled shard scratch.
func TestShardedInferBatchAllocs(t *testing.T) {
	skipUnderRace(t)
	rng := rand.New(rand.NewSource(47))
	mem := randomMemory(t, rng, 4096, 64)
	const nq = 6
	u := tensor.GaussianMatrix(rng, nq, 64, 1)
	o := tensor.NewMatrix(nq, 64)

	for _, par := range []bool{false, true} {
		name := "sequential"
		if par {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			s, err := NewSharded(mem, 4, Options{ChunkSize: 512}, par)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			s.InferBatch(u, o) // warm up pools at this shape
			allocs := testing.AllocsPerRun(100, func() {
				s.InferBatch(u, o)
			})
			if allocs != 0 {
				t.Errorf("Sharded.InferBatch allocates %v per call, want 0", allocs)
			}
		})
	}
}

// TestShardedSpawnsNoGoroutines: the parallel fan-out rides persistent
// pool workers — no goroutine per shard per query.
func TestShardedSpawnsNoGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	mem := randomMemory(t, rng, 4096, 32)
	u := tensor.RandomVector(rng, 32, 1)
	o := tensor.NewVector(32)
	s, err := NewSharded(mem, 4, Options{ChunkSize: 512}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Infer(u, o) // spawns the persistent workers
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		s.Infer(u, o)
	}
	after := runtime.NumGoroutine()
	if after > before {
		t.Errorf("goroutine count grew from %d to %d across steady-state queries", before, after)
	}
}

// TestInferSpawnsNoGoroutines checks the steady state also spawns
// nothing: worker parallelism rides the persistent pool.
func TestInferSpawnsNoGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	mem := randomMemory(t, rng, 4096, 32)
	u := tensor.RandomVector(rng, 32, 1)
	o := tensor.NewVector(32)
	p := tensor.NewPool(4)
	defer p.Close()
	c := NewColumn(mem, Options{ChunkSize: 512, Pool: p})
	c.Infer(u, o) // spawns the persistent workers
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		c.Infer(u, o)
	}
	after := runtime.NumGoroutine()
	if after > before {
		t.Errorf("goroutine count grew from %d to %d across steady-state queries", before, after)
	}
}
