package core

import (
	"sync/atomic"

	"mnnfast/internal/memtrace"
	"mnnfast/internal/tensor"
)

// Column is the MnnFast column-based engine (§3.1). The memories are
// partitioned into chunks; every chunk is processed with chunk-sized
// scratch (inner products and exponentials never materialize at ns
// scale), the weighted sum accumulates directly, and softmax's division
// is deferred to a single final pass of ed divisions (lazy softmax,
// Equation 4).
//
// Numerical note: the paper's equations use raw exponentials; this
// implementation additionally maintains a running maximum shift that is
// folded into the partials (an online stabilized softmax). The shift
// cancels in the final division, so results equal the baseline's
// stabilized softmax while single-pass streaming is preserved.
//
// Runtime note: the steady-state query path is allocation- and
// spawn-free. Per-query partials and per-worker chunk scratch come from
// process-wide sync.Pools (scratch.go), worker parallelism rides the
// persistent tensor.Pool workers, and the dense loops use the blocked
// Dot4/Axpy4 kernels and the float32 fast-exp. The one exception is
// Streaming mode, whose prefetcher is inherently a pipeline and spawns
// one goroutine per worker band per query.
type Column struct {
	mem *Memory
	opt Options

	// prefetchSink defeats dead-code elimination of the streaming
	// prefetcher's warming loads.
	prefetchSink atomic.Uint64
}

// NewColumn returns a column-based engine over mem.
func NewColumn(mem *Memory, opt Options) *Column {
	return &Column{mem: mem, opt: opt}
}

// Name implements Engine.
//
//mnnfast:coldpath
func (c *Column) Name() string {
	switch {
	case c.opt.SkipThreshold > 0 && c.opt.Streaming:
		return "mnnfast" // column + streaming + zero-skipping
	case c.opt.Streaming:
		return "column+stream"
	case c.opt.SkipThreshold > 0:
		return "column+skip"
	}
	return "column"
}

// Infer implements Engine.
//
//mnnfast:hotpath
func (c *Column) Infer(u, o tensor.Vector) Stats {
	part := GetPartial(c.mem.Dim())
	st := c.InferPartial(u, part, 0, c.mem.NS())
	st.Divisions += part.Finalize(o)
	PutPartial(part)
	st.Inferences = 1
	if tr := c.opt.Tracer; tr != nil {
		memtrace.Touch(tr, memtrace.RegionOutput, memtrace.OpWrite, 0, c.mem.Dim()*4)
	}
	return st
}

// InferPartial processes rows [lo, hi) of the memory for question state
// u, merging the result into part. It performs no final division, so
// shards across workers or nodes can merge their partials before one
// Finalize — the paper's scale-out dataflow, where only O(ed) partial
// results synchronize (§3.1).
//
// Worker bands run on the persistent pool workers with pooled
// per-worker scratch: at steady state the call allocates nothing and
// spawns nothing.
//
//mnnfast:hotpath
func (c *Column) InferPartial(u tensor.Vector, part *Partial, lo, hi int) Stats {
	n := hi - lo
	if n <= 0 {
		return Stats{}
	}
	w := c.opt.Pool.Workers()
	if w > n {
		w = n
	}
	s := getInferScratch(c, u, lo, w)
	if w == 1 {
		c.processBand(u, lo, hi, 0, s.wps[0], &s.stats[0])
	} else {
		c.opt.Pool.ParallelForWorker(n, 1, s.fn)
	}
	var st Stats
	for b := range s.wps {
		part.Merge(&s.wps[b].Partial)
		st.Add(s.stats[b])
	}
	putInferScratch(s)
	return st
}

// workerPartial is a Partial plus the chunk-sized scratch one worker
// reuses across its chunks — the cache-resident T_IN of Figure 5(b).
type workerPartial struct {
	Partial
	logits tensor.Vector
}

func newWorkerPartial(ed, chunk int) *workerPartial {
	return &workerPartial{
		Partial: Partial{Max: negInf, O: tensor.NewVector(ed)},
		logits:  tensor.NewVector(chunk),
	}
}

// processBand runs the chunk loop over rows [lo, hi) for one worker.
//
//mnnfast:hotpath
func (c *Column) processBand(u tensor.Vector, lo, hi, worker int, wp *workerPartial, st *Stats) {
	cs := c.opt.chunkSize()
	if !c.opt.Streaming {
		for cLo := lo; cLo < hi; cLo += cs {
			cHi := cLo + cs
			if cHi > hi {
				cHi = hi
			}
			c.processChunk(u, cLo, cHi, worker, wp, st)
		}
		return
	}

	// Streaming: a prefetcher goroutine runs ahead of the compute loop,
	// pulling upcoming chunks' memory rows toward the cache while the
	// current chunk computes. The ready channel's buffer is the
	// pipeline depth; the default of 1 is exactly the paper's
	// double-buffer design.
	depth := c.opt.PrefetchDepth
	if depth < 1 {
		depth = 1
	}
	type span struct{ lo, hi int }
	ready := make(chan span, depth)
	go func() {
		defer close(ready)
		for cLo := lo; cLo < hi; cLo += cs {
			cHi := cLo + cs
			if cHi > hi {
				cHi = hi
			}
			c.prefetchChunk(cLo, cHi)
			ready <- span{cLo, cHi}
		}
	}()
	for sp := range ready {
		c.processChunk(u, sp.lo, sp.hi, worker, wp, st)
	}
}

// prefetchChunk warms rows [lo, hi): it reads one element per cache
// line (genuine loads the compiler cannot elide) and reports the
// accesses to the tracer as prefetches. M_OUT is prefetched only when
// zero-skipping is off — with skipping enabled the weighted sum fetches
// an output row only after its exponential passes the threshold (the
// paper's FPGA dataflow, §4.2), so prefetching M_OUT wholesale would
// waste the bandwidth the optimization saves.
//
//mnnfast:hotpath
func (c *Column) prefetchChunk(lo, hi int) {
	tr := c.opt.Tracer
	ed := c.mem.Dim()
	rowBytes := ed * 4
	prefetchOut := c.opt.SkipThreshold <= 0
	const lineFloats = 16 // 64-byte lines of float32
	var sink float32
	// One sequential burst per memory stream (not interleaved per row):
	// long same-region runs ride open DRAM rows, which is where the
	// streamed design's bandwidth efficiency comes from.
	for i := lo; i < hi; i++ {
		memtrace.Touch(tr, memtrace.RegionMemIn, memtrace.OpPrefetch, int64(i)*int64(rowBytes), rowBytes)
		in := c.mem.In.Row(i)
		for j := 0; j < ed; j += lineFloats {
			sink += in[j]
		}
	}
	if prefetchOut {
		for i := lo; i < hi; i++ {
			memtrace.Touch(tr, memtrace.RegionMemOut, memtrace.OpPrefetch, int64(i)*int64(rowBytes), rowBytes)
			out := c.mem.Out.Row(i)
			for j := 0; j < ed; j += lineFloats {
				sink += out[j]
			}
		}
	}
	c.prefetchSink.Add(uint64(int64(sink)) & 1)
}

// processChunk computes inner products, exponentials, and the partial
// weighted sum for rows [lo, hi), folding them into wp. The dense loops
// are 4-row register-blocked (Dot4/Axpy4) and the exponentials use the
// vectorized fast-exp; tracer bookkeeping is hoisted behind nil checks
// so the untraced serving path pays nothing for it.
//
//mnnfast:hotpath
func (c *Column) processChunk(u tensor.Vector, lo, hi, worker int, wp *workerPartial, st *Stats) {
	mem, tr := c.mem, c.opt.Tracer
	ed := mem.Dim()
	rowBytes := ed * 4
	n := hi - lo
	t := wp.logits[:n]

	// Step 1+2 of Fig 5(b): chunk inner products, four memory rows per
	// pass so each question element is loaded once per four rows.
	in := mem.In
	i := lo
	for ; i+4 <= hi; i += 4 {
		t[i-lo], t[i-lo+1], t[i-lo+2], t[i-lo+3] =
			tensor.Dot4(u, in.Row(i), in.Row(i+1), in.Row(i+2), in.Row(i+3))
	}
	for ; i < hi; i++ {
		t[i-lo] = tensor.Dot(u, in.Row(i))
	}
	if tr != nil {
		// Scratch offsets are per worker so the trace reflects genuine
		// reuse of a small buffer rather than an ns-sized spill.
		scratchBase := int64(worker) * int64(c.opt.chunkSize()) * 4
		for i := lo; i < hi; i++ {
			memtrace.Touch(tr, memtrace.RegionQuestion, memtrace.OpRead, 0, rowBytes)
			memtrace.Touch(tr, memtrace.RegionMemIn, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
			memtrace.Touch(tr, memtrace.RegionTempIn, memtrace.OpWrite, scratchBase+int64(i-lo)*4, 4)
			memtrace.Touch(tr, memtrace.RegionTempIn, memtrace.OpRead, scratchBase+int64(i-lo)*4, 4)
		}
	}
	st.InnerProductMuls += int64(n) * int64(ed)

	// Maintain the running maximum shift; rescale prior accumulation
	// if this chunk raises it.
	chunkMax := t.Max()
	if chunkMax > wp.Max {
		if wp.Max != negInf && wp.Sum != 0 {
			scale := expf(wp.Max - chunkMax)
			wp.Sum *= scale
			wp.O.Scale(scale)
		}
		wp.Max = chunkMax
	}

	// Step 3 of Fig 5(b): partial softmax, accumulating the whole
	// chunk's exponentials into P_sum (the chunk scratch is
	// cache-resident, so this extra pass is free of DRAM traffic). The
	// logit slots are reused for the exponentials.
	wp.Sum += tensor.ExpInto(t, t, wp.Max)
	st.Exps += int64(n)
	st.TotalRows += int64(n)

	// Weighted sum with zero-skipping (§3.2, Algorithm 1): a row is
	// bypassed when its exponential is below th × the running sum.
	// Because the running sum (previous chunks + this whole chunk) can
	// only grow toward the final normalizer, every skip here would also
	// be skipped by the exact p_i < th rule — sound, conservative, and
	// convergent to the exact rule as ns grows.
	th := c.opt.SkipThreshold
	out := mem.Out
	if th > 0 {
		cut := th * wp.Sum
		for i := lo; i < hi; i++ {
			e := t[i-lo]
			if e < cut {
				st.SkippedRows++
				continue
			}
			if tr != nil {
				memtrace.Touch(tr, memtrace.RegionMemOut, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
			}
			tensor.Axpy(e, out.Row(i), wp.O)
			st.WeightedSumMuls += int64(ed)
		}
		return
	}
	// No skipping: consume four output rows per pass so each element of
	// the accumulator is loaded and stored once per four rows.
	i = lo
	for ; i+4 <= hi; i += 4 {
		k := i - lo
		tensor.Axpy4(t[k], t[k+1], t[k+2], t[k+3],
			out.Row(i), out.Row(i+1), out.Row(i+2), out.Row(i+3), wp.O)
	}
	for ; i < hi; i++ {
		tensor.Axpy(t[i-lo], out.Row(i), wp.O)
	}
	if tr != nil {
		for i := lo; i < hi; i++ {
			memtrace.Touch(tr, memtrace.RegionMemOut, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
		}
	}
	st.WeightedSumMuls += int64(n) * int64(ed)
}
