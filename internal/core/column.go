package core

import (
	"sync/atomic"

	"mnnfast/internal/memtrace"
	"mnnfast/internal/sched"
	"mnnfast/internal/tensor"
)

// Column is the MnnFast column-based engine (§3.1). The memories are
// partitioned into chunks; every chunk is processed with chunk-sized
// scratch (inner products and exponentials never materialize at ns
// scale), the weighted sum accumulates directly, and softmax's division
// is deferred to a single final pass of ed divisions (lazy softmax,
// Equation 4).
//
// Numerical note: the paper's equations use raw exponentials; this
// implementation computes each chunk as a self-contained stabilized
// Partial — shifted by the chunk's own maximum — and merges the chunk
// partials in ascending chunk order (Partial.Merge re-expresses both
// sides relative to the common maximum). The shift cancels in the final
// division, so results equal the baseline's stabilized softmax while
// single-pass streaming is preserved.
//
// Determinism note: chunk partials are independent of each other and of
// which worker computes them, and the merge order is fixed (ascending
// chunk index). Output bits are therefore identical at every worker
// count, with or without work stealing — the contract the parallel
// scheduler (internal/sched) is built around.
//
// Runtime note: the steady-state query path is allocation- and
// spawn-free. Per-query partials and per-worker chunk scratch come from
// process-wide sync.Pools (scratch.go), chunk parallelism rides the
// work-stealing scheduler over the persistent tensor.Pool workers, and
// the dense loops use the blocked Dot4/Axpy4 kernels and the float32
// fast-exp. The one exception is serial Streaming mode, whose
// prefetcher is inherently a pipeline and spawns one goroutine per
// query.
type Column struct {
	mem *Memory
	opt Options
	sch *sched.Scheduler

	// prefetchSink defeats dead-code elimination of the streaming
	// prefetcher's warming loads.
	prefetchSink atomic.Uint64
}

// NewColumn returns a column-based engine over mem. When opt.Pool is
// set, chunks are distributed over its persistent workers by a
// work-stealing scheduler; a nil pool runs serially.
func NewColumn(mem *Memory, opt Options) *Column {
	return &Column{mem: mem, opt: opt, sch: sched.New(opt.Pool)}
}

// Scheduler exposes the engine's chunk scheduler for observability:
// per-worker chunk/steal/idle counters feed the metrics endpoint and
// the benchmark emitter.
//
//mnnfast:coldpath
func (c *Column) Scheduler() *sched.Scheduler { return c.sch }

// Name implements Engine.
//
//mnnfast:coldpath
func (c *Column) Name() string {
	switch {
	case c.opt.SkipThreshold > 0 && c.opt.Streaming:
		return "mnnfast" // column + streaming + zero-skipping
	case c.opt.Streaming:
		return "column+stream"
	case c.opt.SkipThreshold > 0:
		return "column+skip"
	}
	return "column"
}

// Infer implements Engine.
//
//mnnfast:hotpath
func (c *Column) Infer(u, o tensor.Vector) Stats {
	part := GetPartial(c.mem.Dim())
	st := c.InferPartial(u, part, 0, c.mem.NS())
	st.Divisions += part.Finalize(o)
	PutPartial(part)
	st.Inferences = 1
	if tr := c.opt.Tracer; tr != nil {
		memtrace.Touch(tr, memtrace.RegionOutput, memtrace.OpWrite, 0, c.mem.Dim()*4)
	}
	return st
}

// InferPartial processes rows [lo, hi) of the memory for question state
// u, merging the result into part. It performs no final division, so
// shards across workers or nodes can merge their partials before one
// Finalize — the paper's scale-out dataflow, where only O(ed) partial
// results synchronize (§3.1).
//
// The row range is split into chunk-granularity work items executed by
// the work-stealing scheduler on the persistent pool workers; each item
// produces an independent chunk Partial, and the partials merge in
// ascending chunk order, so the result is bit-identical at every worker
// count. Scratch is pooled: at steady state the call allocates nothing
// and spawns nothing.
//
//mnnfast:hotpath
func (c *Column) InferPartial(u tensor.Vector, part *Partial, lo, hi int) Stats {
	n := hi - lo
	if n <= 0 {
		return Stats{}
	}
	cs := c.opt.chunkSize()
	nItems := (n + cs - 1) / cs
	w := c.sch.Workers()
	if w > nItems {
		w = nItems
	}
	s := getInferScratch(c, u, lo, nItems, w)
	if c.opt.Streaming && w == 1 {
		c.streamBand(u, lo, hi, s)
	} else {
		c.sch.Run(lo, n, cs, s.fn)
	}
	var st Stats
	for i := range s.chunkParts {
		part.Merge(&s.chunkParts[i])
	}
	for b := range s.stats {
		st.Add(s.stats[b])
	}
	putInferScratch(s)
	return st
}

// streamBand is the serial streaming pipeline: a prefetcher goroutine
// runs ahead of the compute loop, pulling upcoming chunks' memory rows
// toward the cache while the current chunk computes. The ready
// channel's buffer is the pipeline depth; the default of 1 is exactly
// the paper's double-buffer design. With more than one worker the
// pipeline is unnecessary — each worker's synchronous prefetch overlaps
// with the other workers' compute — so this path runs only at width 1.
// The prefetcher closure is built once per band and amortizes across
// every chunk in it; the goroutine spawn it feeds dwarfs the capture
// allocation.
//
//mnnfast:hotpath allow=closure
func (c *Column) streamBand(u tensor.Vector, lo, hi int, s *inferScratch) {
	depth := c.opt.PrefetchDepth
	if depth < 1 {
		depth = 1
	}
	cs := c.opt.chunkSize()
	type span struct{ lo, hi int }
	ready := make(chan span, depth)
	go func() {
		defer close(ready)
		for cLo := lo; cLo < hi; cLo += cs {
			cHi := cLo + cs
			if cHi > hi {
				cHi = hi
			}
			c.prefetchChunk(cLo, cHi)
			ready <- span{cLo, cHi}
		}
	}()
	for sp := range ready {
		idx := (sp.lo - lo) / cs
		c.processChunk(u, sp.lo, sp.hi, 0, &s.chunkParts[idx], s.logits[0], &s.stats[0])
	}
}

// prefetchChunk warms rows [lo, hi): it reads one element per cache
// line (genuine loads the compiler cannot elide) and reports the
// accesses to the tracer as prefetches. M_OUT is prefetched only when
// zero-skipping is off — with skipping enabled the weighted sum fetches
// an output row only after its exponential passes the threshold (the
// paper's FPGA dataflow, §4.2), so prefetching M_OUT wholesale would
// waste the bandwidth the optimization saves.
//
//mnnfast:hotpath
func (c *Column) prefetchChunk(lo, hi int) {
	tr := c.opt.Tracer
	ed := c.mem.Dim()
	rowBytes := ed * 4
	prefetchOut := c.opt.SkipThreshold <= 0
	const lineFloats = 16 // 64-byte lines of float32
	var sink float32
	// One sequential burst per memory stream (not interleaved per row):
	// long same-region runs ride open DRAM rows, which is where the
	// streamed design's bandwidth efficiency comes from.
	for i := lo; i < hi; i++ {
		memtrace.Touch(tr, memtrace.RegionMemIn, memtrace.OpPrefetch, int64(i)*int64(rowBytes), rowBytes)
		in := c.mem.In.Row(i)
		for j := 0; j < ed; j += lineFloats {
			sink += in[j]
		}
	}
	if prefetchOut {
		for i := lo; i < hi; i++ {
			memtrace.Touch(tr, memtrace.RegionMemOut, memtrace.OpPrefetch, int64(i)*int64(rowBytes), rowBytes)
			out := c.mem.Out.Row(i)
			for j := 0; j < ed; j += lineFloats {
				sink += out[j]
			}
		}
	}
	c.prefetchSink.Add(uint64(int64(sink)) & 1)
}

// processChunk computes inner products, exponentials, and the weighted
// sum for rows [lo, hi) into the chunk's own Partial p: the shift is
// the chunk maximum, the sum is the chunk's exponential mass, and the
// accumulator starts from zero. The result depends only on the chunk's
// rows — never on which worker ran it or what ran before it — which is
// what makes the scheduler's out-of-order execution bit-deterministic
// after the in-order merge. The dense loops are 4-row register-blocked
// (Dot4/Axpy4) and the exponentials use the vectorized fast-exp;
// tracer bookkeeping is hoisted behind nil checks so the untraced
// serving path pays nothing for it.
//
//mnnfast:hotpath
func (c *Column) processChunk(u tensor.Vector, lo, hi, worker int, p *Partial, logits tensor.Vector, st *Stats) {
	mem, tr := c.mem, c.opt.Tracer
	ed := mem.Dim()
	rowBytes := ed * 4
	n := hi - lo
	t := logits[:n]

	// Step 1+2 of Fig 5(b): chunk inner products, four memory rows per
	// pass so each question element is loaded once per four rows.
	in := mem.In
	i := lo
	for ; i+4 <= hi; i += 4 {
		t[i-lo], t[i-lo+1], t[i-lo+2], t[i-lo+3] =
			tensor.Dot4(u, in.Row(i), in.Row(i+1), in.Row(i+2), in.Row(i+3))
	}
	for ; i < hi; i++ {
		t[i-lo] = tensor.Dot(u, in.Row(i))
	}
	if tr != nil {
		// Scratch offsets are per worker so the trace reflects genuine
		// reuse of a small buffer rather than an ns-sized spill.
		scratchBase := int64(worker) * int64(c.opt.chunkSize()) * 4
		for i := lo; i < hi; i++ {
			memtrace.Touch(tr, memtrace.RegionQuestion, memtrace.OpRead, 0, rowBytes)
			memtrace.Touch(tr, memtrace.RegionMemIn, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
			memtrace.Touch(tr, memtrace.RegionTempIn, memtrace.OpWrite, scratchBase+int64(i-lo)*4, 4)
			memtrace.Touch(tr, memtrace.RegionTempIn, memtrace.OpRead, scratchBase+int64(i-lo)*4, 4)
		}
	}
	st.InnerProductMuls += int64(n) * int64(ed)

	// Step 3 of Fig 5(b): partial softmax under the chunk's own maximum
	// shift, accumulating the whole chunk's exponentials into P_sum (the
	// chunk scratch is cache-resident, so this extra pass is free of
	// DRAM traffic). The logit slots are reused for the exponentials.
	p.Max = t.Max()
	p.Sum = tensor.ExpInto(t, t, p.Max)
	st.Exps += int64(n)
	st.TotalRows += int64(n)

	// Weighted sum with zero-skipping (§3.2, Algorithm 1): a row is
	// bypassed when its exponential is below th × the chunk's sum —
	// i.e. when its probability within the chunk alone is below th.
	// The chunk sum can only be smaller than the final normalizer, so
	// every skip here would also be skipped by the exact p_i < th rule:
	// sound, conservative, and convergent to the exact rule as the
	// chunk's share of the mass grows.
	th := c.opt.SkipThreshold
	out := mem.Out
	if th > 0 {
		cut := th * p.Sum
		for i := lo; i < hi; i++ {
			e := t[i-lo]
			if e < cut {
				st.SkippedRows++
				continue
			}
			if tr != nil {
				memtrace.Touch(tr, memtrace.RegionMemOut, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
			}
			tensor.Axpy(e, out.Row(i), p.O)
			st.WeightedSumMuls += int64(ed)
		}
		return
	}
	// No skipping: consume four output rows per pass so each element of
	// the accumulator is loaded and stored once per four rows.
	i = lo
	for ; i+4 <= hi; i += 4 {
		k := i - lo
		tensor.Axpy4(t[k], t[k+1], t[k+2], t[k+3],
			out.Row(i), out.Row(i+1), out.Row(i+2), out.Row(i+3), p.O)
	}
	for ; i < hi; i++ {
		tensor.Axpy(t[i-lo], out.Row(i), p.O)
	}
	if tr != nil {
		for i := lo; i < hi; i++ {
			memtrace.Touch(tr, memtrace.RegionMemOut, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
		}
	}
	st.WeightedSumMuls += int64(n) * int64(ed)
}
