package core

import (
	"math/rand"
	"testing"

	"mnnfast/internal/tensor"
)

// perfMemory builds the acceptance-benchmark database: ns=10k, ed=128,
// the configuration BENCH_column.json tracks across PRs.
func perfMemory(tb testing.TB, ns, ed int) *Memory {
	tb.Helper()
	rng := rand.New(rand.NewSource(11))
	in := tensor.GaussianMatrix(rng, ns, ed, 0.5)
	out := tensor.GaussianMatrix(rng, ns, ed, 0.5)
	mem, err := NewMemory(in, out)
	if err != nil {
		tb.Fatal(err)
	}
	return mem
}

func benchSingleQuery(b *testing.B, mk func(*Memory) Engine) {
	const ns, ed = 10000, 128
	mem := perfMemory(b, ns, ed)
	eng := mk(mem)
	rng := rand.New(rand.NewSource(12))
	u := tensor.RandomVector(rng, ed, 1)
	o := tensor.NewVector(ed)
	eng.Infer(u, o) // warm-up
	b.SetBytes(mem.In.SizeBytes() + mem.Out.SizeBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Infer(u, o)
	}
}

// BenchmarkColumnSingle10kx128 is the headline number recorded in
// BENCH_column.json (engine "column").
func BenchmarkColumnSingle10kx128(b *testing.B) {
	benchSingleQuery(b, func(m *Memory) Engine {
		return NewColumn(m, Options{ChunkSize: 1000})
	})
}

// BenchmarkBaselineSingle10kx128 is the layer-by-layer reference point.
func BenchmarkBaselineSingle10kx128(b *testing.B) {
	benchSingleQuery(b, func(m *Memory) Engine {
		return NewBaseline(m, Options{})
	})
}

// BenchmarkMnnFastSingle10kx128 is the full MnnFast configuration
// (column + streaming + zero-skipping).
func BenchmarkMnnFastSingle10kx128(b *testing.B) {
	benchSingleQuery(b, func(m *Memory) Engine {
		return NewColumn(m, Options{ChunkSize: 1000, Streaming: true, SkipThreshold: 0.1})
	})
}

// BenchmarkColumnBatch10kx128 tracks the batched path (nq=8).
func BenchmarkColumnBatch10kx128(b *testing.B) {
	const ns, ed, nq = 10000, 128, 8
	mem := perfMemory(b, ns, ed)
	eng := NewColumn(mem, Options{ChunkSize: 1000})
	rng := rand.New(rand.NewSource(13))
	u := tensor.RandomMatrix(rng, nq, ed, 1)
	o := tensor.NewMatrix(nq, ed)
	eng.InferBatch(u, o) // warm-up
	b.SetBytes(mem.In.SizeBytes() + mem.Out.SizeBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.InferBatch(u, o)
	}
}
