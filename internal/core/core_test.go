package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mnnfast/internal/memtrace"
	"mnnfast/internal/tensor"
)

func randomMemory(t testing.TB, rng *rand.Rand, ns, ed int) *Memory {
	t.Helper()
	mem, err := NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.8),
		tensor.GaussianMatrix(rng, ns, ed, 0.8),
	)
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

// reference computes o = softmax(u·M_INᵀ)·M_OUT directly.
func reference(mem *Memory, u tensor.Vector) tensor.Vector {
	p := tensor.NewVector(mem.NS())
	tensor.MatVec(nil, mem.In, u, p)
	tensor.Softmax(p)
	o := tensor.NewVector(mem.Dim())
	tensor.VecMat(nil, p, mem.Out, o)
	return o
}

func TestNewMemoryValidation(t *testing.T) {
	if _, err := NewMemory(nil, nil); err == nil {
		t.Error("nil matrices accepted")
	}
	if _, err := NewMemory(tensor.NewMatrix(2, 3), tensor.NewMatrix(3, 2)); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := NewMemory(tensor.NewMatrix(0, 3), tensor.NewMatrix(0, 3)); err == nil {
		t.Error("empty memory accepted")
	}
	mem, err := NewMemory(tensor.NewMatrix(4, 3), tensor.NewMatrix(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if mem.NS() != 4 || mem.Dim() != 3 {
		t.Errorf("NS/Dim = %d/%d", mem.NS(), mem.Dim())
	}
}

func TestBaselineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range [][2]int{{1, 1}, {7, 5}, {100, 48}, {1000, 16}} {
		mem := randomMemory(t, rng, shape[0], shape[1])
		u := tensor.RandomVector(rng, shape[1], 1)
		want := reference(mem, u)
		got := tensor.NewVector(shape[1])
		NewBaseline(mem, Options{}).Infer(u, got)
		if d := tensor.MaxAbsDiff(want, got); d > 1e-4 {
			t.Errorf("ns=%d ed=%d: baseline differs from reference by %v", shape[0], shape[1], d)
		}
	}
}

func TestColumnMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, shape := range [][2]int{{1, 1}, {7, 5}, {100, 48}, {999, 32}, {5000, 48}} {
		for _, chunk := range []int{1, 7, 100, 1000} {
			for _, workers := range []int{1, 4} {
				mem := randomMemory(t, rng, shape[0], shape[1])
				u := tensor.RandomVector(rng, shape[1], 1)
				want := tensor.NewVector(shape[1])
				NewBaseline(mem, Options{}).Infer(u, want)
				got := tensor.NewVector(shape[1])
				NewColumn(mem, Options{ChunkSize: chunk, Pool: tensor.NewPool(workers)}).Infer(u, got)
				if d := tensor.MaxAbsDiff(want, got); d > 1e-4 {
					t.Errorf("ns=%d ed=%d chunk=%d w=%d: column differs by %v",
						shape[0], shape[1], chunk, workers, d)
				}
			}
		}
	}
}

func TestColumnStreamingMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mem := randomMemory(t, rng, 2000, 48)
	u := tensor.RandomVector(rng, 48, 1)
	want := tensor.NewVector(48)
	NewBaseline(mem, Options{}).Infer(u, want)
	got := tensor.NewVector(48)
	NewColumn(mem, Options{ChunkSize: 128, Streaming: true, Pool: tensor.NewPool(3)}).Infer(u, got)
	if d := tensor.MaxAbsDiff(want, got); d > 1e-4 {
		t.Errorf("streaming column differs from baseline by %v", d)
	}
}

func TestQuickColumnEqualsBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64, nsRaw, edRaw, chunkRaw uint8) bool {
		ns := 1 + int(nsRaw)%300
		ed := 1 + int(edRaw)%64
		chunk := 1 + int(chunkRaw)%64
		r := rand.New(rand.NewSource(seed))
		mem := randomMemory(t, r, ns, ed)
		u := tensor.RandomVector(r, ed, 1)
		a := tensor.NewVector(ed)
		b := tensor.NewVector(ed)
		NewBaseline(mem, Options{}).Infer(u, a)
		NewColumn(mem, Options{ChunkSize: chunk}).Infer(u, b)
		return tensor.MaxAbsDiff(a, b) <= 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestColumnLargeLogitsStable(t *testing.T) {
	// The online max-shift must keep the lazy softmax finite even when
	// raw exponentials of the logits overflow float32.
	mem, err := NewMemory(tensor.NewMatrix(100, 4), tensor.NewMatrix(100, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		mem.In.Row(i).Fill(float32(i)) // logits up to ~400·|u|
		mem.Out.Row(i).Fill(1)
	}
	u := tensor.Vector{100, 100, 100, 100}
	o := tensor.NewVector(4)
	NewColumn(mem, Options{ChunkSize: 16}).Infer(u, o)
	for _, x := range o {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			t.Fatalf("lazy softmax overflowed: %v", o)
		}
	}
	// Attention collapses onto the last row whose out-vector is all
	// ones, so o ≈ 1.
	if d := tensor.MaxAbsDiff(o, tensor.Vector{1, 1, 1, 1}); d > 1e-3 {
		t.Errorf("o = %v, want ≈ [1 1 1 1]", o)
	}
}

func TestZeroSkippingReducesWorkNotResults(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ns, ed := 3000, 32
	mem := randomMemory(t, rng, ns, ed)
	// Sharpen the logits so attention is sparse, as trained models are.
	for i := range mem.In.Data {
		mem.In.Data[i] *= 4
	}
	u := tensor.RandomVector(rng, ed, 1)

	exact := tensor.NewVector(ed)
	stExact := NewColumn(mem, Options{ChunkSize: 256}).Infer(u, exact)
	if stExact.SkippedRows != 0 {
		t.Fatalf("skipping disabled but %d rows skipped", stExact.SkippedRows)
	}

	skip := tensor.NewVector(ed)
	stSkip := NewColumn(mem, Options{ChunkSize: 256, SkipThreshold: 0.01}).Infer(u, skip)
	if stSkip.SkippedRows == 0 {
		t.Fatal("no rows skipped at threshold 0.01 despite sharp attention")
	}
	if stSkip.WeightedSumMuls >= stExact.WeightedSumMuls {
		t.Errorf("skipping did not reduce weighted-sum work: %d >= %d",
			stSkip.WeightedSumMuls, stExact.WeightedSumMuls)
	}
	// Near-zero attention rows contribute almost nothing, so outputs
	// stay close.
	if d := tensor.MaxAbsDiff(exact, skip); d > 0.05 {
		t.Errorf("zero-skipping perturbed the output by %v", d)
	}
	if got := stSkip.SkipFraction(); got <= 0 || got > 1 {
		t.Errorf("SkipFraction = %v", got)
	}
}

func TestStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ns, ed := 500, 24
	mem := randomMemory(t, rng, ns, ed)
	u := tensor.RandomVector(rng, ed, 1)
	o := tensor.NewVector(ed)

	base := NewBaseline(mem, Options{}).Infer(u, o)
	if base.InnerProductMuls != int64(ns*ed) {
		t.Errorf("baseline inner-product muls = %d, want %d", base.InnerProductMuls, ns*ed)
	}
	if base.Divisions != int64(ns) {
		t.Errorf("baseline divisions = %d, want ns=%d", base.Divisions, ns)
	}
	if base.Exps != int64(ns) {
		t.Errorf("baseline exps = %d, want %d", base.Exps, ns)
	}
	if base.SpillBytes == 0 {
		t.Error("baseline reported no spill bytes")
	}

	col := NewColumn(mem, Options{ChunkSize: 100}).Infer(u, o)
	if col.Divisions != int64(ed) {
		t.Errorf("column divisions = %d, want ed=%d — the lazy-softmax claim", col.Divisions, ed)
	}
	if col.InnerProductMuls != base.InnerProductMuls {
		t.Errorf("column inner-product muls = %d, want %d", col.InnerProductMuls, base.InnerProductMuls)
	}
	if col.Exps != base.Exps {
		t.Errorf("column exps = %d, want %d", col.Exps, base.Exps)
	}
	if col.SpillBytes != 0 {
		t.Errorf("column reported %d spill bytes, want 0", col.SpillBytes)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{InnerProductMuls: 1, WeightedSumMuls: 2, Exps: 3, Divisions: 4,
		SkippedRows: 5, TotalRows: 6, SpillBytes: 7, Inferences: 8}
	b := a
	a.Add(b)
	if a.InnerProductMuls != 2 || a.Inferences != 16 || a.SpillBytes != 14 {
		t.Errorf("Add result wrong: %+v", a)
	}
	if a.TotalMuls() != 2+4 {
		t.Errorf("TotalMuls = %d", a.TotalMuls())
	}
	if (Stats{}).SkipFraction() != 0 {
		t.Error("SkipFraction of empty stats should be 0")
	}
}

func TestPartialMergeCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ed := 8
	mk := func() *Partial {
		p := NewPartial(ed)
		p.Max = rng.Float32() * 10
		p.Sum = rng.Float32() + 0.1
		p.O = tensor.RandomVector(rng, ed, 1)
		return p
	}
	for trial := 0; trial < 30; trial++ {
		a1, b1 := mk(), mk()
		a2 := NewPartial(ed)
		a2.Max, a2.Sum = a1.Max, a1.Sum
		copy(a2.O, a1.O)
		b2 := NewPartial(ed)
		b2.Max, b2.Sum = b1.Max, b1.Sum
		copy(b2.O, b1.O)

		a1.Merge(b1) // a ∪ b
		b2.Merge(a2) // b ∪ a

		oa := tensor.NewVector(ed)
		ob := tensor.NewVector(ed)
		a1.Finalize(oa)
		b2.Finalize(ob)
		if d := tensor.MaxAbsDiff(oa, ob); d > 1e-5 {
			t.Fatalf("merge is not commutative after finalize: %v", d)
		}
	}
}

func TestPartialMergeWithEmpty(t *testing.T) {
	ed := 4
	p := NewPartial(ed)
	q := NewPartial(ed)
	q.Max, q.Sum = 2, 3
	q.O.Fill(6)
	p.Merge(q)
	o := tensor.NewVector(ed)
	p.Finalize(o)
	if d := tensor.MaxAbsDiff(o, tensor.Vector{2, 2, 2, 2}); d > 1e-6 {
		t.Errorf("merge into empty: o = %v, want all 2", o)
	}
	// Merging an empty partial must be a no-op.
	before := p.Sum
	p.Merge(NewPartial(ed))
	if p.Sum != before {
		t.Error("merging empty partial changed the sum")
	}
}

func TestShardedMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ns, ed := 4096, 48
	mem := randomMemory(t, rng, ns, ed)
	u := tensor.RandomVector(rng, ed, 1)
	want := tensor.NewVector(ed)
	NewBaseline(mem, Options{}).Infer(u, want)

	for _, shards := range []int{1, 2, 4, 7} {
		for _, par := range []bool{false, true} {
			s, err := NewSharded(mem, shards, Options{ChunkSize: 100}, par)
			if err != nil {
				t.Fatal(err)
			}
			got := tensor.NewVector(ed)
			s.Infer(u, got)
			if d := tensor.MaxAbsDiff(want, got); d > 1e-4 {
				t.Errorf("shards=%d par=%v: differs by %v", shards, par, d)
			}
		}
	}
}

func TestShardedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mem := randomMemory(t, rng, 10, 4)
	if _, err := NewSharded(mem, 0, Options{}, false); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewSharded(mem, 11, Options{}, false); err == nil {
		t.Error("more shards than rows accepted")
	}
	s, err := NewSharded(mem, 3, Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() < 3 {
		t.Errorf("Shards() = %d, want >= 3", s.Shards())
	}
	if s.SyncBytes() <= 0 {
		t.Error("SyncBytes must be positive")
	}
}

func TestTracedAccessesDifferBetweenEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ns, ed := 2048, 16
	mem := randomMemory(t, rng, ns, ed)
	u := tensor.RandomVector(rng, ed, 1)
	o := tensor.NewVector(ed)

	var cBase memtrace.Counter
	NewBaseline(mem, Options{Tracer: &cBase}).Infer(u, o)
	var cCol memtrace.Counter
	NewColumn(mem, Options{ChunkSize: 128, Tracer: &cCol}).Infer(u, o)

	// The baseline spills ns-sized P_exp and P vectors; the column
	// engine must not touch them at all.
	if cBase.RegionBytes(memtrace.RegionTempPexp) == 0 {
		t.Error("baseline traced no P_exp traffic")
	}
	if cCol.RegionBytes(memtrace.RegionTempPexp) != 0 {
		t.Error("column engine traced P_exp traffic — lazy softmax should remove it")
	}
	if cCol.RegionBytes(memtrace.RegionTempP) != 0 {
		t.Error("column engine traced P traffic")
	}
	// Both read the full memories once.
	memBytes := int64(ns * ed * 4)
	if got := cBase.Bytes[memtrace.RegionMemIn][memtrace.OpRead]; got != memBytes {
		t.Errorf("baseline M_IN read bytes = %d, want %d", got, memBytes)
	}
	if got := cCol.Bytes[memtrace.RegionMemIn][memtrace.OpRead]; got != memBytes {
		t.Errorf("column M_IN read bytes = %d, want %d", got, memBytes)
	}
}

func TestStreamingTracesPrefetches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mem := randomMemory(t, rng, 1024, 16)
	u := tensor.RandomVector(rng, 16, 1)
	o := tensor.NewVector(16)
	var c memtrace.Counter
	NewColumn(mem, Options{ChunkSize: 128, Streaming: true, Tracer: &c}).Infer(u, o)
	if c.Bytes[memtrace.RegionMemIn][memtrace.OpPrefetch] == 0 {
		t.Error("streaming engine traced no prefetches")
	}
	if c.Bytes[memtrace.RegionMemOut][memtrace.OpPrefetch] == 0 {
		t.Error("streaming engine traced no M_OUT prefetches")
	}
}

func TestEngineNames(t *testing.T) {
	mem := randomMemory(t, rand.New(rand.NewSource(12)), 4, 2)
	cases := []struct {
		eng  Engine
		want string
	}{
		{NewBaseline(mem, Options{}), "baseline"},
		{NewColumn(mem, Options{}), "column"},
		{NewColumn(mem, Options{Streaming: true}), "column+stream"},
		{NewColumn(mem, Options{SkipThreshold: 0.1}), "column+skip"},
		{NewColumn(mem, Options{Streaming: true, SkipThreshold: 0.1}), "mnnfast"},
	}
	for _, c := range cases {
		if got := c.eng.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestInferPartialEmptyRange(t *testing.T) {
	mem := randomMemory(t, rand.New(rand.NewSource(13)), 8, 4)
	col := NewColumn(mem, Options{})
	p := NewPartial(4)
	st := col.InferPartial(tensor.NewVector(4), p, 3, 3)
	if st.TotalRows != 0 || p.Sum != 0 {
		t.Errorf("empty range did work: %+v, sum=%v", st, p.Sum)
	}
}

func TestSkippingAvoidsMemOutPrefetch(t *testing.T) {
	// With zero-skipping on, the streaming prefetcher must not pull
	// M_OUT wholesale: skipped rows never touch it at all, so total
	// M_OUT traffic (prefetch + demand) collapses with the skip rate.
	rng := rand.New(rand.NewSource(14))
	ns, ed := 4096, 16
	mem := randomMemory(t, rng, ns, ed)
	for i := range mem.In.Data {
		mem.In.Data[i] *= 4 // sharp attention → high skip rate
	}
	u := tensor.RandomVector(rng, ed, 1)
	o := tensor.NewVector(ed)

	var noSkip memtrace.Counter
	NewColumn(mem, Options{ChunkSize: 256, Streaming: true, Tracer: &noSkip}).Infer(u, o)
	var skip memtrace.Counter
	NewColumn(mem, Options{ChunkSize: 256, Streaming: true, SkipThreshold: 0.1, Tracer: &skip}).Infer(u, o)

	if got := skip.Bytes[memtrace.RegionMemOut][memtrace.OpPrefetch]; got != 0 {
		t.Errorf("skipping engine prefetched %d M_OUT bytes, want 0", got)
	}
	outNoSkip := noSkip.RegionBytes(memtrace.RegionMemOut)
	outSkip := skip.RegionBytes(memtrace.RegionMemOut)
	if outSkip >= outNoSkip/4 {
		t.Errorf("skipping did not collapse M_OUT traffic: %d vs %d", outSkip, outNoSkip)
	}
	// M_IN must still be fully prefetched either way.
	if skip.Bytes[memtrace.RegionMemIn][memtrace.OpPrefetch] == 0 {
		t.Error("skipping engine stopped prefetching M_IN")
	}
}

func TestPrefetchDepthDoesNotChangeResults(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	mem := randomMemory(t, rng, 3000, 24)
	u := tensor.RandomVector(rng, 24, 1)
	want := tensor.NewVector(24)
	NewBaseline(mem, Options{}).Infer(u, want)
	for _, depth := range []int{0, 1, 2, 4} {
		got := tensor.NewVector(24)
		NewColumn(mem, Options{ChunkSize: 256, Streaming: true, PrefetchDepth: depth}).Infer(u, got)
		if d := tensor.MaxAbsDiff(want, got); d > 1e-4 {
			t.Errorf("depth %d: differs from baseline by %v", depth, d)
		}
	}
}

func TestAllOptionCombinationsAgree(t *testing.T) {
	// Every combination of {chunking, streaming, pool, sharding} must
	// produce the exact result; zero-skipping on sharp attention must
	// stay close to it.
	rng := rand.New(rand.NewSource(16))
	ns, ed := 4096, 32
	mem := randomMemory(t, rng, ns, ed)
	for i := range mem.In.Data {
		mem.In.Data[i] *= 4
	}
	u := tensor.RandomVector(rng, ed, 1)
	want := tensor.NewVector(ed)
	NewBaseline(mem, Options{}).Infer(u, want)

	exact := []Engine{
		NewColumn(mem, Options{ChunkSize: 64}),
		NewColumn(mem, Options{ChunkSize: 64, Streaming: true}),
		NewColumn(mem, Options{ChunkSize: 333, Pool: tensor.NewPool(3)}),
		NewColumn(mem, Options{ChunkSize: 128, Streaming: true, Pool: tensor.NewPool(2), PrefetchDepth: 2}),
	}
	if s, err := NewSharded(mem, 5, Options{ChunkSize: 100, Streaming: true}, true); err == nil {
		exact = append(exact, s)
	} else {
		t.Fatal(err)
	}
	for _, eng := range exact {
		got := tensor.NewVector(ed)
		eng.Infer(u, got)
		if d := tensor.MaxAbsDiff(want, got); d > 1e-4 {
			t.Errorf("%s: differs from baseline by %v", eng.Name(), d)
		}
	}

	skipping := []Engine{
		NewColumn(mem, Options{ChunkSize: 64, SkipThreshold: 0.01}),
		NewColumn(mem, Options{ChunkSize: 128, Streaming: true, SkipThreshold: 0.01, Pool: tensor.NewPool(2)}),
	}
	for _, eng := range skipping {
		got := tensor.NewVector(ed)
		st := eng.Infer(u, got)
		if st.SkippedRows == 0 {
			t.Errorf("%s: skipped nothing on sharp attention", eng.Name())
		}
		if d := tensor.MaxAbsDiff(want, got); d > 0.05 {
			t.Errorf("%s: zero-skipping perturbed output by %v", eng.Name(), d)
		}
	}
}
