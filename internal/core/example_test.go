package core_test

import (
	"fmt"
	"math/rand"

	"mnnfast/internal/core"
	"mnnfast/internal/tensor"
)

// ExampleColumn shows the MnnFast engine answering a question against a
// knowledge database and the lazy-softmax division count (ed, not ns).
func ExampleColumn() {
	rng := rand.New(rand.NewSource(1))
	const ns, ed = 10000, 32
	mem, _ := core.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
	)
	eng := core.NewColumn(mem, core.Options{ChunkSize: 1000})
	u := tensor.RandomVector(rng, ed, 1)
	o := tensor.NewVector(ed)
	stats := eng.Infer(u, o)
	fmt.Println("divisions:", stats.Divisions) // ed, not ns — Equation 4
	fmt.Println("exps:", stats.Exps)
	fmt.Println("spill bytes:", stats.SpillBytes)
	// Output:
	// divisions: 32
	// exps: 10000
	// spill bytes: 0
}

// ExamplePartial_Merge shows how scale-out fragments combine: two
// shards' partials merge into the same answer one engine would produce.
func ExamplePartial_Merge() {
	rng := rand.New(rand.NewSource(2))
	const ns, ed = 1000, 8
	mem, _ := core.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
	)
	u := tensor.RandomVector(rng, ed, 1)
	eng := core.NewColumn(mem, core.Options{ChunkSize: 100})

	left := core.NewPartial(ed)
	right := core.NewPartial(ed)
	eng.InferPartial(u, left, 0, ns/2)
	eng.InferPartial(u, right, ns/2, ns)
	left.Merge(right)
	merged := tensor.NewVector(ed)
	left.Finalize(merged)

	whole := tensor.NewVector(ed)
	eng.Infer(u, whole)
	fmt.Printf("shards agree with single engine: %v\n", tensor.MaxAbsDiff(merged, whole) < 1e-5)
	// Output:
	// shards agree with single engine: true
}

// ExampleColumn_zeroSkipping shows the §3.2 optimization bypassing the
// weighted-sum work of near-zero attention rows.
func ExampleColumn_zeroSkipping() {
	rng := rand.New(rand.NewSource(3))
	const ns, ed = 5000, 16
	in := tensor.GaussianMatrix(rng, ns, ed, 0.5)
	for i := range in.Data {
		in.Data[i] *= 4 // sharp, trained-model-like attention
	}
	mem, _ := core.NewMemory(in, tensor.GaussianMatrix(rng, ns, ed, 0.5))
	u := tensor.RandomVector(rng, ed, 1)
	o := tensor.NewVector(ed)
	stats := core.NewColumn(mem, core.Options{ChunkSize: 500, SkipThreshold: 0.1}).Infer(u, o)
	fmt.Printf("skipped more than 99%% of rows: %v\n", stats.SkipFraction() > 0.99)
	// Output:
	// skipped more than 99% of rows: true
}
