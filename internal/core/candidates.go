package core

import (
	"fmt"
	"sync"

	"mnnfast/internal/memtrace"
	"mnnfast/internal/sparse"
	"mnnfast/internal/tensor"
)

// Candidate-set inference: the column engine restricted to an explicit
// row subset, the core half of the approximate top-k attention path
// (ROADMAP "Million-row memories"). The caller — typically an IVF
// probe (sparse.TopKIndex.Candidates) — supplies ascending candidate
// rows; the chunk scheduler splits the *candidate positions* into
// chunk-granularity work items, each item computes a self-contained
// stabilized Partial over its gathered rows, and the partials merge in
// ascending item order. The result is therefore bit-identical at every
// worker count, exactly like InferPartial, and when the candidate set
// is every row with the same chunk size it reproduces InferPartial
// bit-for-bit (the chunks gather the same rows in the same order).

// candScratch is the reusable state of one Column.InferCandidates
// call: one Partial per chunk item, per-worker logits scratch and
// stats, and the scheduler dispatch closure, built once per pooled
// object.
type candScratch struct {
	col        *Column
	u          tensor.Vector
	cand       []int32
	chunk      int
	chunkParts []Partial
	logits     []tensor.Vector
	stats      []Stats
	fn         func(worker, lo, hi int)
}

var candScratchPool = sync.Pool{New: func() any {
	s := new(candScratch)
	s.fn = func(worker, lo, hi int) {
		idx := lo / s.chunk
		s.col.processCandChunk(s.u, s.cand[lo:hi], worker, &s.chunkParts[idx], s.logits[worker], &s.stats[worker])
	}
	return s
}}

//mnnfast:pool-get
func getCandScratch(c *Column, u tensor.Vector, cand []int32, nItems, w int) *candScratch {
	s := candScratchPool.Get().(*candScratch)
	ed, chunk := c.mem.Dim(), c.opt.chunkSize()
	s.col, s.u, s.cand, s.chunk = c, u, cand, chunk
	s.chunkParts = resetParts(s.chunkParts, nItems, ed)
	if cap(s.logits) < w {
		logits := make([]tensor.Vector, w)
		copy(logits, s.logits[:cap(s.logits)])
		s.logits = logits
		s.stats = make([]Stats, w)
	}
	s.logits = s.logits[:w]
	s.stats = s.stats[:w]
	for i, l := range s.logits {
		if cap(l) < chunk {
			s.logits[i] = tensor.NewVector(chunk)
			continue
		}
		s.logits[i] = l[:chunk]
	}
	for i := range s.stats {
		s.stats[i] = Stats{}
	}
	return s
}

//mnnfast:pool-put
func putCandScratch(s *candScratch) {
	s.col, s.u, s.cand = nil, nil, nil
	candScratchPool.Put(s)
}

// InferCandidates processes only the memory rows listed in cand
// (ascending row ids) for question state u, merging the result into
// part. It is InferPartial over a gathered subset: chunk items cover
// candidate positions, each item is a self-contained stabilized
// Partial, and items merge in ascending order — bit-identical output
// at every worker count for a fixed candidate list. Streaming mode's
// prefetch pipeline does not apply (candidates are already a sparse
// gather); scratch is pooled, so the steady state allocates nothing.
//
//mnnfast:hotpath
func (c *Column) InferCandidates(u tensor.Vector, cand []int32, part *Partial) Stats {
	n := len(cand)
	if n == 0 {
		return Stats{}
	}
	cs := c.opt.chunkSize()
	nItems := (n + cs - 1) / cs
	w := c.sch.Workers()
	if w > nItems {
		w = nItems
	}
	s := getCandScratch(c, u, cand, nItems, w)
	c.sch.Run(0, n, cs, s.fn)
	var st Stats
	for i := range s.chunkParts {
		part.Merge(&s.chunkParts[i])
	}
	for b := range s.stats {
		st.Add(s.stats[b])
	}
	putCandScratch(s)
	return st
}

// processCandChunk is processChunk over gathered rows: inner products,
// chunk-stabilized exponentials, and the weighted sum for the
// candidate positions [0, len(cand)) of one chunk item. The loop
// structure (4-row Dot4/Axpy4 blocking, chunk-local skip rule) matches
// processChunk exactly, so an identity candidate list reproduces the
// dense chunk bit-for-bit.
//
//mnnfast:hotpath
func (c *Column) processCandChunk(u tensor.Vector, cand []int32, worker int, p *Partial, logits tensor.Vector, st *Stats) {
	mem, tr := c.mem, c.opt.Tracer
	ed := mem.Dim()
	rowBytes := ed * 4
	n := len(cand)
	t := logits[:n]

	in := mem.In
	i := 0
	for ; i+4 <= n; i += 4 {
		t[i], t[i+1], t[i+2], t[i+3] = tensor.Dot4(u,
			in.Row(int(cand[i])), in.Row(int(cand[i+1])),
			in.Row(int(cand[i+2])), in.Row(int(cand[i+3])))
	}
	for ; i < n; i++ {
		t[i] = tensor.Dot(u, in.Row(int(cand[i])))
	}
	if tr != nil {
		scratchBase := int64(worker) * int64(c.opt.chunkSize()) * 4
		for i := 0; i < n; i++ {
			memtrace.Touch(tr, memtrace.RegionQuestion, memtrace.OpRead, 0, rowBytes)
			memtrace.Touch(tr, memtrace.RegionMemIn, memtrace.OpRead, int64(cand[i])*int64(rowBytes), rowBytes)
			memtrace.Touch(tr, memtrace.RegionTempIn, memtrace.OpWrite, scratchBase+int64(i)*4, 4)
			memtrace.Touch(tr, memtrace.RegionTempIn, memtrace.OpRead, scratchBase+int64(i)*4, 4)
		}
	}
	st.InnerProductMuls += int64(n) * int64(ed)

	p.Max = t.Max()
	p.Sum = tensor.ExpInto(t, t, p.Max)
	st.Exps += int64(n)
	st.TotalRows += int64(n)

	th := c.opt.SkipThreshold
	out := mem.Out
	if th > 0 {
		cut := th * p.Sum
		for i := 0; i < n; i++ {
			e := t[i]
			if e < cut {
				st.SkippedRows++
				continue
			}
			if tr != nil {
				memtrace.Touch(tr, memtrace.RegionMemOut, memtrace.OpRead, int64(cand[i])*int64(rowBytes), rowBytes)
			}
			tensor.Axpy(e, out.Row(int(cand[i])), p.O)
			st.WeightedSumMuls += int64(ed)
		}
		return
	}
	i = 0
	for ; i+4 <= n; i += 4 {
		tensor.Axpy4(t[i], t[i+1], t[i+2], t[i+3],
			out.Row(int(cand[i])), out.Row(int(cand[i+1])),
			out.Row(int(cand[i+2])), out.Row(int(cand[i+3])), p.O)
	}
	for ; i < n; i++ {
		tensor.Axpy(t[i], out.Row(int(cand[i])), p.O)
	}
	if tr != nil {
		for i := 0; i < n; i++ {
			memtrace.Touch(tr, memtrace.RegionMemOut, memtrace.OpRead, int64(cand[i])*int64(rowBytes), rowBytes)
		}
	}
	st.WeightedSumMuls += int64(n) * int64(ed)
}

// TopK is the approximate top-k attention engine: an IVF probe over
// the index built from M_IN selects the candidate rows, and the
// column machinery streams only those rows through the lazy softmax.
// With nprobe >= the index's list count it degenerates to the column
// engine over every row (bit-identically, given the same chunk size).
type TopK struct {
	col    *Column
	idx    *sparse.TopKIndex
	nprobe int
}

// NewTopK builds a top-k engine over mem: an index over mem.In (built
// once, the story-ingest cost) plus a column engine for the candidate
// sweep. nprobe <= 0 selects sparse.DefaultNProbe at query time.
//
//mnnfast:coldpath
func NewTopK(mem *Memory, opt Options, ixOpt sparse.IndexOptions, nprobe int) *TopK {
	return NewTopKWithIndex(mem, opt, sparse.BuildTopKIndex(mem.In, ixOpt), nprobe)
}

// NewTopKWithIndex is NewTopK around an already-built index, so a probe
// sweep can reuse one index (the expensive artifact) across many
// engines. idx must have been built over mem.In.
//
//mnnfast:coldpath
func NewTopKWithIndex(mem *Memory, opt Options, idx *sparse.TopKIndex, nprobe int) *TopK {
	if idx.Rows() != mem.NS() {
		panic(fmt.Sprintf("core: index over %d rows used with %d-row memory", idx.Rows(), mem.NS()))
	}
	return &TopK{
		col:    NewColumn(mem, opt),
		idx:    idx,
		nprobe: nprobe,
	}
}

// Index exposes the engine's IVF index for observability and tests.
//
//mnnfast:coldpath
func (t *TopK) Index() *sparse.TopKIndex { return t.idx }

// Name implements Engine.
//
//mnnfast:coldpath
func (t *TopK) Name() string { return "mnnfast-topk" }

// Infer implements Engine: probe, then candidate-set lazy softmax.
//
//mnnfast:hotpath
func (t *TopK) Infer(u, o tensor.Vector) Stats {
	ps := sparse.GetProbeScratch()
	cand, _ := t.idx.Candidates(u, t.nprobe, ps)
	part := GetPartial(t.col.mem.Dim())
	st := t.col.InferCandidates(u, cand, part)
	st.Divisions += part.Finalize(o)
	PutPartial(part)
	sparse.PutProbeScratch(ps)
	st.Inferences = 1
	if tr := t.col.opt.Tracer; tr != nil {
		memtrace.Touch(tr, memtrace.RegionOutput, memtrace.OpWrite, 0, t.col.mem.Dim()*4)
	}
	return st
}
