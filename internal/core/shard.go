package core

import (
	"fmt"
	"sync"

	"mnnfast/internal/sched"
	"mnnfast/internal/tensor"
)

// Sharded distributes a memory across multiple nodes (the paper's
// scale-out architecture, §3.1 and §5.3). Each shard runs a column
// engine over a contiguous row range; a question fans out to every
// shard and the O(ed) partials merge at the coordinator before one
// lazy-softmax division. The merge traffic is what the paper argues is
// negligible — per node it is one Partial: ed+2 floats, independent of
// ns.
//
// Shard fan-out rides the work-stealing scheduler over persistent
// workers (no goroutine spawn per query), shard partials live in pooled
// scratch (no allocation per query), and the partials merge in
// ascending shard order, so results are bit-identical whether shards
// run in sequence or concurrently.
type Sharded struct {
	mem     *Memory
	engines []*Column
	bounds  []int // len(engines)+1 row boundaries
	sch     *sched.Scheduler
	ownPool *tensor.Pool // created when parallel with no caller pool; closed by Close
}

// NewSharded splits mem into shards equal-sized row ranges, each served
// by a column engine configured with opt. If parallel is true the
// shards run concurrently (modelling distinct nodes/devices) on
// opt.Pool's persistent workers — or, when opt.Pool is nil, on a pool
// the Sharded owns (one worker per shard; release it with Close).
// Otherwise shards run in sequence (useful for deterministic traces);
// either way the results are bitwise identical.
//
//mnnfast:coldpath
func NewSharded(mem *Memory, shards int, opt Options, parallel bool) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("core: NewSharded with %d shards", shards)
	}
	if shards > mem.NS() {
		return nil, fmt.Errorf("core: %d shards exceed %d memory rows", shards, mem.NS())
	}
	s := &Sharded{mem: mem}
	per := (mem.NS() + shards - 1) / shards
	for lo := 0; lo < mem.NS(); lo += per {
		s.bounds = append(s.bounds, lo)
		s.engines = append(s.engines, NewColumn(mem, opt))
	}
	s.bounds = append(s.bounds, mem.NS())
	if parallel {
		pool := opt.Pool
		if pool == nil {
			pool = tensor.NewPool(len(s.engines))
			s.ownPool = pool
		}
		s.sch = sched.New(pool)
	}
	return s, nil
}

// Close releases the worker pool the Sharded created for itself (when
// constructed parallel without a caller-provided pool). It is a no-op
// otherwise; callers that passed their own Options.Pool close that pool
// themselves.
//
//mnnfast:coldpath
func (s *Sharded) Close() {
	if s.ownPool != nil {
		s.ownPool.Close()
	}
}

// Scheduler exposes the shard fan-out scheduler for observability; it
// is nil for a sequential Sharded.
//
//mnnfast:coldpath
func (s *Sharded) Scheduler() *sched.Scheduler { return s.sch }

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.engines) }

// Name implements Engine.
//
//mnnfast:coldpath
func (s *Sharded) Name() string {
	return fmt.Sprintf("sharded(%d×%s)", len(s.engines), s.engines[0].Name())
}

// shardScratch is the pooled per-call state of a Sharded inference:
// shard-major partials (shard i, question q at index i·nq+q), pointer
// views for the batched partial API, per-shard stats, and the dispatch
// closures — built once per pooled object so the steady state allocates
// nothing.
type shardScratch struct {
	s     *Sharded
	u     tensor.Vector  // single-question input
	ub    *tensor.Matrix // batched input
	nq    int
	parts []Partial                // len shards×nq, shard-major
	pptrs []*Partial               // pointer views into parts, same layout
	stats []Stats                  // one per shard
	fn    func(worker, lo, hi int) // single-question: item = shard
	bfn   func(worker, lo, hi int) // batched: item = shard
}

var shardScratchPool = sync.Pool{New: func() any {
	sc := new(shardScratch)
	sc.fn = func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			sc.stats[i] = sc.s.engines[i].InferPartial(sc.u, &sc.parts[i], sc.s.bounds[i], sc.s.bounds[i+1])
		}
	}
	sc.bfn = func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			sc.stats[i] = sc.s.engines[i].InferBatchPartial(sc.ub, sc.pptrs[i*sc.nq:(i+1)*sc.nq], sc.s.bounds[i], sc.s.bounds[i+1])
		}
	}
	return sc
}}

//mnnfast:pool-get
func getShardScratch(s *Sharded, nq, ed int) *shardScratch {
	sc := shardScratchPool.Get().(*shardScratch)
	k := len(s.engines)
	sc.s, sc.nq = s, nq
	sc.parts = resetParts(sc.parts, k*nq, ed)
	if cap(sc.pptrs) < k*nq {
		sc.pptrs = make([]*Partial, k*nq)
	}
	if cap(sc.stats) < k {
		sc.stats = make([]Stats, k)
	}
	sc.pptrs = sc.pptrs[:k*nq]
	// Rebuild the views every call: resetParts may have regrown the
	// backing array, and a pooled scratch may come back at another shape.
	for j := range sc.pptrs {
		sc.pptrs[j] = &sc.parts[j]
	}
	sc.stats = sc.stats[:k]
	for i := range sc.stats {
		sc.stats[i] = Stats{}
	}
	return sc
}

//mnnfast:pool-put
func putShardScratch(sc *shardScratch) {
	sc.s, sc.u, sc.ub = nil, nil, nil
	shardScratchPool.Put(sc)
}

// Infer implements Engine: scatter the question, gather and merge the
// partials in shard order, finalize once.
//
//mnnfast:hotpath
func (s *Sharded) Infer(u, o tensor.Vector) Stats {
	ed := s.mem.Dim()
	k := len(s.engines)
	sc := getShardScratch(s, 1, ed)
	sc.u = u
	s.sch.Run(0, k, 1, sc.fn) // nil scheduler (sequential mode) runs in shard order
	total := GetPartial(ed)
	var st Stats
	for i := 0; i < k; i++ {
		total.Merge(&sc.parts[i])
		st.Add(sc.stats[i])
	}
	st.Divisions += total.Finalize(o)
	PutPartial(total)
	putShardScratch(sc)
	st.Inferences = 1
	return st
}

// SyncBytes returns the scale-out synchronization payload per question:
// every shard ships one Partial (ed floats + max + sum) to the
// coordinator.
func (s *Sharded) SyncBytes() int64 {
	return int64(len(s.engines)) * int64(s.mem.Dim()+2) * 4
}

// InferBatch implements BatchEngine: every shard processes the whole
// question batch over its row range (one pass over its shard), then the
// per-question partials merge across shards in shard order.
//
//mnnfast:hotpath
func (s *Sharded) InferBatch(u, o *tensor.Matrix) Stats {
	checkBatchShapes(s.mem, u, o)
	nq := u.Rows
	ed := s.mem.Dim()
	k := len(s.engines)
	sc := getShardScratch(s, nq, ed)
	sc.ub = u
	s.sch.Run(0, k, 1, sc.bfn)

	var st Stats
	for i := range sc.stats {
		st.Add(sc.stats[i])
	}
	total := GetPartial(ed)
	for q := 0; q < nq; q++ {
		total.reset(ed)
		for i := 0; i < k; i++ {
			total.Merge(&sc.parts[i*nq+q])
		}
		st.Divisions += total.Finalize(o.Row(q))
	}
	PutPartial(total)
	putShardScratch(sc)
	st.Inferences = int64(nq)
	return st
}
