package core

import (
	"fmt"
	"sync"

	"mnnfast/internal/tensor"
)

// Sharded distributes a memory across multiple nodes (the paper's
// scale-out architecture, §3.1 and §5.3). Each shard runs a column
// engine over a contiguous row range; a question fans out to every
// shard and the O(ed) partials merge at the coordinator before one
// lazy-softmax division. The merge traffic is what the paper argues is
// negligible — per node it is one Partial: ed+2 floats, independent of
// ns.
type Sharded struct {
	mem     *Memory
	engines []*Column
	bounds  []int // len(engines)+1 row boundaries
	par     bool  // run shards concurrently
}

// NewSharded splits mem into shards equal-sized row ranges, each served
// by a column engine configured with opt. If parallel is true the
// shards run concurrently (modelling distinct nodes/devices); otherwise
// they run in sequence (useful for deterministic traces).
//
//mnnfast:coldpath
func NewSharded(mem *Memory, shards int, opt Options, parallel bool) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("core: NewSharded with %d shards", shards)
	}
	if shards > mem.NS() {
		return nil, fmt.Errorf("core: %d shards exceed %d memory rows", shards, mem.NS())
	}
	s := &Sharded{mem: mem, par: parallel}
	per := (mem.NS() + shards - 1) / shards
	for lo := 0; lo < mem.NS(); lo += per {
		s.bounds = append(s.bounds, lo)
		s.engines = append(s.engines, NewColumn(mem, opt))
	}
	s.bounds = append(s.bounds, mem.NS())
	return s, nil
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.engines) }

// Name implements Engine.
//
//mnnfast:coldpath
func (s *Sharded) Name() string {
	return fmt.Sprintf("sharded(%d×%s)", len(s.engines), s.engines[0].Name())
}

// Infer implements Engine: scatter the question, gather and merge the
// partials, finalize once.
func (s *Sharded) Infer(u, o tensor.Vector) Stats {
	ed := s.mem.Dim()
	parts := make([]*Partial, len(s.engines))
	stats := make([]Stats, len(s.engines))
	run := func(i int) {
		parts[i] = GetPartial(ed)
		stats[i] = s.engines[i].InferPartial(u, parts[i], s.bounds[i], s.bounds[i+1])
	}
	if s.par {
		var wg sync.WaitGroup
		for i := range s.engines {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range s.engines {
			run(i)
		}
	}
	total := GetPartial(ed)
	var st Stats
	for i := range parts {
		total.Merge(parts[i])
		PutPartial(parts[i])
		st.Add(stats[i])
	}
	st.Divisions += total.Finalize(o)
	PutPartial(total)
	st.Inferences = 1
	return st
}

// SyncBytes returns the scale-out synchronization payload per question:
// every shard ships one Partial (ed floats + max + sum) to the
// coordinator.
func (s *Sharded) SyncBytes() int64 {
	return int64(len(s.engines)) * int64(s.mem.Dim()+2) * 4
}

// InferBatch implements BatchEngine: every shard processes the whole
// question batch over its row range (one pass over its shard), then the
// per-question partials merge across shards.
func (s *Sharded) InferBatch(u, o *tensor.Matrix) Stats {
	checkBatchShapes(s.mem, u, o)
	nq := u.Rows
	ed := s.mem.Dim()

	shardParts := make([][]*Partial, len(s.engines))
	stats := make([]Stats, len(s.engines))
	run := func(i int) {
		parts := make([]*Partial, nq)
		for q := range parts {
			parts[q] = GetPartial(ed)
		}
		stats[i] = s.engines[i].InferBatchPartial(u, parts, s.bounds[i], s.bounds[i+1])
		shardParts[i] = parts
	}
	if s.par {
		var wg sync.WaitGroup
		for i := range s.engines {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range s.engines {
			run(i)
		}
	}

	var st Stats
	for i := range s.engines {
		st.Add(stats[i])
	}
	total := GetPartial(ed)
	for q := 0; q < nq; q++ {
		total.reset(ed)
		for i := range s.engines {
			total.Merge(shardParts[i][q])
			PutPartial(shardParts[i][q])
		}
		st.Divisions += total.Finalize(o.Row(q))
	}
	PutPartial(total)
	st.Inferences = int64(nq)
	return st
}
