package core

import (
	"mnnfast/internal/memtrace"
	"mnnfast/internal/tensor"
)

// expf is the engines' scalar exponential — the float32 fast-exp
// (see tensor.Expf for the documented error bound).
func expf(x float32) float32 { return tensor.Expf(x) }

// Baseline is the layer-by-layer MemNN inference of the paper's
// Figure 5(a): it materializes the full ns-length intermediate vectors
// T_IN (inner products), P_exp (exponentials) and P (probabilities)
// between layers. At large ns these vectors exceed the shared cache and
// spill to DRAM — the memory-bandwidth bottleneck of §2.2.1.
type Baseline struct {
	mem  *Memory
	opt  Options
	tIn  tensor.Vector // ns
	pExp tensor.Vector // ns
	p    tensor.Vector // ns
}

// NewBaseline returns a baseline engine over mem.
func NewBaseline(mem *Memory, opt Options) *Baseline {
	ns := mem.NS()
	return &Baseline{
		mem:  mem,
		opt:  opt,
		tIn:  tensor.NewVector(ns),
		pExp: tensor.NewVector(ns),
		p:    tensor.NewVector(ns),
	}
}

// Name implements Engine.
func (b *Baseline) Name() string { return "baseline" }

// Infer implements Engine with the three-layer lock-step dataflow.
func (b *Baseline) Infer(u, o tensor.Vector) Stats {
	mem, tr, pool := b.mem, b.opt.Tracer, b.opt.Pool
	ns, ed := mem.NS(), mem.Dim()
	rowBytes := ed * 4
	var st Stats
	st.Inferences = 1

	// Layer 1 — inner product: T_IN = u·M_INᵀ. Reads all of M_IN,
	// writes the ns-sized T_IN spill.
	pool.ParallelFor(ns, 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			memtrace.Touch(tr, memtrace.RegionQuestion, memtrace.OpRead, 0, rowBytes)
			memtrace.Touch(tr, memtrace.RegionMemIn, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
			b.tIn[i] = tensor.Dot(u, mem.In.Row(i))
			memtrace.Touch(tr, memtrace.RegionTempIn, memtrace.OpWrite, int64(i)*4, 4)
		}
	})
	st.InnerProductMuls = int64(ns) * int64(ed)
	st.SpillBytes += int64(ns) * 4 // T_IN written

	// Layer 2 — softmax over T_IN, in the three lock-step sub-steps of
	// the paper's CPU implementation (§4.1.1): exponentiation, sum,
	// normalization. Each sub-step re-reads an ns-sized vector.
	max := b.tIn.Max()
	pool.ParallelFor(ns, 1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			memtrace.Touch(tr, memtrace.RegionTempIn, memtrace.OpRead, int64(i)*4, 4)
			b.pExp[i] = expf(b.tIn[i] - max)
			memtrace.Touch(tr, memtrace.RegionTempPexp, memtrace.OpWrite, int64(i)*4, 4)
		}
	})
	st.Exps = int64(ns)
	st.SpillBytes += int64(ns) * 4 // T_IN re-read
	st.SpillBytes += int64(ns) * 4 // P_exp written

	var sum float64
	for i := 0; i < ns; i++ {
		memtrace.Touch(tr, memtrace.RegionTempPexp, memtrace.OpRead, int64(i)*4, 4)
		sum += float64(b.pExp[i])
	}
	st.SpillBytes += int64(ns) * 4 // P_exp re-read
	fsum := float32(sum)

	pool.ParallelFor(ns, 1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			memtrace.Touch(tr, memtrace.RegionTempPexp, memtrace.OpRead, int64(i)*4, 4)
			b.p[i] = b.pExp[i] / fsum
			memtrace.Touch(tr, memtrace.RegionTempP, memtrace.OpWrite, int64(i)*4, 4)
		}
	})
	st.Divisions = int64(ns) // one division per story sentence (Fig 5a step 2-2)
	st.SpillBytes += int64(ns) * 4 * 2

	// Layer 3 — weighted sum: o = Σ pᵢ·m_iᴼᵁᵀ. Reads all of M_OUT and
	// re-reads the P spill.
	if tr != nil {
		for i := 0; i < ns; i++ {
			memtrace.Touch(tr, memtrace.RegionTempP, memtrace.OpRead, int64(i)*4, 4)
			memtrace.Touch(tr, memtrace.RegionMemOut, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
		}
		memtrace.Touch(tr, memtrace.RegionOutput, memtrace.OpWrite, 0, rowBytes)
	}
	tensor.VecMat(pool, b.p, mem.Out, o)
	st.WeightedSumMuls = int64(ns) * int64(ed)
	st.TotalRows = int64(ns)
	st.SpillBytes += int64(ns) * 4 // P re-read
	return st
}
