// Package core implements the MnnFast inference engines — the paper's
// primary contribution. Given a question state vector u and the
// embedded input/output memories M_IN and M_OUT, both engines compute
// the response vector
//
//	o = Σᵢ Softmax(u·M_INᵀ)ᵢ · m_iᴼᵁᵀ
//
// The Baseline engine follows the layer-by-layer dataflow of the
// paper's Figure 5(a): inner product → softmax → weighted sum, with
// ns-sized intermediate vectors (T_IN, P_exp, P) materialized between
// layers — the data spills that saturate memory bandwidth at scale.
//
// The Column engine implements the paper's column-based algorithm with
// lazy softmax (Figure 5(b), Equation 4): the memories are processed in
// chunks; each chunk computes its inner products, exponentials, partial
// sum and partial weighted sum with chunk-sized scratch that stays
// cache-resident; softmax's division happens once at the end, per
// output element (ed divisions instead of ns). Optional extensions are
// streaming (prefetch of the next chunk overlapped with compute),
// zero-skipping (bypassing weighted-sum rows whose exponential falls
// below a threshold), and scale-out sharding (partials merge across
// workers or nodes).
package core

import (
	"fmt"

	"mnnfast/internal/memtrace"
	"mnnfast/internal/tensor"
)

// Memory is the embedded knowledge database: the input and output
// memories of the paper's Figure 2, each ns×ed.
type Memory struct {
	In  *tensor.Matrix // M_IN, ns×ed
	Out *tensor.Matrix // M_OUT, ns×ed
}

// NewMemory validates and wraps the two memory matrices.
func NewMemory(in, out *tensor.Matrix) (*Memory, error) {
	if in == nil || out == nil {
		return nil, fmt.Errorf("core: nil memory matrix")
	}
	if in.Rows != out.Rows || in.Cols != out.Cols {
		return nil, fmt.Errorf("core: memory shape mismatch: in %dx%d, out %dx%d",
			in.Rows, in.Cols, out.Rows, out.Cols)
	}
	if in.Rows == 0 || in.Cols == 0 {
		return nil, fmt.Errorf("core: empty memory %dx%d", in.Rows, in.Cols)
	}
	return &Memory{In: in, Out: out}, nil
}

// NS returns the number of story sentences ns.
func (m *Memory) NS() int { return m.In.Rows }

// Dim returns the embedding dimension ed.
func (m *Memory) Dim() int { return m.In.Cols }

// Options configures an engine.
type Options struct {
	// ChunkSize is the number of sentences per column chunk; 0 selects
	// the paper's CPU default of 1000 (Table 1). The baseline engine
	// ignores it.
	ChunkSize int
	// Streaming enables prefetching the next chunk while the current
	// one computes (column engine only).
	Streaming bool
	// PrefetchDepth is how many chunks the streaming prefetcher may run
	// ahead of compute; 0 selects 1 (the paper's double buffer). Deeper
	// pipelines tolerate more latency jitter at the cost of cache
	// footprint — the BenchmarkPrefetchDepth ablation quantifies it.
	PrefetchDepth int
	// SkipThreshold enables zero-skipping (§3.2): a weighted-sum row is
	// bypassed when its exponential is below the threshold times the
	// running exponential sum — a single-pass approximation of the
	// paper's probability test p_i < th_skip. Because the running sum
	// only grows, the approximation is conservative: a row skipped
	// under the running normalizer would also be skipped under the
	// final one. 0 disables skipping.
	SkipThreshold float32
	// Pool provides worker parallelism; nil runs serially.
	Pool *tensor.Pool
	// Tracer receives logical memory accesses for the cache simulator;
	// nil disables tracing.
	Tracer memtrace.Toucher
}

func (o Options) chunkSize() int {
	if o.ChunkSize <= 0 {
		return 1000
	}
	return o.ChunkSize
}

// Stats counts the work one or more Infer calls performed. The
// experiment harness derives the paper's per-operation latency
// breakdowns (Fig 9a) and zero-skipping compute-reduction numbers from
// these counters.
type Stats struct {
	InnerProductMuls int64 // multiplies in u·M_INᵀ
	WeightedSumMuls  int64 // multiplies in Σ pᵢ·m_iᴼᵁᵀ (after skipping)
	Exps             int64 // exponential evaluations
	Divisions        int64 // softmax division operations
	SkippedRows      int64 // weighted-sum rows bypassed by zero-skipping
	TotalRows        int64 // weighted-sum rows considered
	SpillBytes       int64 // intermediate-vector bytes written + re-read
	Inferences       int64 // Infer calls accumulated
}

// Add accumulates other into s.
//
//mnnfast:hotpath
func (s *Stats) Add(other Stats) {
	s.InnerProductMuls += other.InnerProductMuls
	s.WeightedSumMuls += other.WeightedSumMuls
	s.Exps += other.Exps
	s.Divisions += other.Divisions
	s.SkippedRows += other.SkippedRows
	s.TotalRows += other.TotalRows
	s.SpillBytes += other.SpillBytes
	s.Inferences += other.Inferences
}

// SkipFraction returns the fraction of weighted-sum rows bypassed.
func (s Stats) SkipFraction() float64 {
	if s.TotalRows == 0 {
		return 0
	}
	return float64(s.SkippedRows) / float64(s.TotalRows)
}

// TotalMuls returns all multiply operations counted.
func (s Stats) TotalMuls() int64 { return s.InnerProductMuls + s.WeightedSumMuls }

// Engine computes response vectors against a fixed Memory.
type Engine interface {
	// Infer computes the response vector for question state u into o
	// (length ed each) and returns the work statistics of this call.
	Infer(u, o tensor.Vector) Stats
	// Name identifies the engine variant in experiment output.
	Name() string
}

// Partial is a mergeable fragment of a column-based inference: the
// running maximum shift, the partial exponential sum, and the partial
// (shifted) weighted sum. Partials are what sharded/multi-node MnnFast
// exchanges — their size is O(ed), which is the paper's argument for
// negligible scale-out synchronization cost (§3.1).
type Partial struct {
	Max float32       // shift applied to the exponentials (-Inf when empty)
	Sum float32       // Σ exp(lᵢ - Max)
	O   tensor.Vector // Σ exp(lᵢ - Max)·m_iᴼᵁᵀ
}

// NewPartial returns an empty partial of dimension ed.
func NewPartial(ed int) *Partial {
	return &Partial{Max: negInf, Sum: 0, O: tensor.NewVector(ed)}
}

const negInf = float32(-3.4e38)

// Merge folds other into p, rescaling whichever side has the smaller
// shift so both are expressed relative to the common maximum.
//
//mnnfast:hotpath
func (p *Partial) Merge(other *Partial) {
	if other.Sum == 0 && other.Max == negInf {
		return
	}
	if p.Sum == 0 && p.Max == negInf {
		p.Max = other.Max
		p.Sum = other.Sum
		copy(p.O, other.O)
		return
	}
	if other.Max > p.Max {
		scale := expf(p.Max - other.Max)
		p.Sum = p.Sum*scale + other.Sum
		p.O.Scale(scale)
		p.O.AddInPlace(other.O)
		p.Max = other.Max
		return
	}
	scale := expf(other.Max - p.Max)
	p.Sum += other.Sum * scale
	tensor.Axpy(scale, other.O, p.O)
}

// Finalize divides the partial weighted sum by the exponential sum —
// the paper's lazy softmax division — writing the response into o and
// returning the number of divisions performed (ed, not ns).
//
//mnnfast:hotpath
func (p *Partial) Finalize(o tensor.Vector) int64 {
	inv := float32(1) / p.Sum
	for i, x := range p.O {
		o[i] = x * inv
	}
	return int64(len(o))
}
