package core

import (
	"math/rand"
	"testing"

	"mnnfast/internal/memtrace"
	"mnnfast/internal/tensor"
)

func TestBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	ns, ed, nq := 1500, 32, 7
	mem := randomMemory(t, rng, ns, ed)
	u := tensor.RandomMatrix(rng, nq, ed, 1)

	single := NewColumn(mem, Options{ChunkSize: 128})
	want := tensor.NewMatrix(nq, ed)
	for q := 0; q < nq; q++ {
		single.Infer(u.Row(q), want.Row(q))
	}

	for _, mk := range []func() BatchEngine{
		func() BatchEngine { return NewBaseline(mem, Options{}) },
		func() BatchEngine { return NewColumn(mem, Options{ChunkSize: 128}) },
		func() BatchEngine { return NewColumn(mem, Options{ChunkSize: 64, Streaming: true}) },
	} {
		eng := mk()
		got := tensor.NewMatrix(nq, ed)
		st := eng.InferBatch(u, got)
		if !tensor.Equal(want, got, 1e-4) {
			t.Errorf("%s: batch results differ from single-question inference", eng.Name())
		}
		if st.Inferences != int64(nq) {
			t.Errorf("%s: stats report %d inferences, want %d", eng.Name(), st.Inferences, nq)
		}
	}
}

func TestBatchSkipReducesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ns, ed, nq := 3000, 24, 4
	mem := randomMemory(t, rng, ns, ed)
	for i := range mem.In.Data {
		mem.In.Data[i] *= 4
	}
	u := tensor.RandomMatrix(rng, nq, ed, 1)
	o := tensor.NewMatrix(nq, ed)

	exact := NewColumn(mem, Options{ChunkSize: 256}).InferBatch(u, o)
	skip := NewColumn(mem, Options{ChunkSize: 256, SkipThreshold: 0.01}).InferBatch(u, o)
	if skip.SkippedRows == 0 || skip.WeightedSumMuls >= exact.WeightedSumMuls {
		t.Errorf("batch zero-skipping ineffective: skipped=%d muls %d vs %d",
			skip.SkippedRows, skip.WeightedSumMuls, exact.WeightedSumMuls)
	}
}

func TestBatchMemoryReuse(t *testing.T) {
	// The point of batching: M_IN is read once per batch, not once per
	// question.
	rng := rand.New(rand.NewSource(22))
	ns, ed, nq := 1024, 16, 8
	mem := randomMemory(t, rng, ns, ed)
	u := tensor.RandomMatrix(rng, nq, ed, 1)
	o := tensor.NewMatrix(nq, ed)

	var batched memtrace.Counter
	NewColumn(mem, Options{ChunkSize: 128, Tracer: &batched}).InferBatch(u, o)
	var looped memtrace.Counter
	loopEng := NewColumn(mem, Options{ChunkSize: 128, Tracer: &looped})
	for q := 0; q < nq; q++ {
		loopEng.Infer(u.Row(q), o.Row(q))
	}

	memBytes := int64(ns * ed * 4)
	if got := batched.Bytes[memtrace.RegionMemIn][memtrace.OpRead]; got != memBytes {
		t.Errorf("batched M_IN traffic = %d, want one pass = %d", got, memBytes)
	}
	if got := looped.Bytes[memtrace.RegionMemIn][memtrace.OpRead]; got != memBytes*int64(nq) {
		t.Errorf("looped M_IN traffic = %d, want %d passes = %d", got, nq, memBytes*int64(nq))
	}
}

func TestBatchShapePanics(t *testing.T) {
	mem := randomMemory(t, rand.New(rand.NewSource(23)), 8, 4)
	cases := []struct{ u, o *tensor.Matrix }{
		{tensor.NewMatrix(2, 5), tensor.NewMatrix(2, 4)}, // wrong u dim
		{tensor.NewMatrix(2, 4), tensor.NewMatrix(3, 4)}, // row mismatch
		{tensor.NewMatrix(0, 4), tensor.NewMatrix(0, 4)}, // empty batch
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad batch shapes accepted", i)
				}
			}()
			NewColumn(mem, Options{}).InferBatch(c.u, c.o)
		}()
	}
}

func TestShardedBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ns, ed, nq := 2000, 24, 5
	mem := randomMemory(t, rng, ns, ed)
	u := tensor.RandomMatrix(rng, nq, ed, 1)

	want := tensor.NewMatrix(nq, ed)
	base := NewBaseline(mem, Options{})
	for q := 0; q < nq; q++ {
		base.Infer(u.Row(q), want.Row(q))
	}

	for _, par := range []bool{false, true} {
		s, err := NewSharded(mem, 3, Options{ChunkSize: 100}, par)
		if err != nil {
			t.Fatal(err)
		}
		got := tensor.NewMatrix(nq, ed)
		st := s.InferBatch(u, got)
		if !tensor.Equal(want, got, 1e-4) {
			t.Errorf("par=%v: sharded batch differs from baseline", par)
		}
		if st.Inferences != int64(nq) {
			t.Errorf("par=%v: %d inferences, want %d", par, st.Inferences, nq)
		}
		if st.Divisions != int64(nq*ed) {
			t.Errorf("par=%v: %d divisions, want nq×ed = %d", par, st.Divisions, nq*ed)
		}
	}
}

func TestShardedImplementsBatchEngine(t *testing.T) {
	var _ BatchEngine = (*Sharded)(nil)
}
