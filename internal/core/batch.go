package core

import (
	"fmt"

	"mnnfast/internal/memtrace"
	"mnnfast/internal/tensor"
)

// BatchEngine is implemented by engines that answer many questions in
// one pass over the memories. Batching is how the paper's GPU
// implementation works (§4.1.2): the inner product becomes a
// matrix-matrix multiplication between M_IN and the nq×ed question
// matrix, amortizing each memory row across the whole batch.
type BatchEngine interface {
	Engine
	// InferBatch computes one response per row of u (nq×ed) into the
	// corresponding row of o (nq×ed).
	InferBatch(u, o *tensor.Matrix) Stats
}

// InferBatch answers every question in u with one pass per question —
// the baseline has no cross-question reuse to exploit beyond the OS
// page cache, which is exactly the inefficiency batching fixes.
func (b *Baseline) InferBatch(u, o *tensor.Matrix) Stats {
	checkBatchShapes(b.mem, u, o)
	var st Stats
	for q := 0; q < u.Rows; q++ {
		st.Add(b.Infer(u.Row(q), o.Row(q)))
	}
	return st
}

// InferBatch processes all questions chunk-by-chunk: each memory chunk
// is loaded once and used by every question before moving on, so the
// memories stream from DRAM exactly once per batch instead of once per
// question. Partials are per-question; the lazy-softmax division runs
// once per question at the end.
//
// Scratch comes from a process-wide pool, so steady-state calls at a
// fixed batch shape allocate nothing; callers running a serving loop
// can instead own a BatchScratch and use InferBatchInto.
//
//mnnfast:hotpath
func (c *Column) InferBatch(u, o *tensor.Matrix) Stats {
	s := batchScratchPool.Get().(*BatchScratch)
	st := c.InferBatchInto(u, o, s)
	batchScratchPool.Put(s)
	return st
}

// InferBatchInto is InferBatch with caller-provided scratch. The
// scratch is reshaped (grow-only) to fit this call and may be reused
// across calls of any shape; it must not be shared between concurrent
// calls.
//
//mnnfast:hotpath
func (c *Column) InferBatchInto(u, o *tensor.Matrix, s *BatchScratch) Stats {
	checkBatchShapes(c.mem, u, o)
	nq := u.Rows
	ed := c.mem.Dim()
	ns := c.mem.NS()
	s.ensure(nq, ed, min(c.opt.chunkSize(), ns))
	st := c.inferBatchPartial(u, s.parts, 0, ns, &s.logits)
	for q := 0; q < nq; q++ {
		st.Divisions += s.parts[q].Finalize(o.Row(q))
		memtrace.Touch(c.opt.Tracer, memtrace.RegionOutput, memtrace.OpWrite, int64(q*ed*4), ed*4)
	}
	st.Inferences = int64(nq)
	return st
}

// InferBatchPartial runs the chunk loop for all questions over rows
// [lo, hi), merging into parts (one partial per question). The chunk
// logits block comes from the tensor arena, so the call is
// allocation-free at steady state.
//
//mnnfast:hotpath
func (c *Column) InferBatchPartial(u *tensor.Matrix, parts []*Partial, lo, hi int) Stats {
	if hi <= lo {
		return Stats{}
	}
	m := tensor.GetMatrix(min(c.opt.chunkSize(), hi-lo), u.Rows)
	st := c.inferBatchPartial(u, parts, lo, hi, m)
	tensor.PutMatrix(m)
	return st
}

// inferBatchPartial is the batched chunk loop over a caller-provided
// chunk×nq logits block. All per-question inner loops walk contiguous
// row slices of the block (never element-wise At/Set accessor calls),
// and the chunk inner products are 4-question register-blocked.
//
//mnnfast:hotpath
func (c *Column) inferBatchPartial(u *tensor.Matrix, parts []*Partial, lo, hi int, logits *tensor.Matrix) Stats {
	mem, tr := c.mem, c.opt.Tracer
	cs := c.opt.chunkSize()
	ed := mem.Dim()
	rowBytes := ed * 4
	nq := u.Rows
	th := c.opt.SkipThreshold
	cmaxp := tensor.GetVector(nq) // per-question chunk maxima
	cmax := *cmaxp

	var st Stats
	for cLo := lo; cLo < hi; cLo += cs {
		cHi := min(cLo+cs, hi)
		n := cHi - cLo
		if c.opt.Streaming {
			c.prefetchChunk(cLo, cHi)
		}
		// Inner products for the whole batch against this chunk: each
		// chunk row is read once and dotted with four questions per
		// pass, writing one contiguous logits row.
		for i := cLo; i < cHi; i++ {
			row := mem.In.Row(i)
			lr := logits.Row(i - cLo)[:nq]
			q := 0
			for ; q+4 <= nq; q += 4 {
				lr[q], lr[q+1], lr[q+2], lr[q+3] =
					tensor.Dot4(row, u.Row(q), u.Row(q+1), u.Row(q+2), u.Row(q+3))
			}
			for ; q < nq; q++ {
				lr[q] = tensor.Dot(row, u.Row(q))
			}
		}
		if tr != nil {
			for i := cLo; i < cHi; i++ {
				memtrace.Touch(tr, memtrace.RegionMemIn, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
			}
		}
		st.InnerProductMuls += int64(n) * int64(nq) * int64(ed)

		// Per-question running-max maintenance over the chunk, folded
		// column-wise from the row slices.
		copy(cmax, logits.Row(0)[:nq])
		for i := 1; i < n; i++ {
			lr := logits.Row(i)[:nq]
			for q, x := range lr {
				if x > cmax[q] {
					cmax[q] = x
				}
			}
		}
		for q := 0; q < nq; q++ {
			p := parts[q]
			if cmax[q] > p.Max {
				if p.Max != negInf && p.Sum != 0 {
					scale := expf(p.Max - cmax[q])
					p.Sum *= scale
					p.O.Scale(scale)
				}
				p.Max = cmax[q]
			}
		}

		// Exponentials for the whole chunk × batch, accumulated into
		// each question's P_sum before any skip decision (same sound,
		// convergent rule as the single-question engine). The logit
		// slots are reused for the exponentials.
		for i := 0; i < n; i++ {
			lr := logits.Row(i)[:nq]
			for q, x := range lr {
				e := tensor.Expf(x - parts[q].Max)
				lr[q] = e
				parts[q].Sum += e
			}
		}
		st.Exps += int64(n) * int64(nq)
		st.TotalRows += int64(n) * int64(nq)

		// Weighted sum with zero-skipping: each M_OUT row is read once
		// and accumulated into every question that does not skip it.
		for i := cLo; i < cHi; i++ {
			outRow := mem.Out.Row(i)
			lr := logits.Row(i - cLo)[:nq]
			touched := false
			for q, e := range lr {
				p := parts[q]
				if th > 0 && e < th*p.Sum {
					st.SkippedRows++
					continue
				}
				if !touched {
					memtrace.Touch(tr, memtrace.RegionMemOut, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
					touched = true
				}
				tensor.Axpy(e, outRow, p.O)
				st.WeightedSumMuls += int64(ed)
			}
		}
	}
	tensor.PutVector(cmaxp)
	return st
}

func checkBatchShapes(mem *Memory, u, o *tensor.Matrix) {
	if u.Cols != mem.Dim() || o.Cols != mem.Dim() || u.Rows != o.Rows || u.Rows == 0 {
		panic(fmt.Sprintf("core: InferBatch shapes u=%dx%d o=%dx%d for memory dim %d",
			u.Rows, u.Cols, o.Rows, o.Cols, mem.Dim()))
	}
}
