package core

import (
	"fmt"

	"mnnfast/internal/memtrace"
	"mnnfast/internal/tensor"
)

// BatchEngine is implemented by engines that answer many questions in
// one pass over the memories. Batching is how the paper's GPU
// implementation works (§4.1.2): the inner product becomes a
// matrix-matrix multiplication between M_IN and the nq×ed question
// matrix, amortizing each memory row across the whole batch.
type BatchEngine interface {
	Engine
	// InferBatch computes one response per row of u (nq×ed) into the
	// corresponding row of o (nq×ed).
	InferBatch(u, o *tensor.Matrix) Stats
}

// InferBatch answers every question in u with one pass per question —
// the baseline has no cross-question reuse to exploit beyond the OS
// page cache, which is exactly the inefficiency batching fixes.
func (b *Baseline) InferBatch(u, o *tensor.Matrix) Stats {
	checkBatchShapes(b.mem, u, o)
	var st Stats
	for q := 0; q < u.Rows; q++ {
		st.Add(b.Infer(u.Row(q), o.Row(q)))
	}
	return st
}

// InferBatch processes all questions chunk-by-chunk: each memory chunk
// is loaded once and used by every question before moving on, so the
// memories stream from DRAM once per batch instead of once per
// question. Partials are per-question; the lazy-softmax division runs
// once per question at the end. Chunks execute on the work-stealing
// scheduler, so one batch also scales across the pool's workers.
//
// Scratch comes from a process-wide pool, so steady-state calls at a
// fixed batch shape allocate nothing; callers running a serving loop
// can instead own a BatchScratch and use InferBatchInto.
//
//mnnfast:hotpath
func (c *Column) InferBatch(u, o *tensor.Matrix) Stats {
	s := batchScratchPool.Get().(*BatchScratch)
	st := c.InferBatchInto(u, o, s)
	batchScratchPool.Put(s)
	return st
}

// InferBatchInto is InferBatch with caller-provided scratch. The
// scratch is reshaped (grow-only) to fit this call and may be reused
// across calls of any shape; it must not be shared between concurrent
// calls.
//
//mnnfast:hotpath
func (c *Column) InferBatchInto(u, o *tensor.Matrix, s *BatchScratch) Stats {
	checkBatchShapes(c.mem, u, o)
	nq := u.Rows
	ed := c.mem.Dim()
	ns := c.mem.NS()
	s.ensure(nq, ed)
	st := c.inferBatchPartial(u, s.parts, 0, ns)
	for q := 0; q < nq; q++ {
		st.Divisions += s.parts[q].Finalize(o.Row(q))
		memtrace.Touch(c.opt.Tracer, memtrace.RegionOutput, memtrace.OpWrite, int64(q*ed*4), ed*4)
	}
	st.Inferences = int64(nq)
	return st
}

// InferBatchPartial runs the chunk loop for all questions over rows
// [lo, hi), merging into parts (one partial per question). The chunk
// scratch comes from a process-wide pool, so the call is
// allocation-free at steady state.
//
//mnnfast:hotpath
func (c *Column) InferBatchPartial(u *tensor.Matrix, parts []*Partial, lo, hi int) Stats {
	return c.inferBatchPartial(u, parts, lo, hi)
}

// inferBatchPartial dispatches the batched chunk loop over the
// work-stealing scheduler. Each chunk item computes a self-contained
// Partial per question (processBatchChunk); the per-question partials
// then merge in ascending chunk order, so — like the single-question
// path — the result is bit-identical at every worker count.
//
//mnnfast:hotpath
func (c *Column) inferBatchPartial(u *tensor.Matrix, parts []*Partial, lo, hi int) Stats {
	n := hi - lo
	if n <= 0 {
		return Stats{}
	}
	cs := c.opt.chunkSize()
	nItems := (n + cs - 1) / cs
	w := c.sch.Workers()
	if w > nItems {
		w = nItems
	}
	r := getBatchRun(c, u, lo, nItems, min(cs, n), w)
	c.sch.Run(lo, n, cs, r.fn)
	nq := u.Rows
	for q := 0; q < nq; q++ {
		p := parts[q]
		for it := 0; it < nItems; it++ {
			p.Merge(&r.chunkParts[it*nq+q])
		}
	}
	var st Stats
	for b := range r.stats {
		st.Add(r.stats[b])
	}
	putBatchRun(r)
	return st
}

// processBatchChunk is the batched twin of processChunk: inner
// products, exponentials, and weighted sums for rows [lo, hi) against
// every question, into one self-contained Partial per question (cps,
// length nq). All per-question inner loops walk contiguous row slices
// of the logits block (never element-wise At/Set accessor calls), and
// the chunk inner products are 4-question register-blocked.
//
//mnnfast:hotpath
func (c *Column) processBatchChunk(u *tensor.Matrix, lo, hi int, cps []Partial, logits *tensor.Matrix, cmax tensor.Vector, st *Stats) {
	mem, tr := c.mem, c.opt.Tracer
	ed := mem.Dim()
	rowBytes := ed * 4
	n := hi - lo
	nq := u.Rows
	th := c.opt.SkipThreshold

	// Inner products for the whole batch against this chunk: each chunk
	// row is read once and dotted with four questions per pass, writing
	// one contiguous logits row.
	for i := lo; i < hi; i++ {
		row := mem.In.Row(i)
		lr := logits.Row(i - lo)[:nq]
		q := 0
		for ; q+4 <= nq; q += 4 {
			lr[q], lr[q+1], lr[q+2], lr[q+3] =
				tensor.Dot4(row, u.Row(q), u.Row(q+1), u.Row(q+2), u.Row(q+3))
		}
		for ; q < nq; q++ {
			lr[q] = tensor.Dot(row, u.Row(q))
		}
	}
	if tr != nil {
		for i := lo; i < hi; i++ {
			memtrace.Touch(tr, memtrace.RegionMemIn, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
		}
	}
	st.InnerProductMuls += int64(n) * int64(nq) * int64(ed)

	// Per-question chunk maxima, folded column-wise from the row slices;
	// each question's chunk Partial is shifted by its own chunk maximum.
	copy(cmax, logits.Row(0)[:nq])
	for i := 1; i < n; i++ {
		lr := logits.Row(i)[:nq]
		for q, x := range lr {
			if x > cmax[q] {
				cmax[q] = x
			}
		}
	}
	for q := 0; q < nq; q++ {
		cps[q].Max = cmax[q]
	}

	// Exponentials for the whole chunk × batch, accumulated into each
	// question's chunk P_sum before any skip decision. The logit slots
	// are reused for the exponentials.
	for i := 0; i < n; i++ {
		lr := logits.Row(i)[:nq]
		for q, x := range lr {
			e := tensor.Expf(x - cmax[q])
			lr[q] = e
			cps[q].Sum += e
		}
	}
	st.Exps += int64(n) * int64(nq)
	st.TotalRows += int64(n) * int64(nq)

	// Weighted sum with zero-skipping: each M_OUT row is read once and
	// accumulated into every question that does not skip it. The cut is
	// th × the question's chunk sum — the same sound, conservative rule
	// as the single-question engine (the chunk sum never exceeds the
	// final normalizer).
	for i := lo; i < hi; i++ {
		outRow := mem.Out.Row(i)
		lr := logits.Row(i - lo)[:nq]
		touched := false
		for q, e := range lr {
			p := &cps[q]
			if th > 0 && e < th*p.Sum {
				st.SkippedRows++
				continue
			}
			if !touched {
				memtrace.Touch(tr, memtrace.RegionMemOut, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
				touched = true
			}
			tensor.Axpy(e, outRow, p.O)
			st.WeightedSumMuls += int64(ed)
		}
	}
}

func checkBatchShapes(mem *Memory, u, o *tensor.Matrix) {
	if u.Cols != mem.Dim() || o.Cols != mem.Dim() || u.Rows != o.Rows || u.Rows == 0 {
		panic(fmt.Sprintf("core: InferBatch shapes u=%dx%d o=%dx%d for memory dim %d",
			u.Rows, u.Cols, o.Rows, o.Cols, mem.Dim()))
	}
}
