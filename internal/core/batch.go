package core

import (
	"fmt"

	"mnnfast/internal/memtrace"
	"mnnfast/internal/tensor"
)

// BatchEngine is implemented by engines that answer many questions in
// one pass over the memories. Batching is how the paper's GPU
// implementation works (§4.1.2): the inner product becomes a
// matrix-matrix multiplication between M_IN and the nq×ed question
// matrix, amortizing each memory row across the whole batch.
type BatchEngine interface {
	Engine
	// InferBatch computes one response per row of u (nq×ed) into the
	// corresponding row of o (nq×ed).
	InferBatch(u, o *tensor.Matrix) Stats
}

// InferBatch answers every question in u with one pass per question —
// the baseline has no cross-question reuse to exploit beyond the OS
// page cache, which is exactly the inefficiency batching fixes.
func (b *Baseline) InferBatch(u, o *tensor.Matrix) Stats {
	checkBatchShapes(b.mem, u, o)
	var st Stats
	for q := 0; q < u.Rows; q++ {
		st.Add(b.Infer(u.Row(q), o.Row(q)))
	}
	return st
}

// InferBatch processes all questions chunk-by-chunk: each memory chunk
// is loaded once and used by every question before moving on, so the
// memories stream from DRAM exactly once per batch instead of once per
// question. Partials are per-question; the lazy-softmax division runs
// once per question at the end.
func (c *Column) InferBatch(u, o *tensor.Matrix) Stats {
	checkBatchShapes(c.mem, u, o)
	nq := u.Rows
	ed := c.mem.Dim()
	parts := make([]*Partial, nq)
	for q := range parts {
		parts[q] = NewPartial(ed)
	}
	st := c.InferBatchPartial(u, parts, 0, c.mem.NS())
	for q := 0; q < nq; q++ {
		st.Divisions += parts[q].Finalize(o.Row(q))
		memtrace.Touch(c.opt.Tracer, memtrace.RegionOutput, memtrace.OpWrite, int64(q*ed*4), ed*4)
	}
	st.Inferences = int64(nq)
	return st
}

// InferBatchPartial runs the chunk loop for all questions over rows
// [lo, hi), merging into parts (one partial per question).
func (c *Column) InferBatchPartial(u *tensor.Matrix, parts []*Partial, lo, hi int) Stats {
	mem, tr := c.mem, c.opt.Tracer
	cs := c.opt.chunkSize()
	ed := mem.Dim()
	rowBytes := ed * 4
	nq := u.Rows
	th := c.opt.SkipThreshold
	logits := tensor.NewMatrix(min(cs, hi-lo), nq) // chunk×nq, cache-resident

	var st Stats
	for cLo := lo; cLo < hi; cLo += cs {
		cHi := min(cLo+cs, hi)
		n := cHi - cLo
		if c.opt.Streaming {
			c.prefetchChunk(cLo, cHi)
		}
		// Inner products for the whole batch against this chunk: the
		// chunk's rows are read once and reused by every question.
		for i := cLo; i < cHi; i++ {
			memtrace.Touch(tr, memtrace.RegionMemIn, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
			row := mem.In.Row(i)
			for q := 0; q < nq; q++ {
				logits.Set(i-cLo, q, tensor.Dot(u.Row(q), row))
			}
		}
		st.InnerProductMuls += int64(n) * int64(nq) * int64(ed)

		// Per-question running-max maintenance over the chunk.
		for q := 0; q < nq; q++ {
			p := parts[q]
			chunkMax := logits.At(0, q)
			for i := 1; i < n; i++ {
				if x := logits.At(i, q); x > chunkMax {
					chunkMax = x
				}
			}
			if chunkMax > p.Max {
				if p.Max != negInf && p.Sum != 0 {
					scale := expf(p.Max - chunkMax)
					p.Sum *= scale
					p.O.Scale(scale)
				}
				p.Max = chunkMax
			}
		}

		// Exponentials for the whole chunk × batch, accumulated into
		// each question's P_sum before any skip decision (same sound,
		// convergent rule as the single-question engine).
		for i := cLo; i < cHi; i++ {
			for q := 0; q < nq; q++ {
				p := parts[q]
				e := expf(logits.At(i-cLo, q) - p.Max)
				logits.Set(i-cLo, q, e) // reuse the slot for the exponential
				st.Exps++
				p.Sum += e
				st.TotalRows++
			}
		}

		// Weighted sum with zero-skipping: each M_OUT row is read once
		// and accumulated into every question that does not skip it.
		for i := cLo; i < cHi; i++ {
			outRow := mem.Out.Row(i)
			touched := false
			for q := 0; q < nq; q++ {
				p := parts[q]
				e := logits.At(i-cLo, q)
				if th > 0 && e < th*p.Sum {
					st.SkippedRows++
					continue
				}
				if !touched {
					memtrace.Touch(tr, memtrace.RegionMemOut, memtrace.OpRead, int64(i)*int64(rowBytes), rowBytes)
					touched = true
				}
				tensor.Axpy(e, outRow, p.O)
				st.WeightedSumMuls += int64(ed)
			}
		}
	}
	return st
}

func checkBatchShapes(mem *Memory, u, o *tensor.Matrix) {
	if u.Cols != mem.Dim() || o.Cols != mem.Dim() || u.Rows != o.Rows || u.Rows == 0 {
		panic(fmt.Sprintf("core: InferBatch shapes u=%dx%d o=%dx%d for memory dim %d",
			u.Rows, u.Cols, o.Rows, o.Cols, mem.Dim()))
	}
}
