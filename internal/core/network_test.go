package core

import (
	"math/rand"
	"testing"

	"mnnfast/internal/tensor"
	"mnnfast/internal/vocab"
)

func testVocab() *vocab.Vocabulary {
	v := vocab.New()
	v.AddAll(vocab.Tokenize("john mary went to the kitchen garden where is"))
	return v
}

func TestNewNetworkValidation(t *testing.T) {
	v := testVocab()
	rng := rand.New(rand.NewSource(1))
	ok, err := RandomNetwork(rng, v, 16, 8, 2, 4, func(m *Memory) Engine {
		return NewColumn(m, Options{ChunkSize: 4})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Break each required field in turn.
	bad := NetworkConfig{Vocab: ok.Vocab, Table: ok.Table, Mem: ok.Mem, Engine: ok.Eng, Hops: 0, W: ok.W}
	if _, err := NewNetwork(bad); err == nil {
		t.Error("hops=0 accepted")
	}
	bad = NetworkConfig{Vocab: ok.Vocab, Table: ok.Table, Mem: ok.Mem, Engine: ok.Eng, Hops: 1, W: tensor.NewMatrix(4, 5)}
	if _, err := NewNetwork(bad); err == nil {
		t.Error("FC dim mismatch accepted")
	}
	bad = NetworkConfig{Vocab: ok.Vocab, Table: ok.Table, Mem: ok.Mem, Engine: ok.Eng, Hops: 1, W: ok.W,
		Answers: []string{"only-one"}}
	if _, err := NewNetwork(bad); err == nil {
		t.Error("answer-label count mismatch accepted")
	}
}

func TestNetworkAnswer(t *testing.T) {
	v := testVocab()
	rng := rand.New(rand.NewSource(2))
	n, err := RandomNetwork(rng, v, 64, 16, 3, 5, func(m *Memory) Engine {
		return NewColumn(m, Options{ChunkSize: 16})
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Answers = []string{"a", "b", "c", "d", "e"}
	idx, label, st, err := n.Answer("where is john?")
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx >= 5 {
		t.Errorf("answer index %d out of range", idx)
	}
	if label != n.Answers[idx] {
		t.Errorf("label %q does not match index %d", label, idx)
	}
	if st.Inferences != 3 {
		t.Errorf("stats report %d inferences, want 3 (hops)", st.Inferences)
	}
}

func TestNetworkAnswerUnknownWord(t *testing.T) {
	v := testVocab()
	rng := rand.New(rand.NewSource(3))
	n, err := RandomNetwork(rng, v, 8, 4, 1, 2, func(m *Memory) Engine {
		return NewBaseline(m, Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := n.Answer("where is zanzibar?"); err == nil {
		t.Error("unknown word accepted")
	}
}

func TestNetworkAnswerEngineAgreement(t *testing.T) {
	// The same network must answer identically regardless of engine.
	v := testVocab()
	rng := rand.New(rand.NewSource(4))
	base, err := RandomNetwork(rng, v, 128, 16, 2, 6, func(m *Memory) Engine {
		return NewBaseline(m, Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	col := *base
	col.Eng = NewColumn(base.Mem, Options{ChunkSize: 32, Streaming: true, Pool: tensor.NewPool(2)})

	i1, _, _, err := base.Answer("where is mary?")
	if err != nil {
		t.Fatal(err)
	}
	i2, _, _, err := col.Answer("where is mary?")
	if err != nil {
		t.Fatal(err)
	}
	if i1 != i2 {
		t.Errorf("baseline answered %d, column answered %d", i1, i2)
	}
}

func TestNetworkAppendSentence(t *testing.T) {
	v := testVocab()
	rng := rand.New(rand.NewSource(5))
	n, err := RandomNetwork(rng, v, 4, 8, 1, 2, func(m *Memory) Engine {
		return NewBaseline(m, Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := n.AppendSentence("john went to the garden")
	if err != nil {
		t.Fatal(err)
	}
	if ns != 5 || n.Mem.NS() != 5 {
		t.Errorf("AppendSentence grew memory to %d, want 5", ns)
	}
	if _, err := n.AppendSentence("argle bargle"); err == nil {
		t.Error("unknown words accepted by AppendSentence")
	}
	// Note the baseline engine caches scratch sized at construction; a
	// fresh engine is needed after growth.
	n.Eng = NewBaseline(n.Mem, Options{})
	if _, _, _, err := n.Answer("where is john?"); err != nil {
		t.Fatal(err)
	}
}
