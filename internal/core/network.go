package core

import (
	"fmt"
	"math/rand"

	"mnnfast/internal/embed"
	"mnnfast/internal/memtrace"
	"mnnfast/internal/tensor"
	"mnnfast/internal/vocab"
)

// Network is a complete question-answering service around an Engine:
// it owns the embedding table (questions arrive as raw bag-of-words,
// §4.1.1), the knowledge database (M_IN/M_OUT), the inference engine,
// and the final fully connected layer that turns u + o into answer
// logits. It is the object the examples and CLI tools program against.
type Network struct {
	Vocab   *vocab.Vocabulary
	Table   *embed.Table
	Mem     *Memory
	Eng     Engine
	Hops    int
	W       *tensor.Matrix // answers×ed final FC layer
	Answers []string
	Tracer  memtrace.Toucher
}

// NetworkConfig assembles a Network.
type NetworkConfig struct {
	Vocab   *vocab.Vocabulary
	Table   *embed.Table
	Mem     *Memory
	Engine  Engine
	Hops    int
	W       *tensor.Matrix
	Answers []string
	Tracer  memtrace.Toucher
}

// NewNetwork validates and builds a Network.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Vocab == nil || cfg.Table == nil || cfg.Mem == nil || cfg.Engine == nil || cfg.W == nil {
		return nil, fmt.Errorf("core: NewNetwork: missing component")
	}
	if cfg.Hops < 1 {
		return nil, fmt.Errorf("core: NewNetwork: hops = %d", cfg.Hops)
	}
	if cfg.Table.Dim != cfg.Mem.Dim() {
		return nil, fmt.Errorf("core: embedding dim %d != memory dim %d", cfg.Table.Dim, cfg.Mem.Dim())
	}
	if cfg.W.Cols != cfg.Mem.Dim() {
		return nil, fmt.Errorf("core: FC layer dim %d != memory dim %d", cfg.W.Cols, cfg.Mem.Dim())
	}
	if len(cfg.Answers) != 0 && len(cfg.Answers) != cfg.W.Rows {
		return nil, fmt.Errorf("core: %d answer labels for %d FC rows", len(cfg.Answers), cfg.W.Rows)
	}
	return &Network{
		Vocab:   cfg.Vocab,
		Table:   cfg.Table,
		Mem:     cfg.Mem,
		Eng:     cfg.Engine,
		Hops:    cfg.Hops,
		W:       cfg.W,
		Answers: cfg.Answers,
		Tracer:  cfg.Tracer,
	}, nil
}

// Answer embeds the raw question, runs Hops rounds of memory inference
// (input + output memory representation with u' = u + o), applies the
// FC layer, and returns the argmax answer index, its label (if labels
// were provided), and the accumulated work statistics.
func (n *Network) Answer(question string) (int, string, Stats, error) {
	words, err := n.Vocab.EncodeStrict(vocab.Tokenize(question))
	if err != nil {
		return 0, "", Stats{}, err
	}
	ed := n.Mem.Dim()
	u := tensor.NewVector(ed)
	n.Table.EncodeBoW(n.Tracer, words, u)

	var st Stats
	o := tensor.NewVector(ed)
	for k := 0; k < n.Hops; k++ {
		st.Add(n.Eng.Infer(u, o))
		u.AddInPlace(o)
	}

	logits := tensor.NewVector(n.W.Rows)
	tensor.MatVec(nil, n.W, u, logits)
	memtrace.Touch(n.Tracer, memtrace.RegionWeights, memtrace.OpRead, 0, int(n.W.SizeBytes()))
	tensor.Softmax(logits)
	best := logits.ArgMax()
	label := ""
	if best >= 0 && best < len(n.Answers) {
		label = n.Answers[best]
	}
	return best, label, st, nil
}

// AppendSentence embeds a new story sentence and appends its state
// vector to both memories, growing the database in place — the
// paper's Figure 8 dataflow where incoming story sentences stream
// through the embedding into M_IN/M_OUT. It returns the new ns.
//
// The engine sees the grown memory on its next Infer because Memory
// matrices are replaced atomically under the caller's control; callers
// must not append concurrently with Infer.
func (n *Network) AppendSentence(sentence string) (int, error) {
	words, err := n.Vocab.EncodeStrict(vocab.Tokenize(sentence))
	if err != nil {
		return 0, err
	}
	ed := n.Mem.Dim()
	v := tensor.NewVector(ed)
	n.Table.EncodeBoW(n.Tracer, words, v)

	grow := func(m *tensor.Matrix) *tensor.Matrix {
		out := tensor.NewMatrix(m.Rows+1, m.Cols)
		copy(out.Data, m.Data)
		copy(out.Row(m.Rows), v)
		return out
	}
	n.Mem.In = grow(n.Mem.In)
	n.Mem.Out = grow(n.Mem.Out)
	return n.Mem.NS(), nil
}

// RandomNetwork builds a synthetic Network for benchmarks and
// quickstart examples: random embeddings, a random database of ns
// sentences, and a random FC layer with the requested engine variant.
func RandomNetwork(rng *rand.Rand, v *vocab.Vocabulary, ns, ed, hops, answers int, mkEngine func(*Memory) Engine) (*Network, error) {
	table := embed.NewRandomTable(rng, v.Size(), ed)
	mem, err := NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
	)
	if err != nil {
		return nil, err
	}
	return NewNetwork(NetworkConfig{
		Vocab:  v,
		Table:  table,
		Mem:    mem,
		Engine: mkEngine(mem),
		Hops:   hops,
		W:      tensor.GaussianMatrix(rng, answers, ed, 0.1),
	})
}
