// Package loadgen drives a QA inference service with concurrent
// sessions and reports throughput and latency percentiles — the
// multi-tenant serving scenario the paper's Figure 4 motivates
// (many simultaneous question-answering tasks).
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mnnfast/internal/obs"
	"mnnfast/internal/trace"
)

// Config shapes a load run.
type Config struct {
	BaseURL   string // server root, e.g. http://localhost:8080
	Sessions  int    // concurrent sessions
	Questions int    // questions per session
	StoryLen  int    // sentences loaded per session before asking
	Seed      int64
	Client    *http.Client // nil → http.DefaultClient
	// ServerMetrics scrapes GET /v1/metrics before and after the run and
	// attaches the diff, so the report shows the server-side per-stage
	// breakdown next to the client-side percentiles. A server without
	// the endpoint degrades gracefully (ServerDiff stays nil).
	ServerMetrics bool
	// Slowest, when > 0, fetches the span trees of the K slowest answers
	// from GET /v1/traces/{id} after the run (using the X-Trace-ID each
	// response carried) and attaches them as Result.SlowTraces. A server
	// without tracing degrades gracefully (SlowTraces stays empty).
	Slowest int
}

func (c *Config) normalize() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadgen: empty base URL")
	}
	if c.Sessions < 1 {
		c.Sessions = 1
	}
	if c.Questions < 1 {
		c.Questions = 1
	}
	if c.StoryLen < 1 {
		c.StoryLen = 4
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return nil
}

// Result aggregates a run.
type Result struct {
	Requests  int
	Errors    int
	Elapsed   time.Duration
	Latencies []time.Duration // sorted ascending
	// ServerDiff is the server's /v1/metrics delta over the run (nil
	// when scraping was disabled or unavailable).
	ServerDiff obs.Scrape
	// ServerAfter is the absolute post-run scrape, for gauges that are
	// constant over a run (worker counts) and so vanish from the diff.
	ServerAfter obs.Scrape
	// SlowTraces holds the span trees of the slowest answers, slowest
	// first (see Config.Slowest). Entries whose trace the server's flight
	// recorder had already evicted or sampled out carry a nil Trace.
	SlowTraces []SlowTrace
}

// SlowTrace pairs one slow answer's client-side latency with the
// server-side span tree behind it.
type SlowTrace struct {
	Latency time.Duration
	TraceID string
	Trace   *trace.Export // nil if the server no longer retained it
}

// Throughput returns successful requests per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests-r.Errors) / r.Elapsed.Seconds()
}

// Percentile returns the p-th (0–100) latency percentile.
func (r *Result) Percentile(p float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	idx := int(p / 100 * float64(len(r.Latencies)-1))
	return r.Latencies[idx]
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("%d requests (%d errors) in %v — %.1f req/s; p50 %v, p95 %v, p99 %v",
		r.Requests, r.Errors, r.Elapsed.Round(time.Millisecond), r.Throughput(),
		r.Percentile(50), r.Percentile(95), r.Percentile(99))
}

// stageFamily is the server's per-stage histogram family (see
// internal/server metrics).
const stageFamily = "mnnfast_stage_duration_seconds"

// ServerReport renders the server-side stage breakdown from the
// scraped metrics diff: per-stage time share (the paper's embedding vs.
// inference accounting, measured over this run), zero-skip ratio, and
// embedding-cache effectiveness. Empty when no diff was captured.
func (r *Result) ServerReport() string {
	d := r.ServerDiff
	if d == nil {
		return ""
	}
	stages := []string{"vectorize", "embed", "index-build", "attention", "gate", "output"}
	var totalSec float64
	for _, st := range stages {
		totalSec += d.Value(obs.HistKey(stageFamily, "sum", `stage="`+st+`"`))
	}
	var b strings.Builder
	b.WriteString("server stages (Δ over run):\n")
	for _, st := range stages {
		count := d.Value(obs.HistKey(stageFamily, "count", `stage="`+st+`"`))
		sum := d.Value(obs.HistKey(stageFamily, "sum", `stage="`+st+`"`))
		avgUS, share := 0.0, 0.0
		if count > 0 {
			avgUS = sum / count * 1e6
		}
		if totalSec > 0 {
			share = sum / totalSec * 100
		}
		fmt.Fprintf(&b, "  %-10s n=%-7.0f total %9.3fms  avg %8.1fµs  %5.1f%%\n",
			st, count, sum*1e3, avgUS, share)
	}
	skipped := d.Value("mnnfast_skipped_rows_total")
	total := d.Value("mnnfast_total_rows_total")
	skipPct := 0.0
	if total > 0 {
		skipPct = skipped / total * 100
	}
	hits := d.Value("mnnfast_embedding_cache_hits_total")
	misses := d.Value("mnnfast_embedding_cache_misses_total")
	hitPct := 0.0
	if hits+misses > 0 {
		hitPct = hits / (hits + misses) * 100
	}
	fmt.Fprintf(&b, "zero-skip: %.0f/%.0f rows skipped (%.1f%%); embedding cache: %.0f hits / %.0f misses (%.1f%% hit)",
		skipped, total, skipPct, hits, misses, hitPct)

	// Topk probe telemetry, present only when the server ran with
	// -attention=topk and at least one story cleared the index floor.
	if probed := d.Value("mnnfast_topk_probed_rows"); probed > 0 {
		kept := d.Value("mnnfast_topk_candidates")
		keepPct := 0.0
		if probed > 0 {
			keepPct = kept / probed * 100
		}
		fmt.Fprintf(&b, "\ntopk: %.0f rows probed, %.0f kept (%.1f%% of probed) across %.0f index builds",
			probed, kept, keepPct,
			d.Value(obs.HistKey(stageFamily, "count", `stage="index-build"`)))
	}

	// Kernel dispatch tier, from the absolute scrape (the info gauge is
	// constant over a run, so it diffs to 0). Older servers don't export
	// the family; print nothing rather than a guess.
	for _, tier := range []string{"avx2", "go", "scalar"} {
		if r.ServerAfter.Value(`mnnfast_kernel_tier{tier="`+tier+`"}`) == 1 {
			fmt.Fprintf(&b, "\nkernel tier: %s", tier)
			break
		}
	}

	// Batching telemetry, present only when the server ran with
	// micro-batching enabled (mnnfast-serve -batch-max > 0).
	if flushes := d.Value("mnnfast_batch_flushes_total"); flushes > 0 {
		answered := d.Value("mnnfast_batch_size_sum")
		meanBatch := answered / flushes
		p50 := d.Quantile("mnnfast_batch_size", "", 0.5)
		waitAvgUS := 0.0
		if wc := d.Value("mnnfast_batch_queue_wait_seconds_count"); wc > 0 {
			waitAvgUS = d.Value("mnnfast_batch_queue_wait_seconds_sum") / wc * 1e6
		}
		fmt.Fprintf(&b, "\nbatching: %.0f answers in %.0f flushes (mean batch %.2f, p50 %.1f); queue wait avg %.1fµs; shed %.0f, expired %.0f",
			answered, flushes, meanBatch, p50,
			waitAvgUS,
			d.Value("mnnfast_batch_shed_total"),
			d.Value("mnnfast_batch_expired_total"))
	}

	// Early-exit telemetry, present only when the server ran with the
	// confidence gate armed (mnnfast-serve -early-exit). Mean hops comes
	// from the exit-hop histogram; the per-hop counters break down where
	// questions left the hop loop early.
	if gated := d.Value("mnnfast_exit_hop_count"); gated > 0 {
		meanHops := d.Value("mnnfast_exit_hop_sum") / gated
		var early float64
		var perHop []string
		for h := 1; ; h++ {
			key := `mnnfast_early_exits_total{hop="` + strconv.Itoa(h) + `"}`
			if _, ok := d[key]; !ok {
				break
			}
			n := d.Value(key)
			early += n
			perHop = append(perHop, fmt.Sprintf("hop %d: %.0f", h, n))
		}
		fmt.Fprintf(&b, "\nearly exit: %.0f/%.0f answers exited early (%.1f%%), mean hops %.2f",
			early, gated, early/gated*100, meanHops)
		if len(perHop) > 0 {
			fmt.Fprintf(&b, " (%s)", strings.Join(perHop, ", "))
		}
	}

	// Parallelism telemetry, present only when the server ran with
	// intra-query parallelism (mnnfast-serve -parallelism > 0). Worker
	// count comes from the absolute scrape — a constant gauge diffs to 0.
	if workers := int(r.ServerAfter.Value("mnnfast_sched_workers")); workers > 0 {
		var chunks, steals, idleNS float64
		fmt.Fprintf(&b, "\nparallelism: %d workers, %.0f parallel + %.0f serial scheduler runs\n",
			workers,
			d.Value("mnnfast_sched_runs_total"),
			d.Value("mnnfast_sched_serial_runs_total"))
		for i := 0; i < workers; i++ {
			w := `worker="` + strconv.Itoa(i) + `"`
			c := d.Value(`mnnfast_sched_worker_chunks_total{` + w + `}`)
			st := d.Value(`mnnfast_sched_worker_steals_total{` + w + `}`)
			idle := d.Value(`mnnfast_sched_worker_idle_ns_total{` + w + `}`)
			chunks, steals, idleNS = chunks+c, steals+st, idleNS+idle
			fmt.Fprintf(&b, "  worker %-2d  chunks %-8.0f stolen %-7.0f idle %8.1fµs\n", i, c, st, idle/1e3)
		}
		stealPct := 0.0
		if chunks > 0 {
			stealPct = steals / chunks * 100
		}
		fmt.Fprintf(&b, "  total      chunks %-8.0f stolen %-7.0f (%.1f%% stolen) idle %8.1fµs",
			chunks, steals, stealPct, idleNS/1e3)
	}
	return b.String()
}

// scrapeMetrics fetches and parses the server's Prometheus exposition.
func scrapeMetrics(cfg Config) (obs.Scrape, error) {
	resp, err := cfg.Client.Get(cfg.BaseURL + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: /v1/metrics: status %d", resp.StatusCode)
	}
	return obs.ParseText(resp.Body)
}

// storyPool provides in-vocabulary sentences and questions for the
// default mnnfast-serve model.
var (
	genPeople    = []string{"john", "mary", "sandra", "daniel", "emily", "frank"}
	genLocations = []string{"kitchen", "hallway", "garden", "bathroom", "office", "bedroom"}
)

// Run executes the load test.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	type sample struct {
		d       time.Duration
		traceID string
		err     bool
	}
	samples := make(chan sample, cfg.Sessions*cfg.Questions)

	var before obs.Scrape
	if cfg.ServerMetrics {
		before, _ = scrapeMetrics(cfg) // nil on older servers; diff skipped below
	}

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < cfg.Sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(s)))
			session := fmt.Sprintf("loadgen-%d", s)

			// Build the session story.
			sentences := make([]string, cfg.StoryLen)
			for i := range sentences {
				p := genPeople[rng.Intn(len(genPeople))]
				l := genLocations[rng.Intn(len(genLocations))]
				sentences[i] = p + " went to the " + l
			}
			if _, err := post(cfg, session, "/v1/story", map[string]any{
				"sentences": sentences, "reset": true,
			}, nil); err != nil {
				for q := 0; q < cfg.Questions; q++ {
					samples <- sample{err: true}
				}
				return
			}

			for q := 0; q < cfg.Questions; q++ {
				p := genPeople[rng.Intn(len(genPeople))]
				t0 := time.Now()
				traceID, err := post(cfg, session, "/v1/answer", map[string]any{
					"question": "where is " + p + "?",
				}, nil)
				samples <- sample{d: time.Since(t0), traceID: traceID, err: err != nil}
			}
		}(s)
	}
	wg.Wait()
	close(samples)

	res := &Result{Elapsed: time.Since(start)}
	var traced []SlowTrace
	for s := range samples {
		res.Requests++
		if s.err {
			res.Errors++
			continue
		}
		res.Latencies = append(res.Latencies, s.d)
		if cfg.Slowest > 0 && s.traceID != "" {
			traced = append(traced, SlowTrace{Latency: s.d, TraceID: s.traceID})
		}
	}
	sort.Slice(res.Latencies, func(i, j int) bool { return res.Latencies[i] < res.Latencies[j] })
	if before != nil {
		if after, err := scrapeMetrics(cfg); err == nil {
			res.ServerDiff = after.Sub(before)
			res.ServerAfter = after
		}
	}
	if cfg.Slowest > 0 {
		sort.Slice(traced, func(i, j int) bool { return traced[i].Latency > traced[j].Latency })
		if len(traced) > cfg.Slowest {
			traced = traced[:cfg.Slowest]
		}
		for i := range traced {
			traced[i].Trace = fetchTrace(cfg, traced[i].TraceID)
		}
		res.SlowTraces = traced
	}
	return res, nil
}

// fetchTrace retrieves one retained span tree; nil when the server has
// tracing disabled or no longer retains the trace.
func fetchTrace(cfg Config, id string) *trace.Export {
	resp, err := cfg.Client.Get(cfg.BaseURL + "/v1/traces/" + id)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var ex trace.Export
	if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
		return nil
	}
	return &ex
}

// SlowestReport renders the span trees of the run's slowest answers:
// per-span durations and attributes, indented by tree depth, so the
// queue-wait / batch-flush / infer / per-hop / per-worker breakdown of
// each outlier reads at a glance. Empty when Config.Slowest was 0 or no
// trace could be fetched.
func (r *Result) SlowestReport() string {
	var b strings.Builder
	for i, st := range r.SlowTraces {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "slowest #%d: client latency %v, trace %s", i+1, st.Latency.Round(time.Microsecond), st.TraceID)
		if st.Trace == nil {
			b.WriteString(" (not retained by server)\n")
			continue
		}
		fmt.Fprintf(&b, " — server %v, %d spans", time.Duration(st.Trace.DurationNS).Round(time.Microsecond), countSpans(st.Trace.Spans))
		if st.Trace.Dropped > 0 {
			fmt.Fprintf(&b, " (%d dropped)", st.Trace.Dropped)
		}
		b.WriteByte('\n')
		writeSpans(&b, st.Trace.Spans, 1)
	}
	return b.String()
}

func countSpans(spans []*trace.ExportSpan) int {
	n := len(spans)
	for i := range spans {
		n += countSpans(spans[i].Children)
	}
	return n
}

// writeSpans renders a span forest depth-first with duration and
// attribute columns.
func writeSpans(b *strings.Builder, spans []*trace.ExportSpan, depth int) {
	for i := range spans {
		sp := spans[i]
		fmt.Fprintf(b, "%*s%-14s %10v", depth*2, "", sp.Name, time.Duration(sp.DurNS).Round(time.Microsecond))
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(b, "  %s=%v", k, sp.Attrs[k])
			}
		}
		b.WriteByte('\n')
		writeSpans(b, sp.Children, depth+1)
	}
}

func post(cfg Config, session, path string, body any, out any) (traceID string, err error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequest(http.MethodPost, cfg.BaseURL+path, bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	req.Header.Set("X-Session", session)
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	traceID = resp.Header.Get("X-Trace-ID")
	if resp.StatusCode != http.StatusOK {
		return traceID, fmt.Errorf("loadgen: %s: status %d", path, resp.StatusCode)
	}
	if out != nil {
		return traceID, json.NewDecoder(resp.Body).Decode(out)
	}
	return traceID, nil
}
