// Package loadgen drives a QA inference service with concurrent
// sessions and reports throughput and latency percentiles — the
// multi-tenant serving scenario the paper's Figure 4 motivates
// (many simultaneous question-answering tasks).
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Config shapes a load run.
type Config struct {
	BaseURL   string // server root, e.g. http://localhost:8080
	Sessions  int    // concurrent sessions
	Questions int    // questions per session
	StoryLen  int    // sentences loaded per session before asking
	Seed      int64
	Client    *http.Client // nil → http.DefaultClient
}

func (c *Config) normalize() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadgen: empty base URL")
	}
	if c.Sessions < 1 {
		c.Sessions = 1
	}
	if c.Questions < 1 {
		c.Questions = 1
	}
	if c.StoryLen < 1 {
		c.StoryLen = 4
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return nil
}

// Result aggregates a run.
type Result struct {
	Requests  int
	Errors    int
	Elapsed   time.Duration
	Latencies []time.Duration // sorted ascending
}

// Throughput returns successful requests per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests-r.Errors) / r.Elapsed.Seconds()
}

// Percentile returns the p-th (0–100) latency percentile.
func (r *Result) Percentile(p float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	idx := int(p / 100 * float64(len(r.Latencies)-1))
	return r.Latencies[idx]
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("%d requests (%d errors) in %v — %.1f req/s; p50 %v, p95 %v, p99 %v",
		r.Requests, r.Errors, r.Elapsed.Round(time.Millisecond), r.Throughput(),
		r.Percentile(50), r.Percentile(95), r.Percentile(99))
}

// storyPool provides in-vocabulary sentences and questions for the
// default mnnfast-serve model.
var (
	genPeople    = []string{"john", "mary", "sandra", "daniel", "emily", "frank"}
	genLocations = []string{"kitchen", "hallway", "garden", "bathroom", "office", "bedroom"}
)

// Run executes the load test.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	type sample struct {
		d   time.Duration
		err bool
	}
	samples := make(chan sample, cfg.Sessions*cfg.Questions)

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < cfg.Sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(s)))
			session := fmt.Sprintf("loadgen-%d", s)

			// Build the session story.
			sentences := make([]string, cfg.StoryLen)
			for i := range sentences {
				p := genPeople[rng.Intn(len(genPeople))]
				l := genLocations[rng.Intn(len(genLocations))]
				sentences[i] = p + " went to the " + l
			}
			if err := post(cfg, session, "/v1/story", map[string]any{
				"sentences": sentences, "reset": true,
			}, nil); err != nil {
				for q := 0; q < cfg.Questions; q++ {
					samples <- sample{err: true}
				}
				return
			}

			for q := 0; q < cfg.Questions; q++ {
				p := genPeople[rng.Intn(len(genPeople))]
				t0 := time.Now()
				err := post(cfg, session, "/v1/answer", map[string]any{
					"question": "where is " + p + "?",
				}, nil)
				samples <- sample{d: time.Since(t0), err: err != nil}
			}
		}(s)
	}
	wg.Wait()
	close(samples)

	res := &Result{Elapsed: time.Since(start)}
	for s := range samples {
		res.Requests++
		if s.err {
			res.Errors++
			continue
		}
		res.Latencies = append(res.Latencies, s.d)
	}
	sort.Slice(res.Latencies, func(i, j int) bool { return res.Latencies[i] < res.Latencies[j] })
	return res, nil
}

func post(cfg Config, session, path string, body any, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, cfg.BaseURL+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("X-Session", session)
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: %s: status %d", path, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
