package loadgen

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mnnfast/internal/babi"
	"mnnfast/internal/memnn"
	"mnnfast/internal/server"
)

func testService(t *testing.T) *httptest.Server {
	t.Helper()
	return testServiceWith(t, nil)
}

// testServiceWith builds the QA service, optionally with micro-batching
// (configure != nil runs against the built server before serving).
func testServiceWith(t *testing.T, configure func(*server.Server)) *httptest.Server {
	t.Helper()
	opt := babi.GenOptions{Stories: 200, StoryLen: 8, People: 6, Locations: 6}
	d := babi.Generate(babi.TaskSingleFact, opt, rand.New(rand.NewSource(8)))
	train, test := d.Split(0.9)
	corpus := memnn.BuildCorpus(train, test, 0)
	model, err := memnn.NewModel(memnn.Config{
		Dim: 16, Hops: 2,
		Vocab:   corpus.Vocab.Size(),
		Answers: len(corpus.Answers),
		MaxSent: corpus.MaxSent,
	}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	topt := memnn.DefaultTrainOptions()
	topt.Epochs = 10
	if _, err := model.Train(corpus.Train, topt); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(model, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if configure != nil {
		configure(srv)
		t.Cleanup(srv.Close)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestBatchedServerReport runs concurrent sessions against a batched
// service and checks the report's batching section — including the
// acceptance criterion that concurrency ≥ 8 yields a batch-size p50
// above 1 (requests really coalesce).
func TestBatchedServerReport(t *testing.T) {
	ts := testServiceWith(t, func(s *server.Server) {
		s.EnableBatching(server.BatchOptions{MaxBatch: 8, MaxWait: 5 * time.Millisecond})
	})
	res, err := Run(Config{
		BaseURL:       ts.URL,
		Sessions:      8,
		Questions:     20,
		StoryLen:      5,
		Seed:          3,
		Client:        ts.Client(),
		ServerMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d: %s", res.Errors, res)
	}
	if res.ServerDiff == nil {
		t.Fatal("ServerDiff not captured")
	}
	if got := res.ServerDiff.Value("mnnfast_batch_size_sum"); got != 160 {
		t.Errorf("batched answers = %v, want 160", got)
	}
	if p50 := res.ServerDiff.Quantile("mnnfast_batch_size", "", 0.5); p50 <= 1 {
		t.Errorf("batch size p50 = %v under 8 concurrent sessions, want > 1", p50)
	}
	report := res.ServerReport()
	for _, want := range []string{"batching:", "flushes", "queue wait", "shed"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunAgainstLiveService(t *testing.T) {
	ts := testService(t)
	res, err := Run(Config{
		BaseURL:   ts.URL,
		Sessions:  4,
		Questions: 5,
		StoryLen:  6,
		Seed:      1,
		Client:    ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 20 {
		t.Errorf("requests = %d, want 20", res.Requests)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d: %s", res.Errors, res)
	}
	if res.Throughput() <= 0 {
		t.Errorf("throughput = %v", res.Throughput())
	}
	if res.Percentile(50) <= 0 || res.Percentile(99) < res.Percentile(50) {
		t.Errorf("percentiles inconsistent: p50=%v p99=%v", res.Percentile(50), res.Percentile(99))
	}
	if res.String() == "" {
		t.Error("empty summary")
	}
}

// TestServerMetricsDiff runs with metrics scraping on and checks the
// server-side stage breakdown reflects exactly this run's traffic.
func TestServerMetricsDiff(t *testing.T) {
	ts := testService(t)
	res, err := Run(Config{
		BaseURL:       ts.URL,
		Sessions:      3,
		Questions:     4,
		StoryLen:      5,
		Seed:          2,
		Client:        ts.Client(),
		ServerMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerDiff == nil {
		t.Fatal("ServerDiff not captured")
	}
	if got := res.ServerDiff.Value(`mnnfast_http_requests_total{handler="answer"}`); got != 12 {
		t.Errorf("answer requests diff = %v, want 12", got)
	}
	// 3 sessions each embed once, then hit the cache for the rest.
	if misses := res.ServerDiff.Value("mnnfast_embedding_cache_misses_total"); misses != 3 {
		t.Errorf("cache misses diff = %v, want 3", misses)
	}
	if hits := res.ServerDiff.Value("mnnfast_embedding_cache_hits_total"); hits != 9 {
		t.Errorf("cache hits diff = %v, want 9", hits)
	}
	report := res.ServerReport()
	for _, want := range []string{"attention", "embed", "vectorize", "output", "zero-skip", "embedding cache"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestServerMetricsUnavailable degrades gracefully against a server
// without /v1/metrics.
func TestServerMetricsUnavailable(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	t.Cleanup(ts.Close)
	res := &Result{}
	if res.ServerReport() != "" {
		t.Error("nil diff should render empty report")
	}
	if _, err := scrapeMetrics(Config{BaseURL: ts.URL, Client: ts.Client()}); err == nil {
		t.Error("scrape of 404 endpoint succeeded")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty base URL accepted")
	}
}

func TestRunCountsServerErrors(t *testing.T) {
	ts := testService(t)
	// Questions reference a person outside the trained vocabulary? All
	// loadgen people are in the generator vocabulary, so instead hit a
	// dead endpoint to force transport errors.
	res, err := Run(Config{
		BaseURL:   "http://127.0.0.1:1",
		Sessions:  2,
		Questions: 3,
		Seed:      1,
		Client:    ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != res.Requests {
		t.Errorf("dead endpoint: %d errors of %d requests", res.Errors, res.Requests)
	}
	if res.Throughput() != 0 {
		t.Errorf("throughput with all errors = %v, want 0", res.Throughput())
	}
}

func TestPercentileEdges(t *testing.T) {
	r := &Result{Latencies: []time.Duration{1, 2, 3, 4}}
	if r.Percentile(-5) != 1 || r.Percentile(200) != 4 {
		t.Errorf("clamping broken: %v / %v", r.Percentile(-5), r.Percentile(200))
	}
	empty := &Result{}
	if empty.Percentile(50) != 0 {
		t.Error("empty percentiles should be 0")
	}
}
