package memnn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"mnnfast/internal/babi"
	"mnnfast/internal/tensor"
)

// Trained 3-hop fixture shared by the exit tests: the gate needs a
// model whose per-hop confidences actually spread out, which random
// weights do not provide.
var (
	exitOnce   sync.Once
	exitModel  *Model
	exitCorpus *Corpus
)

func exitFixture(t testing.TB) (*Model, *Corpus) {
	t.Helper()
	exitOnce.Do(func() {
		opt := babi.GenOptions{Stories: 300, StoryLen: 8, People: 3, Locations: 3}
		d := babi.Generate(babi.TaskSingleFact, opt, rand.New(rand.NewSource(21)))
		train, test := d.Split(0.85)
		c := BuildCorpus(train, test, 0)
		m, err := NewModel(Config{
			Dim: 20, Hops: 3,
			Vocab:   c.Vocab.Size(),
			Answers: len(c.Answers),
			MaxSent: c.MaxSent,
		}, rand.New(rand.NewSource(21)))
		if err != nil {
			panic(err)
		}
		topt := DefaultTrainOptions()
		topt.Epochs = 25
		if _, err := m.Train(c.Train, topt); err != nil {
			panic(err)
		}
		exitModel, exitCorpus = m, c
	})
	return exitModel, exitCorpus
}

// TestExitNeverFire pins the armed-but-unfireable leg of the contract:
// confidence scores live in [0, 1], so any threshold above 1 (and +Inf
// in particular) must run every hop and agree with the full path on
// every question, for every metric.
func TestExitNeverFire(t *testing.T) {
	m, c := exitFixture(t)
	for _, metric := range []ExitMetric{ExitMargin, ExitMaxProb, ExitAttnMax} {
		for _, th := range []float32{1.5, float32(math.Inf(1))} {
			st := m.EvaluateExit(c.Test, 0, ExitPolicy{Metric: metric, Threshold: th})
			if st.Agreement != 1.0 {
				t.Errorf("%s th=%v: agreement %v, want 1.0", metric, th, st.Agreement)
			}
			if st.MeanHops != float64(st.MaxHops) {
				t.Errorf("%s th=%v: mean hops %v, want %d (no exits)", metric, th, st.MeanHops, st.MaxHops)
			}
			for h := 0; h < st.MaxHops-1; h++ {
				if st.ExitsByHop[h] != 0 {
					t.Errorf("%s th=%v: %d exits after hop %d with an unfireable threshold", metric, th, st.ExitsByHop[h], h+1)
				}
			}
		}
	}
}

// TestExitThresholdMonotonicity is the threshold–accuracy sweep: mean
// hops are nondecreasing in the threshold (an exact guarantee — the
// gate never mutates hop state, so each question's confidence sequence
// is threshold-independent and its exit hop is min{h : conf_h >= T}),
// and on this fixed seed the answer agreement is nondecreasing too. At
// some threshold the gate must actually save hops.
func TestExitThresholdMonotonicity(t *testing.T) {
	m, c := exitFixture(t)
	thresholds := []float32{0.2, 0.4, 0.6, 0.8, 0.9, 0.99, 1.5}
	var stats []ExitStats
	for _, th := range thresholds {
		stats = append(stats, m.EvaluateExit(c.Test, 0, ExitPolicy{Metric: ExitMargin, Threshold: th}))
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].MeanHops < stats[i-1].MeanHops {
			t.Errorf("mean hops dropped from %v to %v as threshold rose %v -> %v",
				stats[i-1].MeanHops, stats[i].MeanHops, thresholds[i-1], thresholds[i])
		}
		if stats[i].Agreement < stats[i-1].Agreement {
			t.Errorf("agreement dropped from %v to %v as threshold rose %v -> %v",
				stats[i-1].Agreement, stats[i].Agreement, thresholds[i-1], thresholds[i])
		}
	}
	if last := stats[len(stats)-1]; last.Agreement != 1.0 {
		t.Errorf("unfireable threshold: agreement %v, want 1.0", last.Agreement)
	}
	if first := stats[0]; first.MeanHops >= float64(first.MaxHops) {
		t.Errorf("threshold %v never saved a hop (mean %v of %d); gate is inert on a trained model",
			thresholds[0], first.MeanHops, first.MaxHops)
	}
}

// TestExitZeroPolicyBitIdentical: the zero policy must be the ungated
// pass, bit for bit — ApplyGated with ExitPolicy{} and ApplyInto see
// the same code path.
func TestExitZeroPolicyBitIdentical(t *testing.T) {
	m, c := exitFixture(t)
	var f, g Forward
	for i, ex := range c.Test {
		want := m.ApplyInto(ex, 0.01, &f)
		got := m.ApplyGated(ex, 0.01, ExitPolicy{}, &g, nil, nil)
		if got.ExitHop != m.Cfg.Hops {
			t.Fatalf("q %d: zero policy exit hop %d, want %d", i, got.ExitHop, m.Cfg.Hops)
		}
		for j := range want.Logits {
			if math.Float32bits(got.Logits[j]) != math.Float32bits(want.Logits[j]) {
				t.Fatalf("q %d logit %d: gated-zero %x != ungated %x", i, j,
					math.Float32bits(got.Logits[j]), math.Float32bits(want.Logits[j]))
			}
		}
	}
}

// TestExitFallbackCommits: with Fallback == Threshold every question
// either exits at the first eligible hop or commits to the full path,
// so no exits can occur at intermediate hops — and committed questions
// answer exactly as the full path.
func TestExitFallbackCommits(t *testing.T) {
	m, c := exitFixture(t)
	policy := ExitPolicy{Metric: ExitMargin, Threshold: 0.8, Fallback: 0.8, MinHops: 1}
	st := m.EvaluateExit(c.Test, 0, policy)
	for h := policy.MinHops + 1; h < st.MaxHops; h++ {
		if st.ExitsByHop[h-1] != 0 {
			t.Errorf("%d exits after hop %d; fallback == threshold must commit every non-exiting question at hop %d",
				st.ExitsByHop[h-1], h, policy.MinHops)
		}
	}

	// Committed questions are bit-identical to the ungated pass.
	var f, g Forward
	for i, ex := range c.Test {
		got := m.ApplyGated(ex, 0, policy, &g, nil, nil)
		if got.ExitHop != m.Cfg.Hops {
			continue // exited at MinHops; covered by the shedding tests
		}
		want := m.ApplyInto(ex, 0, &f)
		for j := range want.Logits {
			if math.Float32bits(got.Logits[j]) != math.Float32bits(want.Logits[j]) {
				t.Fatalf("q %d logit %d: committed %x != ungated %x", i, j,
					math.Float32bits(got.Logits[j]), math.Float32bits(want.Logits[j]))
			}
		}
	}
}

// TestExitBatchShedBitIdentical is the batch-shedding property: in a
// batch mixing early-exiting and full-hop questions (with shared story
// groups), every question's logits and exit hop must be bit-identical
// to its own unbatched gated run — shed or not, at any worker count.
func TestExitBatchShedBitIdentical(t *testing.T) {
	m, c := exitFixture(t)
	exs := c.Test
	if len(exs) > 24 {
		exs = exs[:24]
	}
	// Embed one story per question, then alias every third story to its
	// neighbor so multi-question groups occur.
	stories := make([]*EmbeddedStory, len(exs))
	batch := make([]Example, len(exs))
	copy(batch, exs)
	for i := range batch {
		es := new(EmbeddedStory)
		m.EmbedStoryInto(Example{Sentences: batch[i].Sentences}, es)
		stories[i] = es
		if i%3 == 2 {
			batch[i].Sentences = batch[i-1].Sentences
			stories[i] = stories[i-1]
		}
	}

	for _, metric := range []ExitMetric{ExitMargin, ExitMaxProb, ExitAttnMax} {
		for _, th := range []float32{0.3, 0.6, 0.9} {
			policy := ExitPolicy{Metric: metric, Threshold: th, MinHops: 1}
			for _, p := range []int{0, 2, 4} {
				if p > 0 {
					pool := tensor.NewPool(p)
					m.SetParallel(pool)
					defer pool.Close()
				} else {
					m.SetParallel(nil)
				}
				var bf BatchForward
				out := make([]int, len(batch))
				m.PredictBatchInstrumented(batch, 0.01, policy, stories, &bf, nil, out)

				sawShed, sawFull := false, false
				var f Forward
				for q := range batch {
					want := m.ApplyGated(batch[q], 0.01, policy, &f, stories[q], nil)
					if got := bf.ExitHop(q); got != want.ExitHop {
						t.Fatalf("%s th=%v P=%d q %d: batched exit hop %d, unbatched %d", metric, th, p, q, got, want.ExitHop)
					}
					if want.ExitHop < m.Cfg.Hops {
						sawShed = true
					} else {
						sawFull = true
					}
					got := bf.Logits(q)
					for j := range want.Logits {
						if math.Float32bits(got[j]) != math.Float32bits(want.Logits[j]) {
							t.Fatalf("%s th=%v P=%d q %d logit %d: batched %x != unbatched %x (not bit-identical)",
								metric, th, p, q, j, math.Float32bits(got[j]), math.Float32bits(want.Logits[j]))
						}
					}
					if got := out[q]; got != want.Logits.ArgMax() {
						t.Fatalf("%s th=%v P=%d q %d: answer %d, want %d", metric, th, p, q, got, want.Logits.ArgMax())
					}
				}
				if metric == ExitMargin && th == 0.3 && p == 0 && (!sawShed || !sawFull) {
					t.Errorf("th=%v batch was not mixed (shed=%v full=%v); pick a threshold that splits it", th, sawShed, sawFull)
				}
			}
		}
	}
	m.SetParallel(nil)
}

// TestExitBatchGatedAllocs: arming the gate must not break the batched
// path's zero-allocation steady state.
func TestExitBatchGatedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m, c := exitFixture(t)
	exs := c.Test[:8]
	stories := make([]*EmbeddedStory, len(exs))
	for i := range exs {
		stories[i] = new(EmbeddedStory)
		m.EmbedStoryInto(Example{Sentences: exs[i].Sentences}, stories[i])
	}
	policy := ExitPolicy{Metric: ExitMargin, Threshold: 0.6, MinHops: 1}
	var bf BatchForward
	out := make([]int, len(exs))
	m.PredictBatchInstrumented(exs, 0.01, policy, stories, &bf, nil, out) // warm buffers
	allocs := testing.AllocsPerRun(50, func() {
		m.PredictBatchInstrumented(exs, 0.01, policy, stories, &bf, nil, out)
	})
	if allocs != 0 {
		t.Errorf("gated batched predict allocates %v per batch, want 0", allocs)
	}
}

// TestExitPolicyValidate exercises the advisory validation.
func TestExitPolicyValidate(t *testing.T) {
	if err := (ExitPolicy{Metric: ExitMargin, Threshold: 0.5}).Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	if err := (ExitPolicy{Metric: numExitMetrics, Threshold: 0.5}).Validate(); err == nil {
		t.Error("unknown metric accepted")
	}
	if err := (ExitPolicy{Metric: ExitMargin, Threshold: float32(math.NaN())}).Validate(); err == nil {
		t.Error("NaN threshold accepted")
	}
}

// TestAnswerConfidence pins the metric arithmetic on a crafted
// distribution.
func TestAnswerConfidence(t *testing.T) {
	probs := tensor.Vector{0.1, 0.6, 0.25, 0.05}
	if got := answerConfidence(ExitMaxProb, probs); got != 0.6 {
		t.Errorf("maxprob = %v, want 0.6", got)
	}
	if got := answerConfidence(ExitMargin, probs); math.Abs(float64(got-0.35)) > 1e-7 {
		t.Errorf("margin = %v, want 0.35", got)
	}
}

// TestParseExitMetric round-trips every metric name.
func TestParseExitMetric(t *testing.T) {
	for _, m := range []ExitMetric{ExitMargin, ExitMaxProb, ExitAttnMax} {
		got, err := ParseExitMetric(m.String())
		if err != nil || got != m {
			t.Errorf("ParseExitMetric(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseExitMetric("entropy"); err == nil {
		t.Error("unknown metric name accepted")
	}
}

// FuzzExitPolicy drives the gate with arbitrary threshold/metric/
// min-hop/fallback bits over a small random model: no input may panic,
// the exit hop must stay in [1, hops], and whenever the gate cannot
// fire (disabled, NaN, or above the confidence ceiling) the logits
// must be bit-identical to the full path.
func FuzzExitPolicy(f *testing.F) {
	f.Add(uint32(0x3F000000), uint8(0), 1, uint32(0), int64(1))           // th=0.5 margin
	f.Add(uint32(0x3F800000), uint8(1), 0, uint32(0x3F000000), int64(2))  // th=1 maxprob fb=0.5
	f.Add(uint32(0x7F800000), uint8(2), 2, uint32(0), int64(3))           // th=+Inf attnmax
	f.Add(uint32(0x7FC00000), uint8(0), -3, uint32(0x7FC00000), int64(4)) // NaN everywhere
	f.Add(uint32(0), uint8(255), 100, uint32(0xFF800000), int64(5))       // disabled, junk metric, -Inf fallback
	f.Fuzz(func(t *testing.T, thBits uint32, metric uint8, minHops int, fbBits uint32, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Dim:     4 + rng.Intn(6),
			Hops:    1 + rng.Intn(3),
			Vocab:   8 + rng.Intn(8),
			Answers: 2 + rng.Intn(4),
			MaxSent: 6,
		}
		m, err := NewModel(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		policy := ExitPolicy{
			Metric:    ExitMetric(metric),
			Threshold: math.Float32frombits(thBits),
			MinHops:   minHops,
			Fallback:  math.Float32frombits(fbBits),
		}
		sentences := make([][]int, 1+rng.Intn(5))
		for i := range sentences {
			sentences[i] = randWords(rng, cfg.Vocab, 4)
		}
		ex := Example{Sentences: sentences, Question: randWords(rng, cfg.Vocab, 4)}

		var g Forward
		got := m.ApplyGated(ex, 0.01, policy, &g, nil, nil)
		if got.ExitHop < 1 || got.ExitHop > cfg.Hops {
			t.Fatalf("exit hop %d outside [1, %d]", got.ExitHop, cfg.Hops)
		}

		th := policy.Threshold
		canFire := th > 0 && th <= 1 // confidences live in [0, 1]; NaN fails both
		if !canFire {
			if got.ExitHop != cfg.Hops {
				t.Fatalf("exit hop %d with unfireable threshold %v", got.ExitHop, th)
			}
			var f Forward
			want := m.ApplyInto(ex, 0.01, &f)
			for j := range want.Logits {
				if math.Float32bits(got.Logits[j]) != math.Float32bits(want.Logits[j]) {
					t.Fatalf("logit %d: gated %x != full %x under unfireable policy %+v", j,
						math.Float32bits(got.Logits[j]), math.Float32bits(want.Logits[j]), policy)
				}
			}
		}
	})
}
