package memnn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"mnnfast/internal/babi"
	"mnnfast/internal/tensor"
)

func extModel(t *testing.T, c *Corpus, cfgMod func(*Config), seed int64) *Model {
	t.Helper()
	cfg := Config{
		Dim:     16,
		Hops:    2,
		Vocab:   c.Vocab.Size(),
		Answers: len(c.Answers),
		MaxSent: c.MaxSent,
	}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	m, err := NewModel(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTyingString(t *testing.T) {
	if TyingAdjacent.String() != "adjacent" || TyingLayerwise.String() != "layerwise" {
		t.Error("tying names wrong")
	}
	if Tying(9).String() == "" {
		t.Error("unknown tying should still format")
	}
}

func TestConfigRejectsUnknownTying(t *testing.T) {
	cfg := Config{Dim: 4, Hops: 1, Vocab: 4, Answers: 2, MaxSent: 4, Tying: Tying(7)}
	if _, err := NewModel(cfg, rand.New(rand.NewSource(0))); err == nil {
		t.Error("unknown tying accepted")
	}
}

func TestLayerwiseModelShape(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 30, 6, 50)
	m := extModel(t, c, func(cfg *Config) { cfg.Tying = TyingLayerwise; cfg.Hops = 3 }, 50)
	if len(m.Emb) != 2 {
		t.Errorf("layer-wise Emb count = %d, want 2 (A and C)", len(m.Emb))
	}
	if len(m.TimeIn) != 1 || len(m.TimeOut) != 1 {
		t.Errorf("layer-wise temporal tables = %d/%d, want 1/1", len(m.TimeIn), len(m.TimeOut))
	}
	if m.H == nil || m.H.Rows != 16 || m.H.Cols != 16 {
		t.Fatalf("layer-wise H missing or misshapen: %+v", m.H)
	}
	// Forward still produces valid distributions.
	f := m.Apply(c.Train[0], 0)
	for k, p := range f.P {
		if s := p.Sum(); math.Abs(float64(s)-1) > 1e-4 {
			t.Errorf("hop %d attention sums to %v", k, s)
		}
	}
}

func TestLayerwiseNumParamsIndependentOfHops(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 20, 6, 51)
	m2 := extModel(t, c, func(cfg *Config) { cfg.Tying = TyingLayerwise; cfg.Hops = 2 }, 51)
	m5 := extModel(t, c, func(cfg *Config) { cfg.Tying = TyingLayerwise; cfg.Hops = 5 }, 51)
	if m2.NumParams() != m5.NumParams() {
		t.Errorf("layer-wise params depend on hop count: %d vs %d", m2.NumParams(), m5.NumParams())
	}
	adj := extModel(t, c, func(cfg *Config) { cfg.Hops = 5 }, 51)
	if adj.NumParams() <= m5.NumParams() {
		t.Errorf("adjacent (%d) should carry more params than layer-wise (%d) at 5 hops",
			adj.NumParams(), m5.NumParams())
	}
}

// gradCheck verifies analytic gradients against central differences for
// an arbitrary model configuration.
func gradCheck(t *testing.T, m *Model, ex Example, seed int64) {
	t.Helper()
	g := newGrads(m)
	g.zero()
	m.backward(ex, m.Apply(ex, 0), g)

	lossOf := func() float64 {
		f := m.Apply(ex, 0)
		probs := f.Logits.Clone()
		tensor.Softmax(probs)
		return -math.Log(math.Max(float64(probs[ex.Answer]), 1e-30))
	}
	type pair struct {
		name  string
		param *tensor.Matrix
		grad  *tensor.Matrix
	}
	pairs := []pair{{"B", m.B, g.b}, {"W", m.W, g.w}}
	for i := range m.Emb {
		pairs = append(pairs, pair{"Emb", m.Emb[i], g.emb[i]})
	}
	for k := range m.TimeIn {
		pairs = append(pairs, pair{"TimeIn", m.TimeIn[k], g.timeIn[k]})
		pairs = append(pairs, pair{"TimeOut", m.TimeOut[k], g.timeOut[k]})
	}
	if m.H != nil {
		pairs = append(pairs, pair{"H", m.H, g.h})
	}
	const eps, cutoff = 1e-2, 2e-3
	rng := rand.New(rand.NewSource(seed))
	for _, pp := range pairs {
		checked := 0
		for try := 0; try < 400 && checked < 6; try++ {
			i := rng.Intn(len(pp.param.Data))
			analytic := float64(pp.grad.Data[i])
			orig := pp.param.Data[i]
			pp.param.Data[i] = orig + eps
			up := lossOf()
			pp.param.Data[i] = orig - eps
			down := lossOf()
			pp.param.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric) < cutoff || math.Abs(analytic) < cutoff {
				continue
			}
			checked++
			if rel := math.Abs(analytic-numeric) / math.Abs(numeric); rel > 0.1 {
				t.Errorf("%s[%d]: analytic %g vs numeric %g (rel %g)", pp.name, i, analytic, numeric, rel)
			}
		}
	}
}

func TestGradientCheckLayerwise(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 10, 4, 52)
	m := extModel(t, c, func(cfg *Config) {
		cfg.Dim = 5
		cfg.Tying = TyingLayerwise
		cfg.Hops = 3
	}, 52)
	gradCheck(t, m, c.Train[0], 52)
}

func TestGradientCheckPositionEncoding(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 10, 4, 53)
	m := extModel(t, c, func(cfg *Config) {
		cfg.Dim = 5
		cfg.Position = true
	}, 53)
	gradCheck(t, m, c.Train[0], 53)
}

func TestGradientCheckLinearAttention(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 10, 4, 54)
	m := extModel(t, c, func(cfg *Config) { cfg.Dim = 5 }, 54)
	m.LinearAttention = true
	gradCheck(t, m, c.Train[0], 54)
}

func TestPositionEncodingOrderSensitivity(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 10, 6, 55)
	pe := extModel(t, c, func(cfg *Config) { cfg.Position = true }, 55)
	bow := extModel(t, c, nil, 55)

	ex := c.Train[0]
	rev := Example{Sentences: ex.Sentences, Answer: ex.Answer}
	rev.Question = make([]int, len(ex.Question))
	for i, w := range ex.Question {
		rev.Question[len(ex.Question)-1-i] = w
	}
	fPE := pe.Apply(ex, 0)
	fPErev := pe.Apply(rev, 0)
	if tensor.MaxAbsDiff(fPE.Logits, fPErev.Logits) < 1e-6 {
		t.Error("position encoding should distinguish question word order")
	}
	fBoW := bow.Apply(ex, 0)
	fBoWrev := bow.Apply(rev, 0)
	if tensor.MaxAbsDiff(fBoW.Logits, fBoWrev.Logits) > 1e-5 {
		t.Error("plain BoW must be order-invariant")
	}
}

func TestLinearAttentionSkipsSoftmax(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 10, 6, 56)
	m := extModel(t, c, nil, 56)
	m.LinearAttention = true
	f := m.Apply(c.Train[0], 0)
	// Raw inner products do not normalize to 1 (vanishingly unlikely).
	if s := f.P[0].Sum(); math.Abs(float64(s)-1) < 1e-6 {
		t.Errorf("linear attention looks normalized (sum %v)", s)
	}
	m.LinearAttention = false
	f2 := m.Apply(c.Train[0], 0)
	if s := f2.P[0].Sum(); math.Abs(float64(s)-1) > 1e-4 {
		t.Errorf("softmax attention does not sum to 1: %v", s)
	}
}

func TestTrainLayerwiseConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	c := smallCorpus(t, babi.TaskSingleFact, 400, 8, 57)
	m := extModel(t, c, func(cfg *Config) { cfg.Tying = TyingLayerwise; cfg.Hops = 3 }, 57)
	opt := DefaultTrainOptions()
	opt.Epochs = 60
	if _, err := m.Train(c.Train, opt); err != nil {
		t.Fatal(err)
	}
	// Layer-wise tying trades capacity for parameter sharing; require
	// it to learn far beyond the ~25% answer-class prior.
	if acc := m.Accuracy(c.Test, 0); acc < 0.6 {
		t.Errorf("layer-wise test accuracy %.2f < 0.60", acc)
	}
}

func TestTrainLinearStart(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 100, 8, 58)
	m := extModel(t, c, nil, 58)
	opt := DefaultTrainOptions()
	opt.Epochs = 10
	opt.LinearStartEpochs = 4
	res, err := m.Train(c.Train, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.LinearAttention {
		t.Error("LinearAttention left enabled after training")
	}
	if len(res.EpochLoss) != 10 {
		t.Errorf("%d epoch losses", len(res.EpochLoss))
	}
	if res.EpochLoss[len(res.EpochLoss)-1] >= res.EpochLoss[0] {
		t.Errorf("loss did not decrease through linear start: %v", res.EpochLoss)
	}
}

func TestTrainPositionEncodingConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	c := smallCorpus(t, babi.TaskSingleFact, 400, 8, 59)
	m := extModel(t, c, func(cfg *Config) { cfg.Position = true }, 59)
	opt := DefaultTrainOptions()
	opt.Epochs = 60
	if _, err := m.Train(c.Train, opt); err != nil {
		t.Fatal(err)
	}
	// PE weights shrink the effective signal of plain where-is stories;
	// require clear learning beyond the ~25% answer-class prior.
	if acc := m.Accuracy(c.Test, 0); acc < 0.6 {
		t.Errorf("PE test accuracy %.2f < 0.60", acc)
	}
}

func TestSaveLoadLayerwise(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 40, 6, 60)
	m := extModel(t, c, func(cfg *Config) { cfg.Tying = TyingLayerwise; cfg.Hops = 2 }, 60)
	var buf bytes.Buffer
	if err := Save(&buf, m, c); err != nil {
		t.Fatal(err)
	}
	m2, _, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.H == nil || !tensor.Equal(m.H, m2.H, 0) {
		t.Error("H not preserved through save/load")
	}
	for _, ex := range c.Test {
		if m.Predict(ex) != m2.Predict(ex) {
			t.Fatal("layer-wise loaded model predicts differently")
		}
	}
}

func TestMiniBatchTraining(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 120, 8, 61)
	// Batch sizes 1 and 4 must both converge; batch=1 equals the
	// default path bit-for-bit.
	def := extModel(t, c, nil, 61)
	b1 := extModel(t, c, nil, 61)
	opt := DefaultTrainOptions()
	opt.Epochs = 6
	resDef, err := def.Train(c.Train, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt1 := opt
	opt1.BatchSize = 1
	resB1, err := b1.Train(c.Train, opt1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resDef.EpochLoss {
		if resDef.EpochLoss[i] != resB1.EpochLoss[i] {
			t.Fatalf("batch=1 diverges from default at epoch %d: %v vs %v",
				i, resB1.EpochLoss[i], resDef.EpochLoss[i])
		}
	}
	b4 := extModel(t, c, nil, 61)
	opt4 := opt
	opt4.BatchSize = 4
	opt4.Epochs = 12
	res4, err := b4.Train(c.Train, opt4)
	if err != nil {
		t.Fatal(err)
	}
	if last := res4.EpochLoss[len(res4.EpochLoss)-1]; last >= res4.EpochLoss[0] {
		t.Errorf("mini-batch training did not reduce loss: %v", res4.EpochLoss)
	}
}

func TestEvaluateReport(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 120, 8, 62)
	m := extModel(t, c, nil, 62)
	opt := DefaultTrainOptions()
	opt.Epochs = 15
	if _, err := m.Train(c.Train, opt); err != nil {
		t.Fatal(err)
	}
	r := m.Evaluate(c, c.Test, 0)
	if r.Overall != m.Accuracy(c.Test, 0) {
		t.Errorf("report overall %v != Accuracy %v", r.Overall, m.Accuracy(c.Test, 0))
	}
	var total int
	for _, counts := range r.PerAnswer {
		if counts[0] > counts[1] {
			t.Fatalf("per-answer correct exceeds total: %v", counts)
		}
		total += counts[1]
	}
	if total != len(c.Test) {
		t.Errorf("per-answer totals %d != test size %d", total, len(c.Test))
	}
	var errors int
	for _, n := range r.Confusions {
		errors += n
	}
	wantErrors := int(float64(len(c.Test))*(1-r.Overall) + 0.5)
	if errors != wantErrors {
		t.Errorf("confusion count %d != error count %d", errors, wantErrors)
	}
	out := r.String()
	if !strings.Contains(out, "overall accuracy") || !strings.Contains(out, "per-answer accuracy") {
		t.Errorf("report text incomplete:\n%s", out)
	}
}

func TestValidationCurveAndEarlyStop(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 200, 8, 63)
	m := extModel(t, c, nil, 63)
	opt := DefaultTrainOptions()
	opt.Epochs = 50
	opt.Validation = c.Test
	opt.Patience = 3
	res, err := m.Train(c.Train, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ValAccuracy) != res.StoppedAt {
		t.Fatalf("%d validation points for %d epochs", len(res.ValAccuracy), res.StoppedAt)
	}
	if res.StoppedAt > opt.Epochs {
		t.Fatalf("ran %d epochs of %d", res.StoppedAt, opt.Epochs)
	}
	for _, a := range res.ValAccuracy {
		if a < 0 || a > 1 {
			t.Fatalf("validation accuracy out of range: %v", a)
		}
	}
	// Early stopping must hold its contract: if we stopped early, the
	// final Patience epochs brought no new best.
	if res.StoppedAt < opt.Epochs {
		best := 0.0
		bestIdx := 0
		for i, a := range res.ValAccuracy {
			if a >= best {
				best = a
				bestIdx = i
			}
		}
		if len(res.ValAccuracy)-1-bestIdx < opt.Patience {
			t.Errorf("stopped early but best epoch %d is within patience of end (%d epochs)",
				bestIdx, len(res.ValAccuracy))
		}
	}
}

func TestValidationWithoutPatienceRunsAllEpochs(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 60, 6, 64)
	m := extModel(t, c, nil, 64)
	opt := DefaultTrainOptions()
	opt.Epochs = 5
	opt.Validation = c.Test
	res, err := m.Train(c.Train, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoppedAt != 5 || len(res.ValAccuracy) != 5 {
		t.Errorf("ran %d epochs with %d val points, want 5/5", res.StoppedAt, len(res.ValAccuracy))
	}
}
