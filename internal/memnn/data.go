// Package memnn implements end-to-end memory networks (Sukhbaatar et
// al. 2015) — the MemNN the MnnFast paper accelerates. It provides the
// model (multi-hop attention with adjacent weight sharing and temporal
// encoding), full SGD training with backpropagation, the baseline
// layer-by-layer inference dataflow of the paper's Figure 5(a), and the
// evaluation helpers that the zero-skipping accuracy experiments use.
package memnn

import (
	"fmt"

	"mnnfast/internal/babi"
	"mnnfast/internal/vocab"
)

// Example is a vectorized QA instance: token IDs per story sentence
// (most recent last), question token IDs, and the answer class index.
type Example struct {
	Sentences [][]int
	Question  []int
	Answer    int
	Support   []int // ground-truth supporting sentence indices (may be nil)
}

// Corpus is a vectorized dataset with a frozen vocabulary and answer
// inventory shared by the train and test splits.
type Corpus struct {
	Vocab     *vocab.Vocabulary
	Answers   []string       // answer class index → word
	AnswerIdx map[string]int // word → answer class index
	MaxSent   int            // memory capacity ns used for encoding
	Train     []Example
	Test      []Example
}

// BuildCorpus vectorizes train and test datasets with a shared
// vocabulary. Stories longer than maxSent keep only their most recent
// maxSent sentences (the standard bAbI preprocessing; supporting-fact
// indices are remapped or dropped accordingly). maxSent <= 0 uses the
// datasets' maximum story length.
func BuildCorpus(train, test *babi.Dataset, maxSent int) *Corpus {
	if maxSent <= 0 {
		maxSent = train.MaxSentences()
		if m := test.MaxSentences(); m > maxSent {
			maxSent = m
		}
	}
	c := &Corpus{
		Vocab:     vocab.New(),
		AnswerIdx: make(map[string]int),
		MaxSent:   maxSent,
	}
	c.Train = c.vectorize(train, true)
	c.Test = c.vectorize(test, true)
	return c
}

func (c *Corpus) vectorize(d *babi.Dataset, grow bool) []Example {
	if d == nil {
		return nil
	}
	out := make([]Example, 0, len(d.Stories))
	for _, s := range d.Stories {
		sents := s.Sentences
		drop := 0
		if len(sents) > c.MaxSent {
			drop = len(sents) - c.MaxSent
			sents = sents[drop:]
		}
		ex := Example{
			Sentences: make([][]int, len(sents)),
			Question:  c.Vocab.Encode(s.Question),
		}
		for i, sent := range sents {
			ex.Sentences[i] = c.Vocab.Encode(sent)
		}
		for _, sup := range s.Support {
			if sup >= drop {
				ex.Support = append(ex.Support, sup-drop)
			}
		}
		idx, ok := c.AnswerIdx[s.Answer]
		if !ok {
			idx = len(c.Answers)
			c.AnswerIdx[s.Answer] = idx
			c.Answers = append(c.Answers, s.Answer)
		}
		ex.Answer = idx
		out = append(out, ex)
	}
	return out
}

// AnswerWord returns the word of answer class i.
func (c *Corpus) AnswerWord(i int) string {
	if i < 0 || i >= len(c.Answers) {
		panic(fmt.Sprintf("memnn: answer class %d out of range [0, %d)", i, len(c.Answers)))
	}
	return c.Answers[i]
}

// VectorizeStory converts a single story against the frozen corpus
// vocabulary; unknown words are an error so inference cannot silently
// drift from the trained vocabulary.
func (c *Corpus) VectorizeStory(s babi.Story) (Example, error) {
	var ex Example
	sents := s.Sentences
	if len(sents) > c.MaxSent {
		sents = sents[len(sents)-c.MaxSent:]
	}
	ex.Sentences = make([][]int, len(sents))
	for i, sent := range sents {
		ids, err := c.Vocab.EncodeStrict(sent)
		if err != nil {
			return Example{}, fmt.Errorf("memnn: sentence %d: %w", i, err)
		}
		ex.Sentences[i] = ids
	}
	q, err := c.Vocab.EncodeStrict(s.Question)
	if err != nil {
		return Example{}, fmt.Errorf("memnn: question: %w", err)
	}
	ex.Question = q
	if idx, ok := c.AnswerIdx[s.Answer]; ok {
		ex.Answer = idx
	} else {
		ex.Answer = -1
	}
	return ex, nil
}
