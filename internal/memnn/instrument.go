package memnn

import (
	"fmt"
	"time"

	"mnnfast/internal/sparse"
	"mnnfast/internal/tensor"
	"mnnfast/internal/trace"
)

// Instrumentation accumulates per-stage wall-clock time and
// zero-skipping row counters across forward passes. It is plain data:
// accumulating into it costs two time.Now reads per stage and a handful
// of integer adds, and allocates nothing, so a serving loop can keep
// one per pooled Forward and drain it into metrics after every request.
//
// The stages mirror the paper's per-operation accounting (Fig 9): the
// embedding operation (question + memory encode), the inference
// operation (per-hop inner product, softmax, weighted sum, state
// update), and the final output projection.
type Instrumentation struct {
	EmbedNS     int64 // question + memory embedding time
	AttentionNS int64 // per-hop inner product + softmax + weighted sum + state update
	OutputNS    int64 // final answer projection W·u
	GateNS      int64 // early-exit confidence gate evaluations (see ExitPolicy)
	SkippedRows int64 // weighted-sum rows bypassed by zero-skipping
	TotalRows   int64 // weighted-sum rows considered
	ProbedRows  int64 // rows scored by topk IVF probes (0 on the exact path)
	CandRows    int64 // rows surviving the topk cut into softmax + weighted sum

	// Ev, when non-nil, receives per-stage trace events
	// (embed-question/embed-memory/hop/output, plus the scheduler's
	// per-worker events in the batched path) with skipped-row
	// annotations. Reset nils it; callers re-attach their buffer after
	// each Reset. Event recording only reads clocks and writes into the
	// fixed buffer — it never changes what the forward pass computes,
	// so traced and untraced passes are bit-identical.
	Ev *trace.Events
}

// Reset zeroes every accumulator.
func (ins *Instrumentation) Reset() { *ins = Instrumentation{} }

// lap adds the time since *mark to *acc and advances *mark, so
// consecutive stages share one clock read at each boundary.
//
//mnnfast:hotpath
func lap(mark *time.Time, acc *int64) {
	now := time.Now()
	*acc += now.Sub(*mark).Nanoseconds()
	*mark = now
}

// EmbeddedStory caches the per-hop embedded memories (M_IN, M_OUT) of
// one fixed story. Embedding depends only on the story sentences and
// their count — not on the question — so a serving session that answers
// several questions against an unchanged story can embed once and reuse
// the matrices, the serving-side analogue of the paper's embedding
// cache (§3.3). The matrices are read-only during ApplyInstrumented, so
// one EmbeddedStory may serve concurrent readers; invalidate (re-embed)
// whenever the story changes, since the temporal encoding bakes in the
// sentence count.
type EmbeddedStory struct {
	NS     int              // number of story sentences the cache was built for
	MemIn  []*tensor.Matrix // per hop: ns×d input memory
	MemOut []*tensor.Matrix // per hop: ns×d output memory

	// Index holds the per-hop IVF indices for approximate top-k
	// attention, built by Model.BuildStoryIndex after embedding. Empty
	// (or shorter than the hop count) means exact attention for the
	// missing hops. EmbedStoryInto truncates it: re-embedding moves the
	// rows, so any previous index is stale.
	Index []*sparse.TopKIndex
}

// EmbedStoryInto embeds ex's story into es, reusing es's buffers
// grow-only. Only ex.Sentences is consulted.
//
//mnnfast:hotpath
func (m *Model) EmbedStoryInto(ex Example, es *EmbeddedStory) {
	ns := len(ex.Sentences)
	if ns == 0 {
		panic("memnn: EmbedStoryInto on example with no story sentences")
	}
	if ns > m.Cfg.MaxSent {
		panic(fmt.Sprintf("memnn: story of %d sentences exceeds MaxSent %d", ns, m.Cfg.MaxSent))
	}
	hops, d := m.Cfg.Hops, m.Cfg.Dim
	if cap(es.MemIn) < hops {
		es.MemIn = make([]*tensor.Matrix, hops)
		es.MemOut = make([]*tensor.Matrix, hops)
	}
	es.MemIn, es.MemOut = es.MemIn[:hops], es.MemOut[:hops]
	es.NS = ns
	es.Index = es.Index[:0] // stale: the rows are about to move
	for k := 0; k < hops; k++ {
		in := growMat(es.MemIn[k], ns, d)
		out := growMat(es.MemOut[k], ns, d)
		es.MemIn[k], es.MemOut[k] = in, out
		ti := m.timeIdx(k)
		for i := 0; i < ns; i++ {
			m.encodeInto(m.embIn(k), ex.Sentences[i], m.temporalRow(m.TimeIn[ti], i, ns), in.Row(i))
			m.encodeInto(m.embOut(k), ex.Sentences[i], m.temporalRow(m.TimeOut[ti], i, ns), out.Row(i))
		}
	}
}

// ApplyInstrumented is ApplyInto with two optional extras: es, a cached
// EmbeddedStory whose matrices replace the per-call memory embedding
// (es.NS must match the example's sentence count), and ins, a per-stage
// time and skip-counter accumulator. Either may be nil. With es set,
// f.MemIn/f.MemOut are left untouched (the trainer's introspection of
// them does not apply to the cached inference path).
//
//mnnfast:hotpath
func (m *Model) ApplyInstrumented(ex Example, skipThreshold float32, f *Forward, es *EmbeddedStory, ins *Instrumentation) *Forward {
	return m.applyInto(ex, skipThreshold, f, es, ins, ExitPolicy{})
}

// PredictInstrumented returns the argmax answer class using the cached
// embedded story and instrumentation plumbing of ApplyInstrumented.
//
//mnnfast:hotpath
func (m *Model) PredictInstrumented(ex Example, threshold float32, f *Forward, es *EmbeddedStory, ins *Instrumentation) int {
	return m.applyInto(ex, threshold, f, es, ins, ExitPolicy{}).Logits.ArgMax()
}
