package memnn

import (
	"encoding/gob"
	"fmt"
	"io"

	"mnnfast/internal/tensor"
	"mnnfast/internal/vocab"
)

// snapshot is the gob wire format of a model plus the corpus metadata
// needed to use it (vocabulary and answer inventory).
type snapshot struct {
	Cfg     Config
	B       *tensor.Matrix
	Emb     []*tensor.Matrix
	TimeIn  []*tensor.Matrix
	TimeOut []*tensor.Matrix
	H       *tensor.Matrix // layer-wise tying only; nil otherwise
	W       *tensor.Matrix
	Words   []string // vocabulary in ID order
	Answers []string
	MaxSent int
}

// Save writes the model and its corpus metadata to w in gob format.
func Save(w io.Writer, m *Model, c *Corpus) error {
	if m == nil || c == nil {
		return fmt.Errorf("memnn: Save(nil)")
	}
	s := snapshot{
		Cfg: m.Cfg, B: m.B, Emb: m.Emb,
		TimeIn: m.TimeIn, TimeOut: m.TimeOut, H: m.H, W: m.W,
		Words: c.Vocab.Words(), Answers: c.Answers, MaxSent: c.MaxSent,
	}
	if err := gob.NewEncoder(w).Encode(&s); err != nil {
		return fmt.Errorf("memnn: encode: %w", err)
	}
	return nil
}

// Load reads a model saved with Save. The returned Corpus carries the
// frozen vocabulary and answer inventory (no train/test examples).
func Load(r io.Reader) (*Model, *Corpus, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, nil, fmt.Errorf("memnn: decode: %w", err)
	}
	if err := s.Cfg.validate(); err != nil {
		return nil, nil, fmt.Errorf("memnn: corrupt snapshot: %w", err)
	}
	wantEmb, wantTime := s.Cfg.Hops+1, s.Cfg.Hops
	if s.Cfg.Tying == TyingLayerwise {
		wantEmb, wantTime = 2, 1
		if s.H == nil {
			return nil, nil, fmt.Errorf("memnn: corrupt snapshot: layer-wise model missing H")
		}
	}
	if len(s.Emb) != wantEmb || len(s.TimeIn) != wantTime || len(s.TimeOut) != wantTime {
		return nil, nil, fmt.Errorf("memnn: corrupt snapshot: table counts do not match %d hops (%s tying)",
			s.Cfg.Hops, s.Cfg.Tying)
	}
	m := &Model{
		Cfg: s.Cfg, B: s.B, Emb: s.Emb,
		TimeIn: s.TimeIn, TimeOut: s.TimeOut, H: s.H, W: s.W,
	}
	c := &Corpus{
		Vocab:     rebuildVocab(s.Words),
		Answers:   s.Answers,
		AnswerIdx: make(map[string]int, len(s.Answers)),
		MaxSent:   s.MaxSent,
	}
	for i, a := range s.Answers {
		c.AnswerIdx[a] = i
	}
	return m, c, nil
}

func rebuildVocab(words []string) *vocab.Vocabulary {
	v := vocab.New()
	for i, w := range words {
		if i == 0 {
			continue // index 0 is the pad token New() already adds
		}
		v.Add(w)
	}
	return v
}
