//go:build !race

package memnn

const raceEnabled = false
