package memnn

import (
	"math"
	"math/rand"
	"testing"

	"mnnfast/internal/sparse"
)

// topkCase is a model with topk armed plus one embedded, indexed story
// and a batch of questions against it.
type topkCase struct {
	model   *Model
	exs     []Example
	stories []*EmbeddedStory
	th      float32
}

func randTopKCase(t *testing.T, rng *rand.Rand, batch int, cfgTopK TopKConfig) topkCase {
	t.Helper()
	cfg := Config{
		Dim:      4 + rng.Intn(12),
		Hops:     1 + rng.Intn(3),
		Vocab:    8 + rng.Intn(24),
		Answers:  2 + rng.Intn(8),
		MaxSent:  64,
		Position: rng.Intn(2) == 0,
		Tying:    Tying(rng.Intn(2)),
	}
	model, err := NewModel(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	model.SetTopK(cfgTopK)

	nStories := 1 + rng.Intn(3)
	type story struct {
		sentences [][]int
		es        *EmbeddedStory
	}
	ss := make([]story, nStories)
	for i := range ss {
		ns := 8 + rng.Intn(cfg.MaxSent-8)
		sentences := make([][]int, ns)
		for j := range sentences {
			sentences[j] = randWords(rng, cfg.Vocab, 6)
		}
		es := new(EmbeddedStory)
		model.EmbedStoryInto(Example{Sentences: sentences}, es)
		model.BuildStoryIndex(es)
		ss[i] = story{sentences: sentences, es: es}
	}

	c := topkCase{model: model}
	if rng.Intn(2) == 0 {
		c.th = float32(rng.Float64() * 0.05)
	}
	for q := 0; q < batch; q++ {
		s := ss[rng.Intn(nStories)]
		c.exs = append(c.exs, Example{
			Sentences: s.sentences,
			Question:  randWords(rng, cfg.Vocab, 5),
		})
		c.stories = append(c.stories, s.es)
	}
	return c
}

// TestTopKFullProbeMatchesExact pins the degeneration contract at the
// model level: with every list probed and no top-k cut, the topk hop
// performs the exact hop's operations on the same rows in the same
// order, so the logits are bit-identical to the exact path.
func TestTopKFullProbeMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for caseN := 0; caseN < 40; caseN++ {
		c := randTopKCase(t, rng, 1, TopKConfig{
			Enabled: true,
			MinRows: 1,
			// NProbe above any plausible list count = probe everything;
			// K 0 = keep everything.
			NProbe: 1 << 20,
		})
		ex, es := c.exs[0], c.stories[0]
		var fTop, fExact Forward
		var ins Instrumentation

		got := c.model.ApplyInstrumented(ex, c.th, &fTop, es, &ins)
		gotBits := make([]uint32, len(got.Logits))
		for i, v := range got.Logits {
			gotBits[i] = math.Float32bits(v)
		}
		if ins.ProbedRows != int64(es.NS)*int64(c.model.Cfg.Hops) {
			t.Fatalf("case %d: full probe scored %d rows, want %d", caseN, ins.ProbedRows, es.NS*c.model.Cfg.Hops)
		}

		c.model.SetTopK(TopKConfig{}) // exact path, same cached story
		want := c.model.ApplyInstrumented(ex, c.th, &fExact, es, nil)
		for i := range want.Logits {
			if gotBits[i] != math.Float32bits(want.Logits[i]) {
				t.Fatalf("case %d: logit %d = %x, want %x (full-probe topk not bit-identical to exact)",
					caseN, i, gotBits[i], math.Float32bits(want.Logits[i]))
			}
		}
	}
}

// TestTopKBatchedMatchesUnbatched pins the batch contract under
// approximate attention: for narrow probes and real top-k cuts, every
// question of a batched pass answers bit-identically to the same
// question running unbatched against the same index.
func TestTopKBatchedMatchesUnbatched(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	var bf BatchForward
	for caseN := 0; caseN < 60; caseN++ {
		batch := 1 + rng.Intn(8)
		c := randTopKCase(t, rng, batch, TopKConfig{
			Enabled: true,
			MinRows: 1,
			K:       1 + rng.Intn(12),
			NProbe:  1 + rng.Intn(4),
		})
		out := make([]int, batch)
		var insB Instrumentation
		c.model.PredictBatchInstrumented(c.exs, c.th, ExitPolicy{}, c.stories, &bf, &insB, out)
		if insB.ProbedRows == 0 {
			t.Fatalf("case %d: batched topk pass probed nothing", caseN)
		}

		var f Forward
		var insU Instrumentation
		for q := range c.exs {
			want := c.model.ApplyInstrumented(c.exs[q], c.th, &f, c.stories[q], &insU)
			got := bf.Logits(q)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want.Logits[i]) {
					t.Fatalf("case %d q %d: logit %d = %x, want %x (batched topk not bit-identical)",
						caseN, q, i, math.Float32bits(got[i]), math.Float32bits(want.Logits[i]))
				}
			}
		}
		if insB.ProbedRows != insU.ProbedRows || insB.CandRows != insU.CandRows ||
			insB.SkippedRows != insU.SkippedRows || insB.TotalRows != insU.TotalRows {
			t.Fatalf("case %d: batched counters {probed %d cand %d skip %d rows %d} != unbatched {%d %d %d %d}",
				caseN, insB.ProbedRows, insB.CandRows, insB.SkippedRows, insB.TotalRows,
				insU.ProbedRows, insU.CandRows, insU.SkippedRows, insU.TotalRows)
		}
	}
}

// TestTopKGatedBatchedMatchesUnbatched runs the gate on top of topk
// attention: exit hops and logits must agree bit-for-bit between the
// batched and unbatched gated passes.
func TestTopKGatedBatchedMatchesUnbatched(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	var bf BatchForward
	for caseN := 0; caseN < 40; caseN++ {
		batch := 1 + rng.Intn(8)
		c := randTopKCase(t, rng, batch, TopKConfig{
			Enabled: true,
			MinRows: 1,
			K:       1 + rng.Intn(12),
			NProbe:  1 + rng.Intn(4),
		})
		if c.model.Cfg.Hops < 2 {
			continue
		}
		policy := ExitPolicy{
			Metric:    ExitMetric(rng.Intn(int(numExitMetrics))),
			Threshold: float32(rng.Float64()),
		}
		out := make([]int, batch)
		c.model.PredictBatchInstrumented(c.exs, c.th, policy, c.stories, &bf, nil, out)

		var f Forward
		for q := range c.exs {
			want := c.model.ApplyGated(c.exs[q], c.th, policy, &f, c.stories[q], nil)
			if bf.ExitHop(q) != want.ExitHop {
				t.Fatalf("case %d q %d: batched exit hop %d, unbatched %d", caseN, q, bf.ExitHop(q), want.ExitHop)
			}
			got := bf.Logits(q)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want.Logits[i]) {
					t.Fatalf("case %d q %d: gated logit %d differs", caseN, q, i)
				}
			}
		}
	}
}

// TestBuildStoryIndexFallback pins the exact-fallback rule: stories
// below MinRows build no index and run the exact path untouched.
func TestBuildStoryIndexFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	cfg := Config{Dim: 8, Hops: 2, Vocab: 16, Answers: 4, MaxSent: 32}
	m, err := NewModel(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	m.SetTopK(TopKConfig{Enabled: true, K: 4, NProbe: 1, MinRows: 16})

	sentences := make([][]int, 8) // below the 16-row floor
	for j := range sentences {
		sentences[j] = randWords(rng, cfg.Vocab, 4)
	}
	ex := Example{Sentences: sentences, Question: randWords(rng, cfg.Vocab, 4)}
	es := new(EmbeddedStory)
	m.EmbedStoryInto(ex, es)
	if m.BuildStoryIndex(es) {
		t.Fatal("BuildStoryIndex indexed a story below MinRows")
	}
	if len(es.Index) != 0 {
		t.Fatalf("fallback left %d indices", len(es.Index))
	}

	var f, fExact Forward
	var ins Instrumentation
	got := m.ApplyInstrumented(ex, 0, &f, es, &ins)
	if ins.ProbedRows != 0 || ins.CandRows != 0 {
		t.Fatalf("fallback story still probed: %+v", ins)
	}
	m.SetTopK(TopKConfig{})
	want := m.ApplyInstrumented(ex, 0, &fExact, es, nil)
	for i := range want.Logits {
		if math.Float32bits(got.Logits[i]) != math.Float32bits(want.Logits[i]) {
			t.Fatal("fallback path differs from exact")
		}
	}
}

// TestEmbedStoryIntoInvalidatesIndex: re-embedding moves the rows, so
// the cached index must not survive it.
func TestEmbedStoryIntoInvalidatesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	cfg := Config{Dim: 8, Hops: 2, Vocab: 16, Answers: 4, MaxSent: 64}
	m, err := NewModel(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	m.SetTopK(TopKConfig{Enabled: true, MinRows: 1})

	sentences := make([][]int, 24)
	for j := range sentences {
		sentences[j] = randWords(rng, cfg.Vocab, 4)
	}
	ex := Example{Sentences: sentences}
	es := new(EmbeddedStory)
	m.EmbedStoryInto(ex, es)
	if !m.BuildStoryIndex(es) {
		t.Fatal("BuildStoryIndex declined an eligible story")
	}
	if len(es.Index) != cfg.Hops {
		t.Fatalf("built %d indices, want %d", len(es.Index), cfg.Hops)
	}
	m.EmbedStoryInto(ex, es)
	if len(es.Index) != 0 {
		t.Fatal("EmbedStoryInto kept a stale index")
	}
	if m.topkIndex(es, 0) != nil {
		t.Fatal("topkIndex returned a stale index")
	}
}

// TestBuildStoryIndexLayerwiseShares: with layer-wise tying every hop
// embeds with the same tables, so the index is built once and shared.
func TestBuildStoryIndexLayerwiseShares(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	cfg := Config{Dim: 8, Hops: 3, Vocab: 16, Answers: 4, MaxSent: 64, Tying: TyingLayerwise}
	m, err := NewModel(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	m.SetTopK(TopKConfig{Enabled: true, MinRows: 1})
	sentences := make([][]int, 20)
	for j := range sentences {
		sentences[j] = randWords(rng, cfg.Vocab, 4)
	}
	es := new(EmbeddedStory)
	m.EmbedStoryInto(Example{Sentences: sentences}, es)
	m.BuildStoryIndex(es)
	for k := 1; k < cfg.Hops; k++ {
		if es.Index[k] != es.Index[0] {
			t.Fatalf("layerwise hop %d built its own index", k)
		}
	}
}

// TestTopKSteadyStateAllocs: the topk forward path allocates nothing
// once the Forward and the probe scratch pool are warm.
func TestTopKSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cfg := Config{Dim: 16, Hops: 3, Vocab: 32, Answers: 8, MaxSent: 128}
	m, err := NewModel(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	m.SetTopK(TopKConfig{Enabled: true, K: 8, NProbe: 2, MinRows: 1})
	sentences := make([][]int, 100)
	for j := range sentences {
		sentences[j] = randWords(rng, cfg.Vocab, 6)
	}
	ex := Example{Sentences: sentences, Question: randWords(rng, cfg.Vocab, 5)}
	es := new(EmbeddedStory)
	m.EmbedStoryInto(ex, es)
	m.BuildStoryIndex(es)

	var f Forward
	var ins Instrumentation
	run := func() { m.PredictInstrumented(ex, 0.001, &f, es, &ins) }
	run() // warm Forward buffers and scratch pools
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if a := testing.AllocsPerRun(20, run); a != 0 {
		t.Errorf("topk forward allocates %v per op at steady state", a)
	}
	if ins.ProbedRows == 0 || ins.CandRows == 0 {
		t.Fatalf("topk pass recorded no probe work: %+v", ins)
	}
}

// TestTopKNarrowProbeTouchesFewerRows: the point of the mode — an
// indexed story with a narrow probe considers far fewer weighted-sum
// rows than the story holds.
func TestTopKNarrowProbeTouchesFewerRows(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	cfg := Config{Dim: 16, Hops: 2, Vocab: 32, Answers: 8, MaxSent: 256}
	m, err := NewModel(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	m.SetTopK(TopKConfig{
		Enabled: true, K: 8, NProbe: 1, MinRows: 1,
		Index: sparse.IndexOptions{NList: 16},
	})
	sentences := make([][]int, 256)
	for j := range sentences {
		sentences[j] = randWords(rng, cfg.Vocab, 6)
	}
	ex := Example{Sentences: sentences, Question: randWords(rng, cfg.Vocab, 5)}
	es := new(EmbeddedStory)
	m.EmbedStoryInto(ex, es)
	m.BuildStoryIndex(es)

	var f Forward
	var ins Instrumentation
	m.ApplyInstrumented(ex, 0, &f, es, &ins)
	if ins.CandRows > int64(cfg.Hops)*16 {
		t.Fatalf("K=8 kept %d rows over %d hops", ins.CandRows, cfg.Hops)
	}
	if ins.ProbedRows >= int64(cfg.Hops)*256 {
		t.Fatalf("narrow probe scored every row (%d)", ins.ProbedRows)
	}
	if ins.TotalRows != ins.CandRows {
		t.Fatalf("TotalRows %d != CandRows %d on a fully indexed pass", ins.TotalRows, ins.CandRows)
	}
}
