package memnn

import (
	"math"
	"math/rand"
	"testing"

	"mnnfast/internal/babi"
	"mnnfast/internal/tensor"
)

func smallCorpus(t *testing.T, task babi.Task, stories, storyLen int, seed int64) *Corpus {
	t.Helper()
	opt := babi.GenOptions{Stories: stories, StoryLen: storyLen, People: 3, Locations: 3}
	d := babi.Generate(task, opt, rand.New(rand.NewSource(seed)))
	train, test := d.Split(0.8)
	return BuildCorpus(train, test, 0)
}

func newTestModel(t *testing.T, c *Corpus, hops int, seed int64) *Model {
	t.Helper()
	m, err := NewModel(Config{
		Dim:     16,
		Hops:    hops,
		Vocab:   c.Vocab.Size(),
		Answers: len(c.Answers),
		MaxSent: c.MaxSent,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Dim: 0, Hops: 1, Vocab: 1, Answers: 1, MaxSent: 1},
		{Dim: 1, Hops: 0, Vocab: 1, Answers: 1, MaxSent: 1},
		{Dim: 1, Hops: 1, Vocab: 0, Answers: 1, MaxSent: 1},
		{Dim: 1, Hops: 1, Vocab: 1, Answers: 0, MaxSent: 1},
		{Dim: 1, Hops: 1, Vocab: 1, Answers: 1, MaxSent: 0},
	}
	for i, cfg := range bad {
		if _, err := NewModel(cfg, rand.New(rand.NewSource(0))); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestBuildCorpusSharesVocabulary(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 50, 8, 1)
	if len(c.Train) != 40 || len(c.Test) != 10 {
		t.Fatalf("split sizes %d/%d", len(c.Train), len(c.Test))
	}
	if c.Vocab.Size() < 5 {
		t.Errorf("vocabulary suspiciously small: %d", c.Vocab.Size())
	}
	for _, ex := range c.Test {
		if ex.Answer < 0 || ex.Answer >= len(c.Answers) {
			t.Fatalf("test answer class %d out of range", ex.Answer)
		}
	}
}

func TestBuildCorpusTrimsLongStories(t *testing.T) {
	d := &babi.Dataset{Task: "t", Stories: []babi.Story{{
		Sentences: [][]string{{"a"}, {"b"}, {"c"}, {"d"}},
		Question:  []string{"q"},
		Answer:    "x",
		Support:   []int{0, 3},
	}}}
	c := BuildCorpus(d, &babi.Dataset{Task: "t"}, 2)
	ex := c.Train[0]
	if len(ex.Sentences) != 2 {
		t.Fatalf("trimmed story has %d sentences, want 2", len(ex.Sentences))
	}
	// Support index 3 survives remapped to 1; index 0 is dropped.
	if len(ex.Support) != 1 || ex.Support[0] != 1 {
		t.Errorf("remapped support = %v, want [1]", ex.Support)
	}
}

func TestVectorizeStoryStrict(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 20, 6, 2)
	d := babi.Generate(babi.TaskSingleFact, babi.GenOptions{Stories: 1, StoryLen: 6, People: 3, Locations: 3}, rand.New(rand.NewSource(2)))
	if _, err := c.VectorizeStory(d.Stories[0]); err != nil {
		t.Errorf("known-vocabulary story rejected: %v", err)
	}
	bad := babi.Story{Sentences: [][]string{{"xylophone"}}, Question: []string{"where"}}
	if _, err := c.VectorizeStory(bad); err == nil {
		t.Error("unknown word accepted by VectorizeStory")
	}
}

func TestApplyShapes(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 20, 6, 3)
	m := newTestModel(t, c, 3, 4)
	ex := c.Train[0]
	f := m.Apply(ex, 0)
	if len(f.U) != 4 || len(f.P) != 3 || len(f.O) != 3 {
		t.Fatalf("forward shapes: U=%d P=%d O=%d", len(f.U), len(f.P), len(f.O))
	}
	if len(f.Logits) != len(c.Answers) {
		t.Errorf("logit length %d != answers %d", len(f.Logits), len(c.Answers))
	}
	for k, p := range f.P {
		if got := p.Sum(); math.Abs(float64(got)-1) > 1e-4 {
			t.Errorf("hop %d attention sums to %v", k, got)
		}
	}
}

func TestApplyEmptyStoryPanics(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 10, 6, 5)
	m := newTestModel(t, c, 1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("Apply on empty story did not panic")
		}
	}()
	m.Apply(Example{Question: []int{1}, Answer: 0}, 0)
}

func TestApplySkipZeroMatchesBaseline(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 30, 10, 6)
	m := newTestModel(t, c, 2, 6)
	for _, ex := range c.Test {
		a := m.Apply(ex, 0)
		b := m.Apply(ex, -1) // negative threshold also means "no skip"
		if tensor.MaxAbsDiff(a.Logits, b.Logits) > 1e-6 {
			t.Fatal("non-positive thresholds must not change the forward pass")
		}
	}
}

func TestApplySkipOneSkipsEverything(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 10, 10, 7)
	m := newTestModel(t, c, 1, 7)
	ex := c.Train[0]
	f := m.Apply(ex, 1.1) // threshold above any probability
	if f.O[0].Norm2() != 0 {
		t.Errorf("threshold > 1 should skip all weighted-sum rows, |o| = %v", f.O[0].Norm2())
	}
}

func TestNumParams(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 10, 6, 8)
	m := newTestModel(t, c, 2, 8)
	v, d, ns := c.Vocab.Size(), 16, c.MaxSent
	want := v*d + // B
		3*v*d + // Emb (hops+1)
		2*2*ns*d + // TimeIn + TimeOut
		len(c.Answers)*d // W
	if got := m.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}

// TestGradientCheck verifies the analytic backward pass against central
// finite differences on a tiny model.
func TestGradientCheck(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 10, 4, 9)
	m, err := NewModel(Config{
		Dim: 5, Hops: 2, Vocab: c.Vocab.Size(), Answers: len(c.Answers), MaxSent: c.MaxSent,
	}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	ex := c.Train[0]

	g := newGrads(m)
	g.zero()
	m.backward(ex, m.Apply(ex, 0), g)

	lossOf := func() float64 {
		f := m.Apply(ex, 0)
		probs := f.Logits.Clone()
		tensor.Softmax(probs)
		return -math.Log(math.Max(float64(probs[ex.Answer]), 1e-30))
	}

	type paramPair struct {
		name  string
		param *tensor.Matrix
		grad  *tensor.Matrix
	}
	pairs := []paramPair{
		{"B", m.B, g.b},
		{"W", m.W, g.w},
		{"Emb0", m.Emb[0], g.emb[0]},
		{"Emb1", m.Emb[1], g.emb[1]},
		{"Emb2", m.Emb[2], g.emb[2]},
		{"TimeIn0", m.TimeIn[0], g.timeIn[0]},
		{"TimeOut1", m.TimeOut[1], g.timeOut[1]},
	}
	// eps must be large enough that the central difference rises above
	// float32 rounding of the ~O(1) loss; gradients below the cutoff are
	// unmeasurable at that precision and are skipped.
	const eps = 1e-2
	const cutoff = 2e-3
	rng := rand.New(rand.NewSource(10))
	for _, pp := range pairs {
		checked := 0
		for try := 0; try < 400 && checked < 8; try++ {
			i := rng.Intn(len(pp.param.Data))
			analytic := float64(pp.grad.Data[i])
			orig := pp.param.Data[i]
			pp.param.Data[i] = orig + eps
			up := lossOf()
			pp.param.Data[i] = orig - eps
			down := lossOf()
			pp.param.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric) < cutoff || math.Abs(analytic) < cutoff {
				continue // below float32 finite-difference resolution
			}
			checked++
			rel := math.Abs(analytic-numeric) / math.Abs(numeric)
			if rel > 0.1 {
				t.Errorf("%s[%d]: analytic %g vs numeric %g (rel %g)", pp.name, i, analytic, numeric, rel)
			}
		}
		if checked == 0 {
			t.Logf("%s: no informative entries sampled", pp.name)
		}
	}
}

func TestTrainReducesLoss(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 60, 6, 11)
	m := newTestModel(t, c, 2, 11)
	opt := DefaultTrainOptions()
	opt.Epochs = 10
	res, err := m.Train(c.Train, opt)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1]
	if last >= first {
		t.Errorf("loss did not decrease: %v → %v", first, last)
	}
}

func TestTrainSingleFactAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	c := smallCorpus(t, babi.TaskSingleFact, 300, 8, 12)
	m := newTestModel(t, c, 2, 12)
	opt := DefaultTrainOptions()
	opt.Epochs = 40
	if _, err := m.Train(c.Train, opt); err != nil {
		t.Fatal(err)
	}
	acc := m.Accuracy(c.Test, 0)
	if acc < 0.8 {
		t.Errorf("test accuracy %.2f < 0.80 after training on single-fact task", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 10, 6, 13)
	m := newTestModel(t, c, 1, 13)
	if _, err := m.Train(nil, DefaultTrainOptions()); err == nil {
		t.Error("Train(nil) succeeded")
	}
	bad := []Example{{Sentences: [][]int{{1}}, Question: []int{1}, Answer: 999}}
	if _, err := m.Train(bad, DefaultTrainOptions()); err == nil {
		t.Error("Train with out-of-range answer succeeded")
	}
	bad2 := []Example{{Question: []int{1}, Answer: 0}}
	if _, err := m.Train(bad2, DefaultTrainOptions()); err == nil {
		t.Error("Train with empty story succeeded")
	}
}

func TestTrainDeterministic(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 30, 6, 14)
	opt := DefaultTrainOptions()
	opt.Epochs = 3
	m1 := newTestModel(t, c, 1, 14)
	m2 := newTestModel(t, c, 1, 14)
	r1, err := m1.Train(c.Train, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.Train(c.Train, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.EpochLoss {
		if r1.EpochLoss[i] != r2.EpochLoss[i] {
			t.Fatalf("epoch %d loss differs across identical runs: %v vs %v", i, r1.EpochLoss[i], r2.EpochLoss[i])
		}
	}
	if !tensor.Equal(m1.W, m2.W, 0) {
		t.Error("final weights differ across identical runs")
	}
}

func TestEvaluateSkipMonotonicity(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 60, 10, 15)
	m := newTestModel(t, c, 2, 15)
	opt := DefaultTrainOptions()
	opt.Epochs = 8
	if _, err := m.Train(c.Train, opt); err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, th := range []float32{0.001, 0.01, 0.1, 0.5} {
		s := m.EvaluateSkip(c.Test, th)
		if s.ComputeReduction < prev {
			t.Errorf("compute reduction not monotone in threshold at %v: %v < %v", th, s.ComputeReduction, prev)
		}
		prev = s.ComputeReduction
		if s.TotalRows == 0 {
			t.Fatal("no weighted-sum rows counted")
		}
	}
}

func TestAttentionMatrixShape(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 30, 8, 16)
	m := newTestModel(t, c, 2, 16)
	am := m.AttentionMatrix(c.Test, 5, 0)
	if am.Rows != c.MaxSent || am.Cols != 5 {
		t.Fatalf("attention matrix %dx%d, want %dx5", am.Rows, am.Cols, c.MaxSent)
	}
	// Every column must be a (possibly zero-padded) distribution.
	for q := 0; q < am.Cols; q++ {
		var sum float32
		for i := 0; i < am.Rows; i++ {
			sum += am.At(i, q)
		}
		if math.Abs(float64(sum)-1) > 1e-3 {
			t.Errorf("column %d sums to %v", q, sum)
		}
	}
}

func TestAttentionMatrixHopRangePanics(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 10, 6, 17)
	m := newTestModel(t, c, 1, 17)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range hop did not panic")
		}
	}()
	m.AttentionMatrix(c.Test, 2, 5)
}

func TestSparsityOfTrainedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	c := smallCorpus(t, babi.TaskSingleFact, 300, 12, 18)
	m := newTestModel(t, c, 2, 18)
	opt := DefaultTrainOptions()
	opt.Epochs = 30
	if _, err := m.Train(c.Train, opt); err != nil {
		t.Fatal(err)
	}
	s := m.SparsityOf(c.Test, 50)
	// The paper's Figure 6 claim: most probability values are near zero.
	if s.MeanBelow01 < 0.6 {
		t.Errorf("trained attention not sparse: only %.0f%% of p-values < 0.1", 100*s.MeanBelow01)
	}
	if s.MeanTopMass < 0.3 {
		t.Errorf("trained attention too diffuse: top mass %.2f", s.MeanTopMass)
	}
}

func TestAnswerWordRoundTrip(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 20, 6, 19)
	for i, w := range c.Answers {
		if c.AnswerWord(i) != w {
			t.Fatalf("AnswerWord(%d) = %q, want %q", i, c.AnswerWord(i), w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AnswerWord out of range did not panic")
		}
	}()
	c.AnswerWord(len(c.Answers))
}
