package memnn

import (
	"fmt"
	"time"

	"mnnfast/internal/sparse"
	"mnnfast/internal/tensor"
	"mnnfast/internal/trace"
)

// Batched inference: answer several questions in one forward pass,
// sharing every memory-row read across the questions that attend to it.
// This is the serving-side realization of the paper's batching argument
// (§4.1.2): with B questions in flight, each row of M_IN/M_OUT (and
// each row of the output projection W) is streamed from memory once per
// batch instead of once per question, so throughput stays flat as
// concurrency grows instead of degrading with redundant memory traffic.
//
// Bit-exactness contract: the batched pass performs exactly the same
// float32 operations in exactly the same order per question as the
// single-question path (applyInto with a cached EmbeddedStory) — the
// same tensor.Dot per attention logit, the same tensor.Softmax, the
// same ascending-row tensor.Axpy accumulation, the same output
// projection. Only the loop nesting changes (rows outer, questions
// inner), which affects locality, not results. The equivalence property
// test in batch_test.go pins this down to the bit level; any kernel
// change that breaks it (e.g. swapping the per-question Dot for the
// differently-associated Dot4) is a behavior change, not a refactor.

// BatchForward holds the per-question forward state and the grouping
// scratch of one batched predict. Buffers are reshaped grow-only and
// reused across calls of any shape; at steady state a serving loop that
// owns one BatchForward runs PredictBatchInto without allocating. It
// must not be shared between concurrent calls.
type BatchForward struct {
	fs []Forward // one per question

	// Grouping scratch: order is a permutation of the live questions
	// with questions that share an EmbeddedStory adjacent; groups holds
	// the end offset of each group within order.
	order   []int
	groups  []int
	grouped []bool

	// Early-exit state (see ExitPolicy): live holds the indices of
	// questions still hopping (ascending); exits records each
	// question's exit hop; full marks questions committed to the full
	// path by the fallback floor. gateP is the gate softmax scratch.
	live  []int
	exits []int
	full  []bool
	gateP tensor.Vector

	// Dispatch state of the current hop's group pass. Story groups are
	// the parallel unit: each touches only its own questions' state, so
	// groups run concurrently on the model's scheduler while every
	// per-question operation keeps its exact serial order — parallel
	// passes are bit-identical to serial ones. The closure is built once
	// per BatchForward so the steady-state dispatch allocates nothing.
	m       *Model
	stories []*EmbeddedStory
	hop     int
	skip    float32
	wskip   []int64 // per-worker skipped-row counters
	wrows   []int64 // per-worker considered-row counters
	wprobed []int64 // per-worker topk probed-row counters
	wcand   []int64 // per-worker topk surviving-candidate counters
	gfn     func(worker, lo, hi int)
}

// runGroup executes story group g's attention for the current hop as
// worker slot w: logits, softmax, and the zero-skipping weighted sum
// for every question of the group.
//
//mnnfast:hotpath
func (bf *BatchForward) runGroup(g, w int) {
	m, k := bf.m, bf.hop
	d := m.Cfg.Dim
	start := 0
	if g > 0 {
		start = bf.groups[g-1]
	}
	group := bf.order[start:bf.groups[g]]
	es := bf.stories[group[0]]
	in, outMem := es.MemIn[k], es.MemOut[k]
	ns := es.NS

	if idx := m.topkIndex(es, k); idx != nil {
		// Approximate attention: per question, the exact operations of
		// the unbatched topk hop (probe, candidate top-k softmax,
		// ascending M_OUT gather) in the same serial order, so batched
		// and unbatched topk answers are bit-identical by construction.
		// Rows-outer sharing is the exact path's trick; the probe
		// already cuts the row traffic it exists to amortize.
		scr := sparse.GetProbeScratch()
		var skipped, probed, kept int64
		for _, q := range group {
			f := &bf.fs[q]
			c, ast := idx.Attend(f.U[k], m.topk.K, m.topk.NProbe, scr)
			p := growVec(f.P[k], ast.Kept)
			f.P[k] = p
			copy(p, c.Weights)
			f.O[k] = growVec(f.O[k], d)
			skipped += int64(c.WeightedSumGather(outMem, bf.skip, f.O[k]))
			probed += int64(ast.Probed)
			kept += int64(ast.Kept)
		}
		sparse.PutProbeScratch(scr)
		bf.wskip[w] += skipped
		bf.wrows[w] += kept
		bf.wprobed[w] += probed
		bf.wcand[w] += kept
		return
	}

	// Attention logits: rows outer, questions inner — each memory row
	// is read once for the whole group. Per question this is exactly
	// MatVec's serial loop (one tensor.Dot per row), so the logits are
	// bit-identical to the single path.
	for _, q := range group {
		f := &bf.fs[q]
		f.P[k] = growVec(f.P[k], ns)
	}
	for r := 0; r < ns; r++ {
		row := in.Row(r)
		for _, q := range group {
			bf.fs[q].P[k][r] = tensor.Dot(row, bf.fs[q].U[k])
		}
	}
	for _, q := range group {
		if !m.LinearAttention {
			tensor.Softmax(bf.fs[q].P[k])
		}
	}

	// Weighted sum with zero-skipping, rows outer again: each M_OUT row
	// is read once and accumulated into every question of the group that
	// does not skip it, in the same ascending-row Axpy order as the
	// single path.
	for _, q := range group {
		f := &bf.fs[q]
		f.O[k] = growVec(f.O[k], d)
		f.O[k].Zero()
	}
	skipped := int64(0)
	for r := 0; r < ns; r++ {
		outRow := outMem.Row(r)
		for _, q := range group {
			f := &bf.fs[q]
			p := f.P[k][r]
			if bf.skip > 0 && p < bf.skip {
				skipped++
				continue
			}
			tensor.Axpy(p, outRow, f.O[k])
		}
	}
	bf.wskip[w] += skipped
	bf.wrows[w] += int64(ns) * int64(len(group))
}

// Logits returns question i's answer logits from the last batched pass,
// for equivalence testing and introspection.
func (bf *BatchForward) Logits(i int) tensor.Vector { return bf.fs[i].Logits }

// ExitHop returns the number of hops question i actually executed in
// the last batched pass: Cfg.Hops normally, fewer when the confidence
// gate shed it between hops.
func (bf *BatchForward) ExitHop(i int) int { return bf.exits[i] }

// ensure reshapes the per-question state for a batch of n over w
// worker slots.
func (bf *BatchForward) ensure(n, w int) {
	if cap(bf.fs) < n {
		fs := make([]Forward, n)
		copy(fs, bf.fs[:cap(bf.fs)])
		bf.fs = fs
	}
	bf.fs = bf.fs[:n]
	if cap(bf.grouped) < n {
		bf.grouped = make([]bool, n)
		bf.live = make([]int, n)
		bf.exits = make([]int, n)
		bf.full = make([]bool, n)
	}
	bf.grouped = bf.grouped[:n]
	bf.live = bf.live[:n]
	bf.exits = bf.exits[:n]
	bf.full = bf.full[:n]
	for i := 0; i < n; i++ {
		bf.live[i] = i
		bf.full[i] = false
	}
	if cap(bf.wskip) < w {
		bf.wskip = make([]int64, w)
		bf.wrows = make([]int64, w)
		bf.wprobed = make([]int64, w)
		bf.wcand = make([]int64, w)
	}
	bf.wskip = bf.wskip[:w]
	bf.wrows = bf.wrows[:w]
	bf.wprobed = bf.wprobed[:w]
	bf.wcand = bf.wcand[:w]
	for i := 0; i < w; i++ {
		bf.wskip[i], bf.wrows[i] = 0, 0
		bf.wprobed[i], bf.wcand[i] = 0, 0
	}
	if bf.gfn == nil {
		//mnnfast:allow hotalloc gfn is built once per BatchForward and cached; every later ensure reuses it
		bf.gfn = func(worker, lo, hi int) {
			for g := lo; g < hi; g++ {
				bf.runGroup(g, worker)
			}
		}
	}
}

// group orders the live questions so those sharing an EmbeddedStory
// are adjacent (pointer identity — two sessions never share one
// cache). It is re-run after the gate sheds questions between hops, so
// the remaining hops dispatch over compacted story groups.
//
//mnnfast:hotpath allow=append the order/groups slices grow-only toward MaxBatch and then stay put
func (bf *BatchForward) group(stories []*EmbeddedStory, live []int) {
	bf.order = bf.order[:0]
	bf.groups = bf.groups[:0]
	for _, q := range live {
		bf.grouped[q] = false
	}
	for i, q := range live {
		if bf.grouped[q] {
			continue
		}
		bf.order = append(bf.order, q)
		for _, r := range live[i+1:] {
			if !bf.grouped[r] && stories[r] == stories[q] {
				bf.grouped[r] = true
				bf.order = append(bf.order, r)
			}
		}
		bf.groups = append(bf.groups, len(bf.order))
	}
}

// PredictBatchInto answers every question in exs, writing the argmax
// answer class of question i into out[i]. stories[i] supplies question
// i's pre-embedded memories (see EmbedStoryInto); every entry must be
// non-nil with NS matching its example. Questions sharing an
// EmbeddedStory (pointer identity) share one pass over its rows.
//
//mnnfast:hotpath
func (m *Model) PredictBatchInto(exs []Example, skipThreshold float32, stories []*EmbeddedStory, bf *BatchForward, out []int) {
	m.PredictBatchInstrumented(exs, skipThreshold, ExitPolicy{}, stories, bf, nil, out)
}

// PredictBatchInstrumented is PredictBatchInto with an optional
// per-stage time and skip-counter accumulator covering the whole
// batch, and a confidence gate (see ExitPolicy; the zero policy is the
// plain batched pass, bit for bit). With the gate armed, questions
// whose confidence clears the threshold after a hop are shed between
// hops: they answer immediately from the gate's W·u projection, and
// the remaining hops dispatch over story groups rebuilt from the
// shrunken live set — the batch's attention cost tracks the questions
// still hopping, not the flush size. Read per-question exit hops with
// BatchForward.ExitHop.
//
//mnnfast:hotpath
func (m *Model) PredictBatchInstrumented(exs []Example, skipThreshold float32, policy ExitPolicy, stories []*EmbeddedStory, bf *BatchForward, ins *Instrumentation, out []int) {
	n := len(exs)
	if len(stories) != n || len(out) != n {
		panic(fmt.Sprintf("memnn: PredictBatch length mismatch exs=%d stories=%d out=%d", n, len(stories), len(out)))
	}
	if n == 0 {
		return
	}
	for i, es := range stories {
		if es == nil {
			panic(fmt.Sprintf("memnn: PredictBatch question %d has nil EmbeddedStory", i))
		}
		if es.NS != len(exs[i].Sentences) {
			panic(fmt.Sprintf("memnn: EmbeddedStory built for %d sentences applied to story of %d", es.NS, len(exs[i].Sentences)))
		}
	}
	hops, d := m.Cfg.Hops, m.Cfg.Dim
	bf.ensure(n, m.sch.Workers())
	live := bf.live
	for i := range bf.exits {
		bf.exits[i] = hops
	}
	bf.group(stories, live)
	bf.m, bf.stories, bf.skip = m, stories, skipThreshold
	gate, minH := policy.active(hops), policy.minHops()

	var mark time.Time
	var ev *trace.Events
	if ins != nil {
		mark = time.Now()
		ev = ins.Ev
	}

	// Question embeddings (per question — the B-table gathers touch
	// disjoint rows, nothing to share).
	qe := ev.Begin("embed-question", -1)
	for q := 0; q < n; q++ {
		f := &bf.fs[q]
		f.NS = stories[q].NS
		if cap(f.U) < hops+1 {
			f.U = make([]tensor.Vector, hops+1)
		}
		f.U = f.U[:hops+1]
		if cap(f.P) < hops {
			f.P = make([]tensor.Vector, hops)
			f.O = make([]tensor.Vector, hops)
		}
		f.P, f.O = f.P[:hops], f.O[:hops]
		f.U[0] = growVec(f.U[0], d)
		m.encodeInto(m.B, exs[q].Question, nil, f.U[0])
	}
	ev.End(qe)
	if ins != nil {
		lap(&mark, &ins.EmbedNS)
	}

	for k := 0; k < hops; k++ {
		he := ev.Begin("hop", -1)
		skip0, rows0 := sumInt64(bf.wskip), sumInt64(bf.wrows)
		probed0, cand0 := sumInt64(bf.wprobed), sumInt64(bf.wcand)

		// Story groups are independent within a hop (disjoint question
		// state), so they are the scheduler's work items: zero-skipping
		// makes group costs uneven, and workers that finish their groups
		// steal the stragglers' — see runGroup for the per-group body.
		bf.hop = k
		m.sch.RunEvents(ev, he, 0, len(bf.groups), 1, bf.gfn)

		// State update u' = u + o (adjacent) or u' = H·u + o
		// (layer-wise). H is model-global, so its rows are shared
		// across the still-live questions, not just within a story
		// group.
		for _, q := range live {
			f := &bf.fs[q]
			f.U[k+1] = growVec(f.U[k+1], d)
		}
		if m.Cfg.Tying == TyingLayerwise {
			for r := 0; r < d; r++ {
				hrow := m.H.Row(r)
				for _, q := range live {
					bf.fs[q].U[k+1][r] = tensor.Dot(hrow, bf.fs[q].U[k])
				}
			}
		} else {
			for _, q := range live {
				copy(bf.fs[q].U[k+1], bf.fs[q].U[k])
			}
		}
		for _, q := range live {
			bf.fs[q].U[k+1].AddInPlace(bf.fs[q].O[k])
		}
		ev.Annotate(he, "hop", int64(k))
		ev.Annotate(he, "skipped", sumInt64(bf.wskip)-skip0)
		ev.Annotate(he, "rows", sumInt64(bf.wrows)-rows0)
		if probed := sumInt64(bf.wprobed) - probed0; probed > 0 {
			ev.Annotate(he, "topk_probed", probed)
			ev.Annotate(he, "topk_kept", sumInt64(bf.wcand)-cand0)
		}
		ev.End(he)
		if ins != nil {
			lap(&mark, &ins.AttentionNS)
		}

		// Confidence gate: score every live, uncommitted question and
		// shed the ones that clear the threshold — their answer is the
		// gate's W·u projection (one tensor.Dot per answer row, the
		// exact operation of the final projection, so shed answers are
		// bit-identical to the same query exiting unbatched). The
		// remaining hops then run on story groups rebuilt from the
		// shrunken live set.
		if h := k + 1; gate && h >= minH && h < hops {
			ge := ev.Begin("gate", -1)
			shed := m.gateBatch(bf, live, policy, h)
			ev.Annotate(ge, "hop", int64(k))
			ev.Annotate(ge, "shed", int64(shed))
			ev.End(ge)
			if ins != nil {
				lap(&mark, &ins.GateNS)
			}
			if shed > 0 {
				w := 0
				for _, q := range live {
					if bf.exits[q] == hops {
						live[w] = q
						w++
					}
				}
				live = live[:w]
				if len(live) == 0 {
					break
				}
				bf.group(stories, live)
			}
		}
	}
	if ins != nil {
		// Per-worker counters fold deterministically: each group's
		// counts are fixed, and integer addition is order-free.
		for i := range bf.wskip {
			ins.SkippedRows += bf.wskip[i]
			ins.TotalRows += bf.wrows[i]
			ins.ProbedRows += bf.wprobed[i]
			ins.CandRows += bf.wcand[i]
		}
	}
	bf.m, bf.stories = nil, nil // do not pin caller data between batches

	// Output projection: W is model-global too — each of its rows is
	// read once for the whole batch, the largest cross-session saving.
	// Only the questions that ran all hops are projected here; shed
	// questions already hold their exit logits from the gate.
	oe := ev.Begin("output", -1)
	for _, q := range live {
		f := &bf.fs[q]
		f.Logits = growVec(f.Logits, m.Cfg.Answers)
	}
	for r := 0; r < m.Cfg.Answers; r++ {
		wrow := m.W.Row(r)
		for _, q := range live {
			bf.fs[q].Logits[r] = tensor.Dot(wrow, bf.fs[q].U[hops])
		}
	}
	ev.End(oe)
	if ins != nil {
		lap(&mark, &ins.OutputNS)
	}
	for q := 0; q < n; q++ {
		out[q] = bf.fs[q].Logits.ArgMax()
	}
}

// gateBatch scores every live, uncommitted question after hop h (state
// U[h], attention P[h-1]) and marks the ones clearing the policy
// threshold as exited (bf.exits[q] = h), leaving their Logits at the
// gate's W·u projection. A confidence below the fallback floor commits
// the question to the full path instead (no further gate projections).
// Returns the number of questions shed.
//
// Bit-exactness: the exit logits are computed rows-outer so each W row
// is read once for the whole candidate set, but per question that is
// one tensor.Dot per answer row in ascending order — exactly the
// serial MatVec of the unbatched gate (gateConfidence), so a question
// shed at hop h in a batch answers bit-identically to the same
// question exiting at hop h unbatched.
//
//mnnfast:hotpath
func (m *Model) gateBatch(bf *BatchForward, live []int, policy ExitPolicy, h int) int {
	k, answers := h-1, m.Cfg.Answers
	if policy.Metric != ExitAttnMax {
		for _, q := range live {
			if bf.full[q] {
				continue
			}
			f := &bf.fs[q]
			f.Logits = growVec(f.Logits, answers)
		}
		for r := 0; r < answers; r++ {
			wrow := m.W.Row(r)
			for _, q := range live {
				if bf.full[q] {
					continue
				}
				bf.fs[q].Logits[r] = tensor.Dot(wrow, bf.fs[q].U[h])
			}
		}
	}
	fb := policy.fallback()
	shed := 0
	for _, q := range live {
		if bf.full[q] {
			continue
		}
		f := &bf.fs[q]
		var conf float32
		if policy.Metric == ExitAttnMax {
			conf = f.P[k].Max()
		} else {
			bf.gateP = growVec(bf.gateP, answers)
			copy(bf.gateP, f.Logits)
			tensor.Softmax(bf.gateP)
			conf = answerConfidence(policy.Metric, bf.gateP)
		}
		if conf >= policy.Threshold {
			if policy.Metric == ExitAttnMax {
				f.Logits = growVec(f.Logits, answers)
				tensor.MatVec(nil, m.W, f.U[h], f.Logits)
			}
			bf.exits[q] = h
			shed++
		} else if fb > 0 && conf < fb {
			bf.full[q] = true
		}
	}
	return shed
}

// sumInt64 folds a counter slice; used for per-hop skip deltas in the
// traced batch path.
//
//mnnfast:hotpath
func sumInt64(a []int64) int64 {
	var s int64
	for _, v := range a {
		s += v
	}
	return s
}
