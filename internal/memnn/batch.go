package memnn

import (
	"fmt"
	"time"

	"mnnfast/internal/tensor"
	"mnnfast/internal/trace"
)

// Batched inference: answer several questions in one forward pass,
// sharing every memory-row read across the questions that attend to it.
// This is the serving-side realization of the paper's batching argument
// (§4.1.2): with B questions in flight, each row of M_IN/M_OUT (and
// each row of the output projection W) is streamed from memory once per
// batch instead of once per question, so throughput stays flat as
// concurrency grows instead of degrading with redundant memory traffic.
//
// Bit-exactness contract: the batched pass performs exactly the same
// float32 operations in exactly the same order per question as the
// single-question path (applyInto with a cached EmbeddedStory) — the
// same tensor.Dot per attention logit, the same tensor.Softmax, the
// same ascending-row tensor.Axpy accumulation, the same output
// projection. Only the loop nesting changes (rows outer, questions
// inner), which affects locality, not results. The equivalence property
// test in batch_test.go pins this down to the bit level; any kernel
// change that breaks it (e.g. swapping the per-question Dot for the
// differently-associated Dot4) is a behavior change, not a refactor.

// BatchForward holds the per-question forward state and the grouping
// scratch of one batched predict. Buffers are reshaped grow-only and
// reused across calls of any shape; at steady state a serving loop that
// owns one BatchForward runs PredictBatchInto without allocating. It
// must not be shared between concurrent calls.
type BatchForward struct {
	fs []Forward // one per question

	// Grouping scratch: order is a permutation of [0, n) with questions
	// that share an EmbeddedStory adjacent; groups holds the end offset
	// of each group within order.
	order   []int
	groups  []int
	grouped []bool

	// Dispatch state of the current hop's group pass. Story groups are
	// the parallel unit: each touches only its own questions' state, so
	// groups run concurrently on the model's scheduler while every
	// per-question operation keeps its exact serial order — parallel
	// passes are bit-identical to serial ones. The closure is built once
	// per BatchForward so the steady-state dispatch allocates nothing.
	m       *Model
	stories []*EmbeddedStory
	hop     int
	skip    float32
	wskip   []int64 // per-worker skipped-row counters
	wrows   []int64 // per-worker considered-row counters
	gfn     func(worker, lo, hi int)
}

// runGroup executes story group g's attention for the current hop as
// worker slot w: logits, softmax, and the zero-skipping weighted sum
// for every question of the group.
//
//mnnfast:hotpath
func (bf *BatchForward) runGroup(g, w int) {
	m, k := bf.m, bf.hop
	d := m.Cfg.Dim
	start := 0
	if g > 0 {
		start = bf.groups[g-1]
	}
	group := bf.order[start:bf.groups[g]]
	es := bf.stories[group[0]]
	in, outMem := es.MemIn[k], es.MemOut[k]
	ns := es.NS

	// Attention logits: rows outer, questions inner — each memory row
	// is read once for the whole group. Per question this is exactly
	// MatVec's serial loop (one tensor.Dot per row), so the logits are
	// bit-identical to the single path.
	for _, q := range group {
		f := &bf.fs[q]
		f.P[k] = growVec(f.P[k], ns)
	}
	for r := 0; r < ns; r++ {
		row := in.Row(r)
		for _, q := range group {
			bf.fs[q].P[k][r] = tensor.Dot(row, bf.fs[q].U[k])
		}
	}
	for _, q := range group {
		if !m.LinearAttention {
			tensor.Softmax(bf.fs[q].P[k])
		}
	}

	// Weighted sum with zero-skipping, rows outer again: each M_OUT row
	// is read once and accumulated into every question of the group that
	// does not skip it, in the same ascending-row Axpy order as the
	// single path.
	for _, q := range group {
		f := &bf.fs[q]
		f.O[k] = growVec(f.O[k], d)
		f.O[k].Zero()
	}
	skipped := int64(0)
	for r := 0; r < ns; r++ {
		outRow := outMem.Row(r)
		for _, q := range group {
			f := &bf.fs[q]
			p := f.P[k][r]
			if bf.skip > 0 && p < bf.skip {
				skipped++
				continue
			}
			tensor.Axpy(p, outRow, f.O[k])
		}
	}
	bf.wskip[w] += skipped
	bf.wrows[w] += int64(ns) * int64(len(group))
}

// Logits returns question i's answer logits from the last batched pass,
// for equivalence testing and introspection.
func (bf *BatchForward) Logits(i int) tensor.Vector { return bf.fs[i].Logits }

// ensure reshapes the per-question state for a batch of n over w
// worker slots.
func (bf *BatchForward) ensure(n, w int) {
	if cap(bf.fs) < n {
		fs := make([]Forward, n)
		copy(fs, bf.fs[:cap(bf.fs)])
		bf.fs = fs
	}
	bf.fs = bf.fs[:n]
	if cap(bf.grouped) < n {
		bf.grouped = make([]bool, n)
	}
	bf.grouped = bf.grouped[:n]
	if cap(bf.wskip) < w {
		bf.wskip = make([]int64, w)
		bf.wrows = make([]int64, w)
	}
	bf.wskip = bf.wskip[:w]
	bf.wrows = bf.wrows[:w]
	for i := 0; i < w; i++ {
		bf.wskip[i], bf.wrows[i] = 0, 0
	}
	if bf.gfn == nil {
		bf.gfn = func(worker, lo, hi int) {
			for g := lo; g < hi; g++ {
				bf.runGroup(g, worker)
			}
		}
	}
}

// group orders the batch so questions sharing an EmbeddedStory are
// adjacent (pointer identity — two sessions never share one cache).
//
//mnnfast:hotpath allow=append the order/groups slices grow-only toward MaxBatch and then stay put
func (bf *BatchForward) group(stories []*EmbeddedStory) {
	n := len(stories)
	bf.order = bf.order[:0]
	bf.groups = bf.groups[:0]
	for i := range bf.grouped {
		bf.grouped[i] = false
	}
	for i := 0; i < n; i++ {
		if bf.grouped[i] {
			continue
		}
		bf.order = append(bf.order, i)
		for j := i + 1; j < n; j++ {
			if !bf.grouped[j] && stories[j] == stories[i] {
				bf.grouped[j] = true
				bf.order = append(bf.order, j)
			}
		}
		bf.groups = append(bf.groups, len(bf.order))
	}
}

// PredictBatchInto answers every question in exs, writing the argmax
// answer class of question i into out[i]. stories[i] supplies question
// i's pre-embedded memories (see EmbedStoryInto); every entry must be
// non-nil with NS matching its example. Questions sharing an
// EmbeddedStory (pointer identity) share one pass over its rows.
//
//mnnfast:hotpath
func (m *Model) PredictBatchInto(exs []Example, skipThreshold float32, stories []*EmbeddedStory, bf *BatchForward, out []int) {
	m.PredictBatchInstrumented(exs, skipThreshold, stories, bf, nil, out)
}

// PredictBatchInstrumented is PredictBatchInto with an optional
// per-stage time and skip-counter accumulator covering the whole batch.
//
//mnnfast:hotpath
func (m *Model) PredictBatchInstrumented(exs []Example, skipThreshold float32, stories []*EmbeddedStory, bf *BatchForward, ins *Instrumentation, out []int) {
	n := len(exs)
	if len(stories) != n || len(out) != n {
		panic(fmt.Sprintf("memnn: PredictBatch length mismatch exs=%d stories=%d out=%d", n, len(stories), len(out)))
	}
	if n == 0 {
		return
	}
	for i, es := range stories {
		if es == nil {
			panic(fmt.Sprintf("memnn: PredictBatch question %d has nil EmbeddedStory", i))
		}
		if es.NS != len(exs[i].Sentences) {
			panic(fmt.Sprintf("memnn: EmbeddedStory built for %d sentences applied to story of %d", es.NS, len(exs[i].Sentences)))
		}
	}
	hops, d := m.Cfg.Hops, m.Cfg.Dim
	bf.ensure(n, m.sch.Workers())
	bf.group(stories)
	bf.m, bf.stories, bf.skip = m, stories, skipThreshold

	var mark time.Time
	var ev *trace.Events
	if ins != nil {
		mark = time.Now()
		ev = ins.Ev
	}

	// Question embeddings (per question — the B-table gathers touch
	// disjoint rows, nothing to share).
	qe := ev.Begin("embed-question", -1)
	for q := 0; q < n; q++ {
		f := &bf.fs[q]
		f.NS = stories[q].NS
		if cap(f.U) < hops+1 {
			f.U = make([]tensor.Vector, hops+1)
		}
		f.U = f.U[:hops+1]
		if cap(f.P) < hops {
			f.P = make([]tensor.Vector, hops)
			f.O = make([]tensor.Vector, hops)
		}
		f.P, f.O = f.P[:hops], f.O[:hops]
		f.U[0] = growVec(f.U[0], d)
		m.encodeInto(m.B, exs[q].Question, nil, f.U[0])
	}
	ev.End(qe)
	if ins != nil {
		lap(&mark, &ins.EmbedNS)
	}

	for k := 0; k < hops; k++ {
		he := ev.Begin("hop", -1)
		skip0, rows0 := sumInt64(bf.wskip), sumInt64(bf.wrows)

		// Story groups are independent within a hop (disjoint question
		// state), so they are the scheduler's work items: zero-skipping
		// makes group costs uneven, and workers that finish their groups
		// steal the stragglers' — see runGroup for the per-group body.
		bf.hop = k
		m.sch.RunEvents(ev, he, 0, len(bf.groups), 1, bf.gfn)

		// State update u' = u + o (adjacent) or u' = H·u + o
		// (layer-wise). H is model-global, so its rows are shared
		// across the entire batch, not just within a story group.
		for q := 0; q < n; q++ {
			f := &bf.fs[q]
			f.U[k+1] = growVec(f.U[k+1], d)
		}
		if m.Cfg.Tying == TyingLayerwise {
			for r := 0; r < d; r++ {
				hrow := m.H.Row(r)
				for q := 0; q < n; q++ {
					bf.fs[q].U[k+1][r] = tensor.Dot(hrow, bf.fs[q].U[k])
				}
			}
		} else {
			for q := 0; q < n; q++ {
				copy(bf.fs[q].U[k+1], bf.fs[q].U[k])
			}
		}
		for q := 0; q < n; q++ {
			bf.fs[q].U[k+1].AddInPlace(bf.fs[q].O[k])
		}
		ev.Annotate(he, "hop", int64(k))
		ev.Annotate(he, "skipped", sumInt64(bf.wskip)-skip0)
		ev.Annotate(he, "rows", sumInt64(bf.wrows)-rows0)
		ev.End(he)
		if ins != nil {
			lap(&mark, &ins.AttentionNS)
		}
	}
	if ins != nil {
		// Per-worker counters fold deterministically: each group's
		// counts are fixed, and integer addition is order-free.
		for i := range bf.wskip {
			ins.SkippedRows += bf.wskip[i]
			ins.TotalRows += bf.wrows[i]
		}
	}
	bf.m, bf.stories = nil, nil // do not pin caller data between batches

	// Output projection: W is model-global too — each of its rows is
	// read once for the whole batch, the largest cross-session saving.
	oe := ev.Begin("output", -1)
	for q := 0; q < n; q++ {
		f := &bf.fs[q]
		f.Logits = growVec(f.Logits, m.Cfg.Answers)
	}
	for r := 0; r < m.Cfg.Answers; r++ {
		wrow := m.W.Row(r)
		for q := 0; q < n; q++ {
			bf.fs[q].Logits[r] = tensor.Dot(wrow, bf.fs[q].U[hops])
		}
	}
	ev.End(oe)
	if ins != nil {
		lap(&mark, &ins.OutputNS)
	}
	for q := 0; q < n; q++ {
		out[q] = bf.fs[q].Logits.ArgMax()
	}
}

// sumInt64 folds a counter slice; used for per-hop skip deltas in the
// traced batch path.
//
//mnnfast:hotpath
func sumInt64(a []int64) int64 {
	var s int64
	for _, v := range a {
		s += v
	}
	return s
}
