package memnn

import (
	"math"
	"math/rand"
	"testing"

	"mnnfast/internal/tensor"
)

// randBatchCase builds a random model plus a batch of questions spread
// over a few random stories, mirroring a server flush: several sessions'
// embedded stories, one or more questions each.
type batchCase struct {
	model   *Model
	exs     []Example
	stories []*EmbeddedStory
	th      float32
}

func randWords(rng *rand.Rand, vocab, maxLen int) []int {
	words := make([]int, 1+rng.Intn(maxLen))
	for i := range words {
		words[i] = 1 + rng.Intn(vocab-1) // 0 is padding
	}
	return words
}

func randBatchCase(t *testing.T, rng *rand.Rand, batch int) batchCase {
	t.Helper()
	cfg := Config{
		Dim:      4 + rng.Intn(20),
		Hops:     1 + rng.Intn(3),
		Vocab:    8 + rng.Intn(24),
		Answers:  2 + rng.Intn(8),
		MaxSent:  12,
		Position: rng.Intn(2) == 0,
		Tying:    Tying(rng.Intn(2)),
	}
	model, err := NewModel(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	model.LinearAttention = rng.Intn(8) == 0

	// A handful of distinct stories; each question picks one at random,
	// so groups of every size (including singletons) occur.
	nStories := 1 + rng.Intn(3)
	type story struct {
		sentences [][]int
		es        *EmbeddedStory
	}
	ss := make([]story, nStories)
	for i := range ss {
		ns := 1 + rng.Intn(cfg.MaxSent-2)
		sentences := make([][]int, ns)
		for j := range sentences {
			sentences[j] = randWords(rng, cfg.Vocab, 6)
		}
		es := new(EmbeddedStory)
		model.EmbedStoryInto(Example{Sentences: sentences}, es)
		ss[i] = story{sentences: sentences, es: es}
	}

	c := batchCase{model: model}
	switch rng.Intn(3) {
	case 0:
		c.th = 0
	case 1:
		c.th = 0.01
	default:
		c.th = float32(rng.Float64() * 0.2)
	}
	for q := 0; q < batch; q++ {
		s := ss[rng.Intn(nStories)]
		c.exs = append(c.exs, Example{
			Sentences: s.sentences,
			Question:  randWords(rng, cfg.Vocab, 5),
		})
		c.stories = append(c.stories, s.es)
	}
	return c
}

// TestPredictBatchEquivalence is the batching correctness property: for
// random models, stories, questions, thresholds, and batch compositions
// (sizes 1..max, arbitrary story groupings — the shapes a random arrival
// interleaving can produce at a flush), the batched pass must yield
// logits BIT-IDENTICAL to the single-question path for every question.
// 1000+ randomized question-cases.
func TestPredictBatchEquivalence(t *testing.T) {
	const maxBatch = 12
	rng := rand.New(rand.NewSource(42))
	var bf BatchForward
	cases, questions := 0, 0
	for questions < 1200 {
		batch := 1 + rng.Intn(maxBatch)
		c := randBatchCase(t, rng, batch)

		out := make([]int, batch)
		c.model.PredictBatchInto(c.exs, c.th, c.stories, &bf, out)

		var f Forward
		for q := range c.exs {
			want := c.model.ApplyInstrumented(c.exs[q], c.th, &f, c.stories[q], nil)
			got := bf.Logits(q)
			if len(got) != len(want.Logits) {
				t.Fatalf("case %d q %d: logits length %d != %d", cases, q, len(got), len(want.Logits))
			}
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want.Logits[i]) {
					t.Fatalf("case %d q %d (batch %d, th %v): logit %d = %x, want %x (not bit-identical)",
						cases, q, batch, c.th, i, math.Float32bits(got[i]), math.Float32bits(want.Logits[i]))
				}
			}
			if want := want.Logits.ArgMax(); out[q] != want {
				t.Fatalf("case %d q %d: predicted %d, want %d", cases, q, out[q], want)
			}
		}
		cases++
		questions += batch
	}
	t.Logf("verified %d questions across %d random batches bit-identical", questions, cases)
}

// TestPredictBatchMatchesUncachedPath pins the other half of the chain:
// the cached-embedding path (EmbedStoryInto + ApplyInstrumented) is
// itself bit-identical to the plain ApplyInto that embeds per call, so
// batched answers equal the from-scratch single-Infer path too.
func TestPredictBatchMatchesUncachedPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		c := randBatchCase(t, rng, 1)
		var f, f2 Forward
		cached := c.model.ApplyInstrumented(c.exs[0], c.th, &f, c.stories[0], nil)
		plain := c.model.ApplyInto(c.exs[0], c.th, &f2)
		for i := range plain.Logits {
			if math.Float32bits(cached.Logits[i]) != math.Float32bits(plain.Logits[i]) {
				t.Fatalf("iter %d: cached logit %d = %x, plain %x", iter, i,
					math.Float32bits(cached.Logits[i]), math.Float32bits(plain.Logits[i]))
			}
		}
	}
}

// TestPredictBatchInstrumentationCounts checks the batch accumulates
// the same row totals as the per-question passes.
func TestPredictBatchInstrumentationCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randBatchCase(t, rng, 8)
	var bf BatchForward
	var ins Instrumentation
	out := make([]int, len(c.exs))
	c.model.PredictBatchInstrumented(c.exs, c.th, ExitPolicy{}, c.stories, &bf, &ins, out)

	var want Instrumentation
	var f Forward
	for q := range c.exs {
		c.model.ApplyInstrumented(c.exs[q], c.th, &f, c.stories[q], &want)
	}
	if ins.TotalRows != want.TotalRows || ins.SkippedRows != want.SkippedRows {
		t.Errorf("batch rows skipped/total = %d/%d, single-path %d/%d",
			ins.SkippedRows, ins.TotalRows, want.SkippedRows, want.TotalRows)
	}
	if ins.EmbedNS < 0 || ins.AttentionNS <= 0 || ins.OutputNS <= 0 {
		t.Errorf("stage timers not populated: %+v", ins)
	}
}

// TestPredictBatchValidation exercises the panic guards.
func TestPredictBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randBatchCase(t, rng, 2)
	var bf BatchForward
	out := make([]int, 2)

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("length mismatch", func() {
		c.model.PredictBatchInto(c.exs, 0, c.stories[:1], &bf, out)
	})
	mustPanic("nil story", func() {
		c.model.PredictBatchInto(c.exs, 0, []*EmbeddedStory{c.stories[0], nil}, &bf, out)
	})
	mustPanic("NS mismatch", func() {
		bad := &EmbeddedStory{NS: c.stories[1].NS + 1, MemIn: c.stories[1].MemIn, MemOut: c.stories[1].MemOut}
		c.model.PredictBatchInto(c.exs, 0, []*EmbeddedStory{c.stories[0], bad}, &bf, out)
	})

	// Empty batch is a no-op, not a panic.
	c.model.PredictBatchInto(nil, 0, nil, &bf, nil)
}

// TestPredictBatchAllocs: at steady state the batched pass allocates
// nothing — the flush boundary itself (queue plumbing) is outside this
// measurement, the model math is inside it.
func TestPredictBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(9))
	c := randBatchCase(t, rng, 8)
	var bf BatchForward
	out := make([]int, len(c.exs))
	c.model.PredictBatchInto(c.exs, c.th, c.stories, &bf, out) // warm buffers
	allocs := testing.AllocsPerRun(50, func() {
		c.model.PredictBatchInto(c.exs, c.th, c.stories, &bf, out)
	})
	if allocs != 0 {
		t.Errorf("batched predict allocates %v per batch, want 0", allocs)
	}
}

// TestPredictBatchInstrumentedAllocs: turning instrumentation on must
// not cost allocations either — the stage timers write into the
// caller's accumulators, nothing else.
func TestPredictBatchInstrumentedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(10))
	c := randBatchCase(t, rng, 8)
	var bf BatchForward
	var ins Instrumentation
	out := make([]int, len(c.exs))
	c.model.PredictBatchInstrumented(c.exs, c.th, ExitPolicy{}, c.stories, &bf, &ins, out) // warm buffers
	allocs := testing.AllocsPerRun(50, func() {
		ins.Reset()
		c.model.PredictBatchInstrumented(c.exs, c.th, ExitPolicy{}, c.stories, &bf, &ins, out)
	})
	if allocs != 0 {
		t.Errorf("instrumented batched predict allocates %v per batch, want 0", allocs)
	}
	if ins.TotalRows == 0 {
		t.Error("instrumentation did not record any rows")
	}
}

// TestPredictBatchParallelEquivalence: dispatching story groups across
// scheduler workers must not change a single bit — each group's
// per-question operation order is untouched, only which worker runs it.
func TestPredictBatchParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 40; iter++ {
		batch := 1 + rng.Intn(12)
		c := randBatchCase(t, rng, batch)

		var serial BatchForward
		out := make([]int, batch)
		c.model.PredictBatchInto(c.exs, c.th, c.stories, &serial, out)

		for _, p := range []int{1, 2, 4, 8} {
			pool := tensor.NewPool(p)
			c.model.SetParallel(pool)
			var bf BatchForward
			pout := make([]int, batch)
			c.model.PredictBatchInto(c.exs, c.th, c.stories, &bf, pout)
			for q := 0; q < batch; q++ {
				if pout[q] != out[q] {
					t.Fatalf("iter %d P=%d q %d: answer %d, serial %d", iter, p, q, pout[q], out[q])
				}
				got, want := bf.Logits(q), serial.Logits(q)
				for i := range got {
					if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
						t.Fatalf("iter %d P=%d q %d: logit %d = %x, serial %x (not bit-identical)",
							iter, p, q, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
					}
				}
			}
			pool.Close()
		}
	}
}

// TestPredictBatchParallelAllocs: the scheduler dispatch must keep the
// batched pass allocation-free at steady state.
func TestPredictBatchParallelAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(14))
	c := randBatchCase(t, rng, 8)
	pool := tensor.NewPool(4)
	defer pool.Close()
	c.model.SetParallel(pool)
	var bf BatchForward
	out := make([]int, len(c.exs))
	c.model.PredictBatchInto(c.exs, c.th, c.stories, &bf, out) // warm buffers
	allocs := testing.AllocsPerRun(50, func() {
		c.model.PredictBatchInto(c.exs, c.th, c.stories, &bf, out)
	})
	if allocs != 0 {
		t.Errorf("parallel batched predict allocates %v per batch, want 0", allocs)
	}
}
