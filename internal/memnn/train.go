package memnn

import (
	"fmt"
	"math"
	"math/rand"

	"mnnfast/internal/tensor"
)

// TrainOptions configures SGD training. Defaults follow the end-to-end
// memory networks recipe: lr 0.01 halved periodically, gradient-norm
// clipping at 40.
type TrainOptions struct {
	Epochs       int
	LearningRate float32
	AnnealEvery  int     // halve lr every this many epochs (0 = never)
	AnnealFactor float32 // multiplier applied at each anneal step
	ClipNorm     float32 // global gradient L2 clip per example (0 = off)
	Seed         int64   // shuffling seed
	// LinearStartEpochs trains with the attention softmax removed for
	// the first N epochs (the MemN2N paper's "linear start"), which
	// helps the attention escape poor local minima before the softmax
	// sharpens it.
	LinearStartEpochs int
	// BatchSize accumulates gradients over this many examples before
	// each parameter step (0 or 1 = pure per-example SGD). Clipping
	// applies to the accumulated batch gradient, scaled by 1/batch.
	BatchSize int
	// Validation, when non-empty, is evaluated after every epoch; the
	// accuracy trajectory lands in TrainResult.ValAccuracy.
	Validation []Example
	// Patience stops training early after this many consecutive epochs
	// without a new best validation accuracy (0 = never stop early;
	// requires Validation).
	Patience int
	Logf     func(format string, args ...any) // optional progress sink
}

// DefaultTrainOptions returns the standard recipe scaled for the small
// synthetic tasks.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{
		Epochs:       60,
		LearningRate: 0.01,
		AnnealEvery:  20,
		AnnealFactor: 0.5,
		ClipNorm:     40,
		Seed:         1,
	}
}

// grads mirrors the model's parameter tensors.
type grads struct {
	b       *tensor.Matrix
	emb     []*tensor.Matrix
	timeIn  []*tensor.Matrix
	timeOut []*tensor.Matrix
	h       *tensor.Matrix
	w       *tensor.Matrix
}

func newGrads(m *Model) *grads {
	g := &grads{
		b:   tensor.NewMatrix(m.B.Rows, m.B.Cols),
		w:   tensor.NewMatrix(m.W.Rows, m.W.Cols),
		emb: make([]*tensor.Matrix, len(m.Emb)),
	}
	for i, e := range m.Emb {
		g.emb[i] = tensor.NewMatrix(e.Rows, e.Cols)
	}
	g.timeIn = make([]*tensor.Matrix, len(m.TimeIn))
	g.timeOut = make([]*tensor.Matrix, len(m.TimeOut))
	for k := range m.TimeIn {
		g.timeIn[k] = tensor.NewMatrix(m.TimeIn[k].Rows, m.TimeIn[k].Cols)
		g.timeOut[k] = tensor.NewMatrix(m.TimeOut[k].Rows, m.TimeOut[k].Cols)
	}
	if m.H != nil {
		g.h = tensor.NewMatrix(m.H.Rows, m.H.Cols)
	}
	return g
}

func (g *grads) zero() {
	g.b.Zero()
	g.w.Zero()
	for _, e := range g.emb {
		e.Zero()
	}
	for k := range g.timeIn {
		g.timeIn[k].Zero()
		g.timeOut[k].Zero()
	}
	if g.h != nil {
		g.h.Zero()
	}
}

func (g *grads) each(fn func(param *tensor.Matrix)) {
	fn(g.b)
	fn(g.w)
	for _, e := range g.emb {
		fn(e)
	}
	for k := range g.timeIn {
		fn(g.timeIn[k])
		fn(g.timeOut[k])
	}
	if g.h != nil {
		fn(g.h)
	}
}

func (g *grads) norm() float32 {
	var s float64
	g.each(func(p *tensor.Matrix) {
		for _, x := range p.Data {
			s += float64(x) * float64(x)
		}
	})
	return float32(math.Sqrt(s))
}

// gradEmbIn returns the gradient matrix of the hop-k memory-input
// embedding (respecting the tying scheme).
func (m *Model) gradEmbIn(g *grads, k int) *tensor.Matrix {
	if m.Cfg.Tying == TyingLayerwise {
		return g.emb[0]
	}
	return g.emb[k]
}

func (m *Model) gradEmbOut(g *grads, k int) *tensor.Matrix {
	if m.Cfg.Tying == TyingLayerwise {
		return g.emb[1]
	}
	return g.emb[k+1]
}

// backward computes the example's gradient into g (which must be
// zeroed) and returns the cross-entropy loss.
func (m *Model) backward(ex Example, f *Forward, g *grads) float32 {
	d := m.Cfg.Dim
	ns := f.NS

	// Softmax cross-entropy on the answer logits.
	probs := f.Logits.Clone()
	tensor.Softmax(probs)
	loss := -float32(math.Log(math.Max(float64(probs[ex.Answer]), 1e-30)))
	dLogits := probs // reuse: dL/dlogit = p - onehot
	dLogits[ex.Answer] -= 1

	// W and the final internal state.
	uK := f.U[m.Cfg.Hops]
	tensor.OuterAccumulate(g.w, dLogits, uK, 1)
	dU := tensor.NewVector(d)
	for a, ga := range dLogits {
		tensor.Axpy(ga, m.W.Row(a), dU)
	}

	dIn := tensor.NewVector(d)
	for k := m.Cfg.Hops - 1; k >= 0; k-- {
		p := f.P[k]
		in, out := f.MemIn[k], f.MemOut[k]
		ti := m.timeIdx(k)
		// u_{k+1} = [H·]u_k + o_k: the o branch receives dU directly.
		dO := dU
		// o = Σ p_i out_i.
		dP := tensor.NewVector(ns)
		for i := 0; i < ns; i++ {
			dP[i] = tensor.Dot(dO, out.Row(i))
		}

		// Attention backward. With softmax:
		// dlogit_i = p_i (dP_i - Σ_j p_j dP_j); linear start passes dP
		// through unchanged.
		dLogit := dP
		if !m.LinearAttention {
			var sum float32
			for i := 0; i < ns; i++ {
				sum += p[i] * dP[i]
			}
			for i := 0; i < ns; i++ {
				dLogit[i] = p[i] * (dP[i] - sum)
			}
		}

		// State-branch backward: adjacent passes dU through the
		// identity; layer-wise routes it through H.
		dUNext := tensor.NewVector(d)
		if m.Cfg.Tying == TyingLayerwise {
			// dU_k += Hᵀ·dU'; dH += dU' ⊗ u_k.
			for r := 0; r < d; r++ {
				tensor.Axpy(dU[r], m.H.Row(r), dUNext)
			}
			tensor.OuterAccumulate(g.h, dU, f.U[k], 1)
		} else {
			copy(dUNext, dU)
		}

		// logits_i = u_k · in_i.
		uk := f.U[k]
		gIn := m.gradEmbIn(g, k)
		gOut := m.gradEmbOut(g, k)
		for i := 0; i < ns; i++ {
			if gl := dLogit[i]; gl != 0 {
				tensor.Axpy(gl, in.Row(i), dUNext)
				// dIn_i = gl · u_k → embedding rows + temporal row.
				dIn.Zero()
				tensor.Axpy(gl, uk, dIn)
				m.scatter(gIn, g.timeIn[ti], ex.Sentences[i], i, ns, dIn)
			}
			if pi := p[i]; pi != 0 {
				// dOut_i = p_i · dO.
				dIn.Zero()
				tensor.Axpy(pi, dO, dIn)
				m.scatter(gOut, g.timeOut[ti], ex.Sentences[i], i, ns, dIn)
			}
		}
		dU = dUNext
	}

	// Question embedding (no temporal row).
	m.scatterWords(g.b, ex.Question, dU)
	return loss
}

// scatter adds grad to the embedding rows of every non-pad word of the
// sentence (position-weighted under PE) and to the temporal row for
// slot i of ns.
func (m *Model) scatter(emb, temporal *tensor.Matrix, words []int, i, ns int, grad tensor.Vector) {
	m.scatterWords(emb, words, grad)
	tensor.Axpy(1, grad, temporal.Row(ns-1-i))
}

// scatterWords distributes grad onto the embedding rows of the words,
// applying the same position weights the forward encoding used.
func (m *Model) scatterWords(emb *tensor.Matrix, words []int, grad tensor.Vector) {
	if !m.Cfg.Position {
		for _, w := range words {
			if w == 0 {
				continue
			}
			tensor.Axpy(1, grad, emb.Row(w))
		}
		return
	}
	bigJ := 0
	for _, w := range words {
		if w != 0 {
			bigJ++
		}
	}
	if bigJ == 0 {
		return
	}
	j := 0
	d := m.Cfg.Dim
	for _, w := range words {
		if w == 0 {
			continue
		}
		j++
		row := emb.Row(w)
		for k := range grad {
			row[k] += posWeight(j, bigJ, k, d) * grad[k]
		}
	}
}

// step applies g to the model with learning rate lr, clipping the
// global norm first if requested.
func (m *Model) step(g *grads, lr, clip float32) {
	scale := -lr
	if clip > 0 {
		if n := g.norm(); n > clip {
			scale *= clip / n
		}
	}
	apply := func(param, grad *tensor.Matrix) {
		for i, x := range grad.Data {
			param.Data[i] += scale * x
		}
	}
	apply(m.B, g.b)
	apply(m.W, g.w)
	for i := range m.Emb {
		apply(m.Emb[i], g.emb[i])
	}
	for k := range m.TimeIn {
		apply(m.TimeIn[k], g.timeIn[k])
		apply(m.TimeOut[k], g.timeOut[k])
	}
	if m.H != nil {
		apply(m.H, g.h)
	}
}

// TrainResult reports the training trajectory.
type TrainResult struct {
	EpochLoss   []float32 // mean per-example loss per epoch
	ValAccuracy []float64 // per-epoch validation accuracy (if Validation set)
	StoppedAt   int       // epochs actually run (== Epochs unless early-stopped)
	FinalLR     float32
}

// Train runs per-example SGD over the examples for the configured
// number of epochs and returns the loss trajectory.
func (m *Model) Train(examples []Example, opt TrainOptions) (*TrainResult, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("memnn: Train with no examples")
	}
	for i, ex := range examples {
		if ex.Answer < 0 || ex.Answer >= m.Cfg.Answers {
			return nil, fmt.Errorf("memnn: example %d has answer class %d outside [0, %d)", i, ex.Answer, m.Cfg.Answers)
		}
		if len(ex.Sentences) == 0 {
			return nil, fmt.Errorf("memnn: example %d has no story", i)
		}
	}
	if opt.Epochs < 1 {
		opt.Epochs = 1
	}
	if opt.LearningRate <= 0 {
		opt.LearningRate = 0.01
	}
	if opt.AnnealFactor <= 0 {
		opt.AnnealFactor = 0.5
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	g := newGrads(m)
	lr := opt.LearningRate
	res := &TrainResult{}

	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		m.LinearAttention = epoch < opt.LinearStartEpochs
		if opt.AnnealEvery > 0 && epoch > 0 && epoch%opt.AnnealEvery == 0 {
			lr *= opt.AnnealFactor
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		batch := opt.BatchSize
		if batch < 1 {
			batch = 1
		}
		g.zero()
		pending := 0
		for _, idx := range order {
			ex := examples[idx]
			f := m.Apply(ex, 0)
			total += float64(m.backward(ex, f, g))
			pending++
			if pending == batch {
				m.step(g, lr/float32(batch), opt.ClipNorm)
				g.zero()
				pending = 0
			}
		}
		if pending > 0 {
			m.step(g, lr/float32(pending), opt.ClipNorm)
			g.zero()
		}
		mean := float32(total / float64(len(examples)))
		res.EpochLoss = append(res.EpochLoss, mean)
		res.StoppedAt = epoch + 1

		if len(opt.Validation) > 0 {
			// Evaluate with the softmax on even during linear start —
			// validation measures the deployable model.
			wasLinear := m.LinearAttention
			m.LinearAttention = false
			acc := m.Accuracy(opt.Validation, 0)
			m.LinearAttention = wasLinear
			res.ValAccuracy = append(res.ValAccuracy, acc)
			if opt.Logf != nil {
				opt.Logf("epoch %3d: loss %.4f val %.3f (lr %.4g)", epoch, mean, acc, lr)
			}
			if opt.Patience > 0 && epoch >= opt.LinearStartEpochs {
				best := acc
				bestAge := 0
				for i, a := range res.ValAccuracy {
					if a >= best {
						best = a
						bestAge = len(res.ValAccuracy) - 1 - i
					}
				}
				if bestAge >= opt.Patience {
					break
				}
			}
			continue
		}
		if opt.Logf != nil {
			opt.Logf("epoch %3d: loss %.4f (lr %.4g)", epoch, mean, lr)
		}
	}
	m.LinearAttention = false
	res.FinalLR = lr
	return res, nil
}
