//go:build race

package memnn

// raceEnabled reports whether the race detector is active; allocation
// counts are not meaningful under -race.
const raceEnabled = true
