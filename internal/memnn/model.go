package memnn

import (
	"fmt"
	"math/rand"
	"time"

	"mnnfast/internal/sched"
	"mnnfast/internal/sparse"
	"mnnfast/internal/tensor"
	"mnnfast/internal/trace"
)

// Tying selects the weight-sharing scheme between hops (Sukhbaatar et
// al. §2.2).
type Tying int

// Weight-tying schemes.
const (
	// TyingAdjacent: the memory-input embedding of hop k+1 is the
	// memory-output embedding of hop k (A^{k+1} = C^k), and the
	// internal state updates as u' = u + o.
	TyingAdjacent Tying = iota
	// TyingLayerwise: one A and one C shared by every hop (RNN-like),
	// with a learned linear map H on the internal state:
	// u' = H·u + o.
	TyingLayerwise
)

// String names the scheme.
//
//mnnfast:coldpath
func (t Tying) String() string {
	switch t {
	case TyingAdjacent:
		return "adjacent"
	case TyingLayerwise:
		return "layerwise"
	}
	return fmt.Sprintf("tying(%d)", int(t))
}

// Config describes a K-hop end-to-end memory network.
type Config struct {
	Dim     int     // ed, embedding dimension
	Hops    int     // K, number of memory hops
	Vocab   int     // V, vocabulary size
	Answers int     // number of answer classes
	MaxSent int     // ns capacity, sizes the temporal encoding tables
	InitStd float32 // weight init stddev (0 → 0.1, the paper's default)
	// Position selects position encoding (PE) for sentence embeddings
	// instead of plain bag-of-words, preserving word order (§4.1 of
	// the MemN2N paper; the MnnFast paper's §2.1 footnote).
	Position bool
	// Tying selects the weight-sharing scheme; zero value is adjacent.
	Tying Tying
}

func (c Config) validate() error {
	switch {
	case c.Dim < 1:
		return fmt.Errorf("memnn: Dim = %d, want >= 1", c.Dim)
	case c.Hops < 1:
		return fmt.Errorf("memnn: Hops = %d, want >= 1", c.Hops)
	case c.Vocab < 1:
		return fmt.Errorf("memnn: Vocab = %d, want >= 1", c.Vocab)
	case c.Answers < 1:
		return fmt.Errorf("memnn: Answers = %d, want >= 1", c.Answers)
	case c.MaxSent < 1:
		return fmt.Errorf("memnn: MaxSent = %d, want >= 1", c.MaxSent)
	case c.Tying != TyingAdjacent && c.Tying != TyingLayerwise:
		return fmt.Errorf("memnn: unknown tying scheme %d", int(c.Tying))
	}
	return nil
}

// Model holds the learned parameters of a memory network. With adjacent
// tying, Emb holds Hops+1 embedding matrices (A_k = Emb[k-1],
// C_k = Emb[k]) and TimeIn/TimeOut hold one temporal table per hop.
// With layer-wise tying, Emb holds exactly {A, C}, the temporal tables
// are shared across hops (length 1), and H maps the internal state
// between hops. The question embedding B is always separate, and W
// maps the final internal state to answer logits.
type Model struct {
	Cfg     Config
	B       *tensor.Matrix   // V×d, question embedding
	Emb     []*tensor.Matrix // V×d embedding matrices (see Tying)
	TimeIn  []*tensor.Matrix // MaxSent×d temporal encodings
	TimeOut []*tensor.Matrix // MaxSent×d temporal encodings
	H       *tensor.Matrix   // d×d state map (layer-wise tying only)
	W       *tensor.Matrix   // Answers×d, final projection

	// LinearAttention disables the attention softmax (raw inner
	// products become weights) — the "linear start" training phase of
	// the MemN2N paper, which helps escape poor local minima. The
	// trainer toggles it; inference normally leaves it false.
	LinearAttention bool

	// sch distributes a batched pass's story groups over persistent
	// workers (SetParallel). nil runs serially; either way the outputs
	// are bit-identical — groups touch disjoint per-question state and
	// every per-question operation keeps its order.
	sch *sched.Scheduler

	// topk configures approximate top-k attention (SetTopK, topk.go).
	// The zero value keeps every hop exact.
	topk TopKConfig
}

// SetParallel routes the batched predict path's per-story-group work
// over pool's persistent workers through a work-stealing scheduler.
// A nil pool (or never calling SetParallel) keeps the pass serial.
// Parallel and serial passes are bit-identical, so this is purely a
// throughput knob. Not safe to call concurrently with predictions.
//
//mnnfast:coldpath
func (m *Model) SetParallel(pool *tensor.Pool) {
	m.sch = sched.New(pool)
}

// Scheduler exposes the batched-predict scheduler for observability
// (per-worker chunk/steal/idle counters); nil unless SetParallel was
// called.
//
//mnnfast:coldpath
func (m *Model) Scheduler() *sched.Scheduler { return m.sch }

// NewModel initializes a model with N(0, InitStd²) weights from rng.
func NewModel(cfg Config, rng *rand.Rand) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	std := cfg.InitStd
	if std == 0 {
		std = 0.1
	}
	m := &Model{Cfg: cfg}
	m.B = tensor.GaussianMatrix(rng, cfg.Vocab, cfg.Dim, std)
	nEmb, nTime := cfg.Hops+1, cfg.Hops
	if cfg.Tying == TyingLayerwise {
		nEmb, nTime = 2, 1
		m.H = tensor.GaussianMatrix(rng, cfg.Dim, cfg.Dim, std)
	}
	m.Emb = make([]*tensor.Matrix, nEmb)
	for i := range m.Emb {
		m.Emb[i] = tensor.GaussianMatrix(rng, cfg.Vocab, cfg.Dim, std)
	}
	m.TimeIn = make([]*tensor.Matrix, nTime)
	m.TimeOut = make([]*tensor.Matrix, nTime)
	for k := 0; k < nTime; k++ {
		m.TimeIn[k] = tensor.GaussianMatrix(rng, cfg.MaxSent, cfg.Dim, std)
		m.TimeOut[k] = tensor.GaussianMatrix(rng, cfg.MaxSent, cfg.Dim, std)
	}
	m.W = tensor.GaussianMatrix(rng, cfg.Answers, cfg.Dim, std)
	return m, nil
}

// embIn returns the memory-input embedding of hop k.
func (m *Model) embIn(k int) *tensor.Matrix {
	if m.Cfg.Tying == TyingLayerwise {
		return m.Emb[0]
	}
	return m.Emb[k]
}

// embOut returns the memory-output embedding of hop k.
func (m *Model) embOut(k int) *tensor.Matrix {
	if m.Cfg.Tying == TyingLayerwise {
		return m.Emb[1]
	}
	return m.Emb[k+1]
}

// timeIdx maps hop k to a temporal-table index.
func (m *Model) timeIdx(k int) int {
	if m.Cfg.Tying == TyingLayerwise {
		return 0
	}
	return k
}

// Forward holds every intermediate of one example's forward pass; the
// trainer reuses it for backprop and the evaluation code reads the
// per-hop attention vectors from it.
type Forward struct {
	NS     int              // number of story sentences
	U      []tensor.Vector  // Hops+1 internal states (U[0] = question)
	MemIn  []*tensor.Matrix // per hop: ns×d input memory (embedded)
	MemOut []*tensor.Matrix // per hop: ns×d output memory (embedded)
	P      []tensor.Vector  // per hop: attention weights (length ns)
	O      []tensor.Vector  // per hop: response vector
	Logits tensor.Vector    // answer logits (length Answers)

	// ExitHop is the number of hops the pass actually executed: Hops
	// normally, fewer when a confidence gate fired (see ExitPolicy).
	ExitHop int

	// gateP is the gate's softmax scratch (length Answers); it never
	// feeds back into the forward state.
	gateP tensor.Vector
}

// posWeight returns the position-encoding factor l_kj for the j-th of J
// words (1-based) at embedding dimension k (0-based) of d:
//
//	l_kj = (1 - j/J) - ((k+1)/d)·(1 - 2j/J)
func posWeight(j, bigJ, k, d int) float32 {
	fj, fJ := float32(j), float32(bigJ)
	return (1 - fj/fJ) - (float32(k+1)/float32(d))*(1-2*fj/fJ)
}

// encodeInto accumulates the sentence embedding of word IDs from table
// emb plus the temporal vector into dst, with optional position
// encoding.
//
//mnnfast:hotpath
func (m *Model) encodeInto(emb *tensor.Matrix, words []int, temporal tensor.Vector, dst tensor.Vector) {
	dst.Zero()
	if m.Cfg.Position {
		bigJ := 0
		for _, w := range words {
			if w != 0 {
				bigJ++
			}
		}
		j := 0
		for _, w := range words {
			if w == 0 {
				continue
			}
			j++
			row := emb.Row(w)
			for k := range dst {
				dst[k] += posWeight(j, bigJ, k, m.Cfg.Dim) * row[k]
			}
		}
	} else {
		for _, w := range words {
			if w == 0 {
				continue
			}
			tensor.Axpy(1, emb.Row(w), dst)
		}
	}
	if temporal != nil {
		dst.AddInPlace(temporal)
	}
}

// temporalRow returns the temporal-encoding vector for sentence i of ns:
// the most recent sentence uses row 0, matching how stories are trimmed
// to the most recent MaxSent sentences.
func (m *Model) temporalRow(table *tensor.Matrix, i, ns int) tensor.Vector {
	return table.Row(ns - 1 - i)
}

// Apply runs the forward pass for one example and returns all
// intermediates. The zero-skip threshold, if positive, zeroes attention
// weights below it before the weighted sum (the paper's Algorithm 1);
// the skipped mass is NOT renormalized, matching the paper's FPGA
// implementation which accumulates every exp into P_sum but skips only
// the weighted-sum work.
func (m *Model) Apply(ex Example, skipThreshold float32) *Forward {
	return m.ApplyInto(ex, skipThreshold, new(Forward))
}

// growVec returns a length-n vector reusing v's storage when possible.
func growVec(v tensor.Vector, n int) tensor.Vector {
	if cap(v) < n {
		return tensor.NewVector(n)
	}
	return v[:n]
}

// growMat reshapes mat to rows×cols, reusing its storage when possible.
func growMat(mat *tensor.Matrix, rows, cols int) *tensor.Matrix {
	if mat == nil {
		return tensor.NewMatrix(rows, cols)
	}
	n := rows * cols
	if cap(mat.Data) < n {
		mat.Data = make([]float32, n)
	}
	mat.Data = mat.Data[:n]
	mat.Rows, mat.Cols = rows, cols
	return mat
}

// ApplyInto is Apply with a caller-provided Forward whose buffers are
// reshaped (grow-only) and reused. A serving loop that owns one Forward
// per goroutine runs the whole forward pass without allocating once the
// buffers reach steady-state size. f must not be shared between
// concurrent calls.
//
//mnnfast:hotpath
func (m *Model) ApplyInto(ex Example, skipThreshold float32, f *Forward) *Forward {
	return m.applyInto(ex, skipThreshold, f, nil, nil, ExitPolicy{})
}

// applyInto is the forward pass shared by ApplyInto, ApplyInstrumented
// and ApplyGated. es, when non-nil, supplies pre-embedded memories
// for the story (skipping the per-hop encode); ins, when non-nil,
// accumulates per-stage wall time and zero-skip counters; policy, when
// armed, gates each eligible hop on a confidence score and exits early
// when it clears the threshold (see exit.go for the determinism
// contract). All paths stay allocation-free at steady state.
//
//mnnfast:hotpath
func (m *Model) applyInto(ex Example, skipThreshold float32, f *Forward, es *EmbeddedStory, ins *Instrumentation, policy ExitPolicy) *Forward {
	ns := len(ex.Sentences)
	if ns == 0 {
		panic("memnn: Apply on example with no story sentences")
	}
	if ns > m.Cfg.MaxSent {
		panic(fmt.Sprintf("memnn: story of %d sentences exceeds MaxSent %d", ns, m.Cfg.MaxSent))
	}
	if es != nil && es.NS != ns {
		panic(fmt.Sprintf("memnn: EmbeddedStory built for %d sentences applied to story of %d", es.NS, ns))
	}
	hops, d := m.Cfg.Hops, m.Cfg.Dim
	f.NS = ns
	if cap(f.U) < hops+1 {
		f.U = make([]tensor.Vector, hops+1)
	}
	f.U = f.U[:hops+1]
	if cap(f.MemIn) < hops {
		f.MemIn = make([]*tensor.Matrix, hops)
		f.MemOut = make([]*tensor.Matrix, hops)
		f.P = make([]tensor.Vector, hops)
		f.O = make([]tensor.Vector, hops)
	}
	f.MemIn, f.MemOut = f.MemIn[:hops], f.MemOut[:hops]
	f.P, f.O = f.P[:hops], f.O[:hops]
	f.ExitHop = hops
	gate, minH := policy.active(hops), policy.minHops()

	var mark time.Time
	var ev *trace.Events
	if ins != nil {
		mark = time.Now()
		ev = ins.Ev
	}

	// Question embedding.
	qe := ev.Begin("embed-question", -1)
	f.U[0] = growVec(f.U[0], d)
	m.encodeInto(m.B, ex.Question, nil, f.U[0])
	ev.End(qe)
	if ins != nil {
		lap(&mark, &ins.EmbedNS)
	}

	for k := 0; k < hops; k++ {
		var in, out *tensor.Matrix
		if es != nil {
			in, out = es.MemIn[k], es.MemOut[k]
		} else {
			me := ev.Begin("embed-memory", -1)
			in = growMat(f.MemIn[k], ns, d)
			out = growMat(f.MemOut[k], ns, d)
			f.MemIn[k], f.MemOut[k] = in, out
			ti := m.timeIdx(k)
			for i := 0; i < ns; i++ {
				m.encodeInto(m.embIn(k), ex.Sentences[i], m.temporalRow(m.TimeIn[ti], i, ns), in.Row(i))
				m.encodeInto(m.embOut(k), ex.Sentences[i], m.temporalRow(m.TimeOut[ti], i, ns), out.Row(i))
			}
			ev.Annotate(me, "hop", int64(k))
			ev.End(me)
			if ins != nil {
				lap(&mark, &ins.EmbedNS)
			}
		}
		he := ev.Begin("hop", -1)

		o := growVec(f.O[k], d)
		f.O[k] = o
		skipped, rows := 0, ns
		if idx := m.topkIndex(es, k); idx != nil {
			// Approximate attention: probe the hop's IVF index, softmax
			// only the surviving candidates, gather only their M_OUT
			// rows. f.P[k] becomes the compact survivor distribution
			// (ascending row order), which is what the attnmax gate and
			// the skip threshold then see. Per-question, serial, and
			// scratch-pooled: bit-identical at any parallelism or batch
			// composition, allocation-free at steady state.
			scr := sparse.GetProbeScratch()
			c, ast := idx.Attend(f.U[k], m.topk.K, m.topk.NProbe, scr)
			p := growVec(f.P[k], ast.Kept)
			f.P[k] = p
			copy(p, c.Weights)
			skipped = c.WeightedSumGather(out, skipThreshold, o)
			sparse.PutProbeScratch(scr)
			rows = ast.Kept
			ev.Annotate(he, "topk_probed", int64(ast.Probed))
			ev.Annotate(he, "topk_kept", int64(ast.Kept))
			if ins != nil {
				ins.ProbedRows += int64(ast.Probed)
				ins.CandRows += int64(ast.Kept)
			}
		} else {
			// Input memory representation: p = softmax(u · M_INᵀ), or
			// the raw inner products during linear-start training.
			p := growVec(f.P[k], ns)
			f.P[k] = p
			tensor.MatVec(nil, in, f.U[k], p)
			if !m.LinearAttention {
				tensor.Softmax(p)
			}

			// Output memory representation: o = Σ pᵢ m_iᴼᵁᵀ, optionally
			// skipping near-zero attention rows.
			o.Zero()
			for i := 0; i < ns; i++ {
				if skipThreshold > 0 && p[i] < skipThreshold {
					skipped++
					continue
				}
				tensor.Axpy(p[i], out.Row(i), o)
			}
		}

		// Output calculation input: u' = u + o (adjacent) or
		// u' = H·u + o (layer-wise).
		u := growVec(f.U[k+1], d)
		f.U[k+1] = u
		if m.Cfg.Tying == TyingLayerwise {
			tensor.MatVec(nil, m.H, f.U[k], u)
		} else {
			copy(u, f.U[k])
		}
		u.AddInPlace(o)
		ev.Annotate(he, "hop", int64(k))
		ev.Annotate(he, "skipped", int64(skipped))
		ev.Annotate(he, "rows", int64(rows))
		ev.End(he)
		if ins != nil {
			ins.SkippedRows += int64(skipped)
			ins.TotalRows += int64(rows)
			lap(&mark, &ins.AttentionNS)
		}

		// Confidence gate: after an eligible hop, score the state and
		// exit early when the score clears the threshold. The gate
		// writes only f.Logits and the gate scratch — never U, P, or O
		// — so a pass where it never fires is bit-identical to the
		// ungated pass (the final projection overwrites f.Logits).
		if h := k + 1; gate && h >= minH && h < hops {
			ge := ev.Begin("gate", -1)
			conf := m.gateConfidence(policy.Metric, f, k)
			fired := conf >= policy.Threshold
			var fv int64
			if fired {
				fv = 1
			}
			ev.Annotate(ge, "hop", int64(k))
			ev.Annotate(ge, "exit", fv)
			ev.End(ge)
			if ins != nil {
				lap(&mark, &ins.GateNS)
			}
			if fired {
				// Answer from the current state. The answer metrics
				// already computed W·u into f.Logits; the attention
				// metric pays the projection only on exit.
				if policy.Metric == ExitAttnMax {
					f.Logits = growVec(f.Logits, m.Cfg.Answers)
					tensor.MatVec(nil, m.W, f.U[h], f.Logits)
					if ins != nil {
						lap(&mark, &ins.OutputNS)
					}
				}
				f.ExitHop = h
				return f
			}
			if fb := policy.fallback(); fb > 0 && conf < fb {
				gate = false // hard question: commit to the full path
			}
		}
	}

	oe := ev.Begin("output", -1)
	f.Logits = growVec(f.Logits, m.Cfg.Answers)
	tensor.MatVec(nil, m.W, f.U[hops], f.Logits)
	ev.End(oe)
	if ins != nil {
		lap(&mark, &ins.OutputNS)
	}
	return f
}

// Predict returns the argmax answer class for the example.
func (m *Model) Predict(ex Example) int {
	return m.Apply(ex, 0).Logits.ArgMax()
}

// PredictSkip returns the argmax answer class with zero-skipping applied
// at the given threshold.
func (m *Model) PredictSkip(ex Example, threshold float32) int {
	return m.Apply(ex, threshold).Logits.ArgMax()
}

// PredictSkipInto is PredictSkip with a caller-provided Forward reused
// across calls — the allocation-free serving path (see ApplyInto).
//
//mnnfast:hotpath
func (m *Model) PredictSkipInto(ex Example, threshold float32, f *Forward) int {
	return m.ApplyInto(ex, threshold, f).Logits.ArgMax()
}

// NumParams returns the total trainable parameter count.
func (m *Model) NumParams() int {
	n := len(m.B.Data) + len(m.W.Data)
	for _, e := range m.Emb {
		n += len(e.Data)
	}
	for k := range m.TimeIn {
		n += len(m.TimeIn[k].Data) + len(m.TimeOut[k].Data)
	}
	if m.H != nil {
		n += len(m.H.Data)
	}
	return n
}
