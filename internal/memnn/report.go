package memnn

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report breaks accuracy down per answer class — the view that exposes
// which classes zero-skipping harms (e.g., counting answers) when the
// aggregate number hides it.
type Report struct {
	Overall float64
	// PerAnswer maps answer word → (correct, total) on the evaluated
	// set.
	PerAnswer map[string][2]int
	// Confusions counts the most frequent (gold answer → predicted)
	// errors.
	Confusions map[[2]string]int
}

// Evaluate builds a Report over the examples with zero-skipping at
// threshold (0 = exact).
func (m *Model) Evaluate(c *Corpus, examples []Example, threshold float32) *Report {
	r := &Report{
		PerAnswer:  make(map[string][2]int),
		Confusions: make(map[[2]string]int),
	}
	correct := 0
	for _, ex := range examples {
		pred := m.PredictSkip(ex, threshold)
		gold := c.AnswerWord(ex.Answer)
		pa := r.PerAnswer[gold]
		pa[1]++
		if pred == ex.Answer {
			pa[0]++
			correct++
		} else {
			r.Confusions[[2]string{gold, c.AnswerWord(pred)}]++
		}
		r.PerAnswer[gold] = pa
	}
	if len(examples) > 0 {
		r.Overall = float64(correct) / float64(len(examples))
	}
	return r
}

// Fprint writes a human-readable breakdown: per-answer accuracy in
// descending-frequency order and the top confusions.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "overall accuracy: %.3f\n", r.Overall)

	answers := make([]string, 0, len(r.PerAnswer))
	for a := range r.PerAnswer {
		answers = append(answers, a)
	}
	sort.Slice(answers, func(i, j int) bool {
		ci, cj := r.PerAnswer[answers[i]], r.PerAnswer[answers[j]]
		if ci[1] != cj[1] {
			return ci[1] > cj[1]
		}
		return answers[i] < answers[j]
	})
	fmt.Fprintln(w, "per-answer accuracy:")
	for _, a := range answers {
		c := r.PerAnswer[a]
		fmt.Fprintf(w, "  %-12s %4d/%-4d (%.2f)\n", a, c[0], c[1], float64(c[0])/float64(c[1]))
	}

	if len(r.Confusions) > 0 {
		type conf struct {
			pair  [2]string
			count int
		}
		confs := make([]conf, 0, len(r.Confusions))
		for p, n := range r.Confusions {
			confs = append(confs, conf{p, n})
		}
		sort.Slice(confs, func(i, j int) bool {
			if confs[i].count != confs[j].count {
				return confs[i].count > confs[j].count
			}
			return confs[i].pair[0]+confs[i].pair[1] < confs[j].pair[0]+confs[j].pair[1]
		})
		if len(confs) > 5 {
			confs = confs[:5]
		}
		fmt.Fprintln(w, "top confusions (gold → predicted):")
		for _, c := range confs {
			fmt.Fprintf(w, "  %s → %s: %d\n", c.pair[0], c.pair[1], c.count)
		}
	}
}

// String renders the report.
//
//mnnfast:coldpath
func (r *Report) String() string {
	var sb strings.Builder
	r.Fprint(&sb)
	return sb.String()
}
