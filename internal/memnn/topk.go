package memnn

import (
	"mnnfast/internal/sparse"
)

// Approximate top-k attention (ROADMAP "Million-row memories"): an IVF
// index over each hop's embedded M_IN lets a hop score only the rows
// in the nprobe best clusters instead of all ns, cutting per-hop work
// from O(ns·ed) to O(probed·ed). The index is built once per
// EmbeddedStory — the story-ingest analogue of the embedding cache
// (§3.3) — and reused across every question and hop on that story.
//
// Determinism contract (DESIGN.md §15): for a fixed index the topk hop
// is bit-identical across {serial, parallel} × {batched, unbatched} —
// the probe, candidate sort, top-k cut, softmax, and ascending-row
// gather are per-question serial operations with no cross-question
// state, pinned by internal/equivtest. Stories below MinRows (and
// examples without a cached EmbeddedStory, e.g. the training path)
// fall back to exact attention.

// TopKConfig configures the model's approximate top-k attention mode.
// The zero value (Enabled false) is exact attention everywhere.
type TopKConfig struct {
	// Enabled turns the topk path on for stories with a built index.
	Enabled bool
	// K is the number of attention survivors per hop; <= 0 keeps every
	// probed candidate (probe-limited attention).
	K int
	// NProbe is the number of inverted lists probed per hop; <= 0
	// selects sparse.DefaultNProbe (nlist/16, at least 1).
	NProbe int
	// MinRows is the exact-fallback floor: BuildStoryIndex declines to
	// index stories with fewer sentences, keeping small stories on the
	// exact path where a probe would save nothing. <= 0 selects
	// DefaultTopKMinRows.
	MinRows int
	// Index overrides the k-means build parameters; the zero value
	// sizes everything from the row count.
	Index sparse.IndexOptions
}

// DefaultTopKMinRows is the default exact-fallback floor: below this
// row count a full scan is cheaper than probe bookkeeping.
const DefaultTopKMinRows = 256

// minRows resolves the fallback floor.
func (c TopKConfig) minRows() int {
	if c.MinRows <= 0 {
		return DefaultTopKMinRows
	}
	return c.MinRows
}

// SetTopK installs the approximate-attention configuration. It affects
// which stories BuildStoryIndex will index and whether indexed hops
// take the topk path; already-built indices on cached stories remain
// and are used only while Enabled stays true. Not safe to call
// concurrently with predictions.
//
//mnnfast:coldpath
func (m *Model) SetTopK(cfg TopKConfig) { m.topk = cfg }

// TopK returns the current approximate-attention configuration.
//
//mnnfast:coldpath
func (m *Model) TopK() TopKConfig { return m.topk }

// BuildStoryIndex builds the per-hop IVF indices for a cached story,
// one per hop over that hop's embedded M_IN. It reports whether an
// index was built: false when topk is disabled or the story is below
// the MinRows floor (the exact-fallback rule), in which case any stale
// index is dropped. With layer-wise tying every hop shares one
// embedding and temporal table, so one index is built and shared.
// Build cost is the one-time story-ingest price; call it after
// EmbedStoryInto (which invalidates the index, since re-embedding
// moves the rows).
//
//mnnfast:coldpath
func (m *Model) BuildStoryIndex(es *EmbeddedStory) bool {
	if !m.topk.Enabled || es.NS < m.topk.minRows() {
		es.Index = es.Index[:0]
		return false
	}
	hops := m.Cfg.Hops
	if cap(es.Index) < hops {
		es.Index = make([]*sparse.TopKIndex, hops)
	}
	es.Index = es.Index[:hops]
	for k := 0; k < hops; k++ {
		if m.Cfg.Tying == TyingLayerwise && k > 0 {
			// One embedding table, one temporal table: M_IN is the same
			// matrix content every hop, so the hop-0 index serves all.
			es.Index[k] = es.Index[0]
			continue
		}
		es.Index[k] = sparse.BuildTopKIndex(es.MemIn[k], m.topk.Index)
	}
	return true
}

// topkIndex returns the index to use for hop k of es, or nil when the
// hop must run exact attention: topk disabled, no cached story, no
// index built (below MinRows, or BuildStoryIndex never called), or
// linear-start training (raw inner products have no top-k structure
// worth probing — and the trainer compares against the dense pass).
//
//mnnfast:hotpath
func (m *Model) topkIndex(es *EmbeddedStory, k int) *sparse.TopKIndex {
	if !m.topk.Enabled || m.LinearAttention || es == nil || k >= len(es.Index) {
		return nil
	}
	return es.Index[k]
}
