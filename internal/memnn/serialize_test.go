package memnn

import (
	"bytes"
	"math/rand"
	"testing"

	"mnnfast/internal/babi"
	"mnnfast/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	c := smallCorpus(t, babi.TaskSingleFact, 60, 8, 31)
	m := newTestModel(t, c, 2, 31)
	opt := DefaultTrainOptions()
	opt.Epochs = 5
	if _, err := m.Train(c.Train, opt); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := Save(&buf, m, c); err != nil {
		t.Fatal(err)
	}
	m2, c2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Cfg != m.Cfg {
		t.Errorf("config mismatch: %+v vs %+v", m2.Cfg, m.Cfg)
	}
	if !tensor.Equal(m2.W, m.W, 0) || !tensor.Equal(m2.B, m.B, 0) {
		t.Error("weights differ after round trip")
	}
	if c2.Vocab.Size() != c.Vocab.Size() {
		t.Errorf("vocabulary size %d != %d", c2.Vocab.Size(), c.Vocab.Size())
	}
	for i, a := range c.Answers {
		if c2.Answers[i] != a || c2.AnswerIdx[a] != i {
			t.Errorf("answer inventory mismatch at %d", i)
		}
	}
	// Predictions must be identical through the loaded model.
	for _, ex := range c.Test {
		if m.Predict(ex) != m2.Predict(ex) {
			t.Fatal("loaded model predicts differently")
		}
	}
	// The loaded corpus must vectorize the same words to the same IDs.
	d := babi.Generate(babi.TaskSingleFact, babi.GenOptions{Stories: 1, StoryLen: 6, People: 3, Locations: 3},
		rand.New(rand.NewSource(31)))
	e1, err1 := c.VectorizeStory(d.Stories[0])
	e2, err2 := c2.VectorizeStory(d.Stories[0])
	if err1 != nil || err2 != nil {
		t.Fatalf("vectorize errors: %v / %v", err1, err2)
	}
	for i := range e1.Question {
		if e1.Question[i] != e2.Question[i] {
			t.Fatal("question IDs differ through loaded vocabulary")
		}
	}
}

func TestSaveNil(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, nil, nil); err == nil {
		t.Error("Save(nil) succeeded")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, _, err := Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Error("Load of garbage succeeded")
	}
}
