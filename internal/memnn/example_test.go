package memnn_test

import (
	"fmt"
	"math/rand"

	"mnnfast/internal/babi"
	"mnnfast/internal/memnn"
)

// Example trains an end-to-end memory network on a synthetic
// single-supporting-fact task and answers a held-out question.
func Example() {
	// Generate "where is X?" stories and split them.
	opt := babi.GenOptions{Stories: 600, StoryLen: 12, People: 4, Locations: 4}
	dataset := babi.Generate(babi.TaskSingleFact, opt, rand.New(rand.NewSource(11)))
	train, test := dataset.Split(0.85)
	corpus := memnn.BuildCorpus(train, test, 0)

	model, err := memnn.NewModel(memnn.Config{
		Dim:     20,
		Hops:    2,
		Vocab:   corpus.Vocab.Size(),
		Answers: len(corpus.Answers),
		MaxSent: corpus.MaxSent,
	}, rand.New(rand.NewSource(11)))
	if err != nil {
		panic(err)
	}

	topt := memnn.DefaultTrainOptions()
	topt.Epochs = 40
	if _, err := model.Train(corpus.Train, topt); err != nil {
		panic(err)
	}

	fmt.Printf("learned the task: %v\n", model.Accuracy(corpus.Test, 0) > 0.85)
	// Zero-skipping at the paper's threshold barely moves accuracy.
	s := model.EvaluateSkip(corpus.Test, 0.1)
	fmt.Printf("skipped most weighted-sum rows: %v\n", s.ComputeReduction > 0.7)
	fmt.Printf("accuracy loss under 5%%: %v\n", s.AccuracyLoss < 0.05)
	// Output:
	// learned the task: true
	// skipped most weighted-sum rows: true
	// accuracy loss under 5%: true
}
