package memnn

import (
	"fmt"

	"mnnfast/internal/tensor"
)

// Accuracy returns the fraction of examples whose argmax prediction
// matches the label, with zero-skipping at the given threshold
// (threshold 0 disables skipping — the exact baseline).
func (m *Model) Accuracy(examples []Example, threshold float32) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range examples {
		if m.PredictSkip(ex, threshold) == ex.Answer {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// SkipStats quantifies the zero-skipping tradeoff of Figure 7 on a test
// set: how much weighted-sum work is bypassed and what it costs in
// accuracy relative to the exact model.
type SkipStats struct {
	Threshold        float32
	TotalRows        int64   // weighted-sum row operations without skipping
	SkippedRows      int64   // rows bypassed at this threshold
	BaseAccuracy     float64 // exact-model accuracy
	SkipAccuracy     float64 // accuracy with skipping
	ComputeReduction float64 // SkippedRows / TotalRows
	AccuracyLoss     float64 // relative loss: (base - skip) / base
}

// EvaluateSkip measures zero-skipping at one threshold.
func (m *Model) EvaluateSkip(examples []Example, threshold float32) SkipStats {
	s := SkipStats{Threshold: threshold}
	baseCorrect, skipCorrect := 0, 0
	for _, ex := range examples {
		f := m.Apply(ex, 0)
		if f.Logits.ArgMax() == ex.Answer {
			baseCorrect++
		}
		for _, p := range f.P {
			for _, pi := range p {
				s.TotalRows++
				if pi < threshold {
					s.SkippedRows++
				}
			}
		}
		if m.PredictSkip(ex, threshold) == ex.Answer {
			skipCorrect++
		}
	}
	n := float64(len(examples))
	if n > 0 {
		s.BaseAccuracy = float64(baseCorrect) / n
		s.SkipAccuracy = float64(skipCorrect) / n
	}
	if s.TotalRows > 0 {
		s.ComputeReduction = float64(s.SkippedRows) / float64(s.TotalRows)
	}
	if s.BaseAccuracy > 0 {
		s.AccuracyLoss = (s.BaseAccuracy - s.SkipAccuracy) / s.BaseAccuracy
	}
	return s
}

// String formats the stats as one experiment row.
//
//mnnfast:coldpath
func (s SkipStats) String() string {
	return fmt.Sprintf("th=%-8g reduction=%5.1f%% acc %.3f→%.3f (loss %.2f%%)",
		s.Threshold, 100*s.ComputeReduction, s.BaseAccuracy, s.SkipAccuracy, 100*s.AccuracyLoss)
}

// AttentionMatrix collects the first-hop attention vector of up to nq
// examples into an ns×nq matrix — the data behind the paper's Figure 6
// heatmap (each column is one question's p-vector). Stories shorter
// than ns leave zero padding at the bottom of their column.
func (m *Model) AttentionMatrix(examples []Example, nq, hop int) *tensor.Matrix {
	if hop < 0 || hop >= m.Cfg.Hops {
		panic(fmt.Sprintf("memnn: hop %d out of range [0, %d)", hop, m.Cfg.Hops))
	}
	if nq > len(examples) {
		nq = len(examples)
	}
	out := tensor.NewMatrix(m.Cfg.MaxSent, nq)
	for q := 0; q < nq; q++ {
		f := m.Apply(examples[q], 0)
		for i, p := range f.P[hop] {
			out.Set(i, q, p)
		}
	}
	return out
}

// SparsitySummary summarizes how concentrated attention is — the
// quantitative reading of Figure 6.
type SparsitySummary struct {
	Questions      int
	MeanBelow01    float64 // mean fraction of p-values < 0.1
	MeanBelow001   float64 // mean fraction of p-values < 0.01
	MeanTopMass    float64 // mean attention mass of the single largest value
	MeanActiveRows float64 // mean count of p-values >= 0.1
}

// SparsityOf computes attention-sparsity statistics over the first hop
// of up to nq examples.
func (m *Model) SparsityOf(examples []Example, nq int) SparsitySummary {
	if nq > len(examples) {
		nq = len(examples)
	}
	var s SparsitySummary
	s.Questions = nq
	for q := 0; q < nq; q++ {
		f := m.Apply(examples[q], 0)
		p := f.P[0]
		var below01, below001, active int
		var top float32
		for _, pi := range p {
			if pi < 0.1 {
				below01++
			} else {
				active++
			}
			if pi < 0.01 {
				below001++
			}
			if pi > top {
				top = pi
			}
		}
		n := float64(len(p))
		s.MeanBelow01 += float64(below01) / n
		s.MeanBelow001 += float64(below001) / n
		s.MeanTopMass += float64(top)
		s.MeanActiveRows += float64(active)
	}
	if nq > 0 {
		s.MeanBelow01 /= float64(nq)
		s.MeanBelow001 /= float64(nq)
		s.MeanTopMass /= float64(nq)
		s.MeanActiveRows /= float64(nq)
	}
	return s
}
