package memnn

import (
	"math/rand"
	"testing"

	"mnnfast/internal/babi"
)

func instrumentCorpus(t *testing.T) (*Model, *Corpus) {
	t.Helper()
	opt := babi.GenOptions{Stories: 60, StoryLen: 6, People: 4, Locations: 4}
	d := babi.Generate(babi.TaskSingleFact, opt, rand.New(rand.NewSource(11)))
	train, test := d.Split(0.8)
	c := BuildCorpus(train, test, 0)
	m, err := NewModel(Config{
		Dim: 18, Hops: 2,
		Vocab:   c.Vocab.Size(),
		Answers: len(c.Answers),
		MaxSent: c.MaxSent,
	}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

// TestApplyInstrumentedMatchesApply checks that the instrumented and
// embedded-story-cached paths are bit-identical to the plain forward
// pass across examples and skip thresholds.
func TestApplyInstrumentedMatchesApply(t *testing.T) {
	m, c := instrumentCorpus(t)
	var es EmbeddedStory
	var ins Instrumentation
	for _, th := range []float32{0, 0.05, 0.5} {
		for i, ex := range c.Train[:12] {
			want := m.Apply(ex, th)
			m.EmbedStoryInto(ex, &es)
			got := m.ApplyInstrumented(ex, th, new(Forward), &es, &ins)
			if len(want.Logits) != len(got.Logits) {
				t.Fatalf("logit lengths differ")
			}
			for j := range want.Logits {
				if want.Logits[j] != got.Logits[j] {
					t.Fatalf("th=%v ex=%d logit %d: cached %v != plain %v",
						th, i, j, got.Logits[j], want.Logits[j])
				}
			}
			if want.Logits.ArgMax() != m.PredictInstrumented(ex, th, new(Forward), &es, &ins) {
				t.Fatalf("th=%v ex=%d: PredictInstrumented disagrees", th, i)
			}
		}
	}
}

// TestInstrumentationCounters checks stage times and skip counters are
// populated and consistent.
func TestInstrumentationCounters(t *testing.T) {
	m, c := instrumentCorpus(t)
	ex := c.Train[0]
	var ins Instrumentation
	m.PredictInstrumented(ex, 0, new(Forward), nil, &ins)
	if ins.EmbedNS <= 0 || ins.AttentionNS <= 0 || ins.OutputNS < 0 {
		t.Errorf("stage times not populated: %+v", ins)
	}
	wantRows := int64(len(ex.Sentences) * m.Cfg.Hops)
	if ins.TotalRows != wantRows || ins.SkippedRows != 0 {
		t.Errorf("rows = %d skipped %d, want %d skipped 0", ins.TotalRows, ins.SkippedRows, wantRows)
	}

	// An absurd threshold skips every row.
	ins.Reset()
	if ins.TotalRows != 0 {
		t.Fatal("Reset did not zero counters")
	}
	m.PredictInstrumented(ex, 2, new(Forward), nil, &ins)
	if ins.SkippedRows != wantRows {
		t.Errorf("threshold 2 skipped %d of %d rows, want all", ins.SkippedRows, ins.TotalRows)
	}

	// With a cached story, embed time covers only the question.
	var es EmbeddedStory
	m.EmbedStoryInto(ex, &es)
	var cached, plain Instrumentation
	m.PredictInstrumented(ex, 0, new(Forward), &es, &cached)
	m.PredictInstrumented(ex, 0, new(Forward), nil, &plain)
	if cached.TotalRows != plain.TotalRows {
		t.Errorf("cached path row accounting differs: %d vs %d", cached.TotalRows, plain.TotalRows)
	}
}

// TestEmbeddedStoryMismatchPanics guards against applying a stale cache
// after the story length changed.
func TestEmbeddedStoryMismatchPanics(t *testing.T) {
	m, c := instrumentCorpus(t)
	ex := c.Train[0]
	var es EmbeddedStory
	m.EmbedStoryInto(ex, &es)
	short := ex
	short.Sentences = ex.Sentences[:len(ex.Sentences)-1]
	if len(short.Sentences) == 0 {
		t.Skip("story too short for the mismatch case")
	}
	defer func() {
		if recover() == nil {
			t.Error("stale EmbeddedStory accepted")
		}
	}()
	m.ApplyInstrumented(short, 0, new(Forward), &es, nil)
}

// TestEmbedStoryIntoReuse checks grow-only buffer reuse across stories
// of different lengths.
func TestEmbedStoryIntoReuse(t *testing.T) {
	m, c := instrumentCorpus(t)
	var es EmbeddedStory
	long, short := c.Train[0], c.Train[0]
	if len(long.Sentences) < 2 {
		t.Skip("need a story of >= 2 sentences")
	}
	short.Sentences = long.Sentences[:1]

	m.EmbedStoryInto(long, &es)
	m.EmbedStoryInto(short, &es)
	if es.NS != 1 || es.MemIn[0].Rows != 1 {
		t.Errorf("shrunk cache NS=%d rows=%d, want 1", es.NS, es.MemIn[0].Rows)
	}
	m.EmbedStoryInto(long, &es)
	want := m.Apply(long, 0)
	got := m.ApplyInstrumented(long, 0, new(Forward), &es, nil)
	for j := range want.Logits {
		if want.Logits[j] != got.Logits[j] {
			t.Fatalf("after regrow, logit %d: %v != %v", j, got.Logits[j], want.Logits[j])
		}
	}
}
