package memnn

import (
	"fmt"

	"mnnfast/internal/tensor"
)

// Adaptive hop pruning (confidence-gated early exit). Most questions
// resolve before the last hop — A2P-MANN observes this on bAbI, and
// Adaptive Memory Networks argues inference cost should scale with
// question difficulty rather than worst-case hop count. The gate
// converts that observation into wall-clock savings on top of
// zero-skipping: after each hop it derives a confidence score from the
// current internal state, and when the score clears a threshold the
// remaining hops (and their attention work) are skipped, answering from
// the state already computed.
//
// Determinism contract (the hop-level analogue of the batching and
// parallelism contracts, pinned by internal/equivtest):
//
//   - Gate disabled (zero ExitPolicy): the pass is bit-identical to a
//     pass built without the gate — no gate code touches the state.
//   - Gate enabled but never firing (e.g. Threshold > 1): every hop
//     runs and the final logits are bit-identical to the ungated pass
//     at any worker count and batch composition. The gate only ever
//     writes the Logits/gate scratch, which the final output
//     projection overwrites; U, P, and O see exactly the same float32
//     operations in exactly the same order.
//   - An early exit answers with logits W·u computed by the same
//     per-row tensor.Dot as the final projection, so a query that
//     exits at hop h in a batch is bit-identical to the same query
//     exiting at hop h unbatched.

// ExitMetric selects how the gate scores confidence after a hop. Every
// metric is a pure float32 computation (no float64 detours) so gated
// passes stay within the repo's float-determinism rules.
type ExitMetric int

const (
	// ExitMargin scores the margin of the answer softmax: top-1 minus
	// top-2 probability of softmax(W·u) after the hop. In [0, 1];
	// high margin = the answer is already decided.
	ExitMargin ExitMetric = iota
	// ExitMaxProb scores the top-1 probability of the answer softmax.
	// In (0, 1].
	ExitMaxProb
	// ExitAttnMax scores the peak attention weight of the hop just
	// executed — the float32-pure stand-in for attention entropy
	// (a peaked distribution is a low-entropy one). In (0, 1] for
	// softmax attention. Cheaper than the answer metrics: no W
	// projection unless the gate actually fires.
	ExitAttnMax
	numExitMetrics
)

// String names the metric.
//
//mnnfast:coldpath
func (m ExitMetric) String() string {
	switch m {
	case ExitMargin:
		return "margin"
	case ExitMaxProb:
		return "maxprob"
	case ExitAttnMax:
		return "attnmax"
	}
	return fmt.Sprintf("metric(%d)", int(m))
}

// ParseExitMetric maps a flag value to its metric.
func ParseExitMetric(s string) (ExitMetric, error) {
	switch s {
	case "margin":
		return ExitMargin, nil
	case "maxprob":
		return ExitMaxProb, nil
	case "attnmax":
		return ExitAttnMax, nil
	}
	return 0, fmt.Errorf("memnn: unknown exit metric %q (want margin, maxprob, or attnmax)", s)
}

// ExitPolicy configures the confidence gate. The zero value disables
// it entirely (the pre-gate code path, bit for bit).
type ExitPolicy struct {
	// Metric selects the confidence score.
	Metric ExitMetric
	// Threshold arms the gate: after an eligible hop, confidence >=
	// Threshold exits early. Confidence scores live in [0, 1], so a
	// threshold above 1 (or +Inf) can never fire — useful for pinning
	// the gated-but-ran-all-hops determinism contract. Threshold <= 0
	// disables the gate. A NaN threshold never fires (every comparison
	// with NaN is false).
	Threshold float32
	// MinHops is the first hop the gate may exit after (1-based);
	// values below 1 mean 1. The gate never evaluates after the final
	// hop — there is nothing left to skip.
	MinHops int
	// Fallback, when in (0, Threshold], is the commit-to-full-path
	// floor: a confidence below it marks the question as hard, and the
	// gate stops evaluating for that question — it falls back to the
	// full hop path without paying further gate projections. Outside
	// that range it is ignored.
	Fallback float32
}

// active reports whether the gate can influence a pass over a model
// with the given hop count: it needs a positive threshold and at least
// one eligible hop before the last.
func (p ExitPolicy) active(hops int) bool {
	return p.Threshold > 0 && p.minHops() < hops
}

// Enabled reports whether the policy arms the gate at all.
func (p ExitPolicy) Enabled() bool { return p.Threshold > 0 }

// minHops normalizes MinHops.
func (p ExitPolicy) minHops() int {
	if p.MinHops < 1 {
		return 1
	}
	return p.MinHops
}

// fallback returns the commit-to-full-path floor, or 0 when disabled
// or inconsistent (a floor above the exit threshold would commit
// questions the gate was about to exit).
func (p ExitPolicy) fallback() float32 {
	if p.Fallback > 0 && p.Fallback <= p.Threshold {
		return p.Fallback
	}
	return 0
}

// Validate rejects policies that cannot be meant: unknown metrics and
// NaN thresholds. It is advisory — the forward pass accepts any policy
// and simply never exits on comparisons that cannot fire.
//
//mnnfast:coldpath
func (p ExitPolicy) Validate() error {
	if p.Metric < 0 || p.Metric >= numExitMetrics {
		return fmt.Errorf("memnn: unknown exit metric %d", int(p.Metric))
	}
	if p.Threshold != p.Threshold {
		return fmt.Errorf("memnn: exit threshold is NaN")
	}
	return nil
}

// answerConfidence scores a softmax distribution over answer classes:
// top-1 probability, or top-1 minus top-2 margin. Pure float32.
//
//mnnfast:hotpath
func answerConfidence(metric ExitMetric, probs tensor.Vector) float32 {
	var p1, p2 float32
	for _, p := range probs {
		if p > p1 {
			p1, p2 = p, p1
		} else if p > p2 {
			p2 = p
		}
	}
	if metric == ExitMaxProb {
		return p1
	}
	return p1 - p2
}

// gateConfidence evaluates the policy metric after hop k (state
// f.U[k+1], attention f.P[k]). For the answer metrics it computes the
// exit logits W·u into f.Logits — one tensor.Dot per answer row, the
// exact operation of the final output projection — and the softmax
// into the gate scratch. ExitAttnMax reads the attention peak without
// touching W. Nothing the gate writes is read by later hops.
//
//mnnfast:hotpath
func (m *Model) gateConfidence(metric ExitMetric, f *Forward, k int) float32 {
	if metric == ExitAttnMax {
		return f.P[k].Max()
	}
	f.Logits = growVec(f.Logits, m.Cfg.Answers)
	tensor.MatVec(nil, m.W, f.U[k+1], f.Logits)
	f.gateP = growVec(f.gateP, m.Cfg.Answers)
	copy(f.gateP, f.Logits)
	tensor.Softmax(f.gateP)
	return answerConfidence(metric, f.gateP)
}

// ApplyGated is ApplyInstrumented with a confidence gate: after each
// eligible hop the policy is evaluated, and a firing gate skips the
// remaining hops, leaving f.Logits = W·u of the exit state and
// f.ExitHop = the number of hops actually run. A zero policy is the
// plain instrumented pass, bit for bit.
//
//mnnfast:hotpath
func (m *Model) ApplyGated(ex Example, skipThreshold float32, policy ExitPolicy, f *Forward, es *EmbeddedStory, ins *Instrumentation) *Forward {
	return m.applyInto(ex, skipThreshold, f, es, ins, policy)
}

// PredictGated returns the argmax answer class of the gated pass; read
// f.ExitHop for the hops actually run.
//
//mnnfast:hotpath
func (m *Model) PredictGated(ex Example, skipThreshold float32, policy ExitPolicy, f *Forward, es *EmbeddedStory, ins *Instrumentation) int {
	return m.applyInto(ex, skipThreshold, f, es, ins, policy).Logits.ArgMax()
}

// ExitStats summarizes a gated evaluation sweep at one policy: how
// often the gate fired per hop, the mean hops executed, and the answer
// agreement with the full (gate-off) path — the threshold-vs-accuracy
// methodology of EXPERIMENTS.md Fig 6/7 applied to hops instead of
// attention rows.
type ExitStats struct {
	Policy     ExitPolicy
	Questions  int
	Agreement  float64 // fraction answering exactly as the full path
	MeanHops   float64 // mean hops executed under the gate
	MaxHops    int     // model hop count (the gate-off cost)
	ExitsByHop []int64 // ExitsByHop[h-1] = questions that answered after h hops
}

// EvaluateExit runs examples through the gated and the full path and
// reports agreement and hop savings. Evaluation-only (allocates).
//
//mnnfast:coldpath
func (m *Model) EvaluateExit(examples []Example, skipThreshold float32, policy ExitPolicy) ExitStats {
	st := ExitStats{
		Policy:     policy,
		Questions:  len(examples),
		MaxHops:    m.Cfg.Hops,
		ExitsByHop: make([]int64, m.Cfg.Hops),
	}
	if len(examples) == 0 {
		return st
	}
	var f, full Forward
	agree, hops := 0, 0
	for _, ex := range examples {
		gated := m.applyInto(ex, skipThreshold, &f, nil, nil, policy).Logits.ArgMax()
		want := m.ApplyInto(ex, skipThreshold, &full).Logits.ArgMax()
		if gated == want {
			agree++
		}
		hops += f.ExitHop
		st.ExitsByHop[f.ExitHop-1]++
	}
	st.Agreement = float64(agree) / float64(len(examples))
	st.MeanHops = float64(hops) / float64(len(examples))
	return st
}
