package memnn

import (
	"math/rand"
	"testing"

	"mnnfast/internal/trace"
)

// TestTracedPassBitIdentical pins the tracing determinism contract
// (Instrumentation.Ev): recording per-stage events must not change a
// single bit of the forward pass, on both the single-question and the
// batched path.
func TestTracedPassBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		c := randBatchCase(t, rng, 1+rng.Intn(6))
		n := len(c.exs)

		// Untraced batched pass.
		var bfPlain BatchForward
		plain := make([]int, n)
		c.model.PredictBatchInto(c.exs, c.th, c.stories, &bfPlain, plain)

		// Traced batched pass.
		var bfTraced BatchForward
		var ins Instrumentation
		var ev trace.Events
		ins.Ev = &ev
		traced := make([]int, n)
		c.model.PredictBatchInstrumented(c.exs, c.th, ExitPolicy{}, c.stories, &bfTraced, &ins, traced)

		for q := 0; q < n; q++ {
			if plain[q] != traced[q] {
				t.Fatalf("trial %d question %d: answer %d traced vs %d untraced", trial, q, traced[q], plain[q])
			}
			lp, lt := bfPlain.Logits(q), bfTraced.Logits(q)
			for i := range lp {
				if lp[i] != lt[i] {
					t.Fatalf("trial %d question %d logit %d: %x traced vs %x untraced",
						trial, q, i, lt[i], lp[i])
				}
			}
		}

		// The traced pass recorded the expected event shape:
		// embed-question + hops + output at minimum.
		if ev.Len() < c.model.Cfg.Hops+2 {
			t.Fatalf("trial %d: %d events, want >= %d", trial, ev.Len(), c.model.Cfg.Hops+2)
		}

		// Single-question path: traced == untraced, and per-hop events
		// appear with skip annotations.
		var f1, f2 Forward
		var ins1 Instrumentation
		var ev1 trace.Events
		ins1.Ev = &ev1
		a := c.model.PredictInstrumented(c.exs[0], c.th, &f1, c.stories[0], nil)
		b := c.model.PredictInstrumented(c.exs[0], c.th, &f2, c.stories[0], &ins1)
		if a != b {
			t.Fatalf("trial %d: single-path answer %d traced vs %d untraced", trial, b, a)
		}
		if ev1.Len() < c.model.Cfg.Hops+2 {
			t.Fatalf("trial %d: single-path events = %d, want >= %d", trial, ev1.Len(), c.model.Cfg.Hops+2)
		}
	}
}

// TestBatchEventShape checks the event tree a batched traced pass
// records: per-hop events annotated with hop index and skipped/rows
// deltas that sum to the Instrumentation totals.
func TestBatchEventShape(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	c := randBatchCase(t, rng, 4)
	var bf BatchForward
	var ins Instrumentation
	var ev trace.Events
	ins.Ev = &ev
	out := make([]int, len(c.exs))
	c.model.PredictBatchInstrumented(c.exs, c.th, ExitPolicy{}, c.stories, &bf, &ins, out)

	// Replay into a trace and walk the export.
	rec := trace.NewRecorder(trace.Options{Capacity: 1, SpanCap: trace.MaxEvents + 4, SampleEvery: 1})
	tr := rec.StartTrace("test", "")
	root := tr.Start("infer", 0)
	tr.AddEvents(root, &ev)
	tr.Finish(root)
	rec.Commit(tr)
	got := rec.Lookup(tr.ID())
	if got == nil {
		t.Fatal("trace not retained")
	}
	defer rec.Release(got)

	names := map[string]int{}
	var skipped, rows int64
	hops := map[int64]bool{}
	var walk func(spans []*trace.ExportSpan)
	walk = func(spans []*trace.ExportSpan) {
		for _, sp := range spans {
			names[sp.Name]++
			if sp.Name == "hop" {
				hops[sp.Attrs["hop"].(int64)] = true
				skipped += sp.Attrs["skipped"].(int64)
				rows += sp.Attrs["rows"].(int64)
			}
			walk(sp.Children)
		}
	}
	walk(got.Export().Spans)

	if names["embed-question"] != 1 || names["output"] != 1 {
		t.Errorf("stage events: %v", names)
	}
	if names["hop"] != c.model.Cfg.Hops {
		t.Errorf("hop events = %d, want %d", names["hop"], c.model.Cfg.Hops)
	}
	if names["worker"] == 0 {
		t.Error("no worker events recorded")
	}
	for k := 0; k < c.model.Cfg.Hops; k++ {
		if !hops[int64(k)] {
			t.Errorf("hop %d missing", k)
		}
	}
	if skipped != ins.SkippedRows || rows != ins.TotalRows {
		t.Errorf("per-hop deltas skipped=%d rows=%d, instrumentation %d/%d",
			skipped, rows, ins.SkippedRows, ins.TotalRows)
	}
}
