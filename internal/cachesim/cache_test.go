package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mnnfast/internal/memtrace"
	"mnnfast/internal/vocab"
)

func smallCache() *Cache {
	return NewCache(CacheConfig{SizeBytes: 4096, LineBytes: 64, Ways: 4})
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 1024, LineBytes: 48, Ways: 2},  // non power-of-two line
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},  // no ways
		{SizeBytes: 64, LineBytes: 64, Ways: 4},    // smaller than one set
		{SizeBytes: 1024, LineBytes: -64, Ways: 1}, // negative line
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted: %+v", i, cfg)
				}
			}()
			NewCache(cfg)
		}()
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := smallCache()
	if c.Access(0, false, false) {
		t.Error("cold access hit")
	}
	if !c.Access(0, false, false) {
		t.Error("second access missed")
	}
	if !c.Access(63, false, false) {
		t.Error("same-line access missed")
	}
	if c.Access(64, false, false) {
		t.Error("next line hit while cold")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits / 2 misses", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 4096 B / 64 B = 64 lines, 4 ways → 16 sets. Addresses that share
	// set 0: multiples of 16·64 = 1024.
	c := smallCache()
	for i := int64(0); i < 4; i++ {
		c.Access(i*1024, false, false)
	}
	// Touch line 0 to make line 1 the LRU victim.
	c.Access(0, false, false)
	c.Access(4*1024, false, false) // evicts 1024
	if !c.Access(0, false, false) {
		t.Error("recently used line was evicted")
	}
	if c.Access(1024, false, false) {
		t.Error("LRU line survived eviction")
	}
}

func TestCacheWritebacks(t *testing.T) {
	c := smallCache()
	c.Access(0, true, false) // dirty line in set 0
	for i := int64(1); i <= 4; i++ {
		c.Access(i*1024, false, false) // force eviction of the dirty line
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestCachePrefetchFills(t *testing.T) {
	c := smallCache()
	c.Access(0, false, true) // prefetch
	if c.Stats.Misses != 0 || c.Stats.PrefetchFills != 1 {
		t.Errorf("prefetch counted wrong: %+v", c.Stats)
	}
	if !c.Access(0, false, false) {
		t.Error("prefetched line missed on demand access")
	}
	if c.Stats.Hits != 1 {
		t.Errorf("demand hit after prefetch not counted: %+v", c.Stats)
	}
}

func TestCacheFlush(t *testing.T) {
	c := smallCache()
	c.Access(0, true, false)
	c.Flush()
	if c.Stats.Writebacks != 1 {
		t.Errorf("flush writebacks = %d, want 1", c.Stats.Writebacks)
	}
	if c.Access(0, false, false) {
		t.Error("line survived flush")
	}
}

func TestCacheWorkingSetBehaviour(t *testing.T) {
	// A working set that fits must have ~100% hit rate on the second
	// pass; one that is 2× capacity in a streaming loop must thrash.
	c := NewCache(CacheConfig{SizeBytes: 1 << 16, LineBytes: 64, Ways: 8})
	lines := c.Lines()
	pass := func(n int64) {
		for i := int64(0); i < n; i++ {
			c.Access(i*64, false, false)
		}
	}
	pass(lines / 2)
	c.ResetStats()
	pass(lines / 2)
	if r := c.Stats.MissRate(); r > 0.01 {
		t.Errorf("fitting working set re-pass miss rate %v", r)
	}

	c2 := NewCache(CacheConfig{SizeBytes: 1 << 16, LineBytes: 64, Ways: 8})
	big := c2.Lines() * 2
	for p := 0; p < 3; p++ {
		for i := int64(0); i < big; i++ {
			c2.Access(i*64, false, false)
		}
	}
	c2.ResetStats()
	for i := int64(0); i < big; i++ {
		c2.Access(i*64, false, false)
	}
	if r := c2.Stats.MissRate(); r < 0.9 {
		t.Errorf("streaming 2× working set miss rate %v, want ~1 (LRU thrash)", r)
	}
}

func TestQuickCacheSecondAccessAlwaysHits(t *testing.T) {
	f := func(addrs []int64) bool {
		c := smallCache()
		for _, a := range addrs {
			if a < 0 {
				a = -a
			}
			c.Access(a, false, false)
			if !c.Access(a, false, false) {
				return false // immediate re-access can never miss
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyRegionIsolation(t *testing.T) {
	h := NewHierarchy(CacheConfig{SizeBytes: 1 << 16, LineBytes: 64, Ways: 8})
	// Same offsets in different regions must not alias.
	h.Touch(memtrace.RegionMemIn, memtrace.OpRead, 0, 64)
	h.Touch(memtrace.RegionMemOut, memtrace.OpRead, 0, 64)
	if h.RegionMisses[memtrace.RegionMemIn] != 1 || h.RegionMisses[memtrace.RegionMemOut] != 1 {
		t.Errorf("region aliasing: %+v", h.RegionMisses)
	}
	h.Touch(memtrace.RegionMemIn, memtrace.OpRead, 0, 64)
	if h.RegionHits[memtrace.RegionMemIn] != 1 {
		t.Error("second access to same region line missed")
	}
}

func TestHierarchyLineExpansion(t *testing.T) {
	h := NewHierarchy(CacheConfig{SizeBytes: 1 << 16, LineBytes: 64, Ways: 8})
	h.Touch(memtrace.RegionMemIn, memtrace.OpRead, 0, 256) // 4 lines
	if got := h.RegionMisses[memtrace.RegionMemIn]; got != 4 {
		t.Errorf("256 B access produced %d line misses, want 4", got)
	}
	if h.DRAMBytes != 4*64 {
		t.Errorf("DRAMBytes = %d, want 256", h.DRAMBytes)
	}
	// Unaligned access spanning a boundary.
	h2 := NewHierarchy(CacheConfig{SizeBytes: 1 << 16, LineBytes: 64, Ways: 8})
	h2.Touch(memtrace.RegionMemIn, memtrace.OpRead, 60, 8)
	if got := h2.RegionMisses[memtrace.RegionMemIn]; got != 2 {
		t.Errorf("boundary-spanning access produced %d misses, want 2", got)
	}
}

func TestHierarchyPrefetchConvertsMissesToHits(t *testing.T) {
	h := NewHierarchy(CacheConfig{SizeBytes: 1 << 20, LineBytes: 64, Ways: 8})
	h.Touch(memtrace.RegionMemIn, memtrace.OpPrefetch, 0, 4096)
	if h.DemandMisses() != 0 {
		t.Errorf("prefetch counted as demand miss: %d", h.DemandMisses())
	}
	if h.DRAMBytes == 0 {
		t.Error("prefetch moved no DRAM bytes")
	}
	h.Touch(memtrace.RegionMemIn, memtrace.OpRead, 0, 4096)
	if h.RegionMisses[memtrace.RegionMemIn] != 0 {
		t.Errorf("demand read after prefetch missed %d lines", h.RegionMisses[memtrace.RegionMemIn])
	}
}

func TestHierarchyBypassEmbedding(t *testing.T) {
	h := NewHierarchy(CacheConfig{SizeBytes: 1 << 16, LineBytes: 64, Ways: 8})
	h.BypassEmbedding = true
	h.Touch(memtrace.RegionEmbedding, memtrace.OpRead, 0, 128)
	h.Touch(memtrace.RegionEmbedding, memtrace.OpRead, 0, 128)
	if h.LLC.Stats.Accesses() != 0 {
		t.Error("bypassed embedding traffic reached the LLC")
	}
	if h.BypassDRAM != 2 {
		t.Errorf("BypassDRAM = %d, want 2 (every access goes to DRAM)", h.BypassDRAM)
	}
}

func TestHierarchyEmbeddingCacheIntercepts(t *testing.T) {
	h := NewHierarchy(CacheConfig{SizeBytes: 1 << 16, LineBytes: 64, Ways: 8})
	ed := 16
	h.EmbCache = NewEmbeddingCache(1<<12, ed)
	vecBytes := 4 * ed
	h.Touch(memtrace.RegionEmbedding, memtrace.OpRead, 0, vecBytes)               // miss
	h.Touch(memtrace.RegionEmbedding, memtrace.OpRead, 0, vecBytes)               // hit
	h.Touch(memtrace.RegionEmbedding, memtrace.OpRead, int64(vecBytes), vecBytes) // word 1, miss
	if h.EmbCache.Hits != 1 || h.EmbCache.Misses != 2 {
		t.Errorf("embedding cache stats %d/%d, want 1 hit / 2 misses", h.EmbCache.Hits, h.EmbCache.Misses)
	}
	if h.LLC.Stats.Accesses() != 0 {
		t.Error("embedding traffic leaked into the LLC despite the dedicated cache")
	}
	if h.DRAMBytes != int64(2*vecBytes) {
		t.Errorf("DRAMBytes = %d, want %d (two vector fills)", h.DRAMBytes, 2*vecBytes)
	}
}

func TestEmbeddingCacheBasics(t *testing.T) {
	e := NewEmbeddingCache(1024, 16) // 64 B/vector → 16 entries
	if e.Entries() != 16 {
		t.Fatalf("Entries = %d, want 16", e.Entries())
	}
	if e.Lookup(3) {
		t.Error("cold lookup hit")
	}
	if !e.Lookup(3) {
		t.Error("warm lookup missed")
	}
	// Word 19 maps to the same slot as 3 (19 mod 16) — conflict.
	if e.Lookup(19) {
		t.Error("conflicting word hit")
	}
	if e.Lookup(3) {
		t.Error("evicted word hit")
	}
	if e.HitRate() >= 1 || e.HitRate() <= 0 {
		t.Errorf("hit rate = %v", e.HitRate())
	}
	e.Reset()
	if e.Hits != 0 || e.Misses != 0 || e.Lookup(3) {
		t.Error("Reset did not clear the cache")
	}
}

func TestEmbeddingCacheInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized embedding cache accepted")
		}
	}()
	NewEmbeddingCache(8, 16)
}

func TestEmbeddingCacheZipfHitRateTracksTopMass(t *testing.T) {
	// Under a Zipf stream, a k-entry direct-mapped cache's hit rate
	// approaches (but stays below) the top-k probability mass; it must
	// grow with cache size.
	m := vocab.NewZipfModel(10000, 1.0)
	rng := rand.New(rand.NewSource(21))
	stream := m.Stream(rng, 100000)
	var prev float64
	for _, entries := range []int{64, 256, 1024} {
		e := NewEmbeddingCache(int64(entries)*4*16, 16)
		for _, w := range stream {
			e.Lookup(w)
		}
		hr := e.HitRate()
		if hr <= prev {
			t.Errorf("hit rate not increasing with size: %v after %v", hr, prev)
		}
		prev = hr
	}
	if prev < 0.5 {
		t.Errorf("1024-entry cache hit rate %v too low for Zipf(1.0) — word locality should dominate", prev)
	}
}

func TestTraceRecordReplay(t *testing.T) {
	var tr Trace
	tr.Touch(memtrace.RegionMemIn, memtrace.OpRead, 0, 64)
	tr.Touch(memtrace.RegionTempIn, memtrace.OpWrite, 4, 4)
	if len(tr.Accesses) != 2 || tr.Bytes() != 68 {
		t.Fatalf("trace recorded %d accesses / %d bytes", len(tr.Accesses), tr.Bytes())
	}
	var c memtrace.Counter
	tr.Replay(&c)
	if c.TotalBytes() != 68 {
		t.Errorf("replay delivered %d bytes", c.TotalBytes())
	}
}

func TestReplayInterleavedRoundRobin(t *testing.T) {
	a := &Trace{}
	b := &Trace{}
	a.Touch(memtrace.RegionMemIn, memtrace.OpRead, 0, 1)
	a.Touch(memtrace.RegionMemIn, memtrace.OpRead, 1, 1)
	b.Touch(memtrace.RegionMemOut, memtrace.OpRead, 0, 1)
	var got Trace
	ReplayInterleaved(&got, a, b)
	if len(got.Accesses) != 3 {
		t.Fatalf("interleaved %d accesses, want 3", len(got.Accesses))
	}
	wantRegions := []memtrace.Region{memtrace.RegionMemIn, memtrace.RegionMemOut, memtrace.RegionMemIn}
	for i, w := range wantRegions {
		if got.Accesses[i].Region != w {
			t.Errorf("access %d region = %v, want %v", i, got.Accesses[i].Region, w)
		}
	}
}

func TestInterleavedContentionRaisesMissRate(t *testing.T) {
	// The heart of the Fig 4 reproduction: an inference stream whose
	// working set fits in the LLC suffers once embedding streams share
	// the cache.
	llc := CacheConfig{SizeBytes: 1 << 16, LineBytes: 64, Ways: 8}

	inference := &Trace{}
	lines := (llc.SizeBytes / 64) / 2
	for pass := 0; pass < 4; pass++ {
		for i := int64(0); i < lines; i++ {
			inference.Touch(memtrace.RegionMemIn, memtrace.OpRead, i*64, 64)
		}
	}

	alone := NewHierarchy(llc)
	inference.Replay(alone)
	aloneMR := alone.MissRateOf(memtrace.RegionMemIn)

	embedding := &Trace{}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < len(inference.Accesses); i++ {
		embedding.Touch(memtrace.RegionEmbedding, memtrace.OpRead, rng.Int63n(64<<20), 64)
	}
	shared := NewHierarchy(llc)
	ReplayInterleaved(shared, inference, embedding)
	sharedMR := shared.MissRateOf(memtrace.RegionMemIn)

	if sharedMR <= aloneMR {
		t.Errorf("co-run inference miss rate %v not worse than alone %v", sharedMR, aloneMR)
	}
}

func TestEmbeddingCacheAssocReducesConflicts(t *testing.T) {
	// Words 3 and 19 conflict in a 16-entry direct-mapped cache but
	// coexist in a 2-way set (16 entries → 8 sets; 3 and 19 share set
	// 3 mod 8 == 19 mod 8).
	e := NewEmbeddingCacheAssoc(1024, 16, 2)
	if e.Ways() != 2 || e.Entries() != 16 {
		t.Fatalf("geometry: %d ways × %d entries", e.Ways(), e.Entries())
	}
	e.Lookup(3)
	e.Lookup(19)
	if !e.Lookup(3) || !e.Lookup(19) {
		t.Error("2-way cache evicted a coexisting pair")
	}
	// A third conflicting word evicts the LRU: after the hits above the
	// access order is 3 then 19, so 3 is the victim. Probe the MRU
	// entry first — a probe of the victim would reinstall it and evict
	// 19 in turn.
	e.Lookup(35)
	if !e.Lookup(19) {
		t.Error("MRU entry (19) was evicted instead of LRU")
	}
	if e.Lookup(3) {
		t.Error("LRU victim (3) survived")
	}
}

func TestEmbeddingCacheAssocInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ways=0 accepted")
		}
	}()
	NewEmbeddingCacheAssoc(1024, 16, 0)
}

func TestEmbeddingCacheAssocApproachesTopMass(t *testing.T) {
	// With high associativity the hit rate under a Zipf stream should
	// approach (and not exceed) the top-k probability mass, closing the
	// conflict-miss gap the direct-mapped design pays.
	m := vocab.NewZipfModel(10000, 1.0)
	rng := rand.New(rand.NewSource(33))
	stream := m.Stream(rng, 150000)
	const entries = 256
	run := func(ways int) float64 {
		e := NewEmbeddingCacheAssoc(int64(entries)*4*16, 16, ways)
		for _, w := range stream {
			e.Lookup(w)
		}
		return e.HitRate()
	}
	direct := run(1)
	assoc := run(16)
	if assoc <= direct {
		t.Errorf("16-way hit rate %v not above direct-mapped %v", assoc, direct)
	}
	bound := m.TopMass(entries)
	if assoc > bound+0.02 {
		t.Errorf("16-way hit rate %v exceeds the top-%d mass bound %v", assoc, entries, bound)
	}
	// LRU under an i.i.d. stream stays somewhat below the static-top-k
	// bound (cold words churn entries); allow that gap.
	if bound-assoc > 0.16 {
		t.Errorf("16-way hit rate %v too far below the bound %v", assoc, bound)
	}
}

func TestOnDRAMHookAccountsAllTraffic(t *testing.T) {
	h := NewHierarchy(CacheConfig{SizeBytes: 1 << 16, LineBytes: 64, Ways: 8})
	var hooked int64
	h.OnDRAM = func(addr int64, bytes int) { hooked += int64(bytes) }
	h.Touch(memtrace.RegionMemIn, memtrace.OpRead, 0, 4096)      // 64 demand fills
	h.Touch(memtrace.RegionMemOut, memtrace.OpPrefetch, 0, 2048) // 32 prefetch fills
	h.Touch(memtrace.RegionMemIn, memtrace.OpRead, 0, 4096)      // hits: no DRAM
	if hooked != 4096+2048 {
		t.Errorf("hook saw %d bytes, want %d", hooked, 4096+2048)
	}
	// Writeback victim bytes are accounted in DRAMBytes but not the
	// hook (their addresses are unknown), so DRAMBytes >= hooked.
	if h.DRAMBytes < hooked {
		t.Errorf("DRAMBytes %d < hooked %d", h.DRAMBytes, hooked)
	}
	// Bypass and embedding-cache paths must hit the hook too.
	h2 := NewHierarchy(CacheConfig{SizeBytes: 1 << 16, LineBytes: 64, Ways: 8})
	h2.BypassEmbedding = true
	var bypassed int64
	h2.OnDRAM = func(addr int64, bytes int) { bypassed += int64(bytes) }
	h2.Touch(memtrace.RegionEmbedding, memtrace.OpRead, 0, 256)
	if bypassed != 256 {
		t.Errorf("bypass hook saw %d bytes, want 256", bypassed)
	}
}
