// Package cachesim models the memory hierarchy the MnnFast paper
// measures with hardware counters: a set-associative shared last-level
// cache, a region-aware hierarchy that replays engine access traces,
// the paper's direct-mapped embedding cache (§3.3), and trace
// record/replay utilities for the multi-tenant contention experiments
// (Fig 4).
//
// The simulator is trace-driven: engines report logical accesses
// through memtrace.Toucher, the hierarchy maps each region into a
// disjoint address space, expands accesses to cache lines, and runs
// them through the LLC. Demand misses and writebacks are the modelled
// off-chip DRAM accesses — the quantity Figure 11 reports.
package cachesim

import (
	"fmt"

	"mnnfast/internal/memtrace"
)

// CacheConfig sizes a set-associative cache.
type CacheConfig struct {
	SizeBytes int64
	LineBytes int
	Ways      int
}

// DefaultLLC is a 20 MB, 20-way, 64 B-line cache — the class of shared
// LLC in the paper's Xeon testbed (§2.2.1 cites 8–40 MB on-chip caches).
func DefaultLLC() CacheConfig {
	return CacheConfig{SizeBytes: 20 << 20, LineBytes: 64, Ways: 20}
}

func (c CacheConfig) validate() error {
	switch {
	case c.LineBytes < 1 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cachesim: line size %d not a positive power of two", c.LineBytes)
	case c.Ways < 1:
		return fmt.Errorf("cachesim: %d ways", c.Ways)
	case c.SizeBytes < int64(c.LineBytes)*int64(c.Ways):
		return fmt.Errorf("cachesim: size %d below one set (%d ways × %d B lines)", c.SizeBytes, c.Ways, c.LineBytes)
	}
	return nil
}

// CacheStats counts cache events.
type CacheStats struct {
	Hits          int64
	Misses        int64 // demand misses (reads + writes)
	PrefetchFills int64 // lines installed by prefetch (not demand misses)
	Writebacks    int64 // dirty evictions
}

// Accesses returns demand accesses (hits + misses).
func (s CacheStats) Accesses() int64 { return s.Hits + s.Misses }

// MissRate returns demand misses / demand accesses.
func (s CacheStats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

type line struct {
	tag   int64
	valid bool
	dirty bool
	lru   uint64 // last-touch tick; smaller = older
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement.
type Cache struct {
	cfg       CacheConfig
	sets      [][]line
	setMask   int64
	lineShift uint
	tick      uint64
	Stats     CacheStats
}

// NewCache builds a cache; invalid configurations panic because they
// are experiment bugs, not runtime conditions.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	numLines := cfg.SizeBytes / int64(cfg.LineBytes)
	numSets := numLines / int64(cfg.Ways)
	// Round sets down to a power of two for mask indexing.
	p := int64(1)
	for p*2 <= numSets {
		p *= 2
	}
	numSets = p
	c := &Cache{cfg: cfg, setMask: numSets - 1}
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.lineShift++
	}
	c.sets = make([][]line, numSets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Lines returns the total line capacity.
func (c *Cache) Lines() int64 { return int64(len(c.sets)) * int64(c.cfg.Ways) }

// Access runs one line-granular access. write marks the line dirty;
// prefetch installs the line without counting a demand hit or miss.
// It returns whether the line was present.
func (c *Cache) Access(addr int64, write, prefetch bool) bool {
	c.tick++
	lineAddr := addr >> c.lineShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> uint(trailingBits(c.setMask+1))

	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			if write {
				set[i].dirty = true
			}
			if !prefetch {
				c.Stats.Hits++
			}
			return true
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	// Miss: fill into the victim way.
	if set[victim].valid && set[victim].dirty {
		c.Stats.Writebacks++
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	if prefetch {
		c.Stats.PrefetchFills++
	} else {
		c.Stats.Misses++
	}
	return false
}

// Flush invalidates all lines, counting writebacks for dirty ones.
func (c *Cache) Flush() {
	for i := range c.sets {
		for j := range c.sets[i] {
			if c.sets[i][j].valid && c.sets[i][j].dirty {
				c.Stats.Writebacks++
			}
			c.sets[i][j] = line{}
		}
	}
}

// ResetStats clears counters without touching contents.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }

func trailingBits(x int64) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// Hierarchy is a memtrace.Toucher that maps each logical region into a
// disjoint address range and drives a shared LLC. Demand misses and
// writebacks model off-chip DRAM accesses.
type Hierarchy struct {
	LLC *Cache
	// BypassEmbedding models non-temporal embedding accesses (§3.3's
	// cache-bypassing alternative): embedding-region accesses skip the
	// LLC and count directly as DRAM traffic.
	BypassEmbedding bool
	// EmbCache, when non-nil, intercepts embedding-region accesses
	// before the LLC — the paper's dedicated embedding cache.
	EmbCache *EmbeddingCache
	// OnDRAM, when non-nil, receives every line the hierarchy sends to
	// DRAM (demand fills, prefetch fills, bypasses) with its mapped
	// global address — the hook the DRAM row-buffer model consumes.
	OnDRAM func(addr int64, bytes int)

	// Per-region demand statistics.
	RegionHits   [memtrace.NumRegions]int64
	RegionMisses [memtrace.NumRegions]int64
	DRAMBytes    int64 // bytes moved to/from DRAM (misses, writebacks, fills, bypasses)
	BypassDRAM   int64 // demand DRAM accesses from bypassed embedding traffic
}

// NewHierarchy builds a hierarchy around an LLC configuration.
func NewHierarchy(cfg CacheConfig) *Hierarchy {
	return &Hierarchy{LLC: NewCache(cfg)}
}

// regionBase gives every region a disjoint 1 TiB-aligned address range
// so traces from different structures can never alias.
func regionBase(r memtrace.Region) int64 { return (int64(r) + 1) << 40 }

// Touch implements memtrace.Toucher.
func (h *Hierarchy) Touch(region memtrace.Region, op memtrace.Op, offset int64, bytes int) {
	if bytes <= 0 {
		return
	}
	if region == memtrace.RegionEmbedding {
		if h.EmbCache != nil {
			// Word-granular dedicated cache: one lookup per access.
			if h.EmbCache.LookupOffset(offset) {
				return
			}
			h.toDRAM(regionBase(region)+offset, bytes)
			return
		}
		if h.BypassEmbedding {
			h.BypassDRAM++
			h.toDRAM(regionBase(region)+offset, bytes)
			return
		}
	}
	lb := int64(h.LLC.cfg.LineBytes)
	base := regionBase(region) + offset
	end := base + int64(bytes)
	prefetch := op == memtrace.OpPrefetch
	write := op == memtrace.OpWrite
	for addr := base &^ (lb - 1); addr < end; addr += lb {
		wbBefore := h.LLC.Stats.Writebacks
		hit := h.LLC.Access(addr, write, prefetch)
		if h.LLC.Stats.Writebacks > wbBefore {
			h.DRAMBytes += lb // victim address unknown; bytes-only accounting
		}
		if hit {
			if !prefetch {
				h.RegionHits[region]++
			}
			continue
		}
		h.toDRAM(addr, int(lb))
		if !prefetch {
			h.RegionMisses[region]++
		}
	}
}

// toDRAM accounts a DRAM transfer and forwards it to the row-buffer
// hook.
func (h *Hierarchy) toDRAM(addr int64, bytes int) {
	h.DRAMBytes += int64(bytes)
	if h.OnDRAM != nil {
		h.OnDRAM(addr, bytes)
	}
}

// DemandMisses returns total demand misses across regions.
func (h *Hierarchy) DemandMisses() int64 {
	var t int64
	for _, m := range h.RegionMisses {
		t += m
	}
	return t + h.BypassDRAM
}

// DemandAccesses returns total demand accesses across regions.
func (h *Hierarchy) DemandAccesses() int64 {
	var t int64
	for r := range h.RegionMisses {
		t += h.RegionMisses[r] + h.RegionHits[r]
	}
	return t + h.BypassDRAM
}

// MissRateOf returns the demand miss rate of one region.
func (h *Hierarchy) MissRateOf(r memtrace.Region) float64 {
	total := h.RegionHits[r] + h.RegionMisses[r]
	if total == 0 {
		return 0
	}
	return float64(h.RegionMisses[r]) / float64(total)
}
