package cachesim

import "mnnfast/internal/memtrace"

// Access is one recorded logical memory access.
type Access struct {
	Region memtrace.Region
	Op     memtrace.Op
	Offset int64
	Bytes  int
}

// Trace records accesses for later replay. It implements
// memtrace.Toucher; engines run once with a Trace attached, and the
// recorded stream can then be replayed against any hierarchy
// configuration — alone or interleaved with other tenants.
type Trace struct {
	Accesses []Access
}

// Touch implements memtrace.Toucher.
func (t *Trace) Touch(region memtrace.Region, op memtrace.Op, offset int64, bytes int) {
	t.Accesses = append(t.Accesses, Access{Region: region, Op: op, Offset: offset, Bytes: bytes})
}

// Bytes returns the total traffic recorded.
func (t *Trace) Bytes() int64 {
	var n int64
	for _, a := range t.Accesses {
		n += int64(a.Bytes)
	}
	return n
}

// Replay feeds the trace to a toucher in order.
func (t *Trace) Replay(dst memtrace.Toucher) {
	for _, a := range t.Accesses {
		dst.Touch(a.Region, a.Op, a.Offset, a.Bytes)
	}
}

// ReplayInterleaved round-robins one access at a time across the
// traces into dst until all are drained — the multi-tenant co-execution
// of the paper's Figure 4, where embedding threads and inference
// threads contend for one shared cache.
func ReplayInterleaved(dst memtrace.Toucher, traces ...*Trace) {
	idx := make([]int, len(traces))
	for {
		done := true
		for i, tr := range traces {
			if idx[i] < len(tr.Accesses) {
				a := tr.Accesses[idx[i]]
				dst.Touch(a.Region, a.Op, a.Offset, a.Bytes)
				idx[i]++
				done = false
			}
		}
		if done {
			return
		}
	}
}
