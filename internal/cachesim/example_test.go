package cachesim_test

import (
	"fmt"

	"mnnfast/internal/cachesim"
	"mnnfast/internal/memtrace"
)

// ExampleEmbeddingCache shows the paper's dedicated embedding cache
// (§3.3): word-keyed, whole-vector entries.
func ExampleEmbeddingCache() {
	ec := cachesim.NewEmbeddingCache(32<<10, 256) // 32 KB of ed=256 vectors
	fmt.Println("entries:", ec.Entries())
	ec.Lookup(7) // cold
	ec.Lookup(7) // warm
	fmt.Println("hits:", ec.Hits, "misses:", ec.Misses)
	// Output:
	// entries: 32
	// hits: 1 misses: 1
}

// ExampleHierarchy shows tracing an access through the simulated shared
// LLC: the first touch misses to DRAM, the second hits on chip.
func ExampleHierarchy() {
	h := cachesim.NewHierarchy(cachesim.DefaultLLC())
	h.Touch(memtrace.RegionMemIn, memtrace.OpRead, 0, 64)
	h.Touch(memtrace.RegionMemIn, memtrace.OpRead, 0, 64)
	fmt.Println("demand misses:", h.DemandMisses())
	fmt.Println("DRAM bytes:", h.DRAMBytes)
	// Output:
	// demand misses: 1
	// DRAM bytes: 64
}
