package cachesim

import "fmt"

// EmbeddingCache is the paper's dedicated embedding cache (§3.3): a
// cache whose entries are (valid bit, word ID, state vector of ed
// floats). Because the word size of the cache equals the embedding
// dimension, each lookup either supplies the entire vector or fetches
// it whole from DRAM. The paper's design is direct-mapped
// (NewEmbeddingCache); NewEmbeddingCacheAssoc adds set associativity
// with LRU replacement as a design-space extension — with enough ways
// the hit rate approaches the top-k word-frequency mass, the
// fully-associative bound the Fig 14 experiment reports.
type EmbeddingCache struct {
	dim    int
	ways   int
	sets   [][]embEntry
	tick   uint64
	Hits   int64
	Misses int64
}

type embEntry struct {
	valid bool
	word  int
	lru   uint64
}

// NewEmbeddingCache builds the paper's direct-mapped cache of sizeBytes
// capacity for vectors of dimension ed. Entry payload is 4·ed bytes
// (float32); the valid bit and word-ID tag are modelled as metadata
// outside the data budget, matching how the paper reports cache sizes
// (32 KB … 256 KB of vector storage).
func NewEmbeddingCache(sizeBytes int64, ed int) *EmbeddingCache {
	return NewEmbeddingCacheAssoc(sizeBytes, ed, 1)
}

// NewEmbeddingCacheAssoc builds a ways-associative embedding cache with
// LRU replacement. ways must divide the entry count it implies.
func NewEmbeddingCacheAssoc(sizeBytes int64, ed, ways int) *EmbeddingCache {
	if ed < 1 {
		panic(fmt.Sprintf("cachesim: embedding dim %d", ed))
	}
	if ways < 1 {
		panic(fmt.Sprintf("cachesim: %d ways", ways))
	}
	entrySize := int64(4 * ed)
	n := int(sizeBytes / entrySize)
	if n < ways {
		panic(fmt.Sprintf("cachesim: embedding cache of %d B cannot hold %d ways of %d B vectors", sizeBytes, ways, entrySize))
	}
	numSets := n / ways
	e := &EmbeddingCache{dim: ed, ways: ways, sets: make([][]embEntry, numSets)}
	for i := range e.sets {
		e.sets[i] = make([]embEntry, ways)
	}
	return e
}

// Entries returns the entry count.
func (e *EmbeddingCache) Entries() int { return len(e.sets) * e.ways }

// Ways returns the associativity.
func (e *EmbeddingCache) Ways() int { return e.ways }

// Lookup checks for word and installs it on miss (index = word mod
// sets, LRU within the set). It returns true on hit.
func (e *EmbeddingCache) Lookup(word int) bool {
	if word < 0 {
		panic(fmt.Sprintf("cachesim: negative word ID %d", word))
	}
	e.tick++
	set := e.sets[word%len(e.sets)]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].word == word {
			set[i].lru = e.tick
			e.Hits++
			return true
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = embEntry{valid: true, word: word, lru: e.tick}
	e.Misses++
	return false
}

// LookupOffset adapts a byte offset within the embedding region (as
// reported by embed.Table lookups: word·ed·4) to a word-ID lookup.
func (e *EmbeddingCache) LookupOffset(offset int64) bool {
	return e.Lookup(int(offset / int64(4*e.dim)))
}

// HitRate returns hits / (hits + misses).
func (e *EmbeddingCache) HitRate() float64 {
	total := e.Hits + e.Misses
	if total == 0 {
		return 0
	}
	return float64(e.Hits) / float64(total)
}

// Reset clears contents and counters.
func (e *EmbeddingCache) Reset() {
	for i := range e.sets {
		for j := range e.sets[i] {
			e.sets[i][j] = embEntry{}
		}
	}
	e.Hits, e.Misses = 0, 0
	e.tick = 0
}
