package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Options zero values.
const (
	DefaultCapacity    = 128 // retained traces in the ring
	DefaultSpanCap     = 192 // spans per trace
	DefaultSampleEvery = 16  // keep 1 in N unremarkable traces
	DefaultSlowFactor  = 2   // keep traces slower than factor × moving mean
)

// Options shapes a Recorder.
type Options struct {
	// Capacity is the ring size: the number of most-recently-retained
	// traces readable via Index/Lookup. 0 → DefaultCapacity.
	Capacity int
	// SpanCap is the per-trace span buffer size. Spans beyond it are
	// dropped (counted). 0 → DefaultSpanCap.
	SpanCap int
	// SampleEvery keeps 1 in N traces that are neither errored nor
	// slow. 1 keeps everything; 0 → DefaultSampleEvery.
	SampleEvery int
	// SlowFactor retains any trace slower than SlowFactor times the
	// moving mean latency (per-recorder EWMA). 0 → DefaultSlowFactor.
	SlowFactor int
}

func (o *Options) normalize() {
	if o.Capacity <= 0 {
		o.Capacity = DefaultCapacity
	}
	if o.SpanCap <= 0 {
		o.SpanCap = DefaultSpanCap
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = DefaultSampleEvery
	}
	if o.SlowFactor <= 0 {
		o.SlowFactor = DefaultSlowFactor
	}
}

// Stats is a point-in-time recorder counter snapshot.
type Stats struct {
	Started     int64 // traces handed out
	Committed   int64 // traces completed
	Retained    int64 // traces written to the ring
	KeptErr     int64 // retained by the error rule
	KeptSlow    int64 // retained by the slow-tail rule
	KeptSampled int64 // retained by sampling
	EWMANS      int64 // moving mean request latency, ns
}

// Recorder is the in-memory flight recorder: a lock-free ring of the
// last Capacity retained traces.
//
// Lifecycle and memory safety are refcount-based:
//
//   - StartTrace pulls a *Trace from the pool and sets refs=1 (the
//     writer's reference). No reader can resurrect a pooled trace:
//     readers only pin via a CAS that refuses to move refs off 0.
//   - Commit either releases the writer's reference (not retained) or
//     transfers it to the ring slot via atomic.Pointer.Swap; the
//     displaced previous occupant is released. A release that drops
//     refs to 0 returns the trace to the pool.
//   - Readers (Index, Lookup, ForEach) pin a trace with
//     CAS(refs, r, r+1) for r ≥ 1, then re-check the slot still holds
//     it — a failed re-check means the trace was displaced and maybe
//     recycled between the slot load and the pin, so the pin is
//     released and the slot retried. Pinned traces are immutable.
//
// Every transition is an atomic on the same variables, so the scheme
// is race-detector-clean by construction, not just logically sound.
type Recorder struct {
	opt   Options
	slots []atomic.Pointer[Trace]
	head  atomic.Uint64 // commit sequence; slot = (seq-1) % len
	pool  sync.Pool

	ewmaNS    atomic.Int64 // moving mean latency (ns), α = 1/8
	sampleSeq atomic.Uint64

	started     atomic.Int64
	committed   atomic.Int64
	retained    atomic.Int64
	keptErr     atomic.Int64
	keptSlow    atomic.Int64
	keptSampled atomic.Int64
}

// NewRecorder builds a flight recorder. The zero Options value gives
// the defaults above.
func NewRecorder(opt Options) *Recorder {
	opt.normalize()
	r := &Recorder{opt: opt, slots: make([]atomic.Pointer[Trace], opt.Capacity)}
	spanCap := opt.SpanCap
	r.pool.New = func() any { return &Trace{spans: make([]Span, spanCap)} }
	return r
}

// Options returns the normalized options the recorder runs with.
func (r *Recorder) Options() Options { return r.opt }

// StartTrace begins a trace for one request. Zero allocs steady-state
// (the pool is warm after Capacity+concurrency traces). Nil-receiver
// safe: returns a nil *Trace whose methods are all no-ops.
//
//mnnfast:hotpath
//mnnfast:pool-get
func (r *Recorder) StartTrace(handler, reqID string) *Trace {
	if r == nil {
		return nil
	}
	tr := r.pool.Get().(*Trace)
	tr.reset()
	tr.refs.Store(1) // writer's reference; safe — refs was 0, no reader can pin
	tr.idHi, tr.idLo = newID()
	tr.handler = handler
	tr.reqID = reqID
	tr.wall = time.Now()
	tr.startNS = Now()
	r.started.Add(1)
	return tr
}

// Commit completes the trace, applies the tail-based retention policy,
// and publishes retained traces to the ring. The trace must not be
// touched by the writer afterwards. Reports whether it was retained.
//
// Retention: always keep errored traces; keep traces slower than
// SlowFactor × the moving mean latency; keep 1 in SampleEvery of the
// rest. The moving mean is an integer EWMA (α=1/8) updated on every
// commit — racy read-modify-write by design, lost updates only blur an
// already-approximate threshold.
//
//mnnfast:hotpath
func (r *Recorder) Commit(tr *Trace) bool {
	if r == nil || tr == nil {
		return false
	}
	tr.endNS = Now()
	dur := tr.endNS - tr.startNS
	old := r.ewmaNS.Load()
	if old == 0 {
		r.ewmaNS.Store(dur)
	} else {
		r.ewmaNS.Store(old + (dur-old)/8)
	}
	r.committed.Add(1)

	keep := false
	switch {
	case tr.err:
		keep = true
		r.keptErr.Add(1)
	case old > 0 && dur > int64(r.opt.SlowFactor)*old:
		keep = true
		tr.slow = true
		r.keptSlow.Add(1)
	default:
		// %N == 1 so the very first trace is kept — demo- and
		// test-friendly warmup behavior.
		if r.sampleSeq.Add(1)%uint64(r.opt.SampleEvery) == 1%uint64(r.opt.SampleEvery) {
			keep = true
			r.keptSampled.Add(1)
		}
	}
	if !keep {
		r.release(tr)
		return false
	}

	tr.seq = r.head.Add(1)
	slot := &r.slots[(tr.seq-1)%uint64(len(r.slots))]
	if old := slot.Swap(tr); old != nil {
		r.release(old)
	}
	r.retained.Add(1)
	return true
}

// Discard abandons a started trace without retention consideration.
//
//mnnfast:hotpath
func (r *Recorder) Discard(tr *Trace) {
	if r == nil || tr == nil {
		return
	}
	r.release(tr)
}

// release drops one reference; the last reference returns the trace to
// the pool.
//
//mnnfast:hotpath
//mnnfast:pool-put
func (r *Recorder) release(tr *Trace) {
	if tr.refs.Add(-1) == 0 {
		r.pool.Put(tr)
	}
}

// Release unpins a trace obtained from Lookup or ForEach.
func (r *Recorder) Release(tr *Trace) {
	if r == nil || tr == nil {
		return
	}
	r.release(tr)
}

// acquire pins the trace in slot i, or returns nil if the slot is
// empty or too contended to pin within a few attempts.
func (r *Recorder) acquire(i int) *Trace {
	slot := &r.slots[i]
	for attempt := 0; attempt < 8; attempt++ {
		tr := slot.Load()
		if tr == nil {
			return nil
		}
		refs := tr.refs.Load()
		for refs >= 1 {
			if tr.refs.CompareAndSwap(refs, refs+1) {
				if slot.Load() == tr {
					return tr
				}
				// Displaced (and possibly recycled) between the slot
				// load and the pin; the pin kept it alive, so the
				// release below cannot double-free.
				r.release(tr)
				refs = 0 // break to re-read the slot
				break
			}
			refs = tr.refs.Load()
		}
		// refs hit 0: the trace was displaced and retired after our
		// slot load. Loop to re-read the slot.
	}
	return nil
}

// ForEach pins each retained trace in turn and calls fn. The trace is
// valid only for the duration of the call. Order is unspecified; use
// Seq from summaries to sort. Cold path.
func (r *Recorder) ForEach(fn func(*Trace)) {
	if r == nil {
		return
	}
	for i := range r.slots {
		if tr := r.acquire(i); tr != nil {
			fn(tr)
			r.release(tr)
		}
	}
}

// Lookup pins the retained trace whose ID matches id — either the full
// 32-hex-digit form or the low 16 hex digits. The caller must Release
// it. Cold path.
func (r *Recorder) Lookup(id string) *Trace {
	if r == nil {
		return nil
	}
	var hi, lo uint64
	var ok bool
	switch len(id) {
	case 32:
		hi, ok = parseHex(id[:16])
		if !ok {
			return nil
		}
		lo, ok = parseHex(id[16:])
	case 16:
		lo, ok = parseHex(id)
	default:
		return nil
	}
	if !ok {
		return nil
	}
	for i := range r.slots {
		tr := r.acquire(i)
		if tr == nil {
			continue
		}
		if tr.idLo == lo && (len(id) == 16 || tr.idHi == hi) {
			return tr
		}
		r.release(tr)
	}
	return nil
}

// Stats snapshots the recorder counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	return Stats{
		Started:     r.started.Load(),
		Committed:   r.committed.Load(),
		Retained:    r.retained.Load(),
		KeptErr:     r.keptErr.Load(),
		KeptSlow:    r.keptSlow.Load(),
		KeptSampled: r.keptSampled.Load(),
		EWMANS:      r.ewmaNS.Load(),
	}
}
