//go:build race

package trace

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool.Put intentionally drops items at random to expose unsafe
// reuse, so steady-state allocation counts are not meaningful.
const raceEnabled = true
