package trace

import "sync/atomic"

// MaxEvents bounds one Events buffer. Sizing: a batched inference with
// H hops and W scheduler workers records 2 + H×(1+W) events; at the
// supported maxima (8 hops, 16 workers) that is 138 — callers with
// deeper shapes lose tail events, counted in Dropped.
const MaxEvents = 160

// Event is one timed operation captured outside a specific trace.
// Parent is the index of another event in the same buffer, or -1 to
// attach to the span AddEvents is given.
type Event struct {
	Name    string
	Parent  int32
	StartNS int64
	EndNS   int64
	NAttr   int32
	Attrs   [MaxAttrs]Attr
}

// Events is a fixed-capacity concurrent event log. Slots are claimed
// with an atomic counter; each claimed slot has a single writer, so
// concurrent scheduler workers can record events without locks. The
// buffer's owner must establish a happens-before edge (e.g. the
// scheduler's join) before reading or copying events.
//
// All methods are nil-receiver safe; a nil *Events disables recording
// at one branch per call site.
type Events struct {
	n       atomic.Int32
	dropped atomic.Int32
	ev      [MaxEvents]Event
	// ids maps event index → SpanID assigned during AddEvents, so
	// parent links survive the copy. Scratch; owner-goroutine only.
	ids [MaxEvents]SpanID
}

// Reset empties the buffer. Owner only; no concurrent writers.
func (e *Events) Reset() {
	if e == nil {
		return
	}
	e.n.Store(0)
	e.dropped.Store(0)
}

// Begin claims an event, stamps its start, and returns its index.
// Returns -1 (a valid no-op index) when full or e is nil.
//
//mnnfast:hotpath
func (e *Events) Begin(name string, parent int32) int32 {
	if e == nil {
		return -1
	}
	n := e.n.Add(1)
	if int(n) > MaxEvents {
		e.dropped.Add(1)
		return -1
	}
	ev := &e.ev[n-1]
	ev.Name = name
	ev.Parent = parent
	ev.StartNS = Now()
	ev.EndNS = 0
	ev.NAttr = 0
	return n - 1
}

// End stamps the event's end time. No-op for index -1 or nil e.
//
//mnnfast:hotpath
func (e *Events) End(i int32) {
	if e == nil || i < 0 {
		return
	}
	e.ev[i].EndNS = Now()
}

// Annotate attaches an integer attribute to an event.
//
//mnnfast:hotpath
func (e *Events) Annotate(i int32, key string, val int64) {
	if e == nil || i < 0 {
		return
	}
	ev := &e.ev[i]
	if int(ev.NAttr) >= MaxAttrs {
		return
	}
	ev.Attrs[ev.NAttr] = Attr{Key: key, Val: val}
	ev.NAttr++
}

// Len returns the number of recorded (non-dropped) events.
func (e *Events) Len() int {
	if e == nil {
		return 0
	}
	n := int(e.n.Load())
	if n > MaxEvents {
		n = MaxEvents
	}
	return n
}

// Dropped returns the number of events lost to buffer exhaustion.
func (e *Events) Dropped() int {
	if e == nil {
		return 0
	}
	return int(e.dropped.Load())
}

// CopyFrom replaces e's contents with src's. Events are plain structs
// (the atomics live on the buffer, not the slots), so slot copies are
// direct assignments. Both buffers must be quiescent: src's writers
// joined, e owned by the caller.
//
//mnnfast:hotpath
func (e *Events) CopyFrom(src *Events) {
	if e == nil || src == nil {
		return
	}
	n := int(src.n.Load())
	if n > MaxEvents {
		n = MaxEvents
	}
	for i := 0; i < n; i++ {
		e.ev[i] = src.ev[i]
	}
	e.n.Store(int32(n))
	e.dropped.Store(src.dropped.Load())
}

// AddEvents replays a quiescent event buffer into the trace as spans
// under parent. Events whose Parent index resolved to a recorded span
// nest there; the rest attach to parent directly. Events are written
// in claim order, so a parent's index is always lower than its
// children's and the remap table is filled before it is read.
//
//mnnfast:hotpath
func (t *Trace) AddEvents(parent SpanID, ev *Events) {
	if t == nil || ev == nil {
		return
	}
	n := int(ev.n.Load())
	if n > MaxEvents {
		n = MaxEvents
	}
	for i := 0; i < n; i++ {
		src := &ev.ev[i]
		p := parent
		if src.Parent >= 0 && int(src.Parent) < i {
			if pid := ev.ids[src.Parent]; pid != 0 {
				p = pid
			}
		}
		id := t.StartAt(src.Name, p, src.StartNS)
		ev.ids[i] = id
		if id == 0 {
			continue
		}
		sp := t.span(id)
		sp.EndNS = src.EndNS
		sp.NAttr = src.NAttr
		sp.Attrs = src.Attrs
	}
	if d := ev.dropped.Load(); d != 0 {
		t.dropped.Add(d)
	}
}
