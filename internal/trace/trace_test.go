package trace

import (
	"testing"
)

func TestSpanLifecycle(t *testing.T) {
	r := NewRecorder(Options{Capacity: 4, SpanCap: 8, SampleEvery: 1})
	tr := r.StartTrace("answer", "req-1")
	root := tr.Start("answer", 0)
	if root != 1 {
		t.Fatalf("root span ID = %d, want 1", root)
	}
	if got := tr.Root(); got != root {
		t.Fatalf("Root() = %d, want %d", got, root)
	}
	child := tr.Start("vectorize", root)
	tr.Annotate(child, "tokens", 7)
	tr.AnnotateStr(root, "kernel_tier", "go")
	tr.Finish(child)
	tr.Finish(root)

	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	sp := tr.span(child)
	if sp.Parent != root {
		t.Errorf("child parent = %d, want %d", sp.Parent, root)
	}
	if sp.EndNS < sp.StartNS {
		t.Errorf("child end %d before start %d", sp.EndNS, sp.StartNS)
	}
	if sp.NAttr != 1 || sp.Attrs[0].Key != "tokens" || sp.Attrs[0].Val != 7 {
		t.Errorf("child attrs = %+v", sp.Attrs[:sp.NAttr])
	}
	rs := tr.span(root)
	if rs.NAttr != 1 || rs.Attrs[0].Str != "go" {
		t.Errorf("root attrs = %+v", rs.Attrs[:rs.NAttr])
	}
	if !r.Commit(tr) {
		t.Fatal("Commit with SampleEvery=1 should retain")
	}
}

func TestSpanOverflowDrops(t *testing.T) {
	r := NewRecorder(Options{Capacity: 2, SpanCap: 2, SampleEvery: 1})
	tr := r.StartTrace("answer", "")
	a := tr.Start("a", 0)
	b := tr.Start("b", a)
	c := tr.Start("c", b) // over capacity
	if c != 0 {
		t.Fatalf("overflow span ID = %d, want 0", c)
	}
	tr.Finish(c) // must be a no-op, not a panic
	tr.Annotate(c, "x", 1)
	if tr.Len() != 2 || tr.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want 2 and 1", tr.Len(), tr.Dropped())
	}
	r.Commit(tr)
}

func TestAttrOverflowDropsSilently(t *testing.T) {
	r := NewRecorder(Options{Capacity: 2, SpanCap: 2, SampleEvery: 1})
	tr := r.StartTrace("answer", "")
	sp := tr.Start("a", 0)
	for i := 0; i < MaxAttrs+3; i++ {
		tr.Annotate(sp, "k", int64(i))
	}
	if n := tr.span(sp).NAttr; int(n) != MaxAttrs {
		t.Fatalf("NAttr = %d, want %d", n, MaxAttrs)
	}
	r.Discard(tr)
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	id := tr.Start("x", 0)
	if id != 0 {
		t.Fatalf("nil Start = %d, want 0", id)
	}
	tr.Finish(id)
	tr.Annotate(id, "k", 1)
	tr.AnnotateStr(id, "k", "v")
	tr.SetError()
	tr.AdoptRemote(1, 2, 3)
	tr.AddEvents(0, nil)
	if tr.Root() != 0 || tr.Len() != 0 || tr.Dropped() != 0 || tr.ID64() != 0 {
		t.Fatal("nil accessors should all be zero")
	}
	if tr.ID() != "" || tr.Traceparent(0) != "" {
		t.Fatal("nil renders should be empty")
	}
	var r *Recorder
	if r.StartTrace("h", "") != nil {
		t.Fatal("nil recorder StartTrace should return nil")
	}
	r.Commit(nil)
	r.Discard(nil)
	r.Release(nil)
	if r.Lookup("0123456789abcdef") != nil || r.Index() != nil {
		t.Fatal("nil recorder lookups should be empty")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	r := NewRecorder(Options{Capacity: 2, SampleEvery: 1})
	tr := r.StartTrace("answer", "")
	root := tr.Start("answer", 0)
	hdr := tr.Traceparent(root)
	if len(hdr) != 55 {
		t.Fatalf("traceparent length = %d, want 55: %q", len(hdr), hdr)
	}
	hi, lo, parent, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent rejected own output %q", hdr)
	}
	if hi != tr.idHi || lo != tr.idLo {
		t.Errorf("round-trip ID %016x%016x, want %016x%016x", hi, lo, tr.idHi, tr.idLo)
	}
	if parent != tr.spanW3C(root) {
		t.Errorf("round-trip parent %016x, want %016x", parent, tr.spanW3C(root))
	}
	r.Discard(tr)
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // too short
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // bad hex
		"00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad dash
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
	// Unknown-but-valid version parses (forward compatibility).
	if _, _, _, ok := ParseTraceparent("42-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"); !ok {
		t.Error("version 42 should parse")
	}
}

func TestAdoptRemote(t *testing.T) {
	r := NewRecorder(Options{Capacity: 2, SampleEvery: 1})
	tr := r.StartTrace("answer", "")
	tr.AdoptRemote(0xaabb, 0xccdd, 0x1122)
	if tr.idHi != 0xaabb || tr.idLo != 0xccdd || tr.remoteParent != 0x1122 {
		t.Fatalf("AdoptRemote did not install identity: %x %x %x", tr.idHi, tr.idLo, tr.remoteParent)
	}
	// All-zero inbound ID is invalid and must be ignored.
	tr2 := r.StartTrace("answer", "")
	hi, lo := tr2.idHi, tr2.idLo
	tr2.AdoptRemote(0, 0, 5)
	if tr2.idHi != hi || tr2.idLo != lo || tr2.remoteParent != 0 {
		t.Fatal("AdoptRemote accepted the invalid all-zero trace ID")
	}
	r.Discard(tr)
	r.Discard(tr2)
}

func TestEventsReplay(t *testing.T) {
	var ev Events
	a := ev.Begin("hop", -1)
	b := ev.Begin("worker", a)
	ev.Annotate(b, "worker", 3)
	ev.End(b)
	ev.End(a)
	if ev.Len() != 2 {
		t.Fatalf("events Len = %d, want 2", ev.Len())
	}

	r := NewRecorder(Options{Capacity: 2, SpanCap: 8, SampleEvery: 1})
	tr := r.StartTrace("answer", "")
	root := tr.Start("answer", 0)
	infer := tr.Start("infer", root)
	tr.AddEvents(infer, &ev)
	if tr.Len() != 4 {
		t.Fatalf("trace Len = %d, want 4", tr.Len())
	}
	hop := tr.span(SpanID(3))
	worker := tr.span(SpanID(4))
	if hop.Parent != infer {
		t.Errorf("hop parent = %d, want infer %d", hop.Parent, infer)
	}
	if worker.Parent != SpanID(3) {
		t.Errorf("worker parent = %d, want hop 3", worker.Parent)
	}
	if worker.NAttr != 1 || worker.Attrs[0].Key != "worker" || worker.Attrs[0].Val != 3 {
		t.Errorf("worker attrs lost: %+v", worker.Attrs[:worker.NAttr])
	}
	r.Discard(tr)
}

func TestEventsCopyFrom(t *testing.T) {
	var src, dst Events
	a := src.Begin("hop", -1)
	src.Annotate(a, "hop", 0)
	src.End(a)
	dst.CopyFrom(&src)
	if dst.Len() != 1 || dst.ev[0].Name != "hop" || dst.ev[0].NAttr != 1 {
		t.Fatalf("CopyFrom lost content: len=%d ev=%+v", dst.Len(), dst.ev[0])
	}
	src.Reset()
	if src.Len() != 0 {
		t.Fatal("Reset did not empty")
	}
	if dst.Len() != 1 {
		t.Fatal("copy should be independent of source reset")
	}
}

func TestEventsOverflowAndNil(t *testing.T) {
	var e *Events
	if e.Begin("x", -1) != -1 {
		t.Fatal("nil Begin should return -1")
	}
	e.End(-1)
	e.Annotate(-1, "k", 1)
	e.Reset()
	e.CopyFrom(nil)
	if e.Len() != 0 || e.Dropped() != 0 {
		t.Fatal("nil accessors should be zero")
	}

	var full Events
	for i := 0; i < MaxEvents; i++ {
		full.Begin("e", -1)
	}
	if over := full.Begin("over", -1); over != -1 {
		t.Fatalf("overflow Begin = %d, want -1", over)
	}
	if full.Len() != MaxEvents || full.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want %d and 1", full.Len(), full.Dropped(), MaxEvents)
	}
	// Dropped events fold into the trace on replay.
	r := NewRecorder(Options{Capacity: 2, SpanCap: MaxEvents + 8, SampleEvery: 1})
	tr := r.StartTrace("answer", "")
	tr.AddEvents(tr.Start("root", 0), &full)
	if tr.Dropped() != 1 {
		t.Fatalf("trace Dropped = %d, want 1", tr.Dropped())
	}
	r.Discard(tr)
}

func TestSpanAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	r := NewRecorder(Options{Capacity: 4, SpanCap: 16, SampleEvery: 1})
	tr := r.StartTrace("answer", "")
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Start("vectorize", 1)
		tr.Annotate(sp, "tokens", 3)
		tr.Finish(sp)
		tr.nspans.Store(1) // rewind so the fixed buffer never overflows
	})
	if allocs != 0 {
		t.Fatalf("span start/annotate/finish allocated %.1f/op, want 0", allocs)
	}
	r.Discard(tr)
}

func TestEventAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	var ev Events
	allocs := testing.AllocsPerRun(200, func() {
		ev.Reset()
		i := ev.Begin("hop", -1)
		ev.Annotate(i, "hop", 0)
		ev.End(i)
	})
	if allocs != 0 {
		t.Fatalf("event begin/annotate/end allocated %.1f/op, want 0", allocs)
	}
}
