// W3C Trace Context (traceparent) support. Format, per the spec:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^^ ^^^^^^^^^^^^^^ trace-id (16B hex) ^^^^^^ parent-id  ^^ flags
//
// Only version 00 is emitted; any version except ff is accepted (the
// spec requires forward-compatible parsing of the known fields).
package trace

const hexDigits = "0123456789abcdef"

// ParseTraceparent extracts the trace ID and parent span ID from a
// traceparent header value. ok is false for malformed headers and for
// the all-zero (invalid) trace ID.
func ParseTraceparent(h string) (idHi, idLo, parent uint64, ok bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return 0, 0, 0, false
	}
	ver, ok := parseHex(h[0:2])
	if !ok || ver == 0xff {
		return 0, 0, 0, false
	}
	idHi, ok = parseHex(h[3:19])
	if !ok {
		return 0, 0, 0, false
	}
	idLo, ok = parseHex(h[19:35])
	if !ok {
		return 0, 0, 0, false
	}
	parent, ok = parseHex(h[36:52])
	if !ok {
		return 0, 0, 0, false
	}
	if idHi == 0 && idLo == 0 {
		return 0, 0, 0, false
	}
	return idHi, idLo, parent, true
}

// parseHex decodes a lowercase/uppercase hex string of up to 16 digits.
func parseHex(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// appendHex64 appends v as exactly 16 lowercase hex digits.
func appendHex64(dst []byte, v uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(v>>uint(shift))&0xf])
	}
	return dst
}

// ID renders the 128-bit trace ID as 32 lowercase hex digits.
// Allocates; cold-path only (headers, exports).
//
//mnnfast:coldpath
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	buf := make([]byte, 0, 32)
	buf = appendHex64(buf, t.idHi)
	buf = appendHex64(buf, t.idLo)
	return string(buf)
}

// Traceparent renders the outbound traceparent header for a span of
// this trace (typically the root). Allocates; cold-path only.
//
//mnnfast:coldpath
func (t *Trace) Traceparent(id SpanID) string {
	if t == nil {
		return ""
	}
	buf := make([]byte, 0, 55)
	buf = append(buf, '0', '0', '-')
	buf = appendHex64(buf, t.idHi)
	buf = appendHex64(buf, t.idLo)
	buf = append(buf, '-')
	buf = appendHex64(buf, t.spanW3C(id))
	buf = append(buf, '-', '0', '1')
	return string(buf)
}
