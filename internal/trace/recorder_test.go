package trace

import (
	"sync"
	"testing"
	"time"
)

// commitOne runs one trace through the recorder with an artificial
// duration, bypassing the real clock so retention rules are exercised
// deterministically.
func commitOne(r *Recorder, durNS int64, isErr bool) *Trace {
	tr := r.StartTrace("answer", "")
	tr.Start("answer", 0)
	tr.startNS = Now() - durNS // synthetic start so Commit sees durNS
	if isErr {
		tr.SetError()
	}
	r.Commit(tr)
	return tr
}

func TestRetentionErrorAlwaysKept(t *testing.T) {
	r := NewRecorder(Options{Capacity: 8, SampleEvery: 1 << 30}) // sampling ~never fires
	commitOne(r, 1000, false)                                    // first trace seeds the EWMA, sampled out
	commitOne(r, 1000, true)
	st := r.Stats()
	if st.KeptErr != 1 {
		t.Fatalf("KeptErr = %d, want 1 (stats %+v)", st.KeptErr, st)
	}
}

func TestRetentionSlowTail(t *testing.T) {
	r := NewRecorder(Options{Capacity: 8, SampleEvery: 1 << 30, SlowFactor: 2})
	for i := 0; i < 10; i++ {
		commitOne(r, 1000, false) // establish EWMA ≈ 1µs
	}
	commitOne(r, 1_000_000, false) // 1ms ≫ 2×EWMA
	st := r.Stats()
	if st.KeptSlow != 1 {
		t.Fatalf("KeptSlow = %d, want 1 (EWMA %d)", st.KeptSlow, st.EWMANS)
	}
	// The slow trace is marked in its summary.
	found := false
	for _, s := range r.Index() {
		if s.Slow {
			found = true
		}
	}
	if !found {
		t.Fatal("slow trace not flagged in index")
	}
}

func TestRetentionSampling(t *testing.T) {
	r := NewRecorder(Options{Capacity: 64, SampleEvery: 4, SlowFactor: 1 << 20})
	for i := 0; i < 16; i++ {
		commitOne(r, 1000, false)
	}
	st := r.Stats()
	if st.KeptSampled != 4 {
		t.Fatalf("KeptSampled = %d, want 4 of 16 at SampleEvery=4", st.KeptSampled)
	}
	if st.Committed != 16 || st.Started != 16 {
		t.Fatalf("Committed=%d Started=%d, want 16", st.Committed, st.Started)
	}
}

func TestFirstTraceSampled(t *testing.T) {
	r := NewRecorder(Options{Capacity: 8, SampleEvery: 1000})
	commitOne(r, 1000, false)
	if st := r.Stats(); st.KeptSampled != 1 {
		t.Fatalf("first trace should always be sampled in; KeptSampled = %d", st.KeptSampled)
	}
}

func TestRingDisplacement(t *testing.T) {
	r := NewRecorder(Options{Capacity: 4, SampleEvery: 1})
	for i := 0; i < 10; i++ {
		commitOne(r, 1000, false)
	}
	idx := r.Index()
	if len(idx) != 4 {
		t.Fatalf("index length = %d, want ring capacity 4", len(idx))
	}
	// Newest first, and only the last four commit sequences survive.
	for i, s := range idx {
		want := uint64(10 - i)
		if s.Seq != want {
			t.Errorf("index[%d].Seq = %d, want %d", i, s.Seq, want)
		}
	}
}

func TestLookupAndRelease(t *testing.T) {
	r := NewRecorder(Options{Capacity: 4, SampleEvery: 1})
	tr := r.StartTrace("answer", "req-9")
	tr.Start("answer", 0)
	full, short := tr.ID(), tr.ID()[16:]
	r.Commit(tr)

	got := r.Lookup(full)
	if got == nil {
		t.Fatalf("Lookup(%q) = nil", full)
	}
	if got.Summary().RequestID != "req-9" {
		t.Errorf("wrong trace: %+v", got.Summary())
	}
	r.Release(got)

	got = r.Lookup(short)
	if got == nil {
		t.Fatalf("Lookup by low 16 digits %q = nil", short)
	}
	r.Release(got)

	for _, bad := range []string{"", "zz", "0123456789abcdef0123456789abcdee", "ffffffffffffffff"} {
		if g := r.Lookup(bad); g != nil {
			r.Release(g)
			t.Errorf("Lookup(%q) found a trace", bad)
		}
	}
}

func TestDiscardRecycles(t *testing.T) {
	r := NewRecorder(Options{Capacity: 4, SampleEvery: 1})
	tr := r.StartTrace("answer", "")
	r.Discard(tr)
	if st := r.Stats(); st.Retained != 0 || st.Committed != 0 {
		t.Fatalf("Discard must not count as commit/retain: %+v", st)
	}
	if got := r.pool.Get().(*Trace); got != tr {
		// Not guaranteed by sync.Pool in general, but single-goroutine
		// put-then-get returns the per-P private item.
		t.Skip("pool did not return the discarded trace; cannot verify recycling")
	}
}

func TestCommitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items randomly under -race")
	}
	r := NewRecorder(Options{Capacity: 8, SpanCap: 16, SampleEvery: 1})
	// Warm the pool past ring capacity so steady-state commits recycle.
	for i := 0; i < 32; i++ {
		commitOne(r, 1000, false)
	}
	allocs := testing.AllocsPerRun(200, func() {
		tr := r.StartTrace("answer", "req")
		root := tr.Start("answer", 0)
		tr.Finish(root)
		r.Commit(tr)
	})
	if allocs != 0 {
		t.Fatalf("StartTrace+span+Commit allocated %.1f/op, want 0", allocs)
	}
}

// TestConcurrentWritersAndReaders drives committing writers against
// Index/Lookup/ForEach readers. Run under -race this validates the
// refcount pin protocol: no reader may observe a recycled trace.
func TestConcurrentWritersAndReaders(t *testing.T) {
	r := NewRecorder(Options{Capacity: 4, SpanCap: 8, SampleEvery: 1})
	const writers, readers, rounds = 4, 4, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tr := r.StartTrace("answer", "req")
				sp := tr.Start("answer", 0)
				tr.Annotate(sp, "writer", int64(w))
				tr.Finish(sp)
				r.Commit(tr)
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range r.Index() {
					if tr := r.Lookup(s.ID); tr != nil {
						_ = tr.Export() // touch spans while pinned
						r.Release(tr)
					}
				}
				time.Sleep(time.Microsecond)
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish; then stop readers.
	for {
		st := r.Stats()
		if st.Committed >= writers*rounds {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	st := r.Stats()
	if st.Committed != writers*rounds {
		t.Fatalf("Committed = %d, want %d", st.Committed, writers*rounds)
	}
	if st.Retained != writers*rounds {
		t.Fatalf("Retained = %d, want %d (SampleEvery=1 keeps all)", st.Retained, writers*rounds)
	}
}
