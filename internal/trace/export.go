// Cold-path exports: trace index summaries, the JSON span tree served
// by /v1/traces/{id}, and Chrome trace_event JSON loadable in Perfetto
// or chrome://tracing. Allocation-heavy by nature; never called from
// the request hot path.
package trace

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Summary is one row of the trace index.
type Summary struct {
	ID         string    `json:"id"`
	RequestID  string    `json:"request_id,omitempty"`
	Handler    string    `json:"handler"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	Spans      int       `json:"spans"`
	Dropped    int       `json:"dropped_spans,omitempty"`
	Error      bool      `json:"error,omitempty"`
	Slow       bool      `json:"slow,omitempty"`
	Seq        uint64    `json:"seq"`
}

// Summary builds the index row for a pinned trace.
func (t *Trace) Summary() Summary {
	return Summary{
		ID:         t.ID(),
		RequestID:  t.reqID,
		Handler:    t.handler,
		Start:      t.wall,
		DurationNS: t.endNS - t.startNS,
		Spans:      t.Len(),
		Dropped:    t.Dropped(),
		Error:      t.err,
		Slow:       t.slow,
		Seq:        t.seq,
	}
}

// Index returns summaries of all retained traces, newest first.
func (r *Recorder) Index() []Summary {
	if r == nil {
		return nil
	}
	out := make([]Summary, 0, len(r.slots))
	r.ForEach(func(t *Trace) { out = append(out, t.Summary()) })
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// ExportSpan is one node of the exported span tree. Times are
// nanoseconds relative to the trace start.
type ExportSpan struct {
	Name     string         `json:"name"`
	StartNS  int64          `json:"start_ns"`
	DurNS    int64          `json:"dur_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*ExportSpan  `json:"children,omitempty"`
}

// Export is the full JSON form of one trace.
type Export struct {
	ID           string        `json:"id"`
	ParentSpanID string        `json:"parent_span_id,omitempty"` // from inbound traceparent
	RequestID    string        `json:"request_id,omitempty"`
	Handler      string        `json:"handler"`
	Start        time.Time     `json:"start"`
	DurationNS   int64         `json:"duration_ns"`
	Dropped      int           `json:"dropped_spans,omitempty"`
	Error        bool          `json:"error,omitempty"`
	Slow         bool          `json:"slow,omitempty"`
	Spans        []*ExportSpan `json:"spans"`
}

// attrMap renders a span's attributes.
func attrMap(sp *Span) map[string]any {
	if sp.NAttr == 0 {
		return nil
	}
	m := make(map[string]any, sp.NAttr)
	for i := int32(0); i < sp.NAttr; i++ {
		a := &sp.Attrs[i]
		if a.Str != "" {
			m[a.Key] = a.Str
		} else {
			m[a.Key] = a.Val
		}
	}
	return m
}

// endOr clamps a zero (unfinished) end timestamp to the trace end.
func (t *Trace) endOr(ns int64) int64 {
	if ns == 0 {
		return t.endNS
	}
	return ns
}

// Export builds the span tree for a pinned trace. Spans whose parent
// was dropped attach to the root level.
func (t *Trace) Export() *Export {
	if t == nil {
		return nil
	}
	e := &Export{
		ID:         t.ID(),
		RequestID:  t.reqID,
		Handler:    t.handler,
		Start:      t.wall,
		DurationNS: t.endNS - t.startNS,
		Dropped:    t.Dropped(),
		Error:      t.err,
		Slow:       t.slow,
		Spans:      []*ExportSpan{},
	}
	if t.remoteParent != 0 {
		e.ParentSpanID = string(appendHex64(make([]byte, 0, 16), t.remoteParent))
	}
	n := t.Len()
	nodes := make([]*ExportSpan, n)
	for i := 0; i < n; i++ {
		sp := t.span(SpanID(i + 1))
		nodes[i] = &ExportSpan{
			Name:    sp.Name,
			StartNS: sp.StartNS - t.startNS,
			DurNS:   t.endOr(sp.EndNS) - sp.StartNS,
			Attrs:   attrMap(sp),
		}
	}
	for i := 0; i < n; i++ {
		sp := t.span(SpanID(i + 1))
		// Spans are claimed in start order, so a live parent always has
		// a lower index; anything else roots the span.
		if p := int(sp.Parent); p >= 1 && p <= i {
			nodes[p-1].Children = append(nodes[p-1].Children, nodes[i])
		} else {
			e.Spans = append(e.Spans, nodes[i])
		}
	}
	return e
}

// WriteJSON writes the span-tree export.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Export())
}

// chromeEvent is one trace_event entry. Phase "X" (complete event)
// carries both timestamp and duration in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeExport is the envelope chrome://tracing and Perfetto load.
type chromeExport struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// WriteChrome writes the trace in Chrome trace_event JSON.
// Track mapping: spans land on tid 1; scheduler worker spans (those
// with a "worker" attribute) land on tid 2+worker so per-worker
// parallelism is visible as separate tracks.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		return nil
	}
	n := t.Len()
	evs := make([]chromeEvent, 0, n)
	for i := 0; i < n; i++ {
		sp := t.span(SpanID(i + 1))
		ev := chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			TS:   float64(sp.StartNS-t.startNS) / 1e3,
			Dur:  float64(t.endOr(sp.EndNS)-sp.StartNS) / 1e3,
			PID:  1,
			TID:  1,
			Args: attrMap(sp),
		}
		for a := int32(0); a < sp.NAttr; a++ {
			if sp.Attrs[a].Key == "worker" {
				ev.TID = 2 + sp.Attrs[a].Val
				break
			}
		}
		evs = append(evs, ev)
	}
	return json.NewEncoder(w).Encode(chromeExport{
		TraceEvents: evs,
		Metadata: map[string]any{
			"trace_id":   t.ID(),
			"request_id": t.reqID,
			"handler":    t.handler,
			"start":      t.wall,
		},
	})
}
