// Package trace is a dependency-free, zero-alloc-on-the-hot-path span
// recorder for request-scoped tracing. A Trace is a pooled,
// fixed-capacity buffer of spans claimed with an atomic counter;
// timestamps come from one process-wide monotonic clock so spans
// recorded on different goroutines order correctly. The flight
// recorder (recorder.go) retains recently completed traces in a
// lock-free ring with tail-based retention.
//
// All methods on Trace and Events are nil-receiver safe: code under
// instrumentation calls them unconditionally and a disabled tracer
// costs one predictable branch per call site.
package trace

import (
	"sync/atomic"
	"time"
)

// MaxAttrs is the per-span annotation capacity. Topk hop events carry
// the widest set (hop, skipped, rows, topk_probed, topk_kept) —
// exactly five; worker spans carry four (worker, chunks, steals,
// idle_ns).
const MaxAttrs = 5

// base anchors the process-wide monotonic clock. time.Since reads the
// monotonic component, so Now is immune to wall-clock steps.
var base = time.Now()

// Now returns nanoseconds since an arbitrary process-wide monotonic
// epoch. All span timestamps use this clock.
//
//mnnfast:hotpath
func Now() int64 { return int64(time.Since(base)) }

// SpanID identifies a span within one trace. It is the span's buffer
// index plus one; zero means "no span" and is safe to pass as a parent
// or to Finish/Annotate (no-op).
type SpanID uint32

// Attr is one span annotation. Str, when non-empty, takes precedence
// over Val in exports.
type Attr struct {
	Key string
	Val int64
	Str string
}

// Span is one timed operation. Start/End are Now() timestamps; EndNS
// zero means the span was never finished (exports clamp it to the
// trace end).
type Span struct {
	Name    string
	Parent  SpanID
	StartNS int64
	EndNS   int64
	NAttr   int32
	Attrs   [MaxAttrs]Attr
}

// Trace is one request's span buffer plus identity metadata.
//
// Concurrency contract: between StartTrace and Commit the trace is
// owned by one writer goroutine at a time (the span claim counter is
// atomic only so ownership can be handed across a happens-before edge,
// e.g. batcher done-channels). After Commit the trace is immutable;
// readers pin it through the recorder's refcount.
type Trace struct {
	refs    atomic.Int64 // recorder pin count; 0 → back in the pool
	nspans  atomic.Int32 // claimed spans; may exceed len(spans) when dropping
	dropped atomic.Int32 // spans lost to buffer exhaustion

	spans []Span // fixed capacity, allocated once per pooled Trace

	// Identity and metadata, written by the owner before Commit.
	idHi, idLo   uint64    // 128-bit trace ID (W3C trace-id)
	remoteParent uint64    // parent span-id from an inbound traceparent
	reqID        string    // X-Request-ID
	handler      string    // root handler label
	wall         time.Time // wall-clock start, for human-facing exports
	startNS      int64     // Now() at StartTrace
	endNS        int64     // Now() at Commit
	err          bool      // terminal status was an error
	slow         bool      // retained by the slow-tail rule
	seq          uint64    // recorder commit sequence
}

// reset prepares a pooled Trace for reuse. Caller must hold the only
// reference.
func (t *Trace) reset() {
	t.nspans.Store(0)
	t.dropped.Store(0)
	t.idHi, t.idLo = 0, 0
	t.remoteParent = 0
	t.reqID, t.handler = "", ""
	t.wall = time.Time{}
	t.startNS, t.endNS = 0, 0
	t.err, t.slow = false, false
	t.seq = 0
}

// Start claims a span, stamps its start time, and returns its ID.
// Returns 0 (a valid no-op ID) when the buffer is exhausted or t is
// nil.
//
//mnnfast:hotpath
func (t *Trace) Start(name string, parent SpanID) SpanID {
	return t.StartAt(name, parent, Now())
}

// StartAt is Start with an explicit timestamp, for replaying events
// captured elsewhere (see AddEvents).
//
//mnnfast:hotpath
func (t *Trace) StartAt(name string, parent SpanID, startNS int64) SpanID {
	if t == nil {
		return 0
	}
	n := t.nspans.Add(1)
	if int(n) > len(t.spans) {
		t.dropped.Add(1)
		return 0
	}
	sp := &t.spans[n-1]
	sp.Name = name
	sp.Parent = parent
	sp.StartNS = startNS
	sp.EndNS = 0
	sp.NAttr = 0
	return SpanID(n)
}

// Finish stamps the span's end time. No-op for id 0 or nil t.
//
//mnnfast:hotpath
func (t *Trace) Finish(id SpanID) { t.FinishAt(id, Now()) }

// FinishAt is Finish with an explicit timestamp.
//
//mnnfast:hotpath
func (t *Trace) FinishAt(id SpanID, endNS int64) {
	if t == nil || id == 0 {
		return
	}
	t.spans[id-1].EndNS = endNS
}

// Annotate attaches an integer attribute to a span. Attributes beyond
// MaxAttrs are dropped silently.
//
//mnnfast:hotpath
func (t *Trace) Annotate(id SpanID, key string, val int64) {
	if t == nil || id == 0 {
		return
	}
	sp := &t.spans[id-1]
	if int(sp.NAttr) >= MaxAttrs {
		return
	}
	sp.Attrs[sp.NAttr] = Attr{Key: key, Val: val}
	sp.NAttr++
}

// AnnotateStr attaches a string attribute to a span. The string should
// be a constant or long-lived (it is retained until the trace is
// recycled).
//
//mnnfast:hotpath
func (t *Trace) AnnotateStr(id SpanID, key, val string) {
	if t == nil || id == 0 {
		return
	}
	sp := &t.spans[id-1]
	if int(sp.NAttr) >= MaxAttrs {
		return
	}
	sp.Attrs[sp.NAttr] = Attr{Key: key, Str: val}
	sp.NAttr++
}

// Root returns the first started span (the request root), or 0 when no
// span has been started yet.
//
//mnnfast:hotpath
func (t *Trace) Root() SpanID {
	if t == nil || t.nspans.Load() == 0 {
		return 0
	}
	return 1
}

// SetError marks the trace as errored; the recorder always retains
// errored traces.
//
//mnnfast:hotpath
func (t *Trace) SetError() {
	if t == nil {
		return
	}
	t.err = true
}

// AdoptRemote installs an inbound W3C trace context: the trace joins
// the caller's trace ID and records its parent span ID.
func (t *Trace) AdoptRemote(idHi, idLo, parentSpan uint64) {
	if t == nil || (idHi == 0 && idLo == 0) {
		return
	}
	t.idHi, t.idLo = idHi, idLo
	t.remoteParent = parentSpan
}

// ID64 returns the low 64 bits of the trace ID, used as the histogram
// exemplar key. Zero for a nil trace.
//
//mnnfast:hotpath
func (t *Trace) ID64() uint64 {
	if t == nil {
		return 0
	}
	return t.idLo
}

// Len returns the number of recorded (non-dropped) spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	n := int(t.nspans.Load())
	if n > len(t.spans) {
		n = len(t.spans)
	}
	return n
}

// Dropped returns the number of spans lost to buffer exhaustion.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	return int(t.dropped.Load())
}

// span returns the recorded span for id (1-based). Export helper;
// callers must hold a pin.
func (t *Trace) span(id SpanID) *Span { return &t.spans[id-1] }

// idSeq and idSeed drive trace-ID generation: a process-unique counter
// mixed through splitmix64 gives well-distributed 128-bit IDs without
// math/rand's locks.
var (
	idSeq  atomic.Uint64
	idSeed = uint64(time.Now().UnixNano())
)

// splitmix64 is the SplitMix64 finalizer — a cheap, high-quality
// 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newID returns a fresh 128-bit trace ID. The low half is guaranteed
// non-zero (it doubles as the exemplar key).
//
//mnnfast:hotpath
func newID() (hi, lo uint64) {
	s := idSeq.Add(1)
	hi = splitmix64(idSeed + s*2)
	lo = splitmix64(idSeed ^ (s*2 + 1))
	if lo == 0 {
		lo = 1
	}
	return hi, lo
}

// spanW3C derives the 8-byte W3C parent-id advertised in outbound
// traceparent headers from the trace identity. It is synthetic — the
// in-memory recorder keys spans by buffer index, not 64-bit IDs — but
// stable and non-zero, which is all downstream stitching needs.
func (t *Trace) spanW3C(id SpanID) uint64 {
	v := splitmix64(t.idLo ^ uint64(id))
	if v == 0 {
		v = 1
	}
	return v
}
