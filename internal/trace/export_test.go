package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// buildTestTrace records a realistic span tree with explicit
// timestamps: answer → [vectorize, infer → hop → worker].
func buildTestTrace(t *testing.T, r *Recorder) *Trace {
	t.Helper()
	tr := r.StartTrace("answer", "req-7")
	base := tr.startNS
	root := tr.StartAt("answer", 0, base)
	vs := tr.StartAt("vectorize", root, base+10)
	tr.FinishAt(vs, base+20)
	is := tr.StartAt("infer", root, base+30)
	hop := tr.StartAt("hop", is, base+35)
	tr.Annotate(hop, "hop", 0)
	wk := tr.StartAt("worker", hop, base+40)
	tr.Annotate(wk, "worker", 1)
	tr.FinishAt(wk, base+50)
	tr.FinishAt(hop, base+55)
	tr.FinishAt(is, base+60)
	tr.FinishAt(root, base+70)
	return tr
}

func TestExportTree(t *testing.T) {
	r := NewRecorder(Options{Capacity: 2, SpanCap: 16, SampleEvery: 1})
	tr := buildTestTrace(t, r)
	r.Commit(tr)
	got := r.Lookup(tr.ID())
	if got == nil {
		t.Fatal("trace not retained")
	}
	defer r.Release(got)

	e := got.Export()
	if len(e.Spans) != 1 || e.Spans[0].Name != "answer" {
		t.Fatalf("want one root span 'answer', got %+v", e.Spans)
	}
	root := e.Spans[0]
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (vectorize, infer)", len(root.Children))
	}
	infer := root.Children[1]
	if infer.Name != "infer" || len(infer.Children) != 1 || infer.Children[0].Name != "hop" {
		t.Fatalf("infer subtree wrong: %+v", infer)
	}
	hop := infer.Children[0]
	if len(hop.Children) != 1 || hop.Children[0].Name != "worker" {
		t.Fatalf("hop subtree wrong: %+v", hop)
	}
	if hop.Children[0].Attrs["worker"] != int64(1) {
		t.Fatalf("worker attr = %v", hop.Children[0].Attrs)
	}
	// Times are trace-relative and nested monotonically.
	checkNesting(t, e.Spans, 0, e.DurationNS)
	if e.RequestID != "req-7" || e.Handler != "answer" {
		t.Errorf("metadata: %+v", e)
	}
}

// checkNesting asserts every span starts at or after its parent's
// start, ends at or before the enclosing end, and has DurNS >= 0.
func checkNesting(t *testing.T, spans []*ExportSpan, lo, hi int64) {
	t.Helper()
	for _, sp := range spans {
		if sp.StartNS < lo {
			t.Errorf("span %s starts %d before enclosing %d", sp.Name, sp.StartNS, lo)
		}
		if sp.DurNS < 0 {
			t.Errorf("span %s negative duration %d", sp.Name, sp.DurNS)
		}
		if end := sp.StartNS + sp.DurNS; end > hi {
			t.Errorf("span %s ends %d after enclosing %d", sp.Name, end, hi)
		}
		checkNesting(t, sp.Children, sp.StartNS, sp.StartNS+sp.DurNS)
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	r := NewRecorder(Options{Capacity: 2, SpanCap: 16, SampleEvery: 1})
	tr := buildTestTrace(t, r)
	r.Commit(tr)
	got := r.Lookup(tr.ID())
	if got == nil {
		t.Fatal("trace not retained")
	}
	defer r.Release(got)

	var buf bytes.Buffer
	if err := got.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var e Export
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if e.ID != tr.ID() || len(e.Spans) != 1 {
		t.Fatalf("round-trip lost content: %+v", e)
	}
}

func TestWriteChrome(t *testing.T) {
	r := NewRecorder(Options{Capacity: 2, SpanCap: 16, SampleEvery: 1})
	tr := buildTestTrace(t, r)
	r.Commit(tr)
	got := r.Lookup(tr.ID())
	if got == nil {
		t.Fatal("trace not retained")
	}
	defer r.Release(got)

	var buf bytes.Buffer
	if err := got.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var ce struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ce); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(ce.TraceEvents) != 5 {
		t.Fatalf("trace events = %d, want 5", len(ce.TraceEvents))
	}
	for _, ev := range ce.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s phase = %q, want X", ev.Name, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %s ts=%f dur=%f negative", ev.Name, ev.TS, ev.Dur)
		}
		if ev.Name == "worker" && ev.TID != 3 {
			t.Errorf("worker 1 tid = %d, want 3 (2+worker)", ev.TID)
		}
		if ev.Name != "worker" && ev.TID != 1 {
			t.Errorf("event %s tid = %d, want 1", ev.Name, ev.TID)
		}
	}
	if ce.Metadata["trace_id"] != tr.ID() {
		t.Errorf("metadata trace_id = %v", ce.Metadata["trace_id"])
	}
}

func TestSummaryAndIndexOrder(t *testing.T) {
	r := NewRecorder(Options{Capacity: 8, SampleEvery: 1})
	for i := 0; i < 3; i++ {
		tr := r.StartTrace("answer", "")
		tr.Start("answer", 0)
		r.Commit(tr)
	}
	idx := r.Index()
	if len(idx) != 3 {
		t.Fatalf("index length = %d, want 3", len(idx))
	}
	for i := 1; i < len(idx); i++ {
		if idx[i-1].Seq <= idx[i].Seq {
			t.Fatalf("index not newest-first: %v", idx)
		}
	}
	if idx[0].Spans != 1 || idx[0].Handler != "answer" {
		t.Errorf("summary content: %+v", idx[0])
	}
}

func TestUnfinishedSpanClampsToTraceEnd(t *testing.T) {
	r := NewRecorder(Options{Capacity: 2, SpanCap: 8, SampleEvery: 1})
	tr := r.StartTrace("answer", "")
	tr.Start("answer", 0) // never finished
	r.Commit(tr)
	got := r.Lookup(tr.ID())
	if got == nil {
		t.Fatal("trace not retained")
	}
	defer r.Release(got)
	e := got.Export()
	if len(e.Spans) != 1 {
		t.Fatal("missing root span")
	}
	if end := e.Spans[0].StartNS + e.Spans[0].DurNS; end != e.DurationNS {
		t.Fatalf("unfinished span end %d, want trace end %d", end, e.DurationNS)
	}
}
