// Package directives parses the //mnnfast: source annotations that
// carry the runtime's hot-path contracts, and computes each package's
// hot-function set by propagating annotations through the static
// intra-package call graph.
//
// Annotation reference (see DESIGN.md §9 for the full contract):
//
//	//mnnfast:hotpath [allow=construct,...] [reason]
//	    The function is on the zero-allocation serving path. hotalloc
//	    and floatdet check it and everything it (transitively) calls in
//	    the same package. allow= exempts named constructs (e.g.
//	    allow=append for amortized grow-only scratch) in this function
//	    only — exemptions do not propagate.
//
//	//mnnfast:coldpath [reason]
//	    The function is explicitly off the hot path (error rendering,
//	    construction, shutdown). Propagation stops here: a hot caller
//	    may call it without making it hot. Use it to document fmt-using
//	    boundaries reachable from hot code.
//
//	//mnnfast:pool-get / //mnnfast:pool-put
//	    The function hands out / takes back pooled values (a sync.Pool
//	    or arena wrapper). poolescape treats calls to it like
//	    Pool.Get/Pool.Put and skips its own body (the implementation
//	    necessarily returns or stores the pooled value).
//
//	//mnnfast:locked <expr>.<mu> [...]
//	    Every call of this function happens with the named mutex held
//	    (a callee of a locking caller). guardedby accepts accesses to
//	    fields guarded by <mu> through base <expr> inside it.
//
//	//mnnfast:allow <analyzer> [reason]
//	    Line-level suppression: placed on (or immediately above) the
//	    offending line, silences that analyzer there. Use sparingly and
//	    give the reason.
//
//	//mnnfast:asm twin=<Func> | probe
//	    The function is assembly-backed (a bodyless Go declaration).
//	    twin= names its scalar reference twin in the same package — the
//	    ground truth the property/fuzz tests pin the kernel against.
//	    probe marks non-kernel stubs (CPUID/XGETBV feature probes, test
//	    accessors) that have no numeric contract. asmtwin enforces that
//	    every bodyless declaration carries exactly one of these.
//
//	//mnnfast:lockorder <before> < <after> [reason]
//	    Pins an intended lock-acquisition ordering for the lockorder
//	    analyzer (may appear on any comment line in the package). Lock
//	    names are class IDs relative to the package: "Type.field" for a
//	    mutex struct field, "var" for a package-level mutex, or a full
//	    "pkgpath.Type.field" for a cross-package pin. A self pin
//	    (before == after) blesses deliberate ordered acquisition of
//	    several locks of one class.
package directives

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const prefix = "//mnnfast:"

// FuncInfo is the directive state of one declared function.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Obj  *types.Func

	// Hot reports the function is on the hot path, either annotated
	// directly or reached from an annotated function through
	// same-package static calls. Cold wins over Hot.
	Hot bool
	// HotAnnotated distinguishes an explicit //mnnfast:hotpath from
	// propagated hotness.
	HotAnnotated bool
	// Cold marks an explicit //mnnfast:coldpath.
	Cold bool
	// Allow holds the allow= constructs of this function's own
	// hotpath annotation. Never inherited.
	Allow map[string]bool
	// PoolGet/PoolPut mark pool accessor wrappers.
	PoolGet, PoolPut bool
	// Locked lists lock expressions (e.g. "sess.mu") the caller
	// guarantees are held for the duration of this function.
	Locked []string
	// AsmTwin is the declared scalar reference twin of an
	// assembly-backed function (//mnnfast:asm twin=Name).
	AsmTwin string
	// AsmProbe marks an assembly-backed non-kernel stub
	// (//mnnfast:asm probe) exempt from the twin requirement.
	AsmProbe bool
}

// Allows reports whether construct is exempted on this function.
func (fi *FuncInfo) Allows(construct string) bool {
	return fi != nil && fi.Allow[construct]
}

// Info is the directive view of one package.
type Info struct {
	byObj  map[*types.Func]*FuncInfo
	byDecl map[*ast.FuncDecl]*FuncInfo
	funcs  []*FuncInfo
}

// Funcs returns every declared function's info in source order.
func (in *Info) Funcs() []*FuncInfo { return in.funcs }

// ByObj returns the info for a function object declared in this
// package, or nil.
// ByObj resolves through Origin so that calls to methods of
// instantiated generic types (whose selections yield the instantiated
// method object) still find the declared function's info.
func (in *Info) ByObj(fn *types.Func) *FuncInfo { return in.byObj[fn.Origin()] }

// ByDecl returns the info for a function declaration, or nil.
func (in *Info) ByDecl(d *ast.FuncDecl) *FuncInfo { return in.byDecl[d] }

// ParseDirective splits one comment line into a directive verb and its
// argument string; ok is false for non-directive comments. Unknown
// verbs parse fine — Collect simply ignores them, so a future directive
// does not break older checkers.
func ParseDirective(text string) (verb, args string, ok bool) {
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	verb, args, _ = strings.Cut(rest, " ")
	return verb, strings.TrimSpace(args), true
}

// Collect parses directives and computes the propagated hot set for a
// package given its parsed files and type information. Duplicate
// directives on one declaration merge: a second //mnnfast:hotpath
// contributes its allow= set to the first, repeated //mnnfast:locked
// lines append.
func Collect(files []*ast.File, info *types.Info) *Info {
	in := &Info{
		byObj:  make(map[*types.Func]*FuncInfo),
		byDecl: make(map[*ast.FuncDecl]*FuncInfo),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			fi := &FuncInfo{Decl: fd, Obj: obj}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					verb, args, ok := ParseDirective(c.Text)
					if !ok {
						continue
					}
					switch verb {
					case "hotpath":
						fi.Hot, fi.HotAnnotated = true, true
						for _, field := range strings.Fields(args) {
							if allow, ok := strings.CutPrefix(field, "allow="); ok {
								if fi.Allow == nil {
									fi.Allow = make(map[string]bool)
								}
								for _, a := range strings.Split(allow, ",") {
									fi.Allow[a] = true
								}
							}
						}
					case "coldpath":
						fi.Cold = true
					case "pool-get":
						fi.PoolGet = true
					case "pool-put":
						fi.PoolPut = true
					case "locked":
						fi.Locked = append(fi.Locked, strings.Fields(args)...)
					case "asm":
						for _, field := range strings.Fields(args) {
							if twin, ok := strings.CutPrefix(field, "twin="); ok {
								fi.AsmTwin = twin
							} else if field == "probe" {
								fi.AsmProbe = true
							}
						}
					}
				}
			}
			if fi.Cold {
				fi.Hot, fi.HotAnnotated = false, false
			}
			in.funcs = append(in.funcs, fi)
			in.byDecl[fd] = fi
			if obj != nil {
				in.byObj[obj] = fi
			}
		}
	}
	in.propagate(info)
	return in
}

// propagate marks every same-package function statically reachable from
// a hot function as hot, stopping at //mnnfast:coldpath boundaries.
// Calls through function values, interfaces, or other packages do not
// propagate.
func (in *Info) propagate(info *types.Info) {
	callees := make(map[*FuncInfo][]*FuncInfo)
	for _, fi := range in.funcs {
		if fi.Decl.Body == nil {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			if obj, ok := info.Uses[id].(*types.Func); ok {
				if callee := in.byObj[obj.Origin()]; callee != nil {
					callees[fi] = append(callees[fi], callee)
				}
			}
			return true
		})
	}
	var work []*FuncInfo
	for _, fi := range in.funcs {
		if fi.Hot {
			work = append(work, fi)
		}
	}
	for len(work) > 0 {
		fi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, callee := range callees[fi] {
			if callee.Hot || callee.Cold {
				continue
			}
			callee.Hot = true
			work = append(work, callee)
		}
	}
}

// AllowedLines scans a file's comments for //mnnfast:allow directives
// and returns line → suppressed analyzer names. A suppression applies
// to diagnostics on its own line and on the line directly below it
// (comment-above-the-statement style).
func AllowedLines(fset *token.FileSet, file *ast.File) map[int][]string {
	var allowed map[int][]string
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			verb, args, ok := ParseDirective(c.Text)
			if !ok || verb != "allow" {
				continue
			}
			fields := strings.Fields(args)
			if len(fields) == 0 {
				continue
			}
			if allowed == nil {
				allowed = make(map[int][]string)
			}
			line := fset.Position(c.Pos()).Line
			allowed[line] = append(allowed[line], fields[0])
		}
	}
	return allowed
}

// Suppressed reports whether a diagnostic from analyzer at pos is
// silenced by a //mnnfast:allow comment on its line or the line above.
func Suppressed(fset *token.FileSet, file *ast.File, analyzer string, pos token.Pos) bool {
	allowed := AllowedLines(fset, file)
	if allowed == nil {
		return false
	}
	line := fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, name := range allowed[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// RawPin is one parsed //mnnfast:lockorder directive, names unresolved.
type RawPin struct {
	// Before and After are lock class names as spelled in the directive
	// ("Type.field", "var", or a full "pkgpath.Type.field").
	Before, After string
	Pos           token.Pos
}

// Pins scans every comment in the files for //mnnfast:lockorder
// directives. Malformed directives (missing the `<`) are skipped; the
// lockorder analyzer reports them.
func Pins(files []*ast.File) (pins []RawPin, malformed []token.Pos) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, args, ok := ParseDirective(c.Text)
				if !ok || verb != "lockorder" {
					continue
				}
				fields := strings.Fields(args)
				if len(fields) < 3 || fields[1] != "<" {
					malformed = append(malformed, c.Pos())
					continue
				}
				pins = append(pins, RawPin{Before: fields[0], After: fields[2], Pos: c.Pos()})
			}
		}
	}
	return pins, malformed
}
