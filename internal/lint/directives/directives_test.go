package directives

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

func parseAndCheck(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Error: func(error) {}}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, []*ast.File{f}, info
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text       string
		verb, args string
		ok         bool
	}{
		{"//mnnfast:hotpath", "hotpath", "", true},
		{"//mnnfast:hotpath allow=append,fmt", "hotpath", "allow=append,fmt", true},
		{"//mnnfast:locked sess.mu   ", "locked", "sess.mu", true},
		{"//mnnfast:future-verb whatever args", "future-verb", "whatever args", true},
		{"// mnnfast:hotpath", "", "", false}, // space breaks the directive form
		{"// plain comment", "", "", false},
		{"//mnnfast:", "", "", true}, // empty verb parses, collect ignores it
	}
	for _, c := range cases {
		verb, args, ok := ParseDirective(c.text)
		if verb != c.verb || args != c.args || ok != c.ok {
			t.Errorf("ParseDirective(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, verb, args, ok, c.verb, c.args, c.ok)
		}
	}
}

func TestCollectMergesDuplicateDirectives(t *testing.T) {
	src := `package x

// F carries two hotpath lines and two locked lines; the allow sets
// merge and the locked expressions append.
//
//mnnfast:hotpath allow=append
//mnnfast:hotpath allow=fmt,closure
//mnnfast:locked sess.mu
//mnnfast:locked idx.mu
func F() {}
`
	_, files, info := parseAndCheck(t, src)
	di := Collect(files, info)
	fi := di.Funcs()[0]
	if !fi.Hot || !fi.HotAnnotated {
		t.Fatalf("F not hot: %+v", fi)
	}
	for _, construct := range []string{"append", "fmt", "closure"} {
		if !fi.Allows(construct) {
			t.Errorf("F should allow %q after merging duplicate hotpath lines", construct)
		}
	}
	if fi.Allows("box") {
		t.Errorf("F must not allow constructs nobody listed")
	}
	if want := []string{"sess.mu", "idx.mu"}; !reflect.DeepEqual(fi.Locked, want) {
		t.Errorf("Locked = %v, want %v", fi.Locked, want)
	}
}

func TestCollectColdWinsAndUnknownVerbIgnored(t *testing.T) {
	src := `package x

// Both annotations on one function: cold wins, hotness is dropped.
//
//mnnfast:hotpath allow=append
//mnnfast:coldpath
//mnnfast:some-future-directive with args
func F() {}

//mnnfast:hotpath
func Hot() { F() }
`
	_, files, info := parseAndCheck(t, src)
	di := Collect(files, info)
	var f, hot *FuncInfo
	for _, fi := range di.Funcs() {
		switch fi.Decl.Name.Name {
		case "F":
			f = fi
		case "Hot":
			hot = fi
		}
	}
	if f.Hot || f.HotAnnotated || !f.Cold {
		t.Errorf("F should be cold only, got %+v", f)
	}
	if !hot.Hot {
		t.Errorf("Hot lost its annotation")
	}
	// Propagation must stop at the cold boundary even though Hot calls F.
	if f.Hot {
		t.Errorf("hotness propagated into an explicit coldpath")
	}
}

func TestCollectBodylessAsmDecl(t *testing.T) {
	src := `package x

// Kernel is assembly-backed: no body, a declared scalar twin.
//
//mnnfast:asm twin=kernelRef probe
func Kernel(x []float32) float32

func kernelRef(x []float32) float32 { return 0 }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// Bodyless non-asm-backed declarations are a type error in plain
	// go/types; collect directives from the parsed file with a
	// best-effort check instead.
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Error: func(error) {}}
	conf.Check("x", fset, []*ast.File{f}, info) // error ignored: body is missing by design
	di := Collect([]*ast.File{f}, info)
	var kernel *FuncInfo
	for _, fi := range di.Funcs() {
		if fi.Decl.Name.Name == "Kernel" {
			kernel = fi
		}
	}
	if kernel == nil {
		t.Fatal("bodyless declaration missing from Collect output")
	}
	if kernel.AsmTwin != "kernelRef" || !kernel.AsmProbe {
		t.Errorf("asm args parsed as twin=%q probe=%v, want kernelRef/true", kernel.AsmTwin, kernel.AsmProbe)
	}
}

func TestPins(t *testing.T) {
	src := `package x

//mnnfast:lockorder Svc.mu < Store.mu service wraps store
//mnnfast:lockorder session.mu < session.mu batch drain
//mnnfast:lockorder Svc.mu before Store.mu
//mnnfast:lockorder loneName
func F() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pins, malformed := Pins([]*ast.File{f})
	want := []struct{ before, after string }{
		{"Svc.mu", "Store.mu"},
		{"session.mu", "session.mu"},
	}
	if len(pins) != len(want) {
		t.Fatalf("got %d pins, want %d", len(pins), len(want))
	}
	for i, w := range want {
		if pins[i].Before != w.before || pins[i].After != w.after {
			t.Errorf("pin %d = %s < %s, want %s < %s", i, pins[i].Before, pins[i].After, w.before, w.after)
		}
	}
	if len(malformed) != 2 {
		t.Errorf("got %d malformed pins, want 2 (missing '<', too few fields)", len(malformed))
	}
}

func TestAllowedLines(t *testing.T) {
	src := `package x

func F() int {
	a := alloc() //mnnfast:allow hotalloc amortized
	//mnnfast:allow poolescape handed to the recorder
	b := alloc()
	return a + b
}

func alloc() int { return 0 }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	allowed := AllowedLines(fset, f)
	if got := allowed[4]; len(got) != 1 || got[0] != "hotalloc" {
		t.Errorf("line 4 allows %v, want [hotalloc]", got)
	}
	if got := allowed[5]; len(got) != 1 || got[0] != "poolescape" {
		t.Errorf("line 5 allows %v, want [poolescape]", got)
	}
	if got := allowed[6]; len(got) != 0 {
		t.Errorf("line 6 allows %v, want none (suppression binds to its own and next line at query time)", got)
	}
}
