// Package lint registers the mnnfast-lint analyzers and runs them over
// loaded packages, applying //mnnfast:allow line suppressions to the
// raw diagnostics. cmd/mnnfast-lint is the CLI wrapper; analyzer tests
// drive the same entry points through internal/lint/linttest.
package lint

import (
	"sort"

	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/asmtwin"
	"mnnfast/internal/lint/atomicfield"
	"mnnfast/internal/lint/directives"
	"mnnfast/internal/lint/floatdet"
	"mnnfast/internal/lint/guardedby"
	"mnnfast/internal/lint/hotalloc"
	"mnnfast/internal/lint/load"
	"mnnfast/internal/lint/poolescape"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		asmtwin.Analyzer,
		atomicfield.Analyzer,
		floatdet.Analyzer,
		guardedby.Analyzer,
		hotalloc.Analyzer,
		poolescape.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzer applies one analyzer to one package and returns its
// diagnostics with //mnnfast:allow suppressions filtered out, sorted
// by position, Category set to the analyzer name.
func RunAnalyzer(pkg *load.Package, a *analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d analysis.Diagnostic) {
			d.Category = a.Name
			diags = append(diags, d)
		},
	}
	if _, err := a.Run(pass); err != nil {
		return nil, err
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(pkg, a.Name, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

func suppressed(pkg *load.Package, analyzer string, d analysis.Diagnostic) bool {
	tf := pkg.Fset.File(d.Pos)
	if tf == nil {
		return false
	}
	for _, f := range pkg.Files {
		if pkg.Fset.File(f.Pos()) == tf {
			return directives.Suppressed(pkg.Fset, f, analyzer, d.Pos)
		}
	}
	return false
}

// Run applies every analyzer in as to every package in pkgs, returning
// all surviving diagnostics in (package, position) order.
func Run(pkgs []*load.Package, as []*analysis.Analyzer) ([]analysis.Diagnostic, []*load.Package, error) {
	var diags []analysis.Diagnostic
	var where []*load.Package
	for _, pkg := range pkgs {
		for _, a := range as {
			ds, err := RunAnalyzer(pkg, a)
			if err != nil {
				return nil, nil, err
			}
			for _, d := range ds {
				diags = append(diags, d)
				where = append(where, pkg)
			}
		}
	}
	return diags, where, nil
}
