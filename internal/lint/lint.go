// Package lint registers the mnnfast-lint analyzers and runs them over
// loaded packages, applying //mnnfast:allow line suppressions to the
// raw diagnostics. cmd/mnnfast-lint is the CLI wrapper; analyzer tests
// drive the same entry points through internal/lint/linttest.
//
// Two driver shapes: Run applies analyzers package-by-package with
// whatever facts the packages already carry (possibly none), and
// RunWhole is the whole-program driver — it computes each package's
// facts (internal/lint/factbuild) in dependency order and hands every
// analyzer the accumulated fact set, which is what makes hot-set
// membership, pool ownership, guarded fields, and lock-order edges
// propagate across package boundaries.
package lint

import (
	"sort"

	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/asmtwin"
	"mnnfast/internal/lint/atomicfield"
	"mnnfast/internal/lint/ctxleak"
	"mnnfast/internal/lint/directives"
	"mnnfast/internal/lint/factbuild"
	"mnnfast/internal/lint/facts"
	"mnnfast/internal/lint/floatdet"
	"mnnfast/internal/lint/guardedby"
	"mnnfast/internal/lint/hotalloc"
	"mnnfast/internal/lint/load"
	"mnnfast/internal/lint/lockorder"
	"mnnfast/internal/lint/poolescape"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		asmtwin.Analyzer,
		atomicfield.Analyzer,
		ctxleak.Analyzer,
		floatdet.Analyzer,
		guardedby.Analyzer,
		hotalloc.Analyzer,
		lockorder.Analyzer,
		poolescape.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzer applies one analyzer to one package and returns its
// diagnostics with //mnnfast:allow suppressions filtered out, sorted
// by position, Category set to the analyzer name. The package's Facts
// (nil is fine) become the pass's fact set.
func RunAnalyzer(pkg *load.Package, a *analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Facts:     pkg.Facts,
		Report: func(d analysis.Diagnostic) {
			d.Category = a.Name
			diags = append(diags, d)
		},
	}
	if _, err := a.Run(pass); err != nil {
		return nil, err
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(pkg, a.Name, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

func suppressed(pkg *load.Package, analyzer string, d analysis.Diagnostic) bool {
	tf := pkg.Fset.File(d.Pos)
	if tf == nil {
		return false
	}
	for _, f := range pkg.Files {
		if pkg.Fset.File(f.Pos()) == tf {
			return directives.Suppressed(pkg.Fset, f, analyzer, d.Pos)
		}
	}
	return false
}

// Run applies every analyzer in as to every package in pkgs, returning
// all surviving diagnostics in (package, position) order.
func Run(pkgs []*load.Package, as []*analysis.Analyzer) ([]analysis.Diagnostic, []*load.Package, error) {
	var diags []analysis.Diagnostic
	var where []*load.Package
	for _, pkg := range pkgs {
		for _, a := range as {
			ds, err := RunAnalyzer(pkg, a)
			if err != nil {
				return nil, nil, err
			}
			for _, d := range ds {
				diags = append(diags, d)
				where = append(where, pkg)
			}
		}
	}
	return diags, where, nil
}

// ComputeFacts builds every package's facts in the given (dependency)
// order, attaching the shared accumulated set to each package as it
// goes, and returns the complete set. pkgs must come from
// load.PackagesDeps (or otherwise be sorted dependencies-first).
func ComputeFacts(pkgs []*load.Package) *facts.Set {
	set := facts.NewSet()
	for _, pkg := range pkgs {
		pkg.Facts = set
		set.Add(factbuild.Compute(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, set))
	}
	return set
}

// RunWhole is the whole-program driver: it computes facts for every
// package in dependency order, then applies the analyzers to the
// packages marked Target, so cross-package facts are in scope for every
// diagnostic-producing pass.
func RunWhole(pkgs []*load.Package, as []*analysis.Analyzer) ([]analysis.Diagnostic, []*load.Package, error) {
	ComputeFacts(pkgs)
	var targets []*load.Package
	for _, pkg := range pkgs {
		if pkg.Target {
			targets = append(targets, pkg)
		}
	}
	return Run(targets, as)
}
