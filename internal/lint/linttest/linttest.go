// Package linttest is the fixture harness for the mnnfast-lint
// analyzers — the offline counterpart of x/tools' analysistest. A
// fixture is a package directory under the analyzer's
// testdata/src/<name>/ whose sources mark expected findings with
// end-of-line comments:
//
//	s += "x" // want "string concatenation allocates"
//
// The quoted string is a regexp matched against the diagnostic
// message; several `// want` strings on one line expect several
// diagnostics there. Lines without a want comment must produce no
// diagnostics, so fixtures exercise allowed cases simply by containing
// clean code — including //mnnfast:allow suppressions, which the
// harness applies exactly as the real driver does.
//
// Fixtures import only the standard library so they type-check from
// export data without the repo's own packages in scope.
package linttest

import (
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"mnnfast/internal/lint"
	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/load"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` regexp at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<fixture> relative to the calling test's
// package directory, applies the analyzer, and compares diagnostics
// against the fixture's // want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzer(pkg, a)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if w := match(wants, pos); w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		} else if !w.pattern.MatchString(d.Message) {
			w.matched = true // consumed, but wrong text
			t.Errorf("%s: diagnostic %q does not match want pattern %q", pos, d.Message, w.pattern)
		} else {
			w.matched = true
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func match(wants []*expectation, pos token.Position) *expectation {
	base := filepath.Base(pos.Filename)
	// Prefer an unmatched expectation whose pattern fits; fall back to
	// any unmatched one on the line so mismatches are reported in place.
	for _, w := range wants {
		if !w.matched && w.file == base && w.line == pos.Line {
			return w
		}
	}
	return nil
}

// collectWants scans every fixture file's comments for want patterns.
func collectWants(pkg *load.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s: malformed want comment %q (no quoted pattern)", pos, c.Text)
				}
				for _, q := range quoted {
					re, err := regexp.Compile(q[1])
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, q[1], err)
					}
					wants = append(wants, &expectation{
						file:    filepath.Base(pos.Filename),
						line:    pos.Line,
						pattern: re,
					})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}

// loadFixture parses and type-checks the fixture directory as a single
// package, resolving its (stdlib-only) imports from export data.
func loadFixture(dir string) (*load.Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(matches)

	fset := token.NewFileSet()
	// First parse pass just to discover imports for export-data lookup.
	imports, err := fixtureImports(fset, matches)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		exports, err = load.Exports(".", imports)
		if err != nil {
			return nil, err
		}
	}
	imp := load.Importer(fset, nil, func(path string) (string, error) {
		file, ok := exports[path]
		if !ok {
			return "", fmt.Errorf("fixture imports %q, which has no export data (fixtures must import the standard library only)", path)
		}
		return file, nil
	})
	pkg, err := load.Check(fset, "fixture", matches, imp)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

// fixtureImports parses import clauses only and returns the union of
// import paths across the fixture's files.
func fixtureImports(fset *token.FileSet, files []string) ([]string, error) {
	seen := make(map[string]bool)
	var paths []string
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			if !seen[path] {
				seen[path] = true
				paths = append(paths, path)
			}
		}
	}
	sort.Strings(paths)
	return paths, nil
}
