// Package linttest is the fixture harness for the mnnfast-lint
// analyzers — the offline counterpart of x/tools' analysistest. A
// fixture is a package directory under the analyzer's
// testdata/src/<name>/ whose sources mark expected findings with
// end-of-line comments:
//
//	s += "x" // want "string concatenation allocates"
//
// The quoted string is a regexp matched against the diagnostic
// message; several `// want` strings on one line expect several
// diagnostics there. Lines without a want comment must produce no
// diagnostics, so fixtures exercise allowed cases simply by containing
// clean code — including //mnnfast:allow suppressions, which the
// harness applies exactly as the real driver does.
//
// Fixtures import only the standard library so they type-check from
// export data without the repo's own packages in scope.
package linttest

import (
	"bytes"
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"mnnfast/internal/lint"
	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/factbuild"
	"mnnfast/internal/lint/facts"
	"mnnfast/internal/lint/load"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` regexp at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<fixture> relative to the calling test's
// package directory, applies the analyzer, and compares diagnostics
// against the fixture's // want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzer(pkg, a)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if w := match(wants, pos); w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		} else if !w.pattern.MatchString(d.Message) {
			w.matched = true // consumed, but wrong text
			t.Errorf("%s: diagnostic %q does not match want pattern %q", pos, d.Message, w.pattern)
		} else {
			w.matched = true
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// RunMulti loads a multi-package fixture — testdata/src/<fixture>/ with
// one subdirectory per package, imported by bare directory name — and
// applies the analyzer to every package with cross-package facts in
// scope, exactly as the whole-program driver does: packages are
// type-checked in dependency order sharing one FileSet and importer,
// each package's facts are computed with factbuild and round-tripped
// through the wire encoding (so fixtures also exercise facts
// serialization), and the accumulated set feeds each later package.
// Expected findings use the same // want comments as Run, in any of the
// packages.
func RunMulti(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkgs, err := loadMultiFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	set := facts.NewSet()
	var diags []analysis.Diagnostic
	var wants []*expectation
	for _, pkg := range pkgs {
		pkg.Facts = set
		fp := factbuild.Compute(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, set)
		rt, err := roundTrip(fp)
		if err != nil {
			t.Fatalf("facts round trip for %s: %v", pkg.PkgPath, err)
		}
		set.Add(rt)

		ds, err := lint.RunAnalyzer(pkg, a)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		diags = append(diags, ds...)
		ws, err := collectWants(pkg)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}

	fset := pkgs[0].Fset
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if w := match(wants, pos); w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		} else if !w.pattern.MatchString(d.Message) {
			w.matched = true
			t.Errorf("%s: diagnostic %q does not match want pattern %q", pos, d.Message, w.pattern)
		} else {
			w.matched = true
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// roundTrip pushes a fact package through Encode/Decode, so every
// multi-package fixture doubles as a serialization test.
func roundTrip(fp *facts.Package) (*facts.Package, error) {
	var buf bytes.Buffer
	if err := fp.Encode(&buf); err != nil {
		return nil, err
	}
	rt, err := facts.Decode(&buf)
	if err != nil {
		return nil, err
	}
	if rt == nil {
		return nil, fmt.Errorf("decoder rejected freshly encoded facts")
	}
	return rt, nil
}

// multiImporter resolves the fixture's own packages directly and
// everything else through export data.
type multiImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (m *multiImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}

// loadMultiFixture type-checks every package subdirectory of dir in
// dependency order (local imports are bare directory names).
func loadMultiFixture(dir string) ([]*load.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	type pkgSrc struct {
		name    string
		files   []string
		imports []string
	}
	srcs := make(map[string]*pkgSrc)
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		files, err := filepath.Glob(filepath.Join(dir, e.Name(), "*.go"))
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		sort.Strings(files)
		imports, err := fixtureImports(fset, files)
		if err != nil {
			return nil, err
		}
		srcs[e.Name()] = &pkgSrc{name: e.Name(), files: files, imports: imports}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no package subdirectories in %s", dir)
	}
	sort.Strings(names)

	// Topological order over local imports, plus the union of external
	// (stdlib) imports for export-data resolution.
	extSeen := make(map[string]bool)
	var ext []string
	var order []string
	state := make(map[string]int) // 0 new, 1 visiting, 2 done
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case 1:
			return fmt.Errorf("fixture packages form an import cycle at %q", name)
		case 2:
			return nil
		}
		state[name] = 1
		for _, imp := range srcs[name].imports {
			if _, local := srcs[imp]; local {
				if err := visit(imp); err != nil {
					return err
				}
			} else if !extSeen[imp] {
				extSeen[imp] = true
				ext = append(ext, imp)
			}
		}
		state[name] = 2
		order = append(order, name)
		return nil
	}
	for _, name := range names {
		if err := visit(name); err != nil {
			return nil, err
		}
	}

	exports := map[string]string{}
	if len(ext) > 0 {
		sort.Strings(ext)
		exports, err = load.Exports(".", ext)
		if err != nil {
			return nil, err
		}
	}
	imp := &multiImporter{
		local: make(map[string]*types.Package),
		fallback: load.Importer(fset, nil, func(path string) (string, error) {
			file, ok := exports[path]
			if !ok {
				return "", fmt.Errorf("fixture imports %q, which has no export data (fixtures must import the standard library only)", path)
			}
			return file, nil
		}),
	}

	var pkgs []*load.Package
	for _, name := range order {
		src := srcs[name]
		pkg, err := load.Check(fset, name, src.files, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = filepath.Join(dir, name)
		imp.local[name] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func match(wants []*expectation, pos token.Position) *expectation {
	base := filepath.Base(pos.Filename)
	// Prefer an unmatched expectation whose pattern fits; fall back to
	// any unmatched one on the line so mismatches are reported in place.
	for _, w := range wants {
		if !w.matched && w.file == base && w.line == pos.Line {
			return w
		}
	}
	return nil
}

// collectWants scans every fixture file's comments for want patterns.
func collectWants(pkg *load.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s: malformed want comment %q (no quoted pattern)", pos, c.Text)
				}
				for _, q := range quoted {
					re, err := regexp.Compile(q[1])
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, q[1], err)
					}
					wants = append(wants, &expectation{
						file:    filepath.Base(pos.Filename),
						line:    pos.Line,
						pattern: re,
					})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}

// loadFixture parses and type-checks the fixture directory as a single
// package, resolving its (stdlib-only) imports from export data.
func loadFixture(dir string) (*load.Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(matches)

	fset := token.NewFileSet()
	// First parse pass just to discover imports for export-data lookup.
	imports, err := fixtureImports(fset, matches)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		exports, err = load.Exports(".", imports)
		if err != nil {
			return nil, err
		}
	}
	imp := load.Importer(fset, nil, func(path string) (string, error) {
		file, ok := exports[path]
		if !ok {
			return "", fmt.Errorf("fixture imports %q, which has no export data (fixtures must import the standard library only)", path)
		}
		return file, nil
	})
	pkg, err := load.Check(fset, "fixture", matches, imp)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

// fixtureImports parses import clauses only and returns the union of
// import paths across the fixture's files.
func fixtureImports(fset *token.FileSet, files []string) ([]string, error) {
	seen := make(map[string]bool)
	var paths []string
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			if !seen[path] {
				seen[path] = true
				paths = append(paths, path)
			}
		}
	}
	sort.Strings(paths)
	return paths, nil
}
