// Package load turns Go package patterns into parsed, type-checked
// packages for the lint driver — the offline, stdlib-only counterpart
// of golang.org/x/tools/go/packages. It shells out to `go list -export`
// for package metadata and compiled export data (the go command builds
// export files into its cache without network access), parses the
// target packages' sources with go/parser, and type-checks them with
// go/types using the gc importer in lookup mode over the export files.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"mnnfast/internal/lint/facts"
)

// Package is one parsed and type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// Target marks packages matched by the requested patterns (as
	// opposed to in-module dependencies loaded only for facts).
	Target bool
	// Deps lists the package's in-module transitive dependencies.
	Deps []string
	// Facts, when the whole-program driver runs, holds the fact set the
	// analyzers consult through analysis.Pass.Facts.
	Facts *facts.Set
}

// listEntry is the subset of `go list -json` output we consume.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Deps       []string
	Module     *struct{ Path string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding output: %v", strings.Join(args, " "), err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Exports maps every package reachable from patterns (including the
// patterns themselves and the whole standard library slice they use) to
// its compiled export-data file, building anything missing into the go
// build cache.
func Exports(dir string, patterns []string) (map[string]string, error) {
	args := append([]string{"-export", "-deps", "-json=ImportPath,Export"}, patterns...)
	entries, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// Importer returns a types.Importer that resolves import paths through
// export-data files, with an optional path rewrite map (vet's ImportMap)
// applied first. The importer caches: all packages type-checked against
// it share one *types.Package per import, so object identity works
// across packages in a run.
func Importer(fset *token.FileSet, importMap map[string]string, exportFile func(path string) (string, error)) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, err := exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// NewInfo returns a types.Info with every map the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Check parses filenames and type-checks them as one package with the
// given canonical import path. Parse errors fail immediately; type
// errors are collected and returned joined so a caller can decide
// whether a partially-checked package is still worth analyzing.
func Check(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	pkg := &Package{PkgPath: path, Fset: fset, Info: NewInfo()}
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if len(typeErrs) > 0 {
		msgs := make([]string, len(typeErrs))
		for i, e := range typeErrs {
			msgs[i] = e.Error()
		}
		return pkg, fmt.Errorf("type checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return pkg, err
	}
	return pkg, nil
}

// Packages loads, parses, and type-checks the packages matched by
// patterns, rooted at dir. Packages with no Go files (e.g. pure test
// packages) are skipped. The returned packages share one FileSet and
// one importer, in deterministic import-path order.
func Packages(dir string, patterns []string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,Name,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports, err := Exports(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := Importer(fset, nil, func(path string) (string, error) {
		file, ok := exports[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return file, nil
	})

	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	var pkgs []*Package
	var errs []string
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, name := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, name)
		}
		pkg, err := Check(fset, t.ImportPath, files, imp)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		pkg.Dir = t.Dir
		pkgs = append(pkgs, pkg)
	}
	if len(errs) > 0 {
		return pkgs, fmt.Errorf("load: %s", strings.Join(errs, "\n"))
	}
	return pkgs, nil
}

// PackagesDeps loads the packages matched by patterns plus every
// in-module package they (transitively) depend on, returned in
// dependency order (dependencies before dependents) with Target set on
// the pattern matches. This is what the whole-program driver feeds to
// lint.RunWhole: facts are computed for every returned package in
// order, diagnostics reported only for targets.
func PackagesDeps(dir string, patterns []string) ([]*Package, error) {
	fields := "-json=ImportPath,Dir,Name,GoFiles,Export,Deps,Module"
	entries, err := goList(dir, append([]string{"-export", "-deps", fields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	// A second, non-deps listing identifies the pattern matches.
	targetEntries, err := goList(dir, append([]string{"-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	targets := make(map[string]bool, len(targetEntries))
	for _, t := range targetEntries {
		targets[t.ImportPath] = true
	}

	// In-module packages are the ones facts are computed for; everything
	// else (stdlib) resolves from export data only.
	inModule := func(e listEntry) bool { return e.Module != nil }
	exports := make(map[string]string, len(entries))
	byPath := make(map[string]listEntry, len(entries))
	for _, e := range entries {
		byPath[e.ImportPath] = e
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	fset := token.NewFileSet()
	imp := Importer(fset, nil, func(path string) (string, error) {
		file, ok := exports[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return file, nil
	})

	// Topological order over the in-module subgraph. `go list -deps`
	// already streams dependencies first, but sort explicitly so the
	// order is a guarantee, not an accident of the tool.
	var order []string
	visited := make(map[string]bool)
	var visit func(path string)
	visit = func(path string) {
		if visited[path] {
			return
		}
		visited[path] = true
		e, ok := byPath[path]
		if !ok || !inModule(e) {
			return
		}
		deps := append([]string(nil), e.Deps...)
		sort.Strings(deps)
		for _, d := range deps {
			if de, ok := byPath[d]; ok && inModule(de) {
				visit(d)
			}
		}
		order = append(order, path)
	}
	paths := make([]string, 0, len(entries))
	for _, e := range entries {
		if inModule(e) {
			paths = append(paths, e.ImportPath)
		}
	}
	sort.Strings(paths)
	for _, p := range paths {
		visit(p)
	}

	var pkgs []*Package
	var errs []string
	for _, path := range order {
		e := byPath[path]
		if len(e.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(e.GoFiles))
		for i, name := range e.GoFiles {
			files[i] = filepath.Join(e.Dir, name)
		}
		pkg, err := Check(fset, e.ImportPath, files, imp)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		pkg.Dir = e.Dir
		pkg.Target = targets[e.ImportPath]
		for _, d := range e.Deps {
			if de, ok := byPath[d]; ok && inModule(de) {
				pkg.Deps = append(pkg.Deps, d)
			}
		}
		pkgs = append(pkgs, pkg)
	}
	if len(errs) > 0 {
		return pkgs, fmt.Errorf("load: %s", strings.Join(errs, "\n"))
	}
	return pkgs, nil
}
