package guardedby_test

import (
	"testing"

	"mnnfast/internal/lint/guardedby"
	"mnnfast/internal/lint/linttest"
)

func TestGuardedby(t *testing.T) {
	linttest.Run(t, guardedby.Analyzer, "a")
}
