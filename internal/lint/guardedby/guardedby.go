// Package guardedby checks `// guarded by <mu>` field annotations: a
// struct field carrying the annotation may only be read or written
// while the named sibling mutex is held.
//
// The analysis is a source-order heuristic, not a path-sensitive
// proof: within each function scope it finds, for every access
// `base.field`, the nearest preceding Lock/RLock/Unlock/RUnlock event
// on `base.<mu>` and requires it to be a lock. Unlocks inside defer
// statements are ignored (they run at return, after every access in
// the body), as are unlocks in early-exit blocks ending with a return
// (code after such a block runs with the lock still held). Callees that are always invoked with the lock already
// held declare it with `//mnnfast:locked <base>.<mu>`, naming the
// lock expression as spelled inside the callee.
//
// This guards the server's per-session state (MnnFast §4.3's
// embedding-cache consistency depends on it) and the batcher's
// shutdown flag: the race detector only sees schedules that happen,
// this sees the code shape.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"

	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/directives"
	"mnnfast/internal/lint/walk"
)

// Analyzer is the guardedby pass.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated `// guarded by <mu>` may only be accessed with that mutex held (or under //mnnfast:locked)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	di := directives.Collect(pass.Files, pass.TypesInfo)
	guards := collectGuards(pass)
	imported := importedGuards(pass)
	if len(guards) == 0 && len(imported) == 0 {
		return nil, nil
	}
	for _, fi := range di.Funcs() {
		if fi.Decl.Body == nil {
			continue
		}
		for _, sc := range walk.Scopes(fi.Decl) {
			checkScope(pass, fi, sc, guards, imported)
		}
	}
	return nil, nil
}

// collectGuards maps each annotated field object to the name of the
// mutex guarding it (the last path component of the annotation, i.e.
// the sibling field name).
func collectGuards(pass *analysis.Pass) map[*types.Var]string {
	guards := make(map[*types.Var]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := walk.GuardAnnotation(field.Doc, field.Comment)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

// importedGuards resolves guarded-field facts of dependency packages:
// it maps each imported field object accessed in this package to its
// guarding sibling mutex name, using the exporting package's Guards
// facts ("Type.Field" → mutex field name).
func importedGuards(pass *analysis.Pass) map[*types.Var]string {
	guards := make(map[*types.Var]string)
	for _, fp := range pass.Facts.All() {
		if len(fp.Guards) == 0 {
			continue
		}
		// Find the imported package object among this package's imports.
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() != fp.Path {
				continue
			}
			for key, mu := range fp.Guards {
				typeName, fieldName, ok := cutLast(key)
				if !ok {
					continue
				}
				tn, ok := imp.Scope().Lookup(typeName).(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					if f := st.Field(i); f.Name() == fieldName {
						guards[f] = mu
					}
				}
			}
		}
	}
	return guards
}

func cutLast(key string) (before, after string, ok bool) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return key[:i], key[i+1:], true
		}
	}
	return "", "", false
}

// lockEvent is one Lock/Unlock call on some mutex expression.
type lockEvent struct {
	key    string // types.ExprString of the mutex expr, e.g. "sess.mu"
	pos    token.Pos
	unlock bool
}

var lockMethods = map[string]bool{
	"Lock": false, "RLock": false,
	"Unlock": true, "RUnlock": true,
}

func checkScope(pass *analysis.Pass, fi *directives.FuncInfo, sc walk.Scope, guards, imported map[*types.Var]string) {
	info := pass.TypesInfo

	// Locked annotations apply to the declared function's own body;
	// function literals run later, under whatever locks they take
	// themselves.
	var locked []string
	if sc.Lit == nil {
		locked = fi.Locked
	}

	var events []lockEvent
	walk.InScope(sc.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		unlock, known := lockMethods[sel.Sel.Name]
		if !known {
			return true
		}
		if fn, ok := info.Uses[sel.Sel].(*types.Func); !ok || fn.Type().(*types.Signature).Recv() == nil {
			return true
		}
		if unlock && walk.InDefer(stack) {
			return true // deferred unlock runs at return, after body accesses
		}
		if unlock && walk.TerminalInList(stack, sc.Body) {
			// `if cond { mu.Unlock(); return }` — code after the block
			// only runs when the branch was not taken, i.e. with the
			// lock still held, so this event must not end the region.
			return true
		}
		events = append(events, lockEvent{key: types.ExprString(sel.X), pos: call.Pos(), unlock: unlock})
		return true
	})

	walk.InScope(sc.Body, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		guard, guarded := guards[v]
		if !guarded {
			guard, guarded = imported[v]
		}
		if !guarded {
			return true
		}
		key := types.ExprString(sel.X) + "." + guard
		for _, l := range locked {
			if l == key {
				return true
			}
		}
		if !heldAt(events, key, sel.Pos()) {
			pass.Reportf(sel.Sel.Pos(), "%s is guarded by %s but accessed without holding it; lock first, or annotate the function `//mnnfast:locked %s` if every caller holds it", v.Name(), key, key)
		}
		return true
	})
}

// heldAt reports whether the nearest lock event on key before pos is a
// lock (source order within the scope).
func heldAt(events []lockEvent, key string, pos token.Pos) bool {
	best := lockEvent{pos: token.NoPos}
	for _, e := range events {
		if e.key == key && e.pos < pos && e.pos > best.pos {
			best = e
		}
	}
	return best.pos.IsValid() && !best.unlock
}
