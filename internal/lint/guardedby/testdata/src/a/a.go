// Package fixture exercises guardedby: unlocked access, access after
// Unlock, and the allowed shapes (lock held, deferred unlock,
// //mnnfast:locked callees, RWMutex readers).
package fixture

import "sync"

type session struct {
	mu    sync.RWMutex
	story []string // guarded by mu
	ready bool     // guarded by mu
}

// OKLocked holds the lock across the access; the deferred unlock runs
// at return and does not end the critical section early.
func OKLocked(s *session) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.story = append(s.story, "x")
	return len(s.story)
}

// OKReader holds the read lock.
func OKReader(s *session) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ready
}

// Unlocked never takes the lock.
func Unlocked(s *session) int {
	return len(s.story) // want "story is guarded by s.mu but accessed without holding it"
}

// AfterUnlock reads past the end of the critical section.
func AfterUnlock(s *session) bool {
	s.mu.Lock()
	s.story = nil
	s.mu.Unlock()
	return s.ready // want "ready is guarded by s.mu but accessed without holding it"
}

// OKEarlyExit unlocks inside an error branch that returns; the code
// after the branch runs only when the branch was not taken, i.e. with
// the lock still held.
func OKEarlyExit(s *session, fail bool) bool {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return false
	}
	r := s.ready
	s.mu.Unlock()
	return r
}

// renderLocked is only ever called with s.mu held; the annotation
// carries the caller's lock into this scope.
//
//mnnfast:locked s.mu
func renderLocked(s *session) int {
	return len(s.story)
}

func OKDelegates(s *session) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return renderLocked(s)
}

// Closure scopes take their own locks; the literal here is fine, but
// the enclosing function's plain read is not.
func Mixed(s *session) func() int {
	f := func() int {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return len(s.story)
	}
	_ = s.ready // want "ready is guarded by s.mu but accessed without holding it"
	return f
}

// Suppressed documents an access that is safe by construction (the
// session is not yet shared).
func NewSession() *session {
	s := &session{}
	//mnnfast:allow guardedby not yet published
	s.ready = true
	return s
}
