// Package lockscan extracts a package's lock-acquisition structure: the
// lock classes each function may acquire (directly or through
// same-package callees), the classes it still holds when it returns,
// and the acquisition-order edges "class A was held when class B was
// acquired". Two consumers share it: factbuild serializes the result
// into the package's exported facts, and the lockorder analyzer merges
// local edges with imported ones to detect cross-package ordering
// cycles.
//
// Lock classes are stable cross-package identifiers:
//
//	pkgpath.Type.field   a mutex struct field (receiver type stripped
//	                     of pointers, embedded paths joined with dots)
//	pkgpath.var          a package-level mutex variable
//
// Locks stored in local variables have no stable class and are skipped.
// Held-ness uses the same source-order heuristic as guardedby: the
// nearest preceding Lock/Unlock event on the class decides, deferred
// unlocks hold to function return, and early-exit unlocks
// (`if c { mu.Unlock(); return }`) do not end the region for the code
// after the block. Two shapes beyond direct calls are modeled:
//
//   - retention: a function whose last event on a class is a lock still
//     holds it when it returns (the lockForBatch shape — acquire on
//     behalf of the caller). Call sites inherit retained classes into
//     the caller's held set, to a fixpoint across same-package
//     functions and through imported Retains facts.
//   - loop-carried self hold: acquiring a class inside a loop — directly
//     or via a retaining callee — without releasing it before the loop
//     ends means the next iteration acquires while the previous hold is
//     live. That yields a self edge C→C, the multi-lock dispatcher
//     shape a `//mnnfast:lockorder C < C` self pin blesses.
package lockscan

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mnnfast/internal/lint/directives"
	"mnnfast/internal/lint/facts"
	"mnnfast/internal/lint/walk"
)

// Edge is one locally-observed ordering edge: From was held when To was
// acquired at Pos inside function Func (a facts symbol).
type Edge struct {
	From, To string
	Pos      token.Pos
	Func     string
}

// Result is the lock structure of one package.
type Result struct {
	// Acquires maps each function symbol to the sorted set of lock
	// classes it may acquire, transitively through same-package callees
	// and through imported callees' exported Acquires facts.
	Acquires map[string][]string
	// Retains maps each function symbol to the sorted classes still
	// held when it returns.
	Retains map[string][]string
	// Edges are the ordering edges observed in this package's bodies.
	Edges []Edge
}

// Symbol returns the facts symbol of a declared function: "Name" or
// "Recv.Name" with pointer receivers stripped.
func Symbol(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.ParenExpr:
			t = u.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		case *ast.Ident:
			return u.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// ObjSymbol returns the facts symbol for a function object: "Name" or
// "Recv.Name".
func ObjSymbol(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// ClassOf resolves a mutex-valued expression to its lock class, or ""
// when it has no stable class (locals, map/slice elements, complex
// expressions).
func ClassOf(info *types.Info, expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return ClassOf(info, e.X)
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil {
			return ""
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return "" // local or parameter: per-instance, no stable class
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return fieldClass(sel)
		}
		if x, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[x].(*types.PkgName); isPkg {
				if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
					return v.Pkg().Path() + "." + v.Name()
				}
			}
		}
	}
	return ""
}

// fieldClass names the class of a field selection: the receiver's named
// type plus the field path (embedded hops included).
func fieldClass(sel *types.Selection) string {
	named := derefNamed(sel.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	parts := []string{named.Obj().Pkg().Path(), named.Obj().Name()}
	t := sel.Recv()
	for _, idx := range sel.Index() {
		s := derefStruct(t)
		if s == nil || idx >= s.NumFields() {
			return ""
		}
		f := s.Field(idx)
		parts = append(parts, f.Name())
		t = f.Type()
	}
	return strings.Join(parts, ".")
}

func derefNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func derefStruct(t types.Type) *types.Struct {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	s, _ := t.Underlying().(*types.Struct)
	return s
}

var lockMethods = map[string]bool{
	"Lock": false, "RLock": false,
	"Unlock": true, "RUnlock": true,
}

// event is one classified lock event in a scope: a Lock/Unlock call, or
// a synthesized hold for a class a callee retained past its return.
type event struct {
	class  string
	pos    token.Pos
	unlock bool
	loop   ast.Node // innermost enclosing loop, nil outside loops
}

// lockCall classifies a call expression as a sync lock event, resolving
// the mutex expression's class. Non-lock calls and calls on lockers
// outside package sync return ok=false.
func lockCall(info *types.Info, call *ast.CallExpr) (class string, unlock, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	unlock, known := lockMethods[sel.Sel.Name]
	if !known {
		return "", false, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	msel := info.Selections[sel]
	if msel != nil && len(msel.Index()) > 1 {
		// Promoted method: the receiver type embeds the mutex. The class
		// is the receiver type plus the embedded field path.
		parts := msel.Index()
		t := msel.Recv()
		named := derefNamed(t)
		if named == nil || named.Obj().Pkg() == nil {
			return "", unlock, false
		}
		classParts := []string{named.Obj().Pkg().Path(), named.Obj().Name()}
		for _, idx := range parts[:len(parts)-1] {
			s := derefStruct(t)
			if s == nil || idx >= s.NumFields() {
				return "", unlock, false
			}
			f := s.Field(idx)
			classParts = append(classParts, f.Name())
			t = f.Type()
		}
		return strings.Join(classParts, "."), unlock, true
	}
	class = ClassOf(info, sel.X)
	return class, unlock, class != ""
}

// callSite is one named call in a scope.
type callSite struct {
	callee *types.Func
	pos    token.Pos
	loop   ast.Node // innermost enclosing loop at the call, nil outside
	inDecl bool     // in the declared body (not a nested literal)
}

// fnScan is the per-function raw scan state.
type fnScan struct {
	fi    *directives.FuncInfo
	sym   string
	base  []string // resolved //mnnfast:locked classes
	raw   []event  // declared-body lock events, source order
	calls []callSite
	// deferred holds the classes with a deferred unlock in the declared
	// body: held for the rest of the body, but released at return, so
	// they cancel retention.
	deferred map[string]bool
	// litEvents holds each nested literal's own events (literals run
	// under their own locks, not the declaration's).
	litEvents [][]event
	litCalls  [][]callSite
}

// Scan computes the lock structure of a package. di is the package's
// directive info, deps the imported facts of its dependencies (nil is
// fine).
func Scan(fset *token.FileSet, info *types.Info, di *directives.Info, deps *facts.Set) *Result {
	res := &Result{
		Acquires: make(map[string][]string),
		Retains:  make(map[string][]string),
	}

	var scans []*fnScan
	bySym := make(map[string]*fnScan)
	for _, fi := range di.Funcs() {
		if fi.Decl.Body == nil {
			continue
		}
		fs := &fnScan{fi: fi, sym: Symbol(fi.Decl), base: lockedClasses(info, fi)}
		for _, sc := range walk.Scopes(fi.Decl) {
			events, calls, deferred := collectScope(info, sc)
			if sc.Lit == nil {
				fs.raw, fs.calls, fs.deferred = events, calls, deferred
			} else {
				fs.litEvents = append(fs.litEvents, events)
				fs.litCalls = append(fs.litCalls, calls)
			}
		}
		scans = append(scans, fs)
		if _, dup := bySym[fs.sym]; !dup {
			bySym[fs.sym] = fs
		}
	}

	// Retained classes to a fixpoint: a caller inherits what a callee
	// retains unless it releases it later in its own body.
	retains := make(map[string]map[string]bool)
	calleeRetains := func(fs *fnScan, cs callSite) []string {
		if local := localCallee(di, bySym, cs.callee); local != nil {
			var out []string
			for c := range retains[local.sym] {
				out = append(out, c)
			}
			sort.Strings(out)
			return out
		}
		if cs.callee.Pkg() != nil {
			if ff := deps.FuncFact(cs.callee.Pkg().Path(), ObjSymbol(cs.callee)); ff != nil {
				return ff.Retains
			}
		}
		return nil
	}
	for _, fs := range scans {
		retains[fs.sym] = retainedClasses(fs.raw, nil, fs.deferred)
	}
	for iter := 0; iter < 10; iter++ {
		changed := false
		for _, fs := range scans {
			synth := synthEvents(fs, calleeRetains)
			r := retainedClasses(fs.raw, synth, fs.deferred)
			if !sameSet(retains[fs.sym], r) {
				retains[fs.sym] = r
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Acquires: direct raw locks plus everything callees may acquire,
	// same-package fixpoint plus imported Acquires facts (already
	// transitive at their home).
	acquires := make(map[string]map[string]bool)
	for _, fs := range scans {
		set := make(map[string]bool)
		for _, e := range fs.raw {
			if !e.unlock {
				set[e.class] = true
			}
		}
		for _, evs := range fs.litEvents {
			for _, e := range evs {
				if !e.unlock {
					set[e.class] = true
				}
			}
		}
		acquires[fs.sym] = set
	}
	allCalls := func(fs *fnScan) []callSite {
		out := append([]callSite(nil), fs.calls...)
		for _, cs := range fs.litCalls {
			out = append(out, cs...)
		}
		return out
	}
	for _, fs := range scans {
		for _, cs := range allCalls(fs) {
			if cs.callee.Pkg() == nil || localCallee(di, bySym, cs.callee) != nil {
				continue
			}
			if ff := deps.FuncFact(cs.callee.Pkg().Path(), ObjSymbol(cs.callee)); ff != nil {
				for _, c := range ff.Acquires {
					acquires[fs.sym][c] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fs := range scans {
			for _, cs := range allCalls(fs) {
				local := localCallee(di, bySym, cs.callee)
				if local == nil {
					continue
				}
				for c := range acquires[local.sym] {
					if !acquires[fs.sym][c] {
						acquires[fs.sym][c] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge emission per function, with retained-callee holds synthesized
	// into the event stream.
	for _, fs := range scans {
		emitEdges(res, fs, fs.raw, synthEvents(fs, calleeRetains), fs.base, fs.calls, func(cs callSite) []string {
			if local := localCallee(di, bySym, cs.callee); local != nil {
				return setToSorted(acquires[local.sym])
			}
			if cs.callee.Pkg() != nil {
				if ff := deps.FuncFact(cs.callee.Pkg().Path(), ObjSymbol(cs.callee)); ff != nil {
					return ff.Acquires
				}
			}
			return nil
		})
		for i := range fs.litEvents {
			emitEdges(res, fs, fs.litEvents[i], nil, nil, fs.litCalls[i], func(cs callSite) []string {
				if local := localCallee(di, bySym, cs.callee); local != nil {
					return setToSorted(acquires[local.sym])
				}
				if cs.callee.Pkg() != nil {
					if ff := deps.FuncFact(cs.callee.Pkg().Path(), ObjSymbol(cs.callee)); ff != nil {
						return ff.Acquires
					}
				}
				return nil
			})
		}
	}

	for sym, set := range acquires {
		if s := setToSorted(set); len(s) > 0 {
			res.Acquires[sym] = s
		}
	}
	for sym, set := range retains {
		if s := setToSorted(set); len(s) > 0 {
			res.Retains[sym] = s
		}
	}
	dedupEdges(res)
	return res
}

// localCallee resolves a callee to this package's scan state, or nil.
func localCallee(di *directives.Info, bySym map[string]*fnScan, fn *types.Func) *fnScan {
	if di.ByObj(fn) == nil {
		return nil
	}
	return bySym[ObjSymbol(fn)]
}

// collectScope gathers the raw lock events, named call sites, and
// deferred-unlock classes of one scope in source order.
func collectScope(info *types.Info, sc walk.Scope) ([]event, []callSite, map[string]bool) {
	var events []event
	var calls []callSite
	deferred := make(map[string]bool)
	walk.InScope(sc.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, unlock, isLock := lockCall(info, call); isLock {
			if unlock && walk.InDefer(stack) {
				deferred[class] = true
				return true
			}
			if unlock && walk.TerminalInList(stack, sc.Body) {
				return true
			}
			events = append(events, event{class: class, pos: call.Pos(), unlock: unlock, loop: walk.EnclosingLoop(stack)})
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok {
			calls = append(calls, callSite{callee: fn, pos: call.Pos(), loop: walk.EnclosingLoop(stack), inDecl: sc.Lit == nil})
		}
		return true
	})
	return events, calls, deferred
}

// synthEvents turns each call to a retaining callee into a synthetic
// lock event at the call site, so held-set queries downstream of the
// call see the inherited hold.
func synthEvents(fs *fnScan, calleeRetains func(*fnScan, callSite) []string) []event {
	var synth []event
	for _, cs := range fs.calls {
		for _, c := range calleeRetains(fs, cs) {
			synth = append(synth, event{class: c, pos: cs.pos, loop: cs.loop})
		}
	}
	return synth
}

// retainedClasses returns the classes whose last event (raw plus
// synthesized, source order) is a lock — still held at return. A
// deferred unlock releases its class at return, cancelling retention.
func retainedClasses(raw, synth []event, deferred map[string]bool) map[string]bool {
	all := merged(raw, synth)
	last := make(map[string]event)
	for _, e := range all {
		if prev, ok := last[e.class]; !ok || e.pos >= prev.pos {
			last[e.class] = e
		}
	}
	out := make(map[string]bool)
	for class, e := range last {
		if !e.unlock && !deferred[class] {
			out[class] = true
		}
	}
	return out
}

func merged(raw, synth []event) []event {
	all := make([]event, 0, len(raw)+len(synth))
	all = append(all, raw...)
	all = append(all, synth...)
	sort.Slice(all, func(i, j int) bool { return all[i].pos < all[j].pos })
	return all
}

// emitEdges produces the ordering edges of one scope: direct
// acquisitions against the held set, loop-carried self edges (direct or
// inherited), and held→callee-acquires edges for calls under lock.
func emitEdges(res *Result, fs *fnScan, raw, synth []event, base []string, calls []callSite, calleeAcquires func(callSite) []string) {
	all := merged(raw, synth)
	heldAt := func(pos token.Pos) []string {
		held := append([]string(nil), base...)
		last := make(map[string]event)
		for _, e := range all {
			if e.pos < pos {
				if prev, ok := last[e.class]; !ok || e.pos > prev.pos {
					last[e.class] = e
				}
			}
		}
		for class, e := range last {
			if !e.unlock {
				held = append(held, class)
			}
		}
		sort.Strings(held)
		return held
	}

	for _, e := range raw {
		if e.unlock {
			continue
		}
		for _, held := range heldAt(e.pos) {
			res.Edges = append(res.Edges, Edge{From: held, To: e.class, Pos: e.pos, Func: fs.sym})
		}
		if e.loop != nil && !releasedBefore(raw, e.class, e.pos, e.loop.End()) {
			res.Edges = append(res.Edges, Edge{From: e.class, To: e.class, Pos: e.pos, Func: fs.sym})
		}
	}
	// Synthesized holds acquired in a loop and not released before the
	// loop ends: the dispatcher shape, one self edge per class.
	for _, e := range synth {
		if e.loop != nil && !releasedBefore(raw, e.class, e.pos, e.loop.End()) {
			res.Edges = append(res.Edges, Edge{From: e.class, To: e.class, Pos: e.pos, Func: fs.sym})
		}
	}
	for _, cs := range calls {
		held := heldAt(cs.pos)
		if len(held) == 0 {
			continue
		}
		for _, to := range calleeAcquires(cs) {
			for _, from := range held {
				res.Edges = append(res.Edges, Edge{From: from, To: to, Pos: cs.pos, Func: fs.sym})
			}
		}
	}
}

// releasedBefore reports whether class is unlocked in (pos, end).
func releasedBefore(events []event, class string, pos, end token.Pos) bool {
	for _, e := range events {
		if e.class == class && e.unlock && e.pos > pos && e.pos < end {
			return true
		}
	}
	return false
}

// lockedClasses resolves a function's //mnnfast:locked expressions
// ("sess.mu", "it.sess.mu") to lock classes by walking the spelled path
// through the types of the function's identifiers and struct fields:
// the root identifier is looked up among the function's parameters,
// receiver, and local definitions; each subsequent component is a field
// hop; the final component names the mutex field.
func lockedClasses(info *types.Info, fi *directives.FuncInfo) []string {
	if len(fi.Locked) == 0 {
		return nil
	}
	seen := make(map[string]bool)
	var classes []string
	for _, spec := range fi.Locked {
		if class := resolveLockedExpr(info, fi.Decl, spec); class != "" && !seen[class] {
			seen[class] = true
			classes = append(classes, class)
		}
	}
	sort.Strings(classes)
	return classes
}

func resolveLockedExpr(info *types.Info, decl *ast.FuncDecl, spec string) string {
	parts := strings.Split(spec, ".")
	if len(parts) < 2 {
		return "" // a bare local mutex has no stable class
	}
	root := findVar(info, decl, parts[0])
	if root == nil {
		return ""
	}
	t := root.Type()
	for _, name := range parts[1 : len(parts)-1] {
		f := fieldByName(t, name)
		if f == nil {
			return ""
		}
		t = f.Type()
	}
	last := parts[len(parts)-1]
	if fieldByName(t, last) == nil {
		return ""
	}
	named := derefNamed(t)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + last
}

// findVar finds a variable named name defined anywhere in the function:
// receiver, parameter, or local.
func findVar(info *types.Info, decl *ast.FuncDecl, name string) *types.Var {
	var found *types.Var
	ast.Inspect(decl, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		if v, ok := info.Defs[id].(*types.Var); ok && !v.IsField() {
			found = v
		}
		return found == nil
	})
	return found
}

func fieldByName(t types.Type, name string) *types.Var {
	s := derefStruct(t)
	if s == nil {
		return nil
	}
	for i := 0; i < s.NumFields(); i++ {
		if f := s.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

func setToSorted(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// dedupEdges removes duplicate (From, To, Func) edges keeping the
// earliest position, and sorts for determinism.
func dedupEdges(res *Result) {
	type key struct{ from, to, fn string }
	best := make(map[key]Edge)
	var order []key
	for _, e := range res.Edges {
		k := key{e.From, e.To, e.Func}
		if prev, ok := best[k]; !ok || e.Pos < prev.Pos {
			if !ok {
				order = append(order, k)
			}
			best[k] = e
		}
	}
	res.Edges = res.Edges[:0]
	for _, k := range order {
		res.Edges = append(res.Edges, best[k])
	}
	sort.Slice(res.Edges, func(i, j int) bool {
		a, b := res.Edges[i], res.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Pos < b.Pos
	})
}

// ResolvePin expands a pin name as spelled in a directive to a full
// class: names containing a "/" are already package-qualified, anything
// else is relative to pkgPath.
func ResolvePin(pkgPath, name string) string {
	if strings.Contains(name, "/") {
		return name
	}
	return pkgPath + "." + name
}
