// Package fixture exercises lockorder inside one package: both halves
// of an A→B/B→A cycle, a blessed ordering whose contradiction is still
// flagged, loop-carried same-class acquisition (direct and through a
// retaining helper) with and without a self pin, and a malformed
// directive.
//
//mnnfast:lockorder Outer.mu < Inner.mu outer wraps inner by design
//mnnfast:lockorder Conn.mu < Conn.mu drain acquires connections in index order
package fixture

import "sync"

type Svc struct{ mu sync.Mutex }

type Store struct{ mu sync.Mutex }

// AB acquires Svc.mu then Store.mu; BA does the reverse, so each edge
// closes a cycle through the other and both sites are flagged.
func AB(s *Svc, st *Store) {
	s.mu.Lock()
	st.mu.Lock() // want "acquiring fixture.Store.mu while holding fixture.Svc.mu creates a lock-order cycle"
	st.mu.Unlock()
	s.mu.Unlock()
}

func BA(s *Svc, st *Store) {
	st.mu.Lock()
	s.mu.Lock() // want "acquiring fixture.Svc.mu while holding fixture.Store.mu creates a lock-order cycle"
	s.mu.Unlock()
	st.mu.Unlock()
}

type Outer struct{ mu sync.Mutex }

type Inner struct{ mu sync.Mutex }

// Nested acquires in the pinned direction: accepted, no finding even
// though NestedBad gives the graph a reverse edge.
func Nested(o *Outer, i *Inner) {
	o.mu.Lock()
	i.mu.Lock()
	i.mu.Unlock()
	o.mu.Unlock()
}

// NestedBad contradicts the pin; only this side is reported.
func NestedBad(o *Outer, i *Inner) {
	i.mu.Lock()
	o.mu.Lock() // want "acquiring fixture.Outer.mu while holding fixture.Inner.mu creates a lock-order cycle"
	o.mu.Unlock()
	i.mu.Unlock()
}

// Drain acquires many Svc locks in a loop without releasing between
// iterations: the loop-carried same-class shape, unpinned, flagged.
func Drain(ss []Svc) {
	for i := range ss {
		ss[i].mu.Lock() // want "acquiring fixture.Svc.mu while an earlier fixture.Svc.mu is still held"
	}
	for i := range ss {
		ss[i].mu.Unlock()
	}
}

type Conn struct{ mu sync.Mutex }

// acquireConn retains the lock past its return — the caller inherits
// the hold at the call site.
func acquireConn(c *Conn) {
	c.mu.Lock()
}

// DrainConns shows the same shape through the retaining helper, blessed
// by the Conn.mu self pin above: accepted.
func DrainConns(cs []Conn) {
	for i := range cs {
		acquireConn(&cs[i])
	}
	for i := range cs {
		cs[i].mu.Unlock()
	}
}

//mnnfast:lockorder Svc.mu before Store.mu // want "malformed //mnnfast:lockorder directive"
func malformedPinAnchor() {}
