// Package top closes cycles whose other half lives in dep's exported
// facts: a B→A acquisition against dep's A→B edge, a pinned-direction
// acquisition contradicted by dep's D→C edge, and a loop over dep's
// retaining Acquire helper.
package top

import "dep"

// CycleBA acquires B then A; dep.LockAB exported A→B, so this edge
// closes the cycle even though neither package sees both halves.
func CycleBA() {
	dep.MuB.Lock()
	dep.MuA.Lock() // want "acquiring dep.MuA while holding dep.MuB creates a lock-order cycle"
	dep.MuA.Unlock()
	dep.MuB.Unlock()
}

// PinnedCD acquires in dep's pinned C < D direction — but dep itself
// acquires D then C, so the pin is contradicted in the dependency and
// this (only local) site carries the report.
func PinnedCD() {
	dep.MuC.Lock()
	dep.MuD.Lock() // want "pinned order dep.MuC < dep.MuD is contradicted in a dependency"
	dep.MuD.Unlock()
	dep.MuC.Unlock()
}

// DrainSessions inherits the hold dep.Acquire retains; acquiring the
// next session while the previous is still held is the same-class
// ordered-acquisition shape, unpinned here, so it is flagged.
func DrainSessions(ss []*dep.Sess) {
	for _, s := range ss {
		dep.Acquire(s) // want "acquiring dep.Sess.mu while an earlier dep.Sess.mu is still held"
	}
	for _, s := range ss {
		dep.Release(s)
	}
}
