// Package dep is the dependency half of the cross-package lockorder
// fixture: it exports ordering edges (MuA before MuB, MuD before MuC),
// a pin for the C/D pair, and a lock-retaining session helper. Nothing
// is flagged here — each of its orderings is locally consistent.
//
//mnnfast:lockorder MuC < MuD C guards the registry that owns D
package dep

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex
	MuC sync.Mutex
	MuD sync.Mutex
)

// LockAB establishes the edge MuA → MuB.
func LockAB() {
	MuA.Lock()
	MuB.Lock()
	MuB.Unlock()
	MuA.Unlock()
}

// LockDC establishes the edge MuD → MuC, contradicting this package's
// own pin; the contradiction is only visible once a dependent package
// acquires in the pinned direction.
func LockDC() {
	MuD.Lock()
	MuC.Lock()
	MuC.Unlock()
	MuD.Unlock()
}

// Sess is a per-session lock owner.
type Sess struct {
	mu sync.Mutex
	N  int
}

// Acquire locks the session and hands the hold to the caller — the
// retained-lock fact dependents inherit.
func Acquire(s *Sess) {
	s.mu.Lock()
}

// Release is the matching unlock.
func Release(s *Sess) {
	s.mu.Unlock()
}
