// Package lockorder detects lock-acquisition-order cycles — the static
// shape of a potential deadlock. It merges the ordering edges observed
// in the current package (via internal/lint/lockscan) with the edges
// its dependencies exported as facts, so a cycle split across packages
// (server holds a session lock while calling into a batcher that takes
// its own, while the batcher's flush path re-enters the server) is
// caught even though each package looks consistent alone.
//
// An edge A→B means "a lock of class A was held while a lock of class B
// was acquired". Two kinds of findings:
//
//   - a self edge A→A: several locks of one class acquired in order
//     (the batch dispatcher locking every session in a batch). Legal
//     only when deliberately designed; bless it with a self pin
//     `//mnnfast:lockorder A < A <reason>`.
//   - a cycle A→…→B→…→A: the classic deadlock shape. The intended
//     direction is pinned with `//mnnfast:lockorder A < B`; edges in the
//     pinned direction stop being reported and any edge contradicting a
//     pin is flagged where it happens.
//
// Each package reports only edges observed in its own bodies — a cycle
// that closes here is reported here, the half living in a dependency
// was either reported there or is the blessed direction. Lock classes
// are package-qualified ("pkgpath.Type.field", "pkgpath.var"); pins
// spell them relative to the pinning package, or fully qualified with a
// "/" for cross-package pins.
package lockorder

import (
	"go/token"

	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/directives"
	"mnnfast/internal/lint/lockscan"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "flag lock-acquisition-order cycles (potential deadlocks) across packages; pin intended orderings with //mnnfast:lockorder A < B",
	Run:  run,
}

// edge is one merged ordering edge: local edges carry a token.Pos,
// imported ones only the exporting package's position string.
type edge struct {
	from, to string
	pos      token.Pos // valid for local edges only
	posStr   string    // imported position ("pkg: file.go:l:c")
	fn       string
}

func run(pass *analysis.Pass) (any, error) {
	di := directives.Collect(pass.Files, pass.TypesInfo)
	locks := lockscan.Scan(pass.Fset, pass.TypesInfo, di, pass.Facts)

	pins, malformed := directives.Pins(pass.Files)
	for _, pos := range malformed {
		pass.Reportf(pos, "malformed //mnnfast:lockorder directive; want `//mnnfast:lockorder A < B [reason]`")
	}
	blessed := make(map[[2]string]bool)
	for _, p := range pins {
		blessed[[2]string{
			lockscan.ResolvePin(pass.Pkg.Path(), p.Before),
			lockscan.ResolvePin(pass.Pkg.Path(), p.After),
		}] = true
	}
	for _, fp := range pass.Facts.All() {
		for _, p := range fp.Pins {
			blessed[[2]string{p.Before, p.After}] = true
		}
	}

	// Merge: imported edges first (dependency order), then local ones,
	// deduplicated by (from, to). A local representative wins so cycle
	// reports can point at source positions.
	var (
		edges []edge
		seen  = make(map[[2]string]int)
	)
	add := func(e edge) {
		k := [2]string{e.from, e.to}
		if i, ok := seen[k]; ok {
			if !edges[i].pos.IsValid() && e.pos.IsValid() {
				edges[i] = e
			}
			return
		}
		seen[k] = len(edges)
		edges = append(edges, e)
	}
	for _, fp := range pass.Facts.All() {
		for _, fe := range fp.Edges {
			add(edge{from: fe.From, to: fe.To, posStr: fp.Path + ": " + fe.Pos, fn: fe.Func})
		}
	}
	for _, le := range locks.Edges {
		add(edge{from: le.From, to: le.To, pos: le.Pos, fn: le.Func})
	}

	next := make(map[string][]edge)
	for _, e := range edges {
		next[e.from] = append(next[e.from], e)
	}

	for _, e := range edges {
		if !e.pos.IsValid() {
			continue // imported edge: its home package reports it
		}
		if e.from == e.to {
			if !blessed[[2]string{e.from, e.to}] {
				pass.Reportf(e.pos, "acquiring %s while an earlier %s is still held; ordered same-class acquisition deadlocks unless globally ordered — pin `//mnnfast:lockorder %s < %s` if the order is enforced by design", e.to, e.from, short(pass, e.from), short(pass, e.to))
			}
			continue
		}
		back := path(next, e.to, e.from)
		if back == nil {
			continue
		}
		if blessed[[2]string{e.from, e.to}] {
			// This direction is the pinned one; the contradicting path is
			// the problem. If it has a local edge it is (or will be)
			// reported on its own; only a fully imported path needs a
			// report here, at the only local position we have.
			if hasLocal(back) {
				continue
			}
			pass.Reportf(e.pos, "pinned order %s < %s is contradicted in a dependency: %s", e.from, e.to, describe(back))
			continue
		}
		pass.Reportf(e.pos, "acquiring %s while holding %s creates a lock-order cycle: %s; pin the intended order with `//mnnfast:lockorder %s < %s` if this direction is the designed one", e.to, e.from, describe(back), short(pass, e.from), short(pass, e.to))
	}
	return nil, nil
}

// path returns a shortest edge path from → to over the merged graph,
// or nil.
func path(next map[string][]edge, from, to string) []edge {
	type item struct {
		node string
		via  []edge
	}
	visited := map[string]bool{from: true}
	queue := []item{{node: from}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, e := range next[it.node] {
			if e.to == to {
				return append(it.via, e)
			}
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			queue = append(queue, item{node: e.to, via: append(append([]edge(nil), it.via...), e)})
		}
	}
	return nil
}

func hasLocal(es []edge) bool {
	for _, e := range es {
		if e.pos.IsValid() {
			return true
		}
	}
	return false
}

// describe renders a path for a diagnostic: "A held→B acquired in f (file:l:c)".
func describe(es []edge) string {
	s := ""
	for i, e := range es {
		if i > 0 {
			s += ", then "
		}
		where := e.posStr
		if where == "" {
			where = "this package, func " + e.fn
		}
		s += e.from + " is held while acquiring " + e.to + " (" + where + ")"
	}
	return s
}

// short strips the current package's path prefix from a class so the
// suggested pin directive reads the way it would be spelled locally.
func short(pass *analysis.Pass, class string) string {
	prefix := pass.Pkg.Path() + "."
	if len(class) > len(prefix) && class[:len(prefix)] == prefix {
		return class[len(prefix):]
	}
	return class
}
