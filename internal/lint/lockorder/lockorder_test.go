package lockorder_test

import (
	"testing"

	"mnnfast/internal/lint/linttest"
	"mnnfast/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "a")
}

// TestLockorderCrossPackage closes cycles whose halves live in
// different packages, with the dependency's edges, pins, and retained
// locks arriving through round-tripped facts.
func TestLockorderCrossPackage(t *testing.T) {
	linttest.RunMulti(t, lockorder.Analyzer, "cross")
}
