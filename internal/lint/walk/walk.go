// Package walk holds the small AST traversal helpers shared by the
// mnnfast-lint analyzers: ancestor-stack walking, panic-path detection,
// per-function-literal scope splitting, and object-use queries.
package walk

import (
	"go/ast"
	"go/types"
)

// WithStack walks root in depth-first order invoking fn with the node
// and its ancestor stack (stack[len-1] == n). Returning false from fn
// prunes the subtree.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			// Inspect sends no closing nil for a pruned subtree, so pop
			// n here ourselves.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// InPanicArg reports whether some ancestor on stack is a call to the
// builtin panic — i.e. the current node only executes while the
// goroutine is already dying, where allocation no longer matters.
func InPanicArg(stack []ast.Node, info *types.Info) bool {
	for _, anc := range stack[:len(stack)-1] {
		call, ok := anc.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			continue
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
			return true
		}
	}
	return false
}

// Scope is one analysis scope: a function body analyzed independently
// of the function literals nested inside it.
type Scope struct {
	// Body is the scope's block.
	Body *ast.BlockStmt
	// Lit is the function literal owning Body, nil for the declared
	// function itself.
	Lit *ast.FuncLit
}

// Scopes splits a declared function into per-function scopes: the
// declaration body with nested literals excluded, plus one scope per
// nested function literal (recursively).
func Scopes(decl *ast.FuncDecl) []Scope {
	if decl.Body == nil {
		return nil
	}
	scopes := []Scope{{Body: decl.Body}}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, Scope{Body: lit.Body, Lit: lit})
		}
		return true
	})
	return scopes
}

// InScope walks body in depth-first order, skipping nested function
// literal bodies (they are their own scopes).
func InScope(body *ast.BlockStmt, fn func(n ast.Node, stack []ast.Node) bool) {
	WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			return false
		}
		return fn(n, stack)
	})
}

// UsesObj reports whether any identifier under n resolves to obj.
func UsesObj(n ast.Node, info *types.Info, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
