// Package walk holds the small AST traversal helpers shared by the
// mnnfast-lint analyzers: ancestor-stack walking, panic-path detection,
// per-function-literal scope splitting, and object-use queries.
package walk

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

var guardRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// GuardAnnotation extracts a `// guarded by <mu>` annotation from a
// struct field's comment groups, returning the guarding sibling field
// name (the last path component of the annotation), or "".
func GuardAnnotation(groups ...*ast.CommentGroup) string {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardRE.FindStringSubmatch(c.Text); m != nil {
				g := m[1]
				if i := strings.LastIndex(g, "."); i >= 0 {
					g = g[i+1:]
				}
				return g
			}
		}
	}
	return ""
}

// WithStack walks root in depth-first order invoking fn with the node
// and its ancestor stack (stack[len-1] == n). Returning false from fn
// prunes the subtree.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			// Inspect sends no closing nil for a pruned subtree, so pop
			// n here ourselves.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// InPanicArg reports whether some ancestor on stack is a call to the
// builtin panic — i.e. the current node only executes while the
// goroutine is already dying, where allocation no longer matters.
func InPanicArg(stack []ast.Node, info *types.Info) bool {
	for _, anc := range stack[:len(stack)-1] {
		call, ok := anc.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			continue
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
			return true
		}
	}
	return false
}

// Scope is one analysis scope: a function body analyzed independently
// of the function literals nested inside it.
type Scope struct {
	// Body is the scope's block.
	Body *ast.BlockStmt
	// Lit is the function literal owning Body, nil for the declared
	// function itself.
	Lit *ast.FuncLit
}

// Scopes splits a declared function into per-function scopes: the
// declaration body with nested literals excluded, plus one scope per
// nested function literal (recursively).
func Scopes(decl *ast.FuncDecl) []Scope {
	if decl.Body == nil {
		return nil
	}
	scopes := []Scope{{Body: decl.Body}}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, Scope{Body: lit.Body, Lit: lit})
		}
		return true
	})
	return scopes
}

// InScope walks body in depth-first order, skipping nested function
// literal bodies (they are their own scopes).
func InScope(body *ast.BlockStmt, fn func(n ast.Node, stack []ast.Node) bool) {
	WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			return false
		}
		return fn(n, stack)
	})
}

// UsesObj reports whether any identifier under n resolves to obj.
func UsesObj(n ast.Node, info *types.Info, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// InDefer reports whether any ancestor on stack is a defer statement.
func InDefer(stack []ast.Node) bool {
	for _, anc := range stack {
		if _, ok := anc.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// TerminalInList reports whether the current node sits in a NESTED
// statement list that ends with a return — the early-exit shape
// `if cond { mu.Unlock(); return }`. A node directly in body is never
// terminal: an event there is a real end-of-region event even when the
// body itself ends with a return. Only the innermost enclosing list is
// examined.
func TerminalInList(stack []ast.Node, body *ast.BlockStmt) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			if b == body {
				return false
			}
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			continue
		}
		if n := len(list); n > 0 {
			if _, ok := list[n-1].(*ast.ReturnStmt); ok {
				return true
			}
		}
		return false
	}
	return false
}

// EnclosingLoop returns the innermost for or range statement on the
// ancestor stack without crossing a function-literal boundary, or nil.
func EnclosingLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		case *ast.FuncLit:
			return nil
		}
	}
	return nil
}

// InLoop reports whether the current node sits inside a for or range
// statement on the ancestor stack, without crossing a function-literal
// boundary (a loop outside the literal does not make the literal's body
// per-iteration code).
func InLoop(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}
