// Package hotscan is the shared scanner behind the hot-path allocation
// contract: given one function's directive state it returns every
// construct that would violate the zero-allocation rule if the function
// were (or became) hot. Two consumers drive it: the hotalloc analyzer
// reports findings for functions that are hot in their home package,
// and factbuild serializes findings of *non*-hot functions into the
// package's exported facts so a hot caller in another package can flag
// the call site that would pull them onto the hot path.
//
// Construct keys (the //mnnfast:hotpath allow= vocabulary):
//
//	append   append that can grow the backing array
//	fmt      fmt.* call
//	strcat   non-constant string concatenation
//	lit      map or slice composite literal
//	box      concrete value boxed into an interface
//	closure  capturing function literal or bound method value
//	defer    defer statement inside a loop
//	timenow  time.Now / time.Since inside a loop
package hotscan

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"mnnfast/internal/lint/directives"
	"mnnfast/internal/lint/walk"
)

// Finding is one hot-path violation.
type Finding struct {
	Pos       token.Pos
	Construct string
	Msg       string
}

// scanner bundles the per-function scan state.
type scanner struct {
	info     *types.Info
	pkg      *types.Package
	fi       *directives.FuncInfo
	findings []Finding
}

func (s *scanner) reportf(pos token.Pos, construct, format string, args ...any) {
	s.findings = append(s.findings, Finding{Pos: pos, Construct: construct, Msg: fmt.Sprintf(format, args...)})
}

// Scan returns the hot-path violations in fi's body in source order,
// honoring the function's own allow= set and the panic-path exemption.
// Line-level //mnnfast:allow suppressions are the caller's concern
// (the analyzer driver and factbuild both apply them afterwards).
func Scan(info *types.Info, pkg *types.Package, fi *directives.FuncInfo) []Finding {
	if fi.Decl.Body == nil {
		return nil
	}
	s := &scanner{info: info, pkg: pkg, fi: fi}
	walk.WithStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			s.checkCall(n, stack)
		case *ast.BinaryExpr:
			s.checkStringConcat(n, stack)
		case *ast.CompositeLit:
			s.checkCompositeLit(n, stack)
		case *ast.AssignStmt:
			s.checkBoxingAssign(n, stack)
		case *ast.ValueSpec:
			s.checkBoxingValueSpec(n, stack)
		case *ast.ReturnStmt:
			s.checkBoxingReturn(n, stack)
		case *ast.FuncLit:
			s.checkClosure(n, stack)
		case *ast.SelectorExpr:
			s.checkMethodValue(n, stack)
		case *ast.DeferStmt:
			s.checkDefer(n, stack)
		}
		return true
	})
	return s.findings
}

func (s *scanner) checkCall(call *ast.CallExpr, stack []ast.Node) {
	info := s.info
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && !s.fi.Allows("append") && !walk.InPanicArg(stack, info) {
				s.reportf(call.Pos(), "append", "append on a hot path can grow and allocate; preallocate the slice, or annotate the function `//mnnfast:hotpath allow=append` if growth is amortized")
			}
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[x].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "fmt":
					if !s.fi.Allows("fmt") && !walk.InPanicArg(stack, info) {
						s.reportf(call.Pos(), "fmt", "fmt.%s allocates on a hot path; move formatting behind a //mnnfast:coldpath boundary", sel.Sel.Name)
					}
					return
				case "time":
					if (sel.Sel.Name == "Now" || sel.Sel.Name == "Since") && walk.InLoop(stack) &&
						!s.fi.Allows("timenow") && !walk.InPanicArg(stack, info) {
						s.reportf(call.Pos(), "timenow", "time.%s inside a hot-path loop reads the wall clock every iteration; hoist the read out of the loop, or annotate the function `//mnnfast:hotpath allow=timenow` for deliberate per-iteration timing", sel.Sel.Name)
					}
				}
			}
		}
	}
	s.checkBoxingCall(call, stack)
}

// checkDefer flags defer statements inside hot loops: each iteration
// allocates a defer record, and the deferred work runs only at function
// exit — both wrong on a per-row path.
func (s *scanner) checkDefer(d *ast.DeferStmt, stack []ast.Node) {
	if !walk.InLoop(stack) || s.fi.Allows("defer") || walk.InPanicArg(stack, s.info) {
		return
	}
	s.reportf(d.Pos(), "defer", "defer inside a hot-path loop allocates a defer record per iteration and only runs at function exit; restructure the loop body into its own function or release resources inline")
}

// checkClosure flags function literals that capture enclosing variables:
// each evaluation allocates the closure (and moves captures to the
// heap). Non-capturing literals compile to static functions and pass.
func (s *scanner) checkClosure(lit *ast.FuncLit, stack []ast.Node) {
	if s.fi.Allows("closure") || walk.InPanicArg(stack, s.info) {
		return
	}
	captured := s.firstCapture(lit)
	if captured == "" {
		return
	}
	s.reportf(lit.Pos(), "closure", "closure capturing %s allocates on a hot path each time it is evaluated; prebuild it into pooled or persistent scratch (sched.runState's prebuilt loop closure is the idiom), or annotate the function `//mnnfast:hotpath allow=closure` if construction is amortized", captured)
}

// firstCapture returns the name of a variable the literal captures from
// its enclosing function, or "" if it captures nothing. Package-level
// variables and fields reached through captured receivers don't count
// by themselves — the root identifier does.
func (s *scanner) firstCapture(lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := s.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == s.pkg.Scope() || v.Parent() == nil {
			return true
		}
		// Declared inside the literal itself (including its own params)?
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		captured = v.Name()
		return false
	})
	return captured
}

// checkMethodValue flags bound method values (x.M used as a value, not
// called): evaluating one allocates a closure binding the receiver.
// Package-qualified function values (pkg.F) are static and pass.
func (s *scanner) checkMethodValue(sel *ast.SelectorExpr, stack []ast.Node) {
	fn, ok := s.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	if x, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := s.info.Uses[x].(*types.PkgName); isPkg {
			return
		}
	}
	// Receiver-less signature means a package function referenced through
	// a selector on a package name handled above; a method expression
	// (T.M) is also static.
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if tv, ok := s.info.Types[sel.X]; ok && tv.IsType() {
		return // method expression T.M, static
	}
	// Called immediately? Then it's a plain method call, not a value.
	if len(stack) >= 2 {
		if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == sel {
			return
		}
	}
	if s.fi.Allows("closure") || walk.InPanicArg(stack, s.info) {
		return
	}
	s.reportf(sel.Pos(), "closure", "method value %s.%s allocates a bound closure on a hot path each time it is evaluated; store a prebuilt func field instead, or annotate the function `//mnnfast:hotpath allow=closure` if construction is amortized", types.ExprString(sel.X), sel.Sel.Name)
}

// checkBoxingCall flags concrete values passed where an interface
// parameter is declared (implicit boxing → heap allocation), and
// explicit conversions to interface types.
func (s *scanner) checkBoxingCall(call *ast.CallExpr, stack []ast.Node) {
	info := s.info
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x).
		if len(call.Args) == 1 {
			s.reportBoxing(call.Args[0], tv.Type, stack)
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no boxing per element
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		s.reportBoxing(arg, pt, stack)
	}
}

func (s *scanner) checkBoxingAssign(as *ast.AssignStmt, stack []ast.Node) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := s.info.TypeOf(lhs)
		if lt == nil {
			continue
		}
		s.reportBoxing(as.Rhs[i], lt, stack)
	}
}

func (s *scanner) checkBoxingValueSpec(spec *ast.ValueSpec, stack []ast.Node) {
	if spec.Type == nil || len(spec.Values) == 0 {
		return
	}
	dt := s.info.TypeOf(spec.Type)
	if dt == nil {
		return
	}
	for _, v := range spec.Values {
		s.reportBoxing(v, dt, stack)
	}
}

func (s *scanner) checkBoxingReturn(ret *ast.ReturnStmt, stack []ast.Node) {
	sig := s.enclosingSignature(stack)
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		s.reportBoxing(res, sig.Results().At(i).Type(), stack)
	}
}

// enclosingSignature finds the signature governing a return statement:
// the innermost enclosing function literal on the stack, else the
// declared function itself.
func (s *scanner) enclosingSignature(stack []ast.Node) *types.Signature {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			if sig, ok := s.info.TypeOf(lit).(*types.Signature); ok {
				return sig
			}
			return nil
		}
	}
	if s.fi.Obj == nil {
		return nil
	}
	sig, _ := s.fi.Obj.Type().(*types.Signature)
	return sig
}

// reportBoxing reports expr if storing it into destination type dst
// boxes a concrete value into an interface.
func (s *scanner) reportBoxing(expr ast.Expr, dst types.Type, stack []ast.Node) {
	if s.fi.Allows("box") {
		return
	}
	info := s.info
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil {
		return // constants (incl. untyped strings to panic/error paths) don't escape per call
	}
	if !boxes(tv.Type) {
		return
	}
	if walk.InPanicArg(stack, info) {
		return
	}
	s.reportf(expr.Pos(), "box", "%s boxes into interface %s on a hot path (allocates); keep hot signatures concrete", types.TypeString(tv.Type, types.RelativeTo(s.pkg)), types.TypeString(dst, types.RelativeTo(s.pkg)))
}

// boxes reports whether converting a value of type t to an interface
// allocates. Pointer-shaped types (pointers, channels, maps, funcs,
// unsafe pointers) box without allocating only for word-sized direct
// interfaces; gc still allocates for most of them, but the runtime's
// pointer-shaped cases are the accepted idiom (sync.Pool.Put of a
// pointer), so we exempt them.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return false
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

func (s *scanner) checkStringConcat(be *ast.BinaryExpr, stack []ast.Node) {
	if be.Op != token.ADD || s.fi.Allows("strcat") {
		return
	}
	info := s.info
	tv, ok := info.Types[be]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil {
		return // constant-folded at compile time
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return
	}
	// Report only the outermost + of a concat chain.
	if len(stack) >= 2 {
		if parent, ok := stack[len(stack)-2].(*ast.BinaryExpr); ok && parent.Op == token.ADD {
			if pt, ok := info.Types[parent]; ok && pt.Type != nil {
				if pb, ok := pt.Type.Underlying().(*types.Basic); ok && pb.Info()&types.IsString != 0 {
					return
				}
			}
		}
	}
	if walk.InPanicArg(stack, info) {
		return
	}
	s.reportf(be.Pos(), "strcat", "string concatenation allocates on a hot path; precompute the string or write into a pooled buffer")
}

func (s *scanner) checkCompositeLit(cl *ast.CompositeLit, stack []ast.Node) {
	tv, ok := s.info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	var kind string
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		kind = "map"
	case *types.Slice:
		kind = "slice"
	default:
		return
	}
	if s.fi.Allows("lit") || walk.InPanicArg(stack, s.info) {
		return
	}
	s.reportf(cl.Pos(), "lit", "%s literal allocates on a hot path; hoist it to a package variable or preallocated scratch", kind)
}
