// Package fixture exercises poolescape: missing Puts, escapes via
// return / field / global, use-after-Put, and the allowed idioms
// (defer Put, annotated accessor wrappers, line suppressions).
package fixture

import "sync"

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

var global *[]byte

type holder struct{ buf *[]byte }

// GetBuf is the package's own accessor wrapper; its body necessarily
// returns the pooled value and is skipped.
//
//mnnfast:pool-get
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf takes pooled values back.
//
//mnnfast:pool-put
func PutBuf(b *[]byte) { bufPool.Put(b) }

// OK is the canonical shape: Get, defer Put, use.
func OK() int {
	b := bufPool.Get().(*[]byte)
	defer bufPool.Put(b)
	return len(*b)
}

// OKWrapper uses the annotated wrappers, which count as Get/Put.
func OKWrapper() int {
	b := GetBuf()
	defer PutBuf(b)
	return len(*b)
}

// Leaks never Puts.
func Leaks() int {
	b := bufPool.Get().(*[]byte) // want "pooled b is never returned to its pool"
	return len(*b)
}

// EscapesReturn hands the pooled value to a caller with no Put duty.
func EscapesReturn() *[]byte {
	b := bufPool.Get().(*[]byte)
	return b // want "pooled b escapes via return"
}

// EscapesField publishes the pooled value beyond the request.
func EscapesField(h *holder) {
	b := bufPool.Get().(*[]byte)
	h.buf = b // want "pooled b escapes into a struct field or package variable"
	bufPool.Put(b)
}

// EscapesGlobal stores it in a package variable.
func EscapesGlobal() {
	b := bufPool.Get().(*[]byte)
	global = b // want "pooled b escapes into a struct field or package variable"
	bufPool.Put(b)
}

type scratch struct {
	ev  [4]byte
	ref *[4]byte
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// SelfReference wires one field of the pooled value to another; the
// value stays request-local, so this is not an escape.
func SelfReference() int {
	st := scratchPool.Get().(*scratch)
	st.ref = &st.ev
	n := len(st.ref)
	st.ref = nil
	scratchPool.Put(st)
	return n
}

// UseAfterPut touches the value after giving it back.
func UseAfterPut() int {
	b := bufPool.Get().(*[]byte)
	bufPool.Put(b)
	return len(*b) // want "use of pooled b after it was Put on line"
}

// Suppressed documents a deliberate hand-off the analysis can't
// follow (the consumer Puts it).
func Suppressed(out chan<- *[]byte) {
	//mnnfast:allow poolescape consumer recycles via PutBuf
	b := bufPool.Get().(*[]byte)
	out <- b
}
