package poolescape_test

import (
	"testing"

	"mnnfast/internal/lint/linttest"
	"mnnfast/internal/lint/poolescape"
)

func TestPoolescape(t *testing.T) {
	linttest.Run(t, poolescape.Analyzer, "a")
}
