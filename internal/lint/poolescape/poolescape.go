// Package poolescape checks the lifecycle of pooled values: a value
// obtained from sync.Pool.Get (or a //mnnfast:pool-get wrapper such as
// tensor.GetVector) must be returned with a matching Put in the same
// function, must not escape through return values, struct fields, or
// package variables, and must not be used after it was Put.
//
// The analysis is deliberately syntactic and local: it tracks Get
// results bound to plain local variables and requires at least one Put
// (or defer Put) in the same function scope. Functions annotated
// //mnnfast:pool-get or //mnnfast:pool-put are the pool's own accessor
// wrappers — their bodies necessarily return or store pooled values and
// are skipped. Hand-off designs the analysis cannot follow (a pooled
// wrapper traveling through a channel and recycled by the consumer) are
// out of scope for the variable-tracking rules by construction: only
// plain `v := pool.Get()` bindings are tracked, and deliberate
// exceptions carry a `//mnnfast:allow poolescape <reason>` comment.
package poolescape

import (
	"go/ast"
	"go/types"

	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/directives"
	"mnnfast/internal/lint/lockscan"
	"mnnfast/internal/lint/walk"
)

// Analyzer is the poolescape pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc:  "pooled values must be Put on the paths this function owns, must not escape via returns/fields/globals, and must not be used after Put",
	Run:  run,
}

// Known cross-package pool accessors, kept as a fallback for runs
// without facts (fixture tests, stale caches). With facts loaded,
// imported //mnnfast:pool-get / //mnnfast:pool-put wrappers are
// recognized through their exported facts and need no entry here.
var (
	knownGet = map[string]bool{
		"mnnfast/internal/tensor.GetVector": true,
		"mnnfast/internal/tensor.GetMatrix": true,
		"mnnfast/internal/core.GetPartial":  true,
	}
	knownPut = map[string]bool{
		"mnnfast/internal/tensor.PutVector": true,
		"mnnfast/internal/tensor.PutMatrix": true,
		"mnnfast/internal/core.PutPartial":  true,
	}
)

func run(pass *analysis.Pass) (any, error) {
	di := directives.Collect(pass.Files, pass.TypesInfo)
	for _, fi := range di.Funcs() {
		if fi.Decl.Body == nil || fi.PoolGet || fi.PoolPut {
			continue
		}
		for _, sc := range walk.Scopes(fi.Decl) {
			checkScope(pass, di, sc)
		}
	}
	return nil, nil
}

// callKind classifies a call as a pool Get, a pool Put, or neither.
func callKind(pass *analysis.Pass, di *directives.Info, call *ast.CallExpr) (get, put bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return false, false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false, false
	}
	switch fn.FullName() {
	case "(*sync.Pool).Get":
		return true, false
	case "(*sync.Pool).Put":
		return false, true
	}
	full := ""
	if fn.Pkg() != nil {
		full = fn.Pkg().Path() + "." + fn.Name()
	}
	if knownGet[full] {
		return true, false
	}
	if knownPut[full] {
		return false, true
	}
	if fi := di.ByObj(fn); fi != nil {
		return fi.PoolGet, fi.PoolPut
	}
	if fn.Pkg() != nil {
		if ff := pass.Facts.FuncFact(fn.Pkg().Path(), lockscan.ObjSymbol(fn)); ff != nil {
			return ff.PoolGet, ff.PoolPut
		}
	}
	return false, false
}

// getCall unwraps an expression that yields a pooled value: either a
// Get call directly or a Get call behind a type assertion
// (pool.Get().(*T)).
func getCall(pass *analysis.Pass, di *directives.Info, e ast.Expr) *ast.CallExpr {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if get, _ := callKind(pass, di, call); get {
		return call
	}
	return nil
}

// tracked is one pooled value bound to a local variable in a scope.
type tracked struct {
	obj types.Object
	get *ast.CallExpr
}

func checkScope(pass *analysis.Pass, di *directives.Info, sc walk.Scope) {
	info := pass.TypesInfo
	var vars []tracked

	// Pass 1: find Get results, flag ones stored straight into escaping
	// locations, track ones bound to plain locals.
	walk.InScope(sc.Body, func(n ast.Node, stack []ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call := getCall(pass, di, as.Rhs[0])
		if call == nil {
			return true
		}
		switch lhs := as.Lhs[0].(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				return true
			}
			obj := info.Defs[lhs]
			if obj == nil {
				obj = info.Uses[lhs]
			}
			if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Parent() != pass.Pkg.Scope() {
				vars = append(vars, tracked{obj: obj, get: call})
			} else if ok {
				pass.Reportf(as.Pos(), "pooled value stored directly into %s; pooled scratch must stay request-local", lhs.Name)
			}
		case *ast.SelectorExpr:
			pass.Reportf(as.Pos(), "pooled value stored directly into a struct field; it outlives the request and can never be safely Put")
		}
		return true
	})

	for _, t := range vars {
		checkTracked(pass, di, sc, t)
	}
}

func checkTracked(pass *analysis.Pass, di *directives.Info, sc walk.Scope, t tracked) {
	info := pass.TypesInfo
	var (
		putCount int
		escaped  bool
	)

	walk.InScope(sc.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, put := callKind(pass, di, n); put {
				for _, arg := range n.Args {
					if walk.UsesObj(arg, info, t.obj) {
						putCount++
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if escapingUse(info, res, t.obj) {
					escaped = true
					pass.Reportf(n.Pos(), "pooled %s escapes via return; the caller has no way to Put it back", t.obj.Name())
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if escapingUse(info, rhs, t.obj) && escapingTarget(pass, n.Lhs[i]) &&
						!selectorRootIs(info, n.Lhs[i], t.obj) {
						escaped = true
						pass.Reportf(n.Pos(), "pooled %s escapes into a struct field or package variable; pooled scratch must stay request-local", t.obj.Name())
					}
				}
				return true
			}
			usesRhs := false
			for _, rhs := range n.Rhs {
				if escapingUse(info, rhs, t.obj) {
					usesRhs = true
				}
			}
			if !usesRhs {
				return true
			}
			for _, lhs := range n.Lhs {
				if escapingTarget(pass, lhs) && !selectorRootIs(info, lhs, t.obj) {
					escaped = true
					pass.Reportf(n.Pos(), "pooled %s escapes into a struct field or package variable; pooled scratch must stay request-local", t.obj.Name())
				}
			}
		}
		return true
	})

	if putCount == 0 && !escaped {
		pass.Reportf(t.get.Pos(), "pooled %s is never returned to its pool in this function; add a Put (usually deferred) on every return path", t.obj.Name())
	}

	checkUseAfterPut(pass, di, sc, t)
}

// escapingUse reports whether expression e carries the pooled value
// itself outward: the bare variable, an alias of it (slice, address),
// or a composite literal embedding it. Computations over the value
// (len(*b), b[0], arithmetic) yield fresh data and are not escapes.
func escapingUse(info *types.Info, e ast.Expr, obj types.Object) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return escapingUse(info, e.X, obj)
	case *ast.Ident:
		return info.Uses[e] == obj
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return walk.UsesObj(e, info, obj)
		}
	case *ast.CompositeLit:
		return walk.UsesObj(e, info, obj)
	case *ast.SliceExpr:
		return escapingUse(info, e.X, obj)
	}
	return false
}

// selectorRootIs reports whether lhs is a selector chain rooted at
// obj itself (st.ins.Ev = ... with obj = st). Storing a pointer into
// a field of the pooled value it points back to keeps the value
// request-local — it leaves the request only if the value itself
// does, which the other rules already catch.
func selectorRootIs(info *types.Info, lhs ast.Expr, obj types.Object) bool {
	for {
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.Ident:
			return info.Uses[e] == obj
		default:
			return false
		}
	}
}

// escapingTarget reports whether assigning to lhs publishes a value
// beyond the current call: a struct field, or a package-level variable.
func escapingTarget(pass *analysis.Pass, lhs ast.Expr) bool {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		if v, ok := pass.TypesInfo.Uses[lhs.Sel].(*types.Var); ok {
			return v.IsField()
		}
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Defs[lhs]
		}
		if v, ok := obj.(*types.Var); ok {
			return v.Parent() == pass.Pkg.Scope()
		}
	}
	return false
}

// checkUseAfterPut flags uses of a pooled variable in statements that
// directly follow (in the same block) a non-deferred statement-level
// Put of it, with no return in between. Puts nested in branches don't
// poison the block: the straight-line Get…use…Put idiom is what this
// rule protects.
func checkUseAfterPut(pass *analysis.Pass, di *directives.Info, sc walk.Scope, t tracked) {
	info := pass.TypesInfo
	walk.InScope(sc.Body, func(n ast.Node, stack []ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		putAt := -1
		for i, stmt := range block.List {
			if putAt >= 0 {
				if walk.UsesObj(stmt, info, t.obj) {
					pass.Reportf(stmt.Pos(), "use of pooled %s after it was Put on line %d; the pool may already have handed it to another goroutine", t.obj.Name(), pass.Fset.Position(block.List[putAt].Pos()).Line)
					break
				}
				if _, isRet := stmt.(*ast.ReturnStmt); isRet {
					break
				}
				continue
			}
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if _, put := callKind(pass, di, call); !put {
				continue
			}
			for _, arg := range call.Args {
				if walk.UsesObj(arg, info, t.obj) {
					putAt = i
				}
			}
		}
		return true
	})
}
