package asmtwin_test

import (
	"testing"

	"mnnfast/internal/lint/asmtwin"
	"mnnfast/internal/lint/linttest"
)

func TestAsmtwin(t *testing.T) {
	linttest.Run(t, asmtwin.Analyzer, "a")
}
