// Package fixture exercises asmtwin: bodyless (assembly-backed)
// declarations with and without twins, probe stubs, misnamed twins,
// and stale directives on Go-bodied functions.
package fixture

// DotScalar is the reference twin assembly kernels may name.
func DotScalar(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// axpyFast is the fast path: not scalar-suffixed, so not a valid twin.
func axpyFast(a float32, x, y []float32) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// dotAVX2 declares its twin: clean.
//
//mnnfast:asm twin=DotScalar
func dotAVX2(a, b []float32) float32

// cpuid is a feature probe with no numeric contract: clean.
//
//mnnfast:asm probe
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// scaleAVX2 has no directive at all.
func scaleAVX2(v []float32, a float32) // want "assembly-backed scaleAVX2 has no //mnnfast:asm directive"

// addAVX2 names a twin that does not exist.
//
//mnnfast:asm twin=AddScalar
func addAVX2(v, w []float32) // want "twin AddScalar, which is not a Go-bodied function"

// axpyAVX2 names a twin without the Scalar suffix.
//
//mnnfast:asm twin=axpyFast
func axpyAVX2(a float32, x, y []float32) // want "twin axpyFast of assembly-backed axpyAVX2 is not a .Scalar reference twin"

// expAVX2 cannot be both a kernel and a probe.
//
//mnnfast:asm twin=DotScalar probe
func expAVX2(dst, src []float32) // want "marked both probe and twin=DotScalar"

// expGo has a Go body, so the directive is stale.
//
//mnnfast:asm twin=DotScalar
func expGo(dst, src []float32) { // want "has a //mnnfast:asm directive but a Go body"
	copy(dst, src)
}
