// Package asmtwin guards the kernel-tier reference contract: every
// assembly-backed function (a bodyless Go declaration implemented in a
// .s file) must either name its scalar reference twin with
// //mnnfast:asm twin=<Func> or be marked //mnnfast:asm probe (feature
// probes and test accessors with no numeric contract).
//
// The twin must be a declared, Go-bodied function in the same package
// whose name ends in "Scalar" — the convention floatdet exempts from
// the float64 ban, and the ground truth the tier property tests and
// FuzzKernelTiers pin every fast kernel against. Together the two
// rules make it impossible to land a new assembly kernel without a
// reference implementation for the differential harness to check it
// against: the declaration does not lint without a twin, and the twin
// does not exist without being a *Scalar reference.
package asmtwin

import (
	"strings"

	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/directives"
)

// Analyzer is the asmtwin pass.
var Analyzer = &analysis.Analyzer{
	Name: "asmtwin",
	Doc:  "assembly-backed declarations must name a registered *Scalar reference twin (or be marked probe)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	di := directives.Collect(pass.Files, pass.TypesInfo)

	// Index Go-bodied declarations: the universe twins may live in.
	bodied := make(map[string]bool)
	for _, fi := range di.Funcs() {
		if fi.Decl.Body != nil && fi.Decl.Recv == nil {
			bodied[fi.Decl.Name.Name] = true
		}
	}

	for _, fi := range di.Funcs() {
		name := fi.Decl.Name.Name
		if fi.Decl.Body != nil {
			// A Go-bodied function claiming to be assembly-backed is a
			// stale or copy-pasted directive; flag it before it misleads.
			if fi.AsmTwin != "" || fi.AsmProbe {
				pass.Reportf(fi.Decl.Pos(), "%s has a //mnnfast:asm directive but a Go body; the directive belongs on the bodyless assembly declaration", name)
			}
			continue
		}
		switch {
		case fi.AsmProbe && fi.AsmTwin != "":
			pass.Reportf(fi.Decl.Pos(), "%s is marked both probe and twin=%s; an assembly declaration is either a kernel with a reference twin or a probe, not both", name, fi.AsmTwin)
		case fi.AsmProbe:
			// Non-kernel stub: nothing to pin.
		case fi.AsmTwin == "":
			pass.Reportf(fi.Decl.Pos(), "assembly-backed %s has no //mnnfast:asm directive; name its scalar reference (//mnnfast:asm twin=<Func>) so the tier tests pin it, or mark it //mnnfast:asm probe", name)
		case !bodied[fi.AsmTwin]:
			pass.Reportf(fi.Decl.Pos(), "assembly-backed %s names twin %s, which is not a Go-bodied function in this package", name, fi.AsmTwin)
		case !strings.HasSuffix(fi.AsmTwin, "Scalar"):
			pass.Reportf(fi.Decl.Pos(), "twin %s of assembly-backed %s is not a *Scalar reference twin; the scalar ground truth must carry the Scalar suffix (floatdet exempts it, the tier tests find it)", fi.AsmTwin, name)
		}
	}
	return nil, nil
}
