// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that mnnfast-lint's
// analyzers program against. The container this repo builds in has no
// module proxy access, so rather than vendoring x/tools we implement
// the thin slice we need — Analyzer, Pass, Diagnostic — on top of the
// standard library's go/ast and go/types. If x/tools ever becomes
// available, the analyzers port by swapping this import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"mnnfast/internal/lint/facts"
)

// Analyzer describes one static check: a name, a documentation string,
// and a Run function applied once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the
	// //mnnfast:allow suppression syntax. It must be a valid
	// identifier.
	Name string

	// Doc is the analyzer's documentation: first line is a one-line
	// summary, the rest explains the invariant and how to annotate
	// code for it.
	Doc string

	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Report / pass.Reportf; the result value is unused by this
	// driver (kept for x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// TypesSizes follows the build platform; analyzers that care about
	// 32-bit alignment construct their own 32-bit Sizes.
	TypesSizes types.Sizes
	Report     func(Diagnostic)

	// Facts holds the imported per-package fact sets of this package's
	// (transitive) in-module dependencies, computed by the driver in
	// dependency order before any analyzer runs (see internal/lint/facts
	// and internal/lint/factbuild). Nil when the driver has none — e.g.
	// single-package fixture tests — and analyzers must degrade to their
	// package-local behavior then.
	Facts *facts.Set
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name; filled by the driver
	Message  string
}
