package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mnnfast/internal/lint/analysis"
)

func TestSARIFShape(t *testing.T) {
	rules := []*analysis.Analyzer{
		{Name: "hotalloc", Doc: "flag allocating constructs\nlong form."},
		{Name: "lockorder", Doc: "flag lock cycles"},
	}
	findings := []Finding{
		{File: "internal/server/batch.go", Line: 230, Column: 9, Analyzer: "lockorder", Message: "self edge"},
	}
	var buf bytes.Buffer
	if err := SARIF(&buf, findings, rules); err != nil {
		t.Fatalf("sarif: %v", err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version/schema: %s / %s", log.Version, log.Schema)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "mnnfast-lint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 2 || run.Tool.Driver.Rules[0].ID != "hotalloc" {
		t.Errorf("rules: %+v", run.Tool.Driver.Rules)
	}
	if got := run.Tool.Driver.Rules[0].ShortDescription.Text; strings.Contains(got, "\n") {
		t.Errorf("short description must be the first doc line only, got %q", got)
	}
	res := run.Results[0]
	if res.RuleID != "lockorder" || res.Level != "warning" {
		t.Errorf("result: %+v", res)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/server/batch.go" || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Errorf("artifact: %+v", loc.ArtifactLocation)
	}
	if loc.Region.StartLine != 230 {
		t.Errorf("region: %+v", loc.Region)
	}
}

func TestJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := JSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty findings must encode as [], got %q", got)
	}
}

func TestFindingKey(t *testing.T) {
	f := Finding{File: "a.go", Line: 3, Column: 9, Analyzer: "hotalloc", Message: "m"}
	if f.Key() != "a.go\t[hotalloc]\tm" {
		t.Errorf("key %q", f.Key())
	}
	// Line must not participate: baselines survive unrelated edits.
	g := f
	g.Line = 99
	if f.Key() != g.Key() {
		t.Error("key must be line-independent")
	}
}
