// Package report renders lint findings in the formats cmd/mnnfast-lint
// exposes through -format: the classic file:line:col text stream, a
// machine-readable JSON array, and SARIF 2.1.0 for GitHub code scanning
// upload. Findings are position-resolved (token.Position, repo-relative
// file paths) so writers need no FileSet.
package report

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"mnnfast/internal/lint/analysis"
)

// Finding is one position-resolved diagnostic.
type Finding struct {
	File     string `json:"file"` // repo-relative, forward slashes
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Key is the baseline identity of a finding: file, analyzer, and
// message, without line numbers, so baselines survive unrelated edits
// to the same file.
func (f Finding) Key() string {
	return f.File + "\t[" + f.Analyzer + "]\t" + f.Message
}

// Resolve converts raw diagnostics to findings with file paths
// relativized to root (left as-is when outside it), sorted by
// (file, line, column, analyzer).
func Resolve(root string, fset *token.FileSet, diags []analysis.Diagnostic) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		file := p.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		out = append(out, Finding{
			File:     filepath.ToSlash(file),
			Line:     p.Line,
			Column:   p.Column,
			Analyzer: d.Category,
			Message:  d.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// Text writes the classic stderr format: file:line:col: [analyzer] msg.
func Text(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message); err != nil {
			return err
		}
	}
	return nil
}

// JSON writes the findings as one indented JSON array.
func JSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// sarif* mirror the slice of the SARIF 2.1.0 schema GitHub code
// scanning consumes.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription sarifText     `json:"shortDescription"`
	Help             sarifText     `json:"help,omitempty"`
	Properties       sarifRuleProp `json:"properties"`
}

type sarifRuleProp struct {
	Tags []string `json:"tags"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF writes the findings as a SARIF 2.1.0 log. rules describes the
// analyzers that ran (all of them, not just the firing ones, so GitHub
// can render rule metadata for historical results too).
func SARIF(w io.Writer, findings []Finding, rules []*analysis.Analyzer) error {
	driver := sarifDriver{
		Name:  "mnnfast-lint",
		Rules: make([]sarifRule, 0, len(rules)),
	}
	for _, a := range rules {
		summary := a.Doc
		if i := strings.IndexByte(summary, '\n'); i >= 0 {
			summary = summary[:i]
		}
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: summary},
			Help:             sarifText{Text: a.Doc},
			Properties:       sarifRuleProp{Tags: []string{"mnnfast", "invariant"}},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
