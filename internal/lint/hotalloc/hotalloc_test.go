package hotalloc_test

import (
	"testing"

	"mnnfast/internal/lint/hotalloc"
	"mnnfast/internal/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "a")
}

func TestHotallocLoopConstructs(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "b")
}

// TestHotallocCrossPackage proves the facts chain: package a holds the
// allocating leaf, package b wraps it, package c's hot root calls the
// wrapper — the violation surfaces at c's call site, two packages from
// the //mnnfast:hotpath annotation.
func TestHotallocCrossPackage(t *testing.T) {
	linttest.RunMulti(t, hotalloc.Analyzer, "chain")
}
