package hotalloc_test

import (
	"testing"

	"mnnfast/internal/lint/hotalloc"
	"mnnfast/internal/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "a")
}
