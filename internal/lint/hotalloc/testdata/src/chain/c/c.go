// Package c holds the hot root. Its //mnnfast:hotpath is two packages
// away from the allocation in a.Format; the finding must surface here,
// at the call site, with the folded chain b.Wrap → a.Format.
package c

import "b"

var sink string

//mnnfast:hotpath
func HotServe(n int) {
	sink = b.Wrap(n) // want "call pulls b.Wrap → a.Format onto the hot path: fmt.Sprintf allocates on a hot path.*at a.go:10:9"
}

// HotServeCold calls through to an explicit coldpath boundary: clean.
//
//mnnfast:hotpath
func HotServeCold(n int) {
	sink = b.WrapCold(n)
}
