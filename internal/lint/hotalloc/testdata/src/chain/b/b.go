// Package b is the middle of the chain: it wraps a.Format without any
// annotation, so a's latent violation folds into b's exported facts
// with the call chain recorded.
package b

import "a"

// Wrap forwards to the allocating leaf one package down.
func Wrap(n int) string {
	return a.Format(n)
}

// WrapCold forwards to an explicit coldpath: propagation stops there.
func WrapCold(n int) string {
	return a.Cold(n)
}
