// Package a is the leaf of the cross-package chain: Format allocates,
// but nothing here is hot, so the violation is only exported as a
// latent fact.
package a

import "fmt"

// Format is the allocating leaf. Not hot, not cold: latent.
func Format(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Cold is explicitly off the serving path; its allocation must NOT
// propagate to any caller.
//
//mnnfast:coldpath
func Cold(n int) string {
	return fmt.Sprintf("cold n=%d", n)
}
