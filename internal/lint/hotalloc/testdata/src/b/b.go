// Package fixture exercises the loop-sensitive hotalloc constructs:
// defer records and wall-clock reads inside hot loops, and closure /
// bound-method-value allocation anywhere on a hot path.
package fixture

import (
	"sync"
	"time"
)

var sink func()

// HotDefer defers inside the iteration, allocating a defer record per
// element and holding every lock until return.
//
//mnnfast:hotpath
func HotDefer(mus []sync.Mutex) {
	for i := range mus {
		mus[i].Lock()
		defer mus[i].Unlock() // want "defer inside a hot-path loop allocates a defer record per iteration"
	}
}

// HotDeferOutside defers once before the loop: allowed.
//
//mnnfast:hotpath
func HotDeferOutside(mu *sync.Mutex, xs []float32) float32 {
	mu.Lock()
	defer mu.Unlock()
	var total float32
	for _, x := range xs {
		total += x
	}
	return total
}

// HotClock reads the wall clock every iteration.
//
//mnnfast:hotpath
func HotClock(xs []float32) time.Duration {
	var spent time.Duration
	for range xs {
		t0 := time.Now()        // want "time.Now inside a hot-path loop reads the wall clock every iteration"
		spent += time.Since(t0) // want "time.Since inside a hot-path loop reads the wall clock every iteration"
	}
	return spent
}

// HotClockHoisted reads once outside the loop: allowed.
//
//mnnfast:hotpath
func HotClockHoisted(xs []float32) time.Duration {
	t0 := time.Now()
	var total float32
	for _, x := range xs {
		total += x
	}
	_ = total
	return time.Since(t0)
}

// HotClockAllowed opts in to per-iteration timing.
//
//mnnfast:hotpath allow=timenow
func HotClockAllowed(xs []float32) time.Duration {
	var spent time.Duration
	for range xs {
		t0 := time.Now()
		spent += time.Since(t0)
	}
	return spent
}

// HotCapture builds a capturing closure per call.
//
//mnnfast:hotpath
func HotCapture(xs []float32) {
	total := float32(0)
	sink = func() { total += xs[0] } // want "closure capturing total allocates on a hot path"
}

// HotNoCapture builds a closure that captures nothing: func values
// without captured state are static, no per-call allocation.
//
//mnnfast:hotpath
func HotNoCapture() {
	sink = func() {}
}

type worker struct{ n int }

func (w *worker) step() {}

// HotMethodValue binds a method value, allocating a closure pairing
// receiver and method.
//
//mnnfast:hotpath
func HotMethodValue(w *worker) {
	sink = w.step // want "method value w.step allocates a bound closure on a hot path"
}

// HotMethodCall calls the method directly — no binding, allowed.
//
//mnnfast:hotpath
func HotMethodCall(w *worker) {
	w.step()
}

// HotClosureAllowed opts in: construction is amortized by the caller.
//
//mnnfast:hotpath allow=closure
func HotClosureAllowed(xs []float32) {
	total := float32(0)
	sink = func() { total += xs[0] }
}
