// Package fixture exercises hotalloc: flagged allocating constructs in
// hot functions, allowed equivalents, propagation, and suppressions.
package fixture

import "fmt"

var sink []float32

// Hot is directly annotated; everything allocating inside is flagged.
//
//mnnfast:hotpath
func Hot(xs []float32, name string) float32 {
	xs = append(xs, 1)          // want "append on a hot path"
	s := "hot " + name          // want "string concatenation allocates on a hot path"
	fmt.Println(s)              // want "fmt.Println allocates on a hot path"
	m := map[string]int{"a": 1} // want "map literal allocates on a hot path"
	w := []int{1, 2}            // want "slice literal allocates on a hot path"
	var total float32
	for _, x := range xs {
		total += x
	}
	return total + float32(m["a"]) + float32(w[0])
}

// helper is not annotated, but Hot2 calls it, so hotness propagates.
func helper(xs []float32) []float32 {
	return append(xs, 2) // want "append on a hot path"
}

//mnnfast:hotpath
func Hot2(xs []float32) []float32 { return helper(xs) }

// graph is a boxing sink.
func observe(v any) { _ = v }

//mnnfast:hotpath
func HotBoxing(x float32, p *int) {
	observe(x) // want "float32 boxes into interface any"
	observe(p) // pointers are pointer-shaped: allowed
	var i interface{ M() }
	_ = i
}

// HotAllowed uses allow= exemptions: append is amortized grow-only
// scratch here, so nothing is flagged.
//
//mnnfast:hotpath allow=append
func HotAllowed(xs []float32) []float32 {
	return append(xs, 3)
}

// HotPanic allocates only while dying; panic paths are exempt.
//
//mnnfast:hotpath
func HotPanic(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}
}

// HotSuppressed documents a single deliberate exception with a line
// suppression.
//
//mnnfast:hotpath
func HotSuppressed(xs []float32) []float32 {
	//mnnfast:allow hotalloc fixture: deliberate exception
	return append(xs, 4)
}

// cold stops propagation: Hot3 calls it, but its fmt use is fine.
//
//mnnfast:coldpath
func cold(err error) string { return fmt.Sprintf("boom: %v", err) }

//mnnfast:hotpath
func Hot3(err error) string { return cold(err) }

// NotHot is unannotated and unreachable from hot code: anything goes.
func NotHot(name string) string {
	sink = append(sink, 1)
	return "cold " + name
}
