// Package hotalloc flags allocation-inducing constructs inside
// //mnnfast:hotpath functions (and everything they reach through
// same-package static calls): append growth, fmt.* calls, interface
// boxing, string concatenation, map/slice composite literals, closure
// captures, and — inside loops — defer statements and time.Now reads.
//
// The hot serving path is the zero-allocation contract from MnnFast
// §4.1: every per-request byte lives in preallocated scratch, so the
// inference loop never touches the allocator or triggers GC. Anything
// that can allocate per call is a regression even when benchmarks
// happen to miss it.
//
// With facts loaded (see internal/lint/facts), the check crosses
// package boundaries: a hot function calling an unannotated function in
// another package reports that callee's latent violations at the call
// site, with the folded call chain, so a violation two packages below
// its //mnnfast:hotpath root still surfaces. Imported callees that are
// hot in their home package are trusted (they were checked there);
// //mnnfast:coldpath callees stop propagation exactly like in-package.
//
// Escapes, in decreasing order of preference:
//
//   - restructure the code (preallocate, use a pooled buffer, take the
//     formatting off the hot path behind //mnnfast:coldpath);
//   - panic paths are exempt automatically — allocating while dying is
//     fine;
//   - `//mnnfast:hotpath allow=append,...` on the function for
//     amortized grow-only scratch (allow sets do not propagate to
//     callees);
//   - a `//mnnfast:allow hotalloc <reason>` line comment for a single
//     deliberate exception.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/directives"
	"mnnfast/internal/lint/facts"
	"mnnfast/internal/lint/hotscan"
	"mnnfast/internal/lint/lockscan"
	"mnnfast/internal/lint/walk"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocating constructs (append, fmt, boxing, closures, string concat, map/slice literals, loop defer/time.Now) in //mnnfast:hotpath functions, across package boundaries via facts",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	di := directives.Collect(pass.Files, pass.TypesInfo)
	for _, fi := range di.Funcs() {
		if !fi.Hot || fi.Decl.Body == nil {
			continue
		}
		for _, f := range hotscan.Scan(pass.TypesInfo, pass.Pkg, fi) {
			pass.Reportf(f.Pos, "%s", f.Msg)
		}
		checkImportedCalls(pass, di, fi)
	}
	return nil, nil
}

// checkImportedCalls reports, at each call site inside a hot function,
// the latent violations of unannotated callees declared in other
// packages, using their exported facts. Callees that are hot or cold in
// their home package are clean by construction.
func checkImportedCalls(pass *analysis.Pass, di *directives.Info, fi *directives.FuncInfo) {
	walk.WithStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || di.ByObj(fn) != nil {
			return true // builtin, same package (propagation handles it), or unresolved
		}
		ff := pass.Facts.FuncFact(fn.Pkg().Path(), lockscan.ObjSymbol(fn))
		if ff == nil || ff.Hot || ff.Cold || len(ff.Violations) == 0 {
			return true
		}
		if walk.InPanicArg(stack, pass.TypesInfo) {
			return true
		}
		// The caller's own allow= set covers what it knowingly pulls in
		// (e.g. allow=timenow on an instrumented wrapper); report the
		// first violation it does not cover.
		var picked *facts.Violation
		remaining := 0
		for i := range ff.Violations {
			if fi.Allows(ff.Violations[i].Construct) {
				continue
			}
			if picked == nil {
				picked = &ff.Violations[i]
			} else {
				remaining++
			}
		}
		if picked == nil {
			return true
		}
		chain := fn.Pkg().Path() + "." + lockscan.ObjSymbol(fn)
		if len(picked.Path) > 0 {
			chain += " → " + strings.Join(picked.Path, " → ")
		}
		extra := ""
		if remaining > 0 {
			extra = fmt.Sprintf(" (and %d more)", remaining)
		}
		pass.Reportf(call.Pos(), "call pulls %s onto the hot path: %s at %s%s; annotate the callee //mnnfast:hotpath (and fix it) or //mnnfast:coldpath if this call is off the serving path", chain, picked.Msg, picked.Pos, extra)
		return true
	})
}
