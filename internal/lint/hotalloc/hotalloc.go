// Package hotalloc flags allocation-inducing constructs inside
// //mnnfast:hotpath functions (and everything they reach through
// same-package static calls): append growth, fmt.* calls, interface
// boxing, string concatenation, and map/slice composite literals.
//
// The hot serving path is the zero-allocation contract from MnnFast
// §4.1: every per-request byte lives in preallocated scratch, so the
// inference loop never touches the allocator or triggers GC. Anything
// that can allocate per call is a regression even when benchmarks
// happen to miss it.
//
// Escapes, in decreasing order of preference:
//
//   - restructure the code (preallocate, use a pooled buffer, take the
//     formatting off the hot path behind //mnnfast:coldpath);
//   - panic paths are exempt automatically — allocating while dying is
//     fine;
//   - `//mnnfast:hotpath allow=append,...` on the function for
//     amortized grow-only scratch (allow sets do not propagate to
//     callees);
//   - a `//mnnfast:allow hotalloc <reason>` line comment for a single
//     deliberate exception.
package hotalloc

import (
	"go/ast"
	"go/types"

	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/directives"
	"mnnfast/internal/lint/walk"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocating constructs (append, fmt, boxing, string concat, map/slice literals) in //mnnfast:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	di := directives.Collect(pass)
	for _, fi := range di.Funcs() {
		if !fi.Hot || fi.Decl.Body == nil {
			continue
		}
		checkFunc(pass, fi)
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fi *directives.FuncInfo) {
	info := pass.TypesInfo
	walk.WithStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, fi, n, stack)
		case *ast.BinaryExpr:
			checkStringConcat(pass, fi, n, stack)
		case *ast.CompositeLit:
			checkCompositeLit(pass, fi, n, stack)
		case *ast.AssignStmt:
			checkBoxingAssign(pass, fi, n, stack)
		case *ast.ValueSpec:
			checkBoxingValueSpec(pass, fi, n, stack)
		case *ast.ReturnStmt:
			checkBoxingReturn(pass, fi, n, stack, info)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fi *directives.FuncInfo, call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && !fi.Allows("append") && !walk.InPanicArg(stack, info) {
				pass.Reportf(call.Pos(), "append on a hot path can grow and allocate; preallocate the slice, or annotate the function `//mnnfast:hotpath allow=append` if growth is amortized")
			}
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				if !fi.Allows("fmt") && !walk.InPanicArg(stack, info) {
					pass.Reportf(call.Pos(), "fmt.%s allocates on a hot path; move formatting behind a //mnnfast:coldpath boundary", sel.Sel.Name)
				}
				return
			}
		}
	}
	checkBoxingCall(pass, fi, call, stack)
}

// checkBoxingCall flags concrete values passed where an interface
// parameter is declared (implicit boxing → heap allocation), and
// explicit conversions to interface types.
func checkBoxingCall(pass *analysis.Pass, fi *directives.FuncInfo, call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x).
		if len(call.Args) == 1 {
			reportBoxing(pass, fi, call.Args[0], tv.Type, stack)
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no boxing per element
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		reportBoxing(pass, fi, arg, pt, stack)
	}
}

func checkBoxingAssign(pass *analysis.Pass, fi *directives.FuncInfo, as *ast.AssignStmt, stack []ast.Node) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	info := pass.TypesInfo
	for i, lhs := range as.Lhs {
		lt := info.TypeOf(lhs)
		if lt == nil {
			continue
		}
		reportBoxing(pass, fi, as.Rhs[i], lt, stack)
	}
}

func checkBoxingValueSpec(pass *analysis.Pass, fi *directives.FuncInfo, spec *ast.ValueSpec, stack []ast.Node) {
	if spec.Type == nil || len(spec.Values) == 0 {
		return
	}
	dt := pass.TypesInfo.TypeOf(spec.Type)
	if dt == nil {
		return
	}
	for _, v := range spec.Values {
		reportBoxing(pass, fi, v, dt, stack)
	}
}

func checkBoxingReturn(pass *analysis.Pass, fi *directives.FuncInfo, ret *ast.ReturnStmt, stack []ast.Node, info *types.Info) {
	sig := enclosingSignature(fi, stack, info)
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		reportBoxing(pass, fi, res, sig.Results().At(i).Type(), stack)
	}
}

// enclosingSignature finds the signature governing a return statement:
// the innermost enclosing function literal on the stack, else the
// declared function itself.
func enclosingSignature(fi *directives.FuncInfo, stack []ast.Node, info *types.Info) *types.Signature {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			if sig, ok := info.TypeOf(lit).(*types.Signature); ok {
				return sig
			}
			return nil
		}
	}
	if fi.Obj == nil {
		return nil
	}
	sig, _ := fi.Obj.Type().(*types.Signature)
	return sig
}

// reportBoxing reports expr if storing it into destination type dst
// boxes a concrete value into an interface.
func reportBoxing(pass *analysis.Pass, fi *directives.FuncInfo, expr ast.Expr, dst types.Type, stack []ast.Node) {
	if fi.Allows("box") {
		return
	}
	info := pass.TypesInfo
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil {
		return // constants (incl. untyped strings to panic/error paths) don't escape per call
	}
	if !boxes(tv.Type) {
		return
	}
	if walk.InPanicArg(stack, info) {
		return
	}
	pass.Reportf(expr.Pos(), "%s boxes into interface %s on a hot path (allocates); keep hot signatures concrete", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), types.TypeString(dst, types.RelativeTo(pass.Pkg)))
}

// boxes reports whether converting a value of type t to an interface
// allocates. Pointer-shaped types (pointers, channels, maps, funcs,
// unsafe pointers) box without allocating only for word-sized direct
// interfaces; gc still allocates for most of them, but the runtime's
// pointer-shaped cases are the accepted idiom (sync.Pool.Put of a
// pointer), so we exempt them.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return false
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

func checkStringConcat(pass *analysis.Pass, fi *directives.FuncInfo, be *ast.BinaryExpr, stack []ast.Node) {
	if be.Op.String() != "+" || fi.Allows("strcat") {
		return
	}
	info := pass.TypesInfo
	tv, ok := info.Types[be]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil {
		return // constant-folded at compile time
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return
	}
	// Report only the outermost + of a concat chain.
	if len(stack) >= 2 {
		if parent, ok := stack[len(stack)-2].(*ast.BinaryExpr); ok && parent.Op.String() == "+" {
			if pt, ok := info.Types[parent]; ok && pt.Type != nil {
				if pb, ok := pt.Type.Underlying().(*types.Basic); ok && pb.Info()&types.IsString != 0 {
					return
				}
			}
		}
	}
	if walk.InPanicArg(stack, info) {
		return
	}
	pass.Reportf(be.Pos(), "string concatenation allocates on a hot path; precompute the string or write into a pooled buffer")
}

func checkCompositeLit(pass *analysis.Pass, fi *directives.FuncInfo, cl *ast.CompositeLit, stack []ast.Node) {
	info := pass.TypesInfo
	tv, ok := info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	var kind string
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		kind = "map"
	case *types.Slice:
		kind = "slice"
	default:
		return
	}
	if fi.Allows("lit") || walk.InPanicArg(stack, info) {
		return
	}
	pass.Reportf(cl.Pos(), "%s literal allocates on a hot path; hoist it to a package variable or preallocated scratch", kind)
}
