// Package factbuild computes the facts a package exports (see
// internal/lint/facts for the data model). The driver runs it once per
// package in dependency order, feeding each package the already-decoded
// facts of its dependencies, so fact flow follows the import DAG the
// same way compiled export data does.
//
// The interesting computation is the latent-violation fold: hot-path
// violations in functions that are NOT hot are exported anyway, because
// a caller in a dependent package may pull the function onto the hot
// path. Folding is transitive — a non-hot function's export includes
// its same-package and imported callees' latent violations with the
// call chain recorded — so a hot root two packages up still sees the
// leaf violation at its own call site. Hot functions export no
// violations (they are fully checked where they are declared) and cold
// functions stop the fold, mirroring intra-package propagation rules.
package factbuild

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"mnnfast/internal/lint/directives"
	"mnnfast/internal/lint/facts"
	"mnnfast/internal/lint/hotscan"
	"mnnfast/internal/lint/lockscan"
	"mnnfast/internal/lint/walk"
)

// MaxViolations caps the latent violations exported per function.
// Enough for a caller to see what it would drag onto the hot path; the
// full list shows up once the function is actually annotated hot.
const MaxViolations = 8

// PosString renders pos as "file.go:line:col" with the file reduced to
// its base name, so facts do not embed machine-specific paths.
func PosString(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}

// Compute builds the fact package for one type-checked package. deps
// holds the decoded facts of its (transitive) in-module dependencies
// and may be nil.
func Compute(fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info, deps *facts.Set) *facts.Package {
	di := directives.Collect(files, info)
	locks := lockscan.Scan(fset, info, di, deps)

	fp := &facts.Package{
		Path:  tpkg.Path(),
		Funcs: make(map[string]*facts.Func),
	}

	suppressed := suppressedLines(fset, files)
	callees := callGraph(di, info)

	// memo holds each non-hot function's folded latent violations.
	memo := make(map[string][]facts.Violation)
	visiting := make(map[string]bool)
	var fold func(fi *directives.FuncInfo) []facts.Violation
	fold = func(fi *directives.FuncInfo) []facts.Violation {
		sym := lockscan.Symbol(fi.Decl)
		if v, ok := memo[sym]; ok {
			return v
		}
		if visiting[sym] {
			return nil // recursion: cut the cycle, own violations still count once
		}
		visiting[sym] = true
		defer delete(visiting, sym)

		var out []facts.Violation
		for _, f := range hotscan.Scan(info, tpkg, fi) {
			if suppressed(f.Pos, "hotalloc") {
				continue
			}
			out = append(out, facts.Violation{
				Construct: f.Construct,
				Pos:       PosString(fset, f.Pos),
				Msg:       f.Msg,
			})
		}
		for _, callee := range callees[sym] {
			out = append(out, calleeViolations(di, deps, fold, callee)...)
		}
		out = dedupViolations(out)
		if len(out) > MaxViolations {
			out = out[:MaxViolations]
		}
		memo[sym] = out
		return out
	}

	for _, fi := range di.Funcs() {
		sym := lockscan.Symbol(fi.Decl)
		f := &facts.Func{
			Hot:      fi.Hot,
			Cold:     fi.Cold,
			PoolGet:  fi.PoolGet,
			PoolPut:  fi.PoolPut,
			Locked:   append([]string(nil), fi.Locked...),
			Acquires: locks.Acquires[sym],
			Retains:  locks.Retains[sym],
		}
		if !fi.Hot && !fi.Cold {
			f.Violations = fold(fi)
		}
		if !f.Zero() {
			fp.Funcs[sym] = f
		}
	}

	fp.Guards = collectGuards(files, info)
	for _, e := range locks.Edges {
		fp.Edges = append(fp.Edges, facts.LockEdge{
			From: e.From, To: e.To,
			Pos:  PosString(fset, e.Pos),
			Func: e.Func,
		})
	}
	pins, _ := directives.Pins(files)
	for _, p := range pins {
		fp.Pins = append(fp.Pins, facts.Pin{
			Before: lockscan.ResolvePin(tpkg.Path(), p.Before),
			After:  lockscan.ResolvePin(tpkg.Path(), p.After),
			Pos:    PosString(fset, p.Pos),
		})
	}
	return fp
}

// calleeViolations returns the latent violations a call to callee would
// pull in: none if the callee is hot (checked at home) or cold
// (boundary), its folded set otherwise, each with the callee symbol
// prepended to the chain.
func calleeViolations(di *directives.Info, deps *facts.Set, fold func(*directives.FuncInfo) []facts.Violation, callee *types.Func) []facts.Violation {
	var (
		vs    []facts.Violation
		label string
	)
	if fi := di.ByObj(callee); fi != nil {
		if fi.Hot || fi.Cold {
			return nil
		}
		label = lockscan.ObjSymbol(callee)
		vs = fold(fi)
	} else if callee.Pkg() != nil {
		ff := deps.FuncFact(callee.Pkg().Path(), lockscan.ObjSymbol(callee))
		if ff == nil || ff.Hot || ff.Cold {
			return nil
		}
		label = callee.Pkg().Path() + "." + lockscan.ObjSymbol(callee)
		vs = ff.Violations
	}
	out := make([]facts.Violation, 0, len(vs))
	for _, v := range vs {
		nv := v
		nv.Path = append([]string{label}, v.Path...)
		out = append(out, nv)
	}
	return out
}

// callGraph maps each function symbol to the named functions it calls
// (local and imported), in source order.
func callGraph(di *directives.Info, info *types.Info) map[string][]*types.Func {
	graph := make(map[string][]*types.Func)
	for _, fi := range di.Funcs() {
		if fi.Decl.Body == nil {
			continue
		}
		sym := lockscan.Symbol(fi.Decl)
		seen := make(map[*types.Func]bool)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			if fn, ok := info.Uses[id].(*types.Func); ok && !seen[fn] {
				seen[fn] = true
				graph[sym] = append(graph[sym], fn)
			}
			return true
		})
	}
	return graph
}

func dedupViolations(vs []facts.Violation) []facts.Violation {
	type key struct{ construct, pos string }
	seen := make(map[key]bool)
	out := vs[:0]
	for _, v := range vs {
		k := key{v.Construct, v.Pos}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, v)
	}
	return out
}

// suppressedLines precomputes per-file //mnnfast:allow maps and returns
// a position-based suppression query.
func suppressedLines(fset *token.FileSet, files []*ast.File) func(pos token.Pos, analyzer string) bool {
	type fileAllow struct {
		file    *ast.File
		allowed map[int][]string
	}
	var fas []fileAllow
	for _, f := range files {
		if m := directives.AllowedLines(fset, f); m != nil {
			fas = append(fas, fileAllow{file: f, allowed: m})
		}
	}
	return func(pos token.Pos, analyzer string) bool {
		for _, fa := range fas {
			if pos < fa.file.Pos() || pos > fa.file.End() {
				continue
			}
			line := fset.Position(pos).Line
			for _, l := range []int{line, line - 1} {
				for _, name := range fa.allowed[l] {
					if name == analyzer {
						return true
					}
				}
			}
		}
		return false
	}
}

// collectGuards finds `// guarded by <mu>` struct-field annotations and
// maps "Type.Field" to the guarding sibling field name. Only fields of
// named struct types are exported — those are the ones reachable from
// other packages.
func collectGuards(files []*ast.File, info *types.Info) map[string]string {
	guards := make(map[string]string)
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					guard := walk.GuardAnnotation(field.Doc, field.Comment)
					if guard == "" {
						continue
					}
					for _, name := range field.Names {
						guards[ts.Name.Name+"."+name.Name] = guard
					}
				}
			}
		}
	}
	if len(guards) == 0 {
		return nil
	}
	return guards
}
