// Package baseline implements the checked-in suppression file that
// lets a new analyzer land strict without a flag-day: known findings go
// into lint.baseline (one per line), the driver subtracts them from a
// run's results, and entries that no longer fire are reported as stale
// so the file only ever shrinks.
//
// Line format (tab-separated, matching report.Finding.Key):
//
//	internal/server/batch.go	[hotalloc]	append on a hot path ...
//
// Lines carry no line numbers, so a baseline survives edits elsewhere
// in the file; a finding whose message or file changes escapes the
// baseline and must be re-triaged. Duplicate lines mean the same
// finding is expected that many times. '#' lines and blank lines are
// comments.
package baseline

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"mnnfast/internal/lint/report"
)

// Baseline is a multiset of expected finding keys.
type Baseline struct {
	counts map[string]int
	order  []string
}

// Parse reads a baseline file.
func Parse(r io.Reader) (*Baseline, error) {
	b := &Baseline{counts: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if strings.TrimSpace(text) == "" || strings.HasPrefix(strings.TrimSpace(text), "#") {
			continue
		}
		if strings.Count(text, "\t") < 2 {
			return nil, fmt.Errorf("baseline line %d: want `file<TAB>[analyzer]<TAB>message`, got %q", line, text)
		}
		if b.counts[text] == 0 {
			b.order = append(b.order, text)
		}
		b.counts[text]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Len returns the number of distinct baseline entries.
func (b *Baseline) Len() int {
	if b == nil {
		return 0
	}
	return len(b.order)
}

// Apply subtracts baselined findings and returns the ones that remain
// (new findings) plus the baseline entries that no longer fire (stale,
// with multiplicity collapsed). A nil baseline keeps everything.
func (b *Baseline) Apply(findings []report.Finding) (fresh []report.Finding, stale []string) {
	if b == nil {
		return findings, nil
	}
	remaining := make(map[string]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	for _, f := range findings {
		k := f.Key()
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	for _, k := range b.order {
		if remaining[k] > 0 {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, stale
}

// Write renders the findings as a fresh baseline file, sorted, with a
// header comment documenting the format.
func Write(w io.Writer, findings []report.Finding) error {
	lines := make([]string, 0, len(findings))
	for _, f := range findings {
		lines = append(lines, f.Key())
	}
	sort.Strings(lines)
	if _, err := fmt.Fprintln(w, "# mnnfast-lint baseline: known findings subtracted from every run."); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# Regenerate with `make lint-update-baseline`; stale entries fail the build."); err != nil {
		return err
	}
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
