package baseline

import (
	"bytes"
	"strings"
	"testing"

	"mnnfast/internal/lint/report"
)

func finding(file, analyzer, msg string) report.Finding {
	return report.Finding{File: file, Line: 1, Column: 1, Analyzer: analyzer, Message: msg}
}

func TestParseApplyStale(t *testing.T) {
	src := strings.Join([]string{
		"# comment",
		"",
		"a.go\t[hotalloc]\tappend on a hot path",
		"a.go\t[hotalloc]\tappend on a hot path", // same finding expected twice
		"b.go\t[poolescape]\tnever returned",
	}, "\n")
	b, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2 distinct entries", b.Len())
	}

	fresh, stale := b.Apply([]report.Finding{
		finding("a.go", "hotalloc", "append on a hot path"),
		finding("a.go", "hotalloc", "append on a hot path"),
		finding("a.go", "hotalloc", "append on a hot path"), // third occurrence escapes the pair in the baseline
		finding("c.go", "ctxleak", "fire-and-forget"),
	})
	if len(fresh) != 2 {
		t.Errorf("fresh = %v, want the third duplicate and the c.go finding", fresh)
	}
	if len(stale) != 1 || !strings.HasPrefix(stale[0], "b.go\t") {
		t.Errorf("stale = %v, want the unfired b.go entry", stale)
	}
}

func TestParseRejectsBadLines(t *testing.T) {
	if _, err := Parse(strings.NewReader("a.go [hotalloc] spaces not tabs\n")); err == nil {
		t.Error("space-separated line must be rejected")
	}
}

func TestNilBaselineKeepsEverything(t *testing.T) {
	var b *Baseline
	fs := []report.Finding{finding("a.go", "x", "m")}
	fresh, stale := b.Apply(fs)
	if len(fresh) != 1 || stale != nil {
		t.Errorf("nil baseline: fresh=%v stale=%v", fresh, stale)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	fs := []report.Finding{
		finding("b.go", "poolescape", "never returned"),
		finding("a.go", "hotalloc", "append on a hot path"),
		finding("a.go", "hotalloc", "append on a hot path"),
	}
	var buf bytes.Buffer
	if err := Write(&buf, fs); err != nil {
		t.Fatalf("write: %v", err)
	}
	b, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	fresh, stale := b.Apply(fs)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("a just-written baseline must exactly cover its findings: fresh=%v stale=%v", fresh, stale)
	}
}
