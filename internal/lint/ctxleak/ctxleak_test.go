package ctxleak_test

import (
	"testing"

	"mnnfast/internal/lint/ctxleak"
	"mnnfast/internal/lint/linttest"
)

func TestCtxleak(t *testing.T) {
	linttest.Run(t, ctxleak.Analyzer, "a")
}
