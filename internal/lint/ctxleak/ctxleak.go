// Package ctxleak checks goroutine and timer hygiene on the serving
// tier. Two invariants:
//
//  1. A goroutine launched inside request scope — any function that
//     receives a context.Context or *http.Request — must be joinable or
//     cancellable: its body must use the request's context (select on
//     ctx.Done), signal a sync.WaitGroup, receive the context as an
//     argument, or select on an external signal channel (the quit /
//     closed channel shutdown idiom). A bare `go` that does none of
//     these is fire-and-forget: it outlives the request, keeps its
//     captures alive, and multiplies under load until the process dies —
//     exactly the leak class a multi-node serving tier turns from a slow
//     drip into an outage.
//
//  2. time.After must not be used inside loops (each call arms a timer
//     that is only reclaimed when it fires — a per-iteration allocation
//     with minutes-long lifetime under a long timeout), and time.Tick
//     must not be used at all (its ticker can never be stopped).
//
// Deliberately detached goroutines (daemon housekeeping spawned from a
// request path by design) carry a `//mnnfast:allow ctxleak <reason>`
// line comment.
package ctxleak

import (
	"go/ast"
	"go/types"

	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/directives"
	"mnnfast/internal/lint/walk"
)

// Analyzer is the ctxleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxleak",
	Doc:  "goroutines in request scope must be joined or cancellable via ctx/WaitGroup/signal channel; no time.After in loops or time.Tick anywhere",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	di := directives.Collect(pass.Files, pass.TypesInfo)
	for _, fi := range di.Funcs() {
		if fi.Decl.Body == nil {
			continue
		}
		scope := scopeParams(pass.TypesInfo, fi.Decl)
		walk.WithStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if len(scope) > 0 {
					checkGo(pass, n, scope)
				}
			case *ast.CallExpr:
				checkTimer(pass, n, stack)
			}
			return true
		})
	}
	return nil, nil
}

// scopeParams returns the function's request-scope parameters: those of
// type context.Context or *net/http.Request.
func scopeParams(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if isRequestScoped(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

func isRequestScoped(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "context.Context", "net/http.Request":
		return true
	}
	return false
}

// checkGo flags a go statement in request scope unless the goroutine is
// tied to the request or to an explicit join/shutdown mechanism.
func checkGo(pass *analysis.Pass, g *ast.GoStmt, scope []types.Object) {
	info := pass.TypesInfo

	// Named call receiving a scope param as an argument: the callee owns
	// cancellation.
	for _, arg := range g.Call.Args {
		for _, obj := range scope {
			if walk.UsesObj(arg, info, obj) {
				return
			}
		}
	}

	body := ast.Node(g.Call)
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		body = lit.Body
	}
	for _, obj := range scope {
		if walk.UsesObj(body, info, obj) {
			return // selects on ctx.Done() or forwards ctx
		}
	}
	if usesWaitGroup(info, body) {
		return // wg.Done() — someone joins it
	}
	if selectsExternalChannel(info, body) {
		return // quit/closed channel shutdown idiom
	}
	pass.Reportf(g.Pos(), "goroutine launched in request scope is fire-and-forget: it neither uses the request context, signals a WaitGroup, nor selects on a shutdown channel; join it or select on ctx.Done() so cancellation propagates (`//mnnfast:allow ctxleak <reason>` if detached by design)")
}

// usesWaitGroup reports whether the body references a sync.WaitGroup
// variable (wg.Done / wg.Add / passing &wg).
func usesWaitGroup(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		t := v.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup" {
			found = true
		}
		return !found
	})
	return found
}

// selectsExternalChannel reports whether the body contains a receive —
// in a select case or as a statement — from a channel not declared
// inside the body itself: the external signal the goroutine shuts down
// on.
func selectsExternalChannel(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op.String() != "<-" {
			return true
		}
		root := chanRoot(ue.X)
		if root == nil {
			return true
		}
		obj := info.Uses[root]
		if obj == nil {
			return true
		}
		if obj.Pos() < body.Pos() || obj.Pos() > body.End() {
			found = true
		}
		return !found
	})
	return found
}

// chanRoot finds the root identifier of a channel expression: x in
// `<-x`, `<-x.quit`, `<-x.Done()`.
func chanRoot(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.CallExpr:
			e = v.Fun
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// checkTimer flags time.After inside loops and time.Tick anywhere.
func checkTimer(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
	if !ok || pn.Imported().Path() != "time" {
		return
	}
	switch sel.Sel.Name {
	case "After":
		if walk.InLoop(stack) {
			pass.Reportf(call.Pos(), "time.After in a loop arms a new timer every iteration that is only reclaimed when it fires; hoist a time.Timer and Reset it, or derive a context with a deadline")
		}
	case "Tick":
		pass.Reportf(call.Pos(), "time.Tick leaks its ticker (it can never be stopped); use time.NewTicker and defer Stop")
	}
}
