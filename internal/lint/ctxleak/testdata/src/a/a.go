// Package fixture exercises ctxleak: fire-and-forget goroutines in
// request scope, the joinable/cancellable escapes, timer hygiene, and
// the allow suppression.
package fixture

import (
	"context"
	"net/http"
	"sync"
	"time"
)

func audit(n int)                       {}
func auditCtx(ctx context.Context)      {}
func process(ctx context.Context) error { return nil }
func handleSlow(w any, r *http.Request) {}

// Leak launches a goroutine that nothing can cancel or join.
func Leak(ctx context.Context, n int) {
	go audit(n) // want "goroutine launched in request scope is fire-and-forget"
}

// LeakLit is the literal form of the same mistake.
func LeakLit(r *http.Request, n int) {
	go func() { // want "goroutine launched in request scope is fire-and-forget"
		audit(n)
	}()
}

// CtxArg hands the context to the callee: the callee owns cancellation.
func CtxArg(ctx context.Context) {
	go auditCtx(ctx)
}

// CtxBody selects on ctx.Done: cancellable.
func CtxBody(ctx context.Context, work chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case n := <-work:
			audit(n)
		}
	}()
}

// Joined signals a WaitGroup: someone waits for it.
func Joined(ctx context.Context, n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		audit(n)
	}()
	wg.Wait()
}

// Shutdown receives from a channel declared outside the goroutine: the
// quit-channel idiom.
func Shutdown(ctx context.Context, quit chan struct{}) {
	go func() {
		<-quit
	}()
}

// Daemon is detached by design and says so.
func Daemon(ctx context.Context, n int) {
	go audit(n) //mnnfast:allow ctxleak housekeeping daemon outlives the request by design
}

// NotRequestScope has no ctx or request parameter: out of scope for the
// goroutine rule.
func NotRequestScope(n int) {
	go audit(n)
}

// AfterInLoop arms a timer per iteration.
func AfterInLoop(ctx context.Context, work chan int) {
	for {
		select {
		case <-time.After(time.Second): // want "time.After in a loop arms a new timer every iteration"
			return
		case n := <-work:
			audit(n)
		}
	}
}

// AfterOnce outside a loop is fine.
func AfterOnce(ctx context.Context) {
	<-time.After(time.Millisecond)
}

// Tick can never be stopped, loop or not.
func Tick() {
	for range time.Tick(time.Second) { // want "time.Tick leaks its ticker"
		return
	}
}
