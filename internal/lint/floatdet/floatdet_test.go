package floatdet_test

import (
	"testing"

	"mnnfast/internal/lint/floatdet"
	"mnnfast/internal/lint/linttest"
)

func TestFloatdet(t *testing.T) {
	linttest.Run(t, floatdet.Analyzer, "a")
}
