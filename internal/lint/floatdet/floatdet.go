// Package floatdet guards the runtime's float determinism contract:
// the batched path must be bit-identical to the single-request path
// (the batch-equivalence tests assert exact equality), and the fast
// float32 kernels must not silently detour through float64.
//
// Two rules:
//
//  1. In //mnnfast:hotpath functions (and their same-package callees),
//     math.Exp-family calls and float32→float64 conversions are
//     flagged — the hot path computes in float32 via the dedicated
//     kernels (tensor.Expf, tensor.ExpInto). The slow reference twins,
//     any function whose name ends in "Scalar", are exempt: they exist
//     precisely to document the float64 ground truth.
//
//  2. Anywhere in the package, a floating-point compound accumulation
//     (+=, -=, *=, /=) inside a `range` over a map is flagged: map
//     iteration order is randomized per run, and float addition is not
//     associative, so the result differs run to run and breaks the
//     bit-identical guarantee.
package floatdet

import (
	"go/ast"
	"go/types"
	"strings"

	"mnnfast/internal/lint/analysis"
	"mnnfast/internal/lint/directives"
	"mnnfast/internal/lint/walk"
)

// Analyzer is the floatdet pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatdet",
	Doc:  "no float64 math on float32 hot paths outside *Scalar reference twins; no float accumulation over map iteration order",
	Run:  run,
}

// mathFns are the float64 transcendental entry points the float32
// kernels replace.
var mathFns = map[string]bool{
	"Exp": true, "Exp2": true, "Expm1": true,
	"Log": true, "Log2": true, "Log10": true, "Log1p": true,
	"Pow": true, "Tanh": true,
	// math.Sqrt is deliberately absent: float32(math.Sqrt(float64(x)))
	// compiles to a single hardware sqrt and is the correct float32
	// idiom — but note the conversion rule still flags the round-trip,
	// so hot sqrt sites need a //mnnfast:allow when they appear.
}

func run(pass *analysis.Pass) (any, error) {
	di := directives.Collect(pass.Files, pass.TypesInfo)
	for _, fi := range di.Funcs() {
		if fi.Decl.Body == nil {
			continue
		}
		if fi.Hot && !strings.HasSuffix(fi.Decl.Name.Name, "Scalar") && !fi.Allows("float64") {
			checkHot(pass, fi)
		}
		checkMapAccum(pass, fi)
	}
	return nil, nil
}

func checkHot(pass *analysis.Pass, fi *directives.FuncInfo) {
	info := pass.TypesInfo
	walk.WithStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if walk.InPanicArg(stack, info) {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "math" && mathFns[fn.Name()] {
				pass.Reportf(call.Pos(), "math.%s computes in float64 on a float32 hot path; use the float32 kernels (tensor.Expf / tensor.ExpInto) or move this into a *Scalar reference twin", fn.Name())
				return true
			}
		}
		// float64(x) where x is float32: a round-trip that changes
		// rounding behavior relative to the pure-float32 kernels.
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() || len(call.Args) != 1 {
			return true
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Kind() != types.Float64 {
			return true
		}
		at := info.TypeOf(call.Args[0])
		if at == nil {
			return true
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.Float32 {
			pass.Reportf(call.Pos(), "float32 → float64 round-trip on a hot path; the fast path must stay in float32 to match the kernels bit-for-bit")
		}
		return true
	})
}

// checkMapAccum flags float compound accumulation inside map ranges in
// any function, hot or not: even offline code feeding model weights
// must be deterministic for the batch-equivalence tests to mean
// anything.
func checkMapAccum(pass *analysis.Pass, fi *directives.FuncInfo) {
	info := pass.TypesInfo
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		xt := info.TypeOf(rng.X)
		if xt == nil {
			return true
		}
		if _, isMap := xt.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch as.Tok.String() {
			case "+=", "-=", "*=", "/=":
			default:
				return true
			}
			lt := info.TypeOf(as.Lhs[0])
			if lt == nil {
				return true
			}
			if b, ok := lt.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				pass.Reportf(as.Pos(), "float accumulation inside a map range depends on randomized iteration order and is nondeterministic; iterate a sorted key slice instead")
			}
			return true
		})
		return true
	})
}
