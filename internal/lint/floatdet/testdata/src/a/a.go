// Package fixture exercises floatdet: float64 detours on float32 hot
// paths, map-order-dependent float accumulation, and the allowed
// shapes (*Scalar reference twins, sorted-key iteration, integer
// accumulation, suppressions).
package fixture

import "math"

// expf stands in for the runtime's float32 exp kernel.
func expf(x float32) float32 { return x }

// SoftmaxFast is the hot float32 path: float64 math is banned.
//
//mnnfast:hotpath
func SoftmaxFast(xs []float32) {
	for i, x := range xs {
		xs[i] = expf(x)
		_ = math.Exp(float64(1))         // want "math.Exp computes in float64 on a float32 hot path"
		_ = float64(x)                   // want "float32 → float64 round-trip on a hot path"
		_ = math.Tanh(float64(int64(i))) // want "math.Tanh computes in float64 on a float32 hot path"
	}
}

// SoftmaxScalar is the reference twin: float64 ground truth is its
// whole point, so the *Scalar suffix exempts it.
//
//mnnfast:hotpath
func SoftmaxScalar(xs []float32) {
	for i, x := range xs {
		xs[i] = float32(math.Exp(float64(x)))
	}
}

// hot propagation reaches helpers too.
func expHelper(x float32) float64 {
	return math.Exp(float64(x)) // want "math.Exp computes in float64 on a float32 hot path" "float32 → float64 round-trip on a hot path"
}

//mnnfast:hotpath
func UsesHelper(x float32) float64 { return expHelper(x) }

// SumWeights accumulates floats in map order: nondeterministic.
func SumWeights(w map[string]float32) float32 {
	var total float32
	for _, v := range w {
		total += v // want "float accumulation inside a map range"
	}
	return total
}

// CountKeys accumulates an int in map order: order-independent, fine.
func CountKeys(w map[string]float32) int {
	n := 0
	for range w {
		n++
	}
	return n
}

// SumSorted iterates a slice, not the map: deterministic.
func SumSorted(keys []string, w map[string]float32) float32 {
	var total float32
	for _, k := range keys {
		total += w[k]
	}
	return total
}

// Suppressed documents a map-order accumulation whose result is
// provably order-independent for the caller (a debug-only checksum).
func Checksum(w map[string]float32) float64 {
	var sum float64
	for _, v := range w {
		//mnnfast:allow floatdet debug-only, never feeds inference
		sum += float64(v)
	}
	return sum
}
