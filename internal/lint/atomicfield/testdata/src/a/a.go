// Package fixture exercises atomicfield: mixed atomic/plain access to
// the same field, the 64-bit alignment trap, and the safe idioms
// (all-atomic access, typed atomic wrappers, suppressions).
package fixture

import "sync/atomic"

// counters mixes a legacy atomic field with plain ones.
type counters struct {
	hits   int64 // atomically accessed everywhere: fine
	mixed  int64 // atomically AND plainly accessed: flagged at the plain sites
	plain  int64 // never atomic: plain access is fine
	ticker atomic.Int64
}

func (c *counters) Bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.mixed, 1)
	c.plain++
	c.ticker.Add(1)
}

func (c *counters) Read() int64 {
	total := atomic.LoadInt64(&c.hits)
	total += c.mixed // want "non-atomic access to field mixed"
	total += c.plain
	return total + c.ticker.Load()
}

func (c *counters) Reset() {
	atomic.StoreInt64(&c.hits, 0)
	c.mixed = 0 // want "non-atomic access to field mixed"
	c.plain = 0
}

// Suppressed documents a plain read that is safe by construction
// (single-threaded init before the struct is published).
func (c *counters) InitDone() bool {
	//mnnfast:allow atomicfield read before publication
	return c.mixed == 0
}

// misaligned puts an atomically-updated int64 after a bool: offset 4
// under 32-bit layout, where 64-bit atomics fault.
type misaligned struct {
	ready bool
	n     int64 // want "64-bit field n is accessed atomically but sits at offset"
}

func (m *misaligned) Inc() { atomic.AddInt64(&m.n, 1) }

// aligned leads with the 64-bit field: offset 0 everywhere.
type aligned struct {
	n     int64
	ready bool
}

func (a *aligned) Inc() { atomic.AddInt64(&a.n, 1) }
