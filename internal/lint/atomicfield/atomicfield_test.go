package atomicfield_test

import (
	"testing"

	"mnnfast/internal/lint/atomicfield"
	"mnnfast/internal/lint/linttest"
)

func TestAtomicfield(t *testing.T) {
	linttest.Run(t, atomicfield.Analyzer, "a")
}
