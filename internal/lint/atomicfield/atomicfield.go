// Package atomicfield enforces all-or-nothing atomicity on struct
// fields: a field passed by address to a sync/atomic function anywhere
// in the package must never be read or written through ordinary loads
// and stores elsewhere — a single plain access races with every atomic
// one and tears 64-bit values on 32-bit targets. It also checks that
// any such 64-bit field is 8-byte aligned under 32-bit layout rules
// (first in its struct or preceded only by 8-byte-aligned content),
// the classic sync/atomic alignment bug.
//
// Fields of the modern typed wrappers (atomic.Int64, atomic.Uint64,
// atomic.Bool, …) are safe by construction — the types have no plain
// accessors and carry their own alignment — so this analyzer's tree
// findings concern the legacy &x.f style only. It exists to keep that
// style from creeping in: the obs metrics core (PR 2) is lock-free
// precisely because every shared word is atomic.
package atomicfield

import (
	"go/ast"
	"go/types"

	"mnnfast/internal/lint/analysis"
)

// Analyzer is the atomicfield pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be accessed non-atomically, and atomic 64-bit fields must be alignment-safe for 32-bit targets",
	Run:  run,
}

// addrFns are the sync/atomic functions whose first argument is the
// address of the word they operate on.
var addrFns = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// Pass 1: every field whose address feeds a sync/atomic call, and
	// the selector nodes of those calls (exempt from pass 2).
	atomicFields := make(map[*types.Var]bool)
	exempt := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !addrFns[fn.Name()] {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op.String() != "&" {
				return true
			}
			fieldSel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if v, ok := info.Uses[fieldSel.Sel].(*types.Var); ok && v.IsField() {
				atomicFields[v] = true
				exempt[fieldSel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Pass 2: any other selector resolving to an atomic field is a
	// plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || exempt[sel] {
				return true
			}
			v, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok || !v.IsField() {
				return true
			}
			if atomicFields[v] {
				pass.Reportf(sel.Sel.Pos(), "non-atomic access to field %s, which is accessed with sync/atomic elsewhere in this package; use sync/atomic (or the atomic.Int64-style typed wrappers) for every access", v.Name())
			}
			return true
		})
	}

	checkAlignment(pass, atomicFields)
	return nil, nil
}

// checkAlignment verifies each atomically-accessed 64-bit field would
// be 8-byte aligned under 32-bit (GOARCH=386) struct layout, where
// word alignment is 4 bytes and misaligned 64-bit atomics fault.
func checkAlignment(pass *analysis.Pass, atomicFields map[*types.Var]bool) {
	sizes := types.SizesFor("gc", "386")
	if sizes == nil {
		return
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok || st.NumFields() == 0 {
			continue
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offsets := sizes.Offsetsof(fields)
		for i, fv := range fields {
			if !atomicFields[fv] {
				continue
			}
			b, ok := fv.Type().Underlying().(*types.Basic)
			if !ok {
				continue
			}
			switch b.Kind() {
			case types.Int64, types.Uint64:
				if offsets[i]%8 != 0 {
					pass.Reportf(fv.Pos(), "64-bit field %s is accessed atomically but sits at offset %d under 32-bit layout; move it to the front of %s or use atomic.Int64, which self-aligns", fv.Name(), offsets[i], name)
				}
			}
		}
	}
}
