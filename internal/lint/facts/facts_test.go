package facts

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func samplePackage() *Package {
	return &Package{
		Path: "mnnfast/internal/server",
		Funcs: map[string]*Func{
			"Server.handle": {
				Hot:    true,
				Locked: []string{"s.mu"},
				Acquires: []string{
					"mnnfast/internal/server.session.mu",
					"mnnfast/internal/obs.Registry.mu",
				},
				Retains: []string{"mnnfast/internal/server.session.mu"},
			},
			"helper": {
				Violations: []Violation{
					{Construct: "fmt", Pos: "data.go:115:22", Msg: "fmt.Errorf allocates", Path: []string{"memnn.Corpus.VectorizeStory"}},
					{Construct: "append", Pos: "data.go:90:3", Msg: "append on a hot path"},
				},
			},
			"Pool.Get": {PoolGet: true},
			"Pool.Put": {PoolPut: true},
			"cold":     {Cold: true},
		},
		Guards: map[string]string{"session.state": "mu"},
		Edges: []LockEdge{
			{From: "mnnfast/internal/server.session.mu", To: "mnnfast/internal/obs.Registry.mu", Pos: "batch.go:108:2", Func: "runAnswerBatch"},
		},
		Pins: []Pin{
			{Before: "mnnfast/internal/server.session.mu", After: "mnnfast/internal/server.session.mu", Pos: "batch.go:12"},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	p := samplePackage()
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got == nil {
		t.Fatal("decoder rejected freshly encoded facts")
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip mutated the package:\n got %+v\nwant %+v", got, p)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := samplePackage().Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := samplePackage().Encode(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("two encodings of the same facts differ:\n%s\n---\n%s", a.String(), b.String())
	}
	if !strings.HasPrefix(a.String(), "mnnfast-facts "+Version+"\n") {
		t.Errorf("missing version header: %q", a.String()[:40])
	}
}

func TestDecodeRejectsForeignStreams(t *testing.T) {
	cases := []string{
		"",
		"not a facts file\n{}\n",
		"mnnfast-facts v0\n{}\n", // older wire version: degrade, not error
		"mnnfast vet stamp\n",
	}
	for _, c := range cases {
		p, err := Decode(strings.NewReader(c))
		if err != nil {
			t.Errorf("Decode(%q) errored: %v (want graceful nil)", c, err)
		}
		if p != nil {
			t.Errorf("Decode(%q) = %+v, want nil", c, p)
		}
	}
}

func TestDecodeCorruptPayloadErrors(t *testing.T) {
	in := "mnnfast-facts " + Version + "\n{truncated"
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Error("corrupt JSON after a valid header must error, not degrade")
	}
}

func TestZeroFuncsDropped(t *testing.T) {
	p := &Package{
		Path: "x",
		Funcs: map[string]*Func{
			"kept":    {Hot: true},
			"retains": {Retains: []string{"x.T.mu"}},
		},
	}
	for sym, f := range p.Funcs {
		if f.Zero() {
			t.Errorf("%s reported zero despite carrying facts", sym)
		}
	}
	if !(&Func{}).Zero() {
		t.Error("empty Func must be zero")
	}
}

func TestSetLookup(t *testing.T) {
	var nilSet *Set
	if nilSet.Pkg("x") != nil || nilSet.FuncFact("x", "F") != nil || nilSet.All() != nil {
		t.Error("nil Set must behave as empty")
	}
	s := NewSet()
	s.Add(samplePackage())
	if s.FuncFact("mnnfast/internal/server", "Server.handle") == nil {
		t.Error("lookup of present fact failed")
	}
	if s.FuncFact("mnnfast/internal/server", "nope") != nil {
		t.Error("lookup of absent symbol must be nil")
	}
	if s.FuncFact("other", "Server.handle") != nil {
		t.Error("lookup in absent package must be nil")
	}
	// Re-adding replaces without duplicating the order slice.
	s.Add(samplePackage())
	if len(s.All()) != 1 {
		t.Errorf("re-add duplicated the package: %d entries", len(s.All()))
	}
}
