// Package facts defines the serialized per-package fact format that
// makes mnnfast-lint a whole-program analysis: each package exports a
// compact summary of its lint-relevant surface — hot/cold annotations,
// pool accessor roles, caller-held-lock contracts, guarded exported
// fields, latent hot-path violations, and the lock-acquisition edges
// observed in its bodies — and every dependent package imports those
// summaries alongside the compiled export data it already type-checks
// against. The design mirrors golang.org/x/tools go/analysis modular
// facts (dependency-direction flow, one file per package, cached with
// the build unit) but stays stdlib-only like the rest of internal/lint.
//
// This package holds only the data model and its serialization; the
// computation lives in internal/lint/factbuild so analyzers can import
// the types without dragging the whole scanner in (and so the analysis
// package can reference Set without an import cycle).
package facts

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Version is the facts wire version. It participates in the vet tool's
// -V=full identity, so bumping it invalidates stale cached facts.
const Version = "v1"

// header is the first line of a serialized facts file. Decoders reject
// anything else (including the pre-facts stamp files older mnnfast-lint
// versions wrote), which downgrades gracefully to "no facts".
const header = "mnnfast-facts " + Version

// Violation is one latent hot-path violation inside a function that is
// not itself hot: the construct would be reported by hotalloc if the
// function ever joined the hot set. Callers in other packages that pull
// the function onto the hot path report these at the call site.
type Violation struct {
	// Construct is the hotalloc construct key (append, fmt, strcat,
	// lit, box, closure, defer, timenow).
	Construct string `json:"construct"`
	// Pos is the violation site, "file.go:line:col" with the file
	// reduced to its base name so facts are machine-independent.
	Pos string `json:"pos"`
	// Msg is the human-readable finding text.
	Msg string `json:"msg"`
	// Path is the call chain from the exporting function down to the
	// violating function, outermost first; empty when the violation is
	// in the exporting function's own body.
	Path []string `json:"path,omitempty"`
}

// Func is the exported fact set of one declared function. The map key
// identifying it is its symbol: "Name" for a plain function,
// "Recv.Name" for a method (pointer receivers stripped).
type Func struct {
	// Hot marks the function hot in its home package — annotated
	// //mnnfast:hotpath or reached from one through same-package calls.
	// Hot functions are fully checked where they are declared, so
	// callers need not re-check them.
	Hot bool `json:"hot,omitempty"`
	// Cold marks an explicit //mnnfast:coldpath: cross-package hot
	// propagation stops here.
	Cold bool `json:"cold,omitempty"`
	// PoolGet/PoolPut mark //mnnfast:pool-get / //mnnfast:pool-put
	// accessor wrappers, so poolescape recognizes imported wrappers
	// without a hardcoded list.
	PoolGet bool `json:"pool_get,omitempty"`
	PoolPut bool `json:"pool_put,omitempty"`
	// Locked lists the //mnnfast:locked expressions the function
	// declares (as spelled in its home package).
	Locked []string `json:"locked,omitempty"`
	// Acquires lists the lock class IDs (see LockEdge) this function
	// may acquire, directly or through same-package callees.
	Acquires []string `json:"acquires,omitempty"`
	// Retains lists the lock classes still held when the function
	// returns (a lockForBatch-style acquire-and-hand-to-caller shape);
	// callers inherit them into their own held sets.
	Retains []string `json:"retains,omitempty"`
	// Violations are the latent hot-path violations reachable from this
	// function while it is not hot (capped, deduplicated).
	Violations []Violation `json:"violations,omitempty"`
}

// LockEdge records that somewhere in the package a lock of class From
// was held while a lock of class To was acquired. Lock classes are
// stable cross-package identifiers: "pkgpath.Type.field" for a mutex
// struct field, "pkgpath.var" for a package-level mutex.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Pos is the acquisition site of To ("file.go:line:col", base name).
	Pos string `json:"pos"`
	// Func is the symbol of the function containing the acquisition.
	Func string `json:"func"`
}

// Pin is one //mnnfast:lockorder directive: the package declares that
// Before is (and must stay) acquired before After. A self pin
// (Before == After) blesses ordered acquisition within one lock class,
// e.g. the batch dispatcher taking several session locks.
type Pin struct {
	Before string `json:"before"`
	After  string `json:"after"`
	// Pos is where the directive appears ("file.go:line", base name).
	Pos string `json:"pos"`
}

// Package is the complete fact set one package exports.
type Package struct {
	// Path is the package's import path.
	Path string `json:"path"`
	// Funcs maps function symbols to their facts. Symbols with an
	// all-zero fact set are omitted.
	Funcs map[string]*Func `json:"funcs,omitempty"`
	// Guards maps "Type.Field" of `// guarded by <mu>` annotated struct
	// fields to the guarding sibling field name, so dependent packages
	// can check accesses to imported guarded fields.
	Guards map[string]string `json:"guards,omitempty"`
	// Edges are the lock-acquisition-order edges observed in this
	// package's bodies (not including imported edges — dependents merge).
	Edges []LockEdge `json:"edges,omitempty"`
	// Pins are the lock orderings this package pins.
	Pins []Pin `json:"pins,omitempty"`
}

// Func returns the named symbol's facts, or nil.
func (p *Package) Func(symbol string) *Func {
	if p == nil {
		return nil
	}
	return p.Funcs[symbol]
}

// Zero reports whether the fact entry carries no information and can be
// dropped from the export.
func (f *Func) Zero() bool {
	return !f.Hot && !f.Cold && !f.PoolGet && !f.PoolPut &&
		len(f.Locked) == 0 && len(f.Acquires) == 0 && len(f.Retains) == 0 &&
		len(f.Violations) == 0
}

// normalize sorts every slice so Encode output is deterministic.
func (p *Package) normalize() {
	for _, f := range p.Funcs {
		sort.Strings(f.Locked)
		sort.Strings(f.Acquires)
		sort.Strings(f.Retains)
		sort.Slice(f.Violations, func(i, j int) bool {
			a, b := f.Violations[i], f.Violations[j]
			if a.Pos != b.Pos {
				return a.Pos < b.Pos
			}
			return a.Construct < b.Construct
		})
	}
	sort.Slice(p.Edges, func(i, j int) bool {
		a, b := p.Edges[i], p.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Pos < b.Pos
	})
	sort.Slice(p.Pins, func(i, j int) bool {
		a, b := p.Pins[i], p.Pins[j]
		if a.Before != b.Before {
			return a.Before < b.Before
		}
		return a.After < b.After
	})
}

// Encode writes the package facts: a version header line followed by
// one JSON document. Output is deterministic (slices sorted, JSON map
// keys sorted by encoding/json).
func (p *Package) Encode(w io.Writer) error {
	p.normalize()
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(p)
}

// Decode reads facts written by Encode. A stream that does not start
// with the current version header returns (nil, nil): older stamp files
// and foreign vet facts degrade to "no facts" rather than an error.
func Decode(r io.Reader) (*Package, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil && err != io.EOF {
		return nil, err
	}
	if strings.TrimRight(line, "\n") != header {
		return nil, nil
	}
	var p Package
	if err := json.NewDecoder(br).Decode(&p); err != nil {
		return nil, fmt.Errorf("facts: decoding: %v", err)
	}
	return &p, nil
}

// Set is the driver-side collection of every fact package loaded for a
// run, keyed by import path. Analyzers reach it through
// analysis.Pass.Facts; a nil *Set is valid and empty.
type Set struct {
	pkgs  map[string]*Package
	order []string // insertion (dependency) order
}

// NewSet returns an empty fact set.
func NewSet() *Set { return &Set{pkgs: make(map[string]*Package)} }

// Add registers a package's facts (replacing any previous entry).
func (s *Set) Add(p *Package) {
	if s == nil || p == nil {
		return
	}
	if _, seen := s.pkgs[p.Path]; !seen {
		s.order = append(s.order, p.Path)
	}
	s.pkgs[p.Path] = p
}

// Pkg returns the facts for an import path, or nil.
func (s *Set) Pkg(path string) *Package {
	if s == nil {
		return nil
	}
	return s.pkgs[path]
}

// All returns every fact package in dependency (insertion) order.
func (s *Set) All() []*Package {
	if s == nil {
		return nil
	}
	out := make([]*Package, 0, len(s.order))
	for _, path := range s.order {
		out = append(out, s.pkgs[path])
	}
	return out
}

// FuncFact looks a symbol up across the set.
func (s *Set) FuncFact(pkgPath, symbol string) *Func {
	return s.Pkg(pkgPath).Func(symbol)
}
