// Package babi provides question-answering datasets in the style of the
// Facebook bAbI tasks (Weston et al. 2015), which the MnnFast paper uses
// for its probability-distribution (Fig 6) and zero-skipping accuracy
// (Fig 7) experiments.
//
// The real bAbI files are not distributable with this repository, so the
// package contains both:
//
//   - a Parser for the genuine bAbI file format, usable if the dataset
//     is present locally, and
//   - a deterministic synthetic Generator producing five task families
//     with the property that matters for the paper's argument — each
//     question is answerable from a small number of supporting
//     sentences, so a trained memory network's attention (p-vector) is
//     sparse.
package babi

import (
	"fmt"
	"strings"
)

// Story is one QA example: an ordered list of story sentences, a
// question, its single-word answer, and the indices of the sentences
// that support the answer (ground truth for sparsity analysis).
type Story struct {
	Sentences [][]string // tokenized story sentences, oldest first
	Question  []string   // tokenized question
	Answer    string     // single-word answer
	Support   []int      // indices into Sentences of supporting facts
}

// Dataset is a set of stories belonging to one task family.
type Dataset struct {
	Task    string
	Stories []Story
}

// Split partitions d into train and test sets with the given train
// fraction (clamped to [0, 1]), preserving order. The caller shuffles
// beforehand if desired.
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	n := int(float64(len(d.Stories)) * trainFrac)
	return &Dataset{Task: d.Task, Stories: d.Stories[:n]},
		&Dataset{Task: d.Task, Stories: d.Stories[n:]}
}

// MaxSentences returns the largest story length in the dataset — the ns
// the memory must accommodate.
func (d *Dataset) MaxSentences() int {
	m := 0
	for _, s := range d.Stories {
		if len(s.Sentences) > m {
			m = len(s.Sentences)
		}
	}
	return m
}

// MaxWords returns the largest sentence or question length in tokens —
// the nw of the paper's Figure 2.
func (d *Dataset) MaxWords() int {
	m := 0
	for _, s := range d.Stories {
		for _, sent := range s.Sentences {
			if len(sent) > m {
				m = len(sent)
			}
		}
		if len(s.Question) > m {
			m = len(s.Question)
		}
	}
	return m
}

// Answers returns the distinct answers in first-seen order; the model's
// output layer is sized by this list.
func (d *Dataset) Answers() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range d.Stories {
		if !seen[s.Answer] {
			seen[s.Answer] = true
			out = append(out, s.Answer)
		}
	}
	return out
}

// String summarizes the dataset for logs.
func (d *Dataset) String() string {
	return fmt.Sprintf("babi.Dataset{task=%s stories=%d maxSent=%d answers=%d}",
		d.Task, len(d.Stories), d.MaxSentences(), len(d.Answers()))
}

// sentence builds a tokenized sentence from space-separated text.
func sentence(text string) []string { return strings.Fields(text) }
