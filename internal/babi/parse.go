package babi

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mnnfast/internal/vocab"
)

// Parse reads the genuine bAbI file format:
//
//	1 Mary moved to the bathroom.
//	2 John went to the hallway.
//	3 Where is Mary? 	bathroom	1
//
// Line numbers restart at 1 for a new story block. Question lines carry
// tab-separated question text, answer, and space-separated supporting
// line numbers. One Story is emitted per question, containing every
// preceding non-question sentence of the block (questions themselves are
// not added to the story memory, matching the standard preprocessing of
// end-to-end memory networks).
func Parse(r io.Reader, task string) (*Dataset, error) {
	d := &Dataset{Task: task}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	var block [][]string // non-question sentences of the current story
	// Initialized eagerly: a malformed file may start mid-block (first
	// line number != 1), and the parser must cope rather than assume
	// the id==1 reset has run.
	lineToIdx := make(map[int]int)
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("babi: line %d: missing line number: %q", lineNum, line)
		}
		id, err := strconv.Atoi(line[:sp])
		if err != nil {
			return nil, fmt.Errorf("babi: line %d: bad line number: %v", lineNum, err)
		}
		rest := line[sp+1:]
		if id == 1 {
			block = nil
			lineToIdx = make(map[int]int)
		}
		if tab := strings.IndexByte(rest, '\t'); tab >= 0 {
			// Question line: question \t answer [\t supports]
			fields := strings.Split(rest, "\t")
			if len(fields) < 2 {
				return nil, fmt.Errorf("babi: line %d: malformed question: %q", lineNum, line)
			}
			q := vocab.Tokenize(fields[0])
			answer := strings.ToLower(strings.TrimSpace(fields[1]))
			if answer == "" {
				return nil, fmt.Errorf("babi: line %d: empty answer", lineNum)
			}
			// Multi-answer tasks list comma-separated answers; keep the
			// raw comma-joined token as a single label.
			answer = strings.ReplaceAll(answer, ",", "-")
			var support []int
			if len(fields) >= 3 {
				for _, f := range strings.Fields(fields[2]) {
					n, err := strconv.Atoi(f)
					if err != nil {
						return nil, fmt.Errorf("babi: line %d: bad support id %q", lineNum, f)
					}
					if idx, ok := lineToIdx[n]; ok {
						support = append(support, idx)
					}
				}
			}
			story := Story{
				Sentences: append([][]string(nil), block...),
				Question:  q,
				Answer:    answer,
				Support:   support,
			}
			d.Stories = append(d.Stories, story)
			continue
		}
		// Plain story sentence.
		lineToIdx[id] = len(block)
		block = append(block, vocab.Tokenize(rest))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("babi: scan: %w", err)
	}
	return d, nil
}

// Format writes the dataset back in bAbI file format; Generate + Format
// round-trips through Parse, which the tests rely on.
func Format(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, s := range d.Stories {
		id := 1
		for _, sent := range s.Sentences {
			if _, err := fmt.Fprintf(bw, "%d %s.\n", id, strings.Join(sent, " ")); err != nil {
				return err
			}
			id++
		}
		supports := make([]string, len(s.Support))
		for i, idx := range s.Support {
			supports[i] = strconv.Itoa(idx + 1) // line numbers are 1-based
		}
		if _, err := fmt.Fprintf(bw, "%d %s?\t%s\t%s\n", id,
			strings.Join(s.Question, " "), s.Answer, strings.Join(supports, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}
