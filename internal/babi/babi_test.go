package babi

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func genOpt(stories, storyLen int) GenOptions {
	return GenOptions{Stories: stories, StoryLen: storyLen, People: 4, Locations: 4}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TaskSingleFact, genOpt(20, 10), rand.New(rand.NewSource(1)))
	b := Generate(TaskSingleFact, genOpt(20, 10), rand.New(rand.NewSource(1)))
	if len(a.Stories) != len(b.Stories) {
		t.Fatalf("nondeterministic story count %d vs %d", len(a.Stories), len(b.Stories))
	}
	for i := range a.Stories {
		if a.Stories[i].Answer != b.Stories[i].Answer {
			t.Fatalf("story %d: answers differ for same seed", i)
		}
	}
}

func TestGenerateAllCoversAllTasks(t *testing.T) {
	ds := GenerateAll(genOpt(3, 8), rand.New(rand.NewSource(2)))
	if len(ds) != int(NumTasks) {
		t.Fatalf("GenerateAll returned %d datasets, want %d", len(ds), NumTasks)
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if len(d.Stories) != 3 {
			t.Errorf("task %s: %d stories, want 3", d.Task, len(d.Stories))
		}
		seen[d.Task] = true
	}
	if len(seen) != int(NumTasks) {
		t.Errorf("duplicate task names in GenerateAll: %v", seen)
	}
}

// verifyAnswer replays the story world and checks the labeled answer.
func verifySingleFact(t *testing.T, s Story) {
	t.Helper()
	target := s.Question[len(s.Question)-1]
	var last string
	for _, sent := range s.Sentences {
		// "X went to the Y"
		if len(sent) == 5 && sent[1] == "went" && sent[0] == target {
			last = sent[4]
		}
	}
	if last == "" {
		t.Fatalf("target %q never moves in story", target)
	}
	if s.Answer != last {
		t.Errorf("answer = %q, replay says %q", s.Answer, last)
	}
}

func TestSingleFactAnswersAreConsistent(t *testing.T) {
	d := Generate(TaskSingleFact, genOpt(200, 15), rand.New(rand.NewSource(3)))
	for _, s := range d.Stories {
		verifySingleFact(t, s)
	}
}

func TestSingleFactSupportIsCorrectSentence(t *testing.T) {
	d := Generate(TaskSingleFact, genOpt(100, 15), rand.New(rand.NewSource(4)))
	for i, s := range d.Stories {
		if len(s.Support) != 1 {
			t.Fatalf("story %d: %d supporting facts, want 1", i, len(s.Support))
		}
		idx := s.Support[0]
		if idx < 0 || idx >= len(s.Sentences) {
			t.Fatalf("story %d: support index %d out of range", i, idx)
		}
		sent := s.Sentences[idx]
		target := s.Question[len(s.Question)-1]
		if sent[0] != target || sent[len(sent)-1] != s.Answer {
			t.Errorf("story %d: support sentence %v does not justify %q/%q", i, sent, target, s.Answer)
		}
	}
}

func TestTwoFactsAnswersAreLocations(t *testing.T) {
	d := Generate(TaskTwoFacts, genOpt(200, 20), rand.New(rand.NewSource(5)))
	locSet := map[string]bool{}
	for _, l := range locations {
		locSet[l] = true
	}
	for i, s := range d.Stories {
		if !locSet[s.Answer] {
			t.Errorf("story %d: answer %q is not a location", i, s.Answer)
		}
		if len(s.Support) == 0 {
			t.Errorf("story %d: no supporting facts", i)
		}
	}
}

func TestYesNoAnswers(t *testing.T) {
	d := Generate(TaskYesNo, genOpt(300, 12), rand.New(rand.NewSource(6)))
	yes, no := 0, 0
	for i, s := range d.Stories {
		switch s.Answer {
		case "yes":
			yes++
		case "no":
			no++
		default:
			t.Fatalf("story %d: answer %q not yes/no", i, s.Answer)
		}
	}
	if yes == 0 || no == 0 {
		t.Errorf("degenerate yes/no distribution: %d yes, %d no", yes, no)
	}
}

func TestCountingAnswersAreNumbers(t *testing.T) {
	d := Generate(TaskCounting, genOpt(200, 20), rand.New(rand.NewSource(7)))
	numSet := map[string]bool{}
	for _, n := range numbers {
		numSet[n] = true
	}
	for i, s := range d.Stories {
		if !numSet[s.Answer] {
			t.Errorf("story %d: answer %q is not a number word", i, s.Answer)
		}
	}
}

func TestBeforeTask(t *testing.T) {
	d := Generate(TaskBefore, genOpt(200, 12), rand.New(rand.NewSource(8)))
	for i, s := range d.Stories {
		if len(s.Support) != 2 {
			t.Fatalf("story %d: %d supports, want 2", i, len(s.Support))
		}
		// The answer must differ from the location named in the question.
		asked := s.Question[len(s.Question)-1]
		if s.Answer == asked {
			t.Errorf("story %d: 'before' answer equals asked location %q", i, asked)
		}
		// Replay: answer is the target's second-to-last location.
		target := s.Question[2]
		var locs []string
		for _, sent := range s.Sentences {
			if len(sent) == 5 && sent[0] == target && sent[1] == "went" {
				locs = append(locs, sent[4])
			}
		}
		if len(locs) < 2 {
			t.Fatalf("story %d: target moved %d times, want >= 2", i, len(locs))
		}
		if want := locs[len(locs)-2]; s.Answer != want {
			t.Errorf("story %d: answer %q, replay says %q", i, s.Answer, want)
		}
	}
}

func TestSupportSparsity(t *testing.T) {
	// The property the paper's zero-skipping rests on: supporting facts
	// are a small fraction of the story.
	opt := genOpt(100, 40)
	for _, task := range AllTasks() {
		d := Generate(task, opt, rand.New(rand.NewSource(9)))
		var totalSupport, totalSentences int
		for _, s := range d.Stories {
			totalSupport += len(s.Support)
			totalSentences += len(s.Sentences)
		}
		frac := float64(totalSupport) / float64(totalSentences)
		if frac > 0.25 {
			t.Errorf("task %s: support fraction %.2f too dense for sparsity experiments", task, frac)
		}
	}
}

func TestDatasetSplit(t *testing.T) {
	d := Generate(TaskSingleFact, genOpt(100, 8), rand.New(rand.NewSource(10)))
	train, test := d.Split(0.8)
	if len(train.Stories) != 80 || len(test.Stories) != 20 {
		t.Errorf("Split(0.8) = %d/%d, want 80/20", len(train.Stories), len(test.Stories))
	}
	train2, test2 := d.Split(-1)
	if len(train2.Stories) != 0 || len(test2.Stories) != 100 {
		t.Errorf("Split(-1) should clamp to 0")
	}
	train3, _ := d.Split(2)
	if len(train3.Stories) != 100 {
		t.Errorf("Split(2) should clamp to 1")
	}
}

func TestDatasetStats(t *testing.T) {
	d := &Dataset{Task: "x", Stories: []Story{
		{Sentences: [][]string{{"a", "b"}, {"c"}}, Question: []string{"q", "r", "s"}, Answer: "one"},
		{Sentences: [][]string{{"a"}}, Question: []string{"q"}, Answer: "two"},
		{Sentences: [][]string{{"a"}}, Question: []string{"q"}, Answer: "one"},
	}}
	if got := d.MaxSentences(); got != 2 {
		t.Errorf("MaxSentences = %d, want 2", got)
	}
	if got := d.MaxWords(); got != 3 {
		t.Errorf("MaxWords = %d, want 3", got)
	}
	if got := d.Answers(); len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Errorf("Answers = %v", got)
	}
}

func TestParseBasic(t *testing.T) {
	input := `1 Mary moved to the bathroom.
2 John went to the hallway.
3 Where is Mary? 	bathroom	1
4 Daniel went back to the hallway.
5 Where is Daniel? 	hallway	4
1 Sandra travelled to the office.
2 Where is Sandra? 	office	1
`
	d, err := Parse(strings.NewReader(input), "qa1")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Stories) != 3 {
		t.Fatalf("parsed %d stories, want 3", len(d.Stories))
	}
	s0 := d.Stories[0]
	if len(s0.Sentences) != 2 {
		t.Errorf("story 0 has %d sentences, want 2", len(s0.Sentences))
	}
	if s0.Answer != "bathroom" {
		t.Errorf("story 0 answer = %q", s0.Answer)
	}
	if len(s0.Support) != 1 || s0.Support[0] != 0 {
		t.Errorf("story 0 support = %v, want [0]", s0.Support)
	}
	s1 := d.Stories[1]
	if len(s1.Sentences) != 3 {
		t.Errorf("story 1 has %d sentences (questions must not join memory), want 3", len(s1.Sentences))
	}
	if len(s1.Support) != 1 || s1.Support[0] != 2 {
		t.Errorf("story 1 support = %v, want [2] (line 4 is 3rd sentence)", s1.Support)
	}
	s2 := d.Stories[2]
	if len(s2.Sentences) != 1 || s2.Answer != "office" {
		t.Errorf("story 2 did not reset at id 1: %+v", s2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"nonumber here\n",
		"x Mary moved.\n",
		"1 Where is Mary? \t\t1\n", // empty answer
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in), "t"); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseMultiAnswer(t *testing.T) {
	input := "1 John took the milk.\n2 What is John carrying? \tmilk,apple\t1\n"
	d, err := Parse(strings.NewReader(input), "qa8")
	if err != nil {
		t.Fatal(err)
	}
	if d.Stories[0].Answer != "milk-apple" {
		t.Errorf("multi-answer = %q, want milk-apple", d.Stories[0].Answer)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	orig := Generate(TaskSingleFact, genOpt(30, 10), rand.New(rand.NewSource(11)))
	var buf bytes.Buffer
	if err := Format(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf, orig.Task)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Stories) != len(orig.Stories) {
		t.Fatalf("round trip story count %d != %d", len(parsed.Stories), len(orig.Stories))
	}
	for i := range orig.Stories {
		o, p := orig.Stories[i], parsed.Stories[i]
		if o.Answer != p.Answer {
			t.Errorf("story %d: answer %q != %q", i, p.Answer, o.Answer)
		}
		if len(o.Sentences) != len(p.Sentences) {
			t.Errorf("story %d: sentence count %d != %d", i, len(p.Sentences), len(o.Sentences))
		}
		if len(o.Support) != len(p.Support) {
			t.Errorf("story %d: support %v != %v", i, p.Support, o.Support)
			continue
		}
		for j := range o.Support {
			if o.Support[j] != p.Support[j] {
				t.Errorf("story %d: support %v != %v", i, p.Support, o.Support)
				break
			}
		}
	}
}

func TestTaskString(t *testing.T) {
	if TaskSingleFact.String() != "single-fact" {
		t.Errorf("TaskSingleFact.String() = %q", TaskSingleFact.String())
	}
	if !strings.Contains(Task(99).String(), "99") {
		t.Errorf("out-of-range task string = %q", Task(99).String())
	}
}

func TestWhoHasAnswersArePeople(t *testing.T) {
	d := Generate(TaskWhoHas, genOpt(200, 15), rand.New(rand.NewSource(40)))
	peopleSet := map[string]bool{}
	for _, p := range people {
		peopleSet[p] = true
	}
	for i, s := range d.Stories {
		if !peopleSet[s.Answer] {
			t.Errorf("story %d: answer %q is not a person", i, s.Answer)
		}
		if len(s.Support) != 1 {
			t.Fatalf("story %d: %d supports, want 1", i, len(s.Support))
		}
		sup := s.Sentences[s.Support[0]]
		// Supporting fact is "<answer> took the <object>".
		if sup[0] != s.Answer || sup[1] != "took" {
			t.Errorf("story %d: support %v does not justify %q", i, sup, s.Answer)
		}
	}
}

func TestFirstLocAnswers(t *testing.T) {
	d := Generate(TaskFirstLoc, genOpt(200, 12), rand.New(rand.NewSource(41)))
	for i, s := range d.Stories {
		target := s.Question[2] // "where did X go first"
		var first string
		for _, sent := range s.Sentences {
			if len(sent) == 5 && sent[0] == target && sent[1] == "went" {
				first = sent[4]
				break
			}
		}
		if first == "" {
			t.Fatalf("story %d: target %q never moves", i, target)
		}
		if s.Answer != first {
			t.Errorf("story %d: answer %q, replay says %q", i, s.Answer, first)
		}
		if s.Support[0] != 0 && s.Sentences[s.Support[0]][0] != target {
			t.Errorf("story %d: support %d names wrong actor", i, s.Support[0])
		}
	}
}

func TestCarryingAnswers(t *testing.T) {
	d := Generate(TaskCarrying, genOpt(300, 15), rand.New(rand.NewSource(42)))
	valid := map[string]bool{"nothing": true}
	for _, o := range objects {
		valid[o] = true
	}
	sawNothing, sawObject := false, false
	for i, s := range d.Stories {
		if !valid[s.Answer] {
			t.Fatalf("story %d: answer %q not an object or 'nothing'", i, s.Answer)
		}
		if s.Answer == "nothing" {
			sawNothing = true
		} else {
			sawObject = true
		}
		// Replay: track what the target holds.
		target := s.Question[2] // "what is X carrying"
		holding := map[string]bool{}
		for _, sent := range s.Sentences {
			if len(sent) == 4 && sent[1] == "took" && sent[0] == target {
				holding[sent[3]] = true
			}
			if len(sent) == 4 && sent[1] == "dropped" && sent[0] == target {
				delete(holding, sent[3])
			}
		}
		if s.Answer == "nothing" && len(holding) != 0 {
			t.Errorf("story %d: answer nothing but target holds %v", i, holding)
		}
		if s.Answer != "nothing" && !holding[s.Answer] {
			t.Errorf("story %d: answer %q but target holds %v", i, s.Answer, holding)
		}
	}
	if !sawNothing || !sawObject {
		t.Errorf("degenerate answer distribution: nothing=%v object=%v", sawNothing, sawObject)
	}
}

func TestSuite20(t *testing.T) {
	suite := Suite20(5)
	if len(suite) != 20 {
		t.Fatalf("Suite20 has %d entries", len(suite))
	}
	names := map[string]bool{}
	families := map[Task]bool{}
	for _, e := range suite {
		if names[e.Name] {
			t.Errorf("duplicate suite name %q", e.Name)
		}
		names[e.Name] = true
		families[e.Task] = true
		d := Generate(e.Task, e.Opt, rand.New(rand.NewSource(1)))
		if len(d.Stories) != 5 {
			t.Errorf("%s: %d stories", e.Name, len(d.Stories))
		}
	}
	if len(families) != int(NumTasks) {
		t.Errorf("suite covers %d of %d families", len(families), NumTasks)
	}
}
