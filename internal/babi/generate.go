package babi

import (
	"fmt"
	"math/rand"
	"sort"
)

// Task identifies a synthetic task family. The five families mirror the
// structure (not the exact wording) of representative bAbI tasks: they
// span one- and two-fact reasoning, yes/no answers, counting, and
// before/after temporal reasoning, so averages over them exercise the
// same spread of p-vector sparsity as the paper's 20-task average.
type Task int

// Synthetic task families.
const (
	TaskSingleFact Task = iota // "where is X?" — one supporting fact
	TaskTwoFacts               // "where is the O?" — object follows its holder
	TaskYesNo                  // "is X in the Y?" — yes/no
	TaskCounting               // "how many objects is X carrying?"
	TaskBefore                 // "where was X before the Y?" — two facts
	TaskWhoHas                 // "who has the O?" — one supporting fact
	TaskFirstLoc               // "where did X go first?" — one supporting fact
	TaskCarrying               // "what is X carrying?" — object or 'nothing'
	NumTasks
)

var taskNames = [...]string{
	"single-fact", "two-facts", "yes-no", "counting", "before",
	"who-has", "first-loc", "carrying",
}

// String returns the task's short name.
func (t Task) String() string {
	if t < 0 || int(t) >= len(taskNames) {
		return fmt.Sprintf("task(%d)", int(t))
	}
	return taskNames[t]
}

// AllTasks lists every synthetic task family.
func AllTasks() []Task {
	out := make([]Task, NumTasks)
	for i := range out {
		out[i] = Task(i)
	}
	return out
}

var (
	people    = []string{"john", "mary", "sandra", "daniel", "emily", "frank"}
	locations = []string{"kitchen", "hallway", "garden", "bathroom", "office", "bedroom"}
	objects   = []string{"apple", "football", "milk", "book", "keys"}
	numbers   = []string{"zero", "one", "two", "three", "four", "five"}
)

// GenOptions controls the synthetic generator.
type GenOptions struct {
	Stories   int // number of QA examples
	StoryLen  int // sentences per story (>= 2)
	People    int // distinct actors used (2..len(people))
	Locations int // distinct locations used (2..len(locations))
}

// DefaultGenOptions mirrors the paper's Figure 6 setup: stories of up to
// 50 sentences, a handful of entities, and mostly-distractor sentences.
func DefaultGenOptions() GenOptions {
	return GenOptions{Stories: 1000, StoryLen: 20, People: 4, Locations: 4}
}

func (o *GenOptions) normalize() {
	if o.Stories < 1 {
		o.Stories = 1
	}
	if o.StoryLen < 2 {
		o.StoryLen = 2
	}
	if o.People < 2 {
		o.People = 2
	}
	if o.People > len(people) {
		o.People = len(people)
	}
	if o.Locations < 2 {
		o.Locations = 2
	}
	if o.Locations > len(locations) {
		o.Locations = len(locations)
	}
}

// Generate produces a deterministic synthetic dataset for the task using
// rng. The same seed yields the same dataset.
func Generate(task Task, opt GenOptions, rng *rand.Rand) *Dataset {
	opt.normalize()
	d := &Dataset{Task: task.String()}
	for i := 0; i < opt.Stories; i++ {
		var s Story
		switch task {
		case TaskSingleFact:
			s = genSingleFact(opt, rng)
		case TaskTwoFacts:
			s = genTwoFacts(opt, rng)
		case TaskYesNo:
			s = genYesNo(opt, rng)
		case TaskCounting:
			s = genCounting(opt, rng)
		case TaskBefore:
			s = genBefore(opt, rng)
		case TaskWhoHas:
			s = genWhoHas(opt, rng)
		case TaskFirstLoc:
			s = genFirstLoc(opt, rng)
		case TaskCarrying:
			s = genCarrying(opt, rng)
		default:
			panic(fmt.Sprintf("babi: unknown task %d", int(task)))
		}
		d.Stories = append(d.Stories, s)
	}
	return d
}

// GenerateAll produces one dataset per task family, all from rng.
func GenerateAll(opt GenOptions, rng *rand.Rand) []*Dataset {
	out := make([]*Dataset, 0, NumTasks)
	for _, t := range AllTasks() {
		out = append(out, Generate(t, opt, rng))
	}
	return out
}

// worldState tracks entity positions while a story unfolds.
type worldState struct {
	loc      map[string]string // person → location
	lastMove map[string]int    // person → sentence index of latest move
	prevLoc  map[string]string // person → previous location
	prevIdx  map[string]int    // person → sentence index of previous move
	carrying map[string][]string
	objLoc   map[string]string // object → where it was dropped ("" if carried)
	holder   map[string]string // object → who carries it ("" if dropped/unset)
	holdIdx  map[string]int    // object → sentence index of take/drop
}

func newWorld() *worldState {
	return &worldState{
		loc:      map[string]string{},
		lastMove: map[string]int{},
		prevLoc:  map[string]string{},
		prevIdx:  map[string]int{},
		carrying: map[string][]string{},
		objLoc:   map[string]string{},
		holder:   map[string]string{},
		holdIdx:  map[string]int{},
	}
}

func (w *worldState) move(idx int, person, where string) []string {
	if old, ok := w.loc[person]; ok {
		w.prevLoc[person] = old
		w.prevIdx[person] = w.lastMove[person]
	}
	w.loc[person] = where
	w.lastMove[person] = idx
	return sentence(person + " went to the " + where)
}

func (w *worldState) take(idx int, person, obj string) []string {
	w.carrying[person] = append(w.carrying[person], obj)
	w.holder[obj] = person
	w.holdIdx[obj] = idx
	delete(w.objLoc, obj)
	return sentence(person + " took the " + obj)
}

func (w *worldState) drop(idx int, person, obj string) []string {
	list := w.carrying[person]
	for i, o := range list {
		if o == obj {
			w.carrying[person] = append(list[:i:i], list[i+1:]...)
			break
		}
	}
	w.holder[obj] = ""
	w.holdIdx[obj] = idx
	w.objLoc[obj] = w.loc[person]
	return sentence(person + " dropped the " + obj)
}

func pick(rng *rand.Rand, pool []string, n int) []string {
	idx := rng.Perm(len(pool))[:n]
	sort.Ints(idx)
	out := make([]string, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// genSingleFact: actors wander; the question asks for one actor's latest
// location. Exactly one supporting sentence.
func genSingleFact(opt GenOptions, rng *rand.Rand) Story {
	actors := pick(rng, people, opt.People)
	locs := pick(rng, locations, opt.Locations)
	w := newWorld()
	var story Story
	for i := 0; i < opt.StoryLen; i++ {
		p := actors[rng.Intn(len(actors))]
		l := locs[rng.Intn(len(locs))]
		story.Sentences = append(story.Sentences, w.move(i, p, l))
	}
	// Ask about an actor who moved at least once (all did, with high
	// probability; fall back to actors[0] by forcing a move).
	target := actors[rng.Intn(len(actors))]
	if _, ok := w.loc[target]; !ok {
		story.Sentences = append(story.Sentences, w.move(len(story.Sentences), target, locs[0]))
	}
	story.Question = sentence("where is " + target)
	story.Answer = w.loc[target]
	story.Support = []int{w.lastMove[target]}
	return story
}

// genTwoFacts: actors wander and carry objects; the question asks where
// an object is, requiring the take fact and the holder's location fact
// (or the drop fact).
func genTwoFacts(opt GenOptions, rng *rand.Rand) Story {
	actors := pick(rng, people, opt.People)
	locs := pick(rng, locations, opt.Locations)
	objs := pick(rng, objects, 2)
	w := newWorld()
	var story Story
	add := func(s []string) { story.Sentences = append(story.Sentences, s) }
	// Ensure the tracked object ends up held by someone in a known
	// location: guarantee a take after a move.
	tracked := objs[0]
	for len(story.Sentences) < opt.StoryLen {
		i := len(story.Sentences)
		p := actors[rng.Intn(len(actors))]
		switch r := rng.Float64(); {
		case r < 0.55 || w.loc[p] == "":
			add(w.move(i, p, locs[rng.Intn(len(locs))]))
		case r < 0.8:
			o := objs[rng.Intn(len(objs))]
			if w.holder[o] == "" && w.loc[p] != "" {
				add(w.take(i, p, o))
			} else {
				add(w.move(i, p, locs[rng.Intn(len(locs))]))
			}
		default:
			if list := w.carrying[p]; len(list) > 0 {
				add(w.drop(i, p, list[rng.Intn(len(list))]))
			} else {
				add(w.move(i, p, locs[rng.Intn(len(locs))]))
			}
		}
	}
	// Force determinacy for the tracked object.
	holder := w.holder[tracked]
	if holder == "" && w.objLoc[tracked] == "" {
		p := actors[rng.Intn(len(actors))]
		if w.loc[p] == "" {
			add(w.move(len(story.Sentences), p, locs[rng.Intn(len(locs))]))
		}
		add(w.take(len(story.Sentences), p, tracked))
		holder = p
	}
	story.Question = sentence("where is the " + tracked)
	if holder != "" {
		story.Answer = w.loc[holder]
		story.Support = []int{w.holdIdx[tracked], w.lastMove[holder]}
	} else {
		story.Answer = w.objLoc[tracked]
		story.Support = []int{w.holdIdx[tracked]}
	}
	return story
}

// genYesNo: like single-fact but the question is "is X in the Y?".
func genYesNo(opt GenOptions, rng *rand.Rand) Story {
	s := genSingleFact(opt, rng)
	target := s.Question[len(s.Question)-1] // actor name from "where is X"
	trueLoc := s.Answer
	askLoc := trueLoc
	if rng.Float64() < 0.5 {
		// Ask about a different location → answer "no".
		for _, l := range locations {
			if l != trueLoc {
				askLoc = l
				break
			}
		}
	}
	s.Question = sentence("is " + target + " in the " + askLoc)
	if askLoc == trueLoc {
		s.Answer = "yes"
	} else {
		s.Answer = "no"
	}
	return s
}

// genCounting: actors take and drop objects; the question asks how many
// objects an actor is carrying.
func genCounting(opt GenOptions, rng *rand.Rand) Story {
	actors := pick(rng, people, 2)
	locs := pick(rng, locations, 2)
	// Only two objects circulate, so the target carries 0–2 — few
	// enough supporting facts for multi-hop attention to stay sharp.
	objs := pick(rng, objects, 2)
	w := newWorld()
	var story Story
	add := func(s []string) { story.Sentences = append(story.Sentences, s) }
	var support []int
	target := actors[0]
	for len(story.Sentences) < opt.StoryLen {
		i := len(story.Sentences)
		p := actors[rng.Intn(len(actors))]
		switch r := rng.Float64(); {
		case r < 0.4 || w.loc[p] == "":
			add(w.move(i, p, locs[rng.Intn(len(locs))]))
		case r < 0.75:
			var free []string
			for _, o := range objs {
				if w.holder[o] == "" {
					free = append(free, o)
				}
			}
			if len(free) == 0 {
				add(w.move(i, p, locs[rng.Intn(len(locs))]))
				break
			}
			add(w.take(i, p, free[rng.Intn(len(free))]))
			if p == target {
				support = append(support, i)
			}
		default:
			if list := w.carrying[p]; len(list) > 0 {
				add(w.drop(i, p, list[rng.Intn(len(list))]))
				if p == target {
					support = append(support, i)
				}
			} else {
				add(w.move(i, p, locs[rng.Intn(len(locs))]))
			}
		}
	}
	n := len(w.carrying[target])
	if n >= len(numbers) {
		n = len(numbers) - 1
	}
	story.Question = sentence("how many objects is " + target + " carrying")
	story.Answer = numbers[n]
	story.Support = support
	return story
}

// genBefore: "where was X before the Y?" — requires the last two moves
// of X.
func genBefore(opt GenOptions, rng *rand.Rand) Story {
	actors := pick(rng, people, opt.People)
	locs := pick(rng, locations, opt.Locations)
	w := newWorld()
	var story Story
	target := actors[0]
	// Guarantee the target moves at least twice to distinct locations.
	first := locs[rng.Intn(len(locs))]
	second := first
	for second == first {
		second = locs[rng.Intn(len(locs))]
	}
	story.Sentences = append(story.Sentences, w.move(0, target, first))
	for len(story.Sentences) < opt.StoryLen-1 {
		i := len(story.Sentences)
		p := actors[1:][rng.Intn(len(actors)-1)]
		story.Sentences = append(story.Sentences, w.move(i, p, locs[rng.Intn(len(locs))]))
	}
	story.Sentences = append(story.Sentences, w.move(len(story.Sentences), target, second))
	story.Question = sentence("where was " + target + " before the " + second)
	story.Answer = first
	story.Support = []int{w.prevIdx[target], w.lastMove[target]}
	return story
}

// genWhoHas: actors move and exchange objects; the question asks who
// currently holds a tracked object. The latest take of that object is
// the single supporting fact.
func genWhoHas(opt GenOptions, rng *rand.Rand) Story {
	actors := pick(rng, people, opt.People)
	locs := pick(rng, locations, 2)
	objs := pick(rng, objects, 2)
	tracked := objs[0]
	w := newWorld()
	var story Story
	add := func(s []string) { story.Sentences = append(story.Sentences, s) }
	for len(story.Sentences) < opt.StoryLen-1 {
		i := len(story.Sentences)
		p := actors[rng.Intn(len(actors))]
		switch r := rng.Float64(); {
		case r < 0.5 || w.loc[p] == "":
			add(w.move(i, p, locs[rng.Intn(len(locs))]))
		case r < 0.8:
			o := objs[rng.Intn(len(objs))]
			if holder := w.holder[o]; holder != "" {
				add(w.drop(i, holder, o))
			} else {
				add(w.take(i, p, o))
			}
		default:
			add(w.move(i, p, locs[rng.Intn(len(locs))]))
		}
	}
	// Guarantee the tracked object ends up held.
	if w.holder[tracked] == "" {
		p := actors[rng.Intn(len(actors))]
		if w.loc[p] == "" {
			add(w.move(len(story.Sentences), p, locs[0]))
		}
		add(w.take(len(story.Sentences), p, tracked))
	}
	story.Question = sentence("who has the " + tracked)
	story.Answer = w.holder[tracked]
	story.Support = []int{w.holdIdx[tracked]}
	return story
}

// genFirstLoc: like single-fact, but the question asks for the FIRST
// location the target visited — the model must prefer the oldest
// matching fact rather than the newest.
func genFirstLoc(opt GenOptions, rng *rand.Rand) Story {
	actors := pick(rng, people, opt.People)
	locs := pick(rng, locations, opt.Locations)
	w := newWorld()
	var story Story
	target := actors[0]
	firstIdx := make(map[string]int)
	firstLoc := make(map[string]string)
	for i := 0; i < opt.StoryLen; i++ {
		p := actors[rng.Intn(len(actors))]
		if i == 0 {
			p = target // guarantee the target moves at least once
		}
		l := locs[rng.Intn(len(locs))]
		if _, seen := firstIdx[p]; !seen {
			firstIdx[p] = i
			firstLoc[p] = l
		}
		story.Sentences = append(story.Sentences, w.move(i, p, l))
	}
	story.Question = sentence("where did " + target + " go first")
	story.Answer = firstLoc[target]
	story.Support = []int{firstIdx[target]}
	return story
}

// genCarrying: the question asks what a target is carrying; the story
// arranges that the target holds zero or one object, so the answer is
// an object name or "nothing".
func genCarrying(opt GenOptions, rng *rand.Rand) Story {
	actors := pick(rng, people, 2)
	locs := pick(rng, locations, 2)
	objs := pick(rng, objects, 2)
	target := actors[0]
	w := newWorld()
	var story Story
	add := func(s []string) { story.Sentences = append(story.Sentences, s) }
	for len(story.Sentences) < opt.StoryLen {
		i := len(story.Sentences)
		p := actors[rng.Intn(len(actors))]
		switch r := rng.Float64(); {
		case r < 0.5 || w.loc[p] == "":
			add(w.move(i, p, locs[rng.Intn(len(locs))]))
		case r < 0.8:
			o := objs[rng.Intn(len(objs))]
			// Keep the target's load at most one object.
			if w.holder[o] == "" && (p != target || len(w.carrying[p]) == 0) {
				add(w.take(i, p, o))
			} else {
				add(w.move(i, p, locs[rng.Intn(len(locs))]))
			}
		default:
			if list := w.carrying[p]; len(list) > 0 {
				add(w.drop(i, p, list[rng.Intn(len(list))]))
			} else {
				add(w.move(i, p, locs[rng.Intn(len(locs))]))
			}
		}
	}
	story.Question = sentence("what is " + target + " carrying")
	if list := w.carrying[target]; len(list) > 0 {
		story.Answer = list[0]
		story.Support = []int{w.holdIdx[list[0]]}
	} else {
		story.Answer = "nothing"
		// The most recent take/drop involving the target supports the
		// 'nothing' answer when one exists.
		last := -1
		for _, o := range objs {
			if w.holder[o] == "" && w.holdIdx[o] > last {
				last = w.holdIdx[o]
			}
		}
		if last >= 0 {
			story.Support = []int{last}
		}
	}
	return story
}

// SuiteEntry is one configuration of the 20-task evaluation suite.
type SuiteEntry struct {
	Name string
	Task Task
	Opt  GenOptions
}

// Suite20 returns 20 task configurations spanning the eight families at
// varied story lengths and entity counts — the same breadth-of-difficulty
// averaging as the paper's 20 bAbI tasks: attention-sharp one-fact tasks,
// multi-fact chaining, yes/no, and the skip-fragile counting family each
// contribute in paper-like proportion.
func Suite20(stories int) []SuiteEntry {
	mk := func(name string, task Task, storyLen, people, locations int) SuiteEntry {
		return SuiteEntry{
			Name: name,
			Task: task,
			Opt:  GenOptions{Stories: stories, StoryLen: storyLen, People: people, Locations: locations},
		}
	}
	return []SuiteEntry{
		mk("single-fact-short", TaskSingleFact, 10, 4, 4),
		mk("single-fact-long", TaskSingleFact, 30, 4, 4),
		mk("single-fact-crowded", TaskSingleFact, 20, 6, 6),
		mk("two-facts-short", TaskTwoFacts, 12, 4, 4),
		mk("two-facts-long", TaskTwoFacts, 24, 4, 4),
		mk("two-facts-crowded", TaskTwoFacts, 20, 6, 4),
		mk("yes-no-short", TaskYesNo, 10, 4, 4),
		mk("yes-no-long", TaskYesNo, 24, 4, 4),
		mk("counting-short", TaskCounting, 12, 2, 2),
		mk("counting-long", TaskCounting, 20, 2, 2),
		mk("before-short", TaskBefore, 10, 4, 4),
		mk("before-long", TaskBefore, 24, 4, 4),
		mk("before-crowded", TaskBefore, 20, 6, 6),
		mk("who-has-short", TaskWhoHas, 12, 4, 4),
		mk("who-has-long", TaskWhoHas, 24, 4, 4),
		mk("who-has-crowded", TaskWhoHas, 20, 6, 4),
		mk("first-loc-short", TaskFirstLoc, 10, 4, 4),
		mk("first-loc-long", TaskFirstLoc, 30, 4, 4),
		mk("carrying-short", TaskCarrying, 12, 2, 2),
		mk("carrying-long", TaskCarrying, 20, 2, 2),
	}
}
