package babi

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// FuzzParse hardens the bAbI-format parser: arbitrary input must never
// panic, and well-formed output of Format must always round-trip.
func FuzzParse(f *testing.F) {
	f.Add("1 Mary moved to the bathroom.\n2 Where is Mary? \tbathroom\t1\n")
	f.Add("1 x.\n")
	f.Add("")
	f.Add("1 a\t\t\n")
	f.Add("9999999999999999999999 overflow line number\n")
	f.Add("1 q? \tans\tnotanumber\n")
	var buf bytes.Buffer
	if err := Format(&buf, Generate(TaskSingleFact, GenOptions{Stories: 2, StoryLen: 4}, rand.New(rand.NewSource(1)))); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())

	f.Fuzz(func(t *testing.T, input string) {
		d, err := Parse(strings.NewReader(input), "fuzz")
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		// Anything accepted must be internally consistent.
		for i, s := range d.Stories {
			if s.Answer == "" {
				t.Errorf("story %d accepted with empty answer", i)
			}
			for _, sup := range s.Support {
				if sup < 0 || sup >= len(s.Sentences) {
					t.Errorf("story %d: support %d out of range [0, %d)", i, sup, len(s.Sentences))
				}
			}
		}
	})
}

// FuzzFormatParseRoundTrip: any generated dataset must survive
// Format → Parse with answers and supports intact.
func FuzzFormatParseRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(5))
	f.Add(int64(2), uint8(4), uint8(20))
	f.Fuzz(func(t *testing.T, seed int64, taskRaw, storyLenRaw uint8) {
		task := Task(int(taskRaw) % int(NumTasks))
		opt := GenOptions{Stories: 3, StoryLen: 2 + int(storyLenRaw)%30}
		orig := Generate(task, opt, rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := Format(&buf, orig); err != nil {
			t.Fatal(err)
		}
		parsed, err := Parse(&buf, orig.Task)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if len(parsed.Stories) != len(orig.Stories) {
			t.Fatalf("story count %d != %d", len(parsed.Stories), len(orig.Stories))
		}
		for i := range orig.Stories {
			if parsed.Stories[i].Answer != orig.Stories[i].Answer {
				t.Fatalf("story %d answer %q != %q", i, parsed.Stories[i].Answer, orig.Stories[i].Answer)
			}
		}
	})
}
