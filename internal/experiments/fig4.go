package experiments

import (
	"math/rand"

	"mnnfast/internal/cachesim"
	"mnnfast/internal/core"
	"mnnfast/internal/memtrace"
	"mnnfast/internal/perfmodel"
	"mnnfast/internal/tensor"
	"mnnfast/internal/vocab"
)

// Fig4Result is the cache-contention experiment (paper Figure 4):
// inference performance under co-executed embedding threads, relative
// to the 1-embedding-thread case, for several MemNN scales — plus the
// same co-run with the dedicated embedding cache, which removes the
// contention (§3.3).
type Fig4Result struct {
	EmbThreads []int
	Dims       []int
	// Relative[d][k] is inference performance (1.0 = no degradation)
	// at Dims[d] with EmbThreads[k] embedding threads.
	Relative [][]float64
	// WithEmbCache[d] is relative performance at the largest embedding
	// thread count when the embedding cache isolates the streams.
	WithEmbCache []float64
}

// inferenceTimeUnder replays the inference trace against a hierarchy
// co-run with k embedding traces and returns the modelled inference
// time (compute + inference-region demand-miss traffic).
func fig4InferenceTime(cfg Config, inf *cachesim.Trace, computeOps float64, embTraces []*cachesim.Trace, embCache bool) float64 {
	h := cachesim.NewHierarchy(cachesim.CacheConfig{SizeBytes: cfg.LLCBytes, LineBytes: 64, Ways: 16})
	if embCache {
		h.EmbCache = cachesim.NewEmbeddingCache(cfg.LLCBytes/64, 256)
	}
	traces := append([]*cachesim.Trace{inf}, embTraces...)
	cachesim.ReplayInterleaved(h, traces...)

	var missLines int64
	for _, r := range []memtrace.Region{
		memtrace.RegionMemIn, memtrace.RegionMemOut,
		memtrace.RegionTempIn, memtrace.RegionTempPexp, memtrace.RegionTempP,
		memtrace.RegionQuestion, memtrace.RegionOutput,
	} {
		missLines += h.RegionMisses[r]
	}
	cpu := perfmodel.DefaultCPU()
	w := perfmodel.Workload{ComputeOps: computeOps, DRAMBytes: float64(missLines * 64)}
	return cpu.Time(w, 1, 1).Total
}

// Fig4 runs the experiment. The inference working set is sized to fit
// the LLC when alone (the compute-intensive tenant the paper
// describes), and each embedding thread is a stream of Zipf-distributed
// lookups into a large embedding matrix.
func Fig4(cfg Config) *Fig4Result {
	res := &Fig4Result{
		EmbThreads: []int{1, 2, 4, 8},
		Dims:       []int{cfg.ED / 2, cfg.ED, cfg.ED * 2},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	for _, ed := range res.Dims {
		// Inference tenant: repeated inferences over a database sized
		// at half the LLC so that, alone, re-runs hit on chip.
		ns := int(cfg.LLCBytes / 2 / int64(ed) / 4 / 2)
		if ns < 64 {
			ns = 64
		}
		mem := newDatabase(rng, ns, ed)
		u := tensor.RandomVector(rng, ed, 1)
		inf := &cachesim.Trace{}
		eng := core.NewColumn(mem, core.Options{ChunkSize: cfg.Chunk, Tracer: inf})
		o := tensor.NewVector(ed)
		var ops float64
		for rep := 0; rep < 3; rep++ {
			st := eng.Infer(u, o)
			ops += perfmodel.DefaultOpWeights().Ops(st.TotalMuls(), st.Exps, st.Divisions)
		}

		// Embedding tenants: Zipf word streams over a 200K-word table.
		zipf := vocab.NewZipfModel(200000, 1.0)
		mkEmb := func(seed int64) *cachesim.Trace {
			tr := &cachesim.Trace{}
			r := rand.New(rand.NewSource(seed))
			words := len(inf.Accesses) / 2
			for i := 0; i < words; i++ {
				w := zipf.Sample(r)
				tr.Touch(memtrace.RegionEmbedding, memtrace.OpRead, int64(w)*int64(ed)*4, ed*4)
			}
			return tr
		}

		base := fig4InferenceTime(cfg, inf, ops, []*cachesim.Trace{mkEmb(100)}, false)
		var rel []float64
		var embs []*cachesim.Trace
		for k := 1; k <= 8; k++ {
			embs = append(embs, mkEmb(100+int64(k)))
			if k == 1 || k == 2 || k == 4 || k == 8 {
				t := fig4InferenceTime(cfg, inf, ops, embs, false)
				rel = append(rel, base/t)
			}
		}
		res.Relative = append(res.Relative, rel)

		cached := fig4InferenceTime(cfg, inf, ops, embs, true)
		res.WithEmbCache = append(res.WithEmbCache, base/cached)
	}
	return res
}

// Table renders the result.
func (r *Fig4Result) Table() *Table {
	t := &Table{
		ID:      "fig4",
		Title:   "inference performance under co-executed embedding threads (relative to 1-embedding-thread case)",
		Headers: []string{"emb threads"},
	}
	for _, d := range r.Dims {
		t.Headers = append(t.Headers, "ed="+in(d))
	}
	for k, n := range r.EmbThreads {
		row := []string{in(n)}
		for d := range r.Dims {
			row = append(row, f2(r.Relative[d][k]))
		}
		t.AddRow(row...)
	}
	row := []string{"8 + emb$"}
	for d := range r.Dims {
		row = append(row, f2(r.WithEmbCache[d]))
	}
	t.AddRow(row...)
	t.Note("paper shape: degradation grows with embedding threads and with MemNN scale")
	t.Note("'8 + emb$': 8 embedding threads with the dedicated embedding cache — contention removed")
	return t
}
