package experiments

import (
	"math/rand"

	"mnnfast/internal/perfmodel"
	"mnnfast/internal/tensor"
)

// Fig12Result is the GPU scalability experiment (paper Figure 12):
// (a) multi-stream latency on one device and (b) multi-GPU latency
// with the shared-PCIe worst case against the contention-free ideal.
type Fig12Result struct {
	Streams []int
	// StreamTimelines[i] is the single-device timeline with Streams[i]
	// CUDA streams of the column-based workload.
	StreamTimelines []perfmodel.GPUTimeline
	// BaselineTotal is the non-overlappable baseline implementation's
	// time (one stream, no column algorithm to split by).
	BaselineTotal float64
	StreamSpeedup []float64 // vs BaselineTotal

	GPUs         []int
	Worst, Ideal []perfmodel.GPUTimeline
	GPUSpeedup   []float64 // worst-case vs BaselineTotal
}

// Fig12 runs the experiment. The GPU configuration follows Table 1:
// ed = 64 (chosen to fill the SMs), database shared across devices.
func Fig12(cfg Config) *Fig12Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ed := 64
	mem := newDatabase(rng, cfg.NS, ed)
	u := tensor.RandomVector(rng, ed, 1)
	g := perfmodel.DefaultGPU()

	// The column profile gives the per-question compute ops; the GPU
	// processes a batch of nq questions against one shipped copy of the
	// memories (the Q matrix of Figure 8 is nq×ed, so kernels are
	// matrix-matrix while the H2D payload is the memories alone, §5.3).
	const nq = 1000
	quick := cfg
	quick.ED = ed
	prof := profileVariant(quick, VariantColumn, mem, u)
	ow := perfmodel.DefaultOpWeights()
	w := perfmodel.Workload{
		Name:       "gpu-column",
		ComputeOps: ow.Ops(prof.Stats.TotalMuls(), prof.Stats.Exps, prof.Stats.Divisions) * nq,
		DRAMBytes:  float64(mem.In.SizeBytes() + mem.Out.SizeBytes()),
		Streamed:   true,
	}

	res := &Fig12Result{Streams: []int{1, 2, 4}, GPUs: []int{1, 2, 4}}
	// Baseline: layer-by-layer kernels cannot overlap the copies (the
	// full input must land before the monolithic inner product runs).
	res.BaselineTotal = g.MultiStream(w, 1).Total
	for _, s := range res.Streams {
		tl := g.MultiStream(w, s)
		res.StreamTimelines = append(res.StreamTimelines, tl)
		res.StreamSpeedup = append(res.StreamSpeedup, res.BaselineTotal/tl.Total)
	}
	for _, n := range res.GPUs {
		res.Worst = append(res.Worst, g.MultiGPU(w, n, false))
		res.Ideal = append(res.Ideal, g.MultiGPU(w, n, true))
		res.GPUSpeedup = append(res.GPUSpeedup, res.BaselineTotal/res.Worst[len(res.Worst)-1].Total)
	}
	return res
}

// Table renders the result.
func (r *Fig12Result) Table() *Table {
	t := &Table{
		ID:      "fig12",
		Title:   "GPU scalability: CUDA streams on one device; multi-GPU with shared-PCIe contention",
		Headers: []string{"config", "H2D", "kernel", "total", "speedup"},
	}
	for i, s := range r.Streams {
		tl := r.StreamTimelines[i]
		t.AddRow("1 GPU, "+in(s)+" streams", fs(tl.H2D), fs(tl.Kernel), fs(tl.Total), f2(r.StreamSpeedup[i]))
	}
	for i, n := range r.GPUs {
		wtl, itl := r.Worst[i], r.Ideal[i]
		t.AddRow(in(n)+" GPUs (shared PCIe)", fs(wtl.H2D), fs(wtl.Kernel), fs(wtl.Total), f2(r.GPUSpeedup[i]))
		t.AddRow(in(n)+" GPUs (ideal PCIe)", fs(itl.H2D), fs(itl.Kernel), fs(itl.Total),
			f2(r.BaselineTotal/itl.Total))
	}
	t.Note("paper shape: ≈1.33× from streams (memcpy critical path); ≈4.3× at 4 GPUs; worst-vs-ideal H2D gap grows with devices")
	return t
}
