package experiments

import (
	"math/rand"

	"mnnfast/internal/perfmodel"
	"mnnfast/internal/tensor"
)

// blasChunkingOverhead models the baseline's extra DRAM traffic from
// generic BLAS data chunking (§3.1: "the baseline MemNN also suffers
// from inefficient data chunking of current matrix multiplication
// libraries"): blocked GEMM re-reads panels of the operands. Applied
// only to the baseline variant's modelled traffic.
const blasChunkingOverhead = 1.25

// Fig3Result is the baseline-scalability experiment (paper Figure 3):
// speedup of the baseline MemNN versus thread count for each
// memory-channel configuration, normalized to the corresponding
// single-thread result.
type Fig3Result struct {
	Threads  []int
	Channels []int
	// Speedup[c][t] is the speedup at Channels[c] and Threads[t].
	Speedup [][]float64
	// Knee[c] is the thread count where scaling saturates.
	Knee []int
}

// Fig3 runs the experiment.
func Fig3(cfg Config) *Fig3Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mem := newDatabase(rng, cfg.NS, cfg.ED)
	u := tensor.RandomVector(rng, cfg.ED, 1)

	prof := profileVariant(cfg, VariantBaseline, mem, u)
	w := workloadOf(prof)
	w.DRAMBytes *= blasChunkingOverhead

	cpu := perfmodel.DefaultCPU()
	res := &Fig3Result{Threads: cfg.Threads, Channels: cfg.Channels}
	for _, ch := range cfg.Channels {
		row := make([]float64, len(cfg.Threads))
		for i, t := range cfg.Threads {
			row[i] = cpu.Speedup(w, t, ch)
		}
		res.Speedup = append(res.Speedup, row)
		maxT := cfg.Threads[len(cfg.Threads)-1]
		res.Knee = append(res.Knee, cpu.SaturationThreads(w, ch, maxT, 0.1))
	}
	return res
}

// Table renders the result.
func (r *Fig3Result) Table() *Table {
	t := &Table{
		ID:    "fig3",
		Title: "baseline MemNN scalability vs threads per memory-channel count (speedup over 1 thread)",
	}
	t.Headers = []string{"threads"}
	for _, ch := range r.Channels {
		t.Headers = append(t.Headers, in(ch)+"ch")
	}
	for i, th := range r.Threads {
		row := []string{in(th)}
		for c := range r.Channels {
			row = append(row, f2(r.Speedup[c][i]))
		}
		t.AddRow(row...)
	}
	for c, ch := range r.Channels {
		t.Note("%d channel(s): scaling saturates around %d threads", ch, r.Knee[c])
	}
	t.Note("paper shape: fewer channels saturate earlier — bandwidth bounds baseline scalability")
	return t
}
