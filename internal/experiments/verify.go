package experiments

import "fmt"

// Check is one verified claim-shape.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// VerifyAll runs the suite at the given config and checks every paper
// claim-shape the reproduction is accountable for. It gives users a
// one-command answer to "does this reproduction still hold?" without
// reading the test suite.
func VerifyAll(cfg Config) []Check {
	var out []Check
	add := func(name string, ok bool, format string, args ...any) {
		out = append(out, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	}

	f3 := Fig3(cfg)
	last := len(f3.Threads) - 1
	ok := true
	for c := 1; c < len(f3.Channels); c++ {
		ok = ok && f3.Speedup[c][last] > f3.Speedup[c-1][last]
	}
	add("fig3: more channels → more headroom", ok,
		"max-thread speedups per channel: %v", func() []string {
			var s []string
			for c := range f3.Channels {
				s = append(s, f2(f3.Speedup[c][last]))
			}
			return s
		}())

	f4 := Fig4(cfg)
	d := len(f4.Dims) - 1
	k := len(f4.EmbThreads) - 1
	add("fig4: embedding co-tenants degrade inference", f4.Relative[d][k] < 1,
		"relative perf at 8 embedding threads: %s", f2(f4.Relative[d][k]))
	add("fig4: embedding cache relieves contention", f4.WithEmbCache[d] > f4.Relative[d][k],
		"with cache: %s vs contended %s", f2(f4.WithEmbCache[d]), f2(f4.Relative[d][k]))

	f9 := Fig9(cfg)
	iCol, iCS, iMF := int(VariantColumn), int(VariantColumnStream), int(VariantMnnFast)
	add("fig9: each optimization compounds",
		f9.AvgSpeedup[iCol] > 1 && f9.AvgSpeedup[iCS] > f9.AvgSpeedup[iCol] && f9.AvgSpeedup[iMF] > f9.AvgSpeedup[iCS],
		"avg speedups: column %s, +stream %s, mnnfast %s",
		f2(f9.AvgSpeedup[iCol]), f2(f9.AvgSpeedup[iCS]), f2(f9.AvgSpeedup[iMF]))

	f11 := Fig11(cfg)
	add("fig11: streaming eliminates >60% of demand accesses", f11.Normalized[2] < 0.4,
		"column+S normalized demand misses: %s", f2(f11.Normalized[2]))

	f12 := Fig12(cfg)
	sTop := f12.StreamSpeedup[len(f12.StreamSpeedup)-1]
	gTop := f12.GPUSpeedup[len(f12.GPUSpeedup)-1]
	add("fig12: streams ≈1.3× (memcpy-bound), 4 GPUs >3×",
		sTop > 1.1 && sTop < 1.6 && gTop > 3,
		"streams %s, 4 GPUs %s", f2(sTop), f2(gTop))

	f13 := Fig13(cfg)
	add("fig13: FPGA MnnFast ≈2× (paper 2.01×)",
		f13.SpeedupAll > 1.7 && f13.SpeedupAll < 2.8,
		"speedup %s, per-design normalized %v", f2(f13.SpeedupAll), fmtFloats(f13.Normalized))

	f14 := Fig14(cfg)
	add("fig14: embedding-cache bound matches paper band",
		f14.BoundRed[0] > 0.30 && f14.BoundRed[0] < 0.40 &&
			f14.BoundRed[len(f14.BoundRed)-1] > 0.47 && f14.BoundRed[len(f14.BoundRed)-1] < 0.58,
		"bound reductions 32KB %s … 256KB %s", pct(f14.BoundRed[0]), pct(f14.BoundRed[len(f14.BoundRed)-1]))

	en := Energy(cfg)
	add("§5.5: FPGA energy advantage (paper up to 6.54×)", en.FPGAAdvantage > 2,
		"advantage %s×", f2(en.FPGAAdvantage))

	return out
}

func fmtFloats(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = f2(x)
	}
	return out
}
