package experiments

import (
	"math/rand"

	"mnnfast/internal/cachesim"
	"mnnfast/internal/core"
	"mnnfast/internal/memtrace"
	"mnnfast/internal/tensor"
	"mnnfast/internal/vocab"
)

// BypassResult is the §3.3 design-space ablation: three ways to handle
// the embedding stream next to an inference tenant —
//
//  1. shared LLC (the contention problem of Fig 4),
//  2. cache bypassing with non-temporal accesses (isolates the LLC but
//     sends every embedding access to DRAM), and
//  3. the dedicated embedding cache (isolates the LLC and absorbs the
//     word-locality hits).
//
// The paper argues bypassing has two drawbacks — embedding latency
// pinned to DRAM and extra memory pressure — which is exactly what the
// DRAM-access column shows.
type BypassResult struct {
	Policies []string
	// InfMissRate is the inference tenant's M_IN demand miss rate.
	InfMissRate []float64
	// EmbDRAM counts embedding accesses served by DRAM.
	EmbDRAM []int64
	// EmbAccesses is the total embedding accesses issued.
	EmbAccesses int64
}

// Bypass runs the ablation.
func Bypass(cfg Config) *BypassResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ed := cfg.ED

	// Inference tenant sized to fit the LLC alone.
	ns := int(cfg.LLCBytes / 2 / int64(ed) / 4 / 2)
	if ns < 64 {
		ns = 64
	}
	mem := newDatabase(rng, ns, ed)
	u := tensor.RandomVector(rng, ed, 1)
	inf := &cachesim.Trace{}
	eng := core.NewColumn(mem, core.Options{ChunkSize: cfg.Chunk, Tracer: inf})
	o := tensor.NewVector(ed)
	for rep := 0; rep < 3; rep++ {
		eng.Infer(u, o)
	}

	// Embedding tenant: Zipf lookups, same volume as the inference
	// trace.
	zipf := vocab.NewZipfModel(200000, 1.0)
	emb := &cachesim.Trace{}
	r := rand.New(rand.NewSource(cfg.Seed + 99))
	n := len(inf.Accesses)
	for i := 0; i < n; i++ {
		w := zipf.Sample(r)
		emb.Touch(memtrace.RegionEmbedding, memtrace.OpRead, int64(w)*int64(ed)*4, ed*4)
	}

	res := &BypassResult{
		Policies:    []string{"shared LLC", "bypass (non-temporal)", "embedding cache"},
		EmbAccesses: int64(n),
	}
	for _, policy := range res.Policies {
		h := cachesim.NewHierarchy(cachesim.CacheConfig{SizeBytes: cfg.LLCBytes, LineBytes: 64, Ways: 16})
		switch policy {
		case "bypass (non-temporal)":
			h.BypassEmbedding = true
		case "embedding cache":
			h.EmbCache = cachesim.NewEmbeddingCache(128<<10, ed)
		}
		cachesim.ReplayInterleaved(h, inf, emb)
		res.InfMissRate = append(res.InfMissRate, h.MissRateOf(memtrace.RegionMemIn))
		var embDRAM int64
		switch policy {
		case "shared LLC":
			embDRAM = h.RegionMisses[memtrace.RegionEmbedding]
		case "bypass (non-temporal)":
			embDRAM = h.BypassDRAM
		case "embedding cache":
			embDRAM = h.EmbCache.Misses
		}
		res.EmbDRAM = append(res.EmbDRAM, embDRAM)
	}
	return res
}

// Table renders the result.
func (r *BypassResult) Table() *Table {
	t := &Table{
		ID:      "bypass",
		Title:   "embedding isolation policies (§3.3): shared LLC vs non-temporal bypass vs embedding cache",
		Headers: []string{"policy", "inference M_IN miss rate", "embedding DRAM accesses"},
	}
	for i, p := range r.Policies {
		t.AddRow(p, pct(r.InfMissRate[i]), i64(r.EmbDRAM[i]))
	}
	t.Note("%d embedding accesses issued per run", r.EmbAccesses)
	t.Note("paper argument: bypassing isolates the LLC but pins every embedding access to DRAM;")
	t.Note("the dedicated cache isolates AND absorbs the Zipf word-locality hits")
	return t
}
