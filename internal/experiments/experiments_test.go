package experiments

import (
	"strings"
	"testing"

	"mnnfast/internal/babi"
)

func quick() Config { return QuickConfig() }

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Headers: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Note("n=%d", 3)
	s := tb.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note: n=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestIDsAndRun(t *testing.T) {
	ids := IDs()
	if len(ids) < 12 {
		t.Fatalf("only %d experiment ids", len(ids))
	}
	if _, err := Run("nope", quick()); err == nil {
		t.Error("unknown id accepted")
	}
	// table1 is instant; run it through the registry.
	tb, err := Run("table1", quick())
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "table1" {
		t.Errorf("got table %q", tb.ID)
	}
}

func TestFig3Shapes(t *testing.T) {
	r := Fig3(quick())
	// Speedup grows (weakly) with channels at the top thread count.
	last := len(r.Threads) - 1
	for c := 1; c < len(r.Channels); c++ {
		if r.Speedup[c][last] <= r.Speedup[c-1][last] {
			t.Errorf("max-thread speedup not increasing with channels: %v", r.Speedup)
		}
	}
	// Monotone in threads per channel.
	for c := range r.Channels {
		for i := 1; i < len(r.Threads); i++ {
			if r.Speedup[c][i] < r.Speedup[c][i-1]-1e-9 {
				t.Errorf("channel %d: speedup decreased at %d threads", r.Channels[c], r.Threads[i])
			}
		}
	}
	// Saturation knee does not move earlier with more channels.
	for c := 1; c < len(r.Knee); c++ {
		if r.Knee[c] < r.Knee[c-1] {
			t.Errorf("knee moved earlier with more channels: %v", r.Knee)
		}
	}
	r.Table() // must not panic
}

func TestFig4Shapes(t *testing.T) {
	r := Fig4(quick())
	for d := range r.Dims {
		// Degradation grows with embedding threads.
		for k := 1; k < len(r.EmbThreads); k++ {
			if r.Relative[d][k] > r.Relative[d][k-1]+0.02 {
				t.Errorf("ed=%d: relative perf rose with more embedding threads: %v", r.Dims[d], r.Relative[d])
			}
		}
		if r.Relative[d][len(r.EmbThreads)-1] >= 1 {
			t.Errorf("ed=%d: no degradation at 8 embedding threads", r.Dims[d])
		}
		// The embedding cache must beat the contended case.
		if r.WithEmbCache[d] <= r.Relative[d][len(r.EmbThreads)-1] {
			t.Errorf("ed=%d: embedding cache did not relieve contention", r.Dims[d])
		}
	}
	r.Table()
}

func TestFig6Shapes(t *testing.T) {
	r, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range r.Histogram {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("histogram sums to %v", sum)
	}
	if len(r.Histogram) != len(r.Buckets) {
		t.Errorf("%d histogram buckets for %d labels", len(r.Histogram), len(r.Buckets))
	}
	r.Table()
}

func TestFig7Shapes(t *testing.T) {
	r, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Thresholds); i++ {
		if r.Reduction[i] < r.Reduction[i-1]-1e-9 {
			t.Errorf("compute reduction not monotone in threshold: %v", r.Reduction)
		}
	}
	if r.Reduction[len(r.Reduction)-1] < 0.5 {
		t.Errorf("large threshold should skip most output work: %v", r.Reduction)
	}
	if len(r.PerTask) != int(babi.NumTasks) {
		t.Errorf("expected %d tasks, got %d", babi.NumTasks, len(r.PerTask))
	}
	r.Table()
}

func TestFig9Shapes(t *testing.T) {
	r := Fig9(quick())
	iCol, iCS, iMF := int(VariantColumn), int(VariantColumnStream), int(VariantMnnFast)
	if !(r.AvgSpeedup[iCol] > 1) {
		t.Errorf("column avg speedup %v, want > 1", r.AvgSpeedup[iCol])
	}
	if !(r.AvgSpeedup[iCS] > r.AvgSpeedup[iCol]) {
		t.Errorf("streaming did not improve on column: %v vs %v", r.AvgSpeedup[iCS], r.AvgSpeedup[iCol])
	}
	if !(r.AvgSpeedup[iMF] > r.AvgSpeedup[iCS]) {
		t.Errorf("zero-skipping did not improve on streaming: %v vs %v", r.AvgSpeedup[iMF], r.AvgSpeedup[iCS])
	}
	// Baseline divisions dominate its softmax time relative to column.
	if r.Breakdown[0].Softmax <= r.Breakdown[iCol].Softmax {
		t.Errorf("lazy softmax did not shrink softmax time: %v vs %v",
			r.Breakdown[0].Softmax, r.Breakdown[iCol].Softmax)
	}
	r.Table()
}

func TestFig10Shapes(t *testing.T) {
	r := Fig10(quick())
	// Streaming scales at least as well as non-streaming at the top
	// channel count and top thread count.
	c := len(r.Channels) - 1
	last := len(r.Threads) - 1
	if r.ColumnStream[c][last] < r.Column[c][last] {
		t.Errorf("column+S scaled worse than column at %dch: %v < %v",
			r.Channels[c], r.ColumnStream[c][last], r.Column[c][last])
	}
	r.Table()
}

func TestFig11Shapes(t *testing.T) {
	r := Fig11(quick())
	if r.Normalized[0] != 1 {
		t.Errorf("baseline normalization %v", r.Normalized[0])
	}
	if !(r.Normalized[1] < 1) {
		t.Errorf("column did not reduce demand misses: %v", r.Normalized[1])
	}
	if !(r.Normalized[2] < 0.4) {
		t.Errorf("column+streaming should eliminate >60%% of demand accesses: %v", r.Normalized[2])
	}
	r.Table()
}

func TestFig12Shapes(t *testing.T) {
	r := Fig12(quick())
	// Streams give a modest speedup capped by the memcpy critical path.
	last := r.StreamSpeedup[len(r.StreamSpeedup)-1]
	if last < 1.1 || last > 1.6 {
		t.Errorf("4-stream speedup %v outside the paper's memcpy-bound regime", last)
	}
	// Multi-GPU beats streams and grows with device count.
	for i := 1; i < len(r.GPUs); i++ {
		if r.GPUSpeedup[i] <= r.GPUSpeedup[i-1] {
			t.Errorf("multi-GPU speedup not increasing: %v", r.GPUSpeedup)
		}
	}
	if top := r.GPUSpeedup[len(r.GPUSpeedup)-1]; top < 3 {
		t.Errorf("4-GPU speedup %v, want > 3 (paper: 4.34)", top)
	}
	// The worst-vs-ideal H2D gap grows with devices.
	prev := 0.0
	for i := range r.GPUs {
		gap := r.Worst[i].H2D - r.Ideal[i].H2D
		if gap < prev-1e-12 {
			t.Errorf("H2D contention gap shrank: %v", gap)
		}
		prev = gap
	}
	r.Table()
}

func TestFig13Shapes(t *testing.T) {
	r := Fig13(quick())
	for i := 1; i < len(r.Normalized); i++ {
		if r.Normalized[i] >= r.Normalized[i-1] {
			t.Errorf("FPGA latency not strictly improving per optimization: %v", r.Normalized)
		}
	}
	if r.SpeedupAll < 1.7 || r.SpeedupAll > 2.8 {
		t.Errorf("full MnnFast FPGA speedup %v, paper reports 2.01×", r.SpeedupAll)
	}
	// Column alone should land in the paper's −20–35%% band.
	if r.Normalized[1] < 0.65 || r.Normalized[1] > 0.85 {
		t.Errorf("column-only normalized latency %v, paper: 0.724", r.Normalized[1])
	}
	r.Table()
}

func TestFig14Shapes(t *testing.T) {
	r := Fig14(quick())
	for i := 1; i < len(r.SizesKB); i++ {
		if r.Reduction[i] <= r.Reduction[i-1] {
			t.Errorf("latency reduction not increasing with cache size: %v", r.Reduction)
		}
		if r.BoundRed[i] <= r.BoundRed[i-1] {
			t.Errorf("associativity bound not increasing: %v", r.BoundRed)
		}
	}
	// The bound should bracket the paper's numbers: 32 KB ≈ 34.5%,
	// 256 KB ≈ 53.1%.
	if r.BoundRed[0] < 0.30 || r.BoundRed[0] > 0.40 {
		t.Errorf("32KB bound reduction %v, paper: 0.345", r.BoundRed[0])
	}
	if last := r.BoundRed[len(r.BoundRed)-1]; last < 0.47 || last > 0.58 {
		t.Errorf("256KB bound reduction %v, paper: 0.531", last)
	}
	// Simulated direct-mapped reductions stay below the bound.
	for i := range r.Reduction {
		if r.Reduction[i] > r.BoundRed[i] {
			t.Errorf("simulated reduction exceeds associativity bound at %dKB", r.SizesKB[i])
		}
	}
	r.Table()
}

func TestEnergyShapes(t *testing.T) {
	r := Energy(quick())
	if r.FPGAAdvantage < 2 {
		t.Errorf("FPGA energy advantage %v, paper reports 6.54×", r.FPGAAdvantage)
	}
	if r.CPUTime <= 0 || r.FPGATime <= 0 {
		t.Error("non-positive batch times")
	}
	r.Table()
}

func TestMeasuredOrdering(t *testing.T) {
	cfg := quick()
	cfg.NS = 1 << 12
	r := Measured(cfg)
	if len(r.Latency) != 4 {
		t.Fatalf("%d variants measured", len(r.Latency))
	}
	if r.MaxOutErr > 1e-3 {
		t.Errorf("exact engines disagree by %v", r.MaxOutErr)
	}
	// MnnFast (zero-skipping) must beat the plain column run in work
	// done; on wall-clock allow noise but require it not be slower than
	// baseline by more than 2× (sanity bound, not a perf assertion).
	if r.Speedup[int(VariantMnnFast)] < 0.5 {
		t.Errorf("mnnfast wall-clock speedup %v suspiciously low", r.Speedup[int(VariantMnnFast)])
	}
	r.Table()
}

func TestTable1(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) < 4 {
		t.Errorf("table1 has %d rows", len(tb.Rows))
	}
}

func TestBypassShapes(t *testing.T) {
	r := Bypass(quick())
	if len(r.Policies) != 3 {
		t.Fatalf("%d policies", len(r.Policies))
	}
	shared, bypass, cached := 0, 1, 2
	if r.InfMissRate[bypass] >= r.InfMissRate[shared] {
		t.Errorf("bypass did not relieve inference contention: %v vs %v",
			r.InfMissRate[bypass], r.InfMissRate[shared])
	}
	if r.EmbDRAM[bypass] != r.EmbAccesses {
		t.Errorf("bypass must send every embedding access to DRAM: %d of %d",
			r.EmbDRAM[bypass], r.EmbAccesses)
	}
	if r.EmbDRAM[cached] >= r.EmbDRAM[bypass] {
		t.Errorf("embedding cache did not cut DRAM accesses below bypass: %d vs %d",
			r.EmbDRAM[cached], r.EmbDRAM[bypass])
	}
	if r.InfMissRate[cached] > r.InfMissRate[bypass]+1e-9 {
		t.Errorf("embedding cache isolates at least as well as bypass: %v vs %v",
			r.InfMissRate[cached], r.InfMissRate[bypass])
	}
	r.Table()
}

func TestDRAMRowShapes(t *testing.T) {
	r := DRAMRow(quick())
	iBase, iCol := 0, 1
	if r.Efficiency[iCol] <= r.Efficiency[iBase] {
		t.Errorf("column stream not more row-buffer friendly than baseline: %v vs %v",
			r.Efficiency[iCol], r.Efficiency[iBase])
	}
	if r.EmbEfficiency >= r.Efficiency[iBase] {
		t.Errorf("random embedding lookups should underperform sequential streams: %v vs %v",
			r.EmbEfficiency, r.Efficiency[iBase])
	}
	for i := range r.Variants {
		if r.RowHitRate[i] <= 0 || r.RowHitRate[i] > 1 {
			t.Errorf("row-hit rate out of range: %v", r.RowHitRate[i])
		}
	}
	r.Table()
}

func TestVerifyAllPasses(t *testing.T) {
	checks := VerifyAll(quick())
	if len(checks) < 8 {
		t.Fatalf("only %d checks", len(checks))
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("claim-shape check failed: %s — %s", c.Name, c.Detail)
		}
		if c.Detail == "" {
			t.Errorf("check %s has no detail", c.Name)
		}
	}
}
