package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// FprintMarkdown renders the table as GitHub-flavored markdown, the
// format EXPERIMENTS.md embeds.
func (t *Table) FprintMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(escapeCells(t.Headers), " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "|%s|\n", strings.Join(seps, "|"))
	for _, row := range t.Rows {
		padded := make([]string, len(t.Headers))
		copy(padded, escapeCells(row))
		fmt.Fprintf(w, "| %s |\n", strings.Join(padded, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

func escapeCells(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = strings.ReplaceAll(c, "|", "\\|")
	}
	return out
}

// FprintCSV renders the table as CSV (headers first; notes become
// trailing comment-style rows with a single "# note" cell prefix).
func (t *Table) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		padded := make([]string, len(t.Headers))
		copy(padded, row)
		if err := cw.Write(padded); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# note", n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Format names a table rendering.
type Format string

// Supported table formats.
const (
	FormatText     Format = "text"
	FormatMarkdown Format = "md"
	FormatCSV      Format = "csv"
)

// Render writes the table in the requested format.
func (t *Table) Render(w io.Writer, f Format) error {
	switch f {
	case FormatText, "":
		t.Fprint(w)
		return nil
	case FormatMarkdown:
		t.FprintMarkdown(w)
		return nil
	case FormatCSV:
		return t.FprintCSV(w)
	}
	return fmt.Errorf("experiments: unknown format %q (text, md, csv)", f)
}
