package experiments

import (
	"math/rand"

	"mnnfast/internal/perfmodel"
	"mnnfast/internal/tensor"
)

// EnergyResult is the CPU-vs-FPGA energy comparison (paper §5.5): both
// platforms process the same quantity of QA work at the FPGA-scale
// network configuration; the FPGA wins on tasks per joule.
type EnergyResult struct {
	Tasks         float64
	CPUTime       float64 // seconds for the batch on the 20-thread CPU
	FPGATime      float64 // seconds for the batch on the accelerator
	CPUEff        float64 // tasks per joule
	FPGAEff       float64
	FPGAAdvantage float64
}

// Energy runs the comparison.
func Energy(cfg Config) *EnergyResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	const ns, ed, chunk, tasks = 1000, 25, 25, 10000.0
	mem := newDatabase(rng, ns, ed)
	u := tensor.RandomVector(rng, ed, 1)

	fcfg := cfg
	fcfg.Chunk = chunk
	prof := profileVariant(fcfg, VariantMnnFast, mem, u)

	// CPU: MnnFast on 20 threads, 4 channels. At this tiny (FPGA-scale)
	// network the lock-step parallelization's per-layer barriers
	// (§4.1.1: inner product, exp, sum, normalize, weighted sum)
	// dominate the microseconds of actual work.
	cpu := perfmodel.DefaultCPU()
	w := workloadOf(prof)
	const lockstepLayers = 5
	cpuPer := cpu.Time(w, 20, 4).Total + lockstepLayers*cpu.LockstepBarrier

	// FPGA: the same work on the accelerator model.
	f := perfmodel.DefaultFPGA()
	memBytes := mem.In.SizeBytes() + mem.Out.SizeBytes()
	fpgaPer := f.Latency(perfmodel.FPGAWork{
		InnerMuls:   prof.Stats.InnerProductMuls,
		WeightedMul: prof.Stats.WeightedSumMuls,
		Exps:        prof.Stats.Exps,
		Divs:        prof.Stats.Divisions,
		StreamBytes: memBytes,
		Bursts:      int64(ns / chunk),
	}, true).Seconds

	e := perfmodel.DefaultEnergy()
	res := &EnergyResult{
		Tasks:    tasks,
		CPUTime:  cpuPer * tasks,
		FPGATime: fpgaPer * tasks,
	}
	res.CPUEff = e.Efficiency(tasks, res.CPUTime, e.CPUWatts)
	res.FPGAEff = e.Efficiency(tasks, res.FPGATime, e.FPGAWatts)
	res.FPGAAdvantage = res.FPGAEff / res.CPUEff
	return res
}

// Table renders the result.
func (r *EnergyResult) Table() *Table {
	t := &Table{
		ID:      "energy",
		Title:   "energy efficiency: CPU-based vs FPGA-based MnnFast (§5.5)",
		Headers: []string{"platform", "batch time", "tasks/J"},
	}
	t.AddRow("CPU (20T, 4ch)", fs(r.CPUTime), f1(r.CPUEff))
	t.AddRow("FPGA (Zynq-7020)", fs(r.FPGATime), f1(r.FPGAEff))
	t.Note("FPGA energy-efficiency advantage: %s× (paper: up to 6.54×)", f2(r.FPGAAdvantage))
	return t
}

// Table1 renders the paper's Table 1 configuration constants as used
// throughout this reproduction.
func Table1() *Table {
	t := &Table{
		ID:      "table1",
		Title:   "memory network configurations (paper Table 1; DB scaled for laptop runs)",
		Headers: []string{"entry", "CPU", "GPU", "FPGA"},
	}
	t.AddRow("embedding dimension", "48", "64", "25")
	t.AddRow("database size (paper)", "100M", "100M", "1000")
	t.AddRow("database size (this repro)", "256K", "256K", "1000")
	t.AddRow("chunk size", "1000", "variable", "25")
	t.Note("paper databases are Wikipedia-scale; this reproduction scales ns so working-set:LLC ratios match")
	return t
}
