package experiments

import (
	"math/rand"
	"time"

	"mnnfast/internal/core"
	"mnnfast/internal/tensor"
)

// MeasuredResult reports real wall-clock inference latencies of the
// four designs on this machine — the hardware-independent part of the
// paper's CPU claims: the column-based algorithm's locality win and
// zero-skipping's compute reduction survive any substrate.
type MeasuredResult struct {
	Variants  []EngineVariant
	NS, ED    int
	Reps      int
	Latency   []time.Duration // mean per-inference latency
	Speedup   []float64       // vs baseline
	MaxOutErr float64         // max output divergence across variants
}

// Measured times the engines on a shared random database.
func Measured(cfg Config) *MeasuredResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mem := newDatabase(rng, cfg.NS, cfg.ED)
	u := tensor.RandomVector(rng, cfg.ED, 1)
	reps := 5
	res := &MeasuredResult{Variants: AllVariants(), NS: cfg.NS, ED: cfg.ED, Reps: reps}

	var ref tensor.Vector
	for _, v := range res.Variants {
		eng := buildEngine(v, mem, core.Options{ChunkSize: cfg.Chunk})
		o := tensor.NewVector(cfg.ED)
		eng.Infer(u, o) // warm-up
		start := time.Now()
		for r := 0; r < reps; r++ {
			eng.Infer(u, o)
		}
		res.Latency = append(res.Latency, time.Since(start)/time.Duration(reps))
		if v == VariantBaseline {
			ref = o.Clone()
		} else if v != VariantMnnFast { // zero-skipping perturbs slightly
			if d := float64(tensor.MaxAbsDiff(ref, o)); d > res.MaxOutErr {
				res.MaxOutErr = d
			}
		}
	}
	for _, l := range res.Latency {
		res.Speedup = append(res.Speedup, float64(res.Latency[0])/float64(l))
	}
	return res
}

// Table renders the result.
func (r *MeasuredResult) Table() *Table {
	t := &Table{
		ID:      "measured",
		Title:   "real wall-clock per-inference latency on this machine (single question)",
		Headers: []string{"variant", "latency", "speedup vs baseline"},
	}
	for i, v := range r.Variants {
		t.AddRow(v.String(), r.Latency[i].String(), f2(r.Speedup[i]))
	}
	t.Note("ns=%d ed=%d, %d reps; exact variants agree within %.2g", r.NS, r.ED, r.Reps, r.MaxOutErr)
	t.Note("on a single-core host the streaming prefetcher cannot overlap; its win appears in the modelled figures")
	return t
}
