// Package experiments reproduces every table and figure of the MnnFast
// paper's evaluation (§5). Each experiment is a pure function from a
// Config to a structured result that renders as the same rows/series
// the paper reports; cmd/mnnfast-bench and the repository-root
// benchmarks drive them.
//
// Absolute numbers depend on the modelled hardware constants (see
// internal/perfmodel); what the reproduction is accountable for is the
// shape of each result — who wins, by roughly what factor, and where
// the knees fall. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Config scales the experiment suite. The zero value is unusable; use
// DefaultConfig (paper-regime sizes scaled to laptop memory) or
// QuickConfig (seconds-fast, for tests).
type Config struct {
	Seed     int64
	NS       int // story sentences in the knowledge database
	ED       int // embedding dimension (CPU experiments; Table 1: 48)
	Chunk    int // column-engine chunk size (Table 1: 1000)
	Threads  []int
	Channels []int
	// Training-based experiments (Fig 6, 7).
	TrainStories int
	StoryLen     int
	Epochs       int
	// Suite20 makes Fig 7 average over the 20-configuration task suite
	// (babi.Suite20), matching the paper's 20-task averaging; false
	// averages over the 8 base families (much faster).
	Suite20 bool
	// LLC geometry for the cache-simulation experiments.
	LLCBytes int64
}

// DefaultConfig mirrors the paper's CPU configuration (Table 1) with
// the database scaled from 100M to 256K sentences so that working-set :
// LLC ratios stay in the paper's regime while fitting laptop memory.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		NS:           1 << 18,
		ED:           48,
		Chunk:        1000,
		Threads:      []int{1, 2, 4, 8, 12, 16, 20},
		Channels:     []int{1, 2, 4},
		TrainStories: 1200,
		StoryLen:     20,
		Epochs:       60,
		Suite20:      true,
		LLCBytes:     20 << 20,
	}
}

// QuickConfig shrinks everything for unit tests and smoke runs.
func QuickConfig() Config {
	return Config{
		Seed:         1,
		NS:           1 << 13,
		ED:           32,
		Chunk:        256,
		Threads:      []int{1, 2, 4, 8},
		Channels:     []int{1, 2, 4},
		TrainStories: 120,
		StoryLen:     10,
		Epochs:       8,
		LLCBytes:     1 << 20,
	}
}

// Table is a printable experiment result.
type Table struct {
	ID      string // experiment id, e.g. "fig9"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Headers)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func in(x int) string      { return fmt.Sprintf("%d", x) }
func i64(x int64) string   { return fmt.Sprintf("%d", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
