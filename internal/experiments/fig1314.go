package experiments

import (
	"math/rand"

	"mnnfast/internal/cachesim"
	"mnnfast/internal/perfmodel"
	"mnnfast/internal/tensor"
	"mnnfast/internal/vocab"
)

// Fig13Result is the FPGA latency experiment (paper Figure 13):
// modelled accelerator latency of the four designs at the Table 1 FPGA
// configuration (ed=25, ns=1000, chunk=25), normalized to the baseline.
type Fig13Result struct {
	Variants   []EngineVariant
	Latency    []perfmodel.FPGALatency
	Normalized []float64
	SpeedupAll float64 // full MnnFast speedup over baseline
}

// Fig13 runs the experiment.
func Fig13(cfg Config) *Fig13Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	const ns, ed, chunk = 1000, 25, 25
	mem := newDatabase(rng, ns, ed)
	u := tensor.RandomVector(rng, ed, 1)
	f := perfmodel.DefaultFPGA()

	fcfg := cfg
	fcfg.Chunk = chunk
	res := &Fig13Result{Variants: AllVariants()}
	for _, v := range res.Variants {
		prof := profileVariant(fcfg, v, mem, u)
		work := perfmodel.FPGAWork{
			InnerMuls:   prof.Stats.InnerProductMuls,
			WeightedMul: prof.Stats.WeightedSumMuls,
			Exps:        prof.Stats.Exps,
			Divs:        prof.Stats.Divisions,
			SpillBytes:  prof.Stats.SpillBytes,
			Bursts:      int64(ns / chunk),
		}
		memBytes := mem.In.SizeBytes() + mem.Out.SizeBytes()
		streamed := v == VariantColumnStream || v == VariantMnnFast
		if streamed {
			work.StreamBytes = memBytes
		} else {
			work.DemandBytes = memBytes
		}
		res.Latency = append(res.Latency, f.Latency(work, streamed))
	}
	base := res.Latency[0].Total
	for _, l := range res.Latency {
		res.Normalized = append(res.Normalized, l.Total/base)
	}
	res.SpeedupAll = base / res.Latency[len(res.Latency)-1].Total
	return res
}

// Table renders the result.
func (r *Fig13Result) Table() *Table {
	t := &Table{
		ID:      "fig13",
		Title:   "FPGA latency by design (cycles, normalized to baseline)",
		Headers: []string{"variant", "compute cyc", "memory cyc", "total cyc", "normalized"},
	}
	for i, v := range r.Variants {
		l := r.Latency[i]
		t.AddRow(v.String(), f1(l.Compute), f1(l.Memory), f1(l.Total), f2(r.Normalized[i]))
	}
	t.Note("MnnFast speedup over baseline: %s×", f2(r.SpeedupAll))
	t.Note("paper shape: column −27.6%%, +streaming −38.2%%, full MnnFast 2.01×")
	return t
}

// Fig14Result is the embedding-cache experiment (paper Figure 14):
// embedding-operation latency for cache sizes 32–256 KB against the
// no-cache design, driven by a Zipf word stream (COCA substitute).
type Fig14Result struct {
	SizesKB   []int
	HitRate   []float64 // simulated direct-mapped hit rate (the paper's design)
	AssocHit  []float64 // simulated 4-way LRU hit rate (design-space extension)
	TopMass   []float64 // fully-associative bound: probability mass of the hottest k words
	Latency   []float64 // cycles, direct-mapped
	NoCache   float64   // cycles without the cache
	Reduction []float64 // 1 - Latency/NoCache (direct-mapped)
	AssocRed  []float64 // reduction with the 4-way cache
	BoundRed  []float64 // reduction at the fully-associative bound
}

// Fig14 runs the experiment with the paper's ed = 256.
func Fig14(cfg Config) *Fig14Result {
	const ed = 256
	const words = 200000
	const vocabSize = 50000
	zipf := vocab.NewZipfModel(vocabSize, 1.0)
	stream := zipf.Stream(rand.New(rand.NewSource(cfg.Seed)), words)

	// The FPGA datapath for this configuration is ed wide.
	f := perfmodel.DefaultFPGA()
	f.MACLanes = ed

	res := &Fig14Result{
		SizesKB: []int{32, 64, 128, 256},
		NoCache: f.EmbeddingLatency(words, 0, ed),
	}
	for _, kb := range res.SizesKB {
		ec := cachesim.NewEmbeddingCache(int64(kb)<<10, ed)
		for _, w := range stream {
			ec.Lookup(w)
		}
		hr := ec.HitRate()
		lat := f.EmbeddingLatency(words, hr, ed)
		res.HitRate = append(res.HitRate, hr)
		res.Latency = append(res.Latency, lat)
		res.Reduction = append(res.Reduction, 1-lat/res.NoCache)

		// Design-space extension: 4-way LRU recovers most of the
		// conflict misses the direct-mapped design pays.
		ac := cachesim.NewEmbeddingCacheAssoc(int64(kb)<<10, ed, 4)
		for _, w := range stream {
			ac.Lookup(w)
		}
		res.AssocHit = append(res.AssocHit, ac.HitRate())
		res.AssocRed = append(res.AssocRed, 1-f.EmbeddingLatency(words, ac.HitRate(), ed)/res.NoCache)

		// Fully-associative bound: a k-entry cache can at best capture
		// the k hottest words' probability mass.
		tm := zipf.TopMass(ec.Entries())
		res.TopMass = append(res.TopMass, tm)
		res.BoundRed = append(res.BoundRed, 1-f.EmbeddingLatency(words, tm, ed)/res.NoCache)
	}
	return res
}

// Table renders the result.
func (r *Fig14Result) Table() *Table {
	t := &Table{
		ID:      "fig14",
		Title:   "embedding-cache effectiveness (ed=256, Zipf word stream)",
		Headers: []string{"cache size", "hit rate", "latency (cyc)", "reduction", "4-way red.", "assoc bound"},
	}
	for i, kb := range r.SizesKB {
		t.AddRow(in(kb)+"KB", pct(r.HitRate[i]), f1(r.Latency[i]),
			pct(r.Reduction[i]), pct(r.AssocRed[i]), pct(r.BoundRed[i]))
	}
	t.Note("no-cache latency: %s cycles", f1(r.NoCache))
	t.Note("'assoc bound' holds the k hottest words (no conflicts) — the paper's −34.5%%/−41.7%%/−47.7%%/−53.1%% sit at this bound")
	t.Note("the simulated direct-mapped cache pays conflict misses; a 4-way LRU variant (extension) recovers part of the gap")
	return t
}
