package experiments

import (
	"fmt"
	"sort"
)

// Runner produces a printable table for one experiment.
type Runner func(cfg Config) (*Table, error)

// Registry maps experiment IDs to runners, in the paper's order.
var registry = map[string]Runner{
	"table1": func(cfg Config) (*Table, error) { return Table1(), nil },
	"fig3":   func(cfg Config) (*Table, error) { return Fig3(cfg).Table(), nil },
	"fig4":   func(cfg Config) (*Table, error) { return Fig4(cfg).Table(), nil },
	"fig6": func(cfg Config) (*Table, error) {
		r, err := Fig6(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	"fig7": func(cfg Config) (*Table, error) {
		r, err := Fig7(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	"fig9":     func(cfg Config) (*Table, error) { return Fig9(cfg).Table(), nil },
	"fig10":    func(cfg Config) (*Table, error) { return Fig10(cfg).Table(), nil },
	"fig11":    func(cfg Config) (*Table, error) { return Fig11(cfg).Table(), nil },
	"fig12":    func(cfg Config) (*Table, error) { return Fig12(cfg).Table(), nil },
	"fig13":    func(cfg Config) (*Table, error) { return Fig13(cfg).Table(), nil },
	"fig14":    func(cfg Config) (*Table, error) { return Fig14(cfg).Table(), nil },
	"energy":   func(cfg Config) (*Table, error) { return Energy(cfg).Table(), nil },
	"measured": func(cfg Config) (*Table, error) { return Measured(cfg).Table(), nil },
	"bypass":   func(cfg Config) (*Table, error) { return Bypass(cfg).Table(), nil },
	"dramrow":  func(cfg Config) (*Table, error) { return DRAMRow(cfg).Table(), nil },
}

// order fixes the presentation sequence.
var order = []string{
	"table1", "fig3", "fig4", "fig6", "fig7", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "energy", "measured", "bypass", "dramrow",
}

// IDs returns all experiment IDs in presentation order.
func IDs() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
	}
	return r(cfg)
}
