package experiments

import (
	"math/rand"

	"mnnfast/internal/cachesim"
	"mnnfast/internal/core"
	"mnnfast/internal/perfmodel"
	"mnnfast/internal/tensor"
)

// EngineVariant names the four designs of the paper's ablation.
type EngineVariant int

// The paper's four evaluated designs (Fig 9, 13).
const (
	VariantBaseline EngineVariant = iota
	VariantColumn
	VariantColumnStream
	VariantMnnFast // column + streaming + zero-skipping
)

var variantNames = [...]string{"baseline", "column", "column+S", "mnnfast"}

// String returns the paper's label for the variant.
func (v EngineVariant) String() string { return variantNames[v] }

// AllVariants lists the designs in ablation order.
func AllVariants() []EngineVariant {
	return []EngineVariant{VariantBaseline, VariantColumn, VariantColumnStream, VariantMnnFast}
}

// skipThresholdDefault is the paper's CPU zero-skipping threshold
// (§4.1.1: "skips ... whose weight is lower than 0.1"); applied to
// max-shifted exponentials in the engines.
const skipThresholdDefault = 0.1

// buildEngine constructs the variant over mem.
func buildEngine(v EngineVariant, mem *core.Memory, opt core.Options) core.Engine {
	switch v {
	case VariantBaseline:
		return core.NewBaseline(mem, opt)
	case VariantColumn:
		opt.Streaming = false
		opt.SkipThreshold = 0
		return core.NewColumn(mem, opt)
	case VariantColumnStream:
		opt.Streaming = true
		opt.SkipThreshold = 0
		return core.NewColumn(mem, opt)
	case VariantMnnFast:
		opt.Streaming = true
		opt.SkipThreshold = skipThresholdDefault
		return core.NewColumn(mem, opt)
	}
	panic("experiments: unknown variant")
}

// sharpen scales the input-memory logits so trained-model attention
// sparsity (Fig 6) is reflected in synthetic databases: only a handful
// of rows carry non-negligible probability.
func sharpen(mem *core.Memory, factor float32) {
	for i := range mem.In.Data {
		mem.In.Data[i] *= factor
	}
}

// newDatabase builds a random knowledge database of ns×ed with
// attention sharpened to trained-model sparsity.
func newDatabase(rng *rand.Rand, ns, ed int) *core.Memory {
	mem, err := core.NewMemory(
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
		tensor.GaussianMatrix(rng, ns, ed, 0.5),
	)
	if err != nil {
		panic(err)
	}
	sharpen(mem, 4)
	return mem
}

// measured holds the per-inference profile of one engine variant:
// operation counters plus simulated memory behaviour.
type measured struct {
	Variant EngineVariant
	Stats   core.Stats
	Demand  int64 // demand off-chip line misses
	DRAMB   int64 // DRAM bytes (incl. prefetch fills and writebacks)
}

// profileVariant runs one traced inference of the variant through a
// fresh hierarchy and returns its profile.
func profileVariant(cfg Config, v EngineVariant, mem *core.Memory, u tensor.Vector) measured {
	h := cachesim.NewHierarchy(cachesim.CacheConfig{SizeBytes: cfg.LLCBytes, LineBytes: 64, Ways: 16})
	opt := core.Options{ChunkSize: cfg.Chunk, Tracer: h}
	eng := buildEngine(v, mem, opt)
	o := tensor.NewVector(mem.Dim())
	st := eng.Infer(u, o)
	return measured{Variant: v, Stats: st, Demand: h.DemandMisses(), DRAMB: h.DRAMBytes}
}

// workloadOf converts a profile into the perfmodel workload, weighting
// exp/div against MACs and charging demand-line traffic (64 B each).
func workloadOf(m measured) perfmodel.Workload {
	w := perfmodel.DefaultOpWeights()
	return perfmodel.Workload{
		Name:       m.Variant.String(),
		ComputeOps: w.Ops(m.Stats.TotalMuls(), m.Stats.Exps, m.Stats.Divisions),
		DRAMBytes:  float64(m.DRAMB),
		Streamed:   m.Variant == VariantColumnStream || m.Variant == VariantMnnFast,
	}
}
