package experiments

import (
	"math/rand"

	"mnnfast/internal/perfmodel"
	"mnnfast/internal/tensor"
)

// Fig10Result is the optimized-scalability experiment (paper
// Figure 10): thread-scaling of the column-based algorithm without and
// with streaming at each channel count.
type Fig10Result struct {
	Threads  []int
	Channels []int
	// Column[c][t] and ColumnStream[c][t] are speedups over the
	// variant's own single-thread run.
	Column       [][]float64
	ColumnStream [][]float64
}

// Fig10 runs the experiment.
func Fig10(cfg Config) *Fig10Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mem := newDatabase(rng, cfg.NS, cfg.ED)
	u := tensor.RandomVector(rng, cfg.ED, 1)
	cpu := perfmodel.DefaultCPU()

	wCol := workloadOf(profileVariant(cfg, VariantColumn, mem, u))
	wCS := workloadOf(profileVariant(cfg, VariantColumnStream, mem, u))

	res := &Fig10Result{Threads: cfg.Threads, Channels: cfg.Channels}
	for _, ch := range cfg.Channels {
		col := make([]float64, len(cfg.Threads))
		cs := make([]float64, len(cfg.Threads))
		for i, t := range cfg.Threads {
			col[i] = cpu.Speedup(wCol, t, ch)
			cs[i] = cpu.Speedup(wCS, t, ch)
		}
		res.Column = append(res.Column, col)
		res.ColumnStream = append(res.ColumnStream, cs)
	}
	return res
}

// Table renders the result.
func (r *Fig10Result) Table() *Table {
	t := &Table{
		ID:      "fig10",
		Title:   "scalability of column-based algorithm (speedup over own 1-thread run)",
		Headers: []string{"threads"},
	}
	for _, ch := range r.Channels {
		t.Headers = append(t.Headers, "col@"+in(ch)+"ch", "col+S@"+in(ch)+"ch")
	}
	for i, th := range r.Threads {
		row := []string{in(th)}
		for c := range r.Channels {
			row = append(row, f2(r.Column[c][i]), f2(r.ColumnStream[c][i]))
		}
		t.AddRow(row...)
	}
	t.Note("paper shape: column saturates later than baseline; column+streaming reaches near-ideal scaling")
	return t
}

// Fig11Result is the off-chip access experiment (paper Figure 11):
// demand off-chip accesses of each design normalized to the baseline,
// with total DRAM traffic (including prefetch fills) alongside.
type Fig11Result struct {
	Variants     []EngineVariant
	DemandMisses []int64
	DRAMBytes    []int64
	// Normalized[v] = DemandMisses[v] / DemandMisses[baseline].
	Normalized []float64
}

// Fig11 runs the experiment.
func Fig11(cfg Config) *Fig11Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mem := newDatabase(rng, cfg.NS, cfg.ED)
	u := tensor.RandomVector(rng, cfg.ED, 1)

	res := &Fig11Result{Variants: []EngineVariant{VariantBaseline, VariantColumn, VariantColumnStream}}
	for _, v := range res.Variants {
		prof := profileVariant(cfg, v, mem, u)
		res.DemandMisses = append(res.DemandMisses, prof.Demand)
		res.DRAMBytes = append(res.DRAMBytes, prof.DRAMB)
	}
	base := float64(res.DemandMisses[0])
	for _, m := range res.DemandMisses {
		res.Normalized = append(res.Normalized, float64(m)/base)
	}
	return res
}

// Table renders the result.
func (r *Fig11Result) Table() *Table {
	t := &Table{
		ID:      "fig11",
		Title:   "off-chip memory accesses (normalized demand misses; total DRAM bytes incl. prefetch)",
		Headers: []string{"variant", "demand misses", "normalized", "DRAM MB"},
	}
	for i, v := range r.Variants {
		t.AddRow(v.String(),
			i64(r.DemandMisses[i]),
			f2(r.Normalized[i]),
			f1(float64(r.DRAMBytes[i])/(1<<20)))
	}
	t.Note("paper shape: column removes the spill misses; column+streaming eliminates >60%% of demand accesses")
	return t
}
