package experiments

import (
	"math/rand"
	"sort"

	"mnnfast/internal/babi"
	"mnnfast/internal/memnn"
)

// trainTask trains a 3-hop MemNN on one synthetic task at the config's
// default generation options.
func trainTask(cfg Config, task babi.Task, seed int64) (*memnn.Model, *memnn.Corpus, error) {
	opt := babi.GenOptions{Stories: cfg.TrainStories, StoryLen: cfg.StoryLen, People: 4, Locations: 4}
	return trainTaskOpt(cfg, task, opt, seed)
}

// trainTaskOpt trains with explicit generation options (Suite20 path).
func trainTaskOpt(cfg Config, task babi.Task, opt babi.GenOptions, seed int64) (*memnn.Model, *memnn.Corpus, error) {
	opt.Stories = cfg.TrainStories
	d := babi.Generate(task, opt, rand.New(rand.NewSource(seed)))
	train, test := d.Split(0.8)
	c := memnn.BuildCorpus(train, test, 0)
	// Three hops, as the end-to-end memory networks paper uses for the
	// multi-fact bAbI tasks; two-fact chaining needs one hop per fact.
	m, err := memnn.NewModel(memnn.Config{
		Dim:     24,
		Hops:    3,
		Vocab:   c.Vocab.Size(),
		Answers: len(c.Answers),
		MaxSent: c.MaxSent,
	}, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, nil, err
	}
	topt := memnn.DefaultTrainOptions()
	topt.Epochs = cfg.Epochs
	topt.Seed = seed + 2
	if _, err := m.Train(c.Train, topt); err != nil {
		return nil, nil, err
	}
	return m, c, nil
}

// Fig6Result is the probability-distribution experiment (paper
// Figure 6): the attention (p-vector) of a trained MemNN over bAbI-like
// stories is extremely sparse.
type Fig6Result struct {
	Task      string
	Accuracy  float64
	Sparsity  memnn.SparsitySummary
	Histogram []float64 // fraction of p-values in each bucket
	Buckets   []string
}

// Fig6 runs the experiment on the single-fact task (the canonical bAbI
// setup of the paper: up to 50 story sentences, 100 questions).
func Fig6(cfg Config) (*Fig6Result, error) {
	m, c, err := trainTask(cfg, babi.TaskSingleFact, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{
		Task:     babi.TaskSingleFact.String(),
		Accuracy: m.Accuracy(c.Test, 0),
		Sparsity: m.SparsityOf(c.Test, 100),
		Buckets:  []string{"<0.01", "0.01-0.1", "0.1-0.5", ">=0.5"},
	}
	bounds := []float32{0.01, 0.1, 0.5}
	counts := make([]int, len(bounds)+1)
	total := 0
	nq := 100
	if nq > len(c.Test) {
		nq = len(c.Test)
	}
	am := m.AttentionMatrix(c.Test, nq, 0)
	for q := 0; q < am.Cols; q++ {
		ns := len(c.Test[q].Sentences)
		for i := 0; i < ns; i++ {
			p := am.At(i, q)
			b := len(bounds)
			for j, up := range bounds {
				if p < up {
					b = j
					break
				}
			}
			counts[b]++
			total++
		}
	}
	for _, n := range counts {
		res.Histogram = append(res.Histogram, float64(n)/float64(total))
	}
	return res, nil
}

// Table renders the result.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		ID:      "fig6",
		Title:   "probability (attention) value distribution of a trained MemNN",
		Headers: []string{"p-value bucket", "fraction of values"},
	}
	for i, b := range r.Buckets {
		t.AddRow(b, pct(r.Histogram[i]))
	}
	t.Note("task %s, test accuracy %s", r.Task, pct(r.Accuracy))
	t.Note("mean top p per question: %s; mean rows >= 0.1: %s", f2(r.Sparsity.MeanTopMass), f1(r.Sparsity.MeanActiveRows))
	t.Note("paper shape: only a few values activated per question, the rest near zero")
	return t
}

// Fig7Result is the zero-skipping tradeoff experiment (paper Figure 7):
// accuracy loss and output-computation reduction versus skip threshold,
// averaged over the task families.
type Fig7Result struct {
	Thresholds []float32
	// Reduction[i] and Loss[i] are averages over tasks at Thresholds[i].
	Reduction []float64
	Loss      []float64
	PerTask   map[string][]memnn.SkipStats
}

// Fig7 runs the experiment: with cfg.Suite20 it averages the
// 20-configuration suite (the paper's 20-task averaging); otherwise the
// 8 base families.
func Fig7(cfg Config) (*Fig7Result, error) {
	res := &Fig7Result{
		Thresholds: []float32{0.001, 0.01, 0.05, 0.1, 0.2, 0.5},
		PerTask:    make(map[string][]memnn.SkipStats),
	}
	res.Reduction = make([]float64, len(res.Thresholds))
	res.Loss = make([]float64, len(res.Thresholds))

	type entry struct {
		name string
		task babi.Task
		opt  babi.GenOptions
	}
	var entries []entry
	if cfg.Suite20 {
		for _, e := range babi.Suite20(cfg.TrainStories) {
			entries = append(entries, entry{e.Name, e.Task, e.Opt})
		}
	} else {
		for _, task := range babi.AllTasks() {
			entries = append(entries, entry{
				task.String(), task,
				babi.GenOptions{Stories: cfg.TrainStories, StoryLen: cfg.StoryLen, People: 4, Locations: 4},
			})
		}
	}
	for ti, e := range entries {
		m, c, err := trainTaskOpt(cfg, e.task, e.opt, cfg.Seed+int64(ti)*17)
		if err != nil {
			return nil, err
		}
		var stats []memnn.SkipStats
		for i, th := range res.Thresholds {
			s := m.EvaluateSkip(c.Test, th)
			stats = append(stats, s)
			res.Reduction[i] += s.ComputeReduction
			res.Loss[i] += s.AccuracyLoss
		}
		res.PerTask[e.name] = stats
	}
	for i := range res.Thresholds {
		res.Reduction[i] /= float64(len(entries))
		res.Loss[i] /= float64(len(entries))
	}
	return res, nil
}

// Table renders the result, including the per-task breakdown at the
// paper's operating point th = 0.1.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		ID:      "fig7",
		Title:   "zero-skipping tradeoff: accuracy loss vs computation reduction (avg over tasks)",
		Headers: []string{"threshold", "compute reduction", "accuracy loss"},
	}
	for i, th := range r.Thresholds {
		t.AddRow(f2(float64(th)*100)+"e-2", pct(r.Reduction[i]), pct(r.Loss[i]))
	}
	opIdx := -1
	for i, th := range r.Thresholds {
		if th == 0.1 {
			opIdx = i
		}
	}
	if opIdx >= 0 {
		names := make([]string, 0, len(r.PerTask))
		for name := range r.PerTask {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if stats := r.PerTask[name]; opIdx < len(stats) {
				s := stats[opIdx]
				t.AddRow("  "+name+"@0.1", pct(s.ComputeReduction), pct(s.AccuracyLoss))
			}
		}
	}
	t.Note("paper shape: th=0.01 → ≈81%% reduction at no loss; th=0.1 → ≈97%% reduction under 1%% loss")
	t.Note("counting distributes attention over several facts, so it is skip-fragile; the paper's 20-task mean dilutes such tasks")
	return t
}
