package experiments

import (
	"math/rand"

	"mnnfast/internal/perfmodel"
	"mnnfast/internal/tensor"
)

// Fig9Result is the CPU performance experiment (paper Figure 9):
// (a) the per-operation latency decomposition of each design and
// (b) speedup over the baseline versus thread count.
type Fig9Result struct {
	Variants []EngineVariant
	// Breakdown[v] decomposes variant v's single-thread modelled time.
	Breakdown []Fig9Breakdown
	Threads   []int
	// Speedup[v][t] is variant v's speedup over the baseline at
	// Threads[t] (4 memory channels).
	Speedup [][]float64
	// AvgSpeedup[v] averages the speedup across thread counts, and
	// MaxSpeedup[v] is its maximum — the paper's 4.02× / 5.38× figures
	// for MnnFast.
	AvgSpeedup []float64
	MaxSpeedup []float64
}

// Fig9Breakdown is one variant's modelled single-thread time split by
// the paper's operations.
type Fig9Breakdown struct {
	InnerProduct float64 // seconds
	Softmax      float64
	WeightedSum  float64
	Memory       float64 // non-overlapped memory time
	Total        float64
}

// Fig9 runs the experiment.
func Fig9(cfg Config) *Fig9Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mem := newDatabase(rng, cfg.NS, cfg.ED)
	u := tensor.RandomVector(rng, cfg.ED, 1)
	cpu := perfmodel.DefaultCPU()
	ow := perfmodel.DefaultOpWeights()
	channels := 4

	res := &Fig9Result{Variants: AllVariants(), Threads: cfg.Threads}
	workloads := make([]perfmodel.Workload, len(res.Variants))
	for i, v := range res.Variants {
		prof := profileVariant(cfg, v, mem, u)
		w := workloadOf(prof)
		if v == VariantBaseline {
			w.DRAMBytes *= blasChunkingOverhead
		}
		workloads[i] = w

		// Per-operation decomposition at one thread: compute split by
		// operation counters; memory charged as the non-overlapped
		// remainder.
		rate := cpu.CoreGOPs * 1e9
		bd := Fig9Breakdown{
			InnerProduct: ow.Ops(prof.Stats.InnerProductMuls, 0, 0) / rate,
			Softmax:      ow.Ops(0, prof.Stats.Exps, prof.Stats.Divisions) / rate,
			WeightedSum:  ow.Ops(prof.Stats.WeightedSumMuls, 0, 0) / rate,
		}
		tm := cpu.Time(w, 1, channels)
		bd.Total = tm.Total
		compute := bd.InnerProduct + bd.Softmax + bd.WeightedSum
		if bd.Total > compute {
			bd.Memory = bd.Total - compute
		}
		res.Breakdown = append(res.Breakdown, bd)
	}

	for i := range res.Variants {
		row := make([]float64, len(cfg.Threads))
		var sum, max float64
		for t, threads := range cfg.Threads {
			base := cpu.Time(workloads[VariantBaseline], threads, channels).Total
			mine := cpu.Time(workloads[i], threads, channels).Total
			row[t] = base / mine
			sum += row[t]
			if row[t] > max {
				max = row[t]
			}
		}
		res.Speedup = append(res.Speedup, row)
		res.AvgSpeedup = append(res.AvgSpeedup, sum/float64(len(cfg.Threads)))
		res.MaxSpeedup = append(res.MaxSpeedup, max)
	}
	return res
}

// Table renders the result.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		ID:      "fig9",
		Title:   "CPU performance: per-op latency (1 thread, modelled seconds) and speedup vs baseline (4ch)",
		Headers: []string{"variant", "inner", "softmax", "wsum", "memory", "total"},
	}
	for _, th := range r.Threads {
		t.Headers = append(t.Headers, "x@"+in(th)+"T")
	}
	for i, v := range r.Variants {
		b := r.Breakdown[i]
		row := []string{v.String(),
			fs(b.InnerProduct), fs(b.Softmax), fs(b.WeightedSum), fs(b.Memory), fs(b.Total)}
		for t := range r.Threads {
			row = append(row, f2(r.Speedup[i][t]))
		}
		t.AddRow(row...)
	}
	for i, v := range r.Variants {
		if v == VariantBaseline {
			continue
		}
		t.Note("%s: avg speedup %s, max %s", v, f2(r.AvgSpeedup[i]), f2(r.MaxSpeedup[i]))
	}
	t.Note("paper shape: column ≈1.2×, +streaming ≈3.3×, MnnFast ≈4× avg (5.38× at 20T)")
	return t
}

func fs(seconds float64) string {
	switch {
	case seconds >= 1:
		return f2(seconds) + "s"
	case seconds >= 1e-3:
		return f2(seconds*1e3) + "ms"
	default:
		return f2(seconds*1e6) + "us"
	}
}
