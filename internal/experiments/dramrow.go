package experiments

import (
	"math/rand"

	"mnnfast/internal/cachesim"
	"mnnfast/internal/core"
	"mnnfast/internal/dram"
	"mnnfast/internal/tensor"
	"mnnfast/internal/vocab"
)

// DRAMRowResult is the row-buffer ablation (extra, beyond the paper):
// the engines' DRAM-bound line streams replayed through a bank/row
// DRAM timing model. It derives, from first principles, the
// effective-bandwidth derate the CPU model assumes for demand-miss
// patterns — the baseline's interleaved memory+spill stream keeps
// closing rows, while the column engine's (and especially the
// streamed engine's) sequential chunk fetches ride open rows.
type DRAMRowResult struct {
	Variants   []EngineVariant
	RowHitRate []float64
	Efficiency []float64 // achieved / peak bandwidth
	MemTime    []float64 // seconds for the DRAM-bound traffic, 1 channel
	// EmbHitRate and EmbEfficiency characterize the embedding
	// operation's random word-lookup stream — the pattern that
	// justifies both the CPU model's demand-access derate and the
	// dedicated embedding cache.
	EmbHitRate    float64
	EmbEfficiency float64
}

// DRAMRow runs the ablation.
func DRAMRow(cfg Config) *DRAMRowResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mem := newDatabase(rng, cfg.NS, cfg.ED)
	u := tensor.RandomVector(rng, cfg.ED, 1)

	res := &DRAMRowResult{Variants: []EngineVariant{VariantBaseline, VariantColumn, VariantColumnStream}}
	for _, v := range res.Variants {
		h := cachesim.NewHierarchy(cachesim.CacheConfig{SizeBytes: cfg.LLCBytes, LineBytes: 64, Ways: 16})
		sim := dram.NewSim(dram.DDR4_2400(1))
		h.OnDRAM = sim.Access
		eng := buildEngine(v, mem, core.Options{ChunkSize: cfg.Chunk, Tracer: h})
		o := tensor.NewVector(mem.Dim())
		eng.Infer(u, o)
		res.RowHitRate = append(res.RowHitRate, sim.Stats.HitRate())
		res.Efficiency = append(res.Efficiency, sim.Efficiency())
		res.MemTime = append(res.MemTime, sim.Seconds())
	}

	// The embedding operation's stream: Zipf word lookups spread across
	// a large table — random rows, no spatial locality beyond one
	// vector.
	embSim := dram.NewSim(dram.DDR4_2400(1))
	zipf := vocab.NewZipfModel(200000, 1.0)
	r := rand.New(rand.NewSource(cfg.Seed + 5))
	vecBytes := cfg.ED * 4
	for i := 0; i < 50000; i++ {
		w := zipf.Sample(r)
		embSim.Access(int64(w)*int64(vecBytes), vecBytes)
	}
	res.EmbHitRate = embSim.Stats.HitRate()
	res.EmbEfficiency = embSim.Efficiency()
	return res
}

// Table renders the result.
func (r *DRAMRowResult) Table() *Table {
	t := &Table{
		ID:      "dramrow",
		Title:   "DRAM row-buffer behaviour of each design's off-chip stream (1× DDR4-2400)",
		Headers: []string{"variant", "row-hit rate", "bandwidth efficiency", "memory time"},
	}
	for i, v := range r.Variants {
		t.AddRow(v.String(), pct(r.RowHitRate[i]), pct(r.Efficiency[i]), fs(r.MemTime[i]))
	}
	t.AddRow("embedding lookups", pct(r.EmbHitRate), pct(r.EmbEfficiency), "-")
	t.Note("inference streams are sequential and ride open DRAM rows; the embedding operation's")
	t.Note("random word lookups thrash them — the pattern behind the demand-access derate and the embedding cache")
	return t
}
