package experiments

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{ID: "t1", Title: "demo", Headers: []string{"a", "b"}}
	t.AddRow("1", "x|y") // pipe must be escaped in markdown
	t.AddRow("2")        // short row must be padded
	t.Note("a note")
	return t
}

func TestMarkdownRendering(t *testing.T) {
	var sb strings.Builder
	sampleTable().FprintMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{
		"### t1 — demo",
		"| a | b |",
		"|---|---|",
		"x\\|y",
		"> a note",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Padded short row: two cells.
	if !strings.Contains(out, "| 2 |  |") {
		t.Errorf("short row not padded:\n%s", out)
	}
}

func TestCSVRendering(t *testing.T) {
	var sb strings.Builder
	if err := sampleTable().FprintCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4:\n%s", len(lines), sb.String())
	}
	if lines[0] != "a,b" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "# note") {
		t.Errorf("CSV note row = %q", lines[3])
	}
}

func TestRenderDispatch(t *testing.T) {
	tb := sampleTable()
	for _, f := range []Format{FormatText, FormatMarkdown, FormatCSV, ""} {
		var sb strings.Builder
		if err := tb.Render(&sb, f); err != nil {
			t.Errorf("Render(%q): %v", f, err)
		}
		if sb.Len() == 0 {
			t.Errorf("Render(%q) produced nothing", f)
		}
	}
	var sb strings.Builder
	if err := tb.Render(&sb, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}
