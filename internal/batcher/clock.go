package batcher

import "time"

// Clock abstracts wall time and timers so the flush policy is testable
// with a fake clock. The zero Options use the real clock.
type Clock interface {
	Now() time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
}

// Timer is the subset of time.Timer the dispatcher needs.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
}

type realClock struct{}

func (realClock) Now() time.Time                 { return time.Now() }
func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }
