// Package batcher is a dynamic micro-batching scheduler: concurrent
// callers hand it one request each, and a single dispatcher coalesces
// them into batches for a caller-supplied run function — flushing when
// the batch is full or when the oldest queued request has waited
// MaxWait, whichever comes first.
//
// This is the serving-side mechanism behind the paper's batching
// argument (§4.1.2): the inference engine amortizes every memory-row
// read across the questions of a batch, but someone has to turn a
// stream of independent HTTP requests into batches without letting tail
// latency or overload behavior degrade. The batcher owns that policy:
//
//   - Bounded queue with admission control: a full queue rejects
//     immediately with ErrQueueFull (the server maps this to 429 +
//     Retry-After) instead of building an unbounded backlog.
//   - Deadline propagation: a request whose context ends while queued
//     is completed with the context error and never occupies a batch
//     slot (the server maps this to 504).
//   - Graceful drain: Close stops admission (ErrClosed → 503), flushes
//     everything queued, and returns only when the last batch has run.
//
// The request type T is generic; responses travel inside T (use a
// pointer type and let the run function fill result fields), so the
// steady-state path allocates nothing — pending wrappers are pooled and
// their completion channels are reused.
package batcher

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Errors returned by Do at admission time.
var (
	// ErrQueueFull rejects a request because the queue is at capacity.
	ErrQueueFull = errors.New("batcher: queue full")
	// ErrClosed rejects a request because Close has been called.
	ErrClosed = errors.New("batcher: closed")
)

// Default policy knobs, used when the corresponding Option is zero.
const (
	DefaultMaxBatch = 8
	DefaultMaxWait  = 2 * time.Millisecond
)

// Options shape the flush and admission policy.
type Options struct {
	// MaxBatch flushes as soon as this many requests are batched
	// (default DefaultMaxBatch).
	MaxBatch int
	// MaxWait flushes a partial batch once its first request has waited
	// this long (default DefaultMaxWait). Zero or negative means flush
	// immediately with whatever is queued at collection time.
	MaxWait time.Duration
	// QueueDepth bounds how many requests may sit queued awaiting
	// collection (default 4×MaxBatch). Admission beyond it fails with
	// ErrQueueFull.
	QueueDepth int
	// Clock supplies time; nil means the real clock. Tests inject a
	// fake to drive the MaxWait timer deterministically.
	Clock Clock
	// Metrics, when non-nil, receives batch-size, queue-wait, flush,
	// shed, and expiry accounting.
	Metrics *Metrics
}

func (o *Options) normalize() {
	if o.MaxBatch < 1 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.MaxWait == 0 {
		o.MaxWait = DefaultMaxWait
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 4 * o.MaxBatch
	}
	if o.Clock == nil {
		o.Clock = realClock{}
	}
}

// pending wraps one queued request. The done channel is buffered and
// never closed, so the wrapper can be pooled and reused; completion is
// one token send.
type pending[T any] struct {
	ctx  context.Context
	val  T
	err  error
	enq  time.Time
	done chan struct{}
}

// Batcher coalesces concurrent Do calls into batches for run.
type Batcher[T any] struct {
	run func([]T)
	opt Options

	queue chan *pending[T]
	pool  sync.Pool

	mu     sync.RWMutex // closed transitions under the write lock
	closed bool         // guarded by mu

	drained chan struct{} // closed when the dispatcher has flushed everything

	// Dispatcher-owned scratch, reused across flushes.
	batch []*pending[T]
	vals  []T
}

// New starts a batcher around run, which receives each flushed batch on
// the single dispatcher goroutine (never concurrently) and must fill
// each request's response in place before returning. Call Close to
// drain and stop.
func New[T any](run func(batch []T), opt Options) *Batcher[T] {
	opt.normalize()
	b := &Batcher[T]{
		run:     run,
		opt:     opt,
		queue:   make(chan *pending[T], opt.QueueDepth),
		drained: make(chan struct{}),
		batch:   make([]*pending[T], 0, opt.MaxBatch),
		vals:    make([]T, 0, opt.MaxBatch),
	}
	go b.dispatch()
	return b
}

// QueueLen reports how many requests are queued awaiting collection,
// for queue-depth gauges.
func (b *Batcher[T]) QueueLen() int { return len(b.queue) }

// MaxWait reports the normalized flush deadline, for Retry-After hints.
func (b *Batcher[T]) MaxWait() time.Duration { return b.opt.MaxWait }

// Do submits one request and blocks until its batch has run (returning
// nil, with the response filled into val by run), admission fails
// (ErrQueueFull, ErrClosed), or ctx ends first (returning ctx.Err();
// the request is abandoned and, if still queued at flush time, sheds
// its batch slot).
//
//mnnfast:hotpath
func (b *Batcher[T]) Do(ctx context.Context, val T) error {
	p, _ := b.pool.Get().(*pending[T])
	if p == nil {
		p = &pending[T]{done: make(chan struct{}, 1)}
	}
	p.ctx, p.val, p.err = ctx, val, nil
	p.enq = b.opt.Clock.Now()

	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		b.recycle(p)
		return ErrClosed
	}
	select {
	case b.queue <- p:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		b.recycle(p)
		if m := b.opt.Metrics; m != nil {
			m.Shed.Inc()
		}
		return ErrQueueFull
	}

	select {
	case <-p.done:
		err := p.err
		b.recycle(p)
		return err
	case <-ctx.Done():
		// Abandoned: the dispatcher still completes p eventually (its
		// done send cannot block — the channel is buffered), but the
		// wrapper is not recycled because the dispatcher may yet touch
		// it.
		return ctx.Err()
	}
}

// recycle returns a completed (or never-enqueued) wrapper to the pool.
//
//mnnfast:pool-put
func (b *Batcher[T]) recycle(p *pending[T]) {
	var zero T
	p.ctx, p.val, p.err = nil, zero, nil
	b.pool.Put(p)
}

// Close stops admission, drains every queued request through run, and
// returns once the last batch has completed. Safe to call more than
// once.
func (b *Batcher[T]) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.queue)
	}
	b.mu.Unlock()
	<-b.drained
}

// dispatch is the single scheduler goroutine: collect a batch, flush,
// repeat until the queue is closed and empty.
func (b *Batcher[T]) dispatch() {
	defer close(b.drained)
	for {
		p, ok := <-b.queue
		if !ok {
			return
		}
		b.collect(p)
		b.flush()
	}
}

// collect gathers up to MaxBatch requests into b.batch, starting from
// first: greedily take what is already queued, then wait out the
// MaxWait timer for stragglers. A full batch never arms the timer, so
// the MaxBatch=1 path stays allocation-free.
//
//mnnfast:hotpath allow=append b.batch grows only toward MaxBatch capacity set at construction
func (b *Batcher[T]) collect(first *pending[T]) {
	b.batch = append(b.batch[:0], first)
	for len(b.batch) < b.opt.MaxBatch {
		select {
		case p, ok := <-b.queue:
			if !ok {
				return
			}
			b.batch = append(b.batch, p)
			continue
		default:
		}
		break
	}
	if len(b.batch) >= b.opt.MaxBatch || b.opt.MaxWait <= 0 {
		return
	}
	t := b.opt.Clock.NewTimer(b.opt.MaxWait)
	defer t.Stop()
	for len(b.batch) < b.opt.MaxBatch {
		select {
		case p, ok := <-b.queue:
			if !ok {
				return
			}
			b.batch = append(b.batch, p)
		case <-t.C():
			return
		}
	}
}

// flush completes expired requests, runs the live remainder, and
// completes them.
//
//mnnfast:hotpath allow=append live/vals grow only toward MaxBatch capacity set at construction
func (b *Batcher[T]) flush() {
	m := b.opt.Metrics
	now := b.opt.Clock.Now()
	live := b.batch[:0]
	b.vals = b.vals[:0]
	for _, p := range b.batch {
		if err := p.ctx.Err(); err != nil {
			// Expired while queued: complete without a batch slot.
			if m != nil {
				m.Expired.Inc()
			}
			p.err = err
			p.done <- struct{}{}
			continue
		}
		if m != nil {
			m.QueueWait.Observe(now.Sub(p.enq))
		}
		live = append(live, p)
		b.vals = append(b.vals, p.val)
	}
	b.batch = live
	if len(live) == 0 {
		return
	}
	b.run(b.vals)
	if m != nil {
		m.BatchSize.Observe(int64(len(live)))
		m.Flushes.Inc()
	}
	for _, p := range live {
		p.done <- struct{}{}
	}
}
