//go:build race

package batcher

const raceEnabled = true
