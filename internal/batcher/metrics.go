package batcher

import "mnnfast/internal/obs"

// Metrics is the batcher's observability surface. All hooks are
// optional (a nil Metrics disables them) and every update is the usual
// lock-free obs hot path.
type Metrics struct {
	// BatchSize records the number of live requests in each flush.
	BatchSize *obs.SizeHistogram
	// QueueWait records how long each flushed request sat queued.
	QueueWait *obs.Histogram
	// Flushes counts batches handed to the run function.
	Flushes *obs.Counter
	// Shed counts requests rejected at admission because the queue was
	// full (the server's 429s).
	Shed *obs.Counter
	// Expired counts requests whose context ended while they were
	// queued; they are completed with the context error and never
	// occupy a batch slot (the server's 504s).
	Expired *obs.Counter
}

// NewMetrics registers the standard batcher metric set into reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		BatchSize: reg.SizeHistogram("mnnfast_batch_size",
			"Live requests per batch flush."),
		QueueWait: reg.Histogram("mnnfast_batch_queue_wait_seconds",
			"Time each flushed request spent queued before its batch ran."),
		Flushes: reg.Counter("mnnfast_batch_flushes_total",
			"Batches handed to the inference runner."),
		Shed: reg.Counter("mnnfast_batch_shed_total",
			"Requests rejected at admission because the queue was full."),
		Expired: reg.Counter("mnnfast_batch_expired_total",
			"Requests whose context ended while queued."),
	}
}
