package batcher

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mnnfast/internal/obs"
)

// fakeClock drives the MaxWait timer deterministically: time moves only
// when the test calls Advance.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	ch    chan time.Time
	at    time.Time
	fired bool
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{ch: make(chan time.Time, 1), at: c.now.Add(d)}
	c.timers = append(c.timers, t)
	return t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	for _, t := range c.timers {
		if !t.fired && !t.at.After(c.now) {
			t.fired = true
			t.ch <- c.now
		}
	}
}

func (c *fakeClock) timerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	return true // the dispatcher only stops timers it no longer selects on
}

// waitFor polls cond for up to ~2s; the conditions under test are
// driven by a live dispatcher goroutine, not by wall time.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// req is the test request type: run doubles X into Y.
type req struct {
	X, Y int
}

func doubler(batch []*req) {
	for _, r := range batch {
		r.Y = 2 * r.X
	}
}

func TestFlushOnMaxBatch(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	b := New(doubler, Options{MaxBatch: 4, MaxWait: time.Hour, QueueDepth: 16, Metrics: m})
	defer b.Close()

	const n = 8 // a multiple of MaxBatch, so no partial batch waits out the hour
	var wg sync.WaitGroup
	errs := make([]error, n)
	reqs := make([]*req, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reqs[i] = &req{X: i}
			errs[i] = b.Do(context.Background(), reqs[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("Do %d: %v", i, errs[i])
		}
		if reqs[i].Y != 2*i {
			t.Errorf("req %d: Y = %d, want %d", i, reqs[i].Y, 2*i)
		}
	}
	if got := m.BatchSize.Sum(); got != n {
		t.Errorf("batch size sum = %d, want %d", got, n)
	}
	if fl := m.Flushes.Value(); fl < 2 || fl > n {
		t.Errorf("flushes = %d, want in [2, %d]", fl, n)
	}
}

func TestFlushOnMaxWaitTimer(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	var mu sync.Mutex
	var sizes []int
	b := New(func(batch []*req) {
		mu.Lock()
		sizes = append(sizes, len(batch))
		mu.Unlock()
		started <- struct{}{}
		<-gate
		doubler(batch)
	}, Options{MaxBatch: 8, MaxWait: 50 * time.Millisecond, Clock: clk, Metrics: m})
	defer b.Close()

	var wg sync.WaitGroup
	do := func(x int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Do(context.Background(), &req{X: x}); err != nil {
				t.Errorf("Do(%d): %v", x, err)
			}
		}()
	}
	// A lone request cannot fill MaxBatch=8; only the timer flushes it.
	do(0)
	waitFor(t, "timer armed", func() bool { return clk.timerCount() == 1 })
	clk.Advance(50 * time.Millisecond)
	<-started // batch [0] flushed by the timer; run now blocks on the gate

	// Three stragglers pile up while the dispatcher is busy; the next
	// collect grabs all of them at once and, still short of MaxBatch,
	// arms a second timer.
	do(1)
	do(2)
	do(3)
	waitFor(t, "stragglers queued", func() bool { return b.QueueLen() == 3 })
	close(gate) // release batch [0]; later runs pass the gate instantly
	waitFor(t, "second timer armed", func() bool { return clk.timerCount() == 2 })
	clk.Advance(50 * time.Millisecond)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 3 {
		t.Errorf("flush sizes = %v, want [1 3]", sizes)
	}
	if m.BatchSize.Count() != 2 || m.BatchSize.Sum() != 4 {
		t.Errorf("batch size count/sum = %d/%d, want 2/4", m.BatchSize.Count(), m.BatchSize.Sum())
	}
	// Each request waited (in fake time) at most the 50ms MaxWait; the
	// histogram quantile reports the covering power-of-two bucket bound,
	// so allow up to 2^26ns ≈ 67ms.
	if m.QueueWait.Count() != 4 {
		t.Errorf("queue wait count = %d, want 4", m.QueueWait.Count())
	}
	if max := m.QueueWait.Quantile(1); max > int64(1)<<26 {
		t.Errorf("max queue wait = %dns, want <= 2^26ns (bucket covering 50ms)", max)
	}
}

// gatedBatcher builds a batcher whose run blocks until the gate opens,
// so tests can hold a batch in flight while probing admission.
func gatedBatcher(opt Options) (b *Batcher[*req], gate chan struct{}, started chan struct{}, ran *atomic.Int64) {
	gate = make(chan struct{})
	started = make(chan struct{}, 64)
	ran = new(atomic.Int64)
	b = New(func(batch []*req) {
		started <- struct{}{}
		<-gate
		ran.Add(int64(len(batch)))
		doubler(batch)
	}, opt)
	return b, gate, started, ran
}

func TestQueueFullShedsImmediately(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	b, gate, started, _ := gatedBatcher(Options{MaxBatch: 1, MaxWait: time.Hour, QueueDepth: 2, Metrics: m})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ { // 1 in flight + 2 queued
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := b.Do(context.Background(), &req{X: i}); err != nil {
				t.Errorf("Do(%d): %v", i, err)
			}
		}(i)
	}
	<-started // batch 1 is in run, holding the dispatcher
	waitFor(t, "queue full", func() bool { return b.QueueLen() == 2 })

	// Admission control: the 4th request is rejected NOW, not queued.
	t0 := time.Now()
	err := b.Do(context.Background(), &req{X: 99})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Do on full queue = %v, want ErrQueueFull", err)
	}
	if d := time.Since(t0); d > time.Second {
		t.Errorf("full-queue rejection took %v, want immediate", d)
	}
	if m.Shed.Value() != 1 {
		t.Errorf("shed = %d, want 1", m.Shed.Value())
	}

	close(gate) // release the in-flight batch and let the queue drain
	wg.Wait()
	b.Close()
}

func TestExpiredWhileQueuedSkipsBatchSlot(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	b, gate, started, ran := gatedBatcher(Options{MaxBatch: 1, MaxWait: time.Hour, QueueDepth: 4, Metrics: m})
	defer b.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := b.Do(context.Background(), &req{X: 1}); err != nil {
			t.Errorf("Do(1): %v", err)
		}
	}()
	<-started // first batch in flight, dispatcher blocked in run

	// Queue a request, then cancel it while it waits.
	ctx, cancel := context.WithCancel(context.Background())
	expired := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		expired <- b.Do(ctx, &req{X: 2})
	}()
	waitFor(t, "second request queued", func() bool { return b.QueueLen() == 1 })
	cancel()
	if err := <-expired; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Do = %v, want context.Canceled", err)
	}

	close(gate) // release the first batch; dispatcher collects the corpse
	wg.Wait()
	waitFor(t, "expiry accounted", func() bool { return m.Expired.Value() == 1 })

	// The canceled request never reached run: only request 1 executed,
	// and only one flush was recorded.
	if got := ran.Load(); got != 1 {
		t.Errorf("run saw %d requests, want 1 (expired request occupied a batch slot)", got)
	}
	if m.Flushes.Value() != 1 || m.BatchSize.Count() != 1 {
		t.Errorf("flushes/batches = %d/%d, want 1/1", m.Flushes.Value(), m.BatchSize.Count())
	}
}

func TestCloseDrainsInFlightAndQueued(t *testing.T) {
	b, gate, started, ran := gatedBatcher(Options{MaxBatch: 1, MaxWait: time.Hour, QueueDepth: 8})

	const n = 3
	var wg sync.WaitGroup
	reqs := make([]*req, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reqs[i] = &req{X: i}
			if err := b.Do(context.Background(), reqs[i]); err != nil {
				t.Errorf("Do(%d): %v", i, err)
			}
		}(i)
	}
	<-started
	waitFor(t, "remaining requests queued", func() bool { return b.QueueLen() == n-1 })

	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a batch was still in flight")
	case <-time.After(20 * time.Millisecond):
	}

	close(gate) // let the drain proceed
	<-closed
	wg.Wait()
	if got := ran.Load(); got != n {
		t.Errorf("drained %d requests, want %d", got, n)
	}
	for i, r := range reqs {
		if r.Y != 2*i {
			t.Errorf("req %d: Y = %d, want %d (lost in drain)", i, r.Y, 2*i)
		}
	}

	// Post-close admission fails fast; a second Close is a no-op.
	if err := b.Do(context.Background(), &req{X: 9}); !errors.Is(err, ErrClosed) {
		t.Errorf("Do after Close = %v, want ErrClosed", err)
	}
	b.Close()
}

// TestInterleavingEquivalence is the batcher-level correctness
// property, testing/quick-style with a seeded generator: whatever the
// arrival interleaving, batch-size limit, and wait policy, every Do
// returns exactly its own request's answer.
func TestInterleavingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 30; trial++ {
		maxBatch := 1 + rng.Intn(8)
		var batches atomic.Int64
		b := New(func(batch []*req) {
			if len(batch) < 1 || len(batch) > maxBatch {
				t.Errorf("trial %d: batch size %d outside [1, %d]", trial, len(batch), maxBatch)
			}
			batches.Add(1)
			doubler(batch)
		}, Options{
			MaxBatch:   maxBatch,
			MaxWait:    time.Duration(rng.Intn(3)) * time.Millisecond,
			QueueDepth: 64,
		})

		goroutines := 1 + rng.Intn(8)
		perG := 1 + rng.Intn(10)
		jitter := make([][]time.Duration, goroutines)
		for g := range jitter {
			jitter[g] = make([]time.Duration, perG)
			for i := range jitter[g] {
				jitter[g][i] = time.Duration(rng.Intn(300)) * time.Microsecond
			}
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					time.Sleep(jitter[g][i])
					r := &req{X: g*1000 + i}
					if err := b.Do(context.Background(), r); err != nil {
						t.Errorf("trial %d: Do: %v", trial, err)
						return
					}
					if r.Y != 2*r.X {
						t.Errorf("trial %d: got %d for input %d, want %d (cross-request mixup)",
							trial, r.Y, r.X, 2*r.X)
					}
				}
			}(g)
		}
		wg.Wait()
		b.Close()
		if batches.Load() == 0 {
			t.Errorf("trial %d: no batches ran", trial)
		}
	}
}

// TestConcurrentStress hammers one batcher from many goroutines with
// cancellations and a racing Close — run under -race in CI.
func TestConcurrentStress(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	b := New(doubler, Options{MaxBatch: 8, MaxWait: 200 * time.Microsecond, QueueDepth: 32, Metrics: m})

	const goroutines = 16
	const perG = 50
	var wg sync.WaitGroup
	var ok, shed, gone atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%7 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%3)*100*time.Microsecond)
				}
				r := &req{X: i}
				err := b.Do(ctx, r)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					ok.Add(1)
					if r.Y != 2*i {
						t.Errorf("wrong answer under stress: %d for %d", r.Y, i)
					}
				case errors.Is(err, ErrQueueFull):
					shed.Add(1)
				case errors.Is(err, ErrClosed), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					gone.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	b.Close()
	t.Logf("stress: %d ok, %d shed, %d expired/closed; %d flushes, batch p50 %d",
		ok.Load(), shed.Load(), gone.Load(), m.Flushes.Value(), m.BatchSize.Quantile(0.5))
	if ok.Load() == 0 {
		t.Error("no request succeeded under stress")
	}
	if got := m.BatchSize.Sum(); got != ok.Load() {
		t.Errorf("batch size sum %d != successful requests %d", got, ok.Load())
	}
}

// TestDoAllocs: with a full batch of one (no timer armed) the whole
// Do→collect→flush→complete round trip allocates nothing at steady
// state — pending wrappers are pooled and completion channels reused.
// This is the "0 allocs/op outside the flush boundary" guarantee: the
// model-side counterpart lives in memnn's TestPredictBatchAllocs.
func TestDoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; allocation counts are not meaningful")
	}
	b := New(doubler, Options{MaxBatch: 1, MaxWait: time.Hour, QueueDepth: 4})
	defer b.Close()
	r := &req{X: 3}
	ctx := context.Background()
	if err := b.Do(ctx, r); err != nil { // warm the wrapper pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := b.Do(ctx, r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Do allocates %v per request, want 0", allocs)
	}
}
