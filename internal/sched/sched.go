// Package sched is the work-stealing chunk scheduler of the MnnFast
// runtime: it turns one query's (or one micro-batch's) pass over the
// memory rows into chunk-granularity work items and executes them on
// the persistent tensor.Pool workers with dynamic load balancing.
//
// The paper's column-based algorithm with lazy softmax (§3.1) makes
// memory chunks independent until a single O(ed) merge, so inference
// should scale with cores. Static partitioning squanders that when
// zero-skipping (§3.2) is on: the few relevant sentences cluster, so
// one worker's band is dense compute while another's is all skips.
// The scheduler seeds each worker with a contiguous run of chunks and
// lets workers that run dry steal from the tail of a neighbor's deque
// — idle cores drain the imbalance instead of waiting at the merge.
//
// Determinism contract: Run invokes fn exactly once per item, and the
// caller indexes results by item, never by worker. Execution order and
// the chunk→worker assignment are timing-dependent; the set of items
// and their payloads are not. Engines that merge per-item results in
// fixed item order therefore produce bit-identical outputs at every
// worker count, stealing or not (see core.Column.InferPartial).
//
// The steady state allocates nothing: run descriptors and deques come
// from a process-wide sync.Pool with grow-only buffers, work travels
// over the pool's persistent workers, and the per-slot counters are
// plain atomic adds.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mnnfast/internal/tensor"
	"mnnfast/internal/trace"
)

// Scheduler executes chunked work on a tensor.Pool with work stealing.
// A nil *Scheduler is valid and runs everything serially on the
// calling goroutine, so callers can thread one pointer through without
// nil checks. A Scheduler is safe for concurrent Run calls: each run
// draws its own deques from a pool; only the per-worker counters are
// shared, and those are atomic.
type Scheduler struct {
	pool  *tensor.Pool
	slots []slot
	runs  atomic.Int64 // parallel runs dispatched
	ser   atomic.Int64 // serial runs (width 1 or single item)
}

// slot is the per-worker accounting of one scheduler. The fields are
// written by whichever goroutine currently acts as that worker index;
// concurrent runs may share an index, so everything is atomic. Padding
// keeps neighbouring slots off one cache line: these counters are
// bumped once per worker per run, but a stolen-item burst would
// otherwise false-share with the victim's accounting.
type slot struct {
	chunks atomic.Int64 // work items executed as this worker index
	steals atomic.Int64 // items taken from another worker's deque
	idleNS atomic.Int64 // time spent out of local work (steal scans + final drain)
	_      [104]byte    // pad to two 64-byte lines
}

// New returns a scheduler over the pool's workers. A nil pool (or one
// worker) yields a scheduler that always runs serially — still valid,
// still counted, so callers need no special-casing.
func New(pool *tensor.Pool) *Scheduler {
	s := &Scheduler{pool: pool}
	s.slots = make([]slot, pool.Workers())
	return s
}

// Workers reports the parallel width. A nil scheduler reports 1.
//
//mnnfast:hotpath
func (s *Scheduler) Workers() int {
	if s == nil {
		return 1
	}
	return len(s.slots)
}

// String describes the scheduler for logs and experiment headers.
//
//mnnfast:coldpath
func (s *Scheduler) String() string {
	return fmt.Sprintf("sched.Scheduler(workers=%d)", s.Workers())
}

// runState is the pooled descriptor of one Run: the seeded deques, the
// caller's item function, and the dispatch closure handed to the
// tensor pool. The closure is built once per descriptor (not per run)
// so the steady-state dispatch allocates nothing.
type runState struct {
	s      *Scheduler
	deques []paddedDeque
	fn     func(worker, lo, hi int)
	base   int // absolute offset of item 0
	n      int // total extent being chunked
	chunk  int // rows per item
	width  int // participating worker slots
	loop   func(worker, lo, hi int)

	// Tracing (nil when the run is untraced). Workers record into ev
	// concurrently — Events slots are claimed atomically — and the
	// dispatch join publishes them to the caller.
	ev       *trace.Events
	evParent int32
}

// paddedDeque keeps each worker's deque state word on its own cache
// line; the owner's Pop and a thief's Steal CAS the same word, but
// neighbouring deques must not drag each other's lines around.
type paddedDeque struct {
	Deque
	_ [32]byte // Deque is 32 bytes; pad to one 64-byte line
}

var runStatePool = sync.Pool{New: func() any {
	r := new(runState)
	r.loop = func(_, lo, hi int) {
		// Grain-1 dispatch: each span is one worker slot. The slot
		// index is the span position, which is stable across the
		// pool's inline-fallback path too.
		for slotIdx := lo; slotIdx < hi; slotIdx++ {
			r.runSlot(slotIdx)
		}
	}
	return r
}}

// Run splits [base, base+n) into ceil(n/chunk) contiguous items of at
// most chunk rows and calls fn(worker, lo, hi) exactly once per item
// with absolute bounds, worker in [0, Workers()). Item i covers
// [base+i·chunk, min(base+(i+1)·chunk, base+n)). fn must be safe to
// call concurrently for distinct items; calls sharing a worker index
// never overlap, so per-worker scratch needs no locking. Run returns
// once every item has completed, with a happens-before edge from every
// fn call, so the caller can merge per-item results immediately — in
// fixed item order for bit-deterministic output.
//
//mnnfast:hotpath
func (s *Scheduler) Run(base, n, chunk int, fn func(worker, lo, hi int)) {
	s.RunEvents(nil, -1, base, n, chunk, fn)
}

// RunEvents is Run with per-worker tracing: each participating worker
// slot records one "worker" event (attrs: worker, chunks, steals,
// idle_ns) into ev under parent. A nil ev records nothing and costs
// one branch per worker — Run simply delegates here.
//
//mnnfast:hotpath
func (s *Scheduler) RunEvents(ev *trace.Events, parent int32, base, n, chunk int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	nItems := (n + chunk - 1) / chunk
	width := s.Workers()
	if width > nItems {
		width = nItems
	}
	if width == 1 {
		if s != nil {
			s.ser.Add(1)
			s.slots[0].chunks.Add(int64(nItems))
		}
		we := ev.Begin("worker", parent)
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(0, base+lo, base+hi)
		}
		ev.Annotate(we, "worker", 0)
		ev.Annotate(we, "chunks", int64(nItems))
		ev.End(we)
		return
	}

	s.runs.Add(1)
	r := runStatePool.Get().(*runState)
	r.s, r.fn = s, fn
	r.base, r.n, r.chunk, r.width = base, n, chunk, width
	r.ev, r.evParent = ev, parent
	if cap(r.deques) < width {
		r.deques = make([]paddedDeque, width)
	}
	r.deques = r.deques[:width]

	// Seed each slot with a contiguous run of items: workers stream
	// forward through disjoint row bands (sequential-friendly access),
	// and a steal takes the item farthest from its victim's cursor.
	per, rem := nItems/width, nItems%width
	lo := 0
	for w := 0; w < width; w++ {
		take := per
		if w < rem {
			take++
		}
		r.deques[w].Reset(uint32(lo), uint32(lo+take))
		lo += take
	}

	s.pool.ParallelForWorker(width, 1, r.loop)

	r.s, r.fn, r.ev = nil, nil, nil
	runStatePool.Put(r)
}

// exec runs item it as worker slotIdx.
//
//mnnfast:hotpath
func (r *runState) exec(slotIdx int, it uint32) {
	lo := int(it) * r.chunk
	hi := lo + r.chunk
	if hi > r.n {
		hi = r.n
	}
	r.fn(slotIdx, r.base+lo, r.base+hi)
}

// runSlot is one worker's life inside a run: drain the local deque
// front-to-back, then go thieving until every deque is dry. Items are
// seeded before the dispatch and never added during it, so one full
// scan of all deques finding nothing means the run's work is fully
// claimed and the slot can retire. The per-iteration clock reads are
// the point — they split wall time between compute and idle for the
// imbalance histogram — so timenow is allowed.
//
//mnnfast:hotpath allow=timenow
func (r *runState) runSlot(slotIdx int) {
	we := r.ev.Begin("worker", r.evParent)
	sc := &r.s.slots[slotIdx]
	d := &r.deques[slotIdx].Deque
	local := int64(0)
	for {
		it, ok := d.Pop()
		if !ok {
			break
		}
		r.exec(slotIdx, it)
		local++
	}
	sc.chunks.Add(local)

	// Out of local work — the zero-skipping imbalance case. Scan the
	// other deques round-robin from our right-hand neighbour, stealing
	// from the tail; time away from compute is attributed to idleNS.
	idleFrom := time.Now()
	var idle time.Duration
	stolen := int64(0)
	for {
		found := false
		for off := 1; off < r.width; off++ {
			v := slotIdx + off
			if v >= r.width {
				v -= r.width
			}
			it, ok := r.deques[v].Steal()
			if !ok {
				continue
			}
			idle += time.Since(idleFrom)
			r.exec(slotIdx, it)
			stolen++
			idleFrom = time.Now()
			found = true
			break
		}
		if !found {
			break
		}
	}
	idle += time.Since(idleFrom)
	if stolen > 0 {
		sc.chunks.Add(stolen)
		sc.steals.Add(stolen)
	}
	sc.idleNS.Add(int64(idle))
	r.ev.Annotate(we, "worker", int64(slotIdx))
	r.ev.Annotate(we, "chunks", local+stolen)
	r.ev.Annotate(we, "steals", stolen)
	r.ev.Annotate(we, "idle_ns", int64(idle))
	r.ev.End(we)
}

// WorkerStats is one worker slot's cumulative accounting.
type WorkerStats struct {
	Chunks int64 `json:"chunks"`  // work items executed as this slot
	Steals int64 `json:"steals"`  // of those, taken from another slot's deque
	IdleNS int64 `json:"idle_ns"` // time out of local work (scans + final drain)
}

// Stats is a point-in-time snapshot of a scheduler's counters.
type Stats struct {
	Workers    int           `json:"workers"`
	Runs       int64         `json:"runs"`        // parallel runs dispatched
	SerialRuns int64         `json:"serial_runs"` // runs short-circuited to one worker
	PerWorker  []WorkerStats `json:"per_worker"`
}

// TotalChunks sums executed items across workers.
func (st Stats) TotalChunks() int64 {
	var n int64
	for _, w := range st.PerWorker {
		n += w.Chunks
	}
	return n
}

// TotalSteals sums stolen items across workers.
func (st Stats) TotalSteals() int64 {
	var n int64
	for _, w := range st.PerWorker {
		n += w.Steals
	}
	return n
}

// TotalIdleNS sums out-of-work time across workers.
func (st Stats) TotalIdleNS() int64 {
	var n int64
	for _, w := range st.PerWorker {
		n += w.IdleNS
	}
	return n
}

// Snapshot copies the counters. A nil scheduler reports a zero-width
// snapshot.
//
//mnnfast:coldpath
func (s *Scheduler) Snapshot() Stats {
	if s == nil {
		return Stats{Workers: 1}
	}
	st := Stats{
		Workers:    len(s.slots),
		Runs:       s.runs.Load(),
		SerialRuns: s.ser.Load(),
		PerWorker:  make([]WorkerStats, len(s.slots)),
	}
	for i := range s.slots {
		st.PerWorker[i] = WorkerStats{
			Chunks: s.slots[i].chunks.Load(),
			Steals: s.slots[i].steals.Load(),
			IdleNS: s.slots[i].idleNS.Load(),
		}
	}
	return st
}

// WorkerChunks, WorkerSteals, and WorkerIdleNS read one slot's counter
// without snapshotting the whole scheduler — the obs CounterFunc hooks
// use these so a metrics scrape allocates nothing per counter.
func (s *Scheduler) WorkerChunks(i int) int64 { return s.slots[i].chunks.Load() }

// WorkerSteals reads slot i's stolen-item count.
func (s *Scheduler) WorkerSteals(i int) int64 { return s.slots[i].steals.Load() }

// WorkerIdleNS reads slot i's out-of-work nanoseconds.
func (s *Scheduler) WorkerIdleNS(i int) int64 { return s.slots[i].idleNS.Load() }

// Runs reads the parallel-run count.
func (s *Scheduler) Runs() int64 { return s.runs.Load() }

// SerialRuns reads the serial-fallback run count.
func (s *Scheduler) SerialRuns() int64 { return s.ser.Load() }
