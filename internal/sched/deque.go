package sched

import "sync/atomic"

// Deque is the per-worker work queue of the chunk scheduler: a bounded,
// lock-free double-ended queue of work-item indices. The owning worker
// takes items from the front (ascending chunk order — the same order a
// sequential pass would visit them, which keeps each worker streaming
// forward through the memory rows it was seeded with); idle workers
// steal from the tail, the end farthest from the owner's current
// position, so a thief and the owner only collide when one item is
// left.
//
// The layout is deliberately simpler than a classic Chase-Lev deque:
// all items are pushed by the owner BEFORE the parallel phase starts
// (the scheduler seeds every deque, then dispatches the workers, and
// execution never produces new items), so only Pop and Steal run
// concurrently. Both ends live in one atomic word — head in the high
// 32 bits, tail in the low 32 — and every claim is a single CAS on
// that word, which makes the one-item race between the owner and a
// thief linearizable by construction: exactly one CAS wins, the loser
// re-reads an empty deque. No ABA hazard exists because head only ever
// grows and tail only ever shrinks within one run.
type Deque struct {
	// state packs head (high 32 bits) and tail (low 32): the live
	// items are buf[head:tail]. Only touched atomically.
	state atomic.Uint64
	// buf holds the seeded item indices. Written only by Reset before
	// the parallel phase (the scheduler's dispatch publishes it with a
	// happens-before edge); read-only while Pop/Steal run.
	buf []uint32
}

// pack builds the combined head/tail word.
func pack(head, tail uint32) uint64 { return uint64(head)<<32 | uint64(tail) }

// unpack splits the combined word.
func unpack(s uint64) (head, tail uint32) { return uint32(s >> 32), uint32(s) }

// Reset seeds the deque with the items [lo, hi) of the run's global
// item space. Owner-only, and only before the parallel phase: Reset
// must not race with Pop or Steal. The backing buffer grows once and
// is reused across runs.
//
//mnnfast:hotpath
func (d *Deque) Reset(lo, hi uint32) {
	n := int(hi - lo)
	if cap(d.buf) < n {
		d.buf = make([]uint32, n)
	}
	d.buf = d.buf[:n]
	for i := range d.buf {
		d.buf[i] = lo + uint32(i)
	}
	d.state.Store(pack(0, uint32(n)))
}

// Len reports how many items remain. Racy by nature; useful for
// victim selection and tests, not for correctness decisions.
//
//mnnfast:hotpath
func (d *Deque) Len() int {
	head, tail := unpack(d.state.Load())
	if head >= tail {
		return 0
	}
	return int(tail - head)
}

// Pop claims the front item for the owning worker. It reports false
// when the deque is empty (including when a thief just took the last
// item).
//
//mnnfast:hotpath
func (d *Deque) Pop() (uint32, bool) {
	for {
		s := d.state.Load()
		head, tail := unpack(s)
		if head >= tail {
			return 0, false
		}
		if d.state.CompareAndSwap(s, pack(head+1, tail)) {
			return d.buf[head], true
		}
	}
}

// Steal claims the tail item for a thieving worker. It reports false
// when the deque is empty. Stealing from your own deque is legal (it
// drains the same items in reverse); the scheduler never does it —
// the owner uses Pop — but the operation itself is safe.
//
//mnnfast:hotpath
func (d *Deque) Steal() (uint32, bool) {
	for {
		s := d.state.Load()
		head, tail := unpack(s)
		if head >= tail {
			return 0, false
		}
		if d.state.CompareAndSwap(s, pack(head, tail-1)) {
			return d.buf[tail-1], true
		}
	}
}
