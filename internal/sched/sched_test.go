package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mnnfast/internal/tensor"
)

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; allocation counts are not meaningful")
	}
}

// coverage marks every row of [base, base+n) exactly once.
type coverage struct {
	mu   sync.Mutex
	hits map[int]int
}

func (c *coverage) fn(worker, lo, hi int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hits == nil {
		c.hits = make(map[int]int)
	}
	for i := lo; i < hi; i++ {
		c.hits[i]++
	}
}

func (c *coverage) check(t *testing.T, base, n int) {
	t.Helper()
	if len(c.hits) != n {
		t.Fatalf("covered %d rows, want %d", len(c.hits), n)
	}
	for i := base; i < base+n; i++ {
		if c.hits[i] != 1 {
			t.Fatalf("row %d visited %d times, want exactly once", i, c.hits[i])
		}
	}
}

func TestRunCoversRangeExactlyOnce(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	s := New(pool)
	for _, tc := range []struct{ base, n, chunk int }{
		{0, 1000, 128},
		{7, 999, 100},  // uneven chunks, non-zero base
		{0, 5, 100},    // single item → serial path
		{3, 17, 1},     // chunk 1, more items than workers
		{0, 4, 1},      // exactly width items
		{0, 3, 1},      // fewer items than workers
		{0, 100000, 7}, // many items
	} {
		var c coverage
		s.Run(tc.base, tc.n, tc.chunk, c.fn)
		c.check(t, tc.base, tc.n)
	}
}

func TestRunNilSchedulerIsSerial(t *testing.T) {
	var s *Scheduler
	if s.Workers() != 1 {
		t.Fatalf("nil scheduler Workers = %d, want 1", s.Workers())
	}
	var c coverage
	workerSeen := -1
	s.Run(0, 500, 64, func(worker, lo, hi int) {
		workerSeen = worker
		c.fn(worker, lo, hi)
	})
	c.check(t, 0, 500)
	if workerSeen != 0 {
		t.Errorf("nil scheduler used worker %d, want 0", workerSeen)
	}
	if st := s.Snapshot(); st.Workers != 1 || st.TotalChunks() != 0 {
		t.Errorf("nil snapshot = %+v", st)
	}
}

func TestRunZeroAndNegative(t *testing.T) {
	s := New(nil)
	called := false
	s.Run(0, 0, 10, func(int, int, int) { called = true })
	s.Run(0, -5, 10, func(int, int, int) { called = true })
	if called {
		t.Error("Run invoked fn for an empty range")
	}
	// chunk <= 0 coerces to 1.
	var c coverage
	s.Run(0, 3, 0, c.fn)
	c.check(t, 0, 3)
}

func TestWorkerIndexBounds(t *testing.T) {
	pool := tensor.NewPool(3)
	defer pool.Close()
	s := New(pool)
	var bad atomic.Int64
	s.Run(0, 10000, 16, func(worker, lo, hi int) {
		if worker < 0 || worker >= 3 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d calls saw an out-of-range worker index", bad.Load())
	}
}

// TestWorkerSlotsNeverOverlap pins the per-worker-scratch contract:
// two fn calls with the same worker index must never run concurrently.
func TestWorkerSlotsNeverOverlap(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	s := New(pool)
	var active [4]atomic.Int32
	var bad atomic.Int64
	for round := 0; round < 20; round++ {
		s.Run(0, 256, 4, func(worker, lo, hi int) {
			if active[worker].Add(1) != 1 {
				bad.Add(1)
			}
			for i := 0; i < 200; i++ {
				_ = i * i // small busy loop to widen any overlap window
			}
			active[worker].Add(-1)
		})
	}
	if bad.Load() != 0 {
		t.Fatalf("%d overlapping executions on one worker slot", bad.Load())
	}
}

func TestCountersAccount(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	s := New(pool)

	const n, chunk = 4096, 64
	items := int64(n / chunk)
	var c coverage
	s.Run(0, n, chunk, c.fn)
	c.check(t, 0, n)

	st := s.Snapshot()
	if st.Workers != 4 {
		t.Errorf("Workers = %d, want 4", st.Workers)
	}
	if st.Runs != 1 || st.SerialRuns != 0 {
		t.Errorf("Runs/SerialRuns = %d/%d, want 1/0", st.Runs, st.SerialRuns)
	}
	if got := st.TotalChunks(); got != items {
		t.Errorf("TotalChunks = %d, want %d", got, items)
	}
	if st.TotalSteals() > items {
		t.Errorf("TotalSteals = %d exceeds item count %d", st.TotalSteals(), items)
	}

	// A single-item run takes the serial path and is accounted as such.
	s.Run(0, 10, 100, func(int, int, int) {})
	st = s.Snapshot()
	if st.SerialRuns != 1 {
		t.Errorf("SerialRuns = %d, want 1", st.SerialRuns)
	}
	if got := st.TotalChunks(); got != items+1 {
		t.Errorf("TotalChunks = %d, want %d", got, items+1)
	}
	if s.WorkerChunks(0)+s.WorkerChunks(1)+s.WorkerChunks(2)+s.WorkerChunks(3) != st.TotalChunks() {
		t.Error("per-worker accessor sum disagrees with snapshot")
	}
}

// TestStealingTriggersOnImbalance seeds a run whose tail items are far
// more expensive than the head items: the workers seeded with cheap
// chunks run dry and must steal from the loaded deque.
func TestStealingTriggersOnImbalance(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	s := New(pool)

	sink := int64(0)
	var c coverage
	for round := 0; round < 8; round++ {
		s.Run(0, 64, 1, func(worker, lo, hi int) {
			c.fn(worker, lo, hi)
			if lo >= 48 { // the last worker's band is 100× the others
				x := int64(0)
				for i := 0; i < 200000; i++ {
					x += int64(i)
				}
				atomic.AddInt64(&sink, x)
			}
		})
	}
	st := s.Snapshot()
	if st.TotalSteals() == 0 {
		t.Error("no steals across 8 heavily imbalanced runs")
	}
	if st.TotalIdleNS() <= 0 {
		t.Error("idle time not accounted")
	}
	if st.TotalChunks() != 8*64 {
		t.Errorf("TotalChunks = %d, want %d", st.TotalChunks(), 8*64)
	}
}

func TestConcurrentRunsShareScheduler(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	s := New(pool)
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				var local atomic.Int64
				s.Run(0, 300, 16, func(_, lo, hi int) {
					local.Add(int64(hi - lo))
				})
				if local.Load() != 300 {
					t.Errorf("run covered %d rows, want 300", local.Load())
					return
				}
				total.Add(local.Load())
			}
		}()
	}
	wg.Wait()
	if total.Load() != 8*50*300 {
		t.Fatalf("total coverage %d, want %d", total.Load(), 8*50*300)
	}
}

func TestRunSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	pool := tensor.NewPool(4)
	defer pool.Close()
	s := New(pool)
	var rows atomic.Int64
	fn := func(_, lo, hi int) { rows.Add(int64(hi - lo)) }
	s.Run(0, 2048, 64, fn) // warm the run-state pool
	allocs := testing.AllocsPerRun(100, func() {
		s.Run(0, 2048, 64, fn)
	})
	if allocs != 0 {
		t.Errorf("Run allocates %v per call at steady state, want 0", allocs)
	}
}

func TestRunSpawnsNoGoroutines(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	s := New(pool)
	fn := func(_, _, _ int) {}
	s.Run(0, 1024, 32, fn) // spawns the persistent pool workers
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		s.Run(0, 1024, 32, fn)
	}
	// Give any stray spawned goroutine a beat to register.
	time.Sleep(time.Millisecond)
	after := runtime.NumGoroutine()
	if after > before {
		t.Errorf("goroutine count grew %d → %d across steady-state runs", before, after)
	}
}

// TestNestedRuns exercises a scheduler run whose items themselves
// dispatch runs on the same pool — the Sharded-over-Column shape. The
// pool degrades gracefully to inline execution; nothing deadlocks.
func TestNestedRuns(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	outer := New(pool)
	inner := New(pool)
	var rows atomic.Int64
	innerFn := func(_, lo, hi int) { rows.Add(int64(hi - lo)) }
	done := make(chan struct{})
	go func() {
		defer close(done)
		outer.Run(0, 8, 1, func(_, lo, hi int) {
			inner.Run(0, 512, 32, innerFn)
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested scheduler runs deadlocked")
	}
	if rows.Load() != 8*512 {
		t.Fatalf("nested coverage %d, want %d", rows.Load(), 8*512)
	}
}
