package sched

import (
	"testing"

	"mnnfast/internal/tensor"
	"mnnfast/internal/trace"
)

// collectWorkers returns the worker spans recorded by one RunEvents
// call, keyed by their "worker" attribute.
func collectWorkers(t *testing.T, ev *trace.Events, parent int32) map[int64]map[string]int64 {
	t.Helper()
	out := make(map[int64]map[string]int64)
	// Replay through a trace to read the events via the public API.
	rec := trace.NewRecorder(trace.Options{Capacity: 1, SpanCap: trace.MaxEvents + 4, SampleEvery: 1})
	tr := rec.StartTrace("test", "")
	root := tr.Start("root", 0)
	tr.AddEvents(root, ev)
	tr.Finish(root)
	rec.Commit(tr)
	got := rec.Lookup(tr.ID())
	if got == nil {
		t.Fatal("trace not retained")
	}
	defer rec.Release(got)
	var walk func(spans []*trace.ExportSpan)
	walk = func(spans []*trace.ExportSpan) {
		for _, sp := range spans {
			if sp.Name == "worker" {
				w, ok := sp.Attrs["worker"].(int64)
				if !ok {
					t.Fatalf("worker span without worker attr: %v", sp.Attrs)
				}
				attrs := make(map[string]int64)
				for k, v := range sp.Attrs {
					if n, ok := v.(int64); ok {
						attrs[k] = n
					}
				}
				out[w] = attrs
			}
			walk(sp.Children)
		}
	}
	walk(got.Export().Spans)
	return out
}

func TestRunEventsSerialPath(t *testing.T) {
	var s *Scheduler // nil scheduler → serial width-1 path
	var ev trace.Events
	var c coverage
	s.RunEvents(&ev, -1, 0, 10, 4, c.fn)
	c.check(t, 0, 10)

	workers := collectWorkers(t, &ev, -1)
	if len(workers) != 1 {
		t.Fatalf("serial run recorded %d worker spans, want 1", len(workers))
	}
	w0 := workers[0]
	if w0["chunks"] != 3 { // ceil(10/4) chunk items
		t.Errorf("serial worker chunks = %d, want 3", w0["chunks"])
	}
}

func TestRunEventsParallelWorkers(t *testing.T) {
	pool := tensor.NewPool(4)
	defer pool.Close()
	s := New(pool)

	var ev trace.Events
	var c coverage
	const n, chunk = 1000, 16
	s.RunEvents(&ev, -1, 0, n, chunk, c.fn)
	c.check(t, 0, n)

	workers := collectWorkers(t, &ev, -1)
	if len(workers) != s.Workers() {
		t.Fatalf("worker spans = %d, want %d", len(workers), s.Workers())
	}
	var chunks, steals int64
	for w, attrs := range workers {
		if w < 0 || w >= int64(s.Workers()) {
			t.Errorf("worker id %d out of range", w)
		}
		chunks += attrs["chunks"]
		steals += attrs["steals"]
		if _, ok := attrs["idle_ns"]; !ok {
			t.Errorf("worker %d missing idle_ns", w)
		}
	}
	wantChunks := int64((n + chunk - 1) / chunk)
	if chunks != wantChunks {
		t.Errorf("total chunks across workers = %d, want %d", chunks, wantChunks)
	}
	if steals < 0 || steals > chunks {
		t.Errorf("steals = %d out of range", steals)
	}
}

// TestRunMatchesRunEvents pins that Run is RunEvents with recording
// disabled: same coverage, no events required.
func TestRunMatchesRunEvents(t *testing.T) {
	pool := tensor.NewPool(2)
	defer pool.Close()
	s := New(pool)
	var c1, c2 coverage
	s.Run(3, 500, 8, c1.fn)
	s.RunEvents(nil, -1, 3, 500, 8, c2.fn)
	c1.check(t, 3, 500)
	c2.check(t, 3, 500)
}

func TestRunEventsSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	pool := tensor.NewPool(2)
	defer pool.Close()
	s := New(pool)
	var ev trace.Events
	fn := func(worker, lo, hi int) {}
	s.RunEvents(&ev, -1, 0, 100, 10, fn) // warm the run-state pool
	allocs := testing.AllocsPerRun(50, func() {
		ev.Reset()
		s.RunEvents(&ev, -1, 0, 100, 10, fn)
	})
	if allocs != 0 {
		t.Fatalf("RunEvents allocated %.1f/op at steady state, want 0", allocs)
	}
}
