package sched

import (
	"sync"
	"testing"
)

func TestDequePopDrainsInOrder(t *testing.T) {
	var d Deque
	d.Reset(10, 15)
	if got := d.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	for want := uint32(10); want < 15; want++ {
		it, ok := d.Pop()
		if !ok || it != want {
			t.Fatalf("Pop = %d,%v, want %d,true", it, ok, want)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Error("Pop on drained deque reported an item")
	}
	if got := d.Len(); got != 0 {
		t.Errorf("Len after drain = %d, want 0", got)
	}
}

func TestDequeStealTakesFromTail(t *testing.T) {
	var d Deque
	d.Reset(0, 4)
	for want := uint32(3); ; want-- {
		it, ok := d.Steal()
		if !ok || it != want {
			t.Fatalf("Steal = %d,%v, want %d,true", it, ok, want)
		}
		if want == 0 {
			break
		}
	}
	if _, ok := d.Steal(); ok {
		t.Error("Steal on drained deque reported an item")
	}
}

func TestDequeEmptySteal(t *testing.T) {
	var d Deque
	if _, ok := d.Steal(); ok {
		t.Error("Steal on zero-value deque reported an item")
	}
	if _, ok := d.Pop(); ok {
		t.Error("Pop on zero-value deque reported an item")
	}
	d.Reset(5, 5) // explicitly empty range
	if _, ok := d.Steal(); ok {
		t.Error("Steal on empty-reset deque reported an item")
	}
	if d.Len() != 0 {
		t.Errorf("Len = %d, want 0", d.Len())
	}
}

// TestDequeSelfSteal: stealing from your own deque is legal and drains
// the same items in reverse; mixing ends must never duplicate or drop.
func TestDequeSelfSteal(t *testing.T) {
	var d Deque
	d.Reset(0, 6)
	seen := map[uint32]bool{}
	for i := 0; ; i++ {
		var it uint32
		var ok bool
		if i%2 == 0 {
			it, ok = d.Pop()
		} else {
			it, ok = d.Steal()
		}
		if !ok {
			break
		}
		if seen[it] {
			t.Fatalf("item %d claimed twice", it)
		}
		seen[it] = true
	}
	if len(seen) != 6 {
		t.Fatalf("claimed %d items, want 6", len(seen))
	}
}

// TestDequeSingleItemRace is the critical linearization point: with one
// item left, a concurrent Pop and Steal must hand it to exactly one
// side. Repeated many times to give the race detector and the CAS loop
// real interleavings.
func TestDequeSingleItemRace(t *testing.T) {
	for trial := 0; trial < 2000; trial++ {
		var d Deque
		d.Reset(7, 8)
		var popIt, stealIt uint32
		var popOK, stealOK bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); popIt, popOK = d.Pop() }()
		go func() { defer wg.Done(); stealIt, stealOK = d.Steal() }()
		wg.Wait()
		if popOK == stealOK {
			t.Fatalf("trial %d: pop=%v steal=%v — exactly one must win", trial, popOK, stealOK)
		}
		if popOK && popIt != 7 || stealOK && stealIt != 7 {
			t.Fatalf("trial %d: wrong item pop=%d steal=%d", trial, popIt, stealIt)
		}
	}
}

// TestDequeConcurrentThieves: many thieves against one owner on a
// larger deque; every item claimed exactly once, none lost.
func TestDequeConcurrentThieves(t *testing.T) {
	const n = 5000
	const thieves = 4
	var d Deque
	d.Reset(0, n)

	var mu sync.Mutex
	claimed := make(map[uint32]int, n)
	claim := func(it uint32) {
		mu.Lock()
		claimed[it]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(thieves + 1)
	go func() {
		defer wg.Done()
		for {
			it, ok := d.Pop()
			if !ok {
				return
			}
			claim(it)
		}
	}()
	for i := 0; i < thieves; i++ {
		go func() {
			defer wg.Done()
			for {
				it, ok := d.Steal()
				if !ok {
					return
				}
				claim(it)
			}
		}()
	}
	wg.Wait()

	if len(claimed) != n {
		t.Fatalf("claimed %d distinct items, want %d", len(claimed), n)
	}
	for it, c := range claimed {
		if c != 1 {
			t.Fatalf("item %d claimed %d times", it, c)
		}
	}
}

func TestDequeResetReuses(t *testing.T) {
	var d Deque
	d.Reset(0, 100)
	for {
		if _, ok := d.Pop(); !ok {
			break
		}
	}
	// Second, smaller reset must not see stale items.
	d.Reset(3, 5)
	if got := d.Len(); got != 2 {
		t.Fatalf("Len after re-reset = %d, want 2", got)
	}
	it, ok := d.Pop()
	if !ok || it != 3 {
		t.Fatalf("Pop = %d,%v, want 3,true", it, ok)
	}
	it, ok = d.Steal()
	if !ok || it != 4 {
		t.Fatalf("Steal = %d,%v, want 4,true", it, ok)
	}
}
