package vocab_test

import (
	"fmt"
	"math/rand"

	"mnnfast/internal/vocab"
)

// ExampleTokenize shows bAbI-style tokenization.
func ExampleTokenize() {
	fmt.Println(vocab.Tokenize("Where is the TV?"))
	// Output:
	// [where is the tv]
}

// ExampleVocabulary shows interning and strict lookup.
func ExampleVocabulary() {
	v := vocab.New()
	ids := v.Encode(vocab.Tokenize("john went to the kitchen"))
	fmt.Println("words interned:", len(ids))
	if _, err := v.EncodeStrict([]string{"unseen"}); err != nil {
		fmt.Println("strict lookup rejects unknown words")
	}
	// Output:
	// words interned: 5
	// strict lookup rejects unknown words
}

// ExampleZipfModel shows the word-frequency skew that makes small
// embedding caches effective (§3.3).
func ExampleZipfModel() {
	m := vocab.NewZipfModel(50000, 1.0)
	fmt.Printf("top 256 of 50000 words carry %.0f%% of all usage\n", 100*m.TopMass(256))
	s := m.Stream(rand.New(rand.NewSource(1)), 3)
	fmt.Println("sampled ranks:", len(s))
	// Output:
	// top 256 of 50000 words carry 54% of all usage
	// sampled ranks: 3
}
