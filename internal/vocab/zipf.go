package vocab

import (
	"fmt"
	"math"
	"math/rand"
)

// ZipfModel is a word-frequency model with Zipf-law rank-frequency
// structure: the k-th most frequent of V words has probability
// proportional to 1/k^s. It substitutes for the COCA word-frequency data
// the paper uses to drive its embedding-cache evaluation — linguistics
// holds that natural corpora follow Zipf's law with s ≈ 1, which is
// exactly the "high locality in word usage" the paper cites (§3.3).
type ZipfModel struct {
	V   int     // vocabulary size
	S   float64 // skew exponent
	cdf []float64
}

// NewZipfModel builds the rank-probability table for V words with skew
// s. It panics if V < 1 or s < 0, which indicate a miswired experiment.
func NewZipfModel(v int, s float64) *ZipfModel {
	if v < 1 || s < 0 {
		panic(fmt.Sprintf("vocab: NewZipfModel(%d, %g): invalid parameters", v, s))
	}
	m := &ZipfModel{V: v, S: s, cdf: make([]float64, v)}
	var total float64
	for k := 1; k <= v; k++ {
		total += 1 / math.Pow(float64(k), s)
	}
	var cum float64
	for k := 1; k <= v; k++ {
		cum += 1 / math.Pow(float64(k), s) / total
		m.cdf[k-1] = cum
	}
	m.cdf[v-1] = 1 // guard against rounding
	return m
}

// Probability returns the model probability of the word with frequency
// rank k (0-based, rank 0 = most frequent).
func (m *ZipfModel) Probability(rank int) float64 {
	if rank < 0 || rank >= m.V {
		return 0
	}
	if rank == 0 {
		return m.cdf[0]
	}
	return m.cdf[rank] - m.cdf[rank-1]
}

// Sample draws one word rank from the model using rng.
func (m *ZipfModel) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, m.V-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Stream returns n word ranks sampled i.i.d. from the model. The
// embedding-cache experiments replay such streams against the cache
// simulator.
func (m *ZipfModel) Stream(rng *rand.Rand, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = m.Sample(rng)
	}
	return out
}

// TopMass returns the total probability mass of the k most frequent
// words — the analytic upper bound on the hit rate of a k-entry
// word-keyed cache under this model.
func (m *ZipfModel) TopMass(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= m.V {
		return 1
	}
	return m.cdf[k-1]
}
